#pragma once
// Machine-readable benchmark trajectories.
//
// Every bench that measures something worth regressing against writes a
// `BENCH_<name>.json` file next to its stdout tables: top-level metadata
// (threads, scale, Δ, …) plus an array of row objects mirroring the printed
// table. Future PRs diff these files against their own runs instead of
// scraping stdout; CI uploads them as artifacts so the perf trajectory of
// the repo is recorded per commit.
//
// The emitter is deliberately tiny — ordered key/value pairs, one level of
// rows, scalars only — not a general JSON library.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gdiam::bench {

/// One BENCH_<name>.json document: ordered scalar fields plus a "rows"
/// array of ordered scalar objects.
class JsonReport {
 public:
  /// `name` becomes the file stem: BENCH_<name>.json.
  explicit JsonReport(std::string name);

  class Row {
   public:
    Row& put(const std::string& key, double v);
    Row& put(const std::string& key, std::uint64_t v);
    Row& put(const std::string& key, std::int64_t v);
    Row& put(const std::string& key, int v);
    Row& put(const std::string& key, bool v);
    Row& put(const std::string& key, const std::string& v);
    Row& put(const std::string& key, const char* v);

   private:
    friend class JsonReport;
    std::vector<std::pair<std::string, std::string>> fields_;  // pre-encoded
  };

  JsonReport& put(const std::string& key, double v);
  JsonReport& put(const std::string& key, std::uint64_t v);
  JsonReport& put(const std::string& key, std::int64_t v);
  JsonReport& put(const std::string& key, int v);
  JsonReport& put(const std::string& key, bool v);
  JsonReport& put(const std::string& key, const std::string& v);
  JsonReport& put(const std::string& key, const char* v);

  /// Appends a row; the reference stays valid until the next add_row().
  Row& add_row();

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::string to_json() const;

  /// Writes BENCH_<name>.json into $GDIAM_BENCH_DIR (default: the working
  /// directory) and returns the path. Never throws: an unwritable
  /// destination prints a warning to stderr and returns "".
  std::string write() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;  // pre-encoded
  std::vector<Row> rows_;
};

}  // namespace gdiam::bench
