// Table 3 — CL-DIAM on graphs much larger than the Table 2 suite, where the
// paper reports running Δ-stepping would be "impractically high". Shows that
// CL-DIAM's time grows roughly linearly with graph size (the paper's
// R-MAT(29) / roads(32) experiment, scaled).

#include <cstdio>
#include <iostream>

#include "comparison_common.hpp"
#include "core/diameter.hpp"
#include "gen/product.hpp"
#include "gen/rmat.hpp"
#include "gen/road.hpp"
#include "gen/weights.hpp"
#include "graph/components.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gdiam;

namespace {

void run_cldiam(util::Table& table, const std::string& name, const Graph& g,
                std::uint64_t seed) {
  core::DiameterApproxOptions o;
  o.cluster.tau = core::tau_for_cluster_target(
      g.num_nodes(), bench::auto_quotient_target(g.num_nodes()));
  o.cluster.seed = seed;
  o.quotient.exact_threshold = 1024;
  util::Timer t;
  const auto r = core::approximate_diameter(g, o);
  table.row()
      .cell(name)
      .count(g.num_nodes())
      .count(g.num_edges())
      .cell(util::format_duration(t.seconds()))
      .num(r.estimate, r.estimate > 100 ? 0 : 4)
      .count(r.stats.rounds())
      .count(r.num_clusters);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options opts(argc, argv);
  const util::Scale scale = opts.has("scale")
                                ? util::parse_scale(opts.get_string("scale", "ci"))
                                : util::scale_from_env();
  bench::print_preamble("table3_big_graphs: CL-DIAM on larger graphs",
                        "Table 3 (R-MAT(29), roads(32) in the paper)", scale);

  util::Table table({"graph", "n", "m", "time", "estimate", "rounds",
                     "clusters"});

  // R-MAT three scales above the Table 2 instance (paper: 24 -> 29).
  {
    const unsigned s = util::pick<unsigned>(scale, 18, 21, 29);
    std::cerr << "  [building] R-MAT(" << s << ")\n";
    util::Xoshiro256 rng(211);
    const Graph g = gen::uniform_weights(
        largest_component(gen::rmat(s, 16, rng)).graph, 213);
    run_cldiam(table, "R-MAT(" + std::to_string(s) + ")", g, 5);
  }

  // roads(S): S stacked copies of the road network.
  {
    const NodeId copies = util::pick<NodeId>(scale, 6, 10, 32);
    const NodeId side = util::pick<NodeId>(scale, 200, 400, 4800);
    std::cerr << "  [building] roads(" << copies << ")\n";
    util::Xoshiro256 rng(217);
    const Graph base = gen::road_network(side, side, rng);
    const Graph g = gen::roads_product(copies, base);
    run_cldiam(table, "roads(" + std::to_string(copies) + ")", g, 7);
  }

  table.print(std::cout);
  std::printf(
      "\nexpected shape (paper, Table 3): both complete in time comparable\n"
      "to, or a small multiple of, the Table 2 instances despite being far\n"
      "larger -- the regime where the Delta-stepping baseline is infeasible.\n");
  return 0;
}
