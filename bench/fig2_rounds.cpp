// Figure 2 — number of MR rounds required by CL-DIAM and Δ-stepping per
// benchmark graph (log scale in the paper). Printed as a series plus the
// per-graph round ratio.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "comparison_common.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace gdiam;

int main(int argc, char** argv) {
  const util::Options opts(argc, argv);
  const util::Scale scale = opts.has("scale")
                                ? util::parse_scale(opts.get_string("scale", "ci"))
                                : util::scale_from_env();
  bench::print_preamble("fig2_rounds: MR round counts", "Figure 2", scale);

  const auto rows = bench::run_table2(scale, {});

  util::Table table({"graph", "rounds CL", "rounds DS", "DS/CL",
                     "log10 CL", "log10 DS"});
  for (const auto& r : rows) {
    const double cl = static_cast<double>(r.cl_stats.rounds());
    const double ds = static_cast<double>(r.ds_stats.rounds());
    table.row()
        .cell(r.name)
        .count(r.cl_stats.rounds())
        .count(r.ds_stats.rounds())
        .num(ds / cl, 1)
        .num(std::log10(cl), 2)
        .num(std::log10(ds), 2);
  }
  table.print(std::cout);

  std::printf(
      "\nexpected shape (paper, Fig. 2): CL-DIAM needs orders of magnitude\n"
      "fewer rounds on high-diameter graphs (roads, mesh); on small-diameter\n"
      "social graphs both need few rounds but CL-DIAM still fewer.\n");
  return 0;
}
