// Figure 3 — aggregate work (node updates + messages) of CL-DIAM and
// Δ-stepping per benchmark graph (log scale in the paper).

#include <cmath>
#include <cstdio>
#include <iostream>

#include "comparison_common.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace gdiam;

int main(int argc, char** argv) {
  const util::Options opts(argc, argv);
  const util::Scale scale = opts.has("scale")
                                ? util::parse_scale(opts.get_string("scale", "ci"))
                                : util::scale_from_env();
  bench::print_preamble("fig3_work: aggregate work (updates + messages)",
                        "Figure 3", scale);

  const auto rows = bench::run_table2(scale, {});

  util::Table table({"graph", "work CL", "work DS", "DS/CL", "msgs CL",
                     "msgs DS", "updates CL", "updates DS"});
  for (const auto& r : rows) {
    table.row()
        .cell(r.name)
        .sci(static_cast<double>(r.cl_stats.work()), 2)
        .sci(static_cast<double>(r.ds_stats.work()), 2)
        .num(static_cast<double>(r.ds_stats.work()) /
                 static_cast<double>(r.cl_stats.work()),
             1)
        .sci(static_cast<double>(r.cl_stats.messages), 2)
        .sci(static_cast<double>(r.ds_stats.messages), 2)
        .sci(static_cast<double>(r.cl_stats.node_updates), 2)
        .sci(static_cast<double>(r.ds_stats.node_updates), 2);
  }
  table.print(std::cout);

  std::printf(
      "\nexpected shape (paper, Fig. 3): CL-DIAM performs less work on every\n"
      "graph -- it explores paths only to bounded depth, while Delta-stepping\n"
      "must settle the exact distance of every node. Largest gap on roads.\n");
  return 0;
}
