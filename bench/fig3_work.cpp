// Figure 3 — aggregate work (node updates + messages) of CL-DIAM and
// Δ-stepping per benchmark graph (log scale in the paper).

#include <cmath>
#include <cstdio>
#include <iostream>

#include "comparison_common.hpp"
#include "report.hpp"
#include "util/options.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

using namespace gdiam;

int main(int argc, char** argv) {
  const util::Options opts(argc, argv);
  const util::Scale scale = opts.has("scale")
                                ? util::parse_scale(opts.get_string("scale", "ci"))
                                : util::scale_from_env();
  bench::print_preamble("fig3_work: aggregate work (updates + messages)",
                        "Figure 3", scale);

  const auto rows = bench::run_table2(scale, {});

  util::Table table({"graph", "work CL", "work DS", "work RS", "DS/CL",
                     "RS/DS", "msgs CL", "msgs DS", "msgs RS", "updates CL",
                     "updates DS", "updates RS"});
  for (const auto& r : rows) {
    table.row()
        .cell(r.name)
        .sci(static_cast<double>(r.cl_stats.work()), 2)
        .sci(static_cast<double>(r.ds_stats.work()), 2)
        .sci(static_cast<double>(r.rho_stats.work()), 2)
        .num(static_cast<double>(r.ds_stats.work()) /
                 static_cast<double>(r.cl_stats.work()),
             1)
        .num(static_cast<double>(r.rho_stats.work()) /
                 static_cast<double>(r.ds_stats.work()),
             1)
        .sci(static_cast<double>(r.cl_stats.messages), 2)
        .sci(static_cast<double>(r.ds_stats.messages), 2)
        .sci(static_cast<double>(r.rho_stats.messages), 2)
        .sci(static_cast<double>(r.cl_stats.node_updates), 2)
        .sci(static_cast<double>(r.ds_stats.node_updates), 2)
        .sci(static_cast<double>(r.rho_stats.node_updates), 2);
  }
  table.print(std::cout);

  bench::JsonReport report("fig3_work");
  report.put("threads", util::num_threads());
  report.put("scale", util::scale_name(scale));
  for (const auto& r : rows) {
    report.add_row()
        .put("graph", r.name)
        .put("nodes", static_cast<std::uint64_t>(r.nodes))
        .put("edges", r.edges)
        .put("cl_seconds", r.cl_seconds)
        .put("ds_seconds", r.ds_seconds)
        .put("ds_delta", r.ds_delta)
        .put("cl_messages", r.cl_stats.messages)
        .put("ds_messages", r.ds_stats.messages)
        .put("cl_updates", r.cl_stats.node_updates)
        .put("ds_updates", r.ds_stats.node_updates)
        .put("cl_work", r.cl_stats.work())
        .put("ds_work", r.ds_stats.work())
        .put("cl_rounds", r.cl_stats.rounds())
        .put("ds_rounds", r.ds_stats.rounds())
        .put("rho_seconds", r.rho_seconds)
        .put("rho_used", r.rho_used)
        .put("rho_messages", r.rho_stats.messages)
        .put("rho_updates", r.rho_stats.node_updates)
        .put("rho_work", r.rho_stats.work())
        .put("rho_rounds", r.rho_stats.rounds());
  }
  report.write();

  std::printf(
      "\nexpected shape (paper, Fig. 3): CL-DIAM performs less work on every\n"
      "graph -- it explores paths only to bounded depth, while Delta-stepping\n"
      "must settle the exact distance of every node. Largest gap on roads.\n"
      "RS (rho-stepping, beyond the paper) trades rounds that track n/rho\n"
      "for re-relaxation work; at these scales Delta's buckets are usually\n"
      "cheaper whole-run -- the columns record where the crossover sits.\n");
  return 0;
}
