// Implementation ablations (ours, DESIGN.md §4):
//  * push (frontier-driven) vs pull (dense MR-faithful) growing engine —
//    identical results by construction, very different constants;
//  * CLUSTER vs CLUSTER2 as the decomposition inside CL-DIAM — the paper
//    argues CLUSTER2's provable variant buys no practical accuracy.

#include <cstdio>
#include <iostream>

#include "comparison_common.hpp"
#include "core/diameter.hpp"
#include "gen/mesh.hpp"
#include "gen/rmat.hpp"
#include "gen/weights.hpp"
#include "graph/components.hpp"
#include "sssp/sweep.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gdiam;

namespace {

void run_variants(const std::string& label, const Graph& g) {
  const Weight lb = sssp::diameter_lower_bound(g, 4, 19).lower_bound;
  std::printf("\n%s: n=%u m=%llu diameter LB=%.4g\n", label.c_str(),
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()),
              lb);

  struct Variant {
    const char* name;
    core::GrowingPolicy policy;
    bool use_cluster2;
  };
  const Variant variants[] = {
      {"CLUSTER + push", core::GrowingPolicy::kPush, false},
      {"CLUSTER + pull", core::GrowingPolicy::kPull, false},
      {"CLUSTER2 + push", core::GrowingPolicy::kPush, true},
  };

  util::Table table({"variant", "ratio", "clusters", "radius", "rounds",
                     "work", "time"});
  for (const Variant& v : variants) {
    std::cerr << "  [running] " << label << " / " << v.name << "\n";
    core::DiameterApproxOptions o;
    o.cluster.tau = core::tau_for_cluster_target(
      g.num_nodes(), bench::auto_quotient_target(g.num_nodes()));
    o.cluster.seed = 3;
    o.cluster.policy = v.policy;
    o.use_cluster2 = v.use_cluster2;
    o.quotient.exact_threshold = 1024;
    util::Timer t;
    const auto r = core::approximate_diameter(g, o);
    table.row()
        .cell(v.name)
        .num(r.estimate / lb, 3)
        .count(r.num_clusters)
        .sci(r.radius, 2)
        .count(r.stats.rounds())
        .sci(static_cast<double>(r.stats.work()), 2)
        .cell(util::format_duration(t.seconds()));
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options opts(argc, argv);
  const util::Scale scale = opts.has("scale")
                                ? util::parse_scale(opts.get_string("scale", "ci"))
                                : util::scale_from_env();
  bench::print_preamble("ablation_engine: push vs pull, CLUSTER vs CLUSTER2",
                        "implementation ablations (DESIGN.md section 4)",
                        scale);

  {
    const NodeId side = util::pick<NodeId>(scale, 160, 360, 1024);
    run_variants("mesh (uniform weights)",
                 gen::uniform_weights(gen::mesh(side), 701));
  }
  {
    const unsigned s = util::pick<unsigned>(scale, 14, 17, 20);
    util::Xoshiro256 rng(703);
    run_variants("R-MAT(" + std::to_string(s) + ")",
                 gen::uniform_weights(
                     largest_component(gen::rmat(s, 16, rng)).graph, 709));
  }

  std::printf(
      "\nexpected shape: push and pull report identical rounds/messages and\n"
      "ratios (same algorithm, different execution), with push faster on\n"
      "frontier-sparse road/mesh stages; CLUSTER2 pays extra rounds for its\n"
      "provable bound without improving the practical ratio (paper, Sec. 5).\n");
  return 0;
}
