// Figure 5* (ours, beyond the paper) — communication volume versus number of
// partitions K. The paper's MR analysis counts rounds and work; the
// partitioned BSP engine additionally measures what the flat kernels cannot:
// the *actual* cross-partition messages and bytes a sharded deployment
// shuffles per run. This bench sweeps K for CLUSTER (Δ-growing on the BSP
// engine) and Δ-stepping on a mesh (high diameter, good locality) and an
// R-MAT giant component (low diameter, no locality), and contrasts the hash
// and range partitioners at a fixed K.
//
// Expected shape: rounds and work are K-invariant (the engine is BSP-
// synchronous, so K only moves *where* relaxations run); cross traffic is 0
// at K=1 and grows toward the hash partitioner's edge-cut ceiling
// (1 - 1/K of all messages) as K rises, while range partitioning keeps a
// mesh's cut — and so its traffic — far lower.

#include <cstdio>
#include <iostream>
#include <string>
#include <utility>

#include "comparison_common.hpp"
#include "core/cluster.hpp"
#include "gen/mesh.hpp"
#include "gen/rmat.hpp"
#include "gen/weights.hpp"
#include "graph/components.hpp"
#include "mr/bsp_engine.hpp"
#include "sssp/delta_stepping.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/scale.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gdiam;

namespace {

struct Instance {
  std::string name;
  Graph graph;
};

std::vector<Instance> build_suite(util::Scale scale) {
  const auto side = util::pick<NodeId>(scale, 48, 128, 512);
  const auto rmat_scale = util::pick<unsigned>(scale, 10, 14, 18);
  util::Xoshiro256 rng(7);
  std::vector<Instance> out;
  out.push_back({"mesh", gen::uniform_weights(gen::mesh(side), 7)});
  Graph r = gen::rmat(rmat_scale, 8, rng);
  out.push_back(
      {"rmat", gen::uniform_weights(largest_component(r).graph, 7)});
  return out;
}

mr::RoundStats run_cluster(const Graph& g, std::uint32_t k,
                           mr::PartitionStrategy strategy,
                           std::vector<NodeId>* labels,
                           const mr::TransportOptions& transport = {}) {
  core::ClusterOptions opt;
  opt.tau = core::tau_for_cluster_target(g.num_nodes(), g.num_nodes() / 4);
  opt.policy = core::GrowingPolicy::kPartitioned;
  opt.partition.num_partitions = k;
  opt.partition.strategy = strategy;
  opt.transport = transport;
  const core::Clustering c = core::cluster(g, opt);
  if (labels != nullptr) *labels = c.center_of;
  return c.stats;
}

mr::RoundStats run_sssp(const Graph& g, std::uint32_t k,
                        mr::PartitionStrategy strategy,
                        const mr::TransportOptions& transport = {},
                        std::vector<Weight>* dist = nullptr) {
  sssp::DeltaSteppingOptions opt;
  opt.partition.num_partitions = k;
  opt.partition.strategy = strategy;
  opt.transport = transport;
  sssp::DeltaSteppingResult r = sssp::delta_stepping(g, 0, opt);
  if (dist != nullptr) *dist = std::move(r.dist);
  return r.stats;
}

void add_row(util::Table& t, const std::string& graph, const char* algo,
             std::uint32_t k, const mr::RoundStats& s, bool labels_match) {
  const double frac =
      s.messages == 0 ? 0.0
                      : static_cast<double>(s.cross_messages) /
                            static_cast<double>(s.messages);
  t.row()
      .cell(graph)
      .cell(algo)
      .count(k)
      .count(s.rounds())
      .sci(static_cast<double>(s.work()))
      .sci(static_cast<double>(s.cross_messages))
      .sci(static_cast<double>(s.cross_bytes))
      .num(100.0 * frac, 1)
      .cell(labels_match ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options opts(argc, argv);
  const util::Scale scale =
      opts.has("scale") ? util::parse_scale(opts.get_string("scale", "ci"))
                        : util::scale_from_env();
  bench::print_preamble("fig5_partitions: cross-partition traffic vs K",
                        "Figure 5* (ours)", scale);

  const std::vector<std::uint32_t> ks{1, 2, 4, 8, 16};
  util::Table table({"graph", "algo", "K", "rounds", "work", "cross msgs",
                     "cross bytes", "cross %", "exact"});

  const std::vector<Instance> suite = build_suite(scale);
  for (const auto& inst : suite) {
    {
      mr::Partition p(inst.graph,
                      {.num_partitions = 8,
                       .strategy = mr::PartitionStrategy::kHash});
      std::printf("%s: n=%u m=%llu; %s\n", inst.name.c_str(),
                  inst.graph.num_nodes(),
                  static_cast<unsigned long long>(inst.graph.num_edges()),
                  mr::describe(p).c_str());
    }
    std::vector<NodeId> reference;  // K=1 labels: the exactness baseline
    for (const std::uint32_t k : ks) {
      std::vector<NodeId> labels;
      const mr::RoundStats cl =
          run_cluster(inst.graph, k, mr::PartitionStrategy::kHash, &labels);
      if (k == 1) reference = labels;
      add_row(table, inst.name, "CLUSTER", k, cl, labels == reference);
      const mr::RoundStats ds =
          run_sssp(inst.graph, k, mr::PartitionStrategy::kHash);
      add_row(table, inst.name, "Δ-step", k, ds, true);
    }
  }
  table.print(std::cout);

  // Hash vs range at fixed K: the partitioner is the whole ballgame for
  // locality-rich graphs.
  std::printf("\nhash vs range partitioner (K=8):\n");
  util::Table cut({"graph", "algo", "partitioner", "cross msgs", "cross %"});
  for (const auto& inst : suite) {
    for (const auto strategy :
         {mr::PartitionStrategy::kHash, mr::PartitionStrategy::kRange}) {
      const char* sname =
          strategy == mr::PartitionStrategy::kHash ? "hash" : "range";
      const mr::RoundStats stats_by_algo[2] = {
          run_cluster(inst.graph, 8, strategy, nullptr),
          run_sssp(inst.graph, 8, strategy)};
      const char* algo_names[2] = {"CLUSTER", "Δ-step"};
      for (int a = 0; a < 2; ++a) {
        const mr::RoundStats& s = stats_by_algo[a];
        const double frac =
            s.messages == 0 ? 0.0
                            : 100.0 * static_cast<double>(s.cross_messages) /
                                  static_cast<double>(s.messages);
        cut.row()
            .cell(inst.name)
            .cell(algo_names[a])
            .cell(sname)
            .sci(static_cast<double>(s.cross_messages))
            .num(frac, 1);
      }
    }
  }
  cut.print(std::cout);

  // Local vs process transport at fixed K (DESIGN.md §9): the same
  // supersteps, compute fanned out over forked workers exchanging messages
  // over Unix-domain sockets. Model-level counters and results must match
  // bit-for-bit; the wire columns and the wall clock show what the process
  // boundary actually costs (λ per superstep: fork + serialize + read back).
  std::printf("\nlocal vs process transport (K=4, P=2):\n");
  util::Table ab({"graph", "algo", "transport", "wall", "wire msgs",
                  "wire bytes", "exact"});
  for (const auto& inst : suite) {
    for (const char* algo : {"CLUSTER", "Δ-step"}) {
      std::vector<NodeId> ref_labels, labels;
      std::vector<Weight> ref_dist, dist;
      for (const auto kind :
           {mr::TransportKind::kLocal, mr::TransportKind::kProcess}) {
        const mr::TransportOptions transport{.kind = kind, .processes = 2};
        const bool is_local = kind == mr::TransportKind::kLocal;
        util::Timer t;
        mr::RoundStats s;
        bool exact;
        if (std::string(algo) == "CLUSTER") {
          s = run_cluster(inst.graph, 4, mr::PartitionStrategy::kHash,
                          &labels, transport);
          if (is_local) ref_labels = labels;
          exact = labels == ref_labels;
        } else {
          s = run_sssp(inst.graph, 4, mr::PartitionStrategy::kHash,
                       transport, &dist);
          if (is_local) ref_dist = dist;
          exact = dist == ref_dist;
        }
        ab.row()
            .cell(inst.name)
            .cell(algo)
            .cell(is_local ? "local" : "process")
            .cell(util::format_duration(t.seconds()))
            .sci(static_cast<double>(s.wire_messages))
            .sci(static_cast<double>(s.wire_bytes))
            .cell(exact ? "yes" : "NO");
      }
    }
  }
  ab.print(std::cout);

  std::printf(
      "\nexpected shape: cross traffic is exactly 0 at K=1, approaches the\n"
      "hash edge-cut ceiling (1-1/K of messages) as K grows, and range\n"
      "partitioning cuts it by an order of magnitude on the mesh; labels\n"
      "stay bit-identical to the flat engine at every K — and to the\n"
      "process transport, whose wire columns are nonzero (the price tag\n"
      "the paper's round-efficiency thesis is about).\n");
  return 0;
}
