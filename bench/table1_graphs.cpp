// Table 1 — benchmark graph properties: n, m, and the weighted diameter
// Φ(G) (iterated-sweep lower bound, the paper's methodology for graphs too
// large for exact APSP). Also prints the synthetic-family instances
// mesh(S), R-MAT(S), roads(S) whose size is controlled by S.

#include <cstdio>
#include <iostream>

#include "comparison_common.hpp"
#include "gen/product.hpp"
#include "gen/road.hpp"
#include "graph/ops.hpp"
#include "sssp/sweep.hpp"
#include "util/options.hpp"
#include "util/scale.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gdiam;

int main(int argc, char** argv) {
  const util::Options opts(argc, argv);
  const util::Scale scale = opts.has("scale")
                                ? util::parse_scale(opts.get_string("scale", "ci"))
                                : util::scale_from_env();
  bench::print_preamble("table1_graphs: benchmark graph properties",
                        "Table 1 (n, m, weighted diameter)", scale);

  util::Table table({"graph", "n", "m", "Phi(G) (sweep LB)", "avg deg",
                     "build+measure"});

  auto add_row = [&](const std::string& name, const Graph& g, double secs) {
    util::Timer t;
    const auto lb = sssp::diameter_lower_bound(g, 4, 7).lower_bound;
    table.row()
        .cell(name)
        .count(g.num_nodes())
        .count(g.num_edges())
        .num(lb, lb > 100 ? 0 : 4)
        .num(degree_stats(g).avg, 2)
        .cell(util::format_duration(secs + t.seconds()));
  };

  for (const bench::BenchmarkGraph& b : bench::table2_suite(scale)) {
    std::cerr << "  [building] " << b.name << "\n";
    util::Timer t;
    const Graph g = b.build();
    add_row(b.name, g, t.seconds());
  }

  // roads(S): path(S) x road network (paper's synthetic product family).
  {
    const NodeId copies = util::pick<NodeId>(scale, 3, 3, 32);
    const NodeId side = util::pick<NodeId>(scale, 90, 190, 1600);
    std::cerr << "  [building] roads(" << copies << ")\n";
    util::Timer t;
    util::Xoshiro256 rng(131);
    const Graph base = gen::road_network(side, side, rng);
    const Graph g = gen::roads_product(copies, base);
    add_row("roads(" + std::to_string(copies) + ")", g, t.seconds());
  }

  table.print(std::cout);
  std::printf("\nexpected shape (paper): road/mesh families have diameters\n"
              "orders of magnitude above the max edge weight; social-like\n"
              "graphs (livejournal/twitter/R-MAT with U(0,1] weights) have\n"
              "single-digit weighted diameters.\n");
  return 0;
}
