// Section 5 Δ-initialization study: on mesh(S) with bimodal edge weights
// (1 with probability 0.1, 10⁻⁶ otherwise) the paper compares starting
// CLUSTER from Δ = min edge weight (self-tuning; final Δ ≈ 6.4e-5, ratio
// 1.0001) against Δ = graph diameter (ratio ≈ 2.5), and concludes the
// average edge weight is a good default. This bench reproduces all three.

#include <cstdio>
#include <iostream>

#include "comparison_common.hpp"
#include "core/diameter.hpp"
#include "gen/mesh.hpp"
#include "gen/weights.hpp"
#include "sssp/sweep.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gdiam;

int main(int argc, char** argv) {
  const util::Options opts(argc, argv);
  const util::Scale scale = opts.has("scale")
                                ? util::parse_scale(opts.get_string("scale", "ci"))
                                : util::scale_from_env();
  bench::print_preamble(
      "ablation_delta_init: initial-Delta study on a bimodal mesh",
      "Section 5, 'As a second optimization...' paragraph", scale);

  const NodeId side = util::pick<NodeId>(scale, 192, 512, 2048);
  std::cerr << "  [building] mesh(" << side << ") with bimodal weights\n";
  const Graph g = gen::bimodal_weights(gen::mesh(side), 1.0, 1e-6, 0.1, 401);
  const Weight lb = sssp::diameter_lower_bound(g, 4, 11).lower_bound;
  std::printf("mesh(%u): n=%u m=%llu, diameter LB = %.6f\n", side,
              g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()), lb);

  struct Config {
    const char* name;
    core::DeltaInit init;
    Weight fixed;
  };
  const Config configs[] = {
      {"min weight (self-tuned)", core::DeltaInit::kMinWeight, 0.0},
      {"avg weight (default)", core::DeltaInit::kAverageWeight, 0.0},
      {"diameter (oversized)", core::DeltaInit::kFixed, lb},
  };

  util::Table table({"initial Delta", "Delta_end", "radius", "ratio",
                     "rounds", "time"});
  for (const Config& c : configs) {
    std::cerr << "  [running] " << c.name << "\n";
    core::DiameterApproxOptions o;
    o.cluster.tau = core::tau_for_cluster_target(
      g.num_nodes(), bench::auto_quotient_target(g.num_nodes()));
    o.cluster.seed = 3;
    o.cluster.delta_init = c.init;
    o.cluster.delta_fixed = c.fixed > 0.0 ? c.fixed : 1.0;
    o.quotient.exact_threshold = 1024;
    util::Timer t;
    const auto r = core::approximate_diameter(g, o);
    table.row()
        .cell(c.name)
        .sci(r.clustering.delta_end, 2)
        .sci(r.radius, 2)
        .num(r.estimate / lb, 4)
        .count(r.stats.rounds())
        .cell(util::format_duration(t.seconds()));
  }
  table.print(std::cout);

  std::printf(
      "\nexpected shape (paper): the self-tuned and avg-weight runs keep the\n"
      "radius near the light-edge scale and the ratio near 1.0; seeding with\n"
      "Delta ~ diameter swallows weight-1 edges and inflates the ratio to\n"
      "about 2-2.5x.\n");
  return 0;
}
