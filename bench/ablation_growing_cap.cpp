// Section 4 final remark: capping the number of Δ-growing steps per
// PartialGrowth execution at O(n/τ) bounds the round complexity on skewed
// inputs at the cost of an extra approximation factor. This bench sweeps the
// cap on a road network (the high-ℓ_Δ regime where the cap matters).

#include <cstdio>
#include <iostream>

#include "comparison_common.hpp"
#include "core/diameter.hpp"
#include "gen/basic.hpp"
#include "gen/weights.hpp"
#include "sssp/sweep.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gdiam;

int main(int argc, char** argv) {
  const util::Options opts(argc, argv);
  const util::Scale scale = opts.has("scale")
                                ? util::parse_scale(opts.get_string("scale", "ci"))
                                : util::scale_from_env();
  bench::print_preamble(
      "ablation_growing_cap: bounded growing steps per PartialGrowth",
      "Section 4, final remark (O(n/tau) step cap)", scale);

  // Uniform (0,1] weights on a long path: the extreme l_Delta regime
  // ("very skewed graph topologies", Section 4) -- shortest paths chain
  // thousands of light edges, so an uncapped PartialGrowth runs hop-deep
  // relaxation sequences and the cap genuinely binds.
  const NodeId nodes = util::pick<NodeId>(scale, 30000, 120000, 2000000);
  std::cerr << "  [building] weighted path of " << nodes << " nodes\n";
  const Graph g = gen::uniform_weights(gen::path(nodes), 501);
  const Weight lb = sssp::diameter_lower_bound(g, 4, 13).lower_bound;

  // A deliberately coarse decomposition (few centers, long growth phases):
  // the regime where the step cap actually binds. With the fine default
  // granularity every PartialGrowth meets its coverage target within a
  // handful of steps and any cap is a no-op.
  const std::uint32_t tau = 2;
  const std::uint64_t n_over_tau = g.num_nodes() / tau;

  util::Table table({"step cap", "ratio", "radius", "rounds", "work",
                     "time"});
  const std::uint64_t caps[] = {0, n_over_tau / 256, n_over_tau / 1024, 32,
                                8};
  for (const std::uint64_t cap : caps) {
    std::cerr << "  [running] cap=" << cap << "\n";
    core::DiameterApproxOptions o;
    o.cluster.tau = tau;
    o.cluster.seed = 3;
    o.cluster.max_steps_per_growth = cap;
    o.quotient.exact_threshold = 1024;
    util::Timer t;
    const auto r = core::approximate_diameter(g, o);
    table.row()
        .cell(cap == 0 ? std::string("unlimited") : std::to_string(cap))
        .num(r.estimate / lb, 3)
        .sci(r.radius, 2)
        .count(r.stats.rounds())
        .sci(static_cast<double>(r.stats.work()), 2)
        .cell(util::format_duration(t.seconds()));
  }
  table.print(std::cout);

  std::printf(
      "\nexpected shape (paper): tighter caps reduce rounds (the point of\n"
      "the optimization) while the approximation ratio degrades gracefully.\n");
  return 0;
}
