// k-center quality ablation (ours): how close does the parallel CLUSTER
// decomposition get to the sequential greedy k-center baseline (Gonzalez's
// 2-approximation of the optimal radius R_G(k))? Theorem 1 promises
// O(R_G(τ) log n) w.h.p.; this measures the actual constant.

#include <cstdio>
#include <iostream>

#include "analysis/metrics.hpp"
#include "comparison_common.hpp"
#include "core/cluster.hpp"
#include "gen/mesh.hpp"
#include "gen/road.hpp"
#include "gen/weights.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gdiam;

namespace {

void compare(const std::string& label, const Graph& g, std::uint32_t tau) {
  std::printf("\n%s: n=%u m=%llu, tau=%u\n", label.c_str(), g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()), tau);
  core::ClusterOptions o;
  o.tau = tau;
  o.seed = 3;
  util::Timer t;
  const core::Clustering c = core::cluster(g, o);
  const double cluster_time = t.seconds();

  // Greedy k-center with the same number of centers: R_G(k) is within
  // [greedy.radius / 2, greedy.radius].
  t.reset();
  const analysis::KCenterResult greedy =
      analysis::greedy_k_center(g, c.num_clusters(), 3);
  const double greedy_time = t.seconds();

  util::Table table({"method", "centers", "radius", "vs greedy", "time"});
  table.row()
      .cell("CLUSTER (parallel)")
      .count(c.num_clusters())
      .num(c.radius, 2)
      .num(c.radius / greedy.radius, 2)
      .cell(util::format_duration(cluster_time));
  table.row()
      .cell("greedy k-center (seq)")
      .count(greedy.centers.size())
      .num(greedy.radius, 2)
      .num(1.0, 2)
      .cell(util::format_duration(greedy_time));
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options opts(argc, argv);
  const util::Scale scale = opts.has("scale")
                                ? util::parse_scale(opts.get_string("scale", "ci"))
                                : util::scale_from_env();
  bench::print_preamble(
      "ablation_kcenter: CLUSTER radius vs greedy k-center baseline",
      "Theorem 1 constant-factor check (ours)", scale);

  {
    const NodeId side = util::pick<NodeId>(scale, 64, 128, 512);
    compare("mesh (uniform weights)",
            gen::uniform_weights(gen::mesh(side), 901), 4);
  }
  {
    const NodeId side = util::pick<NodeId>(scale, 70, 140, 600);
    util::Xoshiro256 rng(907);
    compare("road network", gen::road_network(side, side, rng), 4);
  }

  std::printf(
      "\nexpected shape: CLUSTER's radius stays within a small constant\n"
      "(typically < 4x) of the greedy baseline while running in parallel\n"
      "rounds instead of k sequential SSSP computations — the O(log n)\n"
      "radius factor of Theorem 1 is loose in practice.\n");
  return 0;
}
