// Ingest-path benchmark: text parse vs mmap binary CSR (DESIGN.md §14).
//
// Measures what the .gcsr format buys on the two cold-start paths:
//
//   text_parse       — read_edge_list_file on an edge-list dump (the
//                      streaming from_chars parser);
//   mmap_open        — open_mmap on the converted .gcsr, full checksum
//                      verification included (the serving default);
//   first_query_cold — open a sidecar-less .gcsr, fresh exec::Context, one
//                      Δ-stepping query: the context pays the O(m) presplit
//                      before the first relaxation;
//   first_query_warm — open a .gcsr carrying the presplit sidecar for the
//                      query Δ, adopt it, same query: the reorder was paid
//                      once at conversion time.
//
// Emits BENCH_ingest.json with rows keyed by "name" ("real_time" in ms,
// medians) plus the gated top-level fields
//   ingest_mmap_speedup   = text_parse / mmap_open
//   presplit_warm_speedup = first_query_cold / first_query_warm
// so tools/bench_diff.py flags a regression of either ratio against
// bench/baseline/BENCH_ingest.json.
//
//   ./bench_ingest_load [--scale ci|small|paper] [--reps N]

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "comparison_common.hpp"
#include "exec/context.hpp"
#include "gen/mesh.hpp"
#include "gen/weights.hpp"
#include "graph/binfmt.hpp"
#include "graph/io.hpp"
#include "report.hpp"
#include "sssp/delta_stepping.hpp"
#include "util/options.hpp"
#include "util/scale.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gdiam;

namespace {

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

template <typename Fn>
double median_ms(unsigned reps, Fn&& fn) {
  std::vector<double> ms;
  ms.reserve(reps);
  for (unsigned i = 0; i < reps; ++i) {
    const util::Timer t;
    fn();
    ms.push_back(t.millis());
  }
  return median(std::move(ms));
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options opts(argc, argv);
  const util::Scale scale =
      opts.has("scale") ? util::parse_scale(opts.get_string("scale", "ci"))
                        : util::scale_from_env();
  bench::print_preamble("ingest_load: text parse vs mmap .gcsr cold starts",
                        "binary CSR ingest (no paper analogue; DESIGN.md §14)",
                        scale);

  const auto reps = static_cast<unsigned>(
      opts.get_int("reps", util::pick(scale, 3, 5, 7)));
  const auto side = util::pick<NodeId>(scale, 160, 320, 724);
  const Weight delta = 0.1;

  const Graph g = gen::uniform_weights(gen::mesh(side), 7);
  const std::string stem =
      "/tmp/gdiam_bench_ingest_" + std::to_string(::getpid());
  const std::string text_path = stem + ".el";
  const std::string plain_path = stem + "_plain.gcsr";
  const std::string warm_path = stem + "_presplit.gcsr";

  {
    std::ofstream f(text_path);
    io::write_edge_list(g, f);
  }
  const double write_plain_ms =
      median_ms(1, [&] { io::write_gcsr(g, plain_path); });
  const double write_warm_ms = median_ms(1, [&] {
    io::write_gcsr(g, warm_path, {.presplit_deltas = {delta}});
  });

  const double text_ms =
      median_ms(reps, [&] { (void)io::read_edge_list_file(text_path); });
  const double mmap_ms =
      median_ms(reps, [&] { (void)io::open_mmap(plain_path); });

  sssp::DeltaSteppingOptions qopt;
  qopt.delta = delta;
  const double cold_ms = median_ms(reps, [&] {
    const Graph mg = io::open_mmap(plain_path).graph();
    exec::Context ctx;
    (void)sssp::delta_stepping(mg, 0, qopt, &ctx);
  });
  const double warm_ms = median_ms(reps, [&] {
    const io::MappedGraph m = io::open_mmap(warm_path);
    const Graph& mg = m.graph();
    exec::Context ctx;
    ctx.adopt_presplits(mg, m);
    (void)sssp::delta_stepping(mg, 0, qopt, &ctx);
  });

  const double mmap_speedup = mmap_ms > 0.0 ? text_ms / mmap_ms : 0.0;
  const double warm_speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;

  bench::JsonReport report("ingest");
  report.put("scale", util::scale_name(scale));
  report.put("side", static_cast<std::uint64_t>(side));
  report.put("nodes", static_cast<std::uint64_t>(g.num_nodes()));
  report.put("edges", static_cast<std::uint64_t>(g.num_edges()));
  report.put("delta", delta);
  report.put("reps", static_cast<std::uint64_t>(reps));
  report.put("ingest_mmap_speedup", mmap_speedup);
  report.put("presplit_warm_speedup", warm_speedup);

  util::Table table({"path", "median ms"});
  const auto emit = [&](const char* label, const char* name, double ms) {
    table.row().cell(label).num(ms);
    report.add_row().put("name", name).put("real_time", ms);
  };
  emit("text parse (.el)", "text_parse", text_ms);
  emit("mmap open (.gcsr, verified)", "mmap_open", mmap_ms);
  emit("first query, cold presplit", "first_query_cold", cold_ms);
  emit("first query, adopted presplit", "first_query_warm", warm_ms);
  emit("write .gcsr", "gcsr_write", write_plain_ms);
  emit("write .gcsr + sidecar", "gcsr_write_presplit", write_warm_ms);
  table.print(std::cout);
  std::printf("\ningest speedup:  %.2fx (text %.2fms -> mmap %.2fms)\n",
              mmap_speedup, text_ms, mmap_ms);
  std::printf("presplit warm:   %.2fx (cold %.2fms -> warm %.2fms)\n",
              warm_speedup, cold_ms, warm_ms);

  ::unlink(text_path.c_str());
  ::unlink(plain_path.c_str());
  ::unlink(warm_path.c_str());

  const std::string path = report.write();
  if (!path.empty()) std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
