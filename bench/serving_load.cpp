// Serving-load benchmark for the gdiamd daemon path (DESIGN.md §10).
//
// Boots an in-process serve::Server on a private socket and measures the
// three latencies that define the serving layer:
//
//   cold   — the first estimate on a graph: build + context warm-up
//            (presplit, shard layout, pool spawn) + the query itself;
//   warm   — the same queries on the now-hot context, one client, no
//            queueing: pure service latency. cold/warm is the speedup the
//            resident state buys;
//   loaded — J concurrent connections alternating estimate and sssp on the
//            same graph. Same-graph queries serialize on the context (by
//            design — see src/serve/server.hpp), so these latencies include
//            queueing; the aggregate QPS and tail percentiles are the
//            serving numbers under contention, and the batching counters
//            prove the scheduler coalesced the backlog.
//
// Emits BENCH_serving.json (bench/report.hpp): rows "cold_first_request",
// "warm_estimate", "warm_sssp", "loaded_request" keyed by "name" with
// "real_time" in ms, so tools/bench_diff.py can diff against
// bench/baseline/BENCH_serving.json.
//
//   ./bench_serving_load [--scale ci|small|paper] [--jobs J] [--requests N]

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "comparison_common.hpp"
#include "report.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/net.hpp"
#include "util/options.hpp"
#include "util/scale.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gdiam;

namespace {

/// Nearest-rank percentile (sorts a copy).
double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * (static_cast<double>(v.size()) - 1.0) / 100.0 + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// One request over an open connection; returns the latency in ms.
double timed_request(int fd, const serve::Message& req) {
  const util::Timer t;
  serve::write_message(fd, req);
  serve::Message resp;
  if (!serve::read_message(fd, resp) || resp.head != "ok") {
    throw std::runtime_error("serving bench: request failed: " +
                             resp.get("message", "connection closed"));
  }
  return t.millis();
}

void add_percentile_row(util::Table& table, bench::JsonReport& report,
                        const char* label, const char* row_name,
                        const std::vector<double>& ms) {
  table.row()
      .cell(label)
      .count(ms.size())
      .num(percentile(ms, 50.0))
      .num(percentile(ms, 95.0))
      .num(percentile(ms, 99.0));
  report.add_row()
      .put("name", row_name)
      .put("real_time", percentile(ms, 50.0))
      .put("p95", percentile(ms, 95.0))
      .put("p99", percentile(ms, 99.0))
      .put("count", static_cast<std::uint64_t>(ms.size()));
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options opts(argc, argv);
  const util::Scale scale = opts.has("scale")
                                ? util::parse_scale(opts.get_string("scale", "ci"))
                                : util::scale_from_env();
  bench::print_preamble("serving_load: daemon QPS and latency on a hot graph",
                        "serving layer (no paper analogue; DESIGN.md §10)",
                        scale);

  const auto jobs =
      static_cast<unsigned>(opts.get_int("jobs", util::pick(scale, 4, 4, 8)));
  const auto per_job = static_cast<unsigned>(
      opts.get_int("requests", util::pick(scale, 12, 32, 96)));
  const unsigned warm_reps = util::pick<unsigned>(scale, 4, 8, 16);
  const auto side = util::pick<unsigned>(scale, 32, 64, 128);
  const std::string spec = "gen:mesh:side=" + std::to_string(side) +
                           ":weights=uniform:seed=5";

  serve::ServerOptions sopts;
  sopts.socket_path =
      "/tmp/gdiam_bench_serving_" + std::to_string(::getpid()) + ".sock";
  sopts.worker_threads = 2;
  serve::Server server(sopts);
  server.start();

  serve::Message est;
  est.head = "estimate";
  est.set("graph", spec);
  est.set("tau", "16");
  serve::Message sp;
  sp.head = "sssp";
  sp.set("graph", spec);
  sp.set("source", "0");

  // Cold: the first request pays graph build + context warm-up.
  const int fd0 = util::net::connect_unix(sopts.socket_path);
  const double cold_ms = timed_request(fd0, est);

  // Warm: same connection, no concurrency — pure service latency.
  std::vector<double> warm_est, warm_sssp;
  for (unsigned i = 0; i < warm_reps; ++i) {
    warm_est.push_back(timed_request(fd0, est));
    warm_sssp.push_back(timed_request(fd0, sp));
  }
  ::close(fd0);

  // Loaded: J connections alternating verbs; latency includes queueing.
  std::vector<std::vector<double>> loaded_ms(jobs);
  std::vector<std::string> failures(jobs);
  std::vector<std::thread> clients;
  const util::Timer wall;
  for (unsigned j = 0; j < jobs; ++j) {
    clients.emplace_back([&, j] {
      try {
        const int fd = util::net::connect_unix(sopts.socket_path);
        for (unsigned i = 0; i < per_job; ++i) {
          loaded_ms[j].push_back(timed_request(fd, (i + j) % 2 ? sp : est));
        }
        ::close(fd);
      } catch (const std::exception& e) {
        failures[j] = e.what();
      }
    });
  }
  for (auto& c : clients) c.join();
  const double wall_s = wall.seconds();
  const serve::ServerStats& stats = server.stats();
  const std::uint64_t batches = stats.batches.load();
  const std::uint64_t coalesced = stats.batched_requests.load();
  const std::uint64_t shed = stats.shed.load();
  const std::uint64_t deadline_exceeded = stats.deadline_exceeded.load();
  const std::uint64_t degraded = stats.degraded.load();
  const std::uint64_t disconnected_slow = stats.disconnected_slow.load();
  server.stop();
  for (unsigned j = 0; j < jobs; ++j) {
    if (!failures[j].empty()) {
      std::fprintf(stderr, "bench_serving_load: job %u: %s\n", j,
                   failures[j].c_str());
      return 1;
    }
  }

  std::vector<double> loaded_all;
  for (const auto& v : loaded_ms) {
    loaded_all.insert(loaded_all.end(), v.begin(), v.end());
  }
  const double qps =
      wall_s > 0.0 ? static_cast<double>(loaded_all.size()) / wall_s : 0.0;
  const double warm_est_p50 = percentile(warm_est, 50.0);
  const double warm_speedup = warm_est_p50 > 0.0 ? cold_ms / warm_est_p50 : 0.0;

  bench::JsonReport report("serving");
  report.put("scale", util::scale_name(scale));
  report.put("graph", spec);
  report.put("jobs", static_cast<std::uint64_t>(jobs));
  report.put("requests",
             static_cast<std::uint64_t>(1 + warm_est.size() + warm_sssp.size() +
                                        loaded_all.size()));
  report.put("qps", qps);
  report.put("warm_speedup", warm_speedup);
  report.put("batches", batches);
  report.put("batched_requests", coalesced);
  // Robustness counters (DESIGN.md §12). All four must be zero on a healthy
  // run: the bench uses no deadlines, the queue is sized for the load, and
  // every client drains its responses. A nonzero value here is the daemon
  // shedding or degrading under what should be comfortable load.
  report.put("shed", shed);
  report.put("deadline_exceeded", deadline_exceeded);
  report.put("degraded", degraded);
  report.put("disconnected_slow", disconnected_slow);

  util::Table table({"request", "count", "p50 ms", "p95 ms", "p99 ms"});
  table.row().cell("cold first estimate").count(1).num(cold_ms).num(cold_ms).num(
      cold_ms);
  report.add_row()
      .put("name", "cold_first_request")
      .put("real_time", cold_ms)
      .put("count", static_cast<std::uint64_t>(1));
  add_percentile_row(table, report, "warm estimate", "warm_estimate", warm_est);
  add_percentile_row(table, report, "warm sssp", "warm_sssp", warm_sssp);
  add_percentile_row(table, report, "loaded (queued)", "loaded_request",
                     loaded_all);
  table.print(std::cout);
  std::printf("\nqps:          %.1f (%u jobs x %u requests in %.2fs)\n", qps,
              jobs, per_job, wall_s);
  std::printf("warm speedup: %.2fx (cold %.2fms -> warm estimate p50 %.2fms)\n",
              warm_speedup, cold_ms, warm_est_p50);
  std::printf("batching:     %llu dispatches, %llu coalesced riders\n",
              static_cast<unsigned long long>(batches),
              static_cast<unsigned long long>(coalesced));
  std::printf(
      "robustness:   %llu shed, %llu deadline_exceeded, %llu degraded, "
      "%llu disconnected_slow (all should be 0)\n",
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(deadline_exceeded),
      static_cast<unsigned long long>(degraded),
      static_cast<unsigned long long>(disconnected_slow));

  const std::string path = report.write();
  if (!path.empty()) std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
