// Figure 1 — approximation ratio of CL-DIAM and Δ-stepping per benchmark
// graph (the paper's bar chart; printed here as a series plus an ASCII bar
// rendering).

#include <cstdio>
#include <iostream>

#include "comparison_common.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace gdiam;

namespace {

void ascii_bar(const char* label, double value, double vmax) {
  const int width = static_cast<int>(48.0 * value / vmax);
  std::printf("  %-14s %5.2f |", label, value);
  for (int i = 0; i < width; ++i) std::printf("#");
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options opts(argc, argv);
  const util::Scale scale = opts.has("scale")
                                ? util::parse_scale(opts.get_string("scale", "ci"))
                                : util::scale_from_env();
  bench::print_preamble("fig1_approximation: approximation-ratio series",
                        "Figure 1", scale);

  const auto rows = bench::run_table2(scale, {});

  util::Table table({"graph", "CL-DIAM", "Delta-stepping"});
  double vmax = 0.0;
  for (const auto& r : rows) {
    table.row().cell(r.name).num(r.cl_ratio, 3).num(r.ds_ratio, 3);
    vmax = std::max({vmax, r.cl_ratio, r.ds_ratio});
  }
  table.print(std::cout);

  std::printf("\nCL-DIAM bars:\n");
  for (const auto& r : rows) ascii_bar(r.name.c_str(), r.cl_ratio, vmax);
  std::printf("Delta-stepping bars:\n");
  for (const auto& r : rows) ascii_bar(r.name.c_str(), r.ds_ratio, vmax);

  std::printf(
      "\nexpected shape (paper, Fig. 1): both ratios between 1.0 and ~1.4,\n"
      "neither algorithm dominating on every graph.\n");
  return 0;
}
