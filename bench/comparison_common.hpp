#pragma once
// Shared harness for the Table 2 / Figure 1–3 experiments: builds the
// benchmark graph suite at the selected scale and runs the CL-DIAM vs
// Δ-stepping comparison, producing one row per graph with the paper's four
// indicator groups (approximation ratio, time, rounds, work).

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "mr/stats.hpp"
#include "util/scale.hpp"

namespace gdiam::bench {

/// One benchmark instance, built lazily so binaries that only need a subset
/// don't pay for the rest.
struct BenchmarkGraph {
  std::string name;          // paper's row label (e.g. "roads-USA*")
  std::string substitution;  // non-empty when this stands in for real data
  std::function<Graph()> build;
};

/// The six graphs of Table 2, scaled per DESIGN.md §2:
/// roads-USA, roads-CAL, mesh, livejournal, twitter, R-MAT(S).
[[nodiscard]] std::vector<BenchmarkGraph> table2_suite(util::Scale scale);

/// Result of one CL-DIAM vs Δ-stepping comparison.
struct ComparisonRow {
  std::string name;
  NodeId nodes = 0;
  EdgeIndex edges = 0;
  Weight diameter_lb = 0.0;  // iterated-sweep lower bound (ground truth)

  // CL-DIAM
  double cl_ratio = 0.0;  // estimate / diameter_lb
  double cl_seconds = 0.0;
  mr::RoundStats cl_stats;
  NodeId cl_clusters = 0;

  // Δ-stepping (best Δ over the sweep, by rounds — the paper's selection)
  double ds_ratio = 0.0;  // 2·ecc(source) / diameter_lb
  double ds_seconds = 0.0;
  mr::RoundStats ds_stats;
  Weight ds_delta = 0.0;

  // ρ-stepping (auto ρ, same source as the Δ run) — the beyond-the-paper
  // kernel A/B: same 2-approximation, different round/work trade.
  double rho_ratio = 0.0;
  double rho_seconds = 0.0;
  mr::RoundStats rho_stats;
  std::uint64_t rho_used = 0;
};

struct ComparisonConfig {
  /// Δ multipliers (× average weight) swept for Δ-stepping; the run with
  /// fewest rounds is reported, mirroring the paper's per-graph tuning.
  std::vector<double> delta_sweep{1.0, 8.0, 64.0};
  unsigned lower_bound_sweeps = 4;
  std::uint64_t seed = 1;
  /// Target quotient size for choosing τ; 0 = auto via
  /// auto_quotient_target() (the paper's fixed 100k cap assumes billion-node
  /// inputs; scaled-down graphs need a proportionally smaller quotient).
  NodeId quotient_target = 0;
};

/// n/64 clamped to [512, 100000]: keeps the quotient-to-graph ratio in the
/// band the paper's τ choice produces on its (much larger) datasets.
[[nodiscard]] NodeId auto_quotient_target(NodeId n);

/// Runs the full comparison on one graph.
[[nodiscard]] ComparisonRow compare_on_graph(const std::string& name,
                                             const Graph& g,
                                             const ComparisonConfig& cfg);

/// Convenience: run the whole suite, printing progress to stderr.
[[nodiscard]] std::vector<ComparisonRow> run_table2(
    util::Scale scale, const ComparisonConfig& cfg = {});

/// Standard preamble every bench prints (experiment id + scale note).
void print_preamble(const char* experiment, const char* paper_ref,
                    util::Scale scale);

}  // namespace gdiam::bench
