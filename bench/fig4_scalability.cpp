// Figure 4 — strong scaling of CL-DIAM with the degree of parallelism.
// The paper scales Spark over 2..16 machines on R-MAT(26) and roads(3)
// (similar node counts, different topology); here the parallel resource is
// OpenMP threads.
//
// A second section A/Bs NUMA placement (DESIGN.md §13): the same partitioned
// SSSP run unpinned (--placement none) vs pinned (round-robin over the
// machine's nodes, shard layouts first-touched on their node). The
// numa_placement_speedup_* JSON fields feed bench_diff's warn-only gate: on
// a single-node machine (CI) the pin degrades to a no-op and the speedup
// hovers around 1.0 by construction; on real multi-socket hardware it is
// the figure-of-merit the tentpole exists for.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "comparison_common.hpp"
#include "core/diameter.hpp"
#include "report.hpp"
#include "gen/product.hpp"
#include "gen/rmat.hpp"
#include "gen/road.hpp"
#include "gen/weights.hpp"
#include "graph/components.hpp"
#include "mr/placement.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/rho_stepping.hpp"
#include "util/options.hpp"
#include "util/topology.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gdiam;

namespace {

double time_cldiam(const Graph& g, std::uint64_t seed) {
  core::DiameterApproxOptions o;
  o.cluster.tau = core::tau_for_cluster_target(
      g.num_nodes(), bench::auto_quotient_target(g.num_nodes()));
  o.cluster.seed = seed;
  o.quotient.exact_threshold = 1024;
  util::Timer t;
  (void)core::approximate_diameter(g, o);
  return t.seconds();
}

// Whole-run SSSP from a fixed source with either stepping kernel; the ρ-vs-Δ
// scaling curves share the CL-DIAM thread sweep so the A/B is apples-to-apples
// at every parallelism level.
double time_sssp(const Graph& g, exec::Algorithm algo) {
  sssp::DeltaSteppingOptions o;
  o.algorithm = algo;
  util::Timer t;
  (void)sssp::shortest_paths(g, 0, o);
  return t.seconds();
}

/// One graph's pinned-vs-unpinned A/B: identical partitioned Δ-stepping run,
/// placement off vs round-robin over the discovered topology (best of 3 each
/// to damp scheduler noise). Results are bit-identical by contract; only the
/// wall clock and the placement-derived cross-node counters differ.
struct PlacementAb {
  double unpinned = 0.0;
  double pinned = 0.0;
  std::uint64_t cross_node_messages = 0;
  std::uint64_t cross_node_bytes = 0;
};

PlacementAb placement_ab(const Graph& g, std::uint32_t shards) {
  sssp::DeltaSteppingOptions o;
  o.partition.num_partitions = shards;
  PlacementAb out;
  out.unpinned = 1e300;
  out.pinned = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    o.placement.strategy = mr::PlacementStrategy::kNone;
    util::Timer tu;
    (void)sssp::shortest_paths(g, 0, o);
    out.unpinned = std::min(out.unpinned, tu.seconds());

    o.placement.strategy = mr::PlacementStrategy::kRoundRobin;
    util::Timer tp;
    const auto r = sssp::shortest_paths(g, 0, o);
    out.pinned = std::min(out.pinned, tp.seconds());
    out.cross_node_messages = r.stats.cross_node_messages;
    out.cross_node_bytes = r.stats.cross_node_bytes;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options opts(argc, argv);
  const util::Scale scale = opts.has("scale")
                                ? util::parse_scale(opts.get_string("scale", "ci"))
                                : util::scale_from_env();
  bench::print_preamble("fig4_scalability: CL-DIAM time vs parallelism",
                        "Figure 4 (2..16 Spark machines -> OpenMP threads)",
                        scale);

  const int max_threads = static_cast<int>(opts.get_int(
      "max-threads", util::num_threads()));

  std::cerr << "  [building] R-MAT instance\n";
  util::Xoshiro256 rng(311);
  const unsigned rs = util::pick<unsigned>(scale, 17, 20, 26);
  const Graph rmat_g = gen::uniform_weights(
      largest_component(gen::rmat(rs, 16, rng)).graph, 313);

  std::cerr << "  [building] roads product instance\n";
  const NodeId copies = util::pick<NodeId>(scale, 3, 3, 3);
  const NodeId side = util::pick<NodeId>(scale, 200, 420, 2800);
  util::Xoshiro256 rng2(317);
  const Graph roads_g =
      gen::roads_product(copies, gen::road_network(side, side, rng2));

  util::Table table({"threads", "R-MAT time", "R-MAT speedup", "roads time",
                     "roads speedup", "roads DS", "roads RS"});
  double rmat_t1 = 0.0, roads_t1 = 0.0;
  std::vector<int> threads;
  for (int t = 1; t <= max_threads; t *= 2) threads.push_back(t);
  if (threads.empty() || threads.back() != max_threads) {
    threads.push_back(max_threads);
  }
  bench::JsonReport report("fig4_scalability");
  report.put("scale", util::scale_name(scale));
  report.put("max_threads", max_threads);
  report.put("rmat_nodes", static_cast<std::uint64_t>(rmat_g.num_nodes()));
  report.put("rmat_edges", rmat_g.num_edges());
  report.put("roads_nodes", static_cast<std::uint64_t>(roads_g.num_nodes()));
  report.put("roads_edges", roads_g.num_edges());

  const int prev = util::num_threads();
  for (const int t : threads) {
    util::set_num_threads(t);
    std::cerr << "  [running] threads=" << t << "\n";
    const double rt = time_cldiam(rmat_g, 3);
    const double dt = time_cldiam(roads_g, 5);
    const double ds = time_sssp(roads_g, exec::Algorithm::kDeltaStepping);
    const double rs_sssp = time_sssp(roads_g, exec::Algorithm::kRhoStepping);
    const double ds_rmat = time_sssp(rmat_g, exec::Algorithm::kDeltaStepping);
    const double rs_rmat = time_sssp(rmat_g, exec::Algorithm::kRhoStepping);
    if (t == 1) {
      rmat_t1 = rt;
      roads_t1 = dt;
    }
    table.row()
        .cell(std::to_string(t))
        .cell(util::format_duration(rt))
        .num(rmat_t1 / rt, 2)
        .cell(util::format_duration(dt))
        .num(roads_t1 / dt, 2)
        .cell(util::format_duration(ds))
        .cell(util::format_duration(rs_sssp));
    report.add_row()
        .put("threads", t)
        .put("rmat_seconds", rt)
        .put("rmat_speedup", rmat_t1 / rt)
        .put("roads_seconds", dt)
        .put("roads_speedup", roads_t1 / dt)
        .put("roads_delta_seconds", ds)
        .put("roads_rho_seconds", rs_sssp)
        .put("rmat_delta_seconds", ds_rmat)
        .put("rmat_rho_seconds", rs_rmat);
  }
  util::set_num_threads(prev);

  table.print(std::cout);

  // NUMA placement A/B at full parallelism: same partitioned run, unpinned
  // vs round-robin-pinned. On CI's single node this is a sanity check that
  // placement costs nothing; on multi-socket hardware it is the payoff.
  const auto topo = util::topo::discover();
  std::cerr << "  [running] placement A/B (nodes=" << topo.num_nodes()
            << ")\n";
  util::set_num_threads(max_threads);
  const std::uint32_t shards = 8;
  const PlacementAb ab_rmat = placement_ab(rmat_g, shards);
  const PlacementAb ab_roads = placement_ab(roads_g, shards);
  util::set_num_threads(prev);

  util::Table ptable({"graph", "unpinned", "pinned", "speedup",
                      "xnode msgs", "xnode bytes"});
  const auto prow = [&ptable](const char* name, const PlacementAb& ab) {
    ptable.row()
        .cell(name)
        .cell(util::format_duration(ab.unpinned))
        .cell(util::format_duration(ab.pinned))
        .num(ab.unpinned / ab.pinned, 2)
        .cell(std::to_string(ab.cross_node_messages))
        .cell(std::to_string(ab.cross_node_bytes));
  };
  prow("R-MAT", ab_rmat);
  prow("roads", ab_roads);
  std::printf("\nNUMA placement A/B (K=%u shards, round-robin vs none):\n",
              shards);
  ptable.print(std::cout);

  report.put("topology_nodes", static_cast<std::uint64_t>(topo.num_nodes()));
  report.put("topology_cpus", static_cast<std::uint64_t>(topo.total_cpus()));
  report.put("placement_shards", static_cast<std::uint64_t>(shards));
  report.put("numa_placement_speedup_rmat", ab_rmat.unpinned / ab_rmat.pinned);
  report.put("numa_placement_speedup_roads",
             ab_roads.unpinned / ab_roads.pinned);
  report.put("rmat_cross_node_messages", ab_rmat.cross_node_messages);
  report.put("rmat_cross_node_bytes", ab_rmat.cross_node_bytes);
  report.put("roads_cross_node_messages", ab_roads.cross_node_messages);
  report.put("roads_cross_node_bytes", ab_roads.cross_node_bytes);
  report.write();
  std::printf(
      "\nexpected shape (paper, Fig. 4): time decreases as parallelism\n"
      "grows for both topologies (speedup > 1 beyond one thread; perfect\n"
      "scaling is not expected -- the paper's own curves flatten too).\n");
  return 0;
}
