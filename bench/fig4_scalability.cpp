// Figure 4 — strong scaling of CL-DIAM with the degree of parallelism.
// The paper scales Spark over 2..16 machines on R-MAT(26) and roads(3)
// (similar node counts, different topology); here the parallel resource is
// OpenMP threads.

#include <cstdio>
#include <iostream>
#include <vector>

#include "comparison_common.hpp"
#include "core/diameter.hpp"
#include "report.hpp"
#include "gen/product.hpp"
#include "gen/rmat.hpp"
#include "gen/road.hpp"
#include "gen/weights.hpp"
#include "graph/components.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/rho_stepping.hpp"
#include "util/options.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gdiam;

namespace {

double time_cldiam(const Graph& g, std::uint64_t seed) {
  core::DiameterApproxOptions o;
  o.cluster.tau = core::tau_for_cluster_target(
      g.num_nodes(), bench::auto_quotient_target(g.num_nodes()));
  o.cluster.seed = seed;
  o.quotient.exact_threshold = 1024;
  util::Timer t;
  (void)core::approximate_diameter(g, o);
  return t.seconds();
}

// Whole-run SSSP from a fixed source with either stepping kernel; the ρ-vs-Δ
// scaling curves share the CL-DIAM thread sweep so the A/B is apples-to-apples
// at every parallelism level.
double time_sssp(const Graph& g, exec::Algorithm algo) {
  sssp::DeltaSteppingOptions o;
  o.algorithm = algo;
  util::Timer t;
  (void)sssp::shortest_paths(g, 0, o);
  return t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options opts(argc, argv);
  const util::Scale scale = opts.has("scale")
                                ? util::parse_scale(opts.get_string("scale", "ci"))
                                : util::scale_from_env();
  bench::print_preamble("fig4_scalability: CL-DIAM time vs parallelism",
                        "Figure 4 (2..16 Spark machines -> OpenMP threads)",
                        scale);

  const int max_threads = static_cast<int>(opts.get_int(
      "max-threads", util::num_threads()));

  std::cerr << "  [building] R-MAT instance\n";
  util::Xoshiro256 rng(311);
  const unsigned rs = util::pick<unsigned>(scale, 17, 20, 26);
  const Graph rmat_g = gen::uniform_weights(
      largest_component(gen::rmat(rs, 16, rng)).graph, 313);

  std::cerr << "  [building] roads product instance\n";
  const NodeId copies = util::pick<NodeId>(scale, 3, 3, 3);
  const NodeId side = util::pick<NodeId>(scale, 200, 420, 2800);
  util::Xoshiro256 rng2(317);
  const Graph roads_g =
      gen::roads_product(copies, gen::road_network(side, side, rng2));

  util::Table table({"threads", "R-MAT time", "R-MAT speedup", "roads time",
                     "roads speedup", "roads DS", "roads RS"});
  double rmat_t1 = 0.0, roads_t1 = 0.0;
  std::vector<int> threads;
  for (int t = 1; t <= max_threads; t *= 2) threads.push_back(t);
  if (threads.empty() || threads.back() != max_threads) {
    threads.push_back(max_threads);
  }
  bench::JsonReport report("fig4_scalability");
  report.put("scale", util::scale_name(scale));
  report.put("max_threads", max_threads);
  report.put("rmat_nodes", static_cast<std::uint64_t>(rmat_g.num_nodes()));
  report.put("rmat_edges", rmat_g.num_edges());
  report.put("roads_nodes", static_cast<std::uint64_t>(roads_g.num_nodes()));
  report.put("roads_edges", roads_g.num_edges());

  const int prev = util::num_threads();
  for (const int t : threads) {
    util::set_num_threads(t);
    std::cerr << "  [running] threads=" << t << "\n";
    const double rt = time_cldiam(rmat_g, 3);
    const double dt = time_cldiam(roads_g, 5);
    const double ds = time_sssp(roads_g, exec::Algorithm::kDeltaStepping);
    const double rs_sssp = time_sssp(roads_g, exec::Algorithm::kRhoStepping);
    const double ds_rmat = time_sssp(rmat_g, exec::Algorithm::kDeltaStepping);
    const double rs_rmat = time_sssp(rmat_g, exec::Algorithm::kRhoStepping);
    if (t == 1) {
      rmat_t1 = rt;
      roads_t1 = dt;
    }
    table.row()
        .cell(std::to_string(t))
        .cell(util::format_duration(rt))
        .num(rmat_t1 / rt, 2)
        .cell(util::format_duration(dt))
        .num(roads_t1 / dt, 2)
        .cell(util::format_duration(ds))
        .cell(util::format_duration(rs_sssp));
    report.add_row()
        .put("threads", t)
        .put("rmat_seconds", rt)
        .put("rmat_speedup", rmat_t1 / rt)
        .put("roads_seconds", dt)
        .put("roads_speedup", roads_t1 / dt)
        .put("roads_delta_seconds", ds)
        .put("roads_rho_seconds", rs_sssp)
        .put("rmat_delta_seconds", ds_rmat)
        .put("rmat_rho_seconds", rs_rmat);
  }
  util::set_num_threads(prev);

  table.print(std::cout);
  report.write();
  std::printf(
      "\nexpected shape (paper, Fig. 4): time decreases as parallelism\n"
      "grows for both topologies (speedup > 1 beyond one thread; perfect\n"
      "scaling is not expected -- the paper's own curves flatten too).\n");
  return 0;
}
