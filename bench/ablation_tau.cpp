// τ sweep: the paper sets τ so the quotient stays ≤ 100k nodes and notes the
// round complexity is nonincreasing in the number of clusters. This bench
// sweeps τ on a road network and an R-MAT graph, reporting cluster count,
// radius, rounds, work and approximation ratio.

#include <cstdio>
#include <iostream>

#include "comparison_common.hpp"
#include "core/diameter.hpp"
#include "gen/rmat.hpp"
#include "gen/road.hpp"
#include "gen/weights.hpp"
#include "graph/components.hpp"
#include "sssp/sweep.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gdiam;

namespace {

void sweep_tau(const std::string& label, const Graph& g) {
  const Weight lb = sssp::diameter_lower_bound(g, 4, 17).lower_bound;
  std::printf("\n%s: n=%u m=%llu diameter LB=%.4g\n", label.c_str(),
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()),
              lb);
  util::Table table({"tau", "clusters", "radius", "ratio", "rounds", "work",
                     "time"});
  for (const std::uint32_t tau : {1u, 4u, 16u, 64u, 256u}) {
    std::cerr << "  [running] " << label << " tau=" << tau << "\n";
    core::DiameterApproxOptions o;
    o.cluster.tau = tau;
    o.cluster.seed = 3;
    o.quotient.exact_threshold = 1024;
    util::Timer t;
    const auto r = core::approximate_diameter(g, o);
    table.row()
        .cell(std::to_string(tau))
        .count(r.num_clusters)
        .sci(r.radius, 2)
        .num(r.estimate / lb, 3)
        .count(r.stats.rounds())
        .sci(static_cast<double>(r.stats.work()), 2)
        .cell(util::format_duration(t.seconds()));
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options opts(argc, argv);
  const util::Scale scale = opts.has("scale")
                                ? util::parse_scale(opts.get_string("scale", "ci"))
                                : util::scale_from_env();
  bench::print_preamble("ablation_tau: granularity sweep",
                        "Section 4/5 (tau controls clusters vs rounds)",
                        scale);

  {
    const NodeId side = util::pick<NodeId>(scale, 180, 400, 2000);
    util::Xoshiro256 rng(601);
    sweep_tau("road network", gen::road_network(side, side, rng));
  }
  {
    const unsigned s = util::pick<unsigned>(scale, 14, 17, 22);
    util::Xoshiro256 rng(607);
    sweep_tau("R-MAT(" + std::to_string(s) + ")",
              gen::uniform_weights(
                  largest_component(gen::rmat(s, 16, rng)).graph, 613));
  }

  std::printf(
      "\nexpected shape: more clusters (larger tau) -> smaller radius and\n"
      "fewer growing rounds per stage, at the cost of a larger quotient;\n"
      "the ratio stays in a narrow band across the sweep.\n");
  return 0;
}
