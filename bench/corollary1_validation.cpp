// Corollary 1 validation: on bounded-doubling-dimension graphs with random
// edge weights, CLUSTER's round complexity scales with ⌈Ψ(G)/τ^(1/b)⌉
// (polylog factors aside), while Δ-stepping needs Ω(Ψ(G)) rounds under
// linear space. We measure on mesh(S) (doubling dimension b = 2):
//   * the doubling-dimension probe should report ≈ 2;
//   * CLUSTER rounds should drop polynomially as τ grows (≈ τ^(1/2) on a
//     mesh), while Δ-stepping rounds stay pinned near Ψ(G);
//   * ℓ_Δ at Δ ≈ R_G(τ)·log n explains the measured round counts.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "analysis/hop.hpp"
#include "analysis/metrics.hpp"
#include "comparison_common.hpp"
#include "core/cluster.hpp"
#include "gen/mesh.hpp"
#include "gen/weights.hpp"
#include "sssp/delta_stepping.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace gdiam;

int main(int argc, char** argv) {
  const util::Options opts(argc, argv);
  const util::Scale scale = opts.has("scale")
                                ? util::parse_scale(opts.get_string("scale", "ci"))
                                : util::scale_from_env();
  bench::print_preamble(
      "corollary1_validation: rounds vs hop diameter on a mesh",
      "Corollary 1 (bounded doubling dimension, random weights)", scale);

  const NodeId side = util::pick<NodeId>(scale, 128, 256, 1024);
  const Graph g = gen::uniform_weights(gen::mesh(side), 801);
  const std::uint32_t psi = analysis::hop_diameter_lower_bound(g, 4, 3);
  std::printf("mesh(%u): n=%u, hop diameter Psi(G) >= %u\n", side,
              g.num_nodes(), psi);

  const auto dd = analysis::estimate_doubling_dimension(
      g, /*center_samples=*/3, /*max_radius=*/8, 5);
  std::printf("doubling-dimension probe: b ~= %u (over %u balls; theory: 2)\n",
              dd.dimension, dd.balls_probed);

  // Δ-stepping baseline rounds (best of a small Δ sweep).
  std::uint64_t ds_rounds = ~0ULL;
  for (const double f : {1.0, 8.0, 64.0}) {
    sssp::DeltaSteppingOptions o;
    o.delta = f * g.avg_weight();
    const auto r = sssp::delta_stepping(g, 0, o);
    ds_rounds = std::min(ds_rounds, r.stats.rounds());
  }
  std::printf("Delta-stepping rounds (best Delta): %llu\n\n",
              static_cast<unsigned long long>(ds_rounds));

  util::Table table({"tau", "CLUSTER rounds", "radius", "ell(radius*logn)",
                     "rounds x tau^(1/2)"});
  for (const std::uint32_t tau : {1u, 4u, 16u, 64u}) {
    std::cerr << "  [running] tau=" << tau << "\n";
    core::ClusterOptions o;
    o.tau = tau;
    o.seed = 3;
    const core::Clustering c = core::cluster(g, o);
    const double logn = std::log2(static_cast<double>(g.num_nodes()));
    const std::uint32_t ell =
        analysis::estimate_ell(g, c.radius * logn, /*samples=*/4, 7);
    table.row()
        .cell(std::to_string(tau))
        .count(c.stats.rounds())
        .num(c.radius, 2)
        .cell(std::to_string(ell))
        .num(static_cast<double>(c.stats.rounds()) * std::sqrt(double(tau)),
             0);
  }
  table.print(std::cout);

  std::printf(
      "\nexpected shape (Corollary 1 with b=2): CLUSTER rounds shrink as tau\n"
      "grows (radius ~ Psi/sqrt(tau)), staying far below the Delta-stepping\n"
      "round count, which is pinned at the Psi(G) scale. The last column\n"
      "(rounds x sqrt(tau)) should stay within a polylog band if the\n"
      "tau^(1/b) law holds.\n");
  return 0;
}
