#include <algorithm>
#include "comparison_common.hpp"

#include <cstdio>
#include <iostream>

#include "core/diameter.hpp"
#include "gen/mesh.hpp"
#include "gen/product.hpp"
#include "gen/rmat.hpp"
#include "gen/road.hpp"
#include "gen/weights.hpp"
#include "graph/components.hpp"
#include "sssp/rho_stepping.hpp"
#include "sssp/sweep.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace gdiam::bench {

namespace {

Graph rmat_giant_uniform(unsigned scale, EdgeIndex edge_factor,
                         std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const Graph raw = gen::rmat(scale, edge_factor, rng);
  return gen::uniform_weights(largest_component(raw).graph, seed ^ 0x77);
}

}  // namespace

std::vector<BenchmarkGraph> table2_suite(util::Scale scale) {
  using util::pick;
  // Grid sides for the road-network substitutes and the mesh; R-MAT scales.
  const NodeId usa_side = pick<NodeId>(scale, 260, 560, 4800);
  const NodeId cal_side = pick<NodeId>(scale, 130, 280, 1370);
  const NodeId mesh_side = pick<NodeId>(scale, 220, 512, 2048);
  const unsigned lj_scale = pick<unsigned>(scale, 15, 18, 22);
  const unsigned tw_scale = pick<unsigned>(scale, 15, 18, 22);
  const unsigned rmat_scale = pick<unsigned>(scale, 16, 19, 24);

  return {
      {"roads-USA*", "synthetic road network (DESIGN.md: DIMACS data offline)",
       [=] {
         util::Xoshiro256 rng(101);
         return gen::road_network(usa_side, usa_side, rng);
       }},
      {"roads-CAL*", "synthetic road network (smaller grid)",
       [=] {
         util::Xoshiro256 rng(103);
         return gen::road_network(cal_side, cal_side, rng);
       }},
      {"mesh", "",
       [=] { return gen::uniform_weights(gen::mesh(mesh_side), 107); }},
      {"livejournal*", "R-MAT stand-in for the SNAP graph (edge factor 8)",
       [=] { return rmat_giant_uniform(lj_scale, 8, 109); }},
      {"twitter*", "R-MAT stand-in for the LAW graph (edge factor 16)",
       [=] { return rmat_giant_uniform(tw_scale, 16, 113); }},
      {"R-MAT(S)", "",
       [=] { return rmat_giant_uniform(rmat_scale, 16, 127); }},
  };
}

NodeId auto_quotient_target(NodeId n) {
  return std::min<NodeId>(100000, std::max<NodeId>(512, n / 3));
}

ComparisonRow compare_on_graph(const std::string& name, const Graph& g,
                               const ComparisonConfig& cfg) {
  ComparisonRow row;
  row.name = name;
  row.nodes = g.num_nodes();
  row.edges = g.num_edges();

  // Ground truth: iterated-sweep lower bound (paper, Table 2 caption).
  row.diameter_lb =
      sssp::diameter_lower_bound(g, cfg.lower_bound_sweeps, cfg.seed)
          .lower_bound;
  if (row.diameter_lb <= 0.0) row.diameter_lb = 1.0;  // degenerate graphs

  // --- CL-DIAM -------------------------------------------------------------
  {
    core::DiameterApproxOptions o;
    const NodeId target = cfg.quotient_target != 0
                              ? cfg.quotient_target
                              : auto_quotient_target(g.num_nodes());
    o.cluster.tau = core::tau_for_cluster_target(g.num_nodes(), target);
    o.cluster.seed = cfg.seed;
    o.quotient.exact_threshold = 1024;
    o.quotient.seed = cfg.seed;
    util::Timer t;
    const core::DiameterApproxResult r = core::approximate_diameter(g, o);
    row.cl_seconds = t.seconds();
    row.cl_ratio = r.estimate / row.diameter_lb;
    row.cl_stats = r.stats;
    row.cl_clusters = r.num_clusters;
  }

  // --- Δ-stepping, best Δ over the sweep (fewest rounds wins) --------------
  util::Xoshiro256 rng(cfg.seed ^ 0xd5);
  const auto source = static_cast<NodeId>(rng.next_bounded(g.num_nodes()));
  {
    bool first = true;
    for (const double factor : cfg.delta_sweep) {
      sssp::DeltaSteppingOptions o;
      o.delta = factor * g.avg_weight();
      util::Timer t;
      const sssp::SsspDiameterApprox a = sssp::diameter_two_approx(g, source, o);
      const double seconds = t.seconds();
      if (first || a.stats.rounds() < row.ds_stats.rounds()) {
        row.ds_ratio = a.upper_bound / row.diameter_lb;
        row.ds_seconds = seconds;
        row.ds_stats = a.stats;
        row.ds_delta = a.delta_used;
        first = false;
      }
    }
  }

  // --- ρ-stepping (auto ρ), same source: the whole-run kernel A/B ----------
  {
    sssp::DeltaSteppingOptions o;
    o.algorithm = exec::Algorithm::kRhoStepping;
    util::Timer t;
    const sssp::DeltaSteppingResult r = sssp::rho_stepping(g, source, o);
    row.rho_seconds = t.seconds();
    row.rho_ratio = 2.0 * r.eccentricity / row.diameter_lb;
    row.rho_stats = r.stats;
    row.rho_used = r.rho_used;
  }
  return row;
}

std::vector<ComparisonRow> run_table2(util::Scale scale,
                                      const ComparisonConfig& cfg) {
  std::vector<ComparisonRow> rows;
  for (const BenchmarkGraph& b : table2_suite(scale)) {
    std::cerr << "  [building] " << b.name << "...\n";
    const Graph g = b.build();
    std::cerr << "  [running]  " << b.name << "  n=" << g.num_nodes()
              << " m=" << g.num_edges() << "\n";
    rows.push_back(compare_on_graph(b.name, g, cfg));
  }
  return rows;
}

void print_preamble(const char* experiment, const char* paper_ref,
                    util::Scale scale) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("scale: %s (set GDIAM_SCALE=ci|small|paper)\n",
              util::scale_name(scale));
  std::printf("graphs marked * are synthetic stand-ins for datasets that\n");
  std::printf("cannot be downloaded here -- see DESIGN.md section 2\n");
  std::printf("==============================================================\n");
}

}  // namespace gdiam::bench
