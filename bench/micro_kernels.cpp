// google-benchmark micro kernels: throughput of the primitives the paper's
// round/work counts are made of — Δ-growing steps (push vs pull), Δ-stepping
// phases, Dijkstra, generators, components. These are the constants behind
// the Table 2 wall-clock column.

#include <benchmark/benchmark.h>

#include <bit>
#include <cmath>

#include "core/cluster.hpp"
#include "core/diameter.hpp"
#include "core/frontier.hpp"
#include "core/growing.hpp"
#include "exec/context.hpp"
#include "gen/mesh.hpp"
#include "gen/rmat.hpp"
#include "gen/road.hpp"
#include "gen/weights.hpp"
#include "graph/components.hpp"
#include "graph/split_csr.hpp"
#include "report.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/rho_stepping.hpp"
#include "util/bitpack.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/topology.hpp"

namespace {

using namespace gdiam;

const Graph& mesh_graph() {
  static const Graph g = gen::uniform_weights(gen::mesh(256), 3);
  return g;
}

const Graph& rmat_graph() {
  static const Graph g = [] {
    util::Xoshiro256 rng(5);
    return gen::uniform_weights(
        largest_component(gen::rmat(14, 16, rng)).graph, 7);
  }();
  return g;
}

const Graph& road_graph() {
  static const Graph g = [] {
    util::Xoshiro256 rng(9);
    return gen::road_network(160, 160, rng);
  }();
  return g;
}

// ---------------------------------------------------------------------------
// Split-vs-branch A/B for the light-relaxation inner loop — the tentpole of
// the split-CSR layout, measured in isolation. Both variants perform the
// same per-light-edge work (message count + tentative atomic min against a
// settled distance array, like a steady-state Δ-stepping phase); the only
// difference is the iteration pattern: branch-filtering the full adjacency
// vs walking the presplit light segment.

Weight relax_delta() { return rmat_graph().avg_weight(); }

void BM_RelaxLightBranch(benchmark::State& state) {
  const Graph& g = rmat_graph();
  const Weight delta = relax_delta();
  const NodeId n = g.num_nodes();
  // dist = 0 everywhere: no relaxation ever wins, so every iteration scans
  // the same edges and does the same compare work (steady state).
  std::vector<std::uint64_t> dist(n, util::double_order_bits(0.0));
  for (auto _ : state) {
    std::uint64_t messages = 0;
#pragma omp parallel for schedule(dynamic, 64) reduction(+ : messages)
    for (NodeId u = 0; u < n; ++u) {
      const auto nbr = g.neighbors(u);
      const auto wts = g.weights(u);
      for (std::size_t i = 0; i < nbr.size(); ++i) {
        const Weight w = wts[i];
        if (!(w <= delta)) continue;  // the per-edge kind branch
        ++messages;
        (void)util::atomic_fetch_min(dist[nbr[i]],
                                     util::double_order_bits(w));
      }
    }
    benchmark::DoNotOptimize(messages);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_directed_edges()));
}
BENCHMARK(BM_RelaxLightBranch)->Unit(benchmark::kMillisecond);

void BM_RelaxLightSplit(benchmark::State& state) {
  const Graph& g = rmat_graph();
  static const SplitCsr split(rmat_graph(), relax_delta());
  const NodeId n = g.num_nodes();
  std::vector<std::uint64_t> dist(n, util::double_order_bits(0.0));
  for (auto _ : state) {
    std::uint64_t messages = 0;
#pragma omp parallel for schedule(dynamic, 64) reduction(+ : messages)
    for (NodeId u = 0; u < n; ++u) {
      const auto nbr = split.light_neighbors(u);
      const auto wts = split.light_weights(u);
      for (std::size_t i = 0; i < nbr.size(); ++i) {
        ++messages;
        (void)util::atomic_fetch_min(dist[nbr[i]],
                                     util::double_order_bits(wts[i]));
      }
    }
    benchmark::DoNotOptimize(messages);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_directed_edges()));
}
BENCHMARK(BM_RelaxLightSplit)->Unit(benchmark::kMillisecond);

// End-to-end view of the same choice: whole Δ-stepping runs with the
// presplit layout on vs off.
void BM_DeltaSteppingPresplitOff(benchmark::State& state) {
  const Graph& g = rmat_graph();
  sssp::DeltaSteppingOptions o;
  o.presplit = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sssp::delta_stepping(g, 0, o));
  }
}
BENCHMARK(BM_DeltaSteppingPresplitOff)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Sparse-vs-dense A/B for per-round frontier maintenance — the tentpole of
// the adaptive frontier engine, measured in isolation. Both kernels run the
// same deterministic hop-relaxation waves over the road network (frontiers
// peak around 2·side of n = side² nodes — the sparse regime that dominates
// road/mesh rounds); the only difference is how the active set is kept:
// thread-local queues with stamp dedup (core::Frontier, sparse
// representation pinned) vs the legacy byte-flag arrays whose every round
// pays two full-length scans (enumerate + reset).

/// One wave of hop relaxation out of `u`; lowers hop counts atomically and
/// reports each improved node to `on_improved` exactly once per wave.
template <typename OnImproved>
inline void relax_hops(const Graph& g, NodeId u, std::vector<std::uint32_t>& hop,
                       OnImproved&& on_improved) {
  const std::uint32_t nd = hop[u] + 1;
  const auto nbr = g.neighbors(u);
  for (std::size_t i = 0; i < nbr.size(); ++i) {
    const NodeId v = nbr[i];
    std::atomic_ref<std::uint32_t> slot(hop[v]);
    std::uint32_t cur = slot.load(std::memory_order_relaxed);
    while (nd < cur) {
      if (slot.compare_exchange_weak(cur, nd, std::memory_order_relaxed)) {
        on_improved(v);
        break;
      }
    }
  }
}

void BM_FrontierSparse(benchmark::State& state) {
  const Graph& g = road_graph();
  const NodeId n = g.num_nodes();
  core::FrontierOptions fo;
  fo.adaptive = false;  // pin the sparse representation for the A/B
  core::Frontier frontier(n, fo);
  std::vector<std::uint32_t> hop(n);
  std::uint64_t waves = 0;
  for (auto _ : state) {
    std::fill(hop.begin(), hop.end(), ~0u);
    frontier.clear();
    hop[0] = 0;
    frontier.insert(0);
    frontier.advance();
    while (!frontier.empty()) {
      const auto& active = frontier.nodes();
#pragma omp parallel for schedule(dynamic, 64)
      for (std::size_t f = 0; f < active.size(); ++f) {
        relax_hops(g, active[f], hop,
                   [&](NodeId v) { frontier.insert(v); });
      }
      frontier.advance();
      ++waves;
    }
    benchmark::DoNotOptimize(waves);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(waves));
}
BENCHMARK(BM_FrontierSparse)->Unit(benchmark::kMillisecond);

void BM_FrontierDense(benchmark::State& state) {
  const Graph& g = road_graph();
  const NodeId n = g.num_nodes();
  std::vector<std::uint32_t> hop(n);
  std::vector<std::uint8_t> in_frontier(n), in_next(n);
  std::uint64_t waves = 0;
  for (auto _ : state) {
    std::fill(hop.begin(), hop.end(), ~0u);
    std::fill(in_frontier.begin(), in_frontier.end(), 0);
    std::fill(in_next.begin(), in_next.end(), 0);
    hop[0] = 0;
    in_frontier[0] = 1;
    std::uint64_t active = 1;
    while (active > 0) {
      std::uint64_t next_active = 0;
      // The legacy representation: every wave scans all n flags to find the
      // active nodes, then another full pass swaps/clears the flag arrays.
#pragma omp parallel for schedule(dynamic, 1024) reduction(+ : next_active)
      for (NodeId u = 0; u < n; ++u) {
        if (!in_frontier[u]) continue;
        relax_hops(g, u, hop, [&](NodeId v) {
          std::atomic_ref<std::uint8_t> flag(in_next[v]);
          if (flag.exchange(1, std::memory_order_relaxed) == 0) ++next_active;
        });
      }
      in_frontier.swap(in_next);
#pragma omp parallel for schedule(static, 4096)
      for (NodeId u = 0; u < n; ++u) in_next[u] = 0;
      active = next_active;
      ++waves;
    }
    benchmark::DoNotOptimize(waves);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(waves));
}
BENCHMARK(BM_FrontierDense)->Unit(benchmark::kMillisecond);

// Whole-run adaptive on/off A/B: the sparse-heavy road family is where the
// frontier engine and the RoundBuffers pool pay off; dense-heavy rmat runs
// must not regress (the JSON report computes both ratios). Both sides share
// a context — one SplitCsr for all iterations — so the ratio isolates
// FrontierOptions::adaptive, not the presplit cache.
void BM_DeltaSteppingRoad(benchmark::State& state) {
  const Graph& g = road_graph();
  exec::Context ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sssp::delta_stepping(g, 0, {}, &ctx));
  }
}
BENCHMARK(BM_DeltaSteppingRoad)->Unit(benchmark::kMillisecond);

void BM_DeltaSteppingRoadBaseline(benchmark::State& state) {
  const Graph& g = road_graph();
  sssp::DeltaSteppingOptions o;
  o.frontier.adaptive = false;
  exec::Context ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sssp::delta_stepping(g, 0, o, &ctx));
  }
}
BENCHMARK(BM_DeltaSteppingRoadBaseline)->Unit(benchmark::kMillisecond);

void BM_DeltaSteppingRmatBaseline(benchmark::State& state) {
  const Graph& g = rmat_graph();
  sssp::DeltaSteppingOptions o;
  o.frontier.adaptive = false;
  exec::Context ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sssp::delta_stepping(g, 0, o, &ctx));
  }
}
BENCHMARK(BM_DeltaSteppingRmatBaseline)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// ρ-vs-Δ whole-run A/B (sssp/rho_stepping.hpp): the same two families, same
// shared-context setup as the BM_DeltaStepping{Road,Rmat} runs above, so
// the JSON ratio isolates the kernel policy — bucket-by-distance vs
// batch-by-work. Road (high diameter: Δ pays rounds ∝ diameter/Δ) is where
// ρ-stepping is expected to win; rmat (low diameter) is the guard rail.

void BM_RhoSteppingRoad(benchmark::State& state) {
  const Graph& g = road_graph();
  sssp::DeltaSteppingOptions o;
  o.algorithm = exec::Algorithm::kRhoStepping;
  exec::Context ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sssp::rho_stepping(g, 0, o, &ctx));
  }
}
BENCHMARK(BM_RhoSteppingRoad)->Unit(benchmark::kMillisecond);

void BM_RhoSteppingRmat(benchmark::State& state) {
  const Graph& g = rmat_graph();
  sssp::DeltaSteppingOptions o;
  o.algorithm = exec::Algorithm::kRhoStepping;
  exec::Context ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sssp::rho_stepping(g, 0, o, &ctx));
  }
}
BENCHMARK(BM_RhoSteppingRmat)->Unit(benchmark::kMillisecond);

// Sampled-vs-exact frontier sizing, whole-run: the same Δ-stepping runs with
// FrontierOptions::sampled_size_estimate on — every dense advance() decides
// its representation from ~1024 probes (noise-margin guarded) instead of the
// exact sealed size. Distances are identical; the ratio tracks what the
// policy swap costs/saves end to end per family.
void BM_DeltaSteppingRoadSampled(benchmark::State& state) {
  const Graph& g = road_graph();
  sssp::DeltaSteppingOptions o;
  o.frontier.sampled_size_estimate = true;
  exec::Context ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sssp::delta_stepping(g, 0, o, &ctx));
  }
}
BENCHMARK(BM_DeltaSteppingRoadSampled)->Unit(benchmark::kMillisecond);

void BM_DeltaSteppingRmatSampled(benchmark::State& state) {
  const Graph& g = rmat_graph();
  sssp::DeltaSteppingOptions o;
  o.frontier.sampled_size_estimate = true;
  exec::Context ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sssp::delta_stepping(g, 0, o, &ctx));
  }
}
BENCHMARK(BM_DeltaSteppingRmatSampled)->Unit(benchmark::kMillisecond);

// The size-query primitive in isolation: exact popcount scan of a dense
// bitmap vs ~1024 probes — the asymptotic claim behind sampled sizing
// (O(n/64) vs O(probes), independent of n).
constexpr gdiam::NodeId kSizeBenchNodes = 1u << 22;

void BM_FrontierSizeExact(benchmark::State& state) {
  std::vector<std::uint64_t> bits(kSizeBenchNodes / 64);
  util::Xoshiro256 rng(21);
  for (auto& w : bits) w = rng.next() & rng.next();  // ~25% occupancy
  for (auto _ : state) {
    std::size_t count = 0;
    for (const std::uint64_t w : bits) {
      count += static_cast<std::size_t>(std::popcount(w));
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_FrontierSizeExact)->Unit(benchmark::kMicrosecond);

void BM_FrontierSizeSampled(benchmark::State& state) {
  std::vector<std::uint64_t> bits(kSizeBenchNodes / 64);
  util::Xoshiro256 rng(21);
  for (auto& w : bits) w = rng.next() & rng.next();
  const core::FrontierOptions fo;
  for (auto _ : state) {
    util::SplitMix64 sm(fo.sample_seed);
    std::uint64_t hits = 0;
    for (std::uint32_t i = 0; i < fo.size_probes; ++i) {
      const auto v = static_cast<NodeId>(
          (static_cast<unsigned __int128>(sm.next()) * kSizeBenchNodes) >> 64);
      hits += (bits[v >> 6] >> (v & 63)) & 1ULL;
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_FrontierSizeSampled)->Unit(benchmark::kMicrosecond);

void BM_GrowingStepPush(benchmark::State& state) {
  const Graph& g = mesh_graph();
  for (auto _ : state) {
    state.PauseTiming();
    core::GrowingEngine e(g, core::GrowingPolicy::kPush);
    util::Xoshiro256 rng(11);
    for (int c = 0; c < 64; ++c) {
      const auto u = static_cast<NodeId>(rng.next_bounded(g.num_nodes()));
      e.set_source(u, u);
    }
    core::GrowingStepParams p;
    p.light_threshold = p.uniform_budget = 8.0 * g.avg_weight();
    e.rebuild_frontier(p);
    state.ResumeTiming();
    while (e.step(p).updates > 0) {
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_directed_edges()));
}
BENCHMARK(BM_GrowingStepPush)->Unit(benchmark::kMillisecond);

void BM_GrowingStepPull(benchmark::State& state) {
  const Graph& g = mesh_graph();
  for (auto _ : state) {
    state.PauseTiming();
    core::GrowingEngine e(g, core::GrowingPolicy::kPull);
    util::Xoshiro256 rng(11);
    for (int c = 0; c < 64; ++c) {
      const auto u = static_cast<NodeId>(rng.next_bounded(g.num_nodes()));
      e.set_source(u, u);
    }
    core::GrowingStepParams p;
    p.light_threshold = p.uniform_budget = 8.0 * g.avg_weight();
    e.rebuild_frontier(p);
    state.ResumeTiming();
    while (e.step(p).updates > 0) {
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_directed_edges()));
}
BENCHMARK(BM_GrowingStepPull)->Unit(benchmark::kMillisecond);

// The pull policy with the adaptive frontier engine disabled: every step
// pays the legacy full-length Jacobi sweep regardless of frontier size.
void BM_GrowingStepPullBaseline(benchmark::State& state) {
  const Graph& g = mesh_graph();
  for (auto _ : state) {
    state.PauseTiming();
    core::GrowingEngine e(g, core::GrowingPolicy::kPull);
    core::FrontierOptions fo;
    fo.adaptive = false;
    e.set_frontier_options(fo);
    util::Xoshiro256 rng(11);
    for (int c = 0; c < 64; ++c) {
      const auto u = static_cast<NodeId>(rng.next_bounded(g.num_nodes()));
      e.set_source(u, u);
    }
    core::GrowingStepParams p;
    p.light_threshold = p.uniform_budget = 8.0 * g.avg_weight();
    e.rebuild_frontier(p);
    state.ResumeTiming();
    while (e.step(p).updates > 0) {
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_directed_edges()));
}
BENCHMARK(BM_GrowingStepPullBaseline)->Unit(benchmark::kMillisecond);

void BM_DeltaSteppingMesh(benchmark::State& state) {
  const Graph& g = mesh_graph();
  sssp::DeltaSteppingOptions o;
  o.delta = static_cast<double>(state.range(0)) * g.avg_weight();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sssp::delta_stepping(g, 0, o));
  }
}
BENCHMARK(BM_DeltaSteppingMesh)->Arg(1)->Arg(8)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_DeltaSteppingRmat(benchmark::State& state) {
  const Graph& g = rmat_graph();
  exec::Context ctx;  // mirrors the Road/Baseline variants
  for (auto _ : state) {
    benchmark::DoNotOptimize(sssp::delta_stepping(g, 0, {}, &ctx));
  }
}
BENCHMARK(BM_DeltaSteppingRmat)->Unit(benchmark::kMillisecond);

void BM_DijkstraMesh(benchmark::State& state) {
  const Graph& g = mesh_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sssp::dijkstra_distances(g, 0));
  }
}
BENCHMARK(BM_DijkstraMesh)->Unit(benchmark::kMillisecond);

void BM_ClusterRoad(benchmark::State& state) {
  const Graph& g = road_graph();
  core::ClusterOptions o;
  o.tau = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::cluster(g, o));
  }
}
BENCHMARK(BM_ClusterRoad)->Arg(4)->Arg(64)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Context-reuse A/B — the tentpole of the unified execution runtime
// (exec/context.hpp), measured end to end. The Fresh variants run every
// CLUSTER / CL-DIAM call on its own context (what every caller paid before
// the runtime existed: engine arrays reallocated, every Δ of the doubling
// search re-presplit per call); the Reuse variants share one context across
// the loop, so steady-state calls hit the pooled engine and the keyed layout
// caches. Results are bit-identical (tests/test_exec_context.cpp); only the
// wall time moves. Road (sparse, many doubling stages) and rmat (dense,
// heavy presplits) cover both cost profiles.

core::ClusterOptions cluster_bench_options() {
  core::ClusterOptions o;
  o.tau = 16;
  o.seed = 3;
  return o;
}

void BM_ClusterContextReuseRoad(benchmark::State& state) {
  const Graph& g = road_graph();
  const core::ClusterOptions o = cluster_bench_options();
  exec::Context ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::cluster(g, o, &ctx));
  }
}
BENCHMARK(BM_ClusterContextReuseRoad)->Unit(benchmark::kMillisecond);

void BM_ClusterContextFreshRoad(benchmark::State& state) {
  const Graph& g = road_graph();
  const core::ClusterOptions o = cluster_bench_options();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::cluster(g, o));
  }
}
BENCHMARK(BM_ClusterContextFreshRoad)->Unit(benchmark::kMillisecond);

void BM_ClusterContextReuseRmat(benchmark::State& state) {
  const Graph& g = rmat_graph();
  const core::ClusterOptions o = cluster_bench_options();
  exec::Context ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::cluster(g, o, &ctx));
  }
}
BENCHMARK(BM_ClusterContextReuseRmat)->Unit(benchmark::kMillisecond);

void BM_ClusterContextFreshRmat(benchmark::State& state) {
  const Graph& g = rmat_graph();
  const core::ClusterOptions o = cluster_bench_options();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::cluster(g, o));
  }
}
BENCHMARK(BM_ClusterContextFreshRmat)->Unit(benchmark::kMillisecond);

// Same A/B over the whole CL-DIAM pipeline (decompose + quotient +
// quotient diameter) on the road family.
void BM_DiameterContextReuseRoad(benchmark::State& state) {
  const Graph& g = road_graph();
  core::DiameterApproxOptions o;
  o.cluster = cluster_bench_options();
  exec::Context ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::approximate_diameter(g, o, &ctx));
  }
}
BENCHMARK(BM_DiameterContextReuseRoad)->Unit(benchmark::kMillisecond);

void BM_DiameterContextFreshRoad(benchmark::State& state) {
  const Graph& g = road_graph();
  core::DiameterApproxOptions o;
  o.cluster = cluster_bench_options();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::approximate_diameter(g, o));
  }
}
BENCHMARK(BM_DiameterContextFreshRoad)->Unit(benchmark::kMillisecond);

void BM_ConnectedComponents(benchmark::State& state) {
  const Graph& g = rmat_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(connected_components(g));
  }
}
BENCHMARK(BM_ConnectedComponents)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Fault-injection layer (util/fault.hpp): the acceptance contract is that a
// disarmed fault point costs one relaxed atomic load — cheap enough to leave
// compiled into the I/O and scheduling hot paths unconditionally. Disarmed is
// the production configuration; ArmedMiss is the worst armed case a hot path
// can see (a schedule is live but names only other sites, so every check
// pays the full table scan without firing).

void BM_FaultCheckDisarmed(benchmark::State& state) {
  util::fault::disarm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::fault::check("bench.never.armed").fail);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FaultCheckDisarmed)->Unit(benchmark::kNanosecond);

void BM_FaultCheckArmedMiss(benchmark::State& state) {
  util::fault::arm("bench.other.site=delay:1@1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::fault::check("bench.never.armed").fail);
  }
  util::fault::disarm();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FaultCheckArmedMiss)->Unit(benchmark::kNanosecond);

// ---------------------------------------------------------------------------
// NUMA shard-touch A/B (util/topology.hpp, DESIGN.md §13): a shard-sized
// buffer is first-touched while bound to node 0, then streamed either under
// the same binding (Local — what the placement plan arranges) or bound to
// the highest node (Remote — the mismatch an unplaced shard risks). On a
// single-node machine the two bindings coincide and the rows read equal;
// that graceful degradation is itself part of the contract. On multi-socket
// hardware the gap is the per-access cost numa placement exists to avoid.

constexpr std::size_t kShardTouchDoubles = std::size_t{1} << 22;  // 32 MiB

void shard_touch(benchmark::State& state, bool remote) {
  const auto topo = util::topo::discover();
  std::vector<double> shard;
  {
    util::topo::ScopedAffinity home(topo.cpus(0));
    shard.assign(kShardTouchDoubles, 0.0);
    util::topo::first_touch(shard.data(), shard.size() * sizeof(double));
    for (std::size_t i = 0; i < shard.size(); ++i) {
      shard[i] = static_cast<double>(i & 1023);
    }
  }
  util::topo::ScopedAffinity touch(
      topo.cpus(remote ? topo.num_nodes() - 1 : 0));
  for (auto _ : state) {
    double sum = 0.0;
    for (const double v : shard) sum += v;
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(shard.size() * sizeof(double)));
}

void BM_ShardTouchLocal(benchmark::State& state) {
  shard_touch(state, /*remote=*/false);
}
BENCHMARK(BM_ShardTouchLocal)->Unit(benchmark::kMillisecond);

void BM_ShardTouchRemote(benchmark::State& state) {
  shard_touch(state, /*remote=*/true);
}
BENCHMARK(BM_ShardTouchRemote)->Unit(benchmark::kMillisecond);

void BM_RmatGeneration(benchmark::State& state) {
  for (auto _ : state) {
    util::Xoshiro256 rng(13);
    benchmark::DoNotOptimize(gen::rmat(12, 8, rng));
  }
}
BENCHMARK(BM_RmatGeneration)->Unit(benchmark::kMillisecond);

void BM_RoadGeneration(benchmark::State& state) {
  for (auto _ : state) {
    util::Xoshiro256 rng(17);
    benchmark::DoNotOptimize(gen::road_network(100, 100, rng));
  }
}
BENCHMARK(BM_RoadGeneration)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// BENCH_micro_kernels.json trajectory: the console output stays untouched,
// but every run is also captured into a JSON row, and the headline
// split-vs-branch speedup is computed at the end.

class TrajectoryReporter : public benchmark::ConsoleReporter {
 public:
  struct Measured {
    std::string name;
    double real_time = 0.0;  // in the run's time unit
    double cpu_time = 0.0;
    std::int64_t iterations = 0;
    std::string time_unit;
  };

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& r : report) {
      runs.push_back(Measured{r.benchmark_name(), r.GetAdjustedRealTime(),
                              r.GetAdjustedCPUTime(),
                              static_cast<std::int64_t>(r.iterations),
                              benchmark::GetTimeUnitString(r.time_unit)});
    }
    ConsoleReporter::ReportRuns(report);
  }

  std::vector<Measured> runs;
};

double real_time_of(const std::vector<TrajectoryReporter::Measured>& runs,
                    const std::string& name) {
  for (const auto& r : runs) {
    if (r.name == name) return r.real_time;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  TrajectoryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  bench::JsonReport report("micro_kernels");
  report.put("threads", util::num_threads());
  report.put("relax_graph_nodes", static_cast<std::uint64_t>(
                                      rmat_graph().num_nodes()));
  report.put("relax_graph_arcs", rmat_graph().num_directed_edges());
  report.put("relax_delta", relax_delta());
  const double branch = real_time_of(reporter.runs, "BM_RelaxLightBranch");
  const double split = real_time_of(reporter.runs, "BM_RelaxLightSplit");
  if (branch > 0.0 && split > 0.0) {
    report.put("relax_light_split_speedup", branch / split);
  }

  // Adaptive frontier engine: the representation A/B, the whole-run
  // adaptive-on/off ratios, and the mode mix of one adaptive run per family
  // (road = sparse-heavy, rmat = dense-heavy), so regressions in either the
  // switch threshold or the representations show up in the trajectory.
  report.put("frontier_dense_fraction", core::FrontierOptions{}.dense_fraction);
  const double fdense = real_time_of(reporter.runs, "BM_FrontierDense");
  const double fsparse = real_time_of(reporter.runs, "BM_FrontierSparse");
  if (fdense > 0.0 && fsparse > 0.0) {
    report.put("frontier_sparse_speedup", fdense / fsparse);
  }
  const double road_on = real_time_of(reporter.runs, "BM_DeltaSteppingRoad");
  const double road_off =
      real_time_of(reporter.runs, "BM_DeltaSteppingRoadBaseline");
  if (road_on > 0.0 && road_off > 0.0) {
    report.put("delta_adaptive_speedup_road", road_off / road_on);
  }
  const double rmat_on = real_time_of(reporter.runs, "BM_DeltaSteppingRmat");
  const double rmat_off =
      real_time_of(reporter.runs, "BM_DeltaSteppingRmatBaseline");
  if (rmat_on > 0.0 && rmat_off > 0.0) {
    report.put("delta_adaptive_speedup_rmat", rmat_off / rmat_on);
  }
  const auto road_run = sssp::delta_stepping(road_graph(), 0, {});
  report.put("road_sparse_rounds", road_run.stats.sparse_rounds);
  report.put("road_dense_rounds", road_run.stats.dense_rounds);
  const auto rmat_run = sssp::delta_stepping(rmat_graph(), 0, {});
  report.put("rmat_sparse_rounds", rmat_run.stats.sparse_rounds);
  report.put("rmat_dense_rounds", rmat_run.stats.dense_rounds);

  // ρ-vs-Δ whole-run kernel A/B (> 1.0 means ρ-stepping wins) plus the ρ
  // runs' step/round shape, per family.
  const double road_rho = real_time_of(reporter.runs, "BM_RhoSteppingRoad");
  if (road_on > 0.0 && road_rho > 0.0) {
    report.put("rho_vs_delta_speedup_road", road_on / road_rho);
  }
  const double rmat_rho = real_time_of(reporter.runs, "BM_RhoSteppingRmat");
  if (rmat_on > 0.0 && rmat_rho > 0.0) {
    report.put("rho_vs_delta_speedup_rmat", rmat_on / rmat_rho);
  }
  sssp::DeltaSteppingOptions rho_opts;
  rho_opts.algorithm = exec::Algorithm::kRhoStepping;
  const auto road_rho_run = sssp::rho_stepping(road_graph(), 0, rho_opts);
  report.put("road_rho_used", road_rho_run.rho_used);
  report.put("road_rho_steps", road_rho_run.buckets_processed);
  report.put("road_delta_buckets", road_run.buckets_processed);
  const auto rmat_rho_run = sssp::rho_stepping(rmat_graph(), 0, rho_opts);
  report.put("rmat_rho_used", rmat_rho_run.rho_used);
  report.put("rmat_rho_steps", rmat_rho_run.buckets_processed);
  report.put("rmat_delta_buckets", rmat_run.buckets_processed);

  // Sampled-vs-exact frontier sizing: whole-run Δ-stepping with the probe
  // policy on vs off (geometric mean of the two families — the headline the
  // bench gate watches), the per-family detail, and the size-query
  // primitive in isolation.
  const double road_sampled =
      real_time_of(reporter.runs, "BM_DeltaSteppingRoadSampled");
  const double rmat_sampled =
      real_time_of(reporter.runs, "BM_DeltaSteppingRmatSampled");
  double sampled_geomean = 1.0;
  if (road_on > 0.0 && road_sampled > 0.0) {
    report.put("sampled_estimate_speedup_road", road_on / road_sampled);
    sampled_geomean *= road_on / road_sampled;
  }
  if (rmat_on > 0.0 && rmat_sampled > 0.0) {
    report.put("sampled_estimate_speedup_rmat", rmat_on / rmat_sampled);
    sampled_geomean *= rmat_on / rmat_sampled;
  }
  if (road_sampled > 0.0 && rmat_sampled > 0.0) {
    report.put("sampled_vs_exact_estimate_speedup",
               std::sqrt(sampled_geomean));
  }
  const double size_exact =
      real_time_of(reporter.runs, "BM_FrontierSizeExact");
  const double size_sampled =
      real_time_of(reporter.runs, "BM_FrontierSizeSampled");
  if (size_exact > 0.0 && size_sampled > 0.0) {
    report.put("frontier_size_probe_speedup", size_exact / size_sampled);
  }

  // Context-reuse A/B (exec/context.hpp): reused-context CLUSTER / CL-DIAM
  // over fresh-context, per family. >= 1.0 means reuse pays.
  const auto reuse_ratio = [&](const char* fresh, const char* reuse) {
    const double f = real_time_of(reporter.runs, fresh);
    const double r = real_time_of(reporter.runs, reuse);
    return (f > 0.0 && r > 0.0) ? f / r : 0.0;
  };
  if (const double s = reuse_ratio("BM_ClusterContextFreshRoad",
                                   "BM_ClusterContextReuseRoad")) {
    report.put("cluster_context_reuse_speedup_road", s);
  }
  if (const double s = reuse_ratio("BM_ClusterContextFreshRmat",
                                   "BM_ClusterContextReuseRmat")) {
    report.put("cluster_context_reuse_speedup_rmat", s);
  }
  if (const double s = reuse_ratio("BM_DiameterContextFreshRoad",
                                   "BM_DiameterContextReuseRoad")) {
    report.put("diameter_context_reuse_speedup_road", s);
  }
  // NUMA shard-touch A/B (util/topology.hpp): remote-over-local streaming
  // time. ~1.0 on single-node machines by construction (both bindings
  // coincide); > 1.0 on multi-socket hardware quantifies the remote-DRAM
  // penalty placement avoids. Deliberately not a "_speedup" field — on CI it
  // is pure noise around 1.0 and must not trip the higher-is-better gate.
  report.put("shard_touch_topology_nodes",
             static_cast<std::uint64_t>(util::topo::discover().num_nodes()));
  const double touch_local = real_time_of(reporter.runs, "BM_ShardTouchLocal");
  const double touch_remote =
      real_time_of(reporter.runs, "BM_ShardTouchRemote");
  if (touch_local > 0.0 && touch_remote > 0.0) {
    report.put("shard_touch_remote_penalty", touch_remote / touch_local);
  }
  // Disarmed fault points (util/fault.hpp) must stay in the noise: these are
  // absolute nanoseconds per check, not a ratio, so the gate can watch them.
  if (const double ns = real_time_of(reporter.runs, "BM_FaultCheckDisarmed")) {
    report.put("fault_check_disarmed_ns", ns);
  }
  if (const double ns = real_time_of(reporter.runs, "BM_FaultCheckArmedMiss")) {
    report.put("fault_check_armed_miss_ns", ns);
  }
  for (const auto& r : reporter.runs) {
    report.add_row()
        .put("name", r.name)
        .put("real_time", r.real_time)
        .put("cpu_time", r.cpu_time)
        .put("time_unit", r.time_unit)
        .put("iterations", static_cast<std::int64_t>(r.iterations));
  }
  report.write();
  benchmark::Shutdown();
  return 0;
}
