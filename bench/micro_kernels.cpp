// google-benchmark micro kernels: throughput of the primitives the paper's
// round/work counts are made of — Δ-growing steps (push vs pull), Δ-stepping
// phases, Dijkstra, generators, components. These are the constants behind
// the Table 2 wall-clock column.

#include <benchmark/benchmark.h>

#include "core/cluster.hpp"
#include "core/growing.hpp"
#include "gen/mesh.hpp"
#include "gen/rmat.hpp"
#include "gen/road.hpp"
#include "gen/weights.hpp"
#include "graph/components.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"
#include "util/rng.hpp"

namespace {

using namespace gdiam;

const Graph& mesh_graph() {
  static const Graph g = gen::uniform_weights(gen::mesh(256), 3);
  return g;
}

const Graph& rmat_graph() {
  static const Graph g = [] {
    util::Xoshiro256 rng(5);
    return gen::uniform_weights(
        largest_component(gen::rmat(14, 16, rng)).graph, 7);
  }();
  return g;
}

const Graph& road_graph() {
  static const Graph g = [] {
    util::Xoshiro256 rng(9);
    return gen::road_network(160, 160, rng);
  }();
  return g;
}

void BM_GrowingStepPush(benchmark::State& state) {
  const Graph& g = mesh_graph();
  for (auto _ : state) {
    state.PauseTiming();
    core::GrowingEngine e(g, core::GrowingPolicy::kPush);
    util::Xoshiro256 rng(11);
    for (int c = 0; c < 64; ++c) {
      const auto u = static_cast<NodeId>(rng.next_bounded(g.num_nodes()));
      e.set_source(u, u);
    }
    core::GrowingStepParams p;
    p.light_threshold = p.uniform_budget = 8.0 * g.avg_weight();
    e.rebuild_frontier(p);
    state.ResumeTiming();
    while (e.step(p).updates > 0) {
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_directed_edges()));
}
BENCHMARK(BM_GrowingStepPush)->Unit(benchmark::kMillisecond);

void BM_GrowingStepPull(benchmark::State& state) {
  const Graph& g = mesh_graph();
  for (auto _ : state) {
    state.PauseTiming();
    core::GrowingEngine e(g, core::GrowingPolicy::kPull);
    util::Xoshiro256 rng(11);
    for (int c = 0; c < 64; ++c) {
      const auto u = static_cast<NodeId>(rng.next_bounded(g.num_nodes()));
      e.set_source(u, u);
    }
    core::GrowingStepParams p;
    p.light_threshold = p.uniform_budget = 8.0 * g.avg_weight();
    e.rebuild_frontier(p);
    state.ResumeTiming();
    while (e.step(p).updates > 0) {
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_directed_edges()));
}
BENCHMARK(BM_GrowingStepPull)->Unit(benchmark::kMillisecond);

void BM_DeltaSteppingMesh(benchmark::State& state) {
  const Graph& g = mesh_graph();
  sssp::DeltaSteppingOptions o;
  o.delta = static_cast<double>(state.range(0)) * g.avg_weight();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sssp::delta_stepping(g, 0, o));
  }
}
BENCHMARK(BM_DeltaSteppingMesh)->Arg(1)->Arg(8)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_DeltaSteppingRmat(benchmark::State& state) {
  const Graph& g = rmat_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sssp::delta_stepping(g, 0, {}));
  }
}
BENCHMARK(BM_DeltaSteppingRmat)->Unit(benchmark::kMillisecond);

void BM_DijkstraMesh(benchmark::State& state) {
  const Graph& g = mesh_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sssp::dijkstra_distances(g, 0));
  }
}
BENCHMARK(BM_DijkstraMesh)->Unit(benchmark::kMillisecond);

void BM_ClusterRoad(benchmark::State& state) {
  const Graph& g = road_graph();
  core::ClusterOptions o;
  o.tau = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::cluster(g, o));
  }
}
BENCHMARK(BM_ClusterRoad)->Arg(4)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_ConnectedComponents(benchmark::State& state) {
  const Graph& g = rmat_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(connected_components(g));
  }
}
BENCHMARK(BM_ConnectedComponents)->Unit(benchmark::kMillisecond);

void BM_RmatGeneration(benchmark::State& state) {
  for (auto _ : state) {
    util::Xoshiro256 rng(13);
    benchmark::DoNotOptimize(gen::rmat(12, 8, rng));
  }
}
BENCHMARK(BM_RmatGeneration)->Unit(benchmark::kMillisecond);

void BM_RoadGeneration(benchmark::State& state) {
  for (auto _ : state) {
    util::Xoshiro256 rng(17);
    benchmark::DoNotOptimize(gen::road_network(100, 100, rng));
  }
}
BENCHMARK(BM_RoadGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
