#include "report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace gdiam::bench {

namespace {

std::string encode_string(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

// One encoder per scalar type, shared by the top-level and row put()
// overloads so both levels can never diverge in encoding.
std::string encode_value(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}
std::string encode_value(std::uint64_t v) { return std::to_string(v); }
std::string encode_value(std::int64_t v) { return std::to_string(v); }
std::string encode_value(int v) { return std::to_string(v); }
std::string encode_value(bool v) { return v ? "true" : "false"; }
std::string encode_value(const std::string& v) { return encode_string(v); }

std::string encode_object(
    const std::vector<std::pair<std::string, std::string>>& fields) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!first) out += ", ";
    first = false;
    out += encode_string(key);
    out += ": ";
    out += value;
  }
  out += "}";
  return out;
}

}  // namespace

JsonReport::JsonReport(std::string name) : name_(std::move(name)) {}

JsonReport::Row& JsonReport::Row::put(const std::string& key, double v) {
  fields_.emplace_back(key, encode_value(v));
  return *this;
}
JsonReport::Row& JsonReport::Row::put(const std::string& key,
                                      std::uint64_t v) {
  fields_.emplace_back(key, encode_value(v));
  return *this;
}
JsonReport::Row& JsonReport::Row::put(const std::string& key, std::int64_t v) {
  fields_.emplace_back(key, encode_value(v));
  return *this;
}
JsonReport::Row& JsonReport::Row::put(const std::string& key, int v) {
  fields_.emplace_back(key, encode_value(v));
  return *this;
}
JsonReport::Row& JsonReport::Row::put(const std::string& key, bool v) {
  fields_.emplace_back(key, encode_value(v));
  return *this;
}
JsonReport::Row& JsonReport::Row::put(const std::string& key,
                                      const std::string& v) {
  fields_.emplace_back(key, encode_value(v));
  return *this;
}
JsonReport::Row& JsonReport::Row::put(const std::string& key, const char* v) {
  return put(key, std::string(v));
}

JsonReport& JsonReport::put(const std::string& key, double v) {
  fields_.emplace_back(key, encode_value(v));
  return *this;
}
JsonReport& JsonReport::put(const std::string& key, std::uint64_t v) {
  fields_.emplace_back(key, encode_value(v));
  return *this;
}
JsonReport& JsonReport::put(const std::string& key, std::int64_t v) {
  fields_.emplace_back(key, encode_value(v));
  return *this;
}
JsonReport& JsonReport::put(const std::string& key, int v) {
  fields_.emplace_back(key, encode_value(v));
  return *this;
}
JsonReport& JsonReport::put(const std::string& key, bool v) {
  fields_.emplace_back(key, encode_value(v));
  return *this;
}
JsonReport& JsonReport::put(const std::string& key, const std::string& v) {
  fields_.emplace_back(key, encode_value(v));
  return *this;
}
JsonReport& JsonReport::put(const std::string& key, const char* v) {
  return put(key, std::string(v));
}

JsonReport::Row& JsonReport::add_row() { return rows_.emplace_back(); }

std::string JsonReport::to_json() const {
  std::string out = "{\n";
  out += "  " + encode_string("bench") + ": " + encode_string(name_);
  for (const auto& [key, value] : fields_) {
    out += ",\n  " + encode_string(key) + ": " + value;
  }
  out += ",\n  \"rows\": [";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    out += encode_object(rows_[i].fields_);
  }
  out += rows_.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string JsonReport::write() const {
  const char* dir = std::getenv("GDIAM_BENCH_DIR");
  std::string path = dir != nullptr && *dir != '\0' ? std::string(dir) + "/"
                                                    : std::string();
  path += "BENCH_" + name_ + ".json";
  std::ofstream f(path);
  if (f) f << to_json();
  if (!f) {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
    return "";
  }
  std::fprintf(stderr, "  [report] wrote %s\n", path.c_str());
  return path;
}

}  // namespace gdiam::bench
