// Table 2 — CL-DIAM vs Δ-stepping on the six benchmark graphs:
// approximation ratio, running time, MR rounds and work (node updates +
// messages). This is the paper's headline comparison; Figures 1-3 plot the
// same three indicator groups.

#include <cstdio>
#include <iostream>

#include "comparison_common.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace gdiam;

int main(int argc, char** argv) {
  const util::Options opts(argc, argv);
  const util::Scale scale = opts.has("scale")
                                ? util::parse_scale(opts.get_string("scale", "ci"))
                                : util::scale_from_env();
  bench::print_preamble("table2_comparison: CL-DIAM vs Delta-stepping",
                        "Table 2 + Figures 1-3 data", scale);

  bench::ComparisonConfig cfg;
  cfg.seed = opts.get_int("seed", 1);
  const auto rows = bench::run_table2(scale, cfg);

  util::Table table({"graph", "n", "m", "approx CL", "approx DS", "time CL",
                     "time DS", "rounds CL", "rounds DS", "work CL",
                     "work DS"});
  for (const auto& r : rows) {
    table.row()
        .cell(r.name)
        .count(r.nodes)
        .count(r.edges)
        .num(r.cl_ratio, 2)
        .num(r.ds_ratio, 2)
        .cell(util::format_duration(r.cl_seconds))
        .cell(util::format_duration(r.ds_seconds))
        .count(r.cl_stats.rounds())
        .count(r.ds_stats.rounds())
        .sci(static_cast<double>(r.cl_stats.work()), 2)
        .sci(static_cast<double>(r.ds_stats.work()), 2);
  }
  table.print(std::cout);

  std::printf(
      "\nexpected shape (paper, Table 2): CL-DIAM ratio < 1.4 everywhere;\n"
      "CL-DIAM rounds/work 1-3 orders of magnitude below Delta-stepping on\n"
      "road/mesh graphs, smaller but consistent gap on social-like graphs.\n"
      "CL = CL-DIAM (this paper), DS = Delta-stepping 2-approximation.\n");
  return 0;
}
