#!/usr/bin/env python3
"""Check markdown cross-references so README/DESIGN links can't rot.

Scans the repo's *.md files (git-tracked, or a filesystem walk outside a
checkout) and validates every inline link [text](target):

  * relative file targets must exist (relative to the linking file);
  * `#anchor` fragments — standalone or after a file path — must match a
    heading in the target file, using GitHub's slug rules (lowercase,
    spaces to dashes, punctuation stripped, duplicate slugs suffixed);
  * http(s)/mailto targets are skipped (nothing is fetched).

Exit code 1 with one line per broken link; 0 when everything resolves.
Run from anywhere: paths are resolved against the repo root (the parent
of this script's directory). CI runs it on every push.
"""

import os
import re
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Inline links only; reference-style links are not used in this repo.
# Matches [text](target) but not images ![alt](src) — images are checked
# the same way, so include them by making the leading '!' optional.
LINK_RE = re.compile(r"!?\[[^\]\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading, seen):
    """GitHub's anchor algorithm: strip markdown emphasis/code markers,
    lowercase, keep [word chars, spaces, dashes], spaces -> dashes, then
    de-duplicate with -1, -2, ... suffixes per document."""
    text = re.sub(r"[`*_]", "", heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    slug = re.sub(r"[^\w\- ]", "", text.lower(), flags=re.UNICODE)
    slug = slug.replace(" ", "-")
    if slug not in seen:
        seen[slug] = 0
        return slug
    seen[slug] += 1
    return f"{slug}-{seen[slug]}"


def md_files():
    try:
        out = subprocess.run(
            ["git", "ls-files", "*.md", "**/*.md"],
            cwd=REPO, capture_output=True, text=True, check=True,
        ).stdout.split()
        if out:
            return sorted(set(out))
    except (OSError, subprocess.CalledProcessError):
        pass
    found = []
    for root, dirs, names in os.walk(REPO):
        dirs[:] = [d for d in dirs if d not in {".git", "build", "node_modules"}]
        for n in names:
            if n.endswith(".md"):
                found.append(os.path.relpath(os.path.join(root, n), REPO))
    return sorted(found)


def anchors_of(path, cache={}):
    if path in cache:
        return cache[path]
    seen, anchors = {}, set()
    in_fence = False
    try:
        with open(path, encoding="utf-8") as f:
            for line in f:
                if CODE_FENCE_RE.match(line):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                m = HEADING_RE.match(line)
                if m:
                    anchors.add(github_slug(m.group(2), seen))
    except OSError:
        pass
    cache[path] = anchors
    return anchors


def check_file(relpath):
    errors = []
    abspath = os.path.join(REPO, relpath)
    in_fence = False
    with open(abspath, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                target = m.group(1)
                if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:
                    continue
                path_part, _, anchor = target.partition("#")
                if path_part:
                    dest = os.path.normpath(
                        os.path.join(os.path.dirname(abspath), path_part))
                    if not os.path.exists(dest):
                        errors.append(
                            f"{relpath}:{lineno}: broken link {target!r} "
                            f"(no such file {path_part!r})")
                        continue
                else:
                    dest = abspath  # same-document anchor
                if anchor and dest.endswith(".md"):
                    if anchor not in anchors_of(dest):
                        errors.append(
                            f"{relpath}:{lineno}: broken anchor {target!r} "
                            f"(no heading with slug {anchor!r} in "
                            f"{os.path.relpath(dest, REPO)})")
    return errors


def main():
    files = md_files()
    if not files:
        sys.exit("check_links: no markdown files found")
    errors = []
    for f in files:
        errors.extend(check_file(f))
    for e in errors:
        print(e)
        if os.environ.get("GITHUB_ACTIONS") == "true":
            print(f"::error::{e}")
    if errors:
        sys.exit(1)
    print(f"check_links: {len(files)} markdown files, all links resolve")


if __name__ == "__main__":
    main()
