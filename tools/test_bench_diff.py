#!/usr/bin/env python3
"""Checks for tools/bench_diff.py: clean failure modes and diff semantics.

pytest-style test functions, but runnable without pytest (CI images do not
ship it): `python3 tools/test_bench_diff.py` discovers and runs every test_*
function and exits non-zero on the first failure.

Each test drives bench_diff.py as a subprocess — the contract under test is
the command-line behavior (exit codes, one-line diagnostics instead of
tracebacks), not internals.
"""

import json
import os
import subprocess
import sys
import tempfile

BENCH_DIFF = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "bench_diff.py")


def run_diff(*args):
    return subprocess.run(
        [sys.executable, BENCH_DIFF, *args],
        capture_output=True,
        text=True,
        check=False,
    )


def write_json(directory, name, doc):
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as f:
        if isinstance(doc, str):
            f.write(doc)
        else:
            json.dump(doc, f)
    return path


def bench_doc(rows, **meta):
    doc = {"bench": "micro_kernels"}
    doc.update(meta)
    doc["rows"] = [
        {"name": name, "real_time": value} for name, value in rows.items()
    ]
    return doc


def test_missing_baseline_exits_cleanly_with_message():
    with tempfile.TemporaryDirectory() as d:
        cand = write_json(d, "cand.json", bench_doc({"BM_X": 1.0}))
        r = run_diff(os.path.join(d, "nonexistent.json"), cand)
        assert r.returncode != 0, "missing baseline must fail"
        assert "not found" in r.stderr, r.stderr
        assert "Traceback" not in r.stderr, r.stderr


def test_malformed_json_exits_cleanly_with_message():
    with tempfile.TemporaryDirectory() as d:
        base = write_json(d, "base.json", "{not json at all")
        cand = write_json(d, "cand.json", bench_doc({"BM_X": 1.0}))
        r = run_diff(base, cand)
        assert r.returncode != 0
        assert "not valid JSON" in r.stderr, r.stderr
        assert "Traceback" not in r.stderr, r.stderr


def test_wrong_shape_exits_cleanly_with_message():
    with tempfile.TemporaryDirectory() as d:
        for doc in ([1, 2, 3], {"rows": "oops"}, {"rows": [1, 2]}):
            base = write_json(d, "base.json", doc)
            cand = write_json(d, "cand.json", bench_doc({"BM_X": 1.0}))
            r = run_diff(base, cand)
            assert r.returncode != 0, f"shape {doc!r} must fail"
            assert "rows" in r.stderr, r.stderr
            assert "Traceback" not in r.stderr, r.stderr


def test_no_regression_exits_zero():
    with tempfile.TemporaryDirectory() as d:
        base = write_json(d, "base.json", bench_doc({"BM_X": 1.0, "BM_Y": 2.0}))
        cand = write_json(d, "cand.json", bench_doc({"BM_X": 1.05, "BM_Y": 1.9}))
        r = run_diff(base, cand, "--tolerance", "0.15")
        assert r.returncode == 0, r.stdout + r.stderr
        assert "no regressions" in r.stdout, r.stdout


def test_regression_detected_and_warn_only_downgrades():
    with tempfile.TemporaryDirectory() as d:
        base = write_json(d, "base.json", bench_doc({"BM_X": 1.0}))
        cand = write_json(d, "cand.json", bench_doc({"BM_X": 2.0}))
        r = run_diff(base, cand, "--tolerance", "0.15")
        assert r.returncode == 1, r.stdout + r.stderr
        assert "REGRESSION" in r.stdout, r.stdout
        r = run_diff(base, cand, "--tolerance", "0.15", "--warn-only")
        assert r.returncode == 0, r.stdout + r.stderr
        assert "REGRESSION" in r.stdout, r.stdout


def test_speedup_metadata_drop_is_gated_but_other_metadata_is_not():
    with tempfile.TemporaryDirectory() as d:
        base = write_json(
            d, "base.json",
            bench_doc({"BM_X": 1.0}, rho_vs_delta_speedup_road=2.0, threads=8),
        )
        # threads halves (informational: no flag), the tracked speedup ratio
        # halves too (higher-is-better A/B: flagged as a regression).
        cand = write_json(
            d, "cand.json",
            bench_doc({"BM_X": 1.0}, rho_vs_delta_speedup_road=1.0, threads=4),
        )
        r = run_diff(base, cand, "--tolerance", "0.15")
        assert r.returncode == 1, r.stdout + r.stderr
        assert "rho_vs_delta_speedup_road: 2 -> 1" in r.stdout, r.stdout
        for line in r.stdout.splitlines():
            if "threads" in line:
                assert "REGRESSION" not in line, r.stdout
        # A speedup ratio going UP is an improvement, never a regression.
        r = run_diff(cand, base, "--tolerance", "0.15")
        assert r.returncode == 0, r.stdout + r.stderr


def test_numa_placement_speedup_drop_warns_without_gating():
    with tempfile.TemporaryDirectory() as d:
        base = write_json(
            d, "base.json",
            bench_doc({"BM_X": 1.0}, numa_placement_speedup_rmat=1.6),
        )
        cand = write_json(
            d, "cand.json",
            bench_doc({"BM_X": 1.0}, numa_placement_speedup_rmat=0.9),
        )
        # A drop well beyond tolerance: advisory WARN line, exit code 0 even
        # without --warn-only (single-node CI noise must not gate the build).
        r = run_diff(base, cand, "--tolerance", "0.15")
        assert r.returncode == 0, r.stdout + r.stderr
        assert "WARN (advisory" in r.stdout, r.stdout
        assert "REGRESSION" not in r.stdout, r.stdout


def test_kernel_missing_from_candidate_counts_as_regression():
    with tempfile.TemporaryDirectory() as d:
        base = write_json(d, "base.json", bench_doc({"BM_X": 1.0, "BM_GONE": 1.0}))
        cand = write_json(d, "cand.json", bench_doc({"BM_X": 1.0}))
        r = run_diff(base, cand, "--tolerance", "0.15")
        assert r.returncode == 1, r.stdout + r.stderr
        assert "missing" in r.stdout, r.stdout


def main():
    tests = [
        (name, fn)
        for name, fn in sorted(globals().items())
        if name.startswith("test_") and callable(fn)
    ]
    for name, fn in tests:
        fn()
        print(f"ok: {name}")
    print(f"test_bench_diff: {len(tests)} checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
