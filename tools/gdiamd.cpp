// gdiamd — the gdiam serving daemon.
//
// Keeps graphs loaded in warm exec::Contexts (pooled engines, resident pool
// workers, cached Δ-presplits) and serves concurrent estimate / sssp
// queries over an AF_UNIX socket; see src/serve/server.hpp for the
// architecture and tools/gdiam_client.cpp for the matching client.
//
//   gdiamd --socket /tmp/gdiamd.sock [--workers 2] [--max-batch 16]
//          [--max-queue 256] [--write-timeout-ms 10000] [--faults SPEC]
//
// Runs in the foreground until SIGINT/SIGTERM or a client `shutdown`
// request, then prints its serving counters and exits 0.
//
// Fault injection (DESIGN.md §12): --faults or the GDIAM_FAULTS env var
// arms a deterministic fault schedule at startup; the `fault` control verb
// re-arms or clears it at runtime.

#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "serve/server.hpp"
#include "util/fault.hpp"
#include "util/options.hpp"

namespace {

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr, R"(usage: gdiamd [--socket PATH] [--workers N] [--max-batch B]
              [--max-queue Q] [--write-timeout-ms T] [--faults SPEC]

  --socket PATH   AF_UNIX socket to serve on (default /tmp/gdiamd.sock)
  --workers N     concurrent request workers = graphs computing in
                  parallel (default 2; queries on ONE graph always
                  serialize on its warm context)
  --max-batch B   max same-graph requests coalesced per dispatch
                  (default 16)
  --max-queue Q   admission bound: requests past Q pending are shed
                  with an `overloaded` error (default 256)
  --write-timeout-ms T
                  disconnect a client whose response write stalls for
                  T ms on a full socket buffer (default 10000; 0 = wait
                  forever)
  --faults SPEC   arm a deterministic fault schedule, e.g.
                  "net.send=errno:EPIPE@3;pool.ship=kill@2"
                  (also read from the GDIAM_FAULTS env var)

Query it with gdiam_client, e.g.:
  gdiam_client estimate --socket /tmp/gdiamd.sock graph=gen:mesh:side=64 tau=16
  gdiam_client shutdown --socket /tmp/gdiamd.sock
)");
  std::exit(error == nullptr ? 0 : 2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gdiam;
  try {
    const util::Options o(argc, argv);
    if (o.has("help")) usage();
    serve::ServerOptions opts;
    opts.socket_path = o.get_string("socket", "/tmp/gdiamd.sock");
    opts.worker_threads = o.get_uint32("workers", 2);
    opts.max_batch = o.get_uint32("max-batch", 16);
    opts.max_queue = o.get_uint32("max-queue", 256);
    opts.write_timeout_ms = o.get_uint32("write-timeout-ms", 10000);

    util::fault::arm_from_env();
    const std::string faults = o.get_string("faults", "");
    if (!faults.empty()) util::fault::arm(faults);  // flag wins over env
    if (util::fault::armed()) {
      std::fprintf(stderr, "gdiamd: fault schedule armed:\n%s",
                   util::fault::describe().c_str());
    }

    // Signals are consumed by a dedicated sigwait thread: every thread the
    // server spawns inherits this mask, so no handler ever interrupts a
    // compute or a socket write. SIGUSR1 is the self-wake that releases the
    // sigwait thread when shutdown arrives via the protocol instead.
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    sigaddset(&set, SIGUSR1);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);

    serve::Server server(opts);
    server.start();
    std::fprintf(stderr, "gdiamd: serving on %s (workers=%u, max-batch=%u)\n",
                 opts.socket_path.c_str(), opts.worker_threads,
                 opts.max_batch);

    std::thread signal_thread([&set, &server] {
      int sig = 0;
      sigwait(&set, &sig);
      server.request_stop();
    });
    server.wait();
    ::kill(::getpid(), SIGUSR1);  // no-op if a real signal already fired
    signal_thread.join();
    server.stop();

    const serve::ServerStats& s = server.stats();
    std::fprintf(stderr,
                 "gdiamd: served %llu requests (%llu connections, "
                 "%llu batches, %llu coalesced, %llu errors)\n",
                 static_cast<unsigned long long>(s.requests.load()),
                 static_cast<unsigned long long>(s.connections.load()),
                 static_cast<unsigned long long>(s.batches.load()),
                 static_cast<unsigned long long>(s.batched_requests.load()),
                 static_cast<unsigned long long>(s.errors.load()));
    std::fprintf(
        stderr,
        "gdiamd: robustness: %llu shed, %llu deadline_exceeded, "
        "%llu degraded, %llu disconnected_slow\n",
        static_cast<unsigned long long>(s.shed.load()),
        static_cast<unsigned long long>(s.deadline_exceeded.load()),
        static_cast<unsigned long long>(s.degraded.load()),
        static_cast<unsigned long long>(s.disconnected_slow.load()));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gdiamd: %s\n", e.what());
    return 1;
  }
}
