// gdiam — command-line interface to the library.
//
// Subcommands:
//   generate  — synthesize a benchmark graph and write it to a file
//   stats     — structural statistics of a graph file
//   estimate  — CL-DIAM diameter approximation of a graph file
//   sssp      — Δ-stepping SSSP / eccentricity from a source node
//   convert   — translate between dimacs / edgelist / binary formats
//
// File formats are selected by extension: .gr (DIMACS), .txt/.el (edge
// list), .bin (gdiam binary stream), .gcsr (versioned mmap binary CSR;
// zero-copy ingest, see tools/gdiam_convert for presplit sidecars). Examples:
//   gdiam generate --family mesh --side 512 --weights uniform --out m.bin
//   gdiam estimate m.bin --tau 64
//   gdiam sssp m.gcsr --source 0 --delta 0.5
//   gdiam convert m.bin m.gr

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "analysis/hop.hpp"
#include "gdiam.hpp"
#include "serve/render.hpp"
#include "util/fault.hpp"

namespace {

using namespace gdiam;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr, R"(usage: gdiam <command> [args]

commands:
  generate --family mesh|torus|rmat|road|gnm|path --out FILE
           [--side N] [--scale S] [--edge-factor F] [--nodes N] [--edges M]
           [--weights unit|uniform|int|bimodal] [--seed S]
  stats    FILE [--sweeps K]
  estimate FILE [--tau T] [--seed S] [--cluster2] [--classic] [--pull]
           [--partitions K] [--range-partition] [--no-adaptive]
           [--sampled-frontier] [--transport local|process|pool]
           [--processes P] [--placement none|round-robin|capacity]
           [--repeat N] [--reuse-context | --no-reuse-context]
  decompose FILE --out CLUSTERING.gdcl [--tau T] [--seed S]
            [--quotient QUOTIENT_GRAPH_FILE]
  sssp     FILE [--source U] [--algorithm delta|rho] [--delta D] [--rho N]
           [--partitions K] [--range-partition] [--no-adaptive]
           [--sampled-frontier] [--transport local|process|pool]
           [--processes P] [--placement none|round-robin|capacity]
           [--repeat N] [--reuse-context | --no-reuse-context]
  convert  IN OUT

--algorithm picks the stepping kernel: delta (Meyer-Sanders buckets of width
--delta; the default) or rho (PASGAL-style batches of the ~N closest frontier
nodes, --rho N, 0 = auto). Both return exact, bit-identical distances; they
trade rounds against work differently (DESIGN.md section 11).

--partitions K > 1 runs the kernels on the sharded BSP engine (K shards,
hash partitioner unless --range-partition) and reports the cross-partition
communication volume alongside rounds and work.

--processes P (or --transport process) additionally fans each BSP superstep
out over P forked worker processes exchanging messages over Unix-domain
sockets: results are bit-identical to the in-process transport, and the cost
line gains the genuinely-crossed wire=.../... traffic. Requires
--partitions K > 1. --transport pool keeps those P workers resident across
supersteps (fork once, ship per-step inputs over persistent sockets) — the
serving configuration gdiamd runs hot graphs on; results stay bit-identical.

--placement maps the K shards onto the machine's NUMA nodes (round-robin or
capacity-balanced; DESIGN.md section 13): shard compute is pinned to its
node, shard layouts are first-touched there, and the cost line gains the
xnode=.../... cross-node traffic. The GDIAM_TOPOLOGY env var overrides the
detected topology (e.g. "0-3;4-7"). Distances and model counters are
bit-identical across placements; requires --partitions K > 1.

--no-adaptive disables the adaptive sparse/dense frontier engine and runs
the legacy full-scan round paths (A/B baseline; results are identical, the
cost line just loses its modes=S/D classification). --sampled-frontier
replaces the exact sealed-size count in the frontier's dense->sparse switch
with a ~1024-probe estimate (noise-margin guarded; results identical, only
the representation schedule can move).

--repeat N runs the estimate / sssp kernel N times and prints per-run wall
times. By default every repetition shares one exec::Context (pooled engines
and buffers, cached Δ-presplit and shard layouts — the steady-state serving
configuration); --no-reuse-context gives each repetition a fresh context
instead, making the context-reuse A/B of bench/micro_kernels reproducible
from the command line. Results are identical either way.
)");
  std::exit(error == nullptr ? 0 : 2);
}

Graph load(const std::string& path) {
  if (path.ends_with(".gr")) return io::read_dimacs_file(path);
  if (path.ends_with(".bin")) return io::read_binary_file(path);
  if (path.ends_with(".gcsr")) return io::open_mmap(path).graph();
  return io::read_edge_list_file(path);
}

void store(const Graph& g, const std::string& path) {
  if (path.ends_with(".gr")) {
    io::write_dimacs_file(g, path);
  } else if (path.ends_with(".bin")) {
    io::write_binary_file(g, path);
  } else if (path.ends_with(".gcsr")) {
    // Bare conversion; `gdiam_convert --presplit` adds warm-start sidecars.
    io::write_gcsr(g, path);
  } else {
    std::ofstream f(path);
    if (!f) throw std::runtime_error("cannot open " + path);
    io::write_edge_list(g, f);
  }
}

/// Warms a context from the presplit sidecars of a .gcsr-mapped graph (no-op
/// for every other format). Must be called with the same Graph object the
/// kernels will run on — the context's split cache keys on its address.
void warm_from_mapping(const Graph& g, exec::Context& ctx) {
  if (const auto m = io::mapped_view(g)) ctx.adopt_presplits(g, *m);
}

/// Shared --partitions / --range-partition parsing for estimate and sssp.
mr::PartitionOptions parse_partition(const util::Options& o) {
  mr::PartitionOptions p;
  p.num_partitions = o.get_uint32("partitions", 1);
  if (p.num_partitions == 0) usage("--partitions must be >= 1");
  p.strategy = o.get_bool("range-partition", false)
                   ? mr::PartitionStrategy::kRange
                   : mr::PartitionStrategy::kHash;
  return p;
}

/// Shared --transport / --processes parsing (estimate and sssp). --processes
/// alone implies the process transport; the multi-process backends only
/// exist behind the BSP engine, so they require --partitions K > 1.
mr::TransportOptions parse_transport(const util::Options& o,
                                     const mr::PartitionOptions& p) {
  mr::TransportOptions t;
  const std::string kind = o.get_string("transport", "");
  if (!kind.empty() && kind != "local" && kind != "process" &&
      kind != "pool") {
    usage("--transport must be local, process or pool");
  }
  if (kind == "local" && o.has("processes")) {
    usage("--transport local and --processes conflict");
  }
  if (kind == "process" || kind == "pool" || o.has("processes")) {
    t.kind = kind == "pool" ? mr::TransportKind::kPool
                            : mr::TransportKind::kProcess;
    t.processes = o.get_uint32("processes", 2);
    if (t.processes == 0) usage("--processes must be >= 1");
    if (p.num_partitions <= 1) {
      usage("--transport process/pool / --processes requires --partitions K > 1");
    }
  }
  return t;
}

/// Shared --placement parsing (estimate and sssp). Placement only exists
/// behind the BSP engine, so a non-none strategy requires --partitions K > 1.
mr::PlacementOptions parse_placement(const util::Options& o,
                                     const mr::PartitionOptions& p) {
  mr::PlacementOptions pl;
  const std::string name = o.get_string("placement", "none");
  const auto strategy = mr::parse_placement_strategy(name);
  if (!strategy) usage("--placement must be none, round-robin or capacity");
  pl.strategy = *strategy;
  if (pl.strategy != mr::PlacementStrategy::kNone && p.num_partitions <= 1) {
    usage("--placement requires --partitions K > 1");
  }
  return pl;
}

/// Shared --repeat / --reuse-context / --no-reuse-context parsing.
struct RepeatOptions {
  unsigned repeat = 1;
  bool reuse_context = true;
};

RepeatOptions parse_repeat(const util::Options& o) {
  RepeatOptions r;
  const std::int64_t repeat = o.get_int("repeat", 1);
  if (repeat < 1) usage("--repeat must be >= 1");
  r.repeat = static_cast<unsigned>(repeat);
  if (o.has("reuse-context") && o.has("no-reuse-context")) {
    usage("--reuse-context and --no-reuse-context conflict");
  }
  r.reuse_context = o.has("reuse-context")
                        ? o.get_bool("reuse-context", true)
                        : !o.get_bool("no-reuse-context", false);
  return r;
}

/// Prints the context's per-phase cost breakdown (exec::StatsSink). The sink
/// accumulates across every run on the context, so with --repeat N the
/// phase lines total N times the single-run cost line — label them so.
void print_phase_stats(const exec::Context& ctx, unsigned runs) {
  if (ctx.stats().phases().empty()) return;
  if (runs > 1) {
    std::printf("phases (cumulative over %u runs):\n", runs);
  }
  for (const auto& [name, stats] : ctx.stats().phases()) {
    std::printf("  phase %-10s %s\n", name.c_str(),
                mr::to_string(stats).c_str());
  }
}

Graph apply_weights(const Graph& g, const std::string& kind,
                    std::uint64_t seed) {
  if (kind == "unit") return gen::unit_weights(g);
  if (kind == "uniform") return gen::uniform_weights(g, seed);
  if (kind == "int") return gen::uniform_int_weights(g, 1, 1000, seed);
  if (kind == "bimodal") return gen::bimodal_weights(g, 1.0, 1e-6, 0.1, seed);
  if (kind == "keep") return g;
  throw std::invalid_argument("unknown --weights " + kind);
}

int cmd_generate(const util::Options& o) {
  const std::string family = o.get_string("family", "mesh");
  const std::string out = o.get_string("out", "");
  if (out.empty()) usage("generate requires --out");
  const auto seed = static_cast<std::uint64_t>(o.get_int("seed", 1));
  util::Xoshiro256 rng(seed);

  Graph g;
  if (family == "mesh") {
    g = gen::mesh(static_cast<NodeId>(o.get_int("side", 256)));
  } else if (family == "torus") {
    g = gen::torus(static_cast<NodeId>(o.get_int("side", 256)));
  } else if (family == "rmat") {
    g = gen::rmat(static_cast<unsigned>(o.get_int("scale", 16)),
                  static_cast<EdgeIndex>(o.get_int("edge-factor", 16)), rng);
  } else if (family == "road") {
    const auto side = static_cast<NodeId>(o.get_int("side", 256));
    g = gen::road_network(side, side, rng);
  } else if (family == "gnm") {
    g = gen::gnm(static_cast<NodeId>(o.get_int("nodes", 10000)),
                 static_cast<EdgeIndex>(o.get_int("edges", 30000)), rng,
                 /*ensure_connected=*/true);
  } else if (family == "path") {
    g = gen::path(static_cast<NodeId>(o.get_int("nodes", 10000)));
  } else {
    usage("unknown --family");
  }
  g = apply_weights(g, o.get_string("weights", "keep"), seed ^ 0xabcd);
  store(g, out);
  std::printf("wrote %s: n=%u m=%llu, weights [%g, %g]\n", out.c_str(),
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()),
              g.min_weight(), g.max_weight());
  return 0;
}

int cmd_stats(const util::Options& o) {
  if (o.positional().size() < 2) usage("stats requires a graph file");
  const Graph g = load(o.positional()[1]);
  const Components cc = connected_components(g);
  const DegreeStats deg = degree_stats(g);
  std::printf("nodes:       %u\n", g.num_nodes());
  std::printf("edges:       %llu\n",
              static_cast<unsigned long long>(g.num_edges()));
  std::printf("components:  %u (giant: %u nodes)\n", cc.count,
              cc.count != 0 ? cc.sizes[0] : 0);
  std::printf("degree:      min %llu, avg %.2f, max %llu\n",
              static_cast<unsigned long long>(deg.min), deg.avg,
              static_cast<unsigned long long>(deg.max));
  std::printf("weights:     min %g, avg %g, max %g\n", g.min_weight(),
              g.avg_weight(), g.max_weight());
  const auto sweeps = static_cast<unsigned>(o.get_int("sweeps", 4));
  const Graph giant = cc.count > 1 ? largest_component(g).graph : g;
  std::printf("diameter:    >= %.6g (weighted, %u sweeps, giant component)\n",
              sssp::diameter_lower_bound(giant, sweeps, 1).lower_bound,
              sweeps);
  std::printf("hop diam:    >= %u\n",
              analysis::hop_diameter_lower_bound(giant, sweeps, 1));
  return 0;
}

int cmd_estimate(const util::Options& o) {
  if (o.positional().size() < 2) usage("estimate requires a graph file");
  const Graph g = load(o.positional()[1]);
  core::DiameterApproxOptions opt;
  opt.cluster.tau = static_cast<std::uint32_t>(o.get_int(
      "tau", core::tau_for_cluster_target(g.num_nodes(), g.num_nodes() / 4)));
  opt.cluster.seed = static_cast<std::uint64_t>(o.get_int("seed", 1));
  opt.use_cluster2 = o.get_bool("cluster2", false);
  opt.radius_aware = !o.get_bool("classic", false);
  if (o.get_bool("pull", false)) {
    opt.cluster.policy = core::GrowingPolicy::kPull;
  }
  opt.cluster.partition = parse_partition(o);
  if (opt.cluster.partition.num_partitions > 1) {
    if (o.get_bool("pull", false)) {
      usage("--pull and --partitions K>1 select conflicting engines");
    }
    opt.cluster.policy = core::GrowingPolicy::kPartitioned;
  }
  opt.cluster.transport = parse_transport(o, opt.cluster.partition);
  opt.cluster.placement = parse_placement(o, opt.cluster.partition);
  opt.cluster.frontier.adaptive = !o.get_bool("no-adaptive", false);
  opt.cluster.frontier.sampled_size_estimate =
      o.get_bool("sampled-frontier", false);
  const RepeatOptions rep = parse_repeat(o);

  // One context for every repetition (the default), or a fresh one per run
  // (--no-reuse-context): the reproducible command-line version of the
  // BM_ClusterContextReuse A/B. The result is identical either way; only the
  // wall time moves.
  exec::Context shared_ctx;
  warm_from_mapping(g, shared_ctx);
  core::DiameterApproxResult r;
  util::Timer total;
  for (unsigned run = 0; run < rep.repeat; ++run) {
    exec::Context fresh_ctx;
    exec::Context& ctx = rep.reuse_context ? shared_ctx : fresh_ctx;
    util::Timer t;
    r = core::approximate_diameter(g, opt, &ctx);
    if (rep.repeat > 1) {
      std::printf("run %-3u        %s  (%s context)\n", run + 1,
                  util::format_duration(t.seconds()).c_str(),
                  rep.reuse_context ? "reused" : "fresh");
    }
  }
  // The result block renders through serve/render.hpp — the same function
  // the gdiamd daemon uses — so one-shot and served outputs diff cleanly.
  std::fputs(serve::render_estimate(r, opt.cluster.tau).c_str(), stdout);
  if (rep.reuse_context) print_phase_stats(shared_ctx, rep.repeat);
  std::printf("time:          %s\n",
              util::format_duration(total.seconds()).c_str());
  return 0;
}

int cmd_decompose(const util::Options& o) {
  if (o.positional().size() < 2) usage("decompose requires a graph file");
  const std::string out = o.get_string("out", "");
  if (out.empty()) usage("decompose requires --out");
  const Graph g = load(o.positional()[1]);
  core::ClusterOptions opt;
  opt.tau = static_cast<std::uint32_t>(o.get_int(
      "tau", core::tau_for_cluster_target(g.num_nodes(), g.num_nodes() / 4)));
  opt.seed = static_cast<std::uint64_t>(o.get_int("seed", 1));
  util::Timer t;
  const core::Clustering c = core::cluster(g, opt);
  core::write_clustering_file(c, out);
  std::printf("decomposed in %s: %u clusters, radius %.6g (tau=%u)\n",
              util::format_duration(t.seconds()).c_str(), c.num_clusters(),
              c.radius, opt.tau);
  std::printf("clustering written to %s\n", out.c_str());
  const std::string qout = o.get_string("quotient", "");
  if (!qout.empty()) {
    const core::QuotientGraph q = core::build_quotient(g, c);
    store(q.graph, qout);
    std::printf("quotient graph (%u nodes, %llu edges) written to %s\n",
                q.graph.num_nodes(),
                static_cast<unsigned long long>(q.graph.num_edges()),
                qout.c_str());
  }
  return 0;
}

int cmd_sssp(const util::Options& o) {
  if (o.positional().size() < 2) usage("sssp requires a graph file");
  const Graph g = load(o.positional()[1]);
  const auto source = static_cast<NodeId>(o.get_int("source", 0));
  sssp::DeltaSteppingOptions opt;
  const std::string algo = o.get_string("algorithm", "delta");
  if (algo == "rho") {
    opt.algorithm = exec::Algorithm::kRhoStepping;
  } else if (algo != "delta") {
    usage("--algorithm must be delta or rho");
  }
  opt.delta = o.get_double("delta", 0.0);
  opt.rho = static_cast<std::uint64_t>(o.get_int("rho", 0));
  opt.partition = parse_partition(o);
  opt.transport = parse_transport(o, opt.partition);
  opt.placement = parse_placement(o, opt.partition);
  opt.frontier.adaptive = !o.get_bool("no-adaptive", false);
  opt.frontier.sampled_size_estimate = o.get_bool("sampled-frontier", false);
  const RepeatOptions rep = parse_repeat(o);

  exec::Context shared_ctx;
  warm_from_mapping(g, shared_ctx);
  sssp::DeltaSteppingResult r;
  util::Timer total;
  for (unsigned run = 0; run < rep.repeat; ++run) {
    exec::Context fresh_ctx;
    exec::Context& ctx = rep.reuse_context ? shared_ctx : fresh_ctx;
    util::Timer t;
    r = sssp::shortest_paths(g, source, opt, &ctx);
    if (rep.repeat > 1) {
      std::printf("run %-3u        %s  (%s context)\n", run + 1,
                  util::format_duration(t.seconds()).c_str(),
                  rep.reuse_context ? "reused" : "fresh");
    }
  }
  // Same shared renderer as the daemon (see cmd_estimate).
  std::fputs(serve::render_sssp(source, r).c_str(), stdout);
  std::printf("time:          %s\n",
              util::format_duration(total.seconds()).c_str());
  return 0;
}

int cmd_convert(const util::Options& o) {
  if (o.positional().size() < 3) usage("convert requires IN and OUT files");
  const Graph g = load(o.positional()[1]);
  store(g, o.positional()[2]);
  std::printf("converted %s -> %s (n=%u, m=%llu)\n",
              o.positional()[1].c_str(), o.positional()[2].c_str(),
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    // Chaos runs drive the one-shot CLI through the same fault schedules as
    // the daemon (GDIAM_FAULTS; DESIGN.md §12).
    util::fault::arm_from_env();
    const util::Options opts(argc, argv);
    if (cmd == "generate") return cmd_generate(opts);
    if (cmd == "stats") return cmd_stats(opts);
    if (cmd == "estimate") return cmd_estimate(opts);
    if (cmd == "decompose") return cmd_decompose(opts);
    if (cmd == "sssp") return cmd_sssp(opts);
    if (cmd == "convert") return cmd_convert(opts);
    if (cmd == "--help" || cmd == "help") usage();
    usage(("unknown command '" + cmd + "'").c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gdiam %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
}
