// gdiam_convert — convert any readable graph to the mmap-ready .gcsr format
// (graph/binfmt.hpp; DESIGN.md §14), optionally persisting Δ-presplit
// sidecars so a serving cold start adopts ready-made layouts instead of
// paying the O(m) reorder before its first query.
//
// usage:
//   gdiam_convert INPUT --out FILE.gcsr [--presplit D[,D...]] [--verify]
//
// INPUT is a graph file (.gr DIMACS, .bin gdiam binary, .gcsr, else edge
// list) or a gen: spec ("gen:mesh:side=64:weights=uniform" — the same
// grammar gdiamd serves, serve/graphs.hpp). --presplit takes a
// comma-separated list of Δ values; each adds one persisted presplit
// layout. --verify re-opens the written file (full checksum pass) and
// checks the mapped CSR and every sidecar bit-for-bit against the source.
//
// examples:
//   gdiam generate --family mesh --side 512 --weights uniform --out m.bin
//   gdiam_convert m.bin --out m.gcsr --presplit 0.05,0.1 --verify
//   gdiamd --socket /tmp/g.sock &   # then query spec "file:m.gcsr"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "graph/binfmt.hpp"
#include "graph/split_csr.hpp"
#include "serve/graphs.hpp"
#include "util/fault.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"

namespace {

using namespace gdiam;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: gdiam_convert INPUT --out FILE.gcsr"
               " [--presplit D[,D...]] [--verify]\n"
               "  INPUT       graph file (.gr/.bin/.gcsr/edge list) or a"
               " gen: spec\n"
               "  --presplit  persist the Δ-presplit layout for each listed"
               " Δ value\n"
               "  --verify    re-open the output and check it bit-for-bit"
               " against the source\n");
  std::exit(error == nullptr ? 0 : 2);
}

std::vector<Weight> parse_deltas(const std::string& arg) {
  std::vector<Weight> out;
  std::size_t pos = 0;
  while (pos <= arg.size()) {
    const std::size_t comma = arg.find(',', pos);
    const std::size_t end = comma == std::string::npos ? arg.size() : comma;
    const std::string part = arg.substr(pos, end - pos);
    std::size_t used = 0;
    double d = 0.0;
    try {
      d = std::stod(part, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (part.empty() || used != part.size()) {
      usage(("--presplit: bad delta '" + part + "'").c_str());
    }
    out.push_back(d);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

template <typename T>
bool bits_equal(std::span<const T> a, std::span<const T> b) {
  if (a.size() != b.size()) return false;
  return a.empty() || std::memcmp(a.data(), b.data(), a.size_bytes()) == 0;
}

/// The parity contract in full: mapped CSR arrays identical to the source's,
/// and every persisted sidecar identical to a freshly computed presplit.
bool verify_output(const Graph& src, const std::string& path) {
  const io::MappedGraph m = io::open_mmap(path);  // full checksum pass
  const Graph& g = m.graph();
  if (!bits_equal(src.offsets(), g.offsets()) ||
      !bits_equal(src.targets(), g.targets()) ||
      !bits_equal(src.edge_weights(), g.edge_weights())) {
    std::fprintf(stderr, "verify: mapped CSR differs from source\n");
    return false;
  }
  if (src.min_weight() != g.min_weight() ||
      src.max_weight() != g.max_weight() ||
      src.avg_weight() != g.avg_weight()) {
    std::fprintf(stderr, "verify: persisted weight stats differ\n");
    return false;
  }
  for (const Weight delta : m.presplit_deltas()) {
    CsrSplit loaded;
    if (!m.load_presplit(delta, loaded)) {
      std::fprintf(stderr, "verify: sidecar for delta=%g missing\n", delta);
      return false;
    }
    const CsrSplit fresh = presplit_csr(src.offsets(), src.targets(),
                                        src.edge_weights(), delta);
    if (!bits_equal<EdgeIndex>(loaded.split, fresh.split) ||
        !bits_equal<NodeId>(loaded.targets, fresh.targets) ||
        !bits_equal<Weight>(loaded.weights, fresh.weights)) {
      std::fprintf(stderr, "verify: sidecar for delta=%g differs from a"
                           " fresh presplit\n", delta);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::fault::arm_from_env();  // chaos runs cover "io.write" here too
    const util::Options o(argc, argv);
    if (o.has("help")) usage();
    if (o.positional().empty()) usage("missing INPUT");
    const std::string input = o.positional().front();
    const std::string out = o.get_string("out", "");
    if (out.empty()) usage("--out FILE.gcsr is required");
    if (!out.ends_with(".gcsr")) usage("--out must end in .gcsr");

    io::GcsrWriteOptions wopts;
    if (o.has("presplit")) {
      wopts.presplit_deltas = parse_deltas(o.get_string("presplit", ""));
    }

    util::Timer t_load;
    const Graph g = serve::make_graph(input);
    const double load_s = t_load.seconds();

    util::Timer t_write;
    io::write_gcsr(g, out, wopts);
    const double write_s = t_write.seconds();

    const io::MappedGraph m = io::open_mmap(out, {.verify_checksums = false});
    std::printf("wrote %s: n=%u m=%llu arcs=%llu bytes=%zu\n", out.c_str(),
                g.num_nodes(), static_cast<unsigned long long>(g.num_edges()),
                static_cast<unsigned long long>(g.num_directed_edges()),
                m.file_bytes());
    std::printf("fingerprint:   %016llx\n",
                static_cast<unsigned long long>(m.fingerprint()));
    if (!m.presplit_deltas().empty()) {
      std::printf("presplit:     ");
      for (const Weight d : m.presplit_deltas()) std::printf(" %g", d);
      std::printf("\n");
    }
    std::printf("load %.3fs, write %.3fs\n", load_s, write_s);

    if (o.get_bool("verify", false)) {
      util::Timer t_verify;
      if (!verify_output(g, out)) return 1;
      std::printf("verified in %.3fs: CSR and %zu sidecar(s) bit-identical\n",
                  t_verify.seconds(), m.presplit_deltas().size());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gdiam_convert: %s\n", e.what());
    return 1;
  }
}
