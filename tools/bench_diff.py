#!/usr/bin/env python3
"""Compare two BENCH_<name>.json trajectories and print per-kernel deltas.

The gdiam benches (bench/report.hpp) emit machine-readable trajectories:
top-level scalar metadata plus a "rows" array with one object per benchmark
run. This tool diffs a candidate file against a baseline:

  * rows are matched by their "name" field and compared on --field
    (default: real_time) — positive delta = candidate slower;
  * shared numeric top-level fields are reported informationally (mode
    mixes, thread counts, ...), EXCEPT fields whose name contains
    "_speedup": those are tracked A/B ratios (split-vs-branch, ρ-vs-Δ,
    sampled-vs-exact sizing, ...) where higher is better, and a drop
    beyond --tolerance is flagged like a row regression. The
    numa_placement_speedup_* family is the exception: pinned-vs-unpinned
    hovers around 1.0 on the single-node CI machines by construction
    (DESIGN.md §13), so a drop there prints a WARN line (and a workflow
    annotation) but never affects the exit code;
  * any regression beyond --tolerance is flagged; the exit code is 1
    unless --warn-only is given (CI uses --warn-only so perf drift warns
    without failing the build).

Inside GitHub Actions (GITHUB_ACTIONS=true) regressions are additionally
emitted as ::warning:: workflow annotations.

Example:
  tools/bench_diff.py bench/baseline/BENCH_micro_kernels.json \
      build/BENCH_micro_kernels.json --tolerance 0.15 --warn-only
"""

import argparse
import json
import os
import sys


def load(path):
    """Reads one BENCH_*.json document, exiting with a one-line diagnostic
    (never a traceback) when the file is missing, unreadable, not JSON, or
    JSON of the wrong shape — a missing baseline is an expected state on a
    fresh checkout, not a crash."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except FileNotFoundError:
        sys.exit(
            f"bench_diff: baseline/candidate file not found: {path}\n"
            "  (run the bench to produce it, e.g. ./bench_micro_kernels, or "
            "commit a baseline under bench/baseline/)"
        )
    except OSError as e:
        sys.exit(f"bench_diff: cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"bench_diff: {path} is not valid JSON: {e}")
    if not isinstance(doc, dict):
        sys.exit(
            f"bench_diff: {path}: expected a JSON object with a 'rows' "
            f"array, got {type(doc).__name__}"
        )
    rows = doc.get("rows", [])
    if not isinstance(rows, list) or any(
        not isinstance(row, dict) for row in rows
    ):
        sys.exit(
            f"bench_diff: {path}: 'rows' must be an array of objects "
            "(one per benchmark run)"
        )
    return doc


# _speedup fields matching this prefix are advisory: only meaningful on
# multi-socket hardware, noise around 1.0 on the single-node CI fleet.
NUMA_ADVISORY_PREFIX = "numa_placement_speedup"


def numeric_fields(doc):
    return {
        k: v
        for k, v in doc.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }


def rows_by_name(doc, field):
    out = {}
    for row in doc.get("rows", []):
        name = row.get("name")
        value = row.get(field)
        if not isinstance(name, str) or not isinstance(value, (int, float)):
            continue
        if isinstance(value, bool):
            continue
        out[name] = float(value)
    return out


def github_warning(message):
    if os.environ.get("GITHUB_ACTIONS") == "true":
        # Annotation lines must be single-line.
        print(f"::warning title=bench_diff::{message.strip()}")


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_<name>.json benchmark trajectories."
    )
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("candidate", help="candidate BENCH_*.json")
    parser.add_argument(
        "--field",
        default="real_time",
        help="row field to compare (default: real_time)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="relative regression threshold (default: 0.15 = 15%%)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="always exit 0; report regressions as warnings only",
    )
    args = parser.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    base_rows = rows_by_name(base, args.field)
    cand_rows = rows_by_name(cand, args.field)
    shared = sorted(set(base_rows) & set(cand_rows))
    only_base = sorted(set(base_rows) - set(cand_rows))
    only_cand = sorted(set(cand_rows) - set(base_rows))

    print(
        f"bench_diff: {base.get('bench', '?')} — {len(shared)} shared kernels,"
        f" field={args.field}, tolerance={args.tolerance:.0%}"
    )
    regressions = []
    name_w = max((len(n) for n in shared), default=4)
    for name in shared:
        b, c = base_rows[name], cand_rows[name]
        delta = (c - b) / b if b != 0 else float("inf")
        flag = ""
        if delta > args.tolerance:
            flag = "  << REGRESSION"
            regressions.append((name, b, c, delta))
        elif delta < -args.tolerance:
            flag = "  (improved)"
        print(
            f"  {name:<{name_w}}  {b:12.4g} -> {c:12.4g}  {delta:+8.1%}{flag}"
        )
    # A kernel that existed in the baseline but produced no candidate row was
    # deleted, renamed, or crashed — exactly the runs most likely to hide a
    # regression, so they count as regressions rather than footnotes.
    for name in only_base:
        print(
            f"  {name:<{name_w}}  {base_rows[name]:12.4g} -> (missing)"
            "  << REGRESSION"
        )
        regressions.append((name, base_rows[name], float("nan"), float("inf")))
    for name in only_cand:
        print(f"  {name:<{name_w}}  (new)     -> {cand_rows[name]:12.4g}")

    shared_meta = sorted(
        set(numeric_fields(base)) & set(numeric_fields(cand))
    )
    if shared_meta:
        print("  -- top-level metrics (_speedup fields gated, rest informational) --")
        for key in shared_meta:
            b, c = base[key], cand[key]
            delta = (c - b) / b if b else 0.0
            flag = ""
            # Speedup ratios are higher-is-better A/Bs: a drop beyond
            # tolerance means the optimized path lost ground against its
            # baseline even if both kernels' absolute times moved together.
            # NUMA placement ratios warn without gating (see module docstring).
            if "_speedup" in key and delta < -args.tolerance:
                if key.startswith(NUMA_ADVISORY_PREFIX):
                    flag = "  << WARN (advisory, not gated)"
                    github_warning(
                        f"numa placement ratio dropped {key}: "
                        f"{b:.4g} -> {c:.4g} ({delta:+.1%})"
                    )
                else:
                    flag = "  << REGRESSION"
                    regressions.append((key, float(b), float(c), delta))
            print(
                f"  {key:<{name_w}}  {b:12.4g} -> {c:12.4g}  {delta:+8.1%}{flag}"
            )

    if regressions:
        print(
            f"bench_diff: {len(regressions)} kernel(s) regressed beyond "
            f"{args.tolerance:.0%}:"
        )
        for name, b, c, delta in regressions:
            if c != c:  # NaN: baseline kernel missing from the candidate
                line = f"{name}: {b:.4g} -> missing from candidate"
            else:
                line = f"{name}: {b:.4g} -> {c:.4g} ({delta:+.1%})"
            print(f"  {line}")
            github_warning(f"perf regression {line}")
        if not args.warn_only:
            return 1
    else:
        print("bench_diff: no regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
