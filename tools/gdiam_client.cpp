// gdiam_client — command-line client for the gdiamd serving daemon.
//
//   gdiam_client <verb> [--socket PATH] [key=value ...]
//                [--repeat N] [--jobs J] [--timeout-ms T] [--retry-ms R]
//
// Verbs (see src/serve/protocol.hpp for the wire format):
//   estimate  — CL-DIAM approximation; fields: graph= (required), tau=,
//               seed=, cluster2=, classic=, partitions=, transport=,
//               processes=, adaptive=, sampled-frontier=
//   sssp      — stepping-kernel SSSP; fields: graph= (required), source=,
//               algorithm= (delta|rho), delta=, rho=, partitions=,
//               transport=, processes=, adaptive=, sampled-frontier=
//   load      — preload a graph into the daemon's hot set
//   stats     — serving counters and the resident-graph table
//   shutdown  — ask the daemon to exit
//
// The response body prints to stdout byte-for-byte — for estimate/sssp that
// is exactly the block the one-shot `gdiam estimate` / `gdiam sssp` CLI
// prints (minus its local time:/phases lines), so outputs diff cleanly.
//
// --repeat N sends the request N times per connection; --jobs J opens J
// concurrent connections doing that (the CI smoke's concurrency hammer).
// Responses are matched by their echoed id; the body of the last response
// on the first connection prints, all others are verified "ok" silently.
//
// --retry-ms R retries a refused/absent socket for up to R ms with capped
// exponential backoff + jitter (default 2000) — "client before daemon
// finished binding" is a race, not an error. --timeout-ms T attaches a
// deadline_ms=T field to every query: the daemon answers
// `deadline_exceeded` instead of serving a request whose budget expired
// in its queue.
//
//   gdiam_client estimate graph=gen:mesh:side=64:weights=uniform tau=16
//   gdiam_client sssp graph=file:g.bin source=5 --repeat 20 --jobs 4

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "util/net.hpp"
#include "util/options.hpp"

namespace {

using namespace gdiam;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               R"(usage: gdiam_client <verb> [--socket PATH] [key=value ...]
                    [--repeat N] [--jobs J] [--timeout-ms T] [--retry-ms R]

verbs: estimate | sssp | load | stats | shutdown | fault
fields are passed as key=value arguments, e.g.:
  gdiam_client estimate graph=gen:mesh:side=64:weights=uniform tau=16
  gdiam_client sssp graph=file:g.bin source=5 delta=0.5
  gdiam_client stats
  gdiam_client fault spec="net.send=errno:EPIPE@3"

--timeout-ms T  attach deadline_ms=T to each request (0 = none)
--retry-ms R    retry a refused/absent socket for up to R ms with
                backoff (default 2000; 0 = fail on the first attempt)
)");
  std::exit(error == nullptr ? 0 : 2);
}

/// connect_unix with capped exponential backoff + jitter, retrying only the
/// "daemon not up yet" errnos (ENOENT: socket not created; ECONNREFUSED:
/// bound but not listening, or stale). Everything else — permissions, path
/// too long — fails immediately; waiting cannot fix it.
int connect_with_retry(const std::string& socket_path, std::int64_t budget_ms) {
  std::mt19937 rng{std::random_device{}()};
  std::int64_t backoff_ms = 10;
  std::int64_t waited_ms = 0;
  for (;;) {
    try {
      return util::net::connect_unix(socket_path);
    } catch (const std::exception&) {
      if (errno != ENOENT && errno != ECONNREFUSED) throw;
      if (waited_ms >= budget_ms) throw;
    }
    // Full jitter on a doubling base, capped — concurrent --jobs clients
    // must not retry in lockstep against a daemon mid-bind.
    const std::int64_t sleep_ms = std::uniform_int_distribution<std::int64_t>(
        1, backoff_ms)(rng);
    ::usleep(static_cast<useconds_t>(sleep_ms) * 1000);
    waited_ms += sleep_ms;
    if (backoff_ms < 500) backoff_ms *= 2;
  }
}

/// Sends `repeat` copies of the request on one fresh connection; returns
/// the last response. Throws on socket/protocol failure or error status.
serve::Message run_connection(const std::string& socket_path,
                              const serve::Message& req, unsigned repeat,
                              unsigned job, std::int64_t retry_ms) {
  const int fd = connect_with_retry(socket_path, retry_ms);
  serve::Message last;
  try {
    for (unsigned i = 0; i < repeat; ++i) {
      serve::Message r = req;
      const std::string id =
          std::to_string(job) + "." + std::to_string(i);
      r.set("id", id);
      serve::write_message(fd, r);
      if (!serve::read_message(fd, last)) {
        throw std::runtime_error("daemon closed the connection");
      }
      if (last.get("id") != id) {
        throw std::runtime_error("response id mismatch (got '" +
                                 last.get("id") + "', want '" + id + "')");
      }
      if (last.head != "ok") {
        const std::string code = last.get("code");
        throw std::runtime_error((code.empty() ? "" : "[" + code + "] ") +
                                 last.get("message", "request failed"));
      }
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return last;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string verb = argv[1];
  if (verb == "--help" || verb == "help") usage();
  try {
    const util::Options o(argc - 1, argv + 1);
    const std::string socket_path = o.get_string("socket", "/tmp/gdiamd.sock");
    const std::int64_t repeat = o.get_int("repeat", 1);
    const std::int64_t jobs = o.get_int("jobs", 1);
    const std::int64_t timeout_ms = o.get_int("timeout-ms", 0);
    const std::int64_t retry_ms = o.get_int("retry-ms", 2000);
    if (repeat < 1) usage("--repeat must be >= 1");
    if (jobs < 1) usage("--jobs must be >= 1");
    if (timeout_ms < 0) usage("--timeout-ms must be >= 0");
    if (retry_ms < 0) usage("--retry-ms must be >= 0");

    serve::Message req;
    req.head = verb;
    for (const std::string& arg : o.positional()) {
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        usage(("fields must be key=value, got '" + arg + "'").c_str());
      }
      req.set(arg.substr(0, eq), arg.substr(eq + 1));
    }
    if (timeout_ms > 0) req.set("deadline_ms", std::to_string(timeout_ms));

    serve::Message primary;
    std::vector<std::thread> threads;
    std::vector<std::string> failures(static_cast<std::size_t>(jobs));
    threads.reserve(static_cast<std::size_t>(jobs));
    for (std::int64_t j = 0; j < jobs; ++j) {
      threads.emplace_back([&, j] {
        try {
          serve::Message last = run_connection(
              socket_path, req, static_cast<unsigned>(repeat),
              static_cast<unsigned>(j), retry_ms);
          if (j == 0) primary = std::move(last);
        } catch (const std::exception& e) {
          failures[static_cast<std::size_t>(j)] = e.what();
        }
      });
    }
    for (auto& t : threads) t.join();
    for (std::int64_t j = 0; j < jobs; ++j) {
      if (!failures[static_cast<std::size_t>(j)].empty()) {
        std::fprintf(stderr, "gdiam_client %s: %s\n", verb.c_str(),
                     failures[static_cast<std::size_t>(j)].c_str());
        return 1;
      }
    }
    // estimate/sssp print the body alone — byte-for-byte the CLI's block,
    // for clean diffs. Other verbs print their headers (minus the echoed
    // id) first, then any body (e.g. the stats verb's per-graph table).
    if (verb != "estimate" && verb != "sssp") {
      for (const auto& [k, v] : primary.fields) {
        if (k != "id") std::printf("%s: %s\n", k.c_str(), v.c_str());
      }
    }
    std::fputs(primary.body.c_str(), stdout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gdiam_client %s: %s\n", verb.c_str(), e.what());
    return 1;
  }
}
