#pragma once
// mesh(S): the S×S square mesh of the paper's experiments — a graph of known
// doubling dimension b = 2 for which Corollary 1 applies. Also the torus
// variant (no boundary effects) for property tests.

#include "graph/graph.hpp"

namespace gdiam::gen {

/// S×S grid with unit weights. Node (r, c) has id r*S + c.
/// n = S², m = 2S(S-1), unweighted diameter 2(S-1).
[[nodiscard]] Graph mesh(NodeId side);

/// S×S torus with unit weights (wrap-around rows and columns), S >= 3.
[[nodiscard]] Graph torus(NodeId side);

/// Node id of mesh cell (row, col) for an S-sided mesh.
[[nodiscard]] constexpr NodeId mesh_node(NodeId side, NodeId row,
                                         NodeId col) noexcept {
  return row * side + col;
}

}  // namespace gdiam::gen
