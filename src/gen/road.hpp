#pragma once
// Synthetic road networks.
//
// Substitute for the DIMACS roads-USA / roads-CAL inputs, which cannot be
// downloaded in this environment (DESIGN.md §2). The generator produces the
// structural regime that matters for the paper's comparison: near-planar,
// bounded degree, edge weights proportional to Euclidean length, weighted
// diameter that grows with sqrt(n) — i.e. the regime where Δ-stepping needs
// Θ(hop-diameter) rounds and the clustering algorithm wins by orders of
// magnitude. Real DIMACS data can still be used through io::read_dimacs.

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace gdiam::gen {

struct RoadParams {
  /// Probability that a grid street segment exists (creates holes/detours).
  double keep_probability = 0.93;
  /// Fraction of nodes sprouting one extra diagonal shortcut.
  double diagonal_fraction = 0.05;
  /// Grid spacing in weight units (roads-USA style integer distances).
  double spacing = 100.0;
  /// Max positional jitter as a fraction of spacing.
  double jitter = 0.3;
};

/// Road-like network on a width x height jittered grid, integer Euclidean
/// edge weights (>= 1). The returned graph is the largest connected
/// component of the construction, so node count can be slightly below
/// width*height.
[[nodiscard]] Graph road_network(NodeId width, NodeId height,
                                 util::Xoshiro256& rng,
                                 const RoadParams& params = {});

/// Convenience: roughly n-node road network (square aspect).
[[nodiscard]] Graph road_network(NodeId approx_nodes, util::Xoshiro256& rng);

}  // namespace gdiam::gen
