#pragma once
// R-MAT recursive-matrix graphs (Chakrabarti, Zhan, Faloutsos, SDM'04).
//
// The paper's synthetic stand-in for social networks: power-law degree
// distribution and small hop diameter. R-MAT(S) in the paper has n = 2^S
// nodes and m = 16 * 2^S edges. This repo also uses R-MAT as the substitute
// for the (unavailable) livejournal/twitter datasets — see DESIGN.md §2.

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace gdiam::gen {

struct RmatParams {
  /// Quadrant probabilities; must be positive and sum to 1.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  /// Per-level probability perturbation (+-noise factor), as recommended by
  /// the R-MAT authors to avoid staircase artifacts. 0 disables.
  double noise = 0.1;
};

/// R-MAT graph with 2^scale nodes and edge_factor * 2^scale generated edge
/// samples (duplicates/self-loops removed afterwards, so the final m is
/// slightly smaller — same convention as the reference generator).
/// The result is symmetrized and unit-weighted; it is typically disconnected,
/// so callers analyze the largest component (as the paper does for social
/// graphs).
[[nodiscard]] Graph rmat(unsigned scale, EdgeIndex edge_factor,
                         util::Xoshiro256& rng,
                         const RmatParams& params = {});

/// Paper's R-MAT(S): edge_factor 16.
[[nodiscard]] inline Graph rmat(unsigned scale, util::Xoshiro256& rng) {
  return rmat(scale, 16, rng);
}

}  // namespace gdiam::gen
