#pragma once
// Cartesian graph products.
//
// roads(S) in the paper is "the cartesian product of a linear array of S
// nodes (unit edge weights) with roads-USA": S stacked copies of the road
// network with unit-weight rungs between consecutive copies. The general
// product is provided here; gen::roads_product specializes it.

#include "graph/graph.hpp"

namespace gdiam::gen {

/// Cartesian product A □ B: node (a, b) has id a * B.num_nodes() + b;
/// (a,b)~(a',b) for every edge a~a' in A (weight inherited from A) and
/// (a,b)~(a,b') for every edge b~b' in B (weight inherited from B).
/// dist((a,b),(a',b')) = dist_A(a,a') + dist_B(b,b'), so the weighted
/// diameter is Φ(A) + Φ(B).
[[nodiscard]] Graph cartesian_product(const Graph& a, const Graph& b);

/// Node id of (a, b) in cartesian_product(A, B).
[[nodiscard]] constexpr NodeId product_node(NodeId b_nodes, NodeId a,
                                            NodeId b) noexcept {
  return a * b_nodes + b;
}

/// The paper's roads(S): path of `copies` nodes (unit weights) □ `base`.
[[nodiscard]] Graph roads_product(NodeId copies, const Graph& base);

}  // namespace gdiam::gen
