#include "gen/mesh.hpp"

#include <stdexcept>

#include "graph/builder.hpp"

namespace gdiam::gen {

Graph mesh(NodeId side) {
  const auto n = static_cast<NodeId>(side * side);
  GraphBuilder b(n);
  for (NodeId r = 0; r < side; ++r) {
    for (NodeId c = 0; c < side; ++c) {
      const NodeId u = mesh_node(side, r, c);
      if (c + 1 < side) b.add_edge(u, mesh_node(side, r, c + 1), 1.0);
      if (r + 1 < side) b.add_edge(u, mesh_node(side, r + 1, c), 1.0);
    }
  }
  return b.build();
}

Graph torus(NodeId side) {
  if (side < 3) throw std::invalid_argument("torus: side must be >= 3");
  const auto n = static_cast<NodeId>(side * side);
  GraphBuilder b(n);
  for (NodeId r = 0; r < side; ++r) {
    for (NodeId c = 0; c < side; ++c) {
      const NodeId u = mesh_node(side, r, c);
      b.add_edge(u, mesh_node(side, r, (c + 1) % side), 1.0);
      b.add_edge(u, mesh_node(side, (r + 1) % side, c), 1.0);
    }
  }
  return b.build();
}

}  // namespace gdiam::gen
