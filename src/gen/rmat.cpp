#include "gen/rmat.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/builder.hpp"
#include "util/parallel.hpp"

namespace gdiam::gen {

Graph rmat(unsigned scale, EdgeIndex edge_factor, util::Xoshiro256& rng,
           const RmatParams& params) {
  if (scale == 0 || scale > 31) {
    throw std::invalid_argument("rmat: scale must be in [1, 31]");
  }
  const double sum = params.a + params.b + params.c + params.d;
  if (std::abs(sum - 1.0) > 1e-9 || params.a <= 0 || params.b <= 0 ||
      params.c <= 0 || params.d <= 0) {
    throw std::invalid_argument("rmat: quadrant probabilities must be "
                                "positive and sum to 1");
  }

  const auto n = static_cast<NodeId>(1u << scale);
  const EdgeIndex samples = edge_factor << scale;

  // Sample edges in parallel with per-thread RNG substreams; determinism
  // follows from the fixed sample->thread partition (static schedule).
  const int threads = util::num_threads();
  std::vector<EdgeList> parts(threads);
#pragma omp parallel num_threads(threads)
  {
    const int tid = omp_get_thread_num();
    util::Xoshiro256 local = rng.split(static_cast<std::uint64_t>(tid));
    EdgeList& out = parts[tid];
#pragma omp for schedule(static)
    for (EdgeIndex s = 0; s < samples; ++s) {
      NodeId u = 0, v = 0;
      for (unsigned level = 0; level < scale; ++level) {
        // Perturb quadrant probabilities per level (R-MAT "noise").
        double a = params.a, b = params.b, c = params.c, d = params.d;
        if (params.noise > 0.0) {
          const double na = 1.0 + params.noise * (2.0 * local.next_double() - 1.0);
          const double nb = 1.0 + params.noise * (2.0 * local.next_double() - 1.0);
          const double nc = 1.0 + params.noise * (2.0 * local.next_double() - 1.0);
          const double nd = 1.0 + params.noise * (2.0 * local.next_double() - 1.0);
          a *= na; b *= nb; c *= nc; d *= nd;
          const double norm = a + b + c + d;
          a /= norm; b /= norm; c /= norm; d /= norm;
        }
        const double r = local.next_double();
        u <<= 1;
        v <<= 1;
        if (r < a) {
          // top-left: no bits set
        } else if (r < a + b) {
          v |= 1;
        } else if (r < a + b + c) {
          u |= 1;
        } else {
          u |= 1;
          v |= 1;
        }
      }
      if (u != v) out.push_back(Edge{u, v, 1.0});
    }
  }

  GraphBuilder builder(n);
  for (const auto& part : parts) builder.add_edges(part);
  return builder.build();
}

}  // namespace gdiam::gen
