#include "gen/product.hpp"

#include <stdexcept>

#include "gen/basic.hpp"
#include "graph/builder.hpp"

namespace gdiam::gen {

Graph cartesian_product(const Graph& a, const Graph& b) {
  const NodeId na = a.num_nodes(), nb = b.num_nodes();
  const auto total = static_cast<std::uint64_t>(na) * nb;
  if (total > static_cast<std::uint64_t>(kInvalidNode)) {
    throw std::invalid_argument("cartesian_product: result too large");
  }
  GraphBuilder builder(static_cast<NodeId>(total));
  // Edges inherited from A, replicated for every node of B.
  for (NodeId u = 0; u < na; ++u) {
    const auto nbr = a.neighbors(u);
    const auto wts = a.weights(u);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      if (u < nbr[i]) {
        for (NodeId x = 0; x < nb; ++x) {
          builder.add_edge(product_node(nb, u, x), product_node(nb, nbr[i], x),
                           wts[i]);
        }
      }
    }
  }
  // Edges inherited from B, replicated for every node of A.
  for (NodeId v = 0; v < nb; ++v) {
    const auto nbr = b.neighbors(v);
    const auto wts = b.weights(v);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      if (v < nbr[i]) {
        for (NodeId x = 0; x < na; ++x) {
          builder.add_edge(product_node(nb, x, v), product_node(nb, x, nbr[i]),
                           wts[i]);
        }
      }
    }
  }
  return builder.build();
}

Graph roads_product(NodeId copies, const Graph& base) {
  return cartesian_product(path(copies), base);
}

}  // namespace gdiam::gen
