#include "gen/basic.hpp"

#include <stdexcept>
#include <unordered_set>

#include "graph/builder.hpp"

namespace gdiam::gen {

Graph path(NodeId n) {
  GraphBuilder b(n);
  for (NodeId u = 0; u + 1 < n; ++u) b.add_edge(u, u + 1, 1.0);
  return b.build();
}

Graph cycle(NodeId n) {
  GraphBuilder b(n);
  for (NodeId u = 0; u + 1 < n; ++u) b.add_edge(u, u + 1, 1.0);
  if (n >= 3) b.add_edge(n - 1, 0, 1.0);
  return b.build();
}

Graph star(NodeId n) {
  GraphBuilder b(n);
  for (NodeId u = 1; u < n; ++u) b.add_edge(0, u, 1.0);
  return b.build();
}

Graph complete(NodeId n) {
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) b.add_edge(u, v, 1.0);
  }
  return b.build();
}

Graph binary_tree(NodeId n) {
  GraphBuilder b(n);
  for (NodeId u = 1; u < n; ++u) b.add_edge(u, (u - 1) / 2, 1.0);
  return b.build();
}

Graph random_tree(NodeId n, util::Xoshiro256& rng) {
  GraphBuilder b(n);
  for (NodeId u = 1; u < n; ++u) {
    const auto parent = static_cast<NodeId>(rng.next_bounded(u));
    b.add_edge(u, parent, 1.0);
  }
  return b.build();
}

Graph gnm(NodeId n, EdgeIndex m, util::Xoshiro256& rng,
          bool ensure_connected) {
  if (n < 2 && m > 0) throw std::invalid_argument("gnm: n too small");
  const auto max_edges =
      static_cast<EdgeIndex>(n) * (n - 1) / 2;
  if (m > max_edges) throw std::invalid_argument("gnm: m exceeds n*(n-1)/2");

  GraphBuilder b(n);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  auto key = [](NodeId u, NodeId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  };
  if (ensure_connected) {
    for (NodeId u = 1; u < n; ++u) {
      const auto parent = static_cast<NodeId>(rng.next_bounded(u));
      if (seen.insert(key(u, parent)).second) b.add_edge(u, parent, 1.0);
    }
  }
  EdgeIndex added = ensure_connected ? static_cast<EdgeIndex>(seen.size()) : 0;
  while (added < m) {
    const auto u = static_cast<NodeId>(rng.next_bounded(n));
    const auto v = static_cast<NodeId>(rng.next_bounded(n));
    if (u == v) continue;
    if (!seen.insert(key(u, v)).second) continue;
    b.add_edge(u, v, 1.0);
    ++added;
  }
  return b.build();
}

}  // namespace gdiam::gen
