#pragma once
// Elementary graph families (paths, cycles, stars, trees, complete graphs,
// Erdős–Rényi) used as test fixtures, product-graph factors and baseline
// topologies with analytically known diameters.

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace gdiam::gen {

/// Path P_n with unit weights: diameter n-1.
[[nodiscard]] Graph path(NodeId n);

/// Cycle C_n with unit weights: diameter floor(n/2).
[[nodiscard]] Graph cycle(NodeId n);

/// Star K_{1,n-1} centered at node 0, unit weights: diameter 2 (n >= 3).
[[nodiscard]] Graph star(NodeId n);

/// Complete graph K_n, unit weights: diameter 1 (n >= 2).
[[nodiscard]] Graph complete(NodeId n);

/// Complete binary tree on n nodes (heap numbering), unit weights.
[[nodiscard]] Graph binary_tree(NodeId n);

/// Uniform random tree on n nodes (random attachment), unit weights.
/// Always connected: used as the connectivity backbone of random fixtures.
[[nodiscard]] Graph random_tree(NodeId n, util::Xoshiro256& rng);

/// Erdős–Rényi G(n, m): m distinct uniform edges, unit weights.
/// Not necessarily connected; pass `ensure_connected` to superimpose a
/// random spanning tree.
[[nodiscard]] Graph gnm(NodeId n, EdgeIndex m, util::Xoshiro256& rng,
                        bool ensure_connected = false);

}  // namespace gdiam::gen
