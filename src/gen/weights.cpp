#include "gen/weights.hpp"

#include <algorithm>

#include "graph/ops.hpp"
#include "util/rng.hpp"

namespace gdiam::gen {

namespace {

/// Stateless per-edge random value: hash (seed, min(u,v), max(u,v)).
std::uint64_t edge_hash(std::uint64_t seed, NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  util::SplitMix64 sm(seed ^ (static_cast<std::uint64_t>(u) << 32 | v));
  sm.next();  // decorrelate from the raw key
  return sm.next();
}

double edge_unit_interval(std::uint64_t seed, NodeId u, NodeId v) {
  return static_cast<double>(edge_hash(seed, u, v) >> 11) * 0x1.0p-53;
}

}  // namespace

double edge_uniform_draw(std::uint64_t seed, NodeId u, NodeId v) {
  return 1.0 - edge_unit_interval(seed, u, v);  // (0, 1]
}

Graph uniform_weights(const Graph& g, std::uint64_t seed) {
  return reweight(g, [seed](NodeId u, NodeId v, Weight) {
    return edge_uniform_draw(seed, u, v);
  });
}

Graph uniform_int_weights(const Graph& g, std::uint64_t lo, std::uint64_t hi,
                          std::uint64_t seed) {
  if (lo == 0) lo = 1;  // weights must be positive
  const std::uint64_t span = hi >= lo ? hi - lo + 1 : 1;
  return reweight(g, [=](NodeId u, NodeId v, Weight) {
    return static_cast<Weight>(lo + edge_hash(seed, u, v) % span);
  });
}

Graph bimodal_weights(const Graph& g, Weight heavy_value, Weight light_value,
                      double heavy_p, std::uint64_t seed) {
  return reweight(g, [=](NodeId u, NodeId v, Weight) {
    return edge_unit_interval(seed, u, v) < heavy_p ? heavy_value
                                                    : light_value;
  });
}

Graph unit_weights(const Graph& g) {
  return reweight(g, [](NodeId, NodeId, Weight) { return 1.0; });
}

}  // namespace gdiam::gen
