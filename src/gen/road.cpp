#include "gen/road.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/components.hpp"

namespace gdiam::gen {

Graph road_network(NodeId width, NodeId height, util::Xoshiro256& rng,
                   const RoadParams& params) {
  if (width < 2 || height < 2) {
    throw std::invalid_argument("road_network: grid must be at least 2x2");
  }
  const auto n = static_cast<NodeId>(width) * height;

  // Jittered intersection coordinates.
  std::vector<double> xs(n), ys(n);
  for (NodeId r = 0; r < height; ++r) {
    for (NodeId c = 0; c < width; ++c) {
      const NodeId u = r * width + c;
      const double jx = params.jitter * params.spacing *
                        (2.0 * rng.next_double() - 1.0);
      const double jy = params.jitter * params.spacing *
                        (2.0 * rng.next_double() - 1.0);
      xs[u] = static_cast<double>(c) * params.spacing + jx;
      ys[u] = static_cast<double>(r) * params.spacing + jy;
    }
  }
  auto euclid_weight = [&](NodeId u, NodeId v) {
    const double dx = xs[u] - xs[v];
    const double dy = ys[u] - ys[v];
    return std::max(1.0, std::round(std::sqrt(dx * dx + dy * dy)));
  };

  GraphBuilder b(n);
  for (NodeId r = 0; r < height; ++r) {
    for (NodeId c = 0; c < width; ++c) {
      const NodeId u = r * width + c;
      if (c + 1 < width && rng.next_bernoulli(params.keep_probability)) {
        b.add_edge(u, u + 1, euclid_weight(u, u + 1));
      }
      if (r + 1 < height && rng.next_bernoulli(params.keep_probability)) {
        b.add_edge(u, u + width, euclid_weight(u, u + width));
      }
      // Occasional diagonal shortcut (overpass / ramp).
      if (c + 1 < width && r + 1 < height &&
          rng.next_bernoulli(params.diagonal_fraction)) {
        const NodeId v = u + width + 1;
        b.add_edge(u, v, euclid_weight(u, v));
      }
    }
  }
  // Dropped street segments can disconnect pockets; the road network is the
  // giant component (covers ~all nodes at the default keep probability).
  return largest_component(b.build()).graph;
}

Graph road_network(NodeId approx_nodes, util::Xoshiro256& rng) {
  const auto side = static_cast<NodeId>(
      std::max(2.0, std::round(std::sqrt(static_cast<double>(approx_nodes)))));
  return road_network(side, side, rng);
}

}  // namespace gdiam::gen
