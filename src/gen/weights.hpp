#pragma once
// Edge-weight assignment.
//
// Topology generators emit unit weights; these helpers re-weight a graph the
// way the paper does ("we assigned uniform random edge weights in (0,1]
// according to the approach commonly adopted in the literature"), plus the
// bimodal distribution of the Section 5 Δ-initialization study.
//
// Weights are derived from a hash of (seed, u, v) rather than a sequential
// RNG, so the assignment is independent of edge enumeration order and stable
// under graph rebuilds.

#include <cstdint>

#include "graph/graph.hpp"

namespace gdiam::gen {

/// Uniform weights in (0, 1].
[[nodiscard]] Graph uniform_weights(const Graph& g, std::uint64_t seed);

/// Uniform integral weights in [lo, hi] (paper's theory assumes positive
/// integral weights polynomial in n).
[[nodiscard]] Graph uniform_int_weights(const Graph& g, std::uint64_t lo,
                                        std::uint64_t hi, std::uint64_t seed);

/// Bimodal weights: `heavy_value` with probability heavy_p, else
/// `light_value`. The paper's Δ-init experiment uses heavy=1 (p=0.1),
/// light=1e-6 on mesh(2048).
[[nodiscard]] Graph bimodal_weights(const Graph& g, Weight heavy_value,
                                    Weight light_value, double heavy_p,
                                    std::uint64_t seed);

/// All weights = 1 (makes the weighted diameter equal the hop diameter).
[[nodiscard]] Graph unit_weights(const Graph& g);

/// The per-edge uniform (0,1] draw used by uniform_weights; exposed for
/// tests asserting order independence.
[[nodiscard]] double edge_uniform_draw(std::uint64_t seed, NodeId u, NodeId v);

}  // namespace gdiam::gen
