#pragma once
// Graph specs and the daemon's hot-graph store (DESIGN.md §10).
//
// A *graph spec* is the string a client names a graph by — the GraphStore's
// cache key and the batching key of the request scheduler:
//
//   gen:<family>:<key>=<value>:...   — synthesized, e.g.
//                                      "gen:mesh:side=64:weights=uniform"
//   file:<path>                      — loaded from disk (format by
//                                      extension, like the CLI: .gr DIMACS,
//                                      .bin gdiam binary, .gcsr mmap binary
//                                      CSR, else edge list)
//   <path>                           — shorthand for file:<path>
//
// gen: families and parameter defaults mirror `gdiam generate` exactly
// (including the weight-seed derivation), so a spec and a generated file
// produce bit-identical graphs — which is what lets the CI smoke diff
// daemon responses against one-shot CLI runs on the same file.
//
// The store keeps, per spec, the loaded Graph plus one exec::Context — the
// warm state (pooled engines with resident pool workers, cached Δ-presplits
// and shard layouts, RoundBuffers) that makes repeated queries on a hot
// graph cheap. Contexts are not thread-safe, so each entry carries the
// mutex the request scheduler holds while computing on it: one query per
// graph at a time, many graphs genuinely concurrent.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/context.hpp"
#include "graph/graph.hpp"

namespace gdiam::serve {

/// Builds the graph a spec names. Throws std::invalid_argument on malformed
/// specs and whatever the graph/io layer throws on unreadable files.
[[nodiscard]] Graph make_graph(const std::string& spec);

/// The daemon's resident graphs, keyed by spec. Entries are created on
/// first use and live until the store dies — a serving daemon's working set
/// is the graphs it is asked about.
class GraphStore {
 public:
  struct Entry {
    std::string spec;
    Graph graph;
    exec::Context ctx;
    /// Held while computing on `ctx` (contexts serve one thread at a time).
    std::mutex mu;
    /// Set under mu once the graph is in place; a failed load leaves it
    /// false so the next get() retries instead of serving an empty graph.
    bool loaded = false;
    /// Requests served on this entry (monotonic; read without mu for stats).
    std::atomic<std::uint64_t> served{0};
  };

  /// Returns the entry for `spec`, loading the graph on first use. The
  /// reference stays valid for the store's lifetime. Concurrent callers of
  /// the same cold spec block until one load completes.
  Entry& get(const std::string& spec);

  /// Specs currently resident, in load order, with their served counts —
  /// the `stats` verb's view (counts are snapshots, not a consistent cut).
  struct Snapshot {
    std::string spec;
    std::uint32_t nodes = 0;
    std::uint64_t edges = 0;
    std::uint64_t served = 0;
  };
  [[nodiscard]] std::vector<Snapshot> snapshot();

  [[nodiscard]] std::size_t size();

 private:
  std::mutex mu_;
  std::map<std::string, std::unique_ptr<Entry>> entries_;
  std::vector<Entry*> order_;  // load order, for stable stats output
};

}  // namespace gdiam::serve
