#include "serve/render.hpp"

#include <algorithm>
#include <cstdio>

#include "mr/stats.hpp"

namespace gdiam::serve {
namespace {

/// printf into a std::string (the result blocks are a few hundred bytes).
template <typename... Args>
void appendf(std::string& out, const char* fmt, Args... args) {
  char buf[512];
  const int n = std::snprintf(buf, sizeof buf, fmt, args...);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n),
                                      sizeof buf - 1));
}

}  // namespace

std::string render_estimate(const core::DiameterApproxResult& r,
                            std::uint32_t tau) {
  std::string out;
  appendf(out, "estimate:      %.6g%s\n", r.estimate,
          r.quotient_exact ? " (conservative upper bound)" : "");
  appendf(out, "classic form:  %.6g  (Phi(G_C)=%.6g + 2R, R=%.6g)\n",
          r.estimate_classic, r.quotient_diam, r.radius);
  appendf(out, "clusters:      %u (tau=%u)\n", r.num_clusters, tau);
  appendf(out, "cost:          %s\n", mr::to_string(r.stats).c_str());
  return out;
}

std::string render_sssp(NodeId source, const sssp::DeltaSteppingResult& r) {
  std::string out;
  // One source line per kernel, naming its own tuning knob; still the single
  // printer both the CLI and the daemon render through (CI diffs them).
  if (r.algorithm_used == exec::Algorithm::kRhoStepping) {
    appendf(out,
            "source:        %u (algorithm=rho, rho=%llu, partitions=%u, "
            "processes=%u)\n",
            source, static_cast<unsigned long long>(r.rho_used),
            r.partitions_used, r.processes_used);
  } else {
    appendf(out, "source:        %u (Delta=%g, partitions=%u, processes=%u)\n",
            source, r.delta_used, r.partitions_used, r.processes_used);
  }
  appendf(out, "eccentricity:  %.6g (farthest node %u)\n", r.eccentricity,
          r.farthest);
  appendf(out, "2-approx diam: %.6g\n", 2.0 * r.eccentricity);
  appendf(out, "cost:          %s\n", mr::to_string(r.stats).c_str());
  return out;
}

}  // namespace gdiam::serve
