#pragma once
// gdiamd — the concurrent serving daemon (DESIGN.md §10).
//
// A Server owns one AF_UNIX listener and serves the protocol of
// serve/protocol.hpp. The moving parts, and who runs on what thread:
//
//   accept thread   — accepts connections, spawns one reader per client;
//   reader threads  — parse frames off one connection each and enqueue
//                     {connection, request} onto the scheduler queue.
//                     Control verbs (stats, shutdown, fault) are answered
//                     inline — they must work even when every worker is
//                     busy. Admission control happens here: a full queue
//                     sheds the request with an `overloaded` error instead
//                     of queueing without bound;
//   worker threads  — the request scheduler: each pops the oldest pending
//                     request, then *batches* every other pending request
//                     for the same graph spec (up to max_batch, preserving
//                     arrival order), resolves the graph once, takes the
//                     graph's context lock once, and serves the whole batch
//                     on the warm exec::Context before unlocking. Client
//                     deadlines (`deadline_ms`) are checked at dequeue and
//                     again before each batch item: an expired request gets
//                     a `deadline_exceeded` error, never a silent drop.
//
// Robustness (DESIGN.md §12): every error response carries a typed `code`
// field (bad_request / overloaded / deadline_exceeded / shutting_down /
// internal). Responses are written with a bounded timeout — a client that
// stops reading is disconnected (`disconnected_slow`) instead of wedging a
// worker on a full socket buffer. When a remote transport fails terminally
// (mr::TransportError — e.g. a pool group that exhausted its restart
// budget), the query is transparently re-executed on LocalTransport and the
// response gains `degraded=1`: results are bit-identical by the transport
// parity contract, so degradation is invisible except in the stats. On
// shutdown, in-flight batches finish and queued requests get
// `shutting_down`.
//
// Batching policy: same-graph requests are where the warm state lives —
// pooled engines with resident pool workers, cached Δ-presplits, reusable
// round buffers. Serving them back-to-back under one lock acquisition
// amortizes scheduling and keeps the context hot, while requests for
// *different* graphs proceed on other workers in true parallel. A batch
// never reorders: requests are served in arrival order, and responses carry
// the client's `id` so pipelined clients can match them up.
//
// Queries on one graph are deliberately serialized (a Context is
// single-threaded by contract, and the kernels parallelize internally with
// OpenMP anyway — two concurrent estimates would fight over cores, not
// share them). Concurrency across graphs is real: worker_threads bounds how
// many graphs compute simultaneously.
//
// Shutdown: request_stop() (also triggered by the `shutdown` verb) closes
// the listener and wakes everything; stop() joins all threads — call it
// from the owning thread, never from a request handler.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>

#include "serve/graphs.hpp"
#include "serve/protocol.hpp"

namespace gdiam::serve {

struct ServerOptions {
  /// Filesystem path of the AF_UNIX listening socket.
  std::string socket_path = "/tmp/gdiamd.sock";
  /// Request-scheduler workers = graphs computing concurrently.
  std::uint32_t worker_threads = 2;
  /// Max same-graph requests served per batch (>= 1).
  std::uint32_t max_batch = 16;
  /// Admission bound on the pending-request queue: requests past it are
  /// shed with an `overloaded` error instead of queueing without bound
  /// (>= 1; a deep queue only converts overload into deadline misses).
  std::uint32_t max_queue = 256;
  /// How long one response write may block on a full socket buffer before
  /// the client is declared stalled and disconnected (0 = forever).
  std::uint32_t write_timeout_ms = 10000;
  /// Shrinks each accepted connection's SO_SNDBUF (0 = kernel default).
  /// Tests use it to hit the stalled-reader path without megabytes of
  /// pipelined responses.
  std::uint32_t sndbuf_bytes = 0;
  /// When a remote transport fails terminally mid-query, re-execute on
  /// LocalTransport (`degraded=1` in the response) instead of surfacing the
  /// transport error to the client.
  bool degrade_to_local = true;
};

/// Monotonic serving counters (the `stats` verb and BENCH_serving).
struct ServerStats {
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> requests{0};   // enqueued query requests
  std::atomic<std::uint64_t> errors{0};     // error responses sent
  std::atomic<std::uint64_t> batches{0};    // scheduler dispatches
  /// Requests that rode along in a batch behind its head (> 0 proves the
  /// same-graph batcher actually coalesced concurrent queries).
  std::atomic<std::uint64_t> batched_requests{0};
  /// Requests refused at admission because the queue was full.
  std::atomic<std::uint64_t> shed{0};
  /// Requests whose client deadline expired before (or between) service.
  std::atomic<std::uint64_t> deadline_exceeded{0};
  /// Queries transparently re-executed on LocalTransport after a terminal
  /// remote-transport failure (the pool→local degradation ladder).
  std::atomic<std::uint64_t> degraded{0};
  /// Clients disconnected because they stopped draining their responses.
  std::atomic<std::uint64_t> disconnected_slow{0};
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and spawns the accept + worker threads. Throws on
  /// bind failure (stale-socket unlink is handled; a *live* daemon on the
  /// same path is not — two daemons must not share a socket).
  void start();

  /// Signals shutdown and wakes every thread; safe from any thread,
  /// including request handlers. Returns immediately.
  void request_stop();

  /// Blocks until request_stop() (signal handler, shutdown verb, ...).
  void wait();

  /// request_stop() + joins all threads + closes all sockets. Idempotent.
  /// Must not be called from a server thread.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_.load(); }
  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::string& socket_path() const noexcept {
    return opts_.socket_path;
  }
  [[nodiscard]] GraphStore& graphs() noexcept { return store_; }

 private:
  /// One client connection; shared between its reader thread and whichever
  /// worker is writing a response (frames are serialized by write_mu).
  struct Connection {
    int fd = -1;
    std::mutex write_mu;
  };

  /// One scheduled query: the parsed request plus where the response goes.
  struct Request {
    std::shared_ptr<Connection> conn;
    Message msg;
    std::string graph;  // batching key (the request's graph spec)
    /// Absolute expiry derived from the client's deadline_ms at admission
    /// (time_point::max() when the client named none).
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void worker_loop();
  void serve_batch(std::vector<Request>& batch);
  /// Handles one query on its (locked) graph entry; returns the response.
  /// `force_local` overrides the request's transport choice with
  /// LocalTransport (the degradation retry).
  Message handle_query(GraphStore::Entry& entry, const Message& req,
                       bool force_local);
  Message handle_stats();
  Message handle_fault(const Message& req);
  /// error response with the typed `code` field; bumps the errors counter.
  Message error_response(const std::string& code, const std::string& message);
  void send_response(Connection& conn, const Message& resp);
  /// error_response + id echo + send, in one call (admission paths).
  void send_error(Connection& conn, const Message& req,
                  const std::string& code, const std::string& message);

  ServerOptions opts_;
  GraphStore store_;
  ServerStats stats_;

  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::mutex qmu_;
  std::condition_variable qcv_;
  std::deque<Request> queue_;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> readers_;
};

}  // namespace gdiam::serve
