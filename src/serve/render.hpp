#pragma once
// Canonical text rendering of query results (DESIGN.md §10).
//
// The daemon's parity contract is textual: the body of an `estimate` or
// `sssp` response must be byte-for-byte the block the one-shot CLI prints
// for the same graph and options — that is what the CI smoke diffs and what
// makes daemon output drop-in for scripts built around the CLI. The only
// way to keep two printers identical forever is to have exactly one:
// gdiam_cli and serve::Server both call these.
//
// Deliberately excluded: the CLI's `time:` / `run N` / `phases` lines —
// wall-clock and context-cumulative detail that is meaningless to compare
// across processes. Included: the `cost:` line, whose model-level counters
// are transport- and serving-invariant by the repo's determinism contract
// (its wire= component is transport-dependent; comparisons across different
// transports filter it, see .github/workflows/ci.yml).

#include <string>

#include "core/diameter.hpp"
#include "graph/graph.hpp"
#include "sssp/delta_stepping.hpp"

namespace gdiam::serve {

/// The CL-DIAM result block: estimate / classic form / clusters / cost.
[[nodiscard]] std::string render_estimate(const core::DiameterApproxResult& r,
                                          std::uint32_t tau);

/// The Δ-stepping result block: source / eccentricity / 2-approx diam /
/// cost.
[[nodiscard]] std::string render_sssp(NodeId source,
                                      const sssp::DeltaSteppingResult& r);

}  // namespace gdiam::serve
