#include "serve/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/cluster.hpp"
#include "core/diameter.hpp"
#include "mr/transport.hpp"
#include "serve/render.hpp"
#include "sssp/rho_stepping.hpp"
#include "util/fault.hpp"
#include "util/net.hpp"

namespace gdiam::serve {

namespace net = gdiam::util::net;

namespace {

std::uint64_t field_u64(const Message& m, const std::string& key,
                        std::uint64_t fallback) {
  const std::string v = m.get(key);
  if (v.empty()) return fallback;
  std::size_t used = 0;
  const unsigned long long parsed = std::stoull(v, &used);
  if (used != v.size()) {
    throw std::invalid_argument("bad value for '" + key + "': " + v);
  }
  return parsed;
}

std::uint32_t field_u32(const Message& m, const std::string& key,
                        std::uint32_t fallback) {
  const std::uint64_t v = field_u64(m, key, fallback);
  if (v > 0xffffffffull) {
    throw std::invalid_argument("value for '" + key + "' out of range");
  }
  return static_cast<std::uint32_t>(v);
}

double field_double(const Message& m, const std::string& key,
                    double fallback) {
  const std::string v = m.get(key);
  if (v.empty()) return fallback;
  std::size_t used = 0;
  const double parsed = std::stod(v, &used);
  if (used != v.size()) {
    throw std::invalid_argument("bad value for '" + key + "': " + v);
  }
  return parsed;
}

bool field_bool(const Message& m, const std::string& key, bool fallback) {
  const std::string v = m.get(key);
  if (v.empty()) return fallback;
  if (v == "1" || v == "true") return true;
  if (v == "0" || v == "false") return false;
  throw std::invalid_argument("bad boolean for '" + key + "': " + v);
}

/// The shared execution fields, with the CLI's exact semantics and
/// defaults: partitions (1), range-partition (hash), transport
/// local|process|pool (processes=N alone implies process), adaptive (on),
/// sampled-frontier (off), algorithm delta|rho (delta).
void apply_exec_fields(const Message& m, exec::ExecOptions& opt) {
  opt.partition.num_partitions = field_u32(m, "partitions", 1);
  if (opt.partition.num_partitions == 0) {
    throw std::invalid_argument("partitions must be >= 1");
  }
  opt.partition.strategy = field_bool(m, "range-partition", false)
                               ? mr::PartitionStrategy::kRange
                               : mr::PartitionStrategy::kHash;
  const std::string kind = m.get("transport");
  if (!kind.empty() && kind != "local" && kind != "process" &&
      kind != "pool") {
    throw std::invalid_argument("transport must be local, process or pool");
  }
  if (kind == "process" || kind == "pool" || (kind.empty() && m.has("processes"))) {
    opt.transport.kind = kind == "pool" ? mr::TransportKind::kPool
                                        : mr::TransportKind::kProcess;
    opt.transport.processes = field_u32(m, "processes", 2);
    if (opt.transport.processes == 0) {
      throw std::invalid_argument("processes must be >= 1");
    }
    if (opt.partition.num_partitions <= 1) {
      throw std::invalid_argument(
          "transport=process/pool requires partitions > 1");
    }
  }
  opt.frontier.adaptive = field_bool(m, "adaptive", true);
  opt.frontier.sampled_size_estimate = field_bool(m, "sampled-frontier", false);
  const std::string algo = m.get("algorithm");
  if (!algo.empty() && algo != "delta" && algo != "rho") {
    throw std::invalid_argument("algorithm must be delta or rho");
  }
  if (algo == "rho") opt.algorithm = exec::Algorithm::kRhoStepping;
}

bool deadline_expired(
    const std::chrono::steady_clock::time_point& deadline) noexcept {
  return deadline != std::chrono::steady_clock::time_point::max() &&
         std::chrono::steady_clock::now() >= deadline;
}

}  // namespace

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
  if (opts_.worker_threads == 0) opts_.worker_threads = 1;
  if (opts_.max_batch == 0) opts_.max_batch = 1;
  if (opts_.max_queue == 0) opts_.max_queue = 1;
}

Server::~Server() {
  try {
    stop();
  } catch (...) {  // a dtor must not throw; stop() is best-effort here
  }
}

void Server::start() {
  if (running_.load()) throw std::logic_error("server already started");
  listen_fd_ = net::listen_unix(opts_.socket_path, /*backlog=*/64);
  running_.store(true);
  stopping_.store(false);
  accept_thread_ = std::thread([this] { accept_loop(); });
  workers_.reserve(opts_.worker_threads);
  for (std::uint32_t i = 0; i < opts_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Server::request_stop() {
  if (stopping_.exchange(true)) return;
  // Wake the accept thread (close the listener) and every reader (shut the
  // read side; in-flight responses still go out on the write side).
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    const std::lock_guard<std::mutex> lk(conns_mu_);
    for (const auto& c : conns_) {
      if (c->fd >= 0) ::shutdown(c->fd, SHUT_RD);
    }
  }
  qcv_.notify_all();
  stop_cv_.notify_all();
}

void Server::wait() {
  std::unique_lock<std::mutex> lk(stop_mu_);
  stop_cv_.wait(lk, [this] { return stopping_.load(); });
}

void Server::stop() {
  if (!running_.load()) return;
  request_stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  for (auto& r : readers_) {
    if (r.joinable()) r.join();
  }
  workers_.clear();
  readers_.clear();
  {
    const std::lock_guard<std::mutex> lk(conns_mu_);
    for (const auto& c : conns_) {
      if (c->fd >= 0) ::close(c->fd);
      c->fd = -1;
    }
    conns_.clear();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(opts_.socket_path.c_str());
  running_.store(false);
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      break;  // listener broken: no way to serve further clients
    }
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    // Fault point: an errno drops this connection at the door (accept-layer
    // chaos); a delay stalls admission without holding any lock.
    if (util::fault::check("serve.accept").fail) {
      ::close(fd);
      continue;
    }
    if (opts_.sndbuf_bytes > 0) {
      const int v = static_cast<int>(opts_.sndbuf_bytes);
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &v, sizeof v);
    }
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      const std::lock_guard<std::mutex> lk(conns_mu_);
      conns_.push_back(conn);
    }
    readers_.emplace_back([this, conn] { reader_loop(conn); });
  }
}

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  Message req;
  while (!stopping_.load()) {
    try {
      if (!read_message(conn->fd, req)) break;  // client hung up
    } catch (const FrameError& e) {
      // Oversized length prefix: the stream is desynced — whatever follows
      // is not at a frame boundary. Answer once, then hang up.
      send_error(*conn, Message{}, kErrBadRequest, e.what());
      break;
    } catch (const std::invalid_argument& e) {
      // Malformed payload inside a well-framed message: the stream is
      // still at a frame boundary, so the connection stays usable.
      send_error(*conn, Message{}, kErrBadRequest, e.what());
      continue;
    } catch (const std::exception&) {
      break;  // torn frame or dead socket: nothing sane to answer onto
    }
    // Control verbs are answered inline: they must respond even when every
    // worker is pinned under a long estimate.
    if (req.head == "stats") {
      Message resp = handle_stats();
      if (req.has("id")) resp.set("id", req.get("id"));
      send_response(*conn, resp);
      continue;
    }
    if (req.head == "fault") {
      Message resp = handle_fault(req);
      if (req.has("id")) resp.set("id", req.get("id"));
      send_response(*conn, resp);
      continue;
    }
    if (req.head == "shutdown") {
      Message resp;
      resp.head = "ok";
      if (req.has("id")) resp.set("id", req.get("id"));
      send_response(*conn, resp);
      request_stop();
      continue;  // the shutdown also shut our read side: next read EOFs
    }
    const std::string graph = req.get("graph");
    if (req.head != "estimate" && req.head != "sssp" && req.head != "load") {
      send_error(*conn, req, kErrBadRequest,
                 "unknown verb '" + req.head + "'");
      continue;
    }
    if (graph.empty()) {
      send_error(*conn, req, kErrBadRequest,
                 req.head + " requires a graph= field");
      continue;
    }
    Request r{conn, Message{}, graph};
    try {
      const std::uint64_t dl = field_u64(req, "deadline_ms", 0);
      if (dl != 0) {
        r.deadline =
            std::chrono::steady_clock::now() + std::chrono::milliseconds(dl);
      }
    } catch (const std::exception& e) {
      send_error(*conn, req, kErrBadRequest, e.what());
      continue;
    }
    if (stopping_.load()) {
      send_error(*conn, req, kErrShuttingDown, "daemon is shutting down");
      break;
    }
    // Admission control: past max_queue the request is shed here, with an
    // immediate typed error, instead of queueing without bound — a deep
    // queue only converts overload into deadline misses.
    bool accepted = false;
    {
      const std::lock_guard<std::mutex> lk(qmu_);
      if (queue_.size() < opts_.max_queue) {
        r.msg = std::move(req);
        queue_.push_back(std::move(r));
        accepted = true;
      }
    }
    if (!accepted) {
      stats_.shed.fetch_add(1, std::memory_order_relaxed);
      send_error(*conn, req, kErrOverloaded, "request queue is full");
      continue;
    }
    stats_.requests.fetch_add(1, std::memory_order_relaxed);
    qcv_.notify_one();
    req = Message{};
  }
  // A reader exits mid-run only because this connection is done (client hung
  // up, desynced stream, dead socket): EOF the peer now, or a client blocked
  // on read_message after a `bad_request` answer would wait until stop() for
  // the close. The fd itself stays open until stop() so late worker responses
  // hit EPIPE rather than a reused descriptor. During a stop, leave the write
  // side up — drain errors for still-queued requests go out on it.
  if (!stopping_.load()) ::shutdown(conn->fd, SHUT_RDWR);
}

void Server::worker_loop() {
  while (true) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lk(qmu_);
      qcv_.wait(lk, [this] { return stopping_.load() || !queue_.empty(); });
      if (stopping_.load()) {
        // Graceful drain: in-flight batches (already popped, running on
        // other workers) finish normally; everything still queued gets a
        // typed `shutting_down` error, never a silent drop.
        std::deque<Request> drained;
        drained.swap(queue_);
        lk.unlock();
        for (Request& r : drained) {
          send_error(*r.conn, r.msg, kErrShuttingDown,
                     "daemon is shutting down");
        }
        return;
      }
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      // The batcher: pull every pending same-graph request (arrival order
      // preserved — erase keeps the relative order of the rest).
      for (auto it = queue_.begin();
           it != queue_.end() && batch.size() < opts_.max_batch;) {
        if (it->graph == batch.front().graph) {
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
    }
    // Fault point: a delay here stretches queue residency (the deadline and
    // shedding tests lean on it); an errno is ignored — dequeue cannot fail.
    util::fault::check("serve.dequeue");
    stats_.batches.fetch_add(1, std::memory_order_relaxed);
    stats_.batched_requests.fetch_add(batch.size() - 1,
                                      std::memory_order_relaxed);
    serve_batch(batch);
  }
}

void Server::serve_batch(std::vector<Request>& batch) {
  GraphStore::Entry* entry = nullptr;
  try {
    entry = &store_.get(batch.front().graph);
  } catch (const std::invalid_argument& e) {
    for (Request& r : batch) {
      send_error(*r.conn, r.msg, kErrBadRequest, e.what());
    }
    return;
  } catch (const std::exception& e) {
    for (Request& r : batch) {
      send_error(*r.conn, r.msg, kErrInternal, e.what());
    }
    return;
  }
  // One lock acquisition for the whole batch: every request in it computes
  // on the same warm context, back to back.
  const std::lock_guard<std::mutex> lk(entry->mu);
  for (Request& r : batch) {
    // Deadline re-check before each item: a long head query may have eaten
    // the whole budget of the requests batched behind it.
    if (deadline_expired(r.deadline)) {
      stats_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      send_error(*r.conn, r.msg, kErrDeadlineExceeded,
                 "deadline_ms expired before service");
      continue;
    }
    Message resp;
    try {
      resp = handle_query(*entry, r.msg, /*force_local=*/false);
    } catch (const mr::TransportError& e) {
      // Degradation ladder (DESIGN.md §12): the remote transport is
      // terminally gone — e.g. a pool group past its restart budget. The
      // transport parity contract makes a LocalTransport re-execution
      // bit-identical, so retry there instead of failing the client; only
      // the stats (and a degraded=1 field) betray the fallback.
      if (opts_.degrade_to_local) {
        try {
          resp = handle_query(*entry, r.msg, /*force_local=*/true);
          resp.set("degraded", "1");
          stats_.degraded.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception& e2) {
          resp = error_response(kErrInternal, e2.what());
        }
      } else {
        resp = error_response(kErrInternal, e.what());
      }
    } catch (const std::invalid_argument& e) {
      resp = error_response(kErrBadRequest, e.what());
    } catch (const std::exception& e) {
      resp = error_response(kErrInternal, e.what());
    }
    if (r.msg.has("id")) resp.set("id", r.msg.get("id"));
    send_response(*r.conn, resp);
  }
}

Message Server::handle_query(GraphStore::Entry& entry, const Message& req,
                             bool force_local) {
  Message resp;
  resp.head = "ok";
  const Graph& g = entry.graph;
  if (req.head == "load") {
    resp.set("nodes", std::to_string(g.num_nodes()));
    resp.set("edges", std::to_string(g.num_edges()));
    return resp;
  }
  entry.served.fetch_add(1, std::memory_order_relaxed);
  if (req.head == "estimate") {
    core::DiameterApproxOptions opt;
    opt.cluster.tau = field_u32(
        req, "tau",
        core::tau_for_cluster_target(g.num_nodes(), g.num_nodes() / 4));
    opt.cluster.seed = field_u64(req, "seed", 1);
    opt.use_cluster2 = field_bool(req, "cluster2", false);
    opt.radius_aware = !field_bool(req, "classic", false);
    apply_exec_fields(req, opt.cluster);
    if (force_local) opt.cluster.transport = {};
    if (opt.cluster.partition.num_partitions > 1) {
      opt.cluster.policy = core::GrowingPolicy::kPartitioned;
    }
    const core::DiameterApproxResult r =
        core::approximate_diameter(g, opt, &entry.ctx);
    resp.body = render_estimate(r, opt.cluster.tau);
    return resp;
  }
  if (req.head == "sssp") {
    sssp::DeltaSteppingOptions opt;
    opt.delta = field_double(req, "delta", 0.0);
    opt.rho = field_u64(req, "rho", 0);
    apply_exec_fields(req, opt);
    if (force_local) opt.transport = {};
    const auto source = field_u32(req, "source", 0);
    if (source >= g.num_nodes()) {
      throw std::invalid_argument("source " + std::to_string(source) +
                                  " out of range (n=" +
                                  std::to_string(g.num_nodes()) + ")");
    }
    const sssp::DeltaSteppingResult r =
        sssp::shortest_paths(g, source, opt, &entry.ctx);
    resp.body = render_sssp(source, r);
    return resp;
  }
  throw std::invalid_argument("unknown verb '" + req.head + "'");
}

Message Server::handle_stats() {
  Message resp;
  resp.head = "ok";
  resp.set("connections", std::to_string(stats_.connections.load()));
  resp.set("requests", std::to_string(stats_.requests.load()));
  resp.set("errors", std::to_string(stats_.errors.load()));
  resp.set("batches", std::to_string(stats_.batches.load()));
  resp.set("batched", std::to_string(stats_.batched_requests.load()));
  resp.set("shed", std::to_string(stats_.shed.load()));
  resp.set("deadline_exceeded",
           std::to_string(stats_.deadline_exceeded.load()));
  resp.set("degraded", std::to_string(stats_.degraded.load()));
  resp.set("disconnected_slow",
           std::to_string(stats_.disconnected_slow.load()));
  std::string body;
  for (const GraphStore::Snapshot& s : store_.snapshot()) {
    body += s.spec + "  n=" + std::to_string(s.nodes) +
            " m=" + std::to_string(s.edges) +
            " served=" + std::to_string(s.served) + "\n";
  }
  resp.set("graphs", std::to_string(store_.size()));
  resp.body = std::move(body);
  return resp;
}

Message Server::handle_fault(const Message& req) {
  // The chaos harness's control verb: `spec=` arms a fault schedule in the
  // daemon process (same grammar as GDIAM_FAULTS), `clear=1` disarms, and
  // either way the response body carries the live schedule with hit/fired
  // counters so tests can assert that arming took.
  try {
    if (field_bool(req, "clear", false)) util::fault::disarm();
    const std::string spec = req.get("spec");
    if (!spec.empty()) util::fault::arm(spec);
  } catch (const std::exception& e) {
    return error_response(kErrBadRequest, e.what());
  }
  Message resp;
  resp.head = "ok";
  resp.set("armed", util::fault::armed() ? "1" : "0");
  resp.body = util::fault::describe();
  return resp;
}

Message Server::error_response(const std::string& code,
                               const std::string& message) {
  Message resp;
  resp.head = "error";
  resp.set("code", code);
  resp.set("message", message);
  stats_.errors.fetch_add(1, std::memory_order_relaxed);
  return resp;
}

void Server::send_error(Connection& conn, const Message& req,
                        const std::string& code, const std::string& message) {
  Message resp = error_response(code, message);
  if (req.has("id")) resp.set("id", req.get("id"));
  send_response(conn, resp);
}

void Server::send_response(Connection& conn, const Message& resp) {
  const std::lock_guard<std::mutex> lk(conn.write_mu);
  try {
    write_message(conn.fd, resp, static_cast<int>(opts_.write_timeout_ms));
  } catch (const WriteTimeout&) {
    // The client stopped draining its responses (the slow-reader case):
    // count it, then hang up — a wedged write would otherwise pin a worker
    // thread on one stalled peer forever.
    stats_.disconnected_slow.fetch_add(1, std::memory_order_relaxed);
    ::shutdown(conn.fd, SHUT_RDWR);
  } catch (const std::exception&) {
    // A serving daemon never dies because one response write failed — but
    // the connection does: a failed write may have put *part* of a frame on
    // the wire, and a client blocked mid-frame on a stream the server will
    // never finish is a hang, not an error it can see.
    ::shutdown(conn.fd, SHUT_RDWR);
  }
}

}  // namespace gdiam::serve
