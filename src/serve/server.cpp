#include "serve/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/cluster.hpp"
#include "core/diameter.hpp"
#include "serve/render.hpp"
#include "sssp/rho_stepping.hpp"
#include "util/net.hpp"

namespace gdiam::serve {

namespace net = gdiam::util::net;

namespace {

std::uint64_t field_u64(const Message& m, const std::string& key,
                        std::uint64_t fallback) {
  const std::string v = m.get(key);
  if (v.empty()) return fallback;
  std::size_t used = 0;
  const unsigned long long parsed = std::stoull(v, &used);
  if (used != v.size()) {
    throw std::invalid_argument("bad value for '" + key + "': " + v);
  }
  return parsed;
}

std::uint32_t field_u32(const Message& m, const std::string& key,
                        std::uint32_t fallback) {
  const std::uint64_t v = field_u64(m, key, fallback);
  if (v > 0xffffffffull) {
    throw std::invalid_argument("value for '" + key + "' out of range");
  }
  return static_cast<std::uint32_t>(v);
}

double field_double(const Message& m, const std::string& key,
                    double fallback) {
  const std::string v = m.get(key);
  if (v.empty()) return fallback;
  std::size_t used = 0;
  const double parsed = std::stod(v, &used);
  if (used != v.size()) {
    throw std::invalid_argument("bad value for '" + key + "': " + v);
  }
  return parsed;
}

bool field_bool(const Message& m, const std::string& key, bool fallback) {
  const std::string v = m.get(key);
  if (v.empty()) return fallback;
  if (v == "1" || v == "true") return true;
  if (v == "0" || v == "false") return false;
  throw std::invalid_argument("bad boolean for '" + key + "': " + v);
}

/// The shared execution fields, with the CLI's exact semantics and
/// defaults: partitions (1), range-partition (hash), transport
/// local|process|pool (processes=N alone implies process), adaptive (on),
/// sampled-frontier (off), algorithm delta|rho (delta).
void apply_exec_fields(const Message& m, exec::ExecOptions& opt) {
  opt.partition.num_partitions = field_u32(m, "partitions", 1);
  if (opt.partition.num_partitions == 0) {
    throw std::invalid_argument("partitions must be >= 1");
  }
  opt.partition.strategy = field_bool(m, "range-partition", false)
                               ? mr::PartitionStrategy::kRange
                               : mr::PartitionStrategy::kHash;
  const std::string kind = m.get("transport");
  if (!kind.empty() && kind != "local" && kind != "process" &&
      kind != "pool") {
    throw std::invalid_argument("transport must be local, process or pool");
  }
  if (kind == "process" || kind == "pool" || (kind.empty() && m.has("processes"))) {
    opt.transport.kind = kind == "pool" ? mr::TransportKind::kPool
                                        : mr::TransportKind::kProcess;
    opt.transport.processes = field_u32(m, "processes", 2);
    if (opt.transport.processes == 0) {
      throw std::invalid_argument("processes must be >= 1");
    }
    if (opt.partition.num_partitions <= 1) {
      throw std::invalid_argument(
          "transport=process/pool requires partitions > 1");
    }
  }
  opt.frontier.adaptive = field_bool(m, "adaptive", true);
  opt.frontier.sampled_size_estimate = field_bool(m, "sampled-frontier", false);
  const std::string algo = m.get("algorithm");
  if (!algo.empty() && algo != "delta" && algo != "rho") {
    throw std::invalid_argument("algorithm must be delta or rho");
  }
  if (algo == "rho") opt.algorithm = exec::Algorithm::kRhoStepping;
}

}  // namespace

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
  if (opts_.worker_threads == 0) opts_.worker_threads = 1;
  if (opts_.max_batch == 0) opts_.max_batch = 1;
}

Server::~Server() {
  try {
    stop();
  } catch (...) {  // a dtor must not throw; stop() is best-effort here
  }
}

void Server::start() {
  if (running_.load()) throw std::logic_error("server already started");
  listen_fd_ = net::listen_unix(opts_.socket_path, /*backlog=*/64);
  running_.store(true);
  stopping_.store(false);
  accept_thread_ = std::thread([this] { accept_loop(); });
  workers_.reserve(opts_.worker_threads);
  for (std::uint32_t i = 0; i < opts_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Server::request_stop() {
  if (stopping_.exchange(true)) return;
  // Wake the accept thread (close the listener) and every reader (shut the
  // read side; in-flight responses still go out on the write side).
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    const std::lock_guard<std::mutex> lk(conns_mu_);
    for (const auto& c : conns_) {
      if (c->fd >= 0) ::shutdown(c->fd, SHUT_RD);
    }
  }
  qcv_.notify_all();
  stop_cv_.notify_all();
}

void Server::wait() {
  std::unique_lock<std::mutex> lk(stop_mu_);
  stop_cv_.wait(lk, [this] { return stopping_.load(); });
}

void Server::stop() {
  if (!running_.load()) return;
  request_stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  for (auto& r : readers_) {
    if (r.joinable()) r.join();
  }
  workers_.clear();
  readers_.clear();
  {
    const std::lock_guard<std::mutex> lk(conns_mu_);
    for (const auto& c : conns_) {
      if (c->fd >= 0) ::close(c->fd);
      c->fd = -1;
    }
    conns_.clear();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(opts_.socket_path.c_str());
  running_.store(false);
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      break;  // listener broken: no way to serve further clients
    }
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      const std::lock_guard<std::mutex> lk(conns_mu_);
      conns_.push_back(conn);
    }
    readers_.emplace_back([this, conn] { reader_loop(conn); });
  }
}

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  Message req;
  while (!stopping_.load()) {
    try {
      if (!read_message(conn->fd, req)) break;  // client hung up
    } catch (const std::exception&) {
      break;  // torn frame or dead socket: nothing sane to answer onto
    }
    // Control verbs are answered inline: they must respond even when every
    // worker is pinned under a long estimate.
    if (req.head == "stats") {
      Message resp = handle_stats();
      if (req.has("id")) resp.set("id", req.get("id"));
      send_response(*conn, resp);
      continue;
    }
    if (req.head == "shutdown") {
      Message resp;
      resp.head = "ok";
      if (req.has("id")) resp.set("id", req.get("id"));
      send_response(*conn, resp);
      request_stop();
      continue;  // the shutdown also shut our read side: next read EOFs
    }
    const std::string graph = req.get("graph");
    if (req.head != "estimate" && req.head != "sssp" && req.head != "load") {
      Message resp;
      resp.head = "error";
      resp.set("message", "unknown verb '" + req.head + "'");
      if (req.has("id")) resp.set("id", req.get("id"));
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      send_response(*conn, resp);
      continue;
    }
    if (graph.empty()) {
      Message resp;
      resp.head = "error";
      resp.set("message", req.head + " requires a graph= field");
      if (req.has("id")) resp.set("id", req.get("id"));
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      send_response(*conn, resp);
      continue;
    }
    stats_.requests.fetch_add(1, std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> lk(qmu_);
      queue_.push_back(Request{conn, std::move(req), graph});
    }
    qcv_.notify_one();
    req = Message{};
  }
}

void Server::worker_loop() {
  while (true) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lk(qmu_);
      qcv_.wait(lk, [this] { return stopping_.load() || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      // The batcher: pull every pending same-graph request (arrival order
      // preserved — erase keeps the relative order of the rest).
      for (auto it = queue_.begin();
           it != queue_.end() && batch.size() < opts_.max_batch;) {
        if (it->graph == batch.front().graph) {
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
    }
    stats_.batches.fetch_add(1, std::memory_order_relaxed);
    stats_.batched_requests.fetch_add(batch.size() - 1,
                                      std::memory_order_relaxed);
    serve_batch(batch);
  }
}

void Server::serve_batch(std::vector<Request>& batch) {
  GraphStore::Entry* entry = nullptr;
  try {
    entry = &store_.get(batch.front().graph);
  } catch (const std::exception& e) {
    for (Request& r : batch) {
      Message resp;
      resp.head = "error";
      resp.set("message", e.what());
      if (r.msg.has("id")) resp.set("id", r.msg.get("id"));
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      send_response(*r.conn, resp);
    }
    return;
  }
  // One lock acquisition for the whole batch: every request in it computes
  // on the same warm context, back to back.
  const std::lock_guard<std::mutex> lk(entry->mu);
  for (Request& r : batch) {
    Message resp;
    try {
      resp = handle_query(*entry, r.msg);
    } catch (const std::exception& e) {
      resp = Message{};
      resp.head = "error";
      resp.set("message", e.what());
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
    }
    if (r.msg.has("id")) resp.set("id", r.msg.get("id"));
    send_response(*r.conn, resp);
  }
}

Message Server::handle_query(GraphStore::Entry& entry, const Message& req) {
  Message resp;
  resp.head = "ok";
  const Graph& g = entry.graph;
  if (req.head == "load") {
    resp.set("nodes", std::to_string(g.num_nodes()));
    resp.set("edges", std::to_string(g.num_edges()));
    return resp;
  }
  entry.served.fetch_add(1, std::memory_order_relaxed);
  if (req.head == "estimate") {
    core::DiameterApproxOptions opt;
    opt.cluster.tau = field_u32(
        req, "tau",
        core::tau_for_cluster_target(g.num_nodes(), g.num_nodes() / 4));
    opt.cluster.seed = field_u64(req, "seed", 1);
    opt.use_cluster2 = field_bool(req, "cluster2", false);
    opt.radius_aware = !field_bool(req, "classic", false);
    apply_exec_fields(req, opt.cluster);
    if (opt.cluster.partition.num_partitions > 1) {
      opt.cluster.policy = core::GrowingPolicy::kPartitioned;
    }
    const core::DiameterApproxResult r =
        core::approximate_diameter(g, opt, &entry.ctx);
    resp.body = render_estimate(r, opt.cluster.tau);
    return resp;
  }
  if (req.head == "sssp") {
    sssp::DeltaSteppingOptions opt;
    opt.delta = field_double(req, "delta", 0.0);
    opt.rho = field_u64(req, "rho", 0);
    apply_exec_fields(req, opt);
    const auto source = field_u32(req, "source", 0);
    if (source >= g.num_nodes()) {
      throw std::invalid_argument("source " + std::to_string(source) +
                                  " out of range (n=" +
                                  std::to_string(g.num_nodes()) + ")");
    }
    const sssp::DeltaSteppingResult r =
        sssp::shortest_paths(g, source, opt, &entry.ctx);
    resp.body = render_sssp(source, r);
    return resp;
  }
  throw std::invalid_argument("unknown verb '" + req.head + "'");
}

Message Server::handle_stats() {
  Message resp;
  resp.head = "ok";
  resp.set("connections", std::to_string(stats_.connections.load()));
  resp.set("requests", std::to_string(stats_.requests.load()));
  resp.set("errors", std::to_string(stats_.errors.load()));
  resp.set("batches", std::to_string(stats_.batches.load()));
  resp.set("batched", std::to_string(stats_.batched_requests.load()));
  std::string body;
  for (const GraphStore::Snapshot& s : store_.snapshot()) {
    body += s.spec + "  n=" + std::to_string(s.nodes) +
            " m=" + std::to_string(s.edges) +
            " served=" + std::to_string(s.served) + "\n";
  }
  resp.set("graphs", std::to_string(store_.size()));
  resp.body = std::move(body);
  return resp;
}

void Server::send_response(Connection& conn, const Message& resp) {
  const std::lock_guard<std::mutex> lk(conn.write_mu);
  try {
    write_message(conn.fd, resp);
  } catch (const std::exception&) {
    // Client is gone; its reader will notice on the next read. A serving
    // daemon never dies because one client hung up mid-response.
  }
}

}  // namespace gdiam::serve
