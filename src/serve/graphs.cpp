#include "serve/graphs.hpp"

#include <cstdint>
#include <stdexcept>
#include <utility>

#include "gen/basic.hpp"
#include "gen/mesh.hpp"
#include "gen/rmat.hpp"
#include "gen/road.hpp"
#include "gen/weights.hpp"
#include "graph/binfmt.hpp"
#include "graph/io.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace gdiam::serve {
namespace {

/// "gen:mesh:side=64:weights=uniform" -> {"mesh", {side: "64", ...}}.
struct GenSpec {
  std::string family;
  std::map<std::string, std::string> params;

  [[nodiscard]] std::string str(const std::string& key,
                                const std::string& fallback) const {
    const auto it = params.find(key);
    return it != params.end() ? it->second : fallback;
  }
  [[nodiscard]] std::uint64_t num(const std::string& key,
                                  std::uint64_t fallback) const {
    const auto it = params.find(key);
    if (it == params.end()) return fallback;
    std::size_t used = 0;
    const unsigned long long v = std::stoull(it->second, &used);
    if (used != it->second.size()) {
      throw std::invalid_argument("graph spec: bad number for '" + key +
                                  "': " + it->second);
    }
    return v;
  }
};

GenSpec parse_gen(const std::string& spec) {
  GenSpec out;
  std::size_t pos = 4;  // past "gen:"
  while (pos <= spec.size()) {
    const std::size_t sep = spec.find(':', pos);
    const std::size_t end = sep == std::string::npos ? spec.size() : sep;
    const std::string part = spec.substr(pos, end - pos);
    if (part.empty()) throw std::invalid_argument("graph spec: empty segment");
    if (out.family.empty()) {
      out.family = part;
    } else {
      const std::size_t eq = part.find('=');
      if (eq == std::string::npos) {
        throw std::invalid_argument("graph spec: expected key=value, got '" +
                                    part + "'");
      }
      out.params[part.substr(0, eq)] = part.substr(eq + 1);
    }
    if (sep == std::string::npos) break;
    pos = sep + 1;
  }
  if (out.family.empty()) {
    throw std::invalid_argument("graph spec: missing family after gen:");
  }
  return out;
}

Graph load_file(const std::string& path) {
  if (path.ends_with(".gr")) return io::read_dimacs_file(path);
  if (path.ends_with(".bin")) return io::read_binary_file(path);
  // Zero-copy mmap ingest; the returned Graph shares (and keeps alive) the
  // mapping. GraphStore::get() adopts any persisted presplit sidecars into
  // the entry's context after the graph lands in its final slot.
  if (path.ends_with(".gcsr")) return io::open_mmap(path).graph();
  return io::read_edge_list_file(path);
}

}  // namespace

Graph make_graph(const std::string& spec) {
  if (spec.starts_with("file:")) return load_file(spec.substr(5));
  if (!spec.starts_with("gen:")) return load_file(spec);

  const GenSpec gs = parse_gen(spec);
  const std::uint64_t seed = gs.num("seed", 1);
  util::Xoshiro256 rng(seed);
  Graph g;
  if (gs.family == "mesh") {
    g = gen::mesh(static_cast<NodeId>(gs.num("side", 256)));
  } else if (gs.family == "torus") {
    g = gen::torus(static_cast<NodeId>(gs.num("side", 256)));
  } else if (gs.family == "rmat") {
    g = gen::rmat(static_cast<unsigned>(gs.num("scale", 16)),
                  static_cast<EdgeIndex>(gs.num("edge-factor", 16)), rng);
  } else if (gs.family == "road") {
    const auto side = static_cast<NodeId>(gs.num("side", 256));
    g = gen::road_network(side, side, rng);
  } else if (gs.family == "gnm") {
    g = gen::gnm(static_cast<NodeId>(gs.num("nodes", 10000)),
                 static_cast<EdgeIndex>(gs.num("edges", 30000)), rng,
                 /*ensure_connected=*/true);
  } else if (gs.family == "path") {
    g = gen::path(static_cast<NodeId>(gs.num("nodes", 10000)));
  } else {
    throw std::invalid_argument("graph spec: unknown family '" + gs.family +
                                "'");
  }

  // Same weight kinds and seed derivation as `gdiam generate`, so a gen:
  // spec reproduces a generated file bit for bit.
  const std::string weights = gs.str("weights", "keep");
  const std::uint64_t wseed = seed ^ 0xabcd;
  if (weights == "keep") return g;
  if (weights == "unit") return gen::unit_weights(g);
  if (weights == "uniform") return gen::uniform_weights(g, wseed);
  if (weights == "int") return gen::uniform_int_weights(g, 1, 1000, wseed);
  if (weights == "bimodal") {
    return gen::bimodal_weights(g, 1.0, 1e-6, 0.1, wseed);
  }
  throw std::invalid_argument("graph spec: unknown weights '" + weights + "'");
}

GraphStore::Entry& GraphStore::get(const std::string& spec) {
  Entry* e = nullptr;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    auto& slot = entries_[spec];
    if (slot == nullptr) {
      slot = std::make_unique<Entry>();
      slot->spec = spec;
    }
    e = slot.get();
  }
  // Load outside the store lock: a cold road network must not stall queries
  // on other (hot) graphs. Racing loaders of one spec serialize on the
  // entry's own mutex; losers find `loaded` set and return immediately.
  const std::lock_guard<std::mutex> elk(e->mu);
  if (!e->loaded) {
    // Fault point: a transient load failure (I/O error on a graph file,
    // allocation pressure) — the entry stays retryable, so the *next*
    // request for this spec loads cleanly.
    if (util::fault::check("serve.load").fail) {
      throw std::runtime_error("serve: graph load failed: " + spec);
    }
    e->graph = make_graph(spec);  // a throw leaves the entry retryable
    e->loaded = true;
    // Cold-start warming: a .gcsr graph carries its presplit layouts; adopt
    // them into the entry's context now that the graph sits at its final
    // address (the split cache keys on it). All-or-nothing inside.
    if (const auto m = io::mapped_view(e->graph)) {
      e->ctx.adopt_presplits(e->graph, *m);
    }
    const std::lock_guard<std::mutex> lk(mu_);
    order_.push_back(e);
  }
  return *e;
}

std::vector<GraphStore::Snapshot> GraphStore::snapshot() {
  std::vector<Entry*> loaded;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    loaded = order_;
  }
  std::vector<Snapshot> out;
  out.reserve(loaded.size());
  for (Entry* e : loaded) {
    // graph is immutable once the entry reached order_; served is a racy
    // monotonic counter by contract.
    out.push_back({e->spec, e->graph.num_nodes(), e->graph.num_edges(),
                   e->served.load(std::memory_order_relaxed)});
  }
  return out;
}

std::size_t GraphStore::size() {
  const std::lock_guard<std::mutex> lk(mu_);
  return order_.size();
}

}  // namespace gdiam::serve
