#pragma once
// gdiamd wire protocol (DESIGN.md §10).
//
// Requests and responses are length-prefixed text frames over an AF_UNIX
// stream socket:
//
//   [u32 length][payload]
//
// with the payload a plain-text message:
//
//   <head>\n            — request verb ("estimate", "sssp", "load", "stats",
//                         "shutdown") or response status ("ok", "error")
//   <key>=<value>\n ... — zero or more header fields, one per line
//   \n                  — blank separator (only when a body follows)
//   <body>              — free-form text, verbatim to the end of the frame
//
// Text because the payloads *are* text — the response body of an estimate
// request is byte-for-byte the block the one-shot CLI prints, which is what
// makes the CI smoke's daemon-vs-CLI diff trivial — and length-prefixed
// because framing by delimiter would forbid bodies containing blank lines.
// Field order is preserved (requests echo readably in logs), values must
// not contain newlines, and a client-supplied `id` field is echoed verbatim
// in the response so clients may pipeline requests on one connection.
//
// The u32 length is host-endian: both ends of an AF_UNIX socket are the
// same machine by construction. Frames above kMaxFrame are rejected before
// allocation — a garbage length must not look like a 4 GiB message.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace gdiam::serve {

/// Frames larger than this are a protocol error (the largest legitimate
/// payload — a stats body enumerating every hot graph — is a few KiB).
/// read_message rejects the length *before* allocating: a garbage or
/// hostile length prefix must not become a multi-GiB allocation.
inline constexpr std::uint32_t kMaxFrame = 1u << 20;

/// Thrown by read_message on an oversized length prefix. Distinct from
/// plain std::invalid_argument (a malformed payload in a well-framed
/// message) because the stream is now desynced: the server answers
/// `bad_request` and must then close the connection, whereas a decode
/// error leaves the stream at a frame boundary and the connection usable.
class FrameError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown by write_message when `timeout_ms` expires against a full socket
/// buffer — a stalled reader, not a dead one. Typed (rather than left to an
/// errno check after the throw) because the server must count and disconnect
/// these specifically, and errno is not reliable across unwinding.
class WriteTimeout : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Error-code values carried in the `code` field of `error` responses, so
/// clients can react without parsing prose (`message` stays human-facing):
///   bad_request       — malformed frame/field/verb/argument
///   overloaded        — request queue full; load was shed at admission
///   deadline_exceeded — the client's deadline_ms expired before service
///   shutting_down     — daemon is draining; request was not served
///   internal          — server-side failure (load error, compute throw)
inline constexpr const char* kErrBadRequest = "bad_request";
inline constexpr const char* kErrOverloaded = "overloaded";
inline constexpr const char* kErrDeadlineExceeded = "deadline_exceeded";
inline constexpr const char* kErrShuttingDown = "shutting_down";
inline constexpr const char* kErrInternal = "internal";

/// One decoded protocol message; see the header comment for the layout.
struct Message {
  std::string head;
  std::vector<std::pair<std::string, std::string>> fields;
  std::string body;

  /// Last value for `key`, or `fallback` when absent (last wins, so a
  /// client can override a templated request by appending).
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const;
  [[nodiscard]] bool has(const std::string& key) const;
  void set(std::string key, std::string value);
};

/// Message -> payload text (no length prefix).
[[nodiscard]] std::string encode(const Message& m);

/// Payload text -> Message; throws std::invalid_argument on a field line
/// without '='.
[[nodiscard]] Message decode(const std::string& payload);

/// Reads one frame. Returns false on clean EOF at a frame boundary; throws
/// on truncated frames, oversized lengths, or socket errors.
bool read_message(int fd, Message& out);

/// Writes one frame (EINTR-safe, SIGPIPE-proof via util/net.hpp); throws on
/// socket errors and on oversized payloads. `timeout_ms` > 0 bounds how
/// long a full socket buffer (a stalled reader) may block the write
/// (throws WriteTimeout on expiry); <= 0 blocks indefinitely.
void write_message(int fd, const Message& m, int timeout_ms = 0);

}  // namespace gdiam::serve
