#include "serve/protocol.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/net.hpp"

namespace gdiam::serve {

namespace net = gdiam::util::net;

std::string Message::get(const std::string& key,
                         const std::string& fallback) const {
  const std::string* found = nullptr;
  for (const auto& [k, v] : fields) {
    if (k == key) found = &v;
  }
  return found != nullptr ? *found : fallback;
}

bool Message::has(const std::string& key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return true;
  }
  return false;
}

void Message::set(std::string key, std::string value) {
  fields.emplace_back(std::move(key), std::move(value));
}

std::string encode(const Message& m) {
  std::string out;
  out.reserve(m.head.size() + m.body.size() + 16 * m.fields.size() + 4);
  out += m.head;
  out += '\n';
  for (const auto& [k, v] : m.fields) {
    out += k;
    out += '=';
    out += v;
    out += '\n';
  }
  if (!m.body.empty()) {
    out += '\n';
    out += m.body;
  }
  return out;
}

Message decode(const std::string& payload) {
  Message m;
  std::size_t pos = payload.find('\n');
  if (pos == std::string::npos) {
    m.head = payload;
    return m;
  }
  m.head = payload.substr(0, pos);
  ++pos;
  while (pos < payload.size()) {
    const std::size_t eol = payload.find('\n', pos);
    const std::size_t end = eol == std::string::npos ? payload.size() : eol;
    if (end == pos) {  // blank separator: the rest is the body, verbatim
      m.body = eol == std::string::npos ? "" : payload.substr(eol + 1);
      return m;
    }
    const std::size_t eq = payload.find('=', pos);
    if (eq == std::string::npos || eq >= end) {
      throw std::invalid_argument("serve: malformed field line '" +
                                  payload.substr(pos, end - pos) + "'");
    }
    m.fields.emplace_back(payload.substr(pos, eq - pos),
                          payload.substr(eq + 1, end - eq - 1));
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return m;
}

bool read_message(int fd, Message& out) {
  std::uint32_t len = 0;
  if (!net::read_exact(fd, &len, sizeof len)) {
    if (errno != 0) {
      throw std::runtime_error(std::string("serve: read: ") +
                               std::strerror(errno));
    }
    return false;  // clean EOF between frames
  }
  if (len > kMaxFrame) {
    throw FrameError("serve: frame length " + std::to_string(len) +
                     " exceeds limit " + std::to_string(kMaxFrame));
  }
  std::string payload(len, '\0');
  if (len != 0 && !net::read_exact(fd, payload.data(), len)) {
    throw std::runtime_error("serve: truncated frame");
  }
  out = decode(payload);
  return true;
}

void write_message(int fd, const Message& m, int timeout_ms) {
  const std::string payload = encode(m);
  if (payload.size() > kMaxFrame) {
    throw std::invalid_argument("serve: payload exceeds frame limit");
  }
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::string frame;
  frame.reserve(sizeof len + payload.size());
  frame.append(reinterpret_cast<const char*>(&len), sizeof len);
  frame += payload;
  // One write per frame: concurrent responders interleave at frame
  // granularity at worst (the server additionally serializes per
  // connection), and a dead client surfaces as EPIPE, not SIGPIPE. With a
  // timeout, a stalled reader surfaces as ETIMEDOUT instead of wedging the
  // writing thread forever.
  if (!net::write_all_timeout(fd, frame.data(), frame.size(), timeout_ms)) {
    if (errno == ETIMEDOUT) {
      throw WriteTimeout("serve: write: stalled reader (timeout " +
                         std::to_string(timeout_ms) + "ms)");
    }
    throw std::runtime_error(std::string("serve: write: ") +
                             (errno == 0 ? "peer closed"
                                         : std::strerror(errno)));
  }
}

}  // namespace gdiam::serve
