#include "sssp/delta_stepping.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "graph/split_csr.hpp"
#include "mr/bsp_engine.hpp"
#include "mr/exchange.hpp"
#include "util/bitpack.hpp"
#include "util/parallel.hpp"

namespace gdiam::sssp {

namespace {

/// Cyclic bucket array. At any time all queued nodes live in absolute
/// bucket indices [current, current + span), with span bounded by
/// ceil(max_weight / Δ) + 2, so `size >= span + 1` guarantees one absolute
/// index per slot.
class Buckets {
 public:
  Buckets(std::size_t slots, NodeId n)
      : slots_(slots), queued_bucket_(n, kNoBucket) {}

  static constexpr std::uint64_t kNoBucket = ~0ULL;

  void push(NodeId v, std::uint64_t abs_index) {
    if (queued_bucket_[v] == abs_index) return;  // already queued there
    queued_bucket_[v] = abs_index;
    slots_[abs_index % slots_.size()].push_back(v);
    ++queued_;
    max_abs_ = std::max(max_abs_, abs_index);
  }

  /// Drains slot for `abs_index`; caller filters stale entries.
  std::vector<NodeId> drain(std::uint64_t abs_index) {
    auto& slot = slots_[abs_index % slots_.size()];
    std::vector<NodeId> out;
    out.swap(slot);
    queued_ -= out.size();
    return out;
  }

  [[nodiscard]] bool slot_empty(std::uint64_t abs_index) const noexcept {
    return slots_[abs_index % slots_.size()].empty();
  }

  [[nodiscard]] std::uint64_t queued() const noexcept { return queued_; }
  [[nodiscard]] std::uint64_t max_abs() const noexcept { return max_abs_; }

  /// Forget the queued marker so a node drained but still unsettled can be
  /// re-queued into a later bucket.
  void clear_marker(NodeId v) noexcept { queued_bucket_[v] = kNoBucket; }

 private:
  std::vector<std::vector<NodeId>> slots_;
  std::vector<std::uint64_t> queued_bucket_;
  std::uint64_t queued_ = 0;
  std::uint64_t max_abs_ = 0;
};

enum class EdgeKind { kLight, kHeavy };

/// One cross-shard relaxation request: "lower dist of your node `target`
/// (destination-local id) to the order-encoded distance `bits`". Packed so
/// the exchange's sizeof-based byte accounting reports the 12 serialized
/// bytes, not 16 with padding.
struct [[gnu::packed]] DistProposal {
  NodeId target = 0;
  std::uint64_t bits = 0;
};
static_assert(sizeof(DistProposal) == 12);

}  // namespace

DeltaSteppingResult delta_stepping(const Graph& g, NodeId source,
                                   const DeltaSteppingOptions& opts) {
  const NodeId n = g.num_nodes();
  if (source >= n) throw std::out_of_range("delta_stepping: bad source");

  DeltaSteppingResult out;
  Weight delta = opts.delta > 0.0 ? opts.delta : g.avg_weight();
  if (delta <= 0.0) delta = 1.0;  // edgeless graph: any value works
  out.delta_used = delta;

  std::vector<std::uint64_t> dist_bits(n, util::kInfDoubleBits);
  dist_bits[source] = util::double_order_bits(0.0);
  auto dist_of = [&](NodeId v) {
    return util::double_from_order_bits(
        std::atomic_ref<std::uint64_t>(dist_bits[v])
            .load(std::memory_order_relaxed));
  };
  auto bucket_of = [&](Weight d) {
    return static_cast<std::uint64_t>(d / delta);
  };

  const std::size_t span =
      static_cast<std::size_t>(std::ceil(g.max_weight() / delta)) + 3;
  Buckets buckets(span, n);
  buckets.push(source, 0);

  util::ThreadBuffers<NodeId> improved;
  std::vector<std::uint8_t> in_improved(n, 0);

  // Partitioned BSP backend (opts.partition.num_partitions > 1): relaxation
  // phases run as supersteps on K shards instead of one flat loop.
  std::unique_ptr<mr::Partition> part;
  std::unique_ptr<mr::BspEngine> bsp;
  mr::Exchange<DistProposal> exchange;
  // Per-phase staging for relax_bsp, hoisted like `improved`/`in_improved`
  // so steady-state phases allocate nothing.
  std::vector<std::vector<std::pair<NodeId, Weight>>> by_shard;
  std::vector<std::uint64_t> shard_messages, shard_updates;
  std::vector<std::vector<NodeId>> shard_improved;
  if (opts.partition.num_partitions > 1 && n > 0) {
    part = std::make_unique<mr::Partition>(g, opts.partition);
    bsp = std::make_unique<mr::BspEngine>(*part);
    const std::uint32_t k = part->num_partitions();
    exchange.resize(k);
    by_shard.resize(k);
    shard_messages.resize(k);
    shard_updates.resize(k);
    shard_improved.resize(k);
    out.partitions_used = k;
  }

  // Δ-presplit adjacency (graph/split_csr.hpp): one O(m) light-first reorder
  // up front, amortized over every relaxation phase of the run. The flat
  // kernel splits the graph's CSR; the partitioned one splits each shard's
  // CSR, so both backends see the same per-node split offsets.
  SplitCsr split;
  std::vector<CsrSplit> shard_splits;
  if (opts.presplit) {
    if (part == nullptr) {
      split = SplitCsr(g, delta);
    } else {
      shard_splits.reserve(part->num_partitions());
      for (const mr::Shard& sh : part->shards()) {
        shard_splits.push_back(
            presplit_csr(sh.offsets, sh.targets, sh.weights, delta));
      }
    }
  }

  // Relax `kind` edges out of `frontier` (distance snapshots taken at phase
  // start, so the phase is one synchronous round and all counters are
  // independent of thread interleaving); returns the distinct nodes whose
  // tentative distance improved.
  auto relax_flat = [&](const std::vector<std::pair<NodeId, Weight>>& frontier,
                        EdgeKind kind) {
    std::uint64_t messages = 0, updates = 0;
    const bool use_split = !split.empty();
#pragma omp parallel for schedule(dynamic, 64) reduction(+ : messages, updates)
    for (std::size_t f = 0; f < frontier.size(); ++f) {
      const auto [u, du] = frontier[f];
      std::span<const NodeId> nbr;
      std::span<const Weight> wts;
      if (use_split) {
        // Exactly the arcs of this class: no per-edge branch, no double scan.
        nbr = kind == EdgeKind::kLight ? split.light_neighbors(u)
                                       : split.heavy_neighbors(u);
        wts = kind == EdgeKind::kLight ? split.light_weights(u)
                                       : split.heavy_weights(u);
      } else {
        nbr = g.neighbors(u);
        wts = g.weights(u);
      }
      for (std::size_t i = 0; i < nbr.size(); ++i) {
        const Weight w = wts[i];
        if (!use_split && (kind == EdgeKind::kLight) != (w <= delta)) continue;
        ++messages;
        const std::uint64_t nd = util::double_order_bits(du + w);
        if (util::atomic_fetch_min(dist_bits[nbr[i]], nd)) {
          // Count each improved node once per phase (first winner only).
          std::atomic_ref<std::uint8_t> flag(in_improved[nbr[i]]);
          if (flag.exchange(1, std::memory_order_relaxed) == 0) {
            ++updates;
            improved.local().push_back(nbr[i]);
          }
        }
      }
    }
    out.stats.messages += messages;
    out.stats.node_updates += updates;
    auto changed = improved.gather();
    for (const NodeId v : changed) in_improved[v] = 0;
    return changed;
  };

  // Same phase as one BSP superstep: each shard relaxes the frontier nodes
  // it owns over its own CSR, lowers owned targets directly (it is the only
  // writer of their dist slots, so no atomics are needed) and ships ghost
  // targets through the exchange; the apply phase folds inboxes the same
  // way. The per-phase min-reduction fixpoint — and hence every distance and
  // counter — is identical to relax_flat.
  auto relax_bsp = [&](const std::vector<std::pair<NodeId, Weight>>& frontier,
                       EdgeKind kind) {
    const std::uint32_t k = part->num_partitions();
    for (std::uint32_t s = 0; s < k; ++s) {
      by_shard[s].clear();
      shard_messages[s] = 0;
      shard_updates[s] = 0;
      shard_improved[s].clear();
    }
    for (const auto& e : frontier) by_shard[part->owner(e.first)].push_back(e);

    // Lower the owned node v to `nd`; single-writer per shard, no atomics.
    auto lower = [&](mr::ShardId s, NodeId v, std::uint64_t nd) {
      if (nd < dist_bits[v]) {
        dist_bits[v] = nd;
        if (in_improved[v] == 0) {
          in_improved[v] = 1;
          shard_updates[s]++;
          shard_improved[s].push_back(v);
        }
      }
    };

    auto compute = [&](const mr::Shard& sh, mr::Exchange<DistProposal>& ex) {
      std::uint64_t messages = 0;
      // With presplit, iterate only the [light | heavy] half of the shard's
      // permuted segment; otherwise branch-filter the original shard CSR.
      const CsrSplit* ss =
          shard_splits.empty() ? nullptr : &shard_splits[sh.id];
      const NodeId* tgt = ss != nullptr ? ss->targets.data()
                                        : sh.targets.data();
      const Weight* wt = ss != nullptr ? ss->weights.data()
                                       : sh.weights.data();
      for (const auto& [u, du] : by_shard[sh.id]) {
        const NodeId l = part->local_id(u);
        EdgeIndex lo = sh.offsets[l];
        EdgeIndex hi = sh.offsets[l + 1];
        if (ss != nullptr) {
          (kind == EdgeKind::kLight ? hi : lo) = ss->split[l];
        }
        for (EdgeIndex i = lo; i < hi; ++i) {
          const Weight w = wt[i];
          if (ss == nullptr && (kind == EdgeKind::kLight) != (w <= delta)) {
            continue;
          }
          ++messages;
          const std::uint64_t nd = util::double_order_bits(du + w);
          const NodeId tl = tgt[i];
          const NodeId v = sh.global_of_local[tl];
          if (!sh.is_ghost(tl)) {
            lower(sh.id, v, nd);
          } else {
            ex.send(sh.id, sh.ghost_owner[tl - sh.num_owned],
                    DistProposal{part->local_id(v), nd});
          }
        }
      }
      shard_messages[sh.id] = messages;
    };
    auto apply = [&](const mr::Shard& sh,
                     std::span<const DistProposal> inbox) {
      for (const DistProposal& m : inbox) {
        lower(sh.id, sh.global_of_local[m.target], m.bits);
      }
    };
    bsp->superstep(exchange, compute, apply, &out.stats);

    std::vector<NodeId> changed;
    for (std::uint32_t s = 0; s < k; ++s) {
      out.stats.messages += shard_messages[s];
      out.stats.node_updates += shard_updates[s];
      changed.insert(changed.end(), shard_improved[s].begin(),
                     shard_improved[s].end());
    }
    for (const NodeId v : changed) in_improved[v] = 0;
    return changed;
  };

  auto relax = [&](const std::vector<std::pair<NodeId, Weight>>& frontier,
                   EdgeKind kind) {
    out.stats.relaxation_rounds++;
    return part != nullptr ? relax_bsp(frontier, kind)
                           : relax_flat(frontier, kind);
  };
  auto snapshot = [&](const std::vector<NodeId>& nodes) {
    std::vector<std::pair<NodeId, Weight>> snap;
    snap.reserve(nodes.size());
    for (const NodeId v : nodes) snap.emplace_back(v, dist_of(v));
    return snap;
  };

  std::uint64_t cur = 0;
  while (buckets.queued() > 0) {
    // Bucket selection = one scan over bucket indices (one MR round).
    out.stats.auxiliary_rounds++;
    while (cur <= buckets.max_abs() && buckets.slot_empty(cur)) ++cur;
    if (cur > buckets.max_abs()) break;  // defensive; queued()>0 should hold

    std::vector<NodeId> settled;  // R in the paper: all nodes leaving bucket
    std::uint64_t phases = 0;
    while (!buckets.slot_empty(cur)) {
      auto drained = buckets.drain(cur);
      std::vector<NodeId> frontier;
      frontier.reserve(drained.size());
      for (const NodeId v : drained) {
        buckets.clear_marker(v);
        if (bucket_of(dist_of(v)) == cur) frontier.push_back(v);
        // stale entries (node moved to an earlier bucket) are dropped
      }
      if (frontier.empty()) break;
      settled.insert(settled.end(), frontier.begin(), frontier.end());

      auto changed = relax(snapshot(frontier), EdgeKind::kLight);
      for (const NodeId v : changed) {
        const std::uint64_t b = bucket_of(dist_of(v));
        if (b >= cur) buckets.push(v, b);
      }
      if (opts.max_phases_per_bucket != 0 &&
          ++phases >= opts.max_phases_per_bucket) {
        break;
      }
    }

    if (!settled.empty()) {
      // Deduplicate: a node may have been drained twice (re-entered cur).
      std::sort(settled.begin(), settled.end());
      settled.erase(std::unique(settled.begin(), settled.end()),
                    settled.end());
      auto changed = relax(snapshot(settled), EdgeKind::kHeavy);
      for (const NodeId v : changed) {
        buckets.push(v, bucket_of(dist_of(v)));
      }
    }
    out.buckets_processed++;
    // Advance only past an emptied bucket: when the per-bucket phase cap
    // fired, the slot may still hold unsettled nodes that must be
    // re-processed (skipping them would freeze non-final distances).
    if (buckets.slot_empty(cur)) ++cur;
  }

  out.dist.resize(n);
  Weight ecc = 0.0;
  NodeId far = source;
  for (NodeId u = 0; u < n; ++u) {
    out.dist[u] = util::double_from_order_bits(dist_bits[u]);
    if (out.dist[u] != kInfiniteWeight && out.dist[u] > ecc) {
      ecc = out.dist[u];
      far = u;
    }
  }
  out.eccentricity = ecc;
  out.farthest = far;
  return out;
}

SsspDiameterApprox diameter_two_approx(const Graph& g, NodeId source,
                                       const DeltaSteppingOptions& opts) {
  const DeltaSteppingResult r = delta_stepping(g, source, opts);
  SsspDiameterApprox out;
  out.eccentricity = r.eccentricity;
  out.upper_bound = 2.0 * r.eccentricity;
  out.stats = r.stats;
  out.delta_used = r.delta_used;
  return out;
}

}  // namespace gdiam::sssp
