#include "sssp/delta_stepping.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>

#include "exec/context.hpp"
#include "mr/bsp_engine.hpp"
#include "sssp/rho_stepping.hpp"
#include "util/bitpack.hpp"
#include "util/parallel.hpp"

namespace gdiam::sssp {

namespace {

/// Cyclic bucket array over pooled storage (RoundBuffers). At any time all
/// queued nodes live in absolute bucket indices [current, current + span),
/// with span bounded by ceil(max_weight / Δ) + 2, so `slots.size() >= span`
/// guarantees one absolute index per slot (a larger pooled array from an
/// earlier run only spreads the indices further apart).
class Buckets {
 public:
  static constexpr std::uint64_t kNoBucket = ~0ULL;

  Buckets(std::vector<std::vector<NodeId>>& slots,
          std::vector<std::uint64_t>& queued_bucket, std::size_t span,
          NodeId n)
      : slots_(slots), queued_bucket_(queued_bucket) {
    if (slots_.size() < span) slots_.resize(span);
    for (auto& s : slots_) s.clear();  // keep capacity, drop stale content
    queued_bucket_.assign(n, kNoBucket);
  }

  void push(NodeId v, std::uint64_t abs_index) {
    if (queued_bucket_[v] == abs_index) return;  // already queued there
    queued_bucket_[v] = abs_index;
    slots_[abs_index % slots_.size()].push_back(v);
    ++queued_;
    max_abs_ = std::max(max_abs_, abs_index);
  }

  /// Drains slot for `abs_index` into `out` (swapping buffers so slot and
  /// list capacities recycle); caller filters stale entries.
  void drain_into(std::uint64_t abs_index, std::vector<NodeId>& out) {
    auto& slot = slots_[abs_index % slots_.size()];
    out.swap(slot);
    slot.clear();
    queued_ -= out.size();
  }

  [[nodiscard]] bool slot_empty(std::uint64_t abs_index) const noexcept {
    return slots_[abs_index % slots_.size()].empty();
  }

  [[nodiscard]] std::uint64_t queued() const noexcept { return queued_; }
  [[nodiscard]] std::uint64_t max_abs() const noexcept { return max_abs_; }

  /// Forget the queued marker so a node drained but still unsettled can be
  /// re-queued into a later bucket.
  void clear_marker(NodeId v) noexcept { queued_bucket_[v] = kNoBucket; }

 private:
  std::vector<std::vector<NodeId>>& slots_;
  std::vector<std::uint64_t>& queued_bucket_;
  std::uint64_t queued_ = 0;
  std::uint64_t max_abs_ = 0;
};

enum class EdgeKind { kLight, kHeavy };

}  // namespace

void RoundBuffers::reset(NodeId n, const core::FrontierOptions& opts) {
  improved.reset(n, opts);
  if (stamps.size() != static_cast<std::size_t>(n)) {
    stamps.assign(n, 0);
    stamp_round = 0;
  }
  drained.clear();
  active.clear();
  settled.clear();
  snapshot.clear();
  changed.clear();
  // dist_bits / bucket arrays are (re)assigned by the run itself; exchange
  // scratch lazily by the partitioned path. Capacities survive throughout.
}

void RoundBuffers::new_stamp_round() {
  if (++stamp_round == 0) {  // generation wraparound: rebase
    std::fill(stamps.begin(), stamps.end(), 0);
    stamp_round = 1;
  }
}

bool RoundBuffers::stamp_once(NodeId v) {
  if (stamps[v] == stamp_round) return false;
  stamps[v] = stamp_round;
  return true;
}

DeltaSteppingResult delta_stepping(const Graph& g, NodeId source,
                                   const DeltaSteppingOptions& opts,
                                   exec::Context* ctx) {
  const NodeId n = g.num_nodes();
  if (source >= n) throw std::out_of_range("delta_stepping: bad source");

  // All round-lifetime scratch lives in the context's RoundBuffers pool —
  // allocated once per run, and reused across runs when the caller passes a
  // long-lived context (sweep iterations, CL-DIAM pipelines, benches).
  exec::Context local_ctx;
  exec::Context& C = ctx != nullptr ? *ctx : local_ctx;
  RoundBuffers& rb = C.round_buffers();
  const bool adaptive = opts.frontier.adaptive;
  rb.reset(n, opts.frontier);

  DeltaSteppingResult out;
  Weight delta = opts.delta > 0.0 ? opts.delta : g.avg_weight();
  if (delta <= 0.0) delta = 1.0;  // edgeless graph: any value works
  out.delta_used = delta;

  std::vector<std::uint64_t>& dist_bits = rb.dist_bits;
  dist_bits.assign(n, util::kInfDoubleBits);
  dist_bits[source] = util::double_order_bits(0.0);
  auto dist_of = [&](NodeId v) {
    return util::double_from_order_bits(
        std::atomic_ref<std::uint64_t>(dist_bits[v])
            .load(std::memory_order_relaxed));
  };
  auto bucket_of = [&](Weight d) {
    return static_cast<std::uint64_t>(d / delta);
  };

  const std::size_t span =
      static_cast<std::size_t>(std::ceil(g.max_weight() / delta)) + 3;
  Buckets buckets(rb.bucket_slots, rb.bucket_queued, span, n);
  buckets.push(source, 0);

  // The adaptive=false baseline keeps the legacy improved-set machinery:
  // per-thread gather buffers plus a byte flag per node, reset after every
  // phase. The adaptive path replaces all of it with rb.improved's round
  // stamps (tests/test_frontier.cpp pins the two bit-identical).
  util::ThreadBuffers<NodeId> improved;
  std::vector<std::uint8_t> in_improved;
  std::vector<NodeId> baseline_changed;
  if (!adaptive) in_improved.assign(n, 0);

  // Partitioned BSP backend (opts.partition.num_partitions > 1): relaxation
  // phases run as supersteps on K shards instead of one flat loop. The shard
  // layout is cached in the context, the staging scratch in RoundBuffers.
  // The transport decides where the supersteps' compute runs (mr/transport
  // .hpp): in-process threads, or opts.transport.processes forked workers.
  const mr::Partition* part = nullptr;
  std::unique_ptr<mr::Transport> transport;
  std::unique_ptr<mr::BspEngine> bsp;
  if (opts.partition.num_partitions > 1 && n > 0) {
    part = &C.partition_for(g, opts.partition);
    // NUMA placement (mr/placement.hpp): a pure function of (topology, K,
    // strategy) — inactive under the default kNone. The transport binds
    // compute by it; the exchange classifies cross-node traffic by it.
    mr::PlacementPlan plan =
        mr::resolve_placement(opts.placement, part->num_partitions());
    transport = mr::Launcher::make_transport(
        opts.transport, part->num_partitions(), plan);
    bsp = std::make_unique<mr::BspEngine>(*part, transport.get());
    const std::uint32_t k = part->num_partitions();
    if (rb.exchange.num_partitions() != k) {
      rb.exchange.resize(k);
      rb.by_shard.assign(k, {});
      rb.shard_improved.assign(k, {});
    } else {
      rb.exchange.clear();
    }
    rb.exchange.set_node_map(plan.node_of_shard());
    rb.shard_messages.assign(k, 0);
    rb.shard_updates.assign(k, 0);
    out.partitions_used = k;
    out.processes_used = transport->processes();
  }
  // Under a remote transport a shard's compute runs in a forked worker whose
  // writes to dist_bits (and every other coordinator array) are lost: owned
  // lowerings are staged as loopback records and replayed — in the identical
  // order — by the apply phase (DESIGN.md §9).
  const bool remote = bsp != nullptr && bsp->remote_compute();
  // Resident workers (PoolTransport) are forked once and keep the closures
  // below frozen; the per-phase inputs they need — the frontier pairs routed
  // to their shards and the phase's edge class — are shipped through the
  // StepInputCodec into stable RoundBuffers storage instead. Everything else
  // compute reads (partition slice, presplit layout, Δ) is fixed for the
  // whole run, so the fork-time snapshot stays valid and the codec epoch is
  // constant.
  const bool resident = bsp != nullptr && bsp->resident_compute();
  mr::StepInputCodec pool_codec;
  if (resident) {
    // Input frame, per shard: [u8 edge_kind][(NodeId, Weight) pairs...].
    pool_codec.encode = [&rb](mr::ShardId s, std::vector<std::byte>& buf) {
      buf.push_back(static_cast<std::byte>(rb.pool_kind));
      const auto& pairs = rb.by_shard[s];
      const auto* p = reinterpret_cast<const std::byte*>(pairs.data());
      buf.insert(buf.end(), p, p + pairs.size() * sizeof(pairs[0]));
    };
    pool_codec.decode = [&rb](mr::ShardId s, const std::byte* p,
                              std::size_t len) {
      rb.pool_kind = static_cast<std::uint8_t>(p[0]);
      ++p;
      --len;
      auto& pairs = rb.by_shard[s];
      pairs.resize(len / sizeof(pairs[0]));
      if (len != 0) std::memcpy(pairs.data(), p, len);
    };
  }

  // Δ-presplit adjacency (graph/split_csr.hpp): one O(m) light-first reorder,
  // cached in the context so equal-Δ repetitions (sweeps) presplit once. The
  // flat kernel splits the graph's CSR; the partitioned one splits each
  // shard's CSR, so both backends see the same per-node split offsets.
  const SplitCsr* split = nullptr;
  const std::vector<CsrSplit>* shard_splits = nullptr;
  if (opts.presplit) {
    if (part == nullptr) {
      split = &C.split_for(g, delta);
    } else {
      shard_splits = &C.shard_splits_for(g, opts.partition, delta);
    }
  }

  // Relax `kind` edges out of `frontier` (distance snapshots taken at phase
  // start, so the phase is one synchronous round and all counters are
  // independent of thread interleaving); returns the distinct nodes whose
  // tentative distance improved.
  auto relax_flat =
      [&](const std::vector<std::pair<NodeId, Weight>>& frontier,
          EdgeKind kind) -> const std::vector<NodeId>& {
    std::uint64_t messages = 0, updates = 0;
    const bool use_split = split != nullptr;
#pragma omp parallel for schedule(dynamic, 64) reduction(+ : messages, updates)
    for (std::size_t f = 0; f < frontier.size(); ++f) {
      const auto [u, du] = frontier[f];
      std::span<const NodeId> nbr;
      std::span<const Weight> wts;
      if (use_split) {
        // Exactly the arcs of this class: no per-edge branch, no double scan.
        nbr = kind == EdgeKind::kLight ? split->light_neighbors(u)
                                       : split->heavy_neighbors(u);
        wts = kind == EdgeKind::kLight ? split->light_weights(u)
                                       : split->heavy_weights(u);
      } else {
        nbr = g.neighbors(u);
        wts = g.weights(u);
      }
      for (std::size_t i = 0; i < nbr.size(); ++i) {
        const Weight w = wts[i];
        if (!use_split && (kind == EdgeKind::kLight) != (w <= delta)) continue;
        ++messages;
        const std::uint64_t nd = util::double_order_bits(du + w);
        if (util::atomic_fetch_min(dist_bits[nbr[i]], nd)) {
          // Count each improved node once per phase (first winner only):
          // frontier stamp or legacy flag, same set either way.
          bool first;
          if (adaptive) {
            first = rb.improved.insert(nbr[i]);
          } else {
            std::atomic_ref<std::uint8_t> flag(in_improved[nbr[i]]);
            first = flag.exchange(1, std::memory_order_relaxed) == 0;
          }
          if (first) {
            ++updates;
            if (!adaptive) improved.local().push_back(nbr[i]);
          }
        }
      }
    }
    out.stats.messages += messages;
    out.stats.node_updates += updates;
    if (adaptive) {
      rb.improved.advance();
      return rb.improved.nodes();
    }
    baseline_changed = improved.gather();
    for (const NodeId v : baseline_changed) in_improved[v] = 0;
    return baseline_changed;
  };

  // Same phase as one BSP superstep: each shard relaxes the frontier nodes
  // it owns over its own CSR, lowers owned targets directly (it is the only
  // writer of their dist slots, so no atomics are needed) and ships ghost
  // targets through the exchange; the apply phase folds inboxes the same
  // way. The per-phase min-reduction fixpoint — and hence every distance and
  // counter — is identical to relax_flat.
  auto relax_bsp = [&](const std::vector<std::pair<NodeId, Weight>>& frontier,
                       EdgeKind kind) -> const std::vector<NodeId>& {
    const std::uint32_t k = part->num_partitions();
    // Stable-slot copy of the phase's edge class: compute reads it from
    // RoundBuffers so a resident worker sees the value the codec shipped.
    rb.pool_kind = static_cast<std::uint8_t>(kind);
    for (std::uint32_t s = 0; s < k; ++s) {
      rb.by_shard[s].clear();
      rb.shard_messages[s] = 0;
      rb.shard_updates[s] = 0;
      if (!adaptive) rb.shard_improved[s].clear();
    }
    for (const auto& e : frontier) {
      rb.by_shard[part->owner(e.first)].push_back(e);
    }

    // Lower the owned node v to `nd`; single-writer per shard, no atomics.
    auto lower = [&](mr::ShardId s, NodeId v, std::uint64_t nd) {
      if (nd < dist_bits[v]) {
        dist_bits[v] = nd;
        bool first;
        if (adaptive) {
          first = rb.improved.insert_serial(v);
        } else {
          first = in_improved[v] == 0;
          if (first) in_improved[v] = 1;
        }
        if (first) {
          rb.shard_updates[s]++;
          if (!adaptive) rb.shard_improved[s].push_back(v);
        }
      }
    };

    auto compute = [&](const mr::Shard& sh, mr::Exchange<DistProposal>& ex) {
      std::uint64_t messages = 0;
      // Read the edge class from its stable RoundBuffers slot, not the
      // enclosing frame: a resident pool worker's copy of this closure is
      // frozen at fork time, and only rb is refreshed by decode_input.
      const auto ck = static_cast<EdgeKind>(rb.pool_kind);
      // With presplit, iterate only the [light | heavy] half of the shard's
      // permuted segment; otherwise branch-filter the original shard CSR.
      const CsrSplit* ss =
          shard_splits == nullptr ? nullptr : &(*shard_splits)[sh.id];
      const NodeId* tgt = ss != nullptr ? ss->targets.data()
                                        : sh.targets.data();
      const Weight* wt = ss != nullptr ? ss->weights.data()
                                       : sh.weights.data();
      for (const auto& [u, du] : rb.by_shard[sh.id]) {
        const NodeId l = part->local_id(u);
        EdgeIndex lo = sh.offsets[l];
        EdgeIndex hi = sh.offsets[l + 1];
        if (ss != nullptr) {
          (ck == EdgeKind::kLight ? hi : lo) = ss->split[l];
        }
        for (EdgeIndex i = lo; i < hi; ++i) {
          const Weight w = wt[i];
          if (ss == nullptr && (ck == EdgeKind::kLight) != (w <= delta)) {
            continue;
          }
          ++messages;
          const std::uint64_t nd = util::double_order_bits(du + w);
          const NodeId tl = tgt[i];
          const NodeId v = sh.global_of_local[tl];
          if (!sh.is_ghost(tl)) {
            // tl is v's id within its owner shard (sh), so the record reads
            // back through apply exactly like a routed proposal.
            if (remote) {
              ex.loopback(sh.id, DistProposal{tl, nd});
            } else {
              lower(sh.id, v, nd);
            }
          } else {
            ex.send(sh.id, sh.ghost_owner[tl - sh.num_owned],
                    DistProposal{part->local_id(v), nd});
          }
        }
      }
      rb.shard_messages[sh.id] = messages;
    };
    auto apply = [&](const mr::Shard& sh,
                     std::span<const DistProposal> inbox) {
      for (const DistProposal& m : inbox) {
        lower(sh.id, sh.global_of_local[m.target], m.bits);
      }
    };
    bsp->superstep(rb.exchange, compute, apply, &out.stats,
                   std::span<std::uint64_t>(rb.shard_messages.data(), k),
                   resident ? &pool_codec : nullptr);

    for (std::uint32_t s = 0; s < k; ++s) {
      out.stats.messages += rb.shard_messages[s];
      out.stats.node_updates += rb.shard_updates[s];
    }
    if (adaptive) {
      rb.improved.advance();
      return rb.improved.nodes();
    }
    rb.changed.clear();
    for (std::uint32_t s = 0; s < k; ++s) {
      rb.changed.insert(rb.changed.end(), rb.shard_improved[s].begin(),
                        rb.shard_improved[s].end());
    }
    for (const NodeId v : rb.changed) in_improved[v] = 0;
    return rb.changed;
  };

  auto relax = [&](const std::vector<std::pair<NodeId, Weight>>& frontier,
                   EdgeKind kind) -> const std::vector<NodeId>& {
    out.stats.relaxation_rounds++;
    const auto& changed = part != nullptr ? relax_bsp(frontier, kind)
                                          : relax_flat(frontier, kind);
    if (adaptive) {
      // Round convention of DESIGN.md §7: the phase is classified by the
      // representation that collected its improved set.
      if (rb.improved.current_mode() == core::FrontierMode::kDense) {
        out.stats.dense_rounds++;
      } else {
        out.stats.sparse_rounds++;
      }
    }
    return changed;
  };
  auto snapshot = [&](const std::vector<NodeId>& nodes)
      -> const std::vector<std::pair<NodeId, Weight>>& {
    rb.snapshot.clear();
    rb.snapshot.reserve(nodes.size());
    for (const NodeId v : nodes) rb.snapshot.emplace_back(v, dist_of(v));
    return rb.snapshot;
  };

  std::uint64_t cur = 0;
  while (buckets.queued() > 0) {
    // Bucket selection = one scan over bucket indices (one MR round).
    out.stats.auxiliary_rounds++;
    while (cur <= buckets.max_abs() && buckets.slot_empty(cur)) ++cur;
    if (cur > buckets.max_abs()) break;  // defensive; queued()>0 should hold

    // R in the paper: all nodes leaving the bucket. The adaptive path dedups
    // at insertion time with one stamp generation per bucket; the baseline
    // keeps the legacy collect-then-sort+unique pass.
    rb.settled.clear();
    if (adaptive) rb.new_stamp_round();
    std::uint64_t phases = 0;
    while (!buckets.slot_empty(cur)) {
      buckets.drain_into(cur, rb.drained);
      rb.active.clear();
      for (const NodeId v : rb.drained) {
        buckets.clear_marker(v);
        if (bucket_of(dist_of(v)) == cur) rb.active.push_back(v);
        // stale entries (node moved to an earlier bucket) are dropped
      }
      if (rb.active.empty()) break;
      if (adaptive) {
        for (const NodeId v : rb.active) {
          if (rb.stamp_once(v)) rb.settled.push_back(v);
        }
      } else {
        rb.settled.insert(rb.settled.end(), rb.active.begin(),
                          rb.active.end());
      }

      const auto& changed = relax(snapshot(rb.active), EdgeKind::kLight);
      for (const NodeId v : changed) {
        const std::uint64_t b = bucket_of(dist_of(v));
        if (b >= cur) buckets.push(v, b);
      }
      if (opts.max_phases_per_bucket != 0 &&
          ++phases >= opts.max_phases_per_bucket) {
        break;
      }
    }

    if (!rb.settled.empty()) {
      if (!adaptive) {
        // Deduplicate: a node may have been drained twice (re-entered cur).
        std::sort(rb.settled.begin(), rb.settled.end());
        rb.settled.erase(std::unique(rb.settled.begin(), rb.settled.end()),
                         rb.settled.end());
      }
      const auto& changed = relax(snapshot(rb.settled), EdgeKind::kHeavy);
      for (const NodeId v : changed) {
        buckets.push(v, bucket_of(dist_of(v)));
      }
    }
    out.buckets_processed++;
    // Advance only past an emptied bucket: when the per-bucket phase cap
    // fired, the slot may still hold unsettled nodes that must be
    // re-processed (skipping them would freeze non-final distances).
    if (buckets.slot_empty(cur)) ++cur;
  }

  out.dist.resize(n);
  Weight ecc = 0.0;
  NodeId far = source;
  for (NodeId u = 0; u < n; ++u) {
    out.dist[u] = util::double_from_order_bits(dist_bits[u]);
    if (out.dist[u] != kInfiniteWeight && out.dist[u] > ecc) {
      ecc = out.dist[u];
      far = u;
    }
  }
  out.eccentricity = ecc;
  out.farthest = far;
  return out;
}

SsspDiameterApprox diameter_two_approx(const Graph& g, NodeId source,
                                       const DeltaSteppingOptions& opts) {
  const DeltaSteppingResult r = shortest_paths(g, source, opts);
  SsspDiameterApprox out;
  out.eccentricity = r.eccentricity;
  out.upper_bound = 2.0 * r.eccentricity;
  out.stats = r.stats;
  out.delta_used = r.delta_used;
  out.algorithm_used = r.algorithm_used;
  return out;
}

}  // namespace gdiam::sssp
