#pragma once
// ρ-stepping SSSP (Dong, Gu, Sun, Zhang — SPAA 2021; PASGAL's stepping
// framework), as a first-class sibling of Δ-stepping on the shared runtime.
//
// Δ-stepping's round count tracks diameter/Δ: any fixed bucket width either
// floods buckets on low-diameter graphs (wasted re-relaxation) or starves
// them on high-diameter ones (thousands of near-empty rounds). ρ-stepping
// sizes each step by *work* instead of *distance*: every step extracts the
// ~ρ closest frontier nodes — the distance threshold θ is chosen by sampling
// the frontier's tentative distances (≈ FrontierOptions::size_probes probes,
// seeded via util::rng) and taking the ρ/|F| quantile — and relaxes ALL
// their out-edges (no light/heavy split). Frontiers of ≤ ρ nodes are taken
// whole (θ = ∞). The step count tracks n/ρ, independent of the diameter.
//
// The kernel is label-correcting and converges to the exact Dijkstra
// fixpoint: θ is always one of the sampled tentative distances, so every
// step settles at least one frontier node and re-relaxes any node whose
// tentative distance later improves. Distances are bit-identical to
// Δ-stepping and Dijkstra (same min-reduction, tests/test_sssp.cpp).
//
// Determinism (the repo's contract: results AND model counters bit-identical
// across thread counts and transports): the threshold sample includes a
// frontier node v based on a hash of (seed, step, v) — a pure function of
// the frontier *set*, never of the materialized order, which is
// thread-interleaving-dependent for sparse collections. Everything
// downstream (near/far partition, messages, updates) is then set-determined.
//
// Scheduling reuses the Δ-stepping machinery wholesale: the same
// RoundBuffers pool, the adaptive improved-set Frontier, and with
// partition.num_partitions > 1 the same BSP superstep shape — shard-owned
// lowerings applied locally (loopback under remote transports), ghost
// targets through the typed exchange, resident pool workers fed per-step
// frontier frames. MR accounting follows the Δ-stepping convention: one
// auxiliary round per threshold-selection scan, one relaxation round per
// step's relax phase. opts.presplit is ignored — ρ-stepping always relaxes a
// node's full adjacency, so the Δ-presplit layout has nothing to offer it
// (and an exec::Context shared with Δ-stepping keeps its cached SplitCsr
// untouched and reusable).

#include "sssp/delta_stepping.hpp"

namespace gdiam::sssp {

/// Parallel ρ-stepping from `source`. Same options/result structs as
/// Δ-stepping (opts.rho is the batch target, opts.delta is ignored); a
/// non-null ctx pools scratch and layouts across runs exactly like
/// delta_stepping does.
[[nodiscard]] DeltaSteppingResult rho_stepping(
    const Graph& g, NodeId source, const DeltaSteppingOptions& opts = {},
    exec::Context* ctx = nullptr);

/// The kernel dispatcher every SSSP consumer (sweep, CLI, daemon, benches)
/// goes through: runs delta_stepping or rho_stepping per opts.algorithm.
[[nodiscard]] DeltaSteppingResult shortest_paths(
    const Graph& g, NodeId source, const DeltaSteppingOptions& opts = {},
    exec::Context* ctx = nullptr);

}  // namespace gdiam::sssp
