#pragma once
// Sequential Dijkstra (binary heap).
//
// The exact-reference SSSP: used for ground-truth distances in tests, for
// the iterated-sweep diameter lower bound (the paper's Table 2 caption), and
// for exact diameters of small quotient graphs.

#include <vector>

#include "graph/graph.hpp"

namespace gdiam::sssp {

struct SsspResult {
  std::vector<Weight> dist;      // kInfiniteWeight for unreachable nodes
  std::vector<NodeId> parent;    // kInvalidNode for source/unreachable
  NodeId farthest = kInvalidNode;  // reachable node with maximum distance
  Weight eccentricity = 0.0;       // max finite distance from the source
};

/// Exact single-source shortest paths from `source`.
[[nodiscard]] SsspResult dijkstra(const Graph& g, NodeId source);

/// Distances only (cheaper: skips parent bookkeeping).
[[nodiscard]] std::vector<Weight> dijkstra_distances(const Graph& g,
                                                     NodeId source);

/// Exact eccentricity of `source` (max finite distance).
[[nodiscard]] Weight eccentricity(const Graph& g, NodeId source);

/// Exact weighted diameter by running Dijkstra from every node in parallel.
/// Intended for small graphs (tests, quotient graphs): O(n * m log n).
[[nodiscard]] Weight exact_diameter(const Graph& g);

}  // namespace gdiam::sssp
