#pragma once
// Synchronous parallel Bellman–Ford.
//
// The round-greedy extreme of the Δ-stepping tradeoff (Δ = ∞): every phase
// relaxes all edges out of the active frontier. Serves as a second reference
// implementation for property tests and as the work-vs-rounds extreme in the
// ablation benches.

#include <vector>

#include "graph/graph.hpp"
#include "mr/stats.hpp"

namespace gdiam::sssp {

struct BellmanFordResult {
  std::vector<Weight> dist;
  mr::RoundStats stats;
  /// Number of synchronous phases executed (== stats.relaxation_rounds).
  std::uint64_t phases = 0;
};

/// Frontier-driven synchronous Bellman–Ford from `source`.
/// Deterministic (atomic min-reduction on packed double bits).
[[nodiscard]] BellmanFordResult bellman_ford(const Graph& g, NodeId source);

}  // namespace gdiam::sssp
