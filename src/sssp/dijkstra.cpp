#include "sssp/dijkstra.hpp"

#include <algorithm>
#include <queue>
#include <utility>

namespace gdiam::sssp {

namespace {

/// Shared core; `parents` may be null.
std::vector<Weight> run(const Graph& g, NodeId source,
                        std::vector<NodeId>* parents, NodeId* farthest,
                        Weight* ecc) {
  const NodeId n = g.num_nodes();
  std::vector<Weight> dist(n, kInfiniteWeight);
  if (parents) parents->assign(n, kInvalidNode);

  using Item = std::pair<Weight, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.emplace(0.0, source);

  NodeId far = source;
  Weight far_dist = 0.0;
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;  // stale entry
    if (d > far_dist) {
      far_dist = d;
      far = u;
    }
    const auto nbr = g.neighbors(u);
    const auto wts = g.weights(u);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      const NodeId v = nbr[i];
      const Weight nd = d + wts[i];
      if (nd < dist[v]) {
        dist[v] = nd;
        if (parents) (*parents)[v] = u;
        heap.emplace(nd, v);
      }
    }
  }
  if (farthest) *farthest = far;
  if (ecc) *ecc = far_dist;
  return dist;
}

}  // namespace

SsspResult dijkstra(const Graph& g, NodeId source) {
  SsspResult r;
  r.dist = run(g, source, &r.parent, &r.farthest, &r.eccentricity);
  return r;
}

std::vector<Weight> dijkstra_distances(const Graph& g, NodeId source) {
  return run(g, source, nullptr, nullptr, nullptr);
}

Weight eccentricity(const Graph& g, NodeId source) {
  Weight ecc = 0.0;
  run(g, source, nullptr, nullptr, &ecc);
  return ecc;
}

Weight exact_diameter(const Graph& g) {
  const NodeId n = g.num_nodes();
  Weight diameter = 0.0;
#pragma omp parallel for schedule(dynamic, 16) reduction(max : diameter)
  for (NodeId u = 0; u < n; ++u) {
    diameter = std::max(diameter, eccentricity(g, u));
  }
  return diameter;
}

}  // namespace gdiam::sssp
