#include "sssp/bellman_ford.hpp"

#include "util/bitpack.hpp"
#include "util/parallel.hpp"

namespace gdiam::sssp {

BellmanFordResult bellman_ford(const Graph& g, NodeId source) {
  const NodeId n = g.num_nodes();
  BellmanFordResult out;
  std::vector<std::uint64_t> dist_bits(n, util::kInfDoubleBits);
  dist_bits[source] = util::double_order_bits(0.0);

  std::vector<NodeId> frontier{source};
  util::ThreadBuffers<NodeId> next;
  std::vector<std::uint8_t> in_next(n, 0);

  while (!frontier.empty()) {
    out.stats.relaxation_rounds++;
    std::uint64_t messages = 0, updates = 0;
#pragma omp parallel for schedule(dynamic, 256) \
    reduction(+ : messages, updates)
    for (std::size_t f = 0; f < frontier.size(); ++f) {
      const NodeId u = frontier[f];
      const Weight du = util::double_from_order_bits(
          std::atomic_ref<std::uint64_t>(dist_bits[u])
              .load(std::memory_order_relaxed));
      const auto nbr = g.neighbors(u);
      const auto wts = g.weights(u);
      for (std::size_t i = 0; i < nbr.size(); ++i) {
        const NodeId v = nbr[i];
        const std::uint64_t nd = util::double_order_bits(du + wts[i]);
        ++messages;
        if (util::atomic_fetch_min(dist_bits[v], nd)) {
          ++updates;
          std::atomic_ref<std::uint8_t> flag(in_next[v]);
          if (flag.exchange(1, std::memory_order_relaxed) == 0) {
            next.local().push_back(v);
          }
        }
      }
    }
    out.stats.messages += messages;
    out.stats.node_updates += updates;
    frontier = next.gather();
    for (const NodeId v : frontier) in_next[v] = 0;
  }

  out.phases = out.stats.relaxation_rounds;
  out.dist.resize(n);
#pragma omp parallel for schedule(static)
  for (NodeId u = 0; u < n; ++u) {
    out.dist[u] = util::double_from_order_bits(dist_bits[u]);
  }
  return out;
}

}  // namespace gdiam::sssp
