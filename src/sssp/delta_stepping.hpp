#pragma once
// Δ-stepping SSSP (Meyer & Sanders, J. Algorithms 2003).
//
// The paper's baseline: the state-of-the-art practical parallel SSSP and the
// only linear-space competitor for diameter approximation in the MapReduce
// setting (2·ecc(source) is a 2-approximation of the diameter).
//
// Tentative distances live in buckets of width Δ. The smallest nonempty
// bucket is repeatedly emptied with *light*-edge (w ≤ Δ) relaxation phases
// until it stabilizes, then all nodes settled in it relax their *heavy*
// edges once. Small Δ approaches Dijkstra (little work, many rounds); large
// Δ approaches Bellman–Ford (few rounds, much work).
//
// MR accounting (mr/stats.hpp): each light/heavy relaxation phase counts as
// one relaxation round, each bucket-selection scan as one auxiliary round;
// messages = relaxation requests, node updates = accepted improvements.

// With partition.num_partitions > 1 every relaxation phase runs as one BSP
// superstep on K shards (mr/bsp_engine.hpp): shard-internal relaxations are
// applied locally, cross-shard ones travel through the typed exchange, and
// the stats additionally report the cross-partition messages/bytes a real
// MR shuffle would pay. Distances are identical to the flat kernel (same
// min-reduction fixpoint per phase).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mr/partition.hpp"
#include "mr/stats.hpp"

namespace gdiam::sssp {

struct DeltaSteppingOptions {
  /// Bucket width; 0 selects the common heuristic Δ = avg edge weight.
  Weight delta = 0.0;
  /// Cap on light-phase iterations per bucket (safety valve; 0 = unlimited).
  std::uint64_t max_phases_per_bucket = 0;
  /// Relax over the Δ-presplit adjacency (graph/split_csr.hpp): one O(m)
  /// reorder up front, then every light/heavy phase iterates exactly its edge
  /// class with no per-edge weight branch and no double scan. `false` keeps
  /// the branch-filter loops over the original CSR — bit-identical results
  /// (the tests enforce it); it exists as the A/B baseline for
  /// bench/micro_kernels and costs one weight comparison per arc per phase.
  bool presplit = true;
  /// Shard layout for the partitioned BSP backend; num_partitions <= 1
  /// selects the flat shared-memory kernel.
  mr::PartitionOptions partition;
};

struct DeltaSteppingResult {
  std::vector<Weight> dist;
  mr::RoundStats stats;
  NodeId farthest = kInvalidNode;  // reachable node with maximum distance
  Weight eccentricity = 0.0;
  Weight delta_used = 0.0;
  std::uint64_t buckets_processed = 0;
  /// Shards the run executed on (1 = flat shared-memory kernel).
  std::uint32_t partitions_used = 1;
};

/// Parallel Δ-stepping from `source`. Distances are exact (same relaxation
/// fixpoint as Dijkstra); deterministic via atomic min-reduction.
[[nodiscard]] DeltaSteppingResult delta_stepping(
    const Graph& g, NodeId source, const DeltaSteppingOptions& opts = {});

/// Diameter upper bound 2·ecc(source) plus the stats of the underlying run —
/// the SSSP-based approximation the paper compares against.
struct SsspDiameterApprox {
  Weight upper_bound = 0.0;   // 2 * eccentricity
  Weight eccentricity = 0.0;  // itself a lower bound on the diameter
  mr::RoundStats stats;
  Weight delta_used = 0.0;
};

[[nodiscard]] SsspDiameterApprox diameter_two_approx(
    const Graph& g, NodeId source, const DeltaSteppingOptions& opts = {});

}  // namespace gdiam::sssp
