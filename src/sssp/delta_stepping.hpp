#pragma once
// Δ-stepping SSSP (Meyer & Sanders, J. Algorithms 2003).
//
// The paper's baseline: the state-of-the-art practical parallel SSSP and the
// only linear-space competitor for diameter approximation in the MapReduce
// setting (2·ecc(source) is a 2-approximation of the diameter).
//
// Tentative distances live in buckets of width Δ. The smallest nonempty
// bucket is repeatedly emptied with *light*-edge (w ≤ Δ) relaxation phases
// until it stabilizes, then all nodes settled in it relax their *heavy*
// edges once. Small Δ approaches Dijkstra (little work, many rounds); large
// Δ approaches Bellman–Ford (few rounds, much work).
//
// MR accounting (mr/stats.hpp): each light/heavy relaxation phase counts as
// one relaxation round, each bucket-selection scan as one auxiliary round;
// messages = relaxation requests, node updates = accepted improvements.

// With partition.num_partitions > 1 every relaxation phase runs as one BSP
// superstep on K shards (mr/bsp_engine.hpp): shard-internal relaxations are
// applied locally, cross-shard ones travel through the typed exchange, and
// the stats additionally report the cross-partition messages/bytes a real
// MR shuffle would pay. Distances are identical to the flat kernel (same
// min-reduction fixpoint per phase). With transport.kind == kProcess
// (mr/transport.hpp) the supersteps' compute phases additionally fan out
// over forked worker processes — still bit-identical, with the genuinely-
// crossed wire bytes reported on top (DESIGN.md §9).
//
// Frontier maintenance (improved-node sets, settled-set dedup, bucket and
// exchange scratch) runs on the adaptive sparse/dense engine and the
// RoundBuffers pool of core/frontier.hpp / DESIGN.md §7; repeated runs on
// one graph share an exec::Context (exec/context.hpp) so the Δ-presplit and
// the pools carry across sources.

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/frontier.hpp"
#include "exec/options.hpp"
#include "graph/graph.hpp"
#include "graph/split_csr.hpp"
#include "mr/exchange.hpp"
#include "mr/partition.hpp"
#include "mr/stats.hpp"

namespace gdiam::exec {
class Context;
}  // namespace gdiam::exec

namespace gdiam::sssp {

/// Δ-stepping knobs. The shared execution knobs — `frontier` (adaptive
/// sparse/dense engine + RoundBuffers pool; adaptive=false is the legacy
/// bit-identical baseline), `partition` (BSP shard layout; K <= 1 = flat
/// kernel) and `presplit` (Δ-presplit adjacency vs the branch-filter
/// baseline) — are inherited from exec::ExecOptions, the single definition
/// every gdiam kernel shares (DESIGN.md §8).
struct DeltaSteppingOptions : exec::ExecOptions {
  /// Bucket width; 0 selects the common heuristic Δ = avg edge weight.
  Weight delta = 0.0;
  /// Cap on light-phase iterations per bucket (safety valve; 0 = unlimited).
  std::uint64_t max_phases_per_bucket = 0;
  /// ρ-stepping batch target (sssp/rho_stepping.hpp): each step extracts the
  /// ~rho closest frontier nodes. Only read when `algorithm` (inherited from
  /// exec::ExecOptions) selects kRhoStepping; 0 picks max(1024, n/64).
  std::uint64_t rho = 0;
};

/// One cross-shard relaxation request: "lower dist of your node `target`
/// (destination-local id) to the order-encoded distance `bits`". Packed so
/// the exchange's sizeof-based byte accounting reports the 12 serialized
/// bytes, not 16 with padding.
struct [[gnu::packed]] DistProposal {
  NodeId target = 0;
  std::uint64_t bits = 0;
};
static_assert(sizeof(DistProposal) == 12);

/// Per-run pool of round-lifetime scratch: everything a Δ-stepping run
/// touches once per bucket or phase — tentative distances, cyclic bucket
/// slots, drained/settled/frontier lists, snapshot pairs, per-vertex stamps,
/// the adaptive improved-set Frontier and the partitioned exchange staging —
/// is allocated here once per run. Owned by an exec::Context and carried
/// across runs, steady-state runs allocate almost nothing.
struct RoundBuffers {
  core::Frontier improved;               // per-phase improved-node set
  std::vector<std::uint64_t> dist_bits;  // order-encoded tentative distances
  // Cyclic bucket array storage (slots + per-node queued markers).
  std::vector<std::vector<NodeId>> bucket_slots;
  std::vector<std::uint64_t> bucket_queued;
  // Per-bucket / per-phase node lists.
  std::vector<NodeId> drained;
  std::vector<NodeId> active;
  std::vector<NodeId> settled;
  std::vector<std::pair<NodeId, Weight>> snapshot;
  // Per-vertex stamps: settled-set dedup without sort+unique.
  std::vector<std::uint32_t> stamps;
  std::uint32_t stamp_round = 0;
  // Exchange scratch for the partitioned BSP backend.
  mr::Exchange<DistProposal> exchange;
  std::vector<std::vector<std::pair<NodeId, Weight>>> by_shard;
  std::vector<std::uint64_t> shard_messages;
  std::vector<std::uint64_t> shard_updates;
  std::vector<std::vector<NodeId>> shard_improved;
  std::vector<NodeId> changed;
  /// ρ-stepping threshold-selection scratch: the order-encoded distances of
  /// the sampled frontier nodes (sssp/rho_stepping.cpp).
  std::vector<std::uint64_t> sample_bits;
  /// Resident-worker (PoolTransport) input slot: the edge class of the
  /// current relaxation phase. Lives here — stable heap address — so a pool
  /// worker's frozen compute closure reads the value decode_input just
  /// shipped, not the stale fork-time copy of a stack variable.
  std::uint8_t pool_kind = 0;

  /// Rebinds the pool to an n-vertex run, keeping every buffer's capacity.
  void reset(NodeId n, const core::FrontierOptions& opts);

  /// Opens a fresh stamp generation (start of a bucket): every vertex reads
  /// as unstamped without touching the array.
  void new_stamp_round();
  /// First call per (v, generation) returns true — the stamp analogue of
  /// the settled sort+unique. Single-threaded contexts only.
  [[nodiscard]] bool stamp_once(NodeId v);
};

/// Result of one stepping-kernel run — shared by Δ-stepping and ρ-stepping
/// (both converge to the same exact-distance fixpoint; `algorithm_used`
/// records which kernel produced it).
struct DeltaSteppingResult {
  std::vector<Weight> dist;
  mr::RoundStats stats;
  NodeId farthest = kInvalidNode;  // reachable node with maximum distance
  Weight eccentricity = 0.0;
  exec::Algorithm algorithm_used = exec::Algorithm::kDeltaStepping;
  Weight delta_used = 0.0;  // Δ-stepping only (0 under ρ-stepping)
  /// ρ-stepping only: the batch target the run used (0 under Δ-stepping).
  std::uint64_t rho_used = 0;
  /// Outer steps: buckets emptied (Δ) or extract-relax steps (ρ).
  std::uint64_t buckets_processed = 0;
  /// Shards the run executed on (1 = flat shared-memory kernel).
  std::uint32_t partitions_used = 1;
  /// Worker processes the BSP compute phases fanned out over (1 = in-process
  /// LocalTransport; >1 only under TransportKind::kProcess).
  std::uint32_t processes_used = 1;
};

/// Parallel Δ-stepping from `source`. Distances are exact (same relaxation
/// fixpoint as Dijkstra); deterministic via atomic min-reduction. A non-null
/// `ctx` (exec/context.hpp) pools the RoundBuffers and the split/partition
/// caches across runs (results are identical with or without one).
[[nodiscard]] DeltaSteppingResult delta_stepping(
    const Graph& g, NodeId source, const DeltaSteppingOptions& opts = {},
    exec::Context* ctx = nullptr);

/// Diameter upper bound 2·ecc(source) plus the stats of the underlying run —
/// the SSSP-based approximation the paper compares against. Dispatches on
/// opts.algorithm, so the whole-run A/Bs (fig3/fig4) measure either kernel.
struct SsspDiameterApprox {
  Weight upper_bound = 0.0;   // 2 * eccentricity
  Weight eccentricity = 0.0;  // itself a lower bound on the diameter
  mr::RoundStats stats;
  Weight delta_used = 0.0;
  exec::Algorithm algorithm_used = exec::Algorithm::kDeltaStepping;
};

[[nodiscard]] SsspDiameterApprox diameter_two_approx(
    const Graph& g, NodeId source, const DeltaSteppingOptions& opts = {});

}  // namespace gdiam::sssp
