#pragma once
// Δ-stepping SSSP (Meyer & Sanders, J. Algorithms 2003).
//
// The paper's baseline: the state-of-the-art practical parallel SSSP and the
// only linear-space competitor for diameter approximation in the MapReduce
// setting (2·ecc(source) is a 2-approximation of the diameter).
//
// Tentative distances live in buckets of width Δ. The smallest nonempty
// bucket is repeatedly emptied with *light*-edge (w ≤ Δ) relaxation phases
// until it stabilizes, then all nodes settled in it relax their *heavy*
// edges once. Small Δ approaches Dijkstra (little work, many rounds); large
// Δ approaches Bellman–Ford (few rounds, much work).
//
// MR accounting (mr/stats.hpp): each light/heavy relaxation phase counts as
// one relaxation round, each bucket-selection scan as one auxiliary round;
// messages = relaxation requests, node updates = accepted improvements.

// With partition.num_partitions > 1 every relaxation phase runs as one BSP
// superstep on K shards (mr/bsp_engine.hpp): shard-internal relaxations are
// applied locally, cross-shard ones travel through the typed exchange, and
// the stats additionally report the cross-partition messages/bytes a real
// MR shuffle would pay. Distances are identical to the flat kernel (same
// min-reduction fixpoint per phase).
//
// Frontier maintenance (improved-node sets, settled-set dedup, bucket and
// exchange scratch) runs on the adaptive sparse/dense engine and the
// RoundBuffers pool of core/frontier.hpp / DESIGN.md §7; repeated runs on
// one graph share a DeltaSteppingContext so the Δ-presplit and the pools
// carry across sources.

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/frontier.hpp"
#include "graph/graph.hpp"
#include "graph/split_csr.hpp"
#include "mr/exchange.hpp"
#include "mr/partition.hpp"
#include "mr/stats.hpp"

namespace gdiam::sssp {

struct DeltaSteppingOptions {
  /// Bucket width; 0 selects the common heuristic Δ = avg edge weight.
  Weight delta = 0.0;
  /// Cap on light-phase iterations per bucket (safety valve; 0 = unlimited).
  std::uint64_t max_phases_per_bucket = 0;
  /// Relax over the Δ-presplit adjacency (graph/split_csr.hpp): one O(m)
  /// reorder up front, then every light/heavy phase iterates exactly its edge
  /// class with no per-edge weight branch and no double scan. `false` keeps
  /// the branch-filter loops over the original CSR — bit-identical results
  /// (the tests enforce it); it exists as the A/B baseline for
  /// bench/micro_kernels and costs one weight comparison per arc per phase.
  bool presplit = true;
  /// Adaptive sparse/dense frontier engine (core/frontier.hpp) for the
  /// per-phase improved-node sets, plus the RoundBuffers pool: bucket
  /// arrays, stamps and exchange scratch are allocated once per run instead
  /// of once per round, and the settled-set dedup is stamp-based instead of
  /// sort+unique. `frontier.adaptive = false` keeps the legacy full
  /// gather/sort path — bit-identical distances and counters (enforced by
  /// tests/test_frontier.cpp); it exists as the A/B baseline.
  core::FrontierOptions frontier;
  /// Shard layout for the partitioned BSP backend; num_partitions <= 1
  /// selects the flat shared-memory kernel.
  mr::PartitionOptions partition;
};

/// One cross-shard relaxation request: "lower dist of your node `target`
/// (destination-local id) to the order-encoded distance `bits`". Packed so
/// the exchange's sizeof-based byte accounting reports the 12 serialized
/// bytes, not 16 with padding.
struct [[gnu::packed]] DistProposal {
  NodeId target = 0;
  std::uint64_t bits = 0;
};
static_assert(sizeof(DistProposal) == 12);

/// Per-run pool of round-lifetime scratch: everything a Δ-stepping run
/// touches once per bucket or phase — tentative distances, cyclic bucket
/// slots, drained/settled/frontier lists, snapshot pairs, per-vertex stamps,
/// the adaptive improved-set Frontier and the partitioned exchange staging —
/// is allocated here once per run. Passed across runs through a
/// DeltaSteppingContext, steady-state runs allocate almost nothing.
struct RoundBuffers {
  core::Frontier improved;               // per-phase improved-node set
  std::vector<std::uint64_t> dist_bits;  // order-encoded tentative distances
  // Cyclic bucket array storage (slots + per-node queued markers).
  std::vector<std::vector<NodeId>> bucket_slots;
  std::vector<std::uint64_t> bucket_queued;
  // Per-bucket / per-phase node lists.
  std::vector<NodeId> drained;
  std::vector<NodeId> active;
  std::vector<NodeId> settled;
  std::vector<std::pair<NodeId, Weight>> snapshot;
  // Per-vertex stamps: settled-set dedup without sort+unique.
  std::vector<std::uint32_t> stamps;
  std::uint32_t stamp_round = 0;
  // Exchange scratch for the partitioned BSP backend.
  mr::Exchange<DistProposal> exchange;
  std::vector<std::vector<std::pair<NodeId, Weight>>> by_shard;
  std::vector<std::uint64_t> shard_messages;
  std::vector<std::uint64_t> shard_updates;
  std::vector<std::vector<NodeId>> shard_improved;
  std::vector<NodeId> changed;

  /// Rebinds the pool to an n-vertex run, keeping every buffer's capacity.
  void reset(NodeId n, const core::FrontierOptions& opts);

  /// Opens a fresh stamp generation (start of a bucket): every vertex reads
  /// as unstamped without touching the array.
  void new_stamp_round();
  /// First call per (v, generation) returns true — the stamp analogue of
  /// the settled sort+unique. Single-threaded contexts only.
  [[nodiscard]] bool stamp_once(NodeId v);
};

/// Reusable cross-run state for repeated Δ-stepping on the same graph (the
/// iterated sweep in sssp/sweep.cpp, multi-source benches): the RoundBuffers
/// pool plus caches of the Δ-presplit adjacency and the shard layout, keyed
/// by (graph, Δ) / (graph, partition options), so equal-Δ repetitions reuse
/// one SplitCsr instead of re-presplitting per source. Lifetime contract:
/// a graph passed alongside a context must outlive it unchanged (the same
/// contract as holding a Graph&); the structural (n, arcs) cache key only
/// guards against the common reallocation accidents, not mutation.
class DeltaSteppingContext {
 public:
  DeltaSteppingContext() = default;
  DeltaSteppingContext(const DeltaSteppingContext&) = delete;
  DeltaSteppingContext& operator=(const DeltaSteppingContext&) = delete;

  RoundBuffers buffers;

  /// Cached graph-level split for (g, delta); rebuilt only when stale.
  const SplitCsr& split_for(const Graph& g, Weight delta);
  /// Cached shard layout for (g, opts); rebuilt only when stale.
  const mr::Partition& partition_for(const Graph& g,
                                     const mr::PartitionOptions& opts);
  /// Cached per-shard splits for (partition_for(g, opts), delta).
  const std::vector<CsrSplit>& shard_splits_for(const mr::Partition& part,
                                                Weight delta);

 private:
  // Caches are keyed by graph pointer *and* (n, arcs) so a different graph
  // reallocated at a stale address rebuilds instead of reusing stale data.
  const Graph* split_graph_ = nullptr;
  NodeId split_nodes_ = 0;
  EdgeIndex split_arcs_ = 0;
  Weight split_delta_ = -1.0;
  SplitCsr split_;
  const Graph* part_graph_ = nullptr;
  NodeId part_nodes_ = 0;
  EdgeIndex part_arcs_ = 0;
  mr::PartitionOptions part_opts_;
  std::unique_ptr<mr::Partition> part_;
  const mr::Partition* shard_split_part_ = nullptr;
  Weight shard_split_delta_ = -1.0;
  std::vector<CsrSplit> shard_splits_;
};

struct DeltaSteppingResult {
  std::vector<Weight> dist;
  mr::RoundStats stats;
  NodeId farthest = kInvalidNode;  // reachable node with maximum distance
  Weight eccentricity = 0.0;
  Weight delta_used = 0.0;
  std::uint64_t buckets_processed = 0;
  /// Shards the run executed on (1 = flat shared-memory kernel).
  std::uint32_t partitions_used = 1;
};

/// Parallel Δ-stepping from `source`. Distances are exact (same relaxation
/// fixpoint as Dijkstra); deterministic via atomic min-reduction. A non-null
/// `ctx` pools RoundBuffers and the split/partition caches across runs
/// (results are identical with or without one).
[[nodiscard]] DeltaSteppingResult delta_stepping(
    const Graph& g, NodeId source, const DeltaSteppingOptions& opts = {},
    DeltaSteppingContext* ctx = nullptr);

/// Diameter upper bound 2·ecc(source) plus the stats of the underlying run —
/// the SSSP-based approximation the paper compares against.
struct SsspDiameterApprox {
  Weight upper_bound = 0.0;   // 2 * eccentricity
  Weight eccentricity = 0.0;  // itself a lower bound on the diameter
  mr::RoundStats stats;
  Weight delta_used = 0.0;
};

[[nodiscard]] SsspDiameterApprox diameter_two_approx(
    const Graph& g, NodeId source, const DeltaSteppingOptions& opts = {});

}  // namespace gdiam::sssp
