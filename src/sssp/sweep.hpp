#pragma once
// Iterated-sweep diameter lower bound.
//
// The paper's ground-truth methodology (Table 2 caption): "a lower bound to
// the true diameter computed by running the sequential SSSP algorithm
// multiple times, each time starting from the farthest node reached by the
// previous run." On disconnected graphs sweeps stay within the start node's
// component; callers analyzing the giant component should extract it first
// (graph/components.hpp).
//
// Two SSSP kernels serve the sweep: sequential Dijkstra (the default, the
// paper's methodology verbatim) and parallel Δ-stepping. Both are exact, so
// they visit the same source sequence and return the same bound; Δ-stepping
// sweeps share one exec::Context, which means one SplitCsr presplit and one
// RoundBuffers pool across every equal-Δ repetition instead of
// re-presplitting and re-allocating per source (DESIGN.md §7–8).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mr/stats.hpp"
#include "sssp/delta_stepping.hpp"

namespace gdiam::sssp {

struct SweepOptions {
  /// Sweep budget; the iteration also stops early on a farthest-pair cycle.
  unsigned max_sweeps = 8;
  /// Seed for the pseudo-random start node (used when seed_node is invalid).
  std::uint64_t seed = 1;
  /// Explicit start node; kInvalidNode derives one from `seed`.
  NodeId seed_node = kInvalidNode;
  /// false — sequential Dijkstra per sweep (the paper's methodology);
  /// true — the parallel stepping kernel selected by `delta.algorithm`
  /// (Δ-stepping or ρ-stepping, sssp/rho_stepping.hpp) with a shared
  /// context: the Δ-presplit adjacency is built once for the whole sweep
  /// sequence (equal Δ; ρ-stepping leaves it untouched but still shares the
  /// RoundBuffers pool), so repetitions allocate almost nothing.
  bool use_delta_stepping = false;
  /// Stepping-kernel configuration (use_delta_stepping only); `algorithm`
  /// and `rho` ride along for the ρ-stepping kernel.
  DeltaSteppingOptions delta;
};

struct SweepResult {
  /// Best (largest) eccentricity found — a lower bound on the diameter.
  Weight lower_bound = 0.0;
  /// Sources visited, in order (first is the seed node).
  std::vector<NodeId> sources;
  /// Eccentricity measured from each source.
  std::vector<Weight> eccentricities;
  /// MR cost of the Δ-stepping sweeps (all-zero for the Dijkstra kernel,
  /// which is sequential and outside the MR accounting).
  mr::RoundStats stats;
};

/// Runs up to `opts.max_sweeps` SSSP sweeps starting from `opts.seed_node`
/// (kInvalidNode = pseudo-random node derived from `opts.seed`). Stops early
/// when the frontier node repeats (a 2-cycle of farthest pairs). A non-null
/// `ctx` is used by the Δ-stepping kernel's cross-sweep pooling (a local one
/// serves otherwise; results are identical either way).
[[nodiscard]] SweepResult diameter_lower_bound(const Graph& g,
                                               const SweepOptions& opts,
                                               exec::Context* ctx = nullptr);

/// Dijkstra-kernel convenience overload (the original API).
[[nodiscard]] SweepResult diameter_lower_bound(const Graph& g,
                                               unsigned max_sweeps,
                                               std::uint64_t seed = 1,
                                               NodeId seed_node = kInvalidNode);

}  // namespace gdiam::sssp
