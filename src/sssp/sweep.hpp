#pragma once
// Iterated-sweep diameter lower bound.
//
// The paper's ground-truth methodology (Table 2 caption): "a lower bound to
// the true diameter computed by running the sequential SSSP algorithm
// multiple times, each time starting from the farthest node reached by the
// previous run." On disconnected graphs sweeps stay within the start node's
// component; callers analyzing the giant component should extract it first
// (graph/components.hpp).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace gdiam::sssp {

struct SweepResult {
  /// Best (largest) eccentricity found — a lower bound on the diameter.
  Weight lower_bound = 0.0;
  /// Sources visited, in order (first is the seed node).
  std::vector<NodeId> sources;
  /// Eccentricity measured from each source.
  std::vector<Weight> eccentricities;
};

/// Runs up to `max_sweeps` Dijkstra sweeps starting from `seed_node`
/// (kInvalidNode = pseudo-random node derived from `seed`). Stops early when
/// the frontier node repeats (a 2-cycle of farthest pairs).
[[nodiscard]] SweepResult diameter_lower_bound(const Graph& g,
                                               unsigned max_sweeps,
                                               std::uint64_t seed = 1,
                                               NodeId seed_node = kInvalidNode);

}  // namespace gdiam::sssp
