#include "sssp/rho_stepping.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>

#include "exec/context.hpp"
#include "mr/bsp_engine.hpp"
#include "util/bitpack.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace gdiam::sssp {

namespace {

/// Per-vertex hash for the threshold sample: a pure function of
/// (seed, step, v), so membership in the sample is determined by the
/// frontier *set* — never by the materialized list order, which for sparse
/// collections depends on thread interleaving.
[[nodiscard]] std::uint64_t sample_hash(std::uint64_t seed, std::uint64_t step,
                                        NodeId v) noexcept {
  return util::SplitMix64(seed ^ (step * 0xbf58476d1ce4e5b9ULL) ^
                          (static_cast<std::uint64_t>(v) *
                           0x94d049bb133111ebULL))
      .next();
}

}  // namespace

DeltaSteppingResult rho_stepping(const Graph& g, NodeId source,
                                 const DeltaSteppingOptions& opts,
                                 exec::Context* ctx) {
  const NodeId n = g.num_nodes();
  if (source >= n) throw std::out_of_range("rho_stepping: bad source");

  exec::Context local_ctx;
  exec::Context& C = ctx != nullptr ? *ctx : local_ctx;
  RoundBuffers& rb = C.round_buffers();
  const bool adaptive = opts.frontier.adaptive;
  rb.reset(n, opts.frontier);

  DeltaSteppingResult out;
  out.algorithm_used = exec::Algorithm::kRhoStepping;
  // Auto batch target: big enough to feed every thread per step, small
  // enough that a step's wavefront stays distance-coherent (DESIGN.md §11).
  const std::uint64_t rho =
      opts.rho > 0 ? opts.rho : std::max<std::uint64_t>(1024, n / 64);
  out.rho_used = rho;
  const std::uint64_t probes =
      opts.frontier.size_probes == 0 ? 1 : opts.frontier.size_probes;
  const std::uint64_t seed = opts.frontier.sample_seed;

  std::vector<std::uint64_t>& dist_bits = rb.dist_bits;
  dist_bits.assign(n, util::kInfDoubleBits);
  dist_bits[source] = util::double_order_bits(0.0);
  auto dist_of = [&](NodeId v) {
    return util::double_from_order_bits(
        std::atomic_ref<std::uint64_t>(dist_bits[v])
            .load(std::memory_order_relaxed));
  };

  // The frontier is an explicit list plus a per-vertex membership marker
  // (the pooled bucket_queued array, unused by this kernel otherwise):
  // far nodes persist across steps, improved nodes enter exactly once.
  std::vector<NodeId>& frontier = rb.active;
  std::vector<std::uint64_t>& in_frontier = rb.bucket_queued;
  in_frontier.assign(n, 0);
  frontier.clear();
  frontier.push_back(source);
  in_frontier[source] = 1;

  // adaptive=false baseline: the legacy improved-set machinery (per-thread
  // gather buffers + one byte flag per node), exactly as in delta_stepping.
  util::ThreadBuffers<NodeId> improved;
  std::vector<std::uint8_t> in_improved;
  std::vector<NodeId> baseline_changed;
  if (!adaptive) in_improved.assign(n, 0);

  // Partitioned BSP backend — identical setup to delta_stepping: cached
  // shard layout, pluggable transport, pooled exchange staging.
  const mr::Partition* part = nullptr;
  std::unique_ptr<mr::Transport> transport;
  std::unique_ptr<mr::BspEngine> bsp;
  if (opts.partition.num_partitions > 1 && n > 0) {
    part = &C.partition_for(g, opts.partition);
    // NUMA placement, identical to delta_stepping: the transport binds
    // compute by the plan, the exchange classifies cross-node traffic by it.
    mr::PlacementPlan plan =
        mr::resolve_placement(opts.placement, part->num_partitions());
    transport = mr::Launcher::make_transport(
        opts.transport, part->num_partitions(), plan);
    bsp = std::make_unique<mr::BspEngine>(*part, transport.get());
    const std::uint32_t k = part->num_partitions();
    if (rb.exchange.num_partitions() != k) {
      rb.exchange.resize(k);
      rb.by_shard.assign(k, {});
      rb.shard_improved.assign(k, {});
    } else {
      rb.exchange.clear();
    }
    rb.exchange.set_node_map(plan.node_of_shard());
    rb.shard_messages.assign(k, 0);
    rb.shard_updates.assign(k, 0);
    out.partitions_used = k;
    out.processes_used = transport->processes();
  }
  const bool remote = bsp != nullptr && bsp->remote_compute();
  const bool resident = bsp != nullptr && bsp->resident_compute();
  mr::StepInputCodec pool_codec;
  if (resident) {
    // Input frame, per shard: [u8 pad][(NodeId, Weight) pairs...]. ρ-stepping
    // has no edge-class byte (it always relaxes a node's full adjacency), but
    // the pad keeps the frame nonempty even for an empty batch: the pool
    // skips decode_input on zero-length frames, and a skipped decode would
    // leave the resident worker re-relaxing its previous step's pairs.
    pool_codec.encode = [&rb](mr::ShardId s, std::vector<std::byte>& buf) {
      buf.push_back(std::byte{0});
      const auto& pairs = rb.by_shard[s];
      const auto* p = reinterpret_cast<const std::byte*>(pairs.data());
      buf.insert(buf.end(), p, p + pairs.size() * sizeof(pairs[0]));
    };
    pool_codec.decode = [&rb](mr::ShardId s, const std::byte* p,
                              std::size_t len) {
      ++p;
      --len;
      auto& pairs = rb.by_shard[s];
      pairs.resize(len / sizeof(pairs[0]));
      if (len != 0) std::memcpy(pairs.data(), p, len);
    };
  }

  // Relax ALL edges out of `batch` (distances snapshotted at phase start, so
  // the phase is one synchronous round); returns the distinct improved nodes.
  auto relax_flat =
      [&](const std::vector<std::pair<NodeId, Weight>>& batch)
      -> const std::vector<NodeId>& {
    std::uint64_t messages = 0, updates = 0;
#pragma omp parallel for schedule(dynamic, 64) reduction(+ : messages, updates)
    for (std::size_t f = 0; f < batch.size(); ++f) {
      const auto [u, du] = batch[f];
      const std::span<const NodeId> nbr = g.neighbors(u);
      const std::span<const Weight> wts = g.weights(u);
      for (std::size_t i = 0; i < nbr.size(); ++i) {
        ++messages;
        const std::uint64_t nd = util::double_order_bits(du + wts[i]);
        if (util::atomic_fetch_min(dist_bits[nbr[i]], nd)) {
          bool first;
          if (adaptive) {
            first = rb.improved.insert(nbr[i]);
          } else {
            std::atomic_ref<std::uint8_t> flag(in_improved[nbr[i]]);
            first = flag.exchange(1, std::memory_order_relaxed) == 0;
          }
          if (first) {
            ++updates;
            if (!adaptive) improved.local().push_back(nbr[i]);
          }
        }
      }
    }
    out.stats.messages += messages;
    out.stats.node_updates += updates;
    if (adaptive) {
      rb.improved.advance();
      return rb.improved.nodes();
    }
    baseline_changed = improved.gather();
    for (const NodeId v : baseline_changed) in_improved[v] = 0;
    return baseline_changed;
  };

  // Same phase as one BSP superstep, mirroring delta_stepping's relax_bsp
  // minus the edge-class split: each shard relaxes the batch nodes it owns
  // over its full shard CSR, lowers owned targets directly (loopback under a
  // remote transport) and ships ghosts through the exchange.
  auto relax_bsp = [&](const std::vector<std::pair<NodeId, Weight>>& batch)
      -> const std::vector<NodeId>& {
    const std::uint32_t k = part->num_partitions();
    for (std::uint32_t s = 0; s < k; ++s) {
      rb.by_shard[s].clear();
      rb.shard_messages[s] = 0;
      rb.shard_updates[s] = 0;
      if (!adaptive) rb.shard_improved[s].clear();
    }
    for (const auto& e : batch) {
      rb.by_shard[part->owner(e.first)].push_back(e);
    }

    auto lower = [&](mr::ShardId s, NodeId v, std::uint64_t nd) {
      if (nd < dist_bits[v]) {
        dist_bits[v] = nd;
        bool first;
        if (adaptive) {
          first = rb.improved.insert_serial(v);
        } else {
          first = in_improved[v] == 0;
          if (first) in_improved[v] = 1;
        }
        if (first) {
          rb.shard_updates[s]++;
          if (!adaptive) rb.shard_improved[s].push_back(v);
        }
      }
    };

    auto compute = [&](const mr::Shard& sh, mr::Exchange<DistProposal>& ex) {
      std::uint64_t messages = 0;
      for (const auto& [u, du] : rb.by_shard[sh.id]) {
        const NodeId l = part->local_id(u);
        const EdgeIndex lo = sh.offsets[l];
        const EdgeIndex hi = sh.offsets[l + 1];
        for (EdgeIndex i = lo; i < hi; ++i) {
          ++messages;
          const std::uint64_t nd =
              util::double_order_bits(du + sh.weights[i]);
          const NodeId tl = sh.targets[i];
          const NodeId v = sh.global_of_local[tl];
          if (!sh.is_ghost(tl)) {
            if (remote) {
              ex.loopback(sh.id, DistProposal{tl, nd});
            } else {
              lower(sh.id, v, nd);
            }
          } else {
            ex.send(sh.id, sh.ghost_owner[tl - sh.num_owned],
                    DistProposal{part->local_id(v), nd});
          }
        }
      }
      rb.shard_messages[sh.id] = messages;
    };
    auto apply = [&](const mr::Shard& sh,
                     std::span<const DistProposal> inbox) {
      for (const DistProposal& m : inbox) {
        lower(sh.id, sh.global_of_local[m.target], m.bits);
      }
    };
    bsp->superstep(rb.exchange, compute, apply, &out.stats,
                   std::span<std::uint64_t>(rb.shard_messages.data(), k),
                   resident ? &pool_codec : nullptr);

    for (std::uint32_t s = 0; s < k; ++s) {
      out.stats.messages += rb.shard_messages[s];
      out.stats.node_updates += rb.shard_updates[s];
    }
    if (adaptive) {
      rb.improved.advance();
      return rb.improved.nodes();
    }
    rb.changed.clear();
    for (std::uint32_t s = 0; s < k; ++s) {
      rb.changed.insert(rb.changed.end(), rb.shard_improved[s].begin(),
                        rb.shard_improved[s].end());
    }
    for (const NodeId v : rb.changed) in_improved[v] = 0;
    return rb.changed;
  };

  auto relax = [&](const std::vector<std::pair<NodeId, Weight>>& batch)
      -> const std::vector<NodeId>& {
    out.stats.relaxation_rounds++;
    const auto& changed =
        part != nullptr ? relax_bsp(batch) : relax_flat(batch);
    if (adaptive) {
      if (rb.improved.current_mode() == core::FrontierMode::kDense) {
        out.stats.dense_rounds++;
      } else {
        out.stats.sparse_rounds++;
      }
    }
    return changed;
  };
  auto snapshot = [&](const std::vector<NodeId>& nodes)
      -> const std::vector<std::pair<NodeId, Weight>>& {
    rb.snapshot.clear();
    rb.snapshot.reserve(nodes.size());
    for (const NodeId v : nodes) rb.snapshot.emplace_back(v, dist_of(v));
    return rb.snapshot;
  };

  // θ for this step, as an order-encoded distance: the ρ/|F| quantile of a
  // ~`probes`-node hash-inclusion sample of the frontier's tentative
  // distances. θ is always one of the sampled (i.e. actual frontier)
  // distances, so the extracted near set is never empty.
  auto pick_threshold = [&](std::uint64_t step) -> std::uint64_t {
    std::vector<std::uint64_t>& sample = rb.sample_bits;
    sample.clear();
    const std::uint64_t fsize = frontier.size();
    if (fsize <= probes) {
      for (const NodeId v : frontier) sample.push_back(dist_bits[v]);
    } else {
      // Include v with probability probes/|F|: hash < probes·(2^64/|F|).
      const std::uint64_t cut = static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(probes) << 64) / fsize);
      for (const NodeId v : frontier) {
        if (sample_hash(seed, step, v) < cut) sample.push_back(dist_bits[v]);
      }
      if (sample.empty()) return ~0ULL;  // astronomically unlikely: take all
    }
    std::sort(sample.begin(), sample.end());
    const auto rank = static_cast<std::size_t>(
        (static_cast<unsigned __int128>(rho) * sample.size()) / fsize);
    return sample[std::min(rank, sample.size() - 1)];
  };

  while (!frontier.empty()) {
    // Threshold selection = one scan over the frontier (one MR round),
    // mirroring Δ-stepping's bucket-selection accounting.
    out.stats.auxiliary_rounds++;
    const std::uint64_t theta =
        frontier.size() <= rho ? ~0ULL : pick_threshold(out.buckets_processed);

    // Extract the near set (dist ≤ θ, compared in order-bit space); far
    // nodes keep their frontier slot and marker.
    rb.drained.clear();
    std::size_t keep = 0;
    for (const NodeId v : frontier) {
      if (dist_bits[v] <= theta) {
        in_frontier[v] = 0;
        rb.drained.push_back(v);
      } else {
        frontier[keep++] = v;
      }
    }
    frontier.resize(keep);

    const auto& changed = relax(snapshot(rb.drained));
    for (const NodeId v : changed) {
      if (in_frontier[v] == 0) {
        in_frontier[v] = 1;
        frontier.push_back(v);
      }
    }
    out.buckets_processed++;
  }

  out.dist.resize(n);
  Weight ecc = 0.0;
  NodeId far = source;
  for (NodeId u = 0; u < n; ++u) {
    out.dist[u] = util::double_from_order_bits(dist_bits[u]);
    if (out.dist[u] != kInfiniteWeight && out.dist[u] > ecc) {
      ecc = out.dist[u];
      far = u;
    }
  }
  out.eccentricity = ecc;
  out.farthest = far;
  return out;
}

DeltaSteppingResult shortest_paths(const Graph& g, NodeId source,
                                   const DeltaSteppingOptions& opts,
                                   exec::Context* ctx) {
  return opts.algorithm == exec::Algorithm::kRhoStepping
             ? rho_stepping(g, source, opts, ctx)
             : delta_stepping(g, source, opts, ctx);
}

}  // namespace gdiam::sssp
