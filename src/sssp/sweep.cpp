#include "sssp/sweep.hpp"

#include <algorithm>

#include "exec/context.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/rho_stepping.hpp"
#include "util/rng.hpp"

namespace gdiam::sssp {

SweepResult diameter_lower_bound(const Graph& g, const SweepOptions& opts,
                                 exec::Context* ctx) {
  SweepResult out;
  const NodeId n = g.num_nodes();
  if (n == 0 || opts.max_sweeps == 0) return out;

  NodeId source = opts.seed_node;
  if (source == kInvalidNode) {
    util::Xoshiro256 rng(opts.seed);
    source = static_cast<NodeId>(rng.next_bounded(n));
  }

  // One context for the whole sweep sequence: every repetition runs with the
  // same Δ, so the SplitCsr (and, for K > 1, the partition and its shard
  // splits) is built exactly once, and the RoundBuffers pool is reused.
  exec::Context local_ctx;
  exec::Context& C = ctx != nullptr ? *ctx : local_ctx;

  for (unsigned s = 0; s < opts.max_sweeps; ++s) {
    // The farthest node of the previous sweep becomes the next source
    // (paper's iterated-sweep heuristic).
    if (std::find(out.sources.begin(), out.sources.end(), source) !=
        out.sources.end()) {
      break;  // cycle of farthest pairs: no further improvement possible
    }
    Weight ecc = 0.0;
    NodeId farthest = source;
    if (opts.use_delta_stepping) {
      // Dispatches on opts.delta.algorithm, so the sweep runs either
      // stepping kernel; both share C's layout caches and scratch pool.
      const DeltaSteppingResult r =
          shortest_paths(g, source, opts.delta, &C);
      ecc = r.eccentricity;
      farthest = r.farthest;
      out.stats += r.stats;
    } else {
      const SsspResult r = dijkstra(g, source);
      ecc = r.eccentricity;
      farthest = r.farthest;
    }
    out.sources.push_back(source);
    out.eccentricities.push_back(ecc);
    out.lower_bound = std::max(out.lower_bound, ecc);
    source = farthest;
  }
  return out;
}

SweepResult diameter_lower_bound(const Graph& g, unsigned max_sweeps,
                                 std::uint64_t seed, NodeId seed_node) {
  SweepOptions opts;
  opts.max_sweeps = max_sweeps;
  opts.seed = seed;
  opts.seed_node = seed_node;
  return diameter_lower_bound(g, opts);
}

}  // namespace gdiam::sssp
