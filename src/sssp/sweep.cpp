#include "sssp/sweep.hpp"

#include <algorithm>

#include "sssp/dijkstra.hpp"
#include "util/rng.hpp"

namespace gdiam::sssp {

SweepResult diameter_lower_bound(const Graph& g, unsigned max_sweeps,
                                 std::uint64_t seed, NodeId seed_node) {
  SweepResult out;
  const NodeId n = g.num_nodes();
  if (n == 0 || max_sweeps == 0) return out;

  NodeId source = seed_node;
  if (source == kInvalidNode) {
    util::Xoshiro256 rng(seed);
    source = static_cast<NodeId>(rng.next_bounded(n));
  }

  for (unsigned s = 0; s < max_sweeps; ++s) {
    // The farthest node of the previous sweep becomes the next source
    // (paper's iterated-sweep heuristic).
    if (std::find(out.sources.begin(), out.sources.end(), source) !=
        out.sources.end()) {
      break;  // cycle of farthest pairs: no further improvement possible
    }
    const SsspResult r = dijkstra(g, source);
    out.sources.push_back(source);
    out.eccentricities.push_back(r.eccentricity);
    out.lower_bound = std::max(out.lower_bound, r.eccentricity);
    source = r.farthest;
  }
  return out;
}

}  // namespace gdiam::sssp
