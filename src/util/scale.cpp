#include "util/scale.hpp"

#include <cstdlib>
#include <stdexcept>

namespace gdiam::util {

Scale parse_scale(const std::string& name) {
  if (name == "ci") return Scale::kCi;
  if (name == "small") return Scale::kSmall;
  if (name == "paper") return Scale::kPaper;
  throw std::invalid_argument("unknown scale '" + name +
                              "' (expected ci|small|paper)");
}

const char* scale_name(Scale s) noexcept {
  switch (s) {
    case Scale::kSmall: return "small";
    case Scale::kPaper: return "paper";
    case Scale::kCi:
    default: return "ci";
  }
}

Scale scale_from_env() {
  const char* env = std::getenv("GDIAM_SCALE");
  if (env == nullptr || *env == '\0') return Scale::kCi;
  return parse_scale(env);
}

}  // namespace gdiam::util
