#pragma once
// Minimal command-line flag parsing for benches and examples.
//
// Supports `--name=value`, `--name value` and boolean `--name` forms; the
// harness binaries use it so every experiment is re-runnable with tweaked
// parameters without recompiling.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gdiam::util {

class Options {
 public:
  Options() = default;

  /// Parses argv; throws std::invalid_argument on malformed flags.
  Options(int argc, const char* const* argv);

  /// True when the flag was present (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       std::string fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  /// get_int narrowed to u32 with a range check — for count-like flags such
  /// as --partitions; throws std::invalid_argument on negative or oversized
  /// values instead of silently truncating.
  [[nodiscard]] std::uint32_t get_uint32(const std::string& name,
                                         std::uint32_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// For tests: inject a flag programmatically.
  void set(const std::string& name, std::string value);

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace gdiam::util
