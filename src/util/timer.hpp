#pragma once
// Wall-clock timing for benches and examples.

#include <chrono>
#include <string>

namespace gdiam::util {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() noexcept { reset(); }

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Formats a duration like "1.24 s" / "380 ms" / "42 µs" for human output.
[[nodiscard]] std::string format_duration(double seconds);

}  // namespace gdiam::util
