#include "util/options.hpp"

#include <limits>
#include <stdexcept>

namespace gdiam::util {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    if (arg.empty()) throw std::invalid_argument("bare '--' flag");
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "";  // boolean flag
    }
  }
}

bool Options::has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string Options::get_string(const std::string& name,
                                std::string fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? std::move(fallback) : it->second;
}

std::int64_t Options::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  return std::stoll(it->second);
}

std::uint32_t Options::get_uint32(const std::string& name,
                                  std::uint32_t fallback) const {
  const std::int64_t v = get_int(name, static_cast<std::int64_t>(fallback));
  if (v < 0 || v > static_cast<std::int64_t>(
                      std::numeric_limits<std::uint32_t>::max())) {
    throw std::invalid_argument("flag --" + name + " out of range");
  }
  return static_cast<std::uint32_t>(v);
}

double Options::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  return std::stod(it->second);
}

bool Options::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  if (it->second == "false" || it->second == "0") return false;
  throw std::invalid_argument("boolean flag --" + name + "=" + it->second);
}

void Options::set(const std::string& name, std::string value) {
  flags_[name] = std::move(value);
}

}  // namespace gdiam::util
