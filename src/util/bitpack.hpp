#pragma once
// Order-preserving bit encodings of floating-point distances.
//
// The parallel relaxation kernels in gdiam resolve write conflicts with a
// single atomic min on an unsigned integer. For that to implement "smallest
// distance wins" the encoding must be monotone: d1 < d2 (as non-negative
// floats) implies bits(d1) < bits(d2) (as unsigned integers). For IEEE-754
// values that are non-negative (including +inf) the raw bit pattern already
// has this property, which is all we need since distances are never negative.

#include <bit>
#include <cstdint>
#include <limits>

namespace gdiam::util {

/// Monotone encoding of a non-negative float. +inf maps above every finite
/// value; NaN must not be passed (debug-checked by callers).
[[nodiscard]] constexpr std::uint32_t float_order_bits(float v) noexcept {
  return std::bit_cast<std::uint32_t>(v);
}

[[nodiscard]] constexpr float float_from_order_bits(std::uint32_t b) noexcept {
  return std::bit_cast<float>(b);
}

/// Monotone encoding of a non-negative double (for Δ-stepping's full-precision
/// tentative distances).
[[nodiscard]] constexpr std::uint64_t double_order_bits(double v) noexcept {
  return std::bit_cast<std::uint64_t>(v);
}

[[nodiscard]] constexpr double double_from_order_bits(std::uint64_t b) noexcept {
  return std::bit_cast<double>(b);
}

inline constexpr std::uint64_t kInfDoubleBits =
    double_order_bits(std::numeric_limits<double>::infinity());
inline constexpr std::uint32_t kInfFloatBits =
    float_order_bits(std::numeric_limits<float>::infinity());

}  // namespace gdiam::util
