#pragma once
// Thin OpenMP helpers shared by all parallel kernels.
//
// gdiam uses OpenMP for shared-memory parallelism (the stand-in for the
// paper's Spark executors; see DESIGN.md §2). Everything here is
// deterministic: reductions are order-independent (atomic min over packed
// integers, or per-thread buffers concatenated in thread-id order).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include <omp.h>

namespace gdiam::util {

/// Number of OpenMP threads a parallel region will use right now.
[[nodiscard]] int num_threads() noexcept;

/// Sets the OpenMP thread count for subsequent parallel regions
/// (used by the Figure 4 scalability bench). Returns the previous value.
int set_num_threads(int t) noexcept;

/// Atomically lowers `slot` to `value` if `value` is smaller.
/// Returns true when the store happened (i.e. this call won).
/// Pure min-reduction: the final value of `slot` is independent of the
/// interleaving of concurrent callers.
inline bool atomic_fetch_min(std::uint64_t& slot, std::uint64_t value) noexcept {
  std::atomic_ref<std::uint64_t> ref(slot);
  std::uint64_t cur = ref.load(std::memory_order_relaxed);
  while (value < cur) {
    if (ref.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Atomically raises `slot` to `value` if `value` is larger; the max-reduction
/// dual of atomic_fetch_min (used for cluster radii over order-encoded
/// doubles, see util/bitpack.hpp). Returns true when the store happened.
inline bool atomic_fetch_max(std::uint64_t& slot, std::uint64_t value) noexcept {
  std::atomic_ref<std::uint64_t> ref(slot);
  std::uint64_t cur = ref.load(std::memory_order_relaxed);
  while (value > cur) {
    if (ref.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Per-thread append buffers that concatenate deterministically
/// (in thread-id order) into one vector. Used to collect frontier nodes and
/// relaxation requests from parallel loops without locks.
template <typename T>
class ThreadBuffers {
 public:
  ThreadBuffers() : buffers_(static_cast<std::size_t>(omp_get_max_threads())) {}

  /// Buffer of the calling thread (must be inside a parallel region or
  /// thread 0 otherwise).
  std::vector<T>& local() noexcept {
    return buffers_[static_cast<std::size_t>(omp_get_thread_num())];
  }

  /// Concatenate all thread buffers in thread-id order and clear them.
  std::vector<T> gather() {
    std::size_t total = 0;
    for (const auto& b : buffers_) total += b.size();
    std::vector<T> out;
    out.reserve(total);
    for (auto& b : buffers_) {
      out.insert(out.end(), b.begin(), b.end());
      b.clear();
    }
    return out;
  }

  /// Total elements currently buffered.
  [[nodiscard]] std::size_t size() const noexcept {
    std::size_t total = 0;
    for (const auto& b : buffers_) total += b.size();
    return total;
  }

  void clear() noexcept {
    for (auto& b : buffers_) b.clear();
  }

 private:
  std::vector<std::vector<T>> buffers_;
};

}  // namespace gdiam::util
