#pragma once
// Experiment scale presets.
//
// The paper runs on a 16-node cluster with billion-edge graphs; this repo's
// CI box is far smaller, so every bench supports three presets that keep the
// paper's *relative* comparisons intact (see DESIGN.md §2):
//   ci    — seconds per experiment (default)
//   small — tens of seconds, closer topology sizes
//   paper — the paper's parameters where feasible (may take hours)
// Selected with the GDIAM_SCALE environment variable or a --scale flag.

#include <cstdint>
#include <string>

namespace gdiam::util {

enum class Scale { kCi, kSmall, kPaper };

/// Parses "ci" / "small" / "paper" (throws std::invalid_argument otherwise).
[[nodiscard]] Scale parse_scale(const std::string& name);

[[nodiscard]] const char* scale_name(Scale s) noexcept;

/// Reads GDIAM_SCALE from the environment; defaults to Scale::kCi.
[[nodiscard]] Scale scale_from_env();

/// Picks the preset value for the current scale.
template <typename T>
[[nodiscard]] constexpr T pick(Scale s, T ci, T small, T paper) noexcept {
  switch (s) {
    case Scale::kSmall: return small;
    case Scale::kPaper: return paper;
    case Scale::kCi:
    default: return ci;
  }
}

}  // namespace gdiam::util
