#include "util/net.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/fault.hpp"

namespace gdiam::util::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void sleep_ms(int ms) noexcept {
  timespec ts{ms / 1000, static_cast<long>(ms % 1000) * 1000000L};
  ::nanosleep(&ts, nullptr);
}

}  // namespace

namespace {

bool write_all_raw(int fd, const char* p, std::size_t len) noexcept {
  bool use_send = true;  // downgraded once if fd is not a socket
  while (len > 0) {
    ssize_t n;
    if (use_send) {
      n = ::send(fd, p, len, MSG_NOSIGNAL);
      if (n < 0 && errno == ENOTSOCK) {
        use_send = false;  // pipe or regular fd; caller must mask SIGPIPE
        continue;
      }
    } else {
      n = ::write(fd, p, len);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool write_all(int fd, const void* data, std::size_t len) noexcept {
  const char* p = static_cast<const char*>(data);
  const fault::Outcome f = fault::check("net.send");
  if (f.fail) return false;  // errno set by the fault point
  if (f.short_io) {
    // Torn frame: put a real prefix on the wire (the peer sees a frame that
    // stops mid-payload), then report the peer gone.
    if (len > 1) write_all_raw(fd, p, len / 2);
    errno = EPIPE;
    return false;
  }
  return write_all_raw(fd, p, len);
}

bool write_all_timeout(int fd, const void* data, std::size_t len,
                       int timeout_ms) noexcept {
  if (timeout_ms <= 0) return write_all(fd, data, len);
  const char* p = static_cast<const char*>(data);
  const fault::Outcome f = fault::check("net.send");
  if (f.fail) return false;
  if (f.short_io) {
    if (len > 1) write_all_raw(fd, p, len / 2);
    errno = EPIPE;
    return false;
  }
  int remaining = timeout_ms;
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      p += n;
      len -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) return false;
    // Socket buffer full: wait (bounded) for the peer to drain it. A peer
    // that never reads is a stalled client, not a reason to wedge a server
    // thread forever.
    if (remaining <= 0) {
      errno = ETIMEDOUT;
      return false;
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int slice = remaining < 100 ? remaining : 100;
    const int r = ::poll(&pfd, 1, slice);
    if (r < 0 && errno != EINTR) return false;
    remaining -= slice;
  }
  return true;
}

bool read_exact(int fd, void* data, std::size_t len) noexcept {
  char* p = static_cast<char*>(data);
  const fault::Outcome f = fault::check("net.recv");
  if (f.fail) return false;  // errno set by the fault point
  if (f.short_io) {
    // Peer gone mid-frame: consume (and drop) a prefix of the stream so the
    // connection is genuinely desynced, then report EOF-in-frame.
    if (len > 1) {
      std::size_t part = len / 2;
      while (part > 0) {
        const ssize_t n = ::read(fd, p, part);
        if (n <= 0) break;
        part -= static_cast<std::size_t>(n);
      }
    }
    errno = 0;
    return false;
  }
  while (len > 0) {
    const ssize_t n = ::read(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {  // EOF mid-frame: peer is gone
      errno = 0;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

std::vector<std::byte> read_to_eof(int fd) {
  std::vector<std::byte> out;
  std::byte buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("read");
    }
    if (n == 0) return out;
    out.insert(out.end(), buf, buf + n);
  }
}

bool write_u64(int fd, std::uint64_t v) noexcept {
  return write_all(fd, &v, sizeof v);
}

bool read_u64(int fd, std::uint64_t& v) noexcept {
  return read_exact(fd, &v, sizeof v);
}

void append_u64(std::vector<std::byte>& out, std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}

int ReapResult::exit_code() const noexcept {
  if (!reaped || sigtermed || sigkilled) return -1;
  if (!WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

namespace {

/// WNOHANG poll for up to `timeout_ms`, EINTR-clean. Returns 1 when the
/// child was reaped into `out`, 0 on deadline, -1 when there is no such
/// child to wait for (ECHILD: already reaped elsewhere).
int poll_reap(pid_t pid, int timeout_ms, ReapResult& out) noexcept {
  int waited = 0;
  for (;;) {
    const pid_t r = ::waitpid(pid, &out.status, WNOHANG);
    if (r == pid) {
      out.reaped = true;
      return 1;
    }
    if (r < 0) {
      if (errno == EINTR) continue;  // signal hit the poll, not the child
      return -1;                     // ECHILD
    }
    if (waited >= timeout_ms) return 0;
    // Coarse 1ms poll: teardown is rare and the common case (child already
    // exited) never sleeps at all.
    sleep_ms(1);
    waited += 1;
  }
}

}  // namespace

ReapResult reap_child(pid_t pid, int timeout_ms) noexcept {
  ReapResult out;
  int r = poll_reap(pid, timeout_ms, out);
  if (r != 0) return out;
  // Deadline expired: the child is wedged. SIGTERM first — a stuck-but-
  // cooperative child (blocked on a dead socket, say) can still run its
  // cleanup — with a short grace before the hammer.
  out.sigtermed = true;
  ::kill(pid, SIGTERM);
  const int grace_ms = timeout_ms < 1000 ? (timeout_ms > 0 ? timeout_ms : 1)
                                         : 1000;
  r = poll_reap(pid, grace_ms, out);
  if (r != 0) return out;
  // SIGTERM ignored or handled into a hang: SIGKILL cannot be, so this
  // final blocking wait is bounded in practice — the stuck child is
  // escalated away, never leaked.
  out.sigkilled = true;
  ::kill(pid, SIGKILL);
  pid_t w;
  do {
    w = ::waitpid(pid, &out.status, 0);
  } while (w < 0 && errno == EINTR);
  out.reaped = (w == pid);
  return out;
}

int listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("bind " + path);
  }
  if (::listen(fd, backlog) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("listen " + path);
  }
  return fd;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("connect " + path);
  }
  return fd;
}

}  // namespace gdiam::util::net
