#include "util/net.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace gdiam::util::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void sleep_ms(int ms) noexcept {
  timespec ts{ms / 1000, static_cast<long>(ms % 1000) * 1000000L};
  ::nanosleep(&ts, nullptr);
}

}  // namespace

bool write_all(int fd, const void* data, std::size_t len) noexcept {
  const char* p = static_cast<const char*>(data);
  bool use_send = true;  // downgraded once if fd is not a socket
  while (len > 0) {
    ssize_t n;
    if (use_send) {
      n = ::send(fd, p, len, MSG_NOSIGNAL);
      if (n < 0 && errno == ENOTSOCK) {
        use_send = false;  // pipe or regular fd; caller must mask SIGPIPE
        continue;
      }
    } else {
      n = ::write(fd, p, len);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_exact(int fd, void* data, std::size_t len) noexcept {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    const ssize_t n = ::read(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {  // EOF mid-frame: peer is gone
      errno = 0;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

std::vector<std::byte> read_to_eof(int fd) {
  std::vector<std::byte> out;
  std::byte buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("read");
    }
    if (n == 0) return out;
    out.insert(out.end(), buf, buf + n);
  }
}

bool write_u64(int fd, std::uint64_t v) noexcept {
  return write_all(fd, &v, sizeof v);
}

bool read_u64(int fd, std::uint64_t& v) noexcept {
  return read_exact(fd, &v, sizeof v);
}

void append_u64(std::vector<std::byte>& out, std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}

int ReapResult::exit_code() const noexcept {
  if (!reaped || sigkilled) return -1;
  if (!WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

ReapResult reap_child(pid_t pid, int timeout_ms) noexcept {
  ReapResult out;
  int waited = 0;
  for (;;) {
    const pid_t r = ::waitpid(pid, &out.status, WNOHANG);
    if (r == pid) {
      out.reaped = true;
      return out;
    }
    if (r < 0 && errno != EINTR) return out;  // ECHILD: already reaped
    if (waited >= timeout_ms) break;
    // Coarse 1ms poll: teardown is rare and the common case (child already
    // exited) never sleeps at all.
    sleep_ms(1);
    waited += 1;
  }
  // Deadline expired: the child is wedged. Kill it and reap the corpse —
  // SIGKILL cannot be ignored, so this final wait is bounded in practice.
  out.sigkilled = true;
  ::kill(pid, SIGKILL);
  pid_t r;
  do {
    r = ::waitpid(pid, &out.status, 0);
  } while (r < 0 && errno == EINTR);
  out.reaped = (r == pid);
  return out;
}

int listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("bind " + path);
  }
  if (::listen(fd, backlog) != 0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("listen " + path);
  }
  return fd;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int e = errno;
    ::close(fd);
    errno = e;
    throw_errno("connect " + path);
  }
  return fd;
}

}  // namespace gdiam::util::net
