#include "util/fault.hpp"

#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace gdiam::util::fault {

namespace {

enum class Kind : std::uint8_t { kErrno, kDelay, kShort, kKill };

/// One armed fault point. The table is fixed-size and lock-free on the hit
/// path (plain strcmp scan + atomic counters): arming happens before the
/// faulted traffic in every use, and — critically — a pool worker forked
/// mid-run must be able to cross its own sites without touching a mutex a
/// coordinator thread might have held at fork time.
struct Site {
  char name[48] = {0};
  Kind kind = Kind::kErrno;
  int err = EIO;       // kErrno
  int delay_ms = 50;   // kDelay
  std::uint64_t nth = 0;   // fire on this hit only (1-based); 0 = every hit
  double prob = 0.0;       // fire per hit with this probability (0 = off)
  std::uint64_t seed = 1;  // seeds the per-hit probability hash
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fired{0};
};

constexpr std::size_t kMaxSites = 16;
Site g_sites[kMaxSites];

void sleep_ms(int ms) noexcept {
  timespec ts{ms / 1000, static_cast<long>(ms % 1000) * 1000000L};
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

/// SplitMix64 of (seed, hit): the per-hit coin for `%p:seed` triggers. A
/// pure function of its inputs, so the same schedule fires identically in
/// every process and on every replay.
double hit_coin(std::uint64_t seed, std::uint64_t hit) noexcept {
  std::uint64_t z = seed * 0x9e3779b97f4a7c15ULL + hit;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

int parse_errno_name(const std::string& s) {
  // The errnos chaos schedules actually want, plus raw numbers.
  if (s == "EIO") return EIO;
  if (s == "EPIPE") return EPIPE;
  if (s == "ECONNRESET") return ECONNRESET;
  if (s == "ECONNREFUSED") return ECONNREFUSED;
  if (s == "EAGAIN") return EAGAIN;
  if (s == "EINTR") return EINTR;
  if (s == "ENOMEM") return ENOMEM;
  if (s == "ETIMEDOUT") return ETIMEDOUT;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v <= 0) {
    throw std::invalid_argument("fault: unknown errno '" + s + "'");
  }
  return static_cast<int>(v);
}

/// Parses one `site=kind[:arg][@N|%p[:seed]]` point into `out`.
void parse_point(const std::string& point, Site& out) {
  const std::size_t eq = point.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::invalid_argument("fault: expected site=action, got '" + point +
                                "'");
  }
  const std::string site = point.substr(0, eq);
  if (site.size() >= sizeof out.name) {
    throw std::invalid_argument("fault: site name too long: '" + site + "'");
  }
  std::string action = point.substr(eq + 1);

  // Split the trigger suffix off first: '@N' or '%p[:seed]'.
  const std::size_t at = action.find('@');
  const std::size_t pct = action.find('%');
  std::string trigger;
  char trigger_kind = 0;
  if (at != std::string::npos) {
    trigger = action.substr(at + 1);
    trigger_kind = '@';
    action.resize(at);
  } else if (pct != std::string::npos) {
    trigger = action.substr(pct + 1);
    trigger_kind = '%';
    action.resize(pct);
  }

  const std::size_t colon = action.find(':');
  const std::string kind = action.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : action.substr(colon + 1);
  if (kind == "errno") {
    out.kind = Kind::kErrno;
    if (!arg.empty()) out.err = parse_errno_name(arg);
  } else if (kind == "delay") {
    out.kind = Kind::kDelay;
    if (!arg.empty()) {
      out.delay_ms = std::atoi(arg.c_str());
      if (out.delay_ms <= 0) {
        throw std::invalid_argument("fault: bad delay '" + arg + "'");
      }
    }
  } else if (kind == "short") {
    out.kind = Kind::kShort;
    if (!arg.empty()) {
      throw std::invalid_argument("fault: short takes no argument");
    }
  } else if (kind == "kill") {
    out.kind = Kind::kKill;
    if (!arg.empty()) {
      throw std::invalid_argument("fault: kill takes no argument");
    }
  } else {
    throw std::invalid_argument("fault: unknown action '" + kind + "'");
  }

  if (trigger_kind == '@') {
    char* end = nullptr;
    out.nth = std::strtoull(trigger.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || out.nth == 0) {
      throw std::invalid_argument("fault: bad hit trigger '@" + trigger + "'");
    }
  } else if (trigger_kind == '%') {
    const std::size_t sc = trigger.find(':');
    char* end = nullptr;
    out.prob = std::strtod(trigger.c_str(), &end);
    if (end == nullptr ||
        static_cast<std::size_t>(end - trigger.c_str()) !=
            (sc == std::string::npos ? trigger.size() : sc) ||
        out.prob <= 0.0 || out.prob > 1.0) {
      throw std::invalid_argument("fault: bad probability '%" + trigger + "'");
    }
    if (sc != std::string::npos) {
      out.seed = std::strtoull(trigger.c_str() + sc + 1, &end, 10);
      if (end == nullptr || *end != '\0') {
        throw std::invalid_argument("fault: bad seed in '%" + trigger + "'");
      }
    }
  }
  std::memcpy(out.name, site.c_str(), site.size() + 1);
}

const char* kind_name(Kind k) noexcept {
  switch (k) {
    case Kind::kErrno: return "errno";
    case Kind::kDelay: return "delay";
    case Kind::kShort: return "short";
    case Kind::kKill: return "kill";
  }
  return "?";
}

Site* find(const std::string& site) noexcept {
  const std::uint32_t n = detail::g_armed.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n && i < kMaxSites; ++i) {
    if (site == g_sites[i].name) return &g_sites[i];
  }
  return nullptr;
}

}  // namespace

namespace detail {

std::atomic<std::uint32_t> g_armed{0};

Outcome check_slow(const char* site, pid_t victim) noexcept {
  const std::uint32_t n = g_armed.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n && i < kMaxSites; ++i) {
    Site& s = g_sites[i];
    if (std::strcmp(site, s.name) != 0) continue;
    const std::uint64_t hit =
        s.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    bool fire = true;
    if (s.nth != 0) {
      fire = hit == s.nth;
    } else if (s.prob > 0.0) {
      fire = hit_coin(s.seed, hit) < s.prob;
    }
    if (!fire) return {};
    s.fired.fetch_add(1, std::memory_order_relaxed);
    switch (s.kind) {
      case Kind::kErrno:
        errno = s.err;
        return {.fail = true};
      case Kind::kDelay:
        sleep_ms(s.delay_ms);
        return {};
      case Kind::kShort:
        return {.short_io = true};
      case Kind::kKill:
        ::kill(victim > 0 ? victim : ::getpid(), SIGKILL);
        if (victim <= 0) ::pause();  // self-kill: never execute another line
        return {};
    }
  }
  return {};
}

}  // namespace detail

void arm(const std::string& spec) {
  // Parse into a staging table first: a malformed spec must not tear down
  // (or half-replace) the armed schedule.
  Site staged[kMaxSites];
  std::size_t count = 0;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t sep = spec.find(';', pos);
    if (sep == std::string::npos) sep = spec.size();
    if (sep > pos) {
      if (count >= kMaxSites) {
        throw std::invalid_argument("fault: too many points (max " +
                                    std::to_string(kMaxSites) + ")");
      }
      parse_point(spec.substr(pos, sep - pos), staged[count]);
      ++count;
    }
    pos = sep + 1;
  }
  disarm();
  for (std::size_t i = 0; i < count; ++i) {
    Site& d = g_sites[i];
    std::memcpy(d.name, staged[i].name, sizeof d.name);
    d.kind = staged[i].kind;
    d.err = staged[i].err;
    d.delay_ms = staged[i].delay_ms;
    d.nth = staged[i].nth;
    d.prob = staged[i].prob;
    d.seed = staged[i].seed;
    d.hits.store(0, std::memory_order_relaxed);
    d.fired.store(0, std::memory_order_relaxed);
  }
  detail::g_armed.store(static_cast<std::uint32_t>(count),
                        std::memory_order_release);
}

bool arm_from_env() noexcept {
  const char* spec = std::getenv("GDIAM_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return true;
  try {
    arm(spec);
    return true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "GDIAM_FAULTS ignored: %s\n", e.what());
    return false;
  }
}

void disarm() noexcept {
  detail::g_armed.store(0, std::memory_order_release);
}

bool armed() noexcept {
  return detail::g_armed.load(std::memory_order_acquire) != 0;
}

std::uint64_t fired(const std::string& site) noexcept {
  const Site* s = find(site);
  return s != nullptr ? s->fired.load(std::memory_order_relaxed) : 0;
}

std::uint64_t hits(const std::string& site) noexcept {
  const Site* s = find(site);
  return s != nullptr ? s->hits.load(std::memory_order_relaxed) : 0;
}

std::string describe() {
  std::string out;
  const std::uint32_t n = detail::g_armed.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n && i < kMaxSites; ++i) {
    const Site& s = g_sites[i];
    out += s.name;
    out += '=';
    out += kind_name(s.kind);
    if (s.kind == Kind::kErrno) {
      out += ':';
      out += std::to_string(s.err);
    }
    if (s.kind == Kind::kDelay) {
      out += ':';
      out += std::to_string(s.delay_ms);
    }
    if (s.nth != 0) {
      out += '@';
      out += std::to_string(s.nth);
    }
    if (s.prob > 0.0) {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%%%g:%llu", s.prob,
                    static_cast<unsigned long long>(s.seed));
      out += buf;
    }
    out += " hits=";
    out += std::to_string(s.hits.load(std::memory_order_relaxed));
    out += " fired=";
    out += std::to_string(s.fired.load(std::memory_order_relaxed));
    out += '\n';
  }
  return out;
}

}  // namespace gdiam::util::fault
