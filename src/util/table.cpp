#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace gdiam::util {

std::string with_thousands(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  if (rows_.empty()) row();
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return cell(std::string(buf));
}

Table& Table::sci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, value);
  return cell(std::string(buf));
}

Table& Table::count(std::uint64_t value) { return cell(with_thousands(value)); }

const std::string& Table::at(std::size_t r, std::size_t c) const {
  if (r >= rows_.size() || c >= rows_[r].size()) {
    throw std::out_of_range("Table::at");
  }
  return rows_[r][c];
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << "  " << v;
      for (std::size_t pad = v.size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 2;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) print_row(r);
}

}  // namespace gdiam::util
