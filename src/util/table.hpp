#pragma once
// Aligned-column table printing for the benchmark harness.
//
// Every bench binary regenerates one of the paper's tables/figures and prints
// it in this format so EXPERIMENTS.md can quote the output verbatim.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gdiam::util {

/// Accumulates rows of string cells and prints them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; fill it with cell()/num() calls.
  Table& row();

  Table& cell(std::string value);
  Table& cell(const char* value);

  /// Fixed-precision floating point cell.
  Table& num(double value, int precision = 2);

  /// Scientific-notation cell (used for the paper's "work" columns).
  Table& sci(double value, int precision = 2);

  /// Integral cell with thousands separators (e.g. 1,468,365,182).
  Table& count(std::uint64_t value);

  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return header_.size(); }

  /// Cell accessors for tests.
  [[nodiscard]] const std::string& at(std::size_t r, std::size_t c) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// 1,234,567-style formatting.
[[nodiscard]] std::string with_thousands(std::uint64_t value);

}  // namespace gdiam::util
