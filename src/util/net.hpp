#pragma once
// Shared low-level socket/process plumbing for the multi-process transports
// (mr/transport.cpp) and the serving daemon (serve/, tools/gdiamd.cpp).
//
// Everything here deals with the three failure modes that plague naive
// socket code and must never corrupt a BSP superstep or a served request:
//
//   * partial reads/writes and EINTR — write_all/read_exact loop until the
//     full buffer crossed the descriptor (or the peer is provably gone);
//   * SIGPIPE — write_all sends with MSG_NOSIGNAL on sockets (falling back
//     to write(2) for pipes/regular fds), so a dead peer surfaces as an
//     EPIPE return value the caller can handle, never a process-killing
//     signal;
//   * zombie children — reap_child waits with a *bounded* deadline,
//     escalating SIGTERM → SIGKILL rather than hanging teardown forever on
//     a wedged worker.
//
// The helpers are deliberately exception-free at the I/O layer (bool/EOF
// returns); callers own the error story (ProcessTransport turns failures
// into one root-cause error, PoolTransport into a worker restart).
//
// write_all and read_exact carry the "net.send" / "net.recv" fault points
// (util/fault.hpp, DESIGN.md §12): an armed schedule can fail them with an
// errno, delay them, or tear the frame mid-transfer — which is how the
// chaos suite drives every torn-frame and peer-gone recovery path above
// from outside, deterministically.

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gdiam::util::net {

/// Writes all `len` bytes to `fd`, riding out partial writes and EINTR.
/// Uses send(MSG_NOSIGNAL) on sockets so a closed peer yields EPIPE instead
/// of SIGPIPE. Returns false (with errno set) when the peer is gone or the
/// descriptor is broken.
bool write_all(int fd, const void* data, std::size_t len) noexcept;

/// Like write_all, but gives up after `timeout_ms` of the peer not draining
/// its socket (errno = ETIMEDOUT) instead of blocking forever on a stalled
/// reader. Socket fds only (uses MSG_DONTWAIT + poll). timeout_ms <= 0
/// degrades to plain write_all.
bool write_all_timeout(int fd, const void* data, std::size_t len,
                       int timeout_ms) noexcept;

/// Reads exactly `len` bytes into `data`. Returns false on EOF or error
/// (errno == 0 distinguishes clean EOF from a real error).
bool read_exact(int fd, void* data, std::size_t len) noexcept;

/// Reads the descriptor to EOF (the peer closes its end after the last
/// frame). Throws std::runtime_error on a read error.
std::vector<std::byte> read_to_eof(int fd);

/// u64 framing used by every gdiam wire format (host order; all peers are
/// forks or same-host daemon clients).
bool write_u64(int fd, std::uint64_t v) noexcept;
bool read_u64(int fd, std::uint64_t& v) noexcept;

/// Appends a host-order u64 to a byte buffer (frame assembly).
void append_u64(std::vector<std::byte>& out, std::uint64_t v);

/// Outcome of reaping one child process.
struct ReapResult {
  bool reaped = false;      // waitpid succeeded (false: no such child)
  bool sigtermed = false;   // deadline expired; child was sent SIGTERM
  bool sigkilled = false;   // SIGTERM grace expired too; child was SIGKILLed
  int status = 0;           // raw waitpid status when reaped
  /// Exit code when the child exited normally *without escalation*,
  /// otherwise -1 (signal death and TERM/KILL escalations are never
  /// "success" — a dead-but-zero-looking worker is silent data loss).
  [[nodiscard]] int exit_code() const noexcept;
};

/// Reaps `pid` with a bounded, EINTR-clean wait: polls WNOHANG for up to
/// `timeout_ms`, then escalates SIGTERM (a wedged-but-cooperative child can
/// still clean up), grants a short grace, then SIGKILLs and does one final
/// blocking wait. Never hangs on a wedged child, never leaks a zombie or a
/// stuck child for a killable one.
ReapResult reap_child(pid_t pid, int timeout_ms) noexcept;

/// Creates, binds and listens on an AF_UNIX stream socket at `path`
/// (unlinking any stale socket first). Throws std::runtime_error on failure
/// (path too long for sun_path, bind/listen errors).
int listen_unix(const std::string& path, int backlog);

/// Connects to the AF_UNIX stream socket at `path`. Throws on failure.
int connect_unix(const std::string& path);

}  // namespace gdiam::util::net
