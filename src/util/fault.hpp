#pragma once
// Deterministic fault injection (DESIGN.md §12).
//
// Every place gdiam talks to the OS — socket sends/recvs, worker spawns,
// graph loads, the daemon scheduler — carries a *named fault point*: one
// call to fault::check("site") on the path. Disarmed (the production state)
// a fault point costs a single relaxed atomic load; armed, the site's
// configured action fires:
//
//   errno[:E]   — the call fails with errno E (default EIO): write_all /
//                 read_exact return false, spawn paths throw;
//   delay[:MS]  — the call sleeps MS milliseconds (default 50) and proceeds;
//   short       — a torn I/O: write_all sends a *prefix* of the buffer then
//                 reports the peer gone (EPIPE); read_exact consumes part of
//                 the stream then reports EOF-mid-frame (errno = 0);
//   kill        — SIGKILL: the victim pid the call site names (a pool
//                 worker), or the calling process when the site names none
//                 (a worker-side site killing itself mid-superstep).
//
// Schedules are *deterministic*: a site fires on exactly the Nth hit
// (`@N`, counted per process — a forked worker counts its own hits), or
// per-hit with probability p from a seeded hash of (seed, hit index)
// (`%p:seed`) — a pure function, so a failure schedule replays exactly, in
// every process, on every run. That is what lets the chaos suite assert
// survived runs bit-identical to clean runs instead of merely "didn't
// crash" (the PASGAL-style reproducibility lever, PAPERS.md).
//
// Spec grammar (GDIAM_FAULTS env var, `gdiamd --faults`, the daemon `fault`
// verb, or fault::arm() in tests); sites are listed in DESIGN.md §12:
//
//   spec    := point (';' point)*
//   point   := site '=' kind [':' arg] [trigger]
//   kind    := 'errno' | 'delay' | 'short' | 'kill'
//   trigger := '@' N            — fire on the Nth hit only (1-based)
//            | '%' p [':' seed] — fire each hit with probability p
//
//   GDIAM_FAULTS="pool.ship=kill@2;net.send=errno:EPIPE%0.01:42"

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <string>

namespace gdiam::util::fault {

/// What fired at a fault point. Delay faults are applied inside check()
/// (the site just proceeds afterwards); kill faults never return to sites
/// that name no victim. `fail` and `short_io` are mutually exclusive.
struct Outcome {
  /// An errno fault fired: errno is set; the call site should fail the
  /// operation exactly as if the OS had returned that errno.
  bool fail = false;
  /// A short-I/O fault fired: the call site should present a torn frame /
  /// peer-gone-mid-frame to its caller.
  bool short_io = false;
};

namespace detail {
/// Number of armed fault points. The *only* cost a disarmed site pays is
/// one relaxed load of this counter.
extern std::atomic<std::uint32_t> g_armed;
Outcome check_slow(const char* site, pid_t victim) noexcept;
}  // namespace detail

/// The fault point. `victim` is the pid a kill fault targets (a pool
/// worker's pid at coordinator call sites); victim < 0 means "the calling
/// process" (worker-side sites). Near-zero cost while disarmed.
inline Outcome check(const char* site, pid_t victim = -1) noexcept {
  if (detail::g_armed.load(std::memory_order_relaxed) == 0) return {};
  return detail::check_slow(site, victim);
}

/// Parses `spec` (grammar above) and arms the schedule, replacing any
/// previous one. Hit counters start at zero. Throws std::invalid_argument
/// on malformed specs (the previous schedule stays armed).
void arm(const std::string& spec);

/// Arms from the GDIAM_FAULTS environment variable if set. Returns false
/// (with a message on stderr) on a malformed value instead of throwing —
/// tool mains call this before argument parsing.
bool arm_from_env() noexcept;

/// Disarms every fault point and clears the schedule.
void disarm() noexcept;

[[nodiscard]] bool armed() noexcept;

/// Times the site's action actually fired (0 for unknown/never-hit sites).
[[nodiscard]] std::uint64_t fired(const std::string& site) noexcept;

/// Times the site was crossed while armed (0 for unknown sites).
[[nodiscard]] std::uint64_t hits(const std::string& site) noexcept;

/// Human-readable schedule with per-site hit/fired counts, one per line:
/// "pool.ship=kill@2 hits=5 fired=1\n..." — the daemon `fault` verb's body.
[[nodiscard]] std::string describe();

}  // namespace gdiam::util::fault
