#pragma once
// Deterministic, splittable pseudo-random number generation.
//
// All randomized algorithms in gdiam (center selection, graph generators,
// weight assignment) draw from Xoshiro256++ streams seeded through SplitMix64,
// so every run is reproducible from a single 64-bit seed and independent
// logical streams can be derived for parallel workers without correlation.

#include <cstdint>
#include <limits>

namespace gdiam::util {

/// SplitMix64: used to expand a user seed into Xoshiro state and to derive
/// independent substreams. Passes BigCrush when used as a generator itself.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256++ by Blackman & Vigna: fast, high-quality 64-bit generator.
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words through SplitMix64 (recommended procedure).
  explicit Xoshiro256(std::uint64_t seed = 0x9d2c5680cafe1234ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Uniform double in [0, 1) using the top 53 bits.
  double next_double() noexcept;

  /// Uniform double in (0, 1] — the distribution used by the paper for
  /// random edge weights ("uniform distribution in (0,1]").
  double next_double_open_low() noexcept { return 1.0 - next_double(); }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_bounded(std::uint64_t bound) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bernoulli(double p) noexcept;

  /// Derive an independent generator for logical stream `stream_id`.
  /// Streams derived from the same generator with distinct ids do not
  /// overlap in practice (distinct SplitMix64 seed paths).
  [[nodiscard]] Xoshiro256 split(std::uint64_t stream_id) const noexcept;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;  // retained for split()
};

}  // namespace gdiam::util
