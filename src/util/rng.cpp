#include "util/rng.hpp"

namespace gdiam::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept : seed_(seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

Xoshiro256::result_type Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Xoshiro256::next_bounded(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method (128-bit multiply-shift).
  __extension__ using uint128 = unsigned __int128;
  std::uint64_t x = next();
  uint128 m = static_cast<uint128>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<uint128>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Xoshiro256::next_bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Xoshiro256 Xoshiro256::split(std::uint64_t stream_id) const noexcept {
  // Mix the original seed with the stream id through SplitMix64 so that
  // distinct ids give unrelated state initializations.
  SplitMix64 sm(seed_ ^ (0x5851f42d4c957f2dULL * (stream_id + 1)));
  return Xoshiro256(sm.next());
}

}  // namespace gdiam::util
