#include "util/topology.hpp"

#include <sched.h>
#include <unistd.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <stdexcept>

#include "util/rng.hpp"

namespace gdiam::util::topo {

namespace {

/// Splits a kernel cpulist ("0,2,4-6") into CPU ids, appending to `out`.
/// Throws std::invalid_argument on anything but digits, commas and
/// well-formed inclusive ranges.
void parse_cpulist(const std::string& list, std::vector<int>& out) {
  if (list.empty()) throw std::invalid_argument("topology: empty node");
  std::size_t i = 0;
  auto number = [&]() -> int {
    if (i >= list.size() || std::isdigit(static_cast<unsigned char>(list[i])) == 0) {
      throw std::invalid_argument("topology: expected cpu id in '" + list +
                                  "'");
    }
    long v = 0;
    while (i < list.size() &&
           std::isdigit(static_cast<unsigned char>(list[i])) != 0) {
      v = v * 10 + (list[i] - '0');
      if (v > 1 << 20) {
        throw std::invalid_argument("topology: cpu id out of range in '" +
                                    list + "'");
      }
      ++i;
    }
    return static_cast<int>(v);
  };
  for (;;) {
    const int lo = number();
    int hi = lo;
    if (i < list.size() && list[i] == '-') {
      ++i;
      hi = number();
      if (hi < lo) {
        throw std::invalid_argument("topology: inverted range in '" + list +
                                    "'");
      }
    }
    for (int c = lo; c <= hi; ++c) out.push_back(c);
    if (i == list.size()) return;
    if (list[i] != ',') {
      throw std::invalid_argument("topology: unexpected '" +
                                  std::string(1, list[i]) + "' in '" + list +
                                  "'");
    }
    ++i;
    if (i == list.size()) {
      throw std::invalid_argument("topology: trailing ',' in '" + list + "'");
    }
  }
}

/// Reads one sysfs cpulist file; empty result on any failure (discovery
/// falls back, it never throws — only explicit specs are strict).
std::vector<int> read_cpulist_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) return {};
  std::string line;
  std::getline(f, line);
  while (!line.empty() && (line.back() == '\n' || line.back() == ' ')) {
    line.pop_back();
  }
  std::vector<int> cpus;
  try {
    parse_cpulist(line, cpus);
  } catch (const std::invalid_argument&) {
    return {};
  }
  return cpus;
}

Topology fallback_single_node() {
  const long n = ::sysconf(_SC_NPROCESSORS_ONLN);
  std::vector<int> cpus;
  for (int c = 0; c < std::max(1L, n); ++c) cpus.push_back(c);
  return Topology{{std::move(cpus)}};
}

static_assert(sizeof(cpu_set_t) <= 128,
              "ScopedAffinity's opaque buffer must hold a cpu_set_t");

/// cpu_set_t of `cpus` ∩ `allowed`; returns the popcount of the result.
int intersect_mask(const std::vector<int>& cpus, const cpu_set_t& allowed,
                   cpu_set_t& out) noexcept {
  CPU_ZERO(&out);
  int count = 0;
  for (const int c : cpus) {
    if (c >= 0 && c < CPU_SETSIZE && CPU_ISSET(c, &allowed)) {
      CPU_SET(c, &out);
      ++count;
    }
  }
  return count;
}

}  // namespace

std::uint64_t Topology::fingerprint() const noexcept {
  // SplitMix64 chaining over the structure; 0 is reserved for "no topology"
  // so an inactive placement hashes to the pre-placement cache keys.
  std::uint64_t h = SplitMix64(0x746f706f6c6f6779ULL /* "topology" */).next();
  h ^= SplitMix64(num_nodes()).next();
  for (const auto& node : cpus_of_node) {
    h = SplitMix64(h ^ SplitMix64(node.size()).next()).next();
    for (const int c : node) {
      h = SplitMix64(h ^ static_cast<std::uint64_t>(c)).next();
    }
  }
  return h == 0 ? 1 : h;
}

Topology parse_spec(const std::string& spec) {
  if (spec.empty()) throw std::invalid_argument("topology: empty spec");
  Topology t;
  std::string node;
  // split on ';' manually so a trailing ';' is caught as an empty node
  std::size_t start = 0;
  for (;;) {
    const std::size_t sep = spec.find(';', start);
    node = spec.substr(start, sep == std::string::npos ? sep : sep - start);
    std::vector<int> cpus;
    parse_cpulist(node, cpus);  // throws on empty/malformed
    t.cpus_of_node.push_back(std::move(cpus));
    if (sep == std::string::npos) break;
    start = sep + 1;
  }
  // A CPU on two nodes (or twice on one) makes capacity accounting and
  // binding ambiguous; real topologies never do it, so a spec that does is a
  // typo, not an emulation.
  std::set<int> seen;
  for (const auto& cpus : t.cpus_of_node) {
    for (const int c : cpus) {
      if (!seen.insert(c).second) {
        throw std::invalid_argument("topology: cpu " + std::to_string(c) +
                                    " listed twice");
      }
    }
  }
  return t;
}

const Topology& system_topology() {
  static const Topology cached = [] {
    Topology t;
    // node ids are dense in practice, but holes are legal — scan until a
    // reasonable bound and keep whatever exists.
    for (int node = 0; node < 1024; ++node) {
      std::vector<int> cpus = read_cpulist_file(
          "/sys/devices/system/node/node" + std::to_string(node) +
          "/cpulist");
      if (cpus.empty()) {
        if (node > 0) break;  // past the last node
        continue;             // node0 absent: fall through to the fallback
      }
      t.cpus_of_node.push_back(std::move(cpus));
    }
    if (t.cpus_of_node.empty()) t = fallback_single_node();
    return t;
  }();
  return cached;
}

Topology discover() {
  const char* spec = std::getenv("GDIAM_TOPOLOGY");
  if (spec != nullptr && spec[0] != '\0') return parse_spec(spec);
  return system_topology();
}

bool bind_current_thread(const std::vector<int>& cpus) noexcept {
  cpu_set_t allowed;
  if (::sched_getaffinity(0, sizeof allowed, &allowed) != 0) return false;
  cpu_set_t target;
  if (intersect_mask(cpus, allowed, target) == 0) return false;
  if (CPU_EQUAL(&target, &allowed)) return false;  // no-op bind
  return ::sched_setaffinity(0, sizeof target, &target) == 0;
}

ScopedAffinity::ScopedAffinity(const std::vector<int>& cpus) noexcept {
  std::memset(saved_, 0, sizeof saved_);
  cpu_set_t current;
  if (::sched_getaffinity(0, sizeof current, &current) != 0) return;
  std::memcpy(saved_, &current, sizeof current);
  bound_ = bind_current_thread(cpus);
}

ScopedAffinity::~ScopedAffinity() {
  if (!bound_) return;
  cpu_set_t saved;
  std::memcpy(&saved, saved_, sizeof saved);
  ::sched_setaffinity(0, sizeof saved, &saved);
}

void first_touch(void* p, std::size_t len) noexcept {
  // One volatile read-modify-write per page: enough to fault the page in on
  // the calling thread's node without changing its contents.
  const long page = ::sysconf(_SC_PAGESIZE);
  const std::size_t step = page > 0 ? static_cast<std::size_t>(page) : 4096;
  auto* bytes = static_cast<volatile unsigned char*>(p);
  for (std::size_t i = 0; i < len; i += step) bytes[i] = bytes[i];
  if (len != 0) bytes[len - 1] = bytes[len - 1];
}

}  // namespace gdiam::util::topo
