#include "util/parallel.hpp"

namespace gdiam::util {

int num_threads() noexcept { return omp_get_max_threads(); }

int set_num_threads(int t) noexcept {
  const int prev = omp_get_max_threads();
  if (t > 0) omp_set_num_threads(t);
  return prev;
}

}  // namespace gdiam::util
