#pragma once
// Machine topology discovery for NUMA-aware shard placement (DESIGN.md §13).
//
// The Δ-/ρ-stepping hot loops are memory-bandwidth-bound: on a multi-socket
// machine a shard whose arrays were first-touched on the wrong node pays
// remote-DRAM latency on every relaxation. The placement layer
// (mr/placement.hpp) maps shards onto NUMA nodes; this file answers the one
// question it needs — *what nodes and CPUs exist* — and provides the two
// mechanisms placement is made real with: binding the calling thread to a
// node's CPUs (so OpenMP shard teams and forked workers run where their
// shard lives) and first-touch allocation (pages land on the node of the
// thread that first writes them — the portable placement mechanism; no
// libnuma/mbind dependency).
//
// Discovery order:
//   1. GDIAM_TOPOLOGY env var — an explicit spec, for deterministic tests on
//      single-node CI and for operators overriding a misdetected machine.
//      Grammar: per-node CPU lists separated by ';', each list in the
//      kernel's cpulist format (comma-separated ids and inclusive ranges):
//          "0-3;4-7"        two nodes, four CPUs each
//          "0,2,4-6;1,3,7"  interleaved ids are fine
//      A malformed spec throws std::invalid_argument (never a silent
//      fallback: a typo'd override must not quietly serve the wrong plan).
//      CPUs that don't exist on the actual machine are permitted — the spec
//      emulates a topology; binding simply degrades to a no-op for them.
//   2. /sys/devices/system/node/node*/cpulist — the real machine.
//   3. Single node holding every online CPU (non-Linux, masked-out sysfs).
//
// Binding is *best-effort by design*: the requested CPU set is intersected
// with the thread's currently-allowed set, and an empty intersection (or a
// failed syscall) leaves affinity untouched. Placement therefore never makes
// a run fail — and, because results are bit-identical regardless of where
// compute runs (the determinism contract), a skipped bind costs only the
// locality, never the answer.

#include <cstdint>
#include <string>
#include <vector>

namespace gdiam::util::topo {

/// One machine (real or emulated): which CPUs live on which NUMA node.
/// Immutable after construction; node ids are dense [0, num_nodes()).
struct Topology {
  std::vector<std::vector<int>> cpus_of_node;

  [[nodiscard]] std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(cpus_of_node.size());
  }
  [[nodiscard]] bool single_node() const noexcept {
    return cpus_of_node.size() <= 1;
  }
  [[nodiscard]] std::size_t total_cpus() const noexcept {
    std::size_t n = 0;
    for (const auto& c : cpus_of_node) n += c.size();
    return n;
  }
  [[nodiscard]] const std::vector<int>& cpus(std::uint32_t node) const {
    return cpus_of_node[node];
  }

  /// Structural hash: a pure function of (node count, per-node CPU lists).
  /// Feeds placement-plan fingerprints and the exec::Context cache keys, so
  /// two runs under different GDIAM_TOPOLOGY specs can never share arrays
  /// first-touched for the other's layout.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;
};

/// Parses a GDIAM_TOPOLOGY spec (see the header comment for the grammar).
/// Throws std::invalid_argument on malformed input: empty spec, empty node,
/// non-numeric ids, inverted ranges, or a CPU listed twice (within or across
/// nodes — real topologies never share CPUs, and rejecting duplicates keeps
/// capacity-balanced placement well-defined).
[[nodiscard]] Topology parse_spec(const std::string& spec);

/// The real machine, from /sys/devices/system/node (cached after the first
/// scan — the files are immutable for the process lifetime). Falls back to
/// one node holding every online CPU when sysfs is absent.
[[nodiscard]] const Topology& system_topology();

/// What placement sees: parse_spec(GDIAM_TOPOLOGY) when the env var is set
/// (re-read every call, so tests can switch emulated machines), else
/// system_topology(). This is the single discovery entry point — everything
/// placement-related derives from its result, which is what makes a plan a
/// pure function of (topology, K, strategy).
[[nodiscard]] Topology discover();

/// Binds the calling thread to `cpus` ∩ currently-allowed CPUs. Returns true
/// when affinity actually changed; false when the intersection was empty
/// (emulated CPUs, cgroup masks) or the syscall failed — in both cases
/// affinity is left untouched. Never throws: see the best-effort contract.
bool bind_current_thread(const std::vector<int>& cpus) noexcept;

/// RAII bind-and-restore for the calling thread: captures the current
/// affinity mask, applies bind_current_thread(cpus), restores the captured
/// mask on destruction. Used to pin one shard's compute (or one layout
/// build) to the shard's node without perturbing the OpenMP team for
/// whatever runs next. bound() reports whether the bind took effect.
class ScopedAffinity {
 public:
  explicit ScopedAffinity(const std::vector<int>& cpus) noexcept;
  ~ScopedAffinity();
  ScopedAffinity(const ScopedAffinity&) = delete;
  ScopedAffinity& operator=(const ScopedAffinity&) = delete;

  [[nodiscard]] bool bound() const noexcept { return bound_; }

 private:
  // Opaque saved cpu_set_t (cpu_set_t is a <sched.h> type; keeping it out of
  // the header keeps topology.hpp includable everywhere).
  alignas(8) unsigned char saved_[128];
  bool bound_ = false;
};

/// Touches one byte per page of [p, p+len) so the pages are faulted in — and
/// therefore node-placed — by the *calling* thread. Call under a
/// ScopedAffinity bind right after allocating shard-local storage to make
/// first-touch placement explicit rather than incidental.
void first_touch(void* p, std::size_t len) noexcept;

}  // namespace gdiam::util::topo
