#pragma once
// Shared PartialGrowth stage driver for CLUSTER and CLUSTER2 (DESIGN.md §8).
//
// Both decompositions are the same outer machine: repeat { select a batch of
// new centers (one auxiliary MR round) → grow all clusters with Δ-growing
// steps → logically contract what was reached (one auxiliary MR round) }
// until a stop condition, then turn leftovers into singleton clusters and
// derive the centers list and the radius. Before this driver the machine was
// written out twice — cluster.cpp and cluster2.cpp each carried their own
// engine setup, coverage bookkeeping, contraction plumbing and finalization
// tail, and the two copies had already drifted in where they charged
// auxiliary rounds. PartialGrowthDriver is the single copy; the two
// algorithms supply only their growth rule (center selection, the growth
// loop, and the distance each covered node is assigned).
//
// The driver is also where the unified runtime plugs in: the GrowingEngine
// comes from the exec::Context's pool, so consecutive CLUSTER/CLUSTER2 runs
// on one context reuse the engine's n-sized arrays, the cached shard layout
// and every Δ-presplit the doubling search has already paid for.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/cluster.hpp"
#include "core/growing.hpp"
#include "exec/context.hpp"
#include "graph/graph.hpp"

namespace gdiam::core::detail {

class PartialGrowthDriver {
 public:
  /// Binds the driver to one decomposition run: acquires the pooled engine
  /// for (g, opts.policy, opts.partition) from `ctx`, configures it from the
  /// run's execution knobs, resets it to the pristine state, and initializes
  /// `out`'s per-node assignment to "uncovered".
  PartialGrowthDriver(const Graph& g, const ClusterOptions& opts,
                      exec::Context& ctx, Clustering& out)
      : g_(g),
        out_(out),
        engine_(ctx.growing_engine(g, opts.policy, opts.partition)),
        covered_(g.num_nodes(), 0),
        uncovered_(g.num_nodes()) {
    engine_.set_presplit(opts.presplit);
    engine_.set_frontier_options(opts.frontier);
    engine_.set_transport_options(opts.transport);
    engine_.set_placement_options(opts.placement);
    engine_.reset();
    out_.center_of.assign(g.num_nodes(), kInvalidNode);
    out_.dist_to_center.assign(g.num_nodes(), kInfiniteWeight);
  }

  [[nodiscard]] GrowingEngine& engine() noexcept { return engine_; }
  [[nodiscard]] NodeId uncovered() const noexcept { return uncovered_; }
  [[nodiscard]] bool is_covered(NodeId u) const noexcept {
    return covered_[u] != 0;
  }

  /// The stage loop both algorithms share, with the MR accounting charged in
  /// one place: one auxiliary round for center selection (sample +
  /// broadcast), one for assignment + logical contraction. The rule supplies
  ///   more_stages()    — loop condition (also advances CLUSTER2's iteration
  ///                      counter);
  ///   select_centers() — seed this stage's sources into the engine;
  ///   grow()           — the PartialGrowth call(s): rebuild_frontier +
  ///                      engine.run, including CLUSTER's Δ-doubling search
  ///                      (any auxiliary rounds it charges are its own);
  ///   contract()       — cover everything the stage reached (via cover()).
  template <typename Rule>
  void run_stages(Rule&& rule) {
    while (rule.more_stages()) {
      out_.stages++;
      out_.stats.auxiliary_rounds++;  // center selection round
      rule.select_centers();
      rule.grow();
      out_.stats.auxiliary_rounds++;  // assignment + contraction round
      rule.contract();
    }
  }

  /// Logical contraction of one node (DESIGN.md §3): u joins `center`'s
  /// cluster at distance `dist` and from now on proposes from its label but
  /// never accepts a new one — the effect of Procedure Contract's
  /// re-attached frontier edges.
  void cover(NodeId u, NodeId center, Weight dist) {
    covered_[u] = 1;
    engine_.block(u);
    out_.center_of[u] = center;
    out_.dist_to_center[u] = dist;
    --uncovered_;
  }

  /// The shared tail: remaining uncovered nodes become singleton clusters,
  /// then the ascending centers list and the clustering radius are derived
  /// from the final assignment.
  void finalize() {
    const NodeId n = g_.num_nodes();
    for (NodeId u = 0; u < n; ++u) {
      if (out_.center_of[u] == kInvalidNode) {
        out_.center_of[u] = u;
        out_.dist_to_center[u] = 0.0;
      }
    }
    std::vector<std::uint8_t> is_center(n, 0);
    for (NodeId u = 0; u < n; ++u) is_center[out_.center_of[u]] = 1;
    for (NodeId u = 0; u < n; ++u) {
      if (is_center[u]) out_.centers.push_back(u);
    }
    out_.radius = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      out_.radius = std::max(out_.radius, out_.dist_to_center[u]);
    }
  }

 private:
  const Graph& g_;
  Clustering& out_;
  GrowingEngine& engine_;
  std::vector<std::uint8_t> covered_;
  NodeId uncovered_;
};

}  // namespace gdiam::core::detail
