#pragma once
// Algorithm CLUSTER(G, τ) — Section 3 of the paper.
//
// Grows disjoint clusters of bounded weighted radius in O(log n) stages.
// Each stage selects a fresh random batch of centers among still-uncovered
// nodes (probability γ·τ·log n / #uncovered, γ = 4·ln 2), then performs
// Δ-growing steps with geometrically increasing guesses of Δ until at least
// half of the uncovered nodes are captured. Contraction is performed
// logically: covered nodes re-enter later stages as zero-distance sources of
// their cluster and never accept a new label — exactly the effect of
// Procedure Contract's re-attached frontier edges (DESIGN.md §3).
//
// The practical optimizations of the paper's Section 5 are exposed as
// options: the initial Δ guess (average edge weight by default — the
// pseudocode's minimum edge weight and a fixed value are also available) and
// the cap on growing steps per PartialGrowth call (the final remark of
// Section 4, trading approximation for round complexity).

#include <cstdint>
#include <vector>

#include "core/growing.hpp"
#include "exec/options.hpp"
#include "graph/graph.hpp"
#include "mr/stats.hpp"

namespace gdiam::exec {
class Context;
}  // namespace gdiam::exec

namespace gdiam::core {

/// How the initial guess of Δ is chosen before the doubling search.
enum class DeltaInit {
  kMinWeight,      // pseudocode: Δ ← min edge weight
  kAverageWeight,  // Section 5: "a good initial guess for Δ is the average
                   // edge weight" (the default)
  kFixed,          // caller-provided value (used by the Δ-init ablation)
};

/// CLUSTER knobs. The shared execution knobs — `frontier` (adaptive
/// sparse/dense engine for the growing steps; adaptive=false is the legacy
/// bit-identical baseline), `partition` (shard layout for
/// GrowingPolicy::kPartitioned; ignored by kPush/kPull) and `presplit`
/// (Δ-presplit adjacency toggle, threaded into the growing engine) — are
/// inherited from exec::ExecOptions (DESIGN.md §8).
struct ClusterOptions : exec::ExecOptions {
  /// Target decomposition granularity τ (number-of-clusters knob; the final
  /// clustering has O(τ log² n) clusters).
  std::uint32_t tau = 64;
  DeltaInit delta_init = DeltaInit::kAverageWeight;
  /// Initial Δ when delta_init == kFixed.
  Weight delta_fixed = 1.0;
  /// Stop growing stages when #uncovered < stop_factor · τ · log₂ n and make
  /// the remainder singleton clusters (pseudocode uses 8).
  double stop_factor = 8.0;
  /// Center-selection constant γ (pseudocode: 4·ln 2).
  double gamma = 2.772588722239781;
  /// Cap on Δ-growing steps per PartialGrowth invocation (Section 4 final
  /// remark suggests O(n/τ)); 0 = unlimited.
  std::uint64_t max_steps_per_growth = 0;
  GrowingPolicy policy = GrowingPolicy::kPush;
  std::uint64_t seed = 1;
};

/// A decomposition of the node set into disjoint clusters.
struct Clustering {
  /// Center (original node id) of the cluster containing each node.
  std::vector<NodeId> center_of;
  /// Upper bound on dist(center_of[u], u) — full double precision.
  std::vector<Weight> dist_to_center;
  /// Distinct centers, ascending.
  std::vector<NodeId> centers;
  /// max dist_to_center: the clustering radius R_CL(τ).
  Weight radius = 0.0;
  /// Final value of Δ (∆_end in the paper's analysis). 0 for CLUSTER2.
  Weight delta_end = 0.0;
  /// Outer-loop stages executed (CLUSTER) or iterations (CLUSTER2).
  std::uint32_t stages = 0;
  mr::RoundStats stats;

  [[nodiscard]] NodeId num_clusters() const noexcept {
    return static_cast<NodeId>(centers.size());
  }

  /// Structural sanity: sizes match, every node assigned, centers have
  /// distance 0 and belong to their own cluster.
  [[nodiscard]] bool validate(const Graph& g) const;
};

/// Runs CLUSTER(G, τ). Every node ends up in exactly one cluster; works on
/// disconnected graphs (isolated regions become singletons). A non-null
/// `ctx` (exec/context.hpp) pools the growing engine and the Δ-presplit /
/// shard-layout caches across calls — the decomposition is bit-identical
/// with or without one (tests/test_exec_context.cpp).
[[nodiscard]] Clustering cluster(const Graph& g, const ClusterOptions& opts,
                                 exec::Context* ctx = nullptr);

/// τ that keeps the final number of clusters around `target_clusters`
/// (the paper sizes τ so the quotient fits one machine: ≤ 100k nodes).
/// Inverts the O(τ log² n) cluster-count estimate conservatively.
[[nodiscard]] std::uint32_t tau_for_cluster_target(NodeId n,
                                                   NodeId target_clusters);

}  // namespace gdiam::core
