#include "core/growing.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <span>

#include "exec/context.hpp"
#include "mr/placement.hpp"
#include "util/topology.hpp"

namespace gdiam::core {

GrowingEngine::GrowingEngine(const Graph& g, GrowingPolicy policy,
                             const mr::PartitionOptions& partition,
                             exec::Context* ctx)
    : g_(g), policy_(policy), ctx_(ctx), popts_(partition) {
  if (policy_ == GrowingPolicy::kPartitioned) {
    if (ctx_ != nullptr) {
      partition_ = &ctx_->partition_for(g_, popts_);
    } else {
      owned_partition_ = std::make_unique<mr::Partition>(g_, popts_);
      partition_ = owned_partition_.get();
    }
    mr::PlacementPlan plan = mr::resolve_placement(
        popts_placement_, partition_->num_partitions());
    transport_ = mr::Launcher::make_transport(
        topts_, partition_->num_partitions(), plan);
    bsp_ = std::make_unique<mr::BspEngine>(*partition_, transport_.get());
    exchange_.resize(partition_->num_partitions());
    exchange_.set_node_map(plan.node_of_shard());
  }
  reset();
}

void GrowingEngine::set_transport_options(const mr::TransportOptions& opts) {
  if (policy_ != GrowingPolicy::kPartitioned || opts == topts_) {
    topts_ = opts;
    return;
  }
  topts_ = opts;
  rebuild_transport();
}

void GrowingEngine::set_placement_options(const mr::PlacementOptions& opts) {
  if (policy_ != GrowingPolicy::kPartitioned || opts == popts_placement_) {
    popts_placement_ = opts;
    return;
  }
  // The plan can also change under a fixed strategy when GDIAM_TOPOLOGY
  // changed between runs on a pooled engine; rebuild_transport re-resolves
  // it, so switching options is always sufficient to re-place.
  popts_placement_ = opts;
  rebuild_transport();
}

void GrowingEngine::rebuild_transport() {
  mr::PlacementPlan plan =
      mr::resolve_placement(popts_placement_, partition_->num_partitions());
  transport_ = mr::Launcher::make_transport(
      topts_, partition_->num_partitions(), plan);
  bsp_ = std::make_unique<mr::BspEngine>(*partition_, transport_.get());
  exchange_.set_node_map(plan.node_of_shard());
}

void GrowingEngine::reset() {
  const NodeId n = g_.num_nodes();
  const bool double_buffered = policy_ != GrowingPolicy::kPush;
  labels_.assign(n, kUnassignedLabel);
  blocked_.assign(n, 0);
  frontier_.clear();
  frontier_labels_.clear();
  in_next_frontier_.assign(n, 0);
  scratch_.assign(double_buffered ? n : 0, kUnassignedLabel);
  changed_.assign(n, 0);
  next_changed_.assign(double_buffered ? n : 0, 0);
  ++resident_epoch_;  // blocked_ was cleared: pool workers must re-snapshot
  reset_frontier_state();
}

/// (Re)initializes every piece of adaptive frontier bookkeeping from fopts_
/// — the single place reset() and set_frontier_options() share, so new
/// adaptive state cannot be re-initialized on one path and missed on the
/// other. Kept in sync even when adaptive=false: not a hot path.
void GrowingEngine::reset_frontier_state() {
  const NodeId n = g_.num_nodes();
  afrontier_.reset(n, fopts_);
  FrontierOptions sparse_only = fopts_;
  sparse_only.adaptive = false;  // candidate sets stay in the sparse rep
  rfrontier_.reset(n, sparse_only);
  touch_round_ = 0;
  if (policy_ == GrowingPolicy::kPartitioned) {
    touch_stamp_.assign(n, 0);
    const std::uint32_t k = partition_->num_partitions();
    shard_active_.assign(k, {});
    shard_active_next_.assign(k, {});
    shard_touched_.assign(k, {});
    // The outer vector must hold its address from before the pool workers
    // fork: their frozen decode closures index into it every superstep.
    if (pool_senders_.size() != k) pool_senders_.assign(k, {});
  }
}

void GrowingEngine::set_frontier_options(const FrontierOptions& opts) {
  fopts_ = opts;
  reset_frontier_state();
}

void GrowingEngine::clear_labels() {
  std::fill(labels_.begin(), labels_.end(), kUnassignedLabel);
  std::fill(changed_.begin(), changed_.end(), 0);
  frontier_.clear();
  frontier_labels_.clear();
  afrontier_.clear();
  for (auto& a : shard_active_) a.clear();
}

void GrowingEngine::set_source(NodeId u, NodeId center, Weight dist) {
  labels_[u] = pack_label(static_cast<float>(dist), center);
  changed_[u] = 1;
}

void GrowingEngine::rebuild_frontier(const GrowingStepParams& params) {
  if (fopts_.adaptive) {
    rebuild_frontier_adaptive(params);
    return;
  }
  frontier_.clear();
  for (NodeId u = 0; u < g_.num_nodes(); ++u) {
    const PackedLabel lab = labels_[u];
    if (!label_assigned(lab)) {
      changed_[u] = 0;
      continue;
    }
    changed_[u] = 1;  // pull policy: everyone labeled re-proposes once
    if (label_dist(lab) < budget_of(params, label_center(lab))) {
      frontier_.push_back(u);
    }
  }
  frontier_labels_.assign(frontier_.size(), kUnassignedLabel);
  for (std::size_t i = 0; i < frontier_.size(); ++i) {
    frontier_labels_[i] = labels_[frontier_[i]];
  }
}

// The adaptive analogue: re-derive the active set from the labels into the
// Frontier (and the per-shard lists for kPartitioned). kPush enumerates only
// nodes that can still propose under `params`; the pull/partitioned senders
// are every labeled node, exactly the baseline's changed_ = 1 sweep.
void GrowingEngine::rebuild_frontier_adaptive(const GrowingStepParams& params) {
  const NodeId n = g_.num_nodes();
  afrontier_.clear();
  for (auto& a : shard_active_) a.clear();
  for (NodeId u = 0; u < n; ++u) {
    const PackedLabel lab = labels_[u];
    if (!label_assigned(lab)) continue;
    if (policy_ == GrowingPolicy::kPush &&
        !(label_dist(lab) < budget_of(params, label_center(lab)))) {
      continue;
    }
    afrontier_.insert_serial(u);
    if (policy_ == GrowingPolicy::kPartitioned) {
      shard_active_[partition_->owner(u)].push_back(u);
    }
  }
  afrontier_.advance();
  if (policy_ == GrowingPolicy::kPush) snapshot_push_labels();
}

/// Aligns frontier_labels_ with the adaptive frontier's node list — the
/// step-start label snapshot the push relaxation reads.
void GrowingEngine::snapshot_push_labels() {
  const auto& nodes = afrontier_.nodes();
  frontier_labels_.resize(nodes.size());
#pragma omp parallel for schedule(static, 2048)
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    frontier_labels_[i] = std::atomic_ref<PackedLabel>(labels_[nodes[i]])
                              .load(std::memory_order_relaxed);
  }
}

void GrowingEngine::ensure_split(Weight threshold) {
  // Context-backed engines re-resolve on every step: other kernels sharing
  // the context may have LRU-evicted the borrowed entry since the last step
  // (even at an unchanged threshold), so a cached pointer cannot be trusted
  // across calls. The cache is MRU-ordered, making the steady-state lookup
  // an O(1) front-entry compare; an evicted entry is simply rebuilt.
  if (ctx_ == nullptr && split_ready_ && split_threshold_ == threshold) {
    return;
  }
  if (policy_ == GrowingPolicy::kPartitioned) {
    const std::vector<CsrSplit>* before = shard_splits_;
    if (ctx_ != nullptr) {
      shard_splits_ = &ctx_->shard_splits_for(g_, popts_, threshold);
    } else {
      // First-touch each shard's split on its placement node, mirroring the
      // context-backed path (exec::Context::shard_splits_for). No-op binds
      // under an inactive plan.
      const mr::PlacementPlan plan = mr::resolve_placement(
          popts_placement_, partition_->num_partitions());
      shard_splits_own_.clear();
      shard_splits_own_.reserve(partition_->num_partitions());
      for (mr::ShardId s = 0; s < partition_->num_partitions(); ++s) {
        const mr::Shard& sh = partition_->shards()[s];
        util::topo::ScopedAffinity bind(plan.cpus_of_node(plan.node_of(s)));
        shard_splits_own_.push_back(
            presplit_csr(sh.offsets, sh.targets, sh.weights, threshold));
      }
      shard_splits_ = &shard_splits_own_;
    }
    // Pool workers read the split layout from their fork-time snapshot; a
    // re-resolution that lands on a different entry (or the same entry
    // rebuilt for a new threshold) invalidates that snapshot. The (pointer,
    // threshold) pair is a sound staleness key because an entry's content
    // is a pure function of (graph, partition, threshold).
    if (shard_splits_ != before || split_threshold_ != threshold) {
      ++resident_epoch_;
    }
  } else {
    if (ctx_ != nullptr) {
      split_ = &ctx_->split_for(g_, threshold);
    } else {
      split_own_ = SplitCsr(g_, threshold);
      split_ = &split_own_;
    }
  }
  split_threshold_ = threshold;
  split_ready_ = true;
}

GrowingStepResult GrowingEngine::step(const GrowingStepParams& params) {
  if (presplit_) ensure_split(params.light_threshold);
  switch (policy_) {
    case GrowingPolicy::kPush: return step_push(params);
    case GrowingPolicy::kPartitioned:
      return fopts_.adaptive ? step_partitioned_adaptive(params)
                             : step_partitioned(params);
    case GrowingPolicy::kPull:
    default:
      return fopts_.adaptive ? step_pull_adaptive(params) : step_pull(params);
  }
}

GrowingStepResult GrowingEngine::step_push(const GrowingStepParams& params) {
  GrowingStepResult out;
  const bool adaptive = fopts_.adaptive;
  // Adaptive rounds enumerate the Frontier's materialized list; the
  // baseline keeps its own vector. Same set either way.
  const std::vector<NodeId>& active = adaptive ? afrontier_.nodes() : frontier_;
  std::uint64_t messages = 0, updates = 0, newly = 0;

#pragma omp parallel for schedule(dynamic, 64) \
    reduction(+ : messages, updates, newly)
  for (std::size_t f = 0; f < active.size(); ++f) {
    const NodeId u = active[f];
    // Labels are read from the step-start snapshot so the step is exactly
    // one synchronous round of message exchange (MR semantics).
    const PackedLabel lab = frontier_labels_[f];
    const float b = label_dist(lab);
    const NodeId c = label_center(lab);
    const Weight budget = budget_of(params, c);
    if (!(static_cast<Weight>(b) < budget)) continue;

    // Presplit: the light segment holds exactly the w ≤ light_threshold arcs,
    // so the heavy-edge filter disappears from the inner loop.
    const auto nbr = presplit_ ? split_->light_neighbors(u) : g_.neighbors(u);
    const auto wts = presplit_ ? split_->light_weights(u) : g_.weights(u);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      const Weight w = wts[i];
      if (!presplit_ && w > params.light_threshold) continue;  // heavy edge
      const Weight nb = static_cast<Weight>(b) + w;
      if (nb > budget) continue;
      const NodeId v = nbr[i];
      if (blocked_[v]) continue;  // contracted-cluster members never accept
      ++messages;

      const PackedLabel cand = pack_label(static_cast<float>(nb), c);
      std::atomic_ref<PackedLabel> slot(labels_[v]);
      PackedLabel cur = slot.load(std::memory_order_relaxed);
      while (cand < cur) {
        if (slot.compare_exchange_weak(cur, cand,
                                       std::memory_order_relaxed)) {
          // Count each node once per step: the first winner (frontier stamp
          // or legacy flag 0 -> 1) observed the step-start label, making the
          // counts deterministic.
          bool first;
          if (adaptive) {
            first = afrontier_.insert(v);
          } else {
            std::atomic_ref<std::uint8_t> flag(in_next_frontier_[v]);
            first = flag.exchange(1, std::memory_order_relaxed) == 0;
          }
          if (first) {
            ++updates;
            if (cur == kUnassignedLabel) ++newly;
            if (!adaptive) next_buffers_.local().push_back(v);
          }
          break;
        }
      }
    }
  }

  out.messages = messages;
  out.updates = updates;
  out.newly_labeled = newly;

  if (adaptive) {
    // The step is classified by the representation that collected its next
    // frontier (the round convention of DESIGN.md §7).
    if (afrontier_.collect_mode() == FrontierMode::kDense) {
      out.dense_rounds = 1;
    } else {
      out.sparse_rounds = 1;
    }
    afrontier_.advance();
    snapshot_push_labels();
    return out;
  }

  frontier_ = next_buffers_.gather();
  frontier_labels_.resize(frontier_.size());
  // Flag reset + label snapshot in one parallel sweep (the snapshot was the
  // last serial per-node loop on the push hot path).
#pragma omp parallel for schedule(static, 2048)
  for (std::size_t i = 0; i < frontier_.size(); ++i) {
    const NodeId v = frontier_[i];
    in_next_frontier_[v] = 0;
    frontier_labels_[i] =
        std::atomic_ref<PackedLabel>(labels_[v]).load(std::memory_order_relaxed);
  }
  return out;
}

GrowingStepResult GrowingEngine::step_pull(const GrowingStepParams& params) {
  GrowingStepResult out;
  const NodeId n = g_.num_nodes();
  std::uint64_t messages = 0, updates = 0, newly = 0;

#pragma omp parallel for schedule(dynamic, 1024) \
    reduction(+ : messages, updates, newly)
  for (NodeId v = 0; v < n; ++v) {
    next_changed_[v] = 0;
    if (blocked_[v]) {
      scratch_[v] = labels_[v];
      continue;
    }
    PackedLabel best = labels_[v];
    // Edge weights are symmetric, so v's light in-edges are exactly its
    // light out-edges: the presplit segment serves the pull direction too.
    const auto nbr = presplit_ ? split_->light_neighbors(v) : g_.neighbors(v);
    const auto wts = presplit_ ? split_->light_weights(v) : g_.weights(v);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      const NodeId u = nbr[i];
      // Nodes unchanged since the last step already delivered their
      // proposal in an earlier round; skipping them keeps the message count
      // identical to the push policy.
      if (!changed_[u]) continue;
      const Weight w = wts[i];
      if (!presplit_ && w > params.light_threshold) continue;
      const PackedLabel lab = labels_[u];
      if (!label_assigned(lab)) continue;
      const float b = label_dist(lab);
      const NodeId c = label_center(lab);
      const Weight budget = budget_of(params, c);
      if (!(static_cast<Weight>(b) < budget)) continue;
      const Weight nb = static_cast<Weight>(b) + w;
      if (nb > budget) continue;
      ++messages;
      best = std::min(best, pack_label(static_cast<float>(nb), c));
    }
    scratch_[v] = best;
    if (best != labels_[v]) {
      next_changed_[v] = 1;
      ++updates;
      if (labels_[v] == kUnassignedLabel) ++newly;
    }
  }

  labels_.swap(scratch_);
  changed_.swap(next_changed_);
  out.messages = messages;
  out.updates = updates;
  out.newly_labeled = newly;
  return out;
}

// Adaptive pull. Dense rounds run the same full-length Jacobi sweep as the
// baseline (sender membership answered by frontier stamps instead of the
// changed_ bytes — contains() stays stable while the round's dense bitmap
// collects). Sparse rounds restrict the sweep to *receiver candidates*: the
// light neighbors of the senders. Every proposal the dense sweep would count
// originates at a sender with an assigned, within-budget label and travels a
// light edge, so the candidate set covers every node that could receive a
// message — restricting the scan changes no counter and no label, only the
// number of segments touched (O(frontier volume) instead of O(n + m)).
GrowingStepResult GrowingEngine::step_pull_adaptive(
    const GrowingStepParams& params) {
  GrowingStepResult out;
  const NodeId n = g_.num_nodes();
  std::uint64_t messages = 0, updates = 0, newly = 0;
  const bool dense = afrontier_.collect_mode() == FrontierMode::kDense;

  if (dense) {
    out.dense_rounds = 1;
#pragma omp parallel for schedule(dynamic, 1024) \
    reduction(+ : messages, updates, newly)
    for (NodeId v = 0; v < n; ++v) {
      if (blocked_[v]) {
        scratch_[v] = labels_[v];
        continue;
      }
      PackedLabel best = labels_[v];
      const auto nbr = presplit_ ? split_->light_neighbors(v) : g_.neighbors(v);
      const auto wts = presplit_ ? split_->light_weights(v) : g_.weights(v);
      for (std::size_t i = 0; i < nbr.size(); ++i) {
        const NodeId u = nbr[i];
        if (!afrontier_.contains(u)) continue;  // unchanged since last step
        const Weight w = wts[i];
        if (!presplit_ && w > params.light_threshold) continue;
        const PackedLabel lab = labels_[u];
        if (!label_assigned(lab)) continue;
        const float b = label_dist(lab);
        const NodeId c = label_center(lab);
        const Weight budget = budget_of(params, c);
        if (!(static_cast<Weight>(b) < budget)) continue;
        const Weight nb = static_cast<Weight>(b) + w;
        if (nb > budget) continue;
        ++messages;
        best = std::min(best, pack_label(static_cast<float>(nb), c));
      }
      scratch_[v] = best;
      if (best != labels_[v]) {
        ++updates;
        if (labels_[v] == kUnassignedLabel) ++newly;
        afrontier_.insert(v);
      }
    }
    labels_.swap(scratch_);
  } else {
    out.sparse_rounds = 1;
    // Candidate marking: light neighbors of every sender that could propose.
    const auto& senders = afrontier_.nodes();
#pragma omp parallel for schedule(dynamic, 64)
    for (std::size_t s = 0; s < senders.size(); ++s) {
      const NodeId u = senders[s];
      const PackedLabel lab = labels_[u];
      if (!label_assigned(lab)) continue;
      if (!(static_cast<Weight>(label_dist(lab)) <
            budget_of(params, label_center(lab)))) {
        continue;
      }
      const auto nbr = presplit_ ? split_->light_neighbors(u) : g_.neighbors(u);
      const auto wts = presplit_ ? split_->light_weights(u) : g_.weights(u);
      for (std::size_t i = 0; i < nbr.size(); ++i) {
        if (!presplit_ && wts[i] > params.light_threshold) continue;
        const NodeId v = nbr[i];
        if (!blocked_[v]) rfrontier_.insert(v);
      }
    }
    rfrontier_.advance();
    const auto& recv = rfrontier_.nodes();
    pull_best_.resize(recv.size());

    // Phase A — pure reads of the step-start labels (Jacobi semantics): the
    // exact inner loop of the dense sweep, per candidate.
#pragma omp parallel for schedule(dynamic, 256) reduction(+ : messages)
    for (std::size_t r = 0; r < recv.size(); ++r) {
      const NodeId v = recv[r];
      PackedLabel best = labels_[v];
      const auto nbr = presplit_ ? split_->light_neighbors(v) : g_.neighbors(v);
      const auto wts = presplit_ ? split_->light_weights(v) : g_.weights(v);
      for (std::size_t i = 0; i < nbr.size(); ++i) {
        const NodeId u = nbr[i];
        if (!afrontier_.contains(u)) continue;
        const Weight w = wts[i];
        if (!presplit_ && w > params.light_threshold) continue;
        const PackedLabel lab = labels_[u];
        if (!label_assigned(lab)) continue;
        const float b = label_dist(lab);
        const NodeId c = label_center(lab);
        const Weight budget = budget_of(params, c);
        if (!(static_cast<Weight>(b) < budget)) continue;
        const Weight nb = static_cast<Weight>(b) + w;
        if (nb > budget) continue;
        ++messages;
        best = std::min(best, pack_label(static_cast<float>(nb), c));
      }
      pull_best_[r] = best;
    }

    // Phase B — commit. Candidates are deduplicated, so each v has exactly
    // one writer; labels of non-candidates cannot change.
#pragma omp parallel for schedule(static, 2048) reduction(+ : updates, newly)
    for (std::size_t r = 0; r < recv.size(); ++r) {
      const NodeId v = recv[r];
      const PackedLabel best = pull_best_[r];
      const PackedLabel old = labels_[v];
      if (best != old) {
        labels_[v] = best;
        ++updates;
        if (old == kUnassignedLabel) ++newly;
        afrontier_.insert(v);
      }
    }
  }

  afrontier_.advance();
  out.messages = messages;
  out.updates = updates;
  out.newly_labeled = newly;
  return out;
}

// Resident-worker support (PoolTransport, mr/transport.hpp §DESIGN.md §10).
// A pool worker forks once per epoch and keeps computing with closures and
// member state frozen at fork time, so each step's senders are evaluated on
// the coordinator — where labels_/changed_/afrontier_/params are current —
// and shipped as (local id, label, budget) triples. The enumeration order
// reproduces the in-process compute exactly (owned ids ascending on the
// baseline and dense rounds, shard_active_ order on sparse rounds), because
// staging order is delivery order is the determinism contract.
void GrowingEngine::build_pool_senders(const GrowingStepParams& params,
                                       bool adaptive, bool dense) {
  pool_light_threshold_ = params.light_threshold;
  const auto k = static_cast<std::int64_t>(partition_->num_partitions());
#pragma omp parallel for schedule(dynamic, 1)
  for (std::int64_t s = 0; s < k; ++s) {
    const mr::Shard& sh = partition_->shard(static_cast<mr::ShardId>(s));
    auto& senders = pool_senders_[static_cast<std::size_t>(s)];
    senders.clear();
    auto try_push = [&](NodeId u, NodeId l) {
      const PackedLabel lab = labels_[u];
      if (!label_assigned(lab)) return;
      const Weight budget = budget_of(params, label_center(lab));
      if (!(static_cast<Weight>(label_dist(lab)) < budget)) return;
      senders.push_back(PoolSender{l, lab, budget});
    };
    if (!adaptive) {
      for (NodeId l = 0; l < sh.num_owned; ++l) {
        const NodeId u = sh.global_of_local[l];
        if (changed_[u]) try_push(u, l);
      }
    } else if (dense) {
      for (NodeId l = 0; l < sh.num_owned; ++l) {
        const NodeId u = sh.global_of_local[l];
        if (afrontier_.contains(u)) try_push(u, l);
      }
    } else {
      for (const NodeId u : shard_active_[static_cast<std::size_t>(s)]) {
        try_push(u, partition_->local_id(u));
      }
    }
  }
}

// The shipped-sender edge loop: byte-for-byte the same relaxation arithmetic
// as the in-process computes (float label distance widened to Weight, the
// same budget/blocked tests, the same loopback/send staging), minus every
// read of per-step coordinator state — that all arrived via the codec.
void GrowingEngine::pool_compute_shard(const mr::Shard& sh,
                                       mr::Exchange<LabelProposal>& ex,
                                       std::uint64_t& messages_out) const {
  std::uint64_t messages = 0;
  const CsrSplit* ss = presplit_ ? &(*shard_splits_)[sh.id] : nullptr;
  const NodeId* tgt = presplit_ ? ss->targets.data() : sh.targets.data();
  const Weight* wt = presplit_ ? ss->weights.data() : sh.weights.data();
  for (const PoolSender& e : pool_senders_[sh.id]) {
    const float b = label_dist(e.label);
    const NodeId c = label_center(e.label);
    const EdgeIndex lo = sh.offsets[e.local];
    const EdgeIndex hi = presplit_ ? ss->split[e.local]
                                   : sh.offsets[e.local + 1];
    for (EdgeIndex i = lo; i < hi; ++i) {
      const Weight w = wt[i];
      if (!presplit_ && w > pool_light_threshold_) continue;
      const Weight nb = static_cast<Weight>(b) + w;
      if (nb > e.budget) continue;
      const NodeId tl = tgt[i];
      const NodeId v = sh.global_of_local[tl];
      if (blocked_[v]) continue;
      ++messages;
      const PackedLabel cand = pack_label(static_cast<float>(nb), c);
      if (!sh.is_ghost(tl)) {
        ex.loopback(sh.id, LabelProposal{tl, cand});
      } else {
        ex.send(sh.id, sh.ghost_owner[tl - sh.num_owned],
                LabelProposal{partition_->local_id(v), cand});
      }
    }
  }
  messages_out = messages;
}

mr::StepInputCodec GrowingEngine::make_pool_codec() {
  mr::StepInputCodec codec;
  // Input frame, per shard: [Weight light_threshold][PoolSender...]. Both
  // closures capture `this` — the engine outlives the run (context-pooled),
  // so the worker's frozen decode writes through a stable address into
  // members whose outer storage predates the fork.
  codec.encode = [this](mr::ShardId s, std::vector<std::byte>& buf) {
    const auto* t = reinterpret_cast<const std::byte*>(&pool_light_threshold_);
    buf.insert(buf.end(), t, t + sizeof pool_light_threshold_);
    const auto& senders = pool_senders_[s];
    const auto* p = reinterpret_cast<const std::byte*>(senders.data());
    buf.insert(buf.end(), p, p + senders.size() * sizeof(PoolSender));
  };
  codec.decode = [this](mr::ShardId s, const std::byte* p, std::size_t len) {
    std::memcpy(&pool_light_threshold_, p, sizeof pool_light_threshold_);
    p += sizeof pool_light_threshold_;
    len -= sizeof pool_light_threshold_;
    auto& senders = pool_senders_[s];
    senders.resize(len / sizeof(PoolSender));
    if (len != 0) std::memcpy(senders.data(), p, len);
  };
  codec.epoch = resident_epoch_;
  return codec;
}

// One Δ-growing step as one BSP superstep. Semantically this is step_pull
// re-expressed sender-side: every proposal is computed from the step-start
// labels and the step outcome is min(step-start label, proposals), so labels
// and counters are bit-identical to kPush/kPull. The difference is *where*
// the work runs: each shard relaxes only the arcs it owns, writes only the
// scratch slots of nodes it owns, and sends proposals for ghost targets
// through the exchange — which is exactly the traffic a distributed
// deployment would shuffle between reducers.
GrowingStepResult GrowingEngine::step_partitioned(
    const GrowingStepParams& params) {
  GrowingStepResult out;
  const NodeId n = g_.num_nodes();
  const std::uint32_t k = partition_->num_partitions();
  // Remote transport: compute runs in forked workers, so its owned-scratch
  // folds are staged as loopback records and replayed by apply instead
  // (DESIGN.md §9) — the min over the same proposal set, in the same order.
  const bool remote = bsp_->remote_compute();
  // Resident transport (PoolTransport): the frozen worker closures can't see
  // this step's labels_/changed_/params, so the sender set is evaluated here
  // and shipped through the codec; compute replays it edge-for-edge.
  const bool resident = bsp_->resident_compute();
  mr::StepInputCodec pool_codec;
  if (resident) {
    build_pool_senders(params, /*adaptive=*/false, /*dense=*/false);
    pool_codec = make_pool_codec();
  }

  // Step-start snapshot; shards fold proposals into scratch_ below.
#pragma omp parallel for schedule(static, 4096)
  for (NodeId v = 0; v < n; ++v) scratch_[v] = labels_[v];

  // Per-shard counters, summed after the superstep (single-writer slots,
  // like the exchange's mailbox rows; shard_messages doubles as the
  // transport's shipped counter slab, so compute tallies survive workers).
  std::vector<std::uint64_t> shard_messages(k, 0);
  std::vector<std::uint64_t> shard_updates(k, 0);
  std::vector<std::uint64_t> shard_newly(k, 0);

  auto compute = [&](const mr::Shard& sh, mr::Exchange<LabelProposal>& ex) {
    if (resident) {  // shipped senders; frame-locals below stay untouched
      pool_compute_shard(sh, ex, shard_messages[sh.id]);
      return;
    }
    std::uint64_t messages = 0;
    // Presplit shards share the flat layout's discipline: the light half of
    // each owned node's permuted segment, no per-edge weight filter.
    const CsrSplit* ss = presplit_ ? &(*shard_splits_)[sh.id] : nullptr;
    const NodeId* tgt = presplit_ ? ss->targets.data() : sh.targets.data();
    const Weight* wt = presplit_ ? ss->weights.data() : sh.weights.data();
    for (NodeId l = 0; l < sh.num_owned; ++l) {
      const NodeId u = sh.global_of_local[l];
      if (!changed_[u]) continue;
      const PackedLabel lab = labels_[u];
      if (!label_assigned(lab)) continue;
      const float b = label_dist(lab);
      const NodeId c = label_center(lab);
      const Weight budget = budget_of(params, c);
      if (!(static_cast<Weight>(b) < budget)) continue;
      const EdgeIndex lo = sh.offsets[l];
      const EdgeIndex hi = presplit_ ? ss->split[l] : sh.offsets[l + 1];
      for (EdgeIndex i = lo; i < hi; ++i) {
        const Weight w = wt[i];
        if (!presplit_ && w > params.light_threshold) continue;
        const Weight nb = static_cast<Weight>(b) + w;
        if (nb > budget) continue;
        const NodeId tl = tgt[i];
        const NodeId v = sh.global_of_local[tl];
        if (blocked_[v]) continue;  // contracted members never accept
        ++messages;
        const PackedLabel cand = pack_label(static_cast<float>(nb), c);
        if (!sh.is_ghost(tl)) {
          if (remote) {
            ex.loopback(sh.id, LabelProposal{tl, cand});
          } else {
            // Shard-internal proposal: fold immediately (only this shard's
            // thread writes scratch slots of nodes it owns).
            scratch_[v] = std::min(scratch_[v], cand);
          }
        } else {
          ex.send(sh.id, sh.ghost_owner[tl - sh.num_owned],
                  LabelProposal{partition_->local_id(v), cand});
        }
      }
    }
    shard_messages[sh.id] = messages;
  };

  auto apply = [&](const mr::Shard& sh,
                   std::span<const LabelProposal> inbox) {
    for (const LabelProposal& m : inbox) {
      const NodeId v = sh.global_of_local[m.target];
      scratch_[v] = std::min(scratch_[v], m.label);
    }
    // Commit the shard's owned slice: detect improvements against the
    // step-start labels exactly like step_pull's per-node comparison.
    std::uint64_t updates = 0, newly = 0;
    for (NodeId l = 0; l < sh.num_owned; ++l) {
      const NodeId v = sh.global_of_local[l];
      next_changed_[v] = 0;
      if (scratch_[v] != labels_[v]) {
        next_changed_[v] = 1;
        ++updates;
        if (labels_[v] == kUnassignedLabel) ++newly;
      }
    }
    shard_updates[sh.id] = updates;
    shard_newly[sh.id] = newly;
  };

  const mr::ExchangeCounters traffic = bsp_->superstep(
      exchange_, compute, apply, nullptr,
      std::span<std::uint64_t>(shard_messages.data(), shard_messages.size()),
      resident ? &pool_codec : nullptr);

  labels_.swap(scratch_);
  changed_.swap(next_changed_);
  for (std::uint32_t s = 0; s < k; ++s) {
    out.messages += shard_messages[s];
    out.updates += shard_updates[s];
    out.newly_labeled += shard_newly[s];
  }
  out.cross_messages = traffic.cross_messages;
  out.cross_bytes = traffic.cross_bytes;
  out.cross_node_messages = traffic.cross_node_messages;
  out.cross_node_bytes = traffic.cross_node_bytes;
  out.wire_messages = traffic.wire_messages;
  out.wire_bytes = traffic.wire_bytes;
  return out;
}

// The adaptive superstep drops both full-vertex-range passes of the
// baseline: the O(n) labels -> scratch snapshot (scratch slots initialize
// lazily, on a node's first proposal of the step, tracked by a touch stamp)
// and the O(n) owned-range commit scan (only touched slots can differ).
// Senders enumerate per-shard active lists on sparse rounds and fall back to
// the owned-range scan with a frontier membership test on dense ones. Labels
// commit in place — the min over {step-start label} ∪ proposals is exactly
// the baseline's swapped scratch content.
GrowingStepResult GrowingEngine::step_partitioned_adaptive(
    const GrowingStepParams& params) {
  GrowingStepResult out;
  const std::uint32_t k = partition_->num_partitions();
  const bool dense = afrontier_.collect_mode() == FrontierMode::kDense;
  (dense ? out.dense_rounds : out.sparse_rounds) = 1;
  // Remote transport: compute's lazy scratch folds become loopback records
  // replayed by apply, which already does the identical touch-stamp fold for
  // routed proposals (DESIGN.md §9).
  const bool remote = bsp_->remote_compute();
  // Resident transport: the active set (dense frontier test or sparse
  // shard_active_ lists) is enumerated here, in this mode's exact order, and
  // shipped — the frozen workers replay edges without reading either.
  const bool resident = bsp_->resident_compute();
  mr::StepInputCodec pool_codec;
  if (resident) {
    build_pool_senders(params, /*adaptive=*/true, dense);
    pool_codec = make_pool_codec();
  }

  if (++touch_round_ == 0) {  // stamp generation wraparound: rebase
    std::fill(touch_stamp_.begin(), touch_stamp_.end(), 0);
    touch_round_ = 1;
  }
  // Cleared before — not inside — compute: a remote compute's clear would
  // happen in the worker and leave the coordinator's lists stale for apply.
  for (auto& touched : shard_touched_) touched.clear();

  std::vector<std::uint64_t> shard_messages(k, 0);
  std::vector<std::uint64_t> shard_updates(k, 0);
  std::vector<std::uint64_t> shard_newly(k, 0);

  auto compute = [&](const mr::Shard& sh, mr::Exchange<LabelProposal>& ex) {
    if (resident) {  // shipped senders; frame-locals below stay untouched
      pool_compute_shard(sh, ex, shard_messages[sh.id]);
      return;
    }
    std::uint64_t messages = 0;
    const CsrSplit* ss = presplit_ ? &(*shard_splits_)[sh.id] : nullptr;
    const NodeId* tgt = presplit_ ? ss->targets.data() : sh.targets.data();
    const Weight* wt = presplit_ ? ss->weights.data() : sh.weights.data();
    auto& touched = shard_touched_[sh.id];

    // Owned-target proposal with lazy scratch initialization.
    auto propose = [&](NodeId v, PackedLabel cand) {
      if (touch_stamp_[v] != touch_round_) {
        touch_stamp_[v] = touch_round_;
        scratch_[v] = labels_[v];
        touched.push_back(v);
      }
      scratch_[v] = std::min(scratch_[v], cand);
    };
    auto relax_from = [&](NodeId u, NodeId l) {
      const PackedLabel lab = labels_[u];
      if (!label_assigned(lab)) return;
      const float b = label_dist(lab);
      const NodeId c = label_center(lab);
      const Weight budget = budget_of(params, c);
      if (!(static_cast<Weight>(b) < budget)) return;
      const EdgeIndex lo = sh.offsets[l];
      const EdgeIndex hi = presplit_ ? ss->split[l] : sh.offsets[l + 1];
      for (EdgeIndex i = lo; i < hi; ++i) {
        const Weight w = wt[i];
        if (!presplit_ && w > params.light_threshold) continue;
        const Weight nb = static_cast<Weight>(b) + w;
        if (nb > budget) continue;
        const NodeId tl = tgt[i];
        const NodeId v = sh.global_of_local[tl];
        if (blocked_[v]) continue;
        ++messages;
        const PackedLabel cand = pack_label(static_cast<float>(nb), c);
        if (!sh.is_ghost(tl)) {
          if (remote) {
            ex.loopback(sh.id, LabelProposal{tl, cand});
          } else {
            propose(v, cand);
          }
        } else {
          ex.send(sh.id, sh.ghost_owner[tl - sh.num_owned],
                  LabelProposal{partition_->local_id(v), cand});
        }
      }
    };

    if (dense) {
      for (NodeId l = 0; l < sh.num_owned; ++l) {
        const NodeId u = sh.global_of_local[l];
        if (!afrontier_.contains(u)) continue;
        relax_from(u, l);
      }
    } else {
      for (const NodeId u : shard_active_[sh.id]) {
        relax_from(u, partition_->local_id(u));
      }
    }
    shard_messages[sh.id] = messages;
  };

  auto apply = [&](const mr::Shard& sh,
                   std::span<const LabelProposal> inbox) {
    auto& touched = shard_touched_[sh.id];
    for (const LabelProposal& m : inbox) {
      const NodeId v = sh.global_of_local[m.target];
      if (touch_stamp_[v] != touch_round_) {
        touch_stamp_[v] = touch_round_;
        scratch_[v] = labels_[v];
        touched.push_back(v);
      }
      scratch_[v] = std::min(scratch_[v], m.label);
    }
    // Commit: only touched slots can differ from the step-start labels.
    auto& next = shard_active_next_[sh.id];
    next.clear();
    std::uint64_t updates = 0, newly = 0;
    for (const NodeId v : touched) {
      if (scratch_[v] != labels_[v]) {
        ++updates;
        if (labels_[v] == kUnassignedLabel) ++newly;
        labels_[v] = scratch_[v];
        afrontier_.insert_serial(v);
        next.push_back(v);
      }
    }
    shard_updates[sh.id] = updates;
    shard_newly[sh.id] = newly;
  };

  const mr::ExchangeCounters traffic = bsp_->superstep(
      exchange_, compute, apply, nullptr,
      std::span<std::uint64_t>(shard_messages.data(), shard_messages.size()),
      resident ? &pool_codec : nullptr);

  shard_active_.swap(shard_active_next_);
  afrontier_.advance();
  for (std::uint32_t s = 0; s < k; ++s) {
    out.messages += shard_messages[s];
    out.updates += shard_updates[s];
    out.newly_labeled += shard_newly[s];
  }
  out.cross_messages = traffic.cross_messages;
  out.cross_bytes = traffic.cross_bytes;
  out.cross_node_messages = traffic.cross_node_messages;
  out.cross_node_bytes = traffic.cross_node_bytes;
  out.wire_messages = traffic.wire_messages;
  out.wire_bytes = traffic.wire_bytes;
  return out;
}

}  // namespace gdiam::core
