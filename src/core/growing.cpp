#include "core/growing.hpp"

#include <algorithm>
#include <atomic>

namespace gdiam::core {

GrowingEngine::GrowingEngine(const Graph& g, GrowingPolicy policy,
                             const mr::PartitionOptions& partition)
    : g_(g), policy_(policy) {
  if (policy_ == GrowingPolicy::kPartitioned) {
    partition_ = std::make_unique<mr::Partition>(g_, partition);
    bsp_ = std::make_unique<mr::BspEngine>(*partition_);
    exchange_.resize(partition_->num_partitions());
  }
  reset();
}

void GrowingEngine::reset() {
  const NodeId n = g_.num_nodes();
  const bool double_buffered = policy_ != GrowingPolicy::kPush;
  labels_.assign(n, kUnassignedLabel);
  blocked_.assign(n, 0);
  frontier_.clear();
  frontier_labels_.clear();
  in_next_frontier_.assign(n, 0);
  scratch_.assign(double_buffered ? n : 0, kUnassignedLabel);
  changed_.assign(n, 0);
  next_changed_.assign(double_buffered ? n : 0, 0);
}

void GrowingEngine::clear_labels() {
  std::fill(labels_.begin(), labels_.end(), kUnassignedLabel);
  std::fill(changed_.begin(), changed_.end(), 0);
  frontier_.clear();
  frontier_labels_.clear();
}

void GrowingEngine::set_source(NodeId u, NodeId center, Weight dist) {
  labels_[u] = pack_label(static_cast<float>(dist), center);
  changed_[u] = 1;
}

void GrowingEngine::rebuild_frontier(const GrowingStepParams& params) {
  frontier_.clear();
  for (NodeId u = 0; u < g_.num_nodes(); ++u) {
    const PackedLabel lab = labels_[u];
    if (!label_assigned(lab)) {
      changed_[u] = 0;
      continue;
    }
    changed_[u] = 1;  // pull policy: everyone labeled re-proposes once
    if (label_dist(lab) < budget_of(params, label_center(lab))) {
      frontier_.push_back(u);
    }
  }
  frontier_labels_.assign(frontier_.size(), kUnassignedLabel);
  for (std::size_t i = 0; i < frontier_.size(); ++i) {
    frontier_labels_[i] = labels_[frontier_[i]];
  }
}

void GrowingEngine::ensure_split(Weight threshold) {
  if (split_ready_ && split_threshold_ == threshold) return;
  if (policy_ == GrowingPolicy::kPartitioned) {
    shard_splits_.clear();
    shard_splits_.reserve(partition_->num_partitions());
    for (const mr::Shard& sh : partition_->shards()) {
      shard_splits_.push_back(
          presplit_csr(sh.offsets, sh.targets, sh.weights, threshold));
    }
  } else {
    split_ = SplitCsr(g_, threshold);
  }
  split_threshold_ = threshold;
  split_ready_ = true;
}

GrowingStepResult GrowingEngine::step(const GrowingStepParams& params) {
  if (presplit_) ensure_split(params.light_threshold);
  switch (policy_) {
    case GrowingPolicy::kPush: return step_push(params);
    case GrowingPolicy::kPartitioned: return step_partitioned(params);
    case GrowingPolicy::kPull:
    default: return step_pull(params);
  }
}

GrowingStepResult GrowingEngine::step_push(const GrowingStepParams& params) {
  GrowingStepResult out;
  std::uint64_t messages = 0, updates = 0, newly = 0;

#pragma omp parallel for schedule(dynamic, 64) \
    reduction(+ : messages, updates, newly)
  for (std::size_t f = 0; f < frontier_.size(); ++f) {
    const NodeId u = frontier_[f];
    // Labels are read from the step-start snapshot so the step is exactly
    // one synchronous round of message exchange (MR semantics).
    const PackedLabel lab = frontier_labels_[f];
    const float b = label_dist(lab);
    const NodeId c = label_center(lab);
    const Weight budget = budget_of(params, c);
    if (!(static_cast<Weight>(b) < budget)) continue;

    // Presplit: the light segment holds exactly the w ≤ light_threshold arcs,
    // so the heavy-edge filter disappears from the inner loop.
    const auto nbr = presplit_ ? split_.light_neighbors(u) : g_.neighbors(u);
    const auto wts = presplit_ ? split_.light_weights(u) : g_.weights(u);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      const Weight w = wts[i];
      if (!presplit_ && w > params.light_threshold) continue;  // heavy edge
      const Weight nb = static_cast<Weight>(b) + w;
      if (nb > budget) continue;
      const NodeId v = nbr[i];
      if (blocked_[v]) continue;  // contracted-cluster members never accept
      ++messages;

      const PackedLabel cand = pack_label(static_cast<float>(nb), c);
      std::atomic_ref<PackedLabel> slot(labels_[v]);
      PackedLabel cur = slot.load(std::memory_order_relaxed);
      while (cand < cur) {
        if (slot.compare_exchange_weak(cur, cand,
                                       std::memory_order_relaxed)) {
          // Count each node once per step: the first winner (flag 0 -> 1)
          // observed the step-start label, making the counts deterministic.
          std::atomic_ref<std::uint8_t> flag(in_next_frontier_[v]);
          if (flag.exchange(1, std::memory_order_relaxed) == 0) {
            ++updates;
            if (cur == kUnassignedLabel) ++newly;
            next_buffers_.local().push_back(v);
          }
          break;
        }
      }
    }
  }

  out.messages = messages;
  out.updates = updates;
  out.newly_labeled = newly;

  frontier_ = next_buffers_.gather();
  frontier_labels_.resize(frontier_.size());
  // Flag reset + label snapshot in one parallel sweep (the snapshot was the
  // last serial per-node loop on the push hot path).
#pragma omp parallel for schedule(static, 2048)
  for (std::size_t i = 0; i < frontier_.size(); ++i) {
    const NodeId v = frontier_[i];
    in_next_frontier_[v] = 0;
    frontier_labels_[i] =
        std::atomic_ref<PackedLabel>(labels_[v]).load(std::memory_order_relaxed);
  }
  return out;
}

GrowingStepResult GrowingEngine::step_pull(const GrowingStepParams& params) {
  GrowingStepResult out;
  const NodeId n = g_.num_nodes();
  std::uint64_t messages = 0, updates = 0, newly = 0;

#pragma omp parallel for schedule(dynamic, 1024) \
    reduction(+ : messages, updates, newly)
  for (NodeId v = 0; v < n; ++v) {
    next_changed_[v] = 0;
    if (blocked_[v]) {
      scratch_[v] = labels_[v];
      continue;
    }
    PackedLabel best = labels_[v];
    // Edge weights are symmetric, so v's light in-edges are exactly its
    // light out-edges: the presplit segment serves the pull direction too.
    const auto nbr = presplit_ ? split_.light_neighbors(v) : g_.neighbors(v);
    const auto wts = presplit_ ? split_.light_weights(v) : g_.weights(v);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      const NodeId u = nbr[i];
      // Nodes unchanged since the last step already delivered their
      // proposal in an earlier round; skipping them keeps the message count
      // identical to the push policy.
      if (!changed_[u]) continue;
      const Weight w = wts[i];
      if (!presplit_ && w > params.light_threshold) continue;
      const PackedLabel lab = labels_[u];
      if (!label_assigned(lab)) continue;
      const float b = label_dist(lab);
      const NodeId c = label_center(lab);
      const Weight budget = budget_of(params, c);
      if (!(static_cast<Weight>(b) < budget)) continue;
      const Weight nb = static_cast<Weight>(b) + w;
      if (nb > budget) continue;
      ++messages;
      best = std::min(best, pack_label(static_cast<float>(nb), c));
    }
    scratch_[v] = best;
    if (best != labels_[v]) {
      next_changed_[v] = 1;
      ++updates;
      if (labels_[v] == kUnassignedLabel) ++newly;
    }
  }

  labels_.swap(scratch_);
  changed_.swap(next_changed_);
  out.messages = messages;
  out.updates = updates;
  out.newly_labeled = newly;
  return out;
}

// One Δ-growing step as one BSP superstep. Semantically this is step_pull
// re-expressed sender-side: every proposal is computed from the step-start
// labels and the step outcome is min(step-start label, proposals), so labels
// and counters are bit-identical to kPush/kPull. The difference is *where*
// the work runs: each shard relaxes only the arcs it owns, writes only the
// scratch slots of nodes it owns, and sends proposals for ghost targets
// through the exchange — which is exactly the traffic a distributed
// deployment would shuffle between reducers.
GrowingStepResult GrowingEngine::step_partitioned(
    const GrowingStepParams& params) {
  GrowingStepResult out;
  const NodeId n = g_.num_nodes();
  const std::uint32_t k = partition_->num_partitions();

  // Step-start snapshot; shards fold proposals into scratch_ below.
#pragma omp parallel for schedule(static, 4096)
  for (NodeId v = 0; v < n; ++v) scratch_[v] = labels_[v];

  // Per-shard counters, summed after the superstep (single-writer slots,
  // like the exchange's mailbox rows).
  std::vector<std::uint64_t> shard_messages(k, 0);
  std::vector<std::uint64_t> shard_updates(k, 0);
  std::vector<std::uint64_t> shard_newly(k, 0);

  auto compute = [&](const mr::Shard& sh, mr::Exchange<LabelProposal>& ex) {
    std::uint64_t messages = 0;
    // Presplit shards share the flat layout's discipline: the light half of
    // each owned node's permuted segment, no per-edge weight filter.
    const CsrSplit* ss = presplit_ ? &shard_splits_[sh.id] : nullptr;
    const NodeId* tgt = presplit_ ? ss->targets.data() : sh.targets.data();
    const Weight* wt = presplit_ ? ss->weights.data() : sh.weights.data();
    for (NodeId l = 0; l < sh.num_owned; ++l) {
      const NodeId u = sh.global_of_local[l];
      if (!changed_[u]) continue;
      const PackedLabel lab = labels_[u];
      if (!label_assigned(lab)) continue;
      const float b = label_dist(lab);
      const NodeId c = label_center(lab);
      const Weight budget = budget_of(params, c);
      if (!(static_cast<Weight>(b) < budget)) continue;
      const EdgeIndex lo = sh.offsets[l];
      const EdgeIndex hi = presplit_ ? ss->split[l] : sh.offsets[l + 1];
      for (EdgeIndex i = lo; i < hi; ++i) {
        const Weight w = wt[i];
        if (!presplit_ && w > params.light_threshold) continue;
        const Weight nb = static_cast<Weight>(b) + w;
        if (nb > budget) continue;
        const NodeId tl = tgt[i];
        const NodeId v = sh.global_of_local[tl];
        if (blocked_[v]) continue;  // contracted members never accept
        ++messages;
        const PackedLabel cand = pack_label(static_cast<float>(nb), c);
        if (!sh.is_ghost(tl)) {
          // Shard-internal proposal: fold immediately (only this shard's
          // thread writes scratch slots of nodes it owns).
          scratch_[v] = std::min(scratch_[v], cand);
        } else {
          ex.send(sh.id, sh.ghost_owner[tl - sh.num_owned],
                  LabelProposal{partition_->local_id(v), cand});
        }
      }
    }
    shard_messages[sh.id] = messages;
  };

  auto apply = [&](const mr::Shard& sh,
                   std::span<const LabelProposal> inbox) {
    for (const LabelProposal& m : inbox) {
      const NodeId v = sh.global_of_local[m.target];
      scratch_[v] = std::min(scratch_[v], m.label);
    }
    // Commit the shard's owned slice: detect improvements against the
    // step-start labels exactly like step_pull's per-node comparison.
    std::uint64_t updates = 0, newly = 0;
    for (NodeId l = 0; l < sh.num_owned; ++l) {
      const NodeId v = sh.global_of_local[l];
      next_changed_[v] = 0;
      if (scratch_[v] != labels_[v]) {
        next_changed_[v] = 1;
        ++updates;
        if (labels_[v] == kUnassignedLabel) ++newly;
      }
    }
    shard_updates[sh.id] = updates;
    shard_newly[sh.id] = newly;
  };

  const mr::ExchangeCounters traffic =
      bsp_->superstep(exchange_, compute, apply);

  labels_.swap(scratch_);
  changed_.swap(next_changed_);
  for (std::uint32_t s = 0; s < k; ++s) {
    out.messages += shard_messages[s];
    out.updates += shard_updates[s];
    out.newly_labeled += shard_newly[s];
  }
  out.cross_messages = traffic.cross_messages;
  out.cross_bytes = traffic.cross_bytes;
  return out;
}

}  // namespace gdiam::core
