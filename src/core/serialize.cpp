#include "core/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace gdiam::core {

namespace {

constexpr char kMagic[4] = {'G', 'D', 'C', 'L'};
constexpr std::uint32_t kVersion = 1;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("gdiam::core::serialize: " + what);
}

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
void read_pod(std::istream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) fail("stream truncated");
}

template <typename T>
void write_vec(std::ostream& out, const std::vector<T>& v) {
  write_pod(out, static_cast<std::uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& in) {
  std::uint64_t size = 0;
  read_pod(in, size);
  std::vector<T> v(size);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(size * sizeof(T)));
  if (!in) fail("stream truncated");
  return v;
}

}  // namespace

void write_clustering(const Clustering& c, std::ostream& out) {
  out.write(kMagic, sizeof kMagic);
  write_pod(out, kVersion);
  write_vec(out, c.center_of);
  write_vec(out, c.dist_to_center);
  write_vec(out, c.centers);
  write_pod(out, c.radius);
  write_pod(out, c.delta_end);
  write_pod(out, c.stages);
  write_pod(out, c.stats);
  if (!out) fail("write failed");
}

void write_clustering_file(const Clustering& c, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) fail("cannot open '" + path + "' for writing");
  write_clustering(c, f);
}

Clustering read_clustering(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof magic) != 0) {
    fail("bad magic (not a gdiam clustering file)");
  }
  std::uint32_t version = 0;
  read_pod(in, version);
  if (version != kVersion) fail("unsupported version");

  Clustering c;
  c.center_of = read_vec<NodeId>(in);
  c.dist_to_center = read_vec<Weight>(in);
  c.centers = read_vec<NodeId>(in);
  read_pod(in, c.radius);
  read_pod(in, c.delta_end);
  read_pod(in, c.stages);
  read_pod(in, c.stats);
  if (c.dist_to_center.size() != c.center_of.size() ||
      c.centers.size() > c.center_of.size()) {
    fail("inconsistent array sizes");
  }
  return c;
}

Clustering read_clustering_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) fail("cannot open '" + path + "' for reading");
  return read_clustering(f);
}

}  // namespace gdiam::core
