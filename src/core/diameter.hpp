#pragma once
// CL-DIAM: the end-to-end diameter approximation (Sections 4–5).
//
// Pipeline: decompose G with CLUSTER (the paper's practical choice; CLUSTER2
// available for the theoretical variant) → build the weighted quotient graph
// → Φ_approx(G) = Φ(G_C) + 2·R. The estimate is conservative
// (Φ_approx ≥ Φ(G), exactly when Φ(G_C) is computed exactly) and in practice
// within a factor < 1.4 of the true diameter on all the paper's benchmarks.

#include <cstdint>

#include "core/cluster.hpp"
#include "core/cluster2.hpp"
#include "core/quotient.hpp"
#include "graph/graph.hpp"
#include "mr/stats.hpp"

namespace gdiam::exec {
class Context;
}  // namespace gdiam::exec

namespace gdiam::core {

struct DiameterApproxOptions {
  ClusterOptions cluster;
  /// Use CLUSTER2 instead of CLUSTER for the decomposition. The paper's
  /// CL-DIAM uses CLUSTER: "CLUSTER2 ... does not seem to provide a
  /// significant improvement to the quality of the approximation in
  /// practice" (Section 5).
  bool use_cluster2 = false;
  /// Estimate via per-cluster radii (max over pairs of
  /// dist_GC + r(C1) + r(C2)) instead of the paper's global Φ(G_C) + 2·R.
  /// Strictly tighter, equally conservative (DESIGN.md §3); both values are
  /// reported in the result.
  bool radius_aware = true;
  QuotientDiameterOptions quotient;
};

struct DiameterApproxResult {
  /// The diameter upper bound: the radius-aware refinement by default, the
  /// paper's classic Φ(G_C) + 2·R when !opts.radius_aware. An upper bound
  /// on the true diameter whenever `quotient_exact`.
  Weight estimate = 0.0;
  /// The paper's classic formula Φ(G_C) + 2·R (always filled).
  Weight estimate_classic = 0.0;
  Weight quotient_diam = 0.0;
  bool quotient_exact = false;
  /// Radius R of the decomposition actually used for the estimate.
  Weight radius = 0.0;
  NodeId num_clusters = 0;
  EdgeIndex quotient_edges = 0;
  /// Rounds/messages/updates of the whole pipeline (clustering + quotient
  /// construction, charged one auxiliary round as in the paper's Theorem 3).
  mr::RoundStats stats;
  /// The decomposition, for callers that reuse it (exposed API).
  Clustering clustering;
};

/// Runs CL-DIAM on g. Works on disconnected graphs: the estimate then bounds
/// the largest intra-component distance (the paper's disconnected-graph
/// convention), provided the quotient diameter is exact.
///
/// One exec::Context serves the whole pipeline: the decomposition's pooled
/// growing engine and cached layouts, the quotient construction's shard
/// reuse, and the all-pairs Dijkstra of the quotient diameter all run under
/// it, and the context's StatsSink receives the per-phase cost breakdown
/// (phases "decompose", "quotient", "diameter"; accumulated across runs on a
/// reused context). The returned result is bit-identical with or without a
/// context, and between fresh and reused contexts — the context-reuse A/B of
/// bench/micro_kernels rests on that (tests/test_exec_context.cpp).
[[nodiscard]] DiameterApproxResult approximate_diameter(
    const Graph& g, const DiameterApproxOptions& opts = {},
    exec::Context* ctx = nullptr);

}  // namespace gdiam::core
