#pragma once
// Adaptive sparse/dense frontier engine (DESIGN.md §7).
//
// Every round-based kernel in gdiam — Δ-stepping relaxation phases, Δ-growing
// steps, the partitioned BSP backends — maintains an *active set* of nodes
// between rounds: the nodes whose tentative state changed and that therefore
// drive the next round. The paper's per-round cost is dominated by this
// maintenance on sparse rounds (road/mesh families spend most rounds with
// tiny frontiers), where a full-length scan or a per-round allocation costs
// orders of magnitude more than the actual relaxation work.
//
// The Frontier keeps two interchangeable representations of one set:
//
//   * sparse — per-thread local queues of ~FrontierOptions::local_queue_
//     capacity nodes, flushed into a shared block list when full. Duplicate
//     suppression is a per-vertex *round stamp* (stamp[v] == current round ⇔
//     v already inserted this round): O(1) per insert, no sort+unique pass,
//     no per-round flag reset — advancing the round number invalidates every
//     stamp at once.
//   * dense — a bitmap with a blocked parallel scan for materialization.
//     Insertion is one fetch_or; enumeration touches n/64 words instead of n
//     flags, and yields nodes in ascending id order.
//
// The adaptive policy switches the *collection* representation whenever the
// frontier size crosses `dense_fraction · n` (A/B-able through
// FrontierOptions): the size of the set sealed by advance() predicts the
// representation used to collect the next one, exactly like PASGAL's
// sparse/dense SSSP frontiers. All consumers in gdiam are order-insensitive
// min-reductions with set-based counters, so the representation never
// changes an algorithmic outcome — the parity suite in
// tests/test_frontier.cpp pins distances, labels and every RoundStats
// counter bit-for-bit against the adaptive=false baselines.
//
// Determinism: membership is a pure function of the inserted set (stamps are
// idempotent per round), materialized order is ascending for dense and
// block-concatenation order for sparse. Kernels never depend on the order.

#include <algorithm>
#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "graph/graph.hpp"

namespace gdiam::core {

enum class FrontierMode : std::uint8_t { kSparse, kDense };

[[nodiscard]] constexpr const char* to_string(FrontierMode m) noexcept {
  return m == FrontierMode::kSparse ? "sparse" : "dense";
}

struct FrontierOptions {
  /// false — callers keep their legacy full-scan / gather round paths (the
  /// bit-identical A/B baseline); the Frontier itself then always collects
  /// sparse when used directly.
  bool adaptive = true;
  /// Hysteresis band of the sparse↔dense switch. Collection switches *up* to
  /// the dense bitmap when the sealed frontier exceeds `dense_fraction · n`
  /// nodes, but only drops back to sparse once it falls to
  /// `sparse_fraction · n` or below. The gap stops representation thrashing
  /// on oscillating waves (road-network frontiers hovering around one
  /// threshold would otherwise alternate every round, paying the dense scan
  /// and the stamp rewrite on alternating rounds); sizes inside the band
  /// keep the previous round's representation. `sparse_fraction` is clamped
  /// to `dense_fraction` (a band cannot be inverted); setting them equal
  /// restores the old single-threshold switch. Representation never changes
  /// results — only the sparse_rounds/dense_rounds classification moves.
  double dense_fraction = 1.0 / 16.0;
  double sparse_fraction = 1.0 / 64.0;
  /// Sparse per-thread local queue length; a full queue is flushed into the
  /// shared block list (one brief lock per `local_queue_capacity` inserts).
  std::uint32_t local_queue_capacity = 128;
  /// Replace the exact sealed-size count with a probe-based estimate in the
  /// dense→sparse switch decision (PASGAL's estimate_size): `size_probes`
  /// deterministic random bitmap probes instead of the full popcount scan.
  /// Sampling only engages for *dense* collections on universes larger than
  /// the probe count (sparse sizes are exact and free; below `size_probes`
  /// vertices the "estimate" would cost as much as the truth), and the
  /// up-switch always uses the exact sealed size — so estimator noise can
  /// only affect the down direction, which is additionally guarded by a
  /// 2σ noise margin (see Frontier::estimate_noise_margin): the estimate
  /// must clear sparse_threshold() by the margin before the representation
  /// drops back to sparse. Combined with the hysteresis band this makes the
  /// switch monotone under noise — a wrong down-switch needs a >2σ deviation,
  /// and flipping back up needs the *exact* size to exceed the (4× higher)
  /// dense_threshold(). Results never change; only the representation
  /// classification can differ from the exact-count policy.
  bool sampled_size_estimate = false;
  /// Probe count for the sampled estimate (PASGAL uses 1024).
  std::uint32_t size_probes = 1024;
  /// Seed for the probe positions; combined with the round number so each
  /// round probes fresh positions, deterministically across runs/transports.
  std::uint64_t sample_seed = 0x5a3d13f0e57ULL;
};

/// One adaptive active set over nodes [0, n). Reusable across rounds and —
/// via reset() — across runs: steady-state rounds allocate nothing.
class Frontier {
 public:
  Frontier() = default;
  explicit Frontier(NodeId n, const FrontierOptions& opts = {}) {
    reset(n, opts);
  }

  /// (Re)binds the frontier to a vertex universe of size n and empties it.
  /// Keeps every internal buffer's capacity, so a pooled frontier reused by
  /// consecutive runs (sssp::RoundBuffers) reallocates nothing.
  void reset(NodeId n, const FrontierOptions& opts = {});

  /// Inserts v into the round being collected. Thread-safe; returns true for
  /// exactly one caller per (v, round) — the winner, which kernels use to
  /// count node updates without a separate flag array.
  bool insert(NodeId v);

  /// Same contract, for contexts where at most one thread can ever insert a
  /// given v (e.g. a BSP shard committing nodes it owns): skips the stamp
  /// CAS. Still safe to call from multiple threads on disjoint vertices.
  bool insert_serial(NodeId v);

  /// Seals the round: materializes the collected set into nodes(), makes it
  /// the *current* frontier, starts a fresh collection round, and re-picks
  /// the collection representation from the sealed size (adaptive only).
  void advance();

  /// Forgets both the current frontier and any partially collected round.
  /// Collection restarts sparse (the adaptive policy re-engages at the next
  /// advance()). Start-of-run / start-of-stage reset.
  void clear();

  /// The current (sealed) frontier, materialized. Valid until the next
  /// advance()/clear(); dense rounds list nodes in ascending id order.
  [[nodiscard]] const std::vector<NodeId>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }

  /// Membership in the *current* frontier. Stable even while a dense round
  /// is being collected concurrently (dense inserts only touch the bitmap;
  /// stamps are rewritten at advance()); during a *sparse* collection,
  /// membership reads and inserts must stay in separate barrier-ordered
  /// phases, which every gdiam kernel honors.
  [[nodiscard]] bool contains(NodeId v) const noexcept {
    return current_round_ != 0 && stamp_[v] == current_round_;
  }

  /// Representation collecting the round currently being built — by the
  /// round convention of DESIGN.md §7, the mode *of* the in-flight round.
  [[nodiscard]] FrontierMode collect_mode() const noexcept {
    return collect_mode_;
  }
  /// Representation the current (sealed) frontier was collected in.
  [[nodiscard]] FrontierMode current_mode() const noexcept {
    return current_mode_;
  }

  [[nodiscard]] const FrontierOptions& options() const noexcept {
    return opts_;
  }
  [[nodiscard]] NodeId num_nodes() const noexcept { return n_; }

  /// Sealed sizes strictly above this switch the next collection to dense.
  [[nodiscard]] std::size_t dense_threshold() const noexcept {
    return static_cast<std::size_t>(opts_.dense_fraction *
                                    static_cast<double>(n_));
  }

  /// Sealed sizes at or below this switch a dense collection back to sparse
  /// (the hysteresis down-threshold; never above dense_threshold()).
  [[nodiscard]] std::size_t sparse_threshold() const noexcept {
    const auto down = static_cast<std::size_t>(opts_.sparse_fraction *
                                               static_cast<double>(n_));
    return std::min(down, dense_threshold());
  }

  /// Probe-based estimate of the number of set bits in the in-flight *dense*
  /// collection: `size_probes` uniform vertex probes (with replacement),
  /// scaled by n/probes. Deterministic — the probe positions are a pure
  /// function of (sample_seed, round number), independent of thread count or
  /// insertion order. Only meaningful while collect_mode() is dense; returns
  /// 0 for a sparse collection (whose size is exact and free).
  [[nodiscard]] std::size_t estimate_size() const noexcept;

  /// The 2σ sampling-noise margin the down-switch decision must clear when
  /// sampled_size_estimate is on: 2·sqrt(sparse_threshold·n/size_probes),
  /// the standard deviation of the scaled probe count evaluated at the
  /// down-threshold occupancy. DESIGN.md §11 derives it.
  [[nodiscard]] std::size_t estimate_noise_margin() const noexcept;

  /// True when the *last* advance() used a probe-based estimate (not the
  /// exact sealed size) for its representation decision. Test/bench hook.
  [[nodiscard]] bool last_decision_sampled() const noexcept {
    return last_decision_sampled_;
  }

 private:
  /// One cache line per thread so concurrent queue appends never false-share.
  struct alignas(64) LocalQueue {
    std::vector<NodeId> buf;
  };

  void flush_queue(LocalQueue& q);
  void materialize();
  void bump_round();
  void ensure_thread_slots();

  NodeId n_ = 0;
  FrontierOptions opts_;
  FrontierMode collect_mode_ = FrontierMode::kSparse;
  FrontierMode current_mode_ = FrontierMode::kSparse;
  bool last_decision_sampled_ = false;
  std::uint32_t round_ = 1;          // stamp value of the collecting round
  std::uint32_t current_round_ = 0;  // stamp value of the sealed round
  std::vector<std::uint32_t> stamp_;
  // sparse collection
  std::vector<LocalQueue> queues_;
  std::vector<std::vector<NodeId>> blocks_;       // flushed full queues
  std::vector<std::vector<NodeId>> free_blocks_;  // recycled block storage
  std::mutex blocks_mutex_;
  // dense collection
  std::vector<std::uint64_t> bits_;
  // materialized current frontier
  std::vector<NodeId> nodes_;
  std::vector<std::size_t> scan_offsets_;  // blocked-scan prefix scratch
};

}  // namespace gdiam::core
