#include "core/labels.hpp"

// Header-only; this translation unit pins the header's ODR-used constants
// and gives static_assert coverage of the packing invariants.

namespace gdiam::core {

static_assert(label_dist(pack_label(0.0f, 7)) == 0.0f);
static_assert(label_center(pack_label(0.0f, 7)) == 7);
static_assert(pack_label(1.0f, 0) < pack_label(2.0f, 0),
              "smaller distance must win the min-reduction");
static_assert(pack_label(1.0f, 3) < pack_label(1.0f, 4),
              "ties must be broken by smaller center id");
static_assert(pack_label(2.0f, 0) < kUnassignedLabel,
              "any real label must beat the unassigned state");
static_assert(!label_assigned(kUnassignedLabel));
static_assert(label_assigned(pack_label(0.0f, 0)));

}  // namespace gdiam::core
