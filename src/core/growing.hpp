#pragma once
// The Δ-growing step engine (Section 3 of the paper).
//
// One Δ-growing step: "for each node u with d_u < Δ and for each light edge
// (u,v), in parallel, if d_u + w(u,v) ≤ Δ and d_v > d_u + w(u,v) then set
// d_v = d_u + w(u,v), c_v = c_u", ties resolved by smallest distance then
// smallest center index (implemented as a min-reduction over packed labels —
// see core/labels.hpp).
//
// The engine generalizes the step slightly so the same kernel serves both
// CLUSTER and CLUSTER2:
//   * `light_threshold` — edges heavier than this are never relaxed
//     (Δ for CLUSTER; 2·R_CL(τ) for CLUSTER2);
//   * a growth budget, either uniform (CLUSTER: d_u + w ≤ Δ) or per-center
//     (CLUSTER2: d_u + w ≤ (i − birth(c) + 1)·2R, the equivalent of the
//     weight rescaling in Procedure Contract2 — see DESIGN.md §3);
//   * `blocked` nodes — members of already-contracted clusters: they still
//     propose (they are the cluster's boundary re-attached to its center by
//     Procedure Contract) but never accept a new label.
//
// Three execution policies produce bit-identical labels per step:
//   * kPush — frontier-driven: only nodes whose label changed in the previous
//     step send proposals; conflicts resolved by atomic min. Fast path.
//   * kPull — synchronous Jacobi sweep; the MR-faithful formulation (each
//     step is literally one round of message exchange). Reference
//     implementation for tests and ablations. Under the adaptive frontier
//     engine (core/frontier.hpp, on by default) sparse rounds restrict the
//     sweep to receiver candidates — the light neighbors of the senders —
//     and only dense rounds pay the classic full-length scan.
//   * kPartitioned — the step executed on the sharded BSP engine
//     (mr/bsp_engine.hpp): each shard relaxes its owned nodes locally and
//     routes proposals for remote nodes through a typed exchange, so the
//     cross-partition communication a real MR deployment would pay is
//     measured, not merely modeled (DESIGN.md §5).
//
// MR accounting: one relaxation round per step; a message is one proposal
// that satisfies the light/budget conditions; a node update is one accepted
// label improvement. The kPartitioned policy additionally records how many
// of those messages crossed a shard boundary and their payload bytes.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/frontier.hpp"
#include "core/labels.hpp"
#include "graph/graph.hpp"
#include "graph/split_csr.hpp"
#include "mr/bsp_engine.hpp"
#include "mr/exchange.hpp"
#include "mr/partition.hpp"
#include "mr/stats.hpp"
#include "util/parallel.hpp"

namespace gdiam::exec {
class Context;
}  // namespace gdiam::exec

namespace gdiam::core {

enum class GrowingPolicy { kPush, kPull, kPartitioned };

/// One cross-shard relaxation request: "lower the label of your node
/// `target` (destination-local id) to `label` if it improves it". Packed so
/// sizeof equals the 12 serialized bytes a wire format would carry — the
/// exchange's byte accounting uses sizeof and must not count padding.
struct [[gnu::packed]] LabelProposal {
  NodeId target = 0;  // local id within the destination shard
  PackedLabel label = kUnassignedLabel;
};
static_assert(sizeof(LabelProposal) == 12);

/// Per-step configuration. Exactly one of uniform budget / per-center budget
/// is in effect: `center_budget == nullptr` selects the uniform budget.
struct GrowingStepParams {
  /// Edges with w > light_threshold are ignored ("heavy" for this phase).
  Weight light_threshold = kInfiniteWeight;
  /// CLUSTER-style uniform budget Δ: relax only while d_u + w ≤ Δ.
  Weight uniform_budget = kInfiniteWeight;
  /// CLUSTER2-style per-center budgets, indexed by the *center's node id*.
  const std::vector<Weight>* center_budget = nullptr;
};

struct GrowingStepResult {
  std::uint64_t messages = 0;       // proposals satisfying the conditions
  std::uint64_t updates = 0;        // accepted label improvements
  std::uint64_t newly_labeled = 0;  // updates that hit an unassigned node
  /// Messages that crossed a shard boundary + their payload bytes
  /// (kPartitioned only; a subset of `messages`, zero for K = 1).
  std::uint64_t cross_messages = 0;
  std::uint64_t cross_bytes = 0;
  /// The subset of cross traffic whose endpoints the placement plan homes
  /// on different NUMA nodes (mr/placement.hpp; zero without an active
  /// plan's node map — see Exchange::set_node_map).
  std::uint64_t cross_node_messages = 0;
  std::uint64_t cross_node_bytes = 0;
  /// Records/bytes that crossed a *process* boundary (kPartitioned under
  /// TransportKind::kProcess only; see mr/transport.hpp).
  std::uint64_t wire_messages = 0;
  std::uint64_t wire_bytes = 0;
  /// Round classification under the adaptive frontier engine
  /// (core/frontier.hpp): exactly one of the two is 1 per adaptive step,
  /// both 0 on the adaptive=false baseline. run() folds them into the
  /// RoundStats mode counters so benches can report the sparse/dense mix.
  std::uint64_t sparse_rounds = 0;
  std::uint64_t dense_rounds = 0;
};

class GrowingEngine {
 public:
  /// `partition` configures the kPartitioned policy (number of shards and
  /// partitioner); ignored by kPush/kPull. A non-null `ctx` makes the engine
  /// borrow its shard layout and its Δ-presplit adjacencies from the
  /// context's keyed caches (exec/context.hpp) instead of building private
  /// copies — CLUSTER's doubling search and repeated runs on one graph then
  /// presplit each Δ once per context, not once per engine per stage. The
  /// context must outlive the engine (contexts pool their engines, so this
  /// holds by construction for engines obtained via
  /// exec::Context::growing_engine). Results are bit-identical with or
  /// without a context (every cached object is a pure function of its key).
  GrowingEngine(const Graph& g, GrowingPolicy policy,
                const mr::PartitionOptions& partition = {},
                exec::Context* ctx = nullptr);

  /// Back to the pristine state: all labels unassigned, nothing blocked.
  void reset();

  /// Clears every label to unassigned but keeps the blocked set
  /// (start of a CLUSTER stage: clusters re-grow from scratch as sources).
  void clear_labels();

  /// Installs a source label (d = `dist`, center = `center`) on `u`,
  /// bypassing the blocked check. Sources with dist 0 are cluster centers or
  /// contracted-cluster boundary nodes.
  void set_source(NodeId u, NodeId center, Weight dist = 0.0);

  /// Marks `u` as a contracted-cluster member: it keeps proposing from its
  /// current label but never accepts updates. Mutates fork-time-resident
  /// state, so it advances the resident epoch: pool workers re-snapshot at
  /// the next step (once per contraction wave, not per blocked node).
  void block(NodeId u) noexcept {
    blocked_[u] = 1;
    ++resident_epoch_;
  }
  [[nodiscard]] bool is_blocked(NodeId u) const noexcept {
    return blocked_[u] != 0;
  }

  [[nodiscard]] PackedLabel label(NodeId u) const noexcept {
    return labels_[u];
  }
  [[nodiscard]] const std::vector<PackedLabel>& labels() const noexcept {
    return labels_;
  }

  /// Recomputes the active set from scratch: every labeled node that could
  /// still propose under `params`. Call before the first step of a growth
  /// phase, and again after raising Δ (nodes stuck at the old budget
  /// boundary become active again).
  void rebuild_frontier(const GrowingStepParams& params);

  /// Executes one Δ-growing step; deterministic for a fixed label state.
  GrowingStepResult step(const GrowingStepParams& params);

  /// Toggles the Δ-presplit adjacency (graph/split_csr.hpp). On (the
  /// default), the engine lazily reorders each node's segment light-first
  /// whenever `light_threshold` changes — typically once per growth stage —
  /// and every step iterates only the light segment, branch-free. Off keeps
  /// the per-edge weight filter over the original CSR; labels and counters
  /// are bit-identical either way (enforced by tests/test_split_csr.cpp) —
  /// the branch path is the A/B baseline for bench/micro_kernels.
  void set_presplit(bool on) noexcept {
    presplit_ = on;
    split_ready_ = false;
    ++resident_epoch_;  // pool workers read presplit_ + the split layout
  }
  [[nodiscard]] bool presplit() const noexcept { return presplit_; }

  /// Configures the adaptive sparse/dense frontier engine
  /// (core/frontier.hpp). On (the default), every policy maintains its
  /// active set through a Frontier — kPush collects the next frontier with
  /// stamp dedup, kPull runs candidate-restricted sparse rounds below the
  /// dense threshold and the full sweep above it, kPartitioned enumerates
  /// per-shard active lists instead of snapshotting the full vertex range
  /// per superstep. `adaptive = false` keeps the legacy full-scan/gather
  /// paths; labels and all counters are bit-identical either way (enforced
  /// by tests/test_frontier.cpp). Resets the frontier bookkeeping (labels
  /// and blocks survive): call before rebuild_frontier, like a Δ change.
  void set_frontier_options(const FrontierOptions& opts);
  [[nodiscard]] const FrontierOptions& frontier_options() const noexcept {
    return fopts_;
  }
  [[nodiscard]] bool adaptive() const noexcept { return fopts_.adaptive; }

  /// Selects the transport the kPartitioned supersteps run on
  /// (mr/transport.hpp): in-process threads (the default) or forked worker
  /// processes. Labels and all model-level counters are bit-identical either
  /// way (tests/test_transport.cpp); only the wire counters — and the wall
  /// clock — move. No-op for kPush/kPull and when the options are unchanged,
  /// so pooled engines (exec::Context) can be reconfigured per run.
  void set_transport_options(const mr::TransportOptions& opts);
  [[nodiscard]] const mr::TransportOptions& transport_options()
      const noexcept {
    return topts_;
  }

  /// Selects the NUMA placement the kPartitioned supersteps run under
  /// (mr/placement.hpp, DESIGN.md §13). Same contract as
  /// set_transport_options: rebuilds the transport only when the effective
  /// plan changes, labels and model counters are bit-identical either way —
  /// only binding, cross_node counters and the wall clock move.
  void set_placement_options(const mr::PlacementOptions& opts);
  [[nodiscard]] const mr::PlacementOptions& placement_options()
      const noexcept {
    return popts_placement_;
  }

  /// The transport the kPartitioned supersteps run on; nullptr for
  /// kPush/kPull. Exposed for lifecycle observability (daemon stats) and
  /// the fault-injection tests, which kill a PoolTransport worker pid and
  /// assert the launcher restarts it.
  [[nodiscard]] mr::Transport* transport() const noexcept {
    return transport_.get();
  }

  /// Aggregate outcome of a run of Δ-growing steps.
  struct RunResult {
    GrowingStepResult totals;
    std::uint64_t steps = 0;
    /// True when the run ended because a step produced no update.
    bool fixpoint = false;
    /// True when the run ended because the step cap was exhausted while
    /// updates were still flowing (the Section 4 bounded-rounds regime).
    bool hit_step_cap = false;
  };

  /// Runs steps until fixpoint (no update) or `max_steps` (0 = unbounded) or
  /// `stop` returns true (evaluated after each step on the running totals).
  /// Adds one relaxation round per executed step to `stats`.
  template <typename StopFn>
  RunResult run(const GrowingStepParams& params, mr::RoundStats& stats,
                std::uint64_t max_steps, StopFn&& stop) {
    RunResult out;
    while (max_steps == 0 || out.steps < max_steps) {
      const GrowingStepResult r = step(params);
      ++out.steps;
      stats.relaxation_rounds += 1;
      stats.messages += r.messages;
      stats.node_updates += r.updates;
      stats.cross_messages += r.cross_messages;
      stats.cross_bytes += r.cross_bytes;
      stats.cross_node_messages += r.cross_node_messages;
      stats.cross_node_bytes += r.cross_node_bytes;
      stats.wire_messages += r.wire_messages;
      stats.wire_bytes += r.wire_bytes;
      stats.sparse_rounds += r.sparse_rounds;
      stats.dense_rounds += r.dense_rounds;
      out.totals.messages += r.messages;
      out.totals.updates += r.updates;
      out.totals.newly_labeled += r.newly_labeled;
      out.totals.cross_messages += r.cross_messages;
      out.totals.cross_bytes += r.cross_bytes;
      out.totals.cross_node_messages += r.cross_node_messages;
      out.totals.cross_node_bytes += r.cross_node_bytes;
      out.totals.wire_messages += r.wire_messages;
      out.totals.wire_bytes += r.wire_bytes;
      out.totals.sparse_rounds += r.sparse_rounds;
      out.totals.dense_rounds += r.dense_rounds;
      if (r.updates == 0) {
        out.fixpoint = true;
        break;
      }
      if (stop(out.totals)) return out;  // caller's coverage target met
    }
    out.hit_step_cap = !out.fixpoint && max_steps != 0 && out.steps >= max_steps;
    return out;
  }

  [[nodiscard]] GrowingPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] const Graph& graph() const noexcept { return g_; }

  /// The shard layout backing kPartitioned; nullptr for kPush/kPull.
  [[nodiscard]] const mr::Partition* partition() const noexcept {
    return partition_;
  }

 private:
  /// One pre-filtered sender a resident pool worker relaxes from: the
  /// shard-local id, the step-start label, and the center's budget — the
  /// full per-sender state the compute edge loop needs, evaluated on the
  /// coordinator so the worker never reads labels_/changed_/params (which
  /// its fork-time snapshot would have stale).
  struct PoolSender {
    NodeId local = 0;
    PackedLabel label = kUnassignedLabel;
    Weight budget = 0.0;
  };

  GrowingStepResult step_push(const GrowingStepParams& params);
  GrowingStepResult step_pull(const GrowingStepParams& params);
  GrowingStepResult step_pull_adaptive(const GrowingStepParams& params);
  GrowingStepResult step_partitioned(const GrowingStepParams& params);
  GrowingStepResult step_partitioned_adaptive(const GrowingStepParams& params);

  /// Fills pool_senders_ with the step's senders, per shard, in exactly the
  /// enumeration order the in-process compute would visit them — order is
  /// staging order is delivery order, so pre-filtering must not permute it.
  void build_pool_senders(const GrowingStepParams& params, bool adaptive,
                          bool dense);
  /// The shipped-sender edge loop a resident worker runs instead of the
  /// frame-capturing compute closures (always stages via loopback/send).
  void pool_compute_shard(const mr::Shard& sh,
                          mr::Exchange<LabelProposal>& ex,
                          std::uint64_t& messages_out) const;
  /// Input codec handed to BspEngine::superstep under a resident transport.
  [[nodiscard]] mr::StepInputCodec make_pool_codec();

  void rebuild_frontier_adaptive(const GrowingStepParams& params);
  void snapshot_push_labels();
  void reset_frontier_state();

  /// (Re)builds the split caches for `threshold` if missing or stale.
  void ensure_split(Weight threshold);
  /// Re-resolves the placement plan and remakes transport_/bsp_ under the
  /// current (topts_, popts_placement_); installs the plan's node map.
  void rebuild_transport();

  /// Budget of the cluster centered at `c` under `params`.
  [[nodiscard]] static Weight budget_of(const GrowingStepParams& params,
                                        NodeId c) noexcept {
    return params.center_budget == nullptr ? params.uniform_budget
                                           : (*params.center_budget)[c];
  }

  const Graph& g_;
  GrowingPolicy policy_;
  std::vector<PackedLabel> labels_;
  std::vector<std::uint8_t> blocked_;
  // push policy state
  std::vector<NodeId> frontier_;
  std::vector<PackedLabel> frontier_labels_;  // snapshot at step start
  std::vector<std::uint8_t> in_next_frontier_;
  util::ThreadBuffers<NodeId> next_buffers_;
  // pull + partitioned policy state
  std::vector<PackedLabel> scratch_;
  std::vector<std::uint8_t> changed_;  // nodes updated in the previous step
  std::vector<std::uint8_t> next_changed_;
  // partitioned policy state; partition_ points at either the private
  // owned_partition_ or the exec::Context's cached layout (ctx_ != nullptr)
  std::unique_ptr<mr::Partition> owned_partition_;
  const mr::Partition* partition_ = nullptr;
  mr::TransportOptions topts_;
  mr::PlacementOptions popts_placement_;
  std::unique_ptr<mr::Transport> transport_;
  std::unique_ptr<mr::BspEngine> bsp_;
  mr::Exchange<LabelProposal> exchange_;
  // adaptive frontier engine state (fopts_.adaptive, the default)
  FrontierOptions fopts_;
  Frontier afrontier_;  // active set: push = proposers, pull/bsp = changed
  Frontier rfrontier_;  // sparse pull rounds: receiver candidates
  std::vector<PackedLabel> pull_best_;  // aligned with rfrontier_.nodes()
  std::vector<std::uint32_t> touch_stamp_;  // partitioned: lazy scratch init
  std::uint32_t touch_round_ = 0;
  std::vector<std::vector<NodeId>> shard_active_;       // changed, per shard
  std::vector<std::vector<NodeId>> shard_active_next_;
  std::vector<std::vector<NodeId>> shard_touched_;
  // Resident-worker (PoolTransport) state. pool_senders_/pool_light_
  // threshold_ are the per-step inputs the codec ships (stable member
  // addresses: a worker's frozen decode closure writes them through this).
  // resident_epoch_ versions everything else a pool worker's compute reads
  // from its fork-time snapshot (blocked_, the presplit layout): bumping it
  // makes the transport respawn workers at the next superstep.
  std::vector<std::vector<PoolSender>> pool_senders_;
  Weight pool_light_threshold_ = kInfiniteWeight;
  std::uint64_t resident_epoch_ = 1;
  // Δ-presplit adjacency, cached per light_threshold (rebuilt when a stage
  // changes the threshold, not per step). Context-backed engines instead
  // look the split up in the context's keyed cache at every threshold change
  // — a short MRU scan — so repeated thresholds presplit once per context.
  exec::Context* ctx_ = nullptr;
  mr::PartitionOptions popts_;
  bool presplit_ = true;
  bool split_ready_ = false;
  Weight split_threshold_ = 0.0;
  SplitCsr split_own_;                      // kPush / kPull, standalone
  const SplitCsr* split_ = nullptr;         // active view
  std::vector<CsrSplit> shard_splits_own_;  // kPartitioned, standalone
  const std::vector<CsrSplit>* shard_splits_ = nullptr;  // active view
};

}  // namespace gdiam::core
