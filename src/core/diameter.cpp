#include "core/diameter.hpp"

#include "exec/context.hpp"

namespace gdiam::core {

DiameterApproxResult approximate_diameter(const Graph& g,
                                          const DiameterApproxOptions& opts,
                                          exec::Context* ctx) {
  DiameterApproxResult out;

  exec::Context local_ctx;
  exec::Context& C = ctx != nullptr ? *ctx : local_ctx;

  if (opts.use_cluster2) {
    Cluster2Options c2;
    c2.base = opts.cluster;
    out.clustering = cluster2(g, c2, &C).clustering;
  } else {
    out.clustering = cluster(g, opts.cluster, &C);
  }
  out.stats = out.clustering.stats;
  out.radius = out.clustering.radius;
  out.num_clusters = out.clustering.num_clusters();
  C.stats().phase("decompose") += out.clustering.stats;

  // Quotient construction is one map-and-reduce over the edge set; the final
  // diameter of the (small) quotient costs O(1) rounds on a single reducer
  // (paper, Theorem 3). One auxiliary round each, filed under its phase.
  out.stats.auxiliary_rounds += 2;
  const QuotientGraph q = build_quotient(g, out.clustering, &C);
  out.quotient_edges = q.graph.num_edges();
  C.stats().phase("quotient").auxiliary_rounds += 1;

  const QuotientDiametersResult qd = quotient_diameters(q, opts.quotient);
  C.stats().phase("diameter").auxiliary_rounds += 1;
  out.quotient_diam = qd.plain;
  out.quotient_exact = qd.exact;
  out.estimate_classic = qd.plain + 2.0 * out.clustering.radius;
  out.estimate = opts.radius_aware ? qd.augmented : out.estimate_classic;
  return out;
}

}  // namespace gdiam::core
