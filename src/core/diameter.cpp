#include "core/diameter.hpp"

namespace gdiam::core {

DiameterApproxResult approximate_diameter(const Graph& g,
                                          const DiameterApproxOptions& opts) {
  DiameterApproxResult out;

  if (opts.use_cluster2) {
    Cluster2Options c2;
    c2.base = opts.cluster;
    out.clustering = cluster2(g, c2).clustering;
  } else {
    out.clustering = cluster(g, opts.cluster);
  }
  out.stats = out.clustering.stats;
  out.radius = out.clustering.radius;
  out.num_clusters = out.clustering.num_clusters();

  // Quotient construction is one map-and-reduce over the edge set; the final
  // diameter of the (small) quotient costs O(1) rounds on a single reducer
  // (paper, Theorem 3).
  out.stats.auxiliary_rounds += 2;
  const QuotientGraph q = build_quotient(g, out.clustering);
  out.quotient_edges = q.graph.num_edges();

  const QuotientDiametersResult qd = quotient_diameters(q, opts.quotient);
  out.quotient_diam = qd.plain;
  out.quotient_exact = qd.exact;
  out.estimate_classic = qd.plain + 2.0 * out.clustering.radius;
  out.estimate = opts.radius_aware ? qd.augmented : out.estimate_classic;
  return out;
}

}  // namespace gdiam::core
