#pragma once
// Persistence of decomposition results.
//
// A CLUSTER/CLUSTER2 run on a massive graph is expensive; saving the
// clustering lets downstream tools (quotient analytics, sharding, repeated
// diameter queries at different quotient budgets) reuse it. Binary format
// with a magic header and version, like graph/io.hpp's graph format.

#include <iosfwd>
#include <string>

#include "core/cluster.hpp"

namespace gdiam::core {

/// Writes a clustering (magic "GDCL", version, arrays). Throws
/// std::runtime_error on I/O failure.
void write_clustering(const Clustering& c, std::ostream& out);
void write_clustering_file(const Clustering& c, const std::string& path);

/// Reads a clustering written by write_clustering; validates the header and
/// array-size consistency. Throws std::runtime_error on malformed input.
[[nodiscard]] Clustering read_clustering(std::istream& in);
[[nodiscard]] Clustering read_clustering_file(const std::string& path);

}  // namespace gdiam::core
