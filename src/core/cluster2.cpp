#include "core/cluster2.hpp"

#include <algorithm>
#include <cmath>

#include "core/partial_growth.hpp"
#include "exec/context.hpp"
#include "util/rng.hpp"

namespace gdiam::core {

Cluster2Result cluster2(const Graph& g, const Cluster2Options& opts,
                        exec::Context* ctx) {
  const NodeId n = g.num_nodes();
  Cluster2Result out;

  exec::Context local_ctx;
  exec::Context& C = ctx != nullptr ? *ctx : local_ctx;

  // --- bootstrap: learn R_CL(τ) from CLUSTER(G, τ) -------------------------
  // The bootstrap shares the context: its pooled engine and cached layouts
  // are re-acquired (and reset) by the driver below.
  const Clustering bootstrap = cluster(g, opts.base, &C);
  out.radius_cluster1 = bootstrap.radius;
  out.bootstrap_stats = bootstrap.stats;

  Clustering& c2 = out.clustering;
  c2.stats = bootstrap.stats;  // CLUSTER2 pays for its CLUSTER call
  if (n == 0) return out;

  // Growth quantum 2·R_CL(τ). A zero radius (every node its own cluster in
  // the bootstrap, e.g. τ ≥ n) degenerates to the smallest edge weight so
  // light edges still exist.
  const Weight quantum =
      2.0 * (bootstrap.radius > 0.0
                 ? bootstrap.radius
                 : (g.min_weight() > 0.0 ? g.min_weight() : 1.0));

  // The driver re-initializes the per-node assignment; c2.stats (set above)
  // already carries the bootstrap cost and is only appended to from here.
  detail::PartialGrowthDriver drv(g, opts.base, C, c2);
  GrowingEngine& engine = drv.engine();
  std::vector<std::uint32_t> birth(n, 0);  // iteration a center was born
  std::vector<Weight> budget(n, 0.0);      // per-center growth budget
  util::Xoshiro256 rng(opts.base.seed ^ 0x9e3779b97f4a7c15ULL);

  const auto iterations = static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(std::log2(static_cast<double>(n)))));

  // The CLUSTER2 growth rule for the shared stage driver
  // (core/partial_growth.hpp): in iteration i uncovered nodes become centers
  // independently with probability 2^i / n, every cluster grows along light
  // (w ≤ 2·R_CL) edges under its per-center budget until no state changes,
  // and everything reached is contracted at its label distance.
  std::uint32_t i = 0;
  struct Rule {
    Clustering& c2;
    detail::PartialGrowthDriver& drv;
    GrowingEngine& engine;
    const Graph& g;
    const Cluster2Options& opts;
    util::Xoshiro256& rng;
    const Weight quantum;
    const std::uint32_t iterations;
    std::uint32_t& i;
    std::vector<std::uint32_t>& birth;
    std::vector<Weight>& budget;

    bool more_stages() {
      if (i >= iterations || drv.uncovered() == 0) return false;
      ++i;
      return true;
    }

    // --- center selection with doubling probability 2^i / n ---------------
    void select_centers() {
      const NodeId n = g.num_nodes();
      const double p =
          std::min(1.0, std::ldexp(1.0, static_cast<int>(i)) /
                            static_cast<double>(n));
      for (NodeId u = 0; u < n; ++u) {
        if (drv.is_covered(u) || label_assigned(engine.label(u))) continue;
        if (rng.next_bernoulli(p)) {
          engine.set_source(u, u);
          birth[u] = i;
        }
      }
    }

    // --- PartialGrowth2: grow until no state is updated -------------------
    void grow() {
      const NodeId n = g.num_nodes();
      // Cluster born at iteration b may grow to total light-distance
      // (i − b + 1) · 2R_CL — the Contract2 weight-rescaling equivalence.
      for (NodeId u = 0; u < n; ++u) {
        if (engine.label(u) != kUnassignedLabel &&
            label_center(engine.label(u)) == u) {
          budget[u] = static_cast<Weight>(i - birth[u] + 1) * quantum;
        }
      }
      GrowingStepParams params;
      params.light_threshold = quantum;  // heavier than 2R_CL: never used
      params.center_budget = &budget;
      engine.rebuild_frontier(params);
      engine.run(params, c2.stats, opts.max_steps_per_growth,
                 [](const GrowingStepResult&) { return false; });
    }

    // --- logical Contract2: everything reached becomes covered ------------
    void contract() {
      const NodeId n = g.num_nodes();
      for (NodeId u = 0; u < n; ++u) {
        if (drv.is_covered(u)) continue;
        const PackedLabel lab = engine.label(u);
        if (!label_assigned(lab)) continue;
        drv.cover(u, label_center(lab), static_cast<Weight>(label_dist(lab)));
      }
    }
  };

  Rule rule{c2,   drv, engine,  g, opts,  rng,
            quantum, iterations, i, birth, budget};
  drv.run_stages(rule);

  // The final iteration has selection probability ≥ 1, so everything is
  // covered; the driver's finalize keeps a defensive singleton sweep for
  // graphs where floating point made the last probability land just below 1.
  drv.finalize();
  c2.delta_end = quantum;
  return out;
}

}  // namespace gdiam::core
