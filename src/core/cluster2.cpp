#include "core/cluster2.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace gdiam::core {

Cluster2Result cluster2(const Graph& g, const Cluster2Options& opts) {
  const NodeId n = g.num_nodes();
  Cluster2Result out;

  // --- bootstrap: learn R_CL(τ) from CLUSTER(G, τ) -------------------------
  const Clustering bootstrap = cluster(g, opts.base);
  out.radius_cluster1 = bootstrap.radius;
  out.bootstrap_stats = bootstrap.stats;

  Clustering& c2 = out.clustering;
  c2.center_of.assign(n, kInvalidNode);
  c2.dist_to_center.assign(n, kInfiniteWeight);
  c2.stats = bootstrap.stats;  // CLUSTER2 pays for its CLUSTER call
  if (n == 0) return out;

  // Growth quantum 2·R_CL(τ). A zero radius (every node its own cluster in
  // the bootstrap, e.g. τ ≥ n) degenerates to the smallest edge weight so
  // light edges still exist.
  const Weight quantum =
      2.0 * (bootstrap.radius > 0.0
                 ? bootstrap.radius
                 : (g.min_weight() > 0.0 ? g.min_weight() : 1.0));

  GrowingEngine engine(g, opts.base.policy, opts.base.partition);
  engine.set_frontier_options(opts.base.frontier);
  std::vector<std::uint8_t> covered(n, 0);
  std::vector<std::uint32_t> birth(n, 0);     // iteration a center was born
  std::vector<Weight> budget(n, 0.0);         // per-center growth budget
  util::Xoshiro256 rng(opts.base.seed ^ 0x9e3779b97f4a7c15ULL);

  const auto iterations = static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(std::log2(static_cast<double>(n)))));
  NodeId uncovered = n;

  for (std::uint32_t i = 1; i <= iterations && uncovered > 0; ++i) {
    c2.stages++;
    // --- center selection with doubling probability 2^i / n ---------------
    c2.stats.auxiliary_rounds++;
    const double p =
        std::min(1.0, std::ldexp(1.0, static_cast<int>(i)) /
                          static_cast<double>(n));
    for (NodeId u = 0; u < n; ++u) {
      if (covered[u] || label_assigned(engine.label(u))) continue;
      if (rng.next_bernoulli(p)) {
        engine.set_source(u, u);
        birth[u] = i;
      }
    }

    // --- per-center budgets for this iteration ----------------------------
    // Cluster born at iteration b may grow to total light-distance
    // (i − b + 1) · 2R_CL — the Contract2 weight-rescaling equivalence.
    for (NodeId u = 0; u < n; ++u) {
      if (engine.label(u) != kUnassignedLabel && label_center(engine.label(u)) == u) {
        budget[u] = static_cast<Weight>(i - birth[u] + 1) * quantum;
      }
    }

    // --- PartialGrowth2: grow until no state is updated --------------------
    GrowingStepParams params;
    params.light_threshold = quantum;  // edges heavier than 2R_CL never used
    params.center_budget = &budget;
    engine.rebuild_frontier(params);
    engine.run(params, c2.stats, opts.max_steps_per_growth,
               [](const GrowingStepResult&) { return false; });

    // --- logical Contract2: everything reached becomes covered -------------
    c2.stats.auxiliary_rounds++;
    for (NodeId u = 0; u < n; ++u) {
      if (covered[u]) continue;
      const PackedLabel lab = engine.label(u);
      if (!label_assigned(lab)) continue;
      covered[u] = 1;
      engine.block(u);
      c2.center_of[u] = label_center(lab);
      c2.dist_to_center[u] = static_cast<Weight>(label_dist(lab));
      --uncovered;
    }
  }

  // The final iteration has selection probability ≥ 1, so everything is
  // covered; keep a defensive singleton sweep for graphs where floating
  // point made the last probability land just below 1.
  for (NodeId u = 0; u < n; ++u) {
    if (c2.center_of[u] == kInvalidNode) {
      c2.center_of[u] = u;
      c2.dist_to_center[u] = 0.0;
    }
  }

  std::vector<std::uint8_t> is_center(n, 0);
  for (NodeId u = 0; u < n; ++u) is_center[c2.center_of[u]] = 1;
  for (NodeId u = 0; u < n; ++u) {
    if (is_center[u]) c2.centers.push_back(u);
  }
  c2.radius = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    c2.radius = std::max(c2.radius, c2.dist_to_center[u]);
  }
  c2.delta_end = quantum;
  return out;
}

}  // namespace gdiam::core
