#pragma once
// Weighted quotient graph of a clustering (Section 4 of the paper).
//
// Nodes of G_C are the clusters; for each edge (u,v) of G with
// c_u ≠ c_v there is an edge between the two clusters of weight
// w(u,v) + d_u + d_v (multiple edges collapse to the minimum weight).
// Because d_u, d_v are upper bounds on real distances to the centers, every
// quotient path over-estimates a real path, so
// Φ_approx = Φ(G_C) + 2·R ≥ Φ(G): the estimate is conservative.

#include <cstdint>
#include <vector>

#include "core/cluster.hpp"
#include "graph/graph.hpp"

namespace gdiam::exec {
class Context;
}  // namespace gdiam::exec

namespace gdiam::core {

struct QuotientGraph {
  /// The quotient itself; node i corresponds to cluster i.
  Graph graph;
  /// Cluster index -> original center node id (ascending center ids).
  std::vector<NodeId> center_of_cluster;
  /// Original node id -> cluster index.
  std::vector<NodeId> cluster_of_node;
  /// Cluster index -> radius r(C_i) = max dist_to_center over members.
  std::vector<Weight> cluster_radius;
};

/// Builds G_C from a clustering of g. When `ctx` (exec/context.hpp) holds a
/// cached shard layout for g — a partitioned CLUSTER run on the same context
/// leaves one behind — the inter-cluster edge scan walks the shards' owned
/// arcs instead of the flat CSR, reusing the layout the decomposition paid
/// for; the quotient is bit-identical either way (GraphBuilder's sort+dedup
/// makes the result independent of emission order).
[[nodiscard]] QuotientGraph build_quotient(const Graph& g,
                                           const Clustering& clustering,
                                           exec::Context* ctx = nullptr);

struct QuotientDiameterOptions {
  /// Up to this many quotient nodes the diameter is computed exactly
  /// (all-pairs Dijkstra, parallel over sources).
  NodeId exact_threshold = 2048;
  /// Iterated-sweep budget for larger quotients; restarts from several seed
  /// nodes so disconnected quotients are probed too.
  unsigned sweeps = 16;
  unsigned restarts = 4;
  std::uint64_t seed = 1;
};

struct QuotientDiameterResult {
  Weight diameter = 0.0;
  bool exact = false;
};

/// Diameter (largest intra-component distance) of the quotient graph.
/// Exact below `exact_threshold` nodes, iterated-sweep estimate above; the
/// paper likewise computes (a constant approximation of) Φ(G_C) on a single
/// machine in O(1) rounds.
[[nodiscard]] QuotientDiameterResult quotient_diameter(
    const Graph& quotient, const QuotientDiameterOptions& opts = {});

/// Radius-aware diameter bound: max over cluster pairs of
/// dist_GC(C1, C2) + r(C1) + r(C2), and 2·r(C) for intra-cluster pairs.
/// Since dist_G(u, v) ≤ dist_GC(C_u, C_v) + r(C_u) + r(C_v), this is a
/// conservative Φ(G) upper bound that is never worse than the paper's
/// Φ(G_C) + 2·max r — the global-radius outlier is only charged when its
/// own cluster realizes the quotient diameter (DESIGN.md §3 refinement).
[[nodiscard]] QuotientDiameterResult quotient_diameter_radius_aware(
    const QuotientGraph& quotient, const QuotientDiameterOptions& opts = {});

/// Both metrics from one pass over the quotient (each Dijkstra feeds the
/// plain max and the radius-augmented max simultaneously) — what CL-DIAM
/// uses so the classic and refined estimates cost one traversal.
struct QuotientDiametersResult {
  Weight plain = 0.0;      // Φ(G_C)
  Weight augmented = 0.0;  // max pair dist + r(C1) + r(C2), and 2·r(C)
  bool exact = false;
};

[[nodiscard]] QuotientDiametersResult quotient_diameters(
    const QuotientGraph& quotient, const QuotientDiameterOptions& opts = {});

}  // namespace gdiam::core
