#include "core/quotient.hpp"

#include <algorithm>
#include <stdexcept>

#include "exec/context.hpp"
#include "graph/builder.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/sweep.hpp"
#include "util/bitpack.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace gdiam::core {

QuotientGraph build_quotient(const Graph& g, const Clustering& clustering,
                             exec::Context* ctx) {
  const NodeId n = g.num_nodes();
  if (clustering.center_of.size() != n) {
    throw std::invalid_argument("build_quotient: clustering/graph mismatch");
  }

  QuotientGraph out;
  out.center_of_cluster = clustering.centers;
  const auto k = static_cast<NodeId>(clustering.centers.size());

  // center node id -> cluster index (centers are sorted ascending).
  std::vector<NodeId> index_of_center(n, kInvalidNode);
  for (NodeId i = 0; i < k; ++i) {
    index_of_center[clustering.centers[i]] = i;
  }
  // Membership + radii in one parallel sweep. Radii are max-reductions over
  // order-encoded doubles (util/bitpack.hpp), so the result is the exact
  // max regardless of thread interleaving — no floating-point accumulation.
  out.cluster_of_node.resize(n);
  std::vector<std::uint64_t> radius_bits(k, util::double_order_bits(0.0));
#pragma omp parallel for schedule(static, 4096)
  for (NodeId u = 0; u < n; ++u) {
    const NodeId cu = index_of_center[clustering.center_of[u]];
    out.cluster_of_node[u] = cu;
    util::atomic_fetch_max(
        radius_bits[cu],
        util::double_order_bits(clustering.dist_to_center[u]));
  }
  out.cluster_radius.resize(k);
  for (NodeId c = 0; c < k; ++c) {
    out.cluster_radius[c] = util::double_from_order_bits(radius_bits[c]);
  }

  // Inter-cluster edge scan over the whole edge set. Each thread emits into
  // its own buffer; GraphBuilder's sort+dedup makes the final quotient
  // independent of emission order, so the result is bit-identical to the
  // serial construction — and independent of which layout is scanned. When
  // the context already holds a shard layout for g (a partitioned CLUSTER
  // run on the same context built one), the scan walks the shards' owned
  // arcs — every directed arc lives in exactly its source's shard, so the
  // u < v filter sees each undirected edge exactly once, like the flat scan.
  util::ThreadBuffers<Edge> cut_edges;
  const mr::Partition* part = ctx != nullptr ? ctx->find_partition(g) : nullptr;
  if (part != nullptr && part->num_partitions() > 1) {
    // Shards in sequence, nodes within a shard in parallel: parallelism stays
    // O(n) like the flat scan even when K is far below the thread count (a
    // parallel-over-shards loop would cap the O(m) scan at K threads).
    for (const mr::Shard& sh : part->shards()) {
#pragma omp parallel for schedule(dynamic, 1024)
      for (NodeId l = 0; l < sh.num_owned; ++l) {
        const NodeId u = sh.global_of_local[l];
        const NodeId cu = out.cluster_of_node[u];
        auto& buf = cut_edges.local();
        for (EdgeIndex i = sh.offsets[l]; i < sh.offsets[l + 1]; ++i) {
          const NodeId v = sh.global_of_local[sh.targets[i]];
          if (u >= v) continue;  // each undirected edge once
          const NodeId cv = out.cluster_of_node[v];
          if (cu == cv) continue;  // intra-cluster edges vanish
          buf.push_back(Edge{cu, cv,
                             sh.weights[i] + clustering.dist_to_center[u] +
                                 clustering.dist_to_center[v]});
        }
      }
    }
  } else {
#pragma omp parallel for schedule(dynamic, 1024)
    for (NodeId u = 0; u < n; ++u) {
      const auto nbr = g.neighbors(u);
      const auto wts = g.weights(u);
      const NodeId cu = out.cluster_of_node[u];
      auto& buf = cut_edges.local();
      for (std::size_t i = 0; i < nbr.size(); ++i) {
        const NodeId v = nbr[i];
        if (u >= v) continue;  // each undirected edge once
        const NodeId cv = out.cluster_of_node[v];
        if (cu == cv) continue;  // intra-cluster edges vanish
        // Inter-cluster weight w(u,v) + d_u + d_v; GraphBuilder keeps the
        // minimum over parallel edges (the paper's rule).
        buf.push_back(Edge{cu, cv,
                           wts[i] + clustering.dist_to_center[u] +
                               clustering.dist_to_center[v]});
      }
    }
  }
  GraphBuilder b(k);
  b.add_edges(cut_edges.gather());
  out.graph = b.build_parallel();
  return out;
}

QuotientDiameterResult quotient_diameter(const Graph& quotient,
                                         const QuotientDiameterOptions& opts) {
  QuotientDiameterResult out;
  const NodeId k = quotient.num_nodes();
  if (k == 0) return out;

  if (k <= opts.exact_threshold) {
    out.diameter = sssp::exact_diameter(quotient);
    out.exact = true;
    return out;
  }

  util::Xoshiro256 rng(opts.seed);
  Weight best = 0.0;
  for (unsigned r = 0; r < std::max(1u, opts.restarts); ++r) {
    const auto seed_node = static_cast<NodeId>(rng.next_bounded(k));
    const auto sweep =
        sssp::diameter_lower_bound(quotient, opts.sweeps, opts.seed, seed_node);
    best = std::max(best, sweep.lower_bound);
  }
  out.diameter = best;
  out.exact = false;
  return out;
}

QuotientDiametersResult quotient_diameters(
    const QuotientGraph& quotient, const QuotientDiameterOptions& opts) {
  QuotientDiametersResult out;
  const Graph& q = quotient.graph;
  const NodeId k = q.num_nodes();
  if (k == 0) return out;
  const std::vector<Weight>& radius = quotient.cluster_radius;

  // Intra-cluster pairs: dist(u, v) ≤ 2·r(C).
  for (const Weight r : radius) out.augmented = std::max(out.augmented, 2.0 * r);

  // One Dijkstra feeds both metrics: plain eccentricity and the
  // radius-augmented eccentricity (max_j dist + r_j, plus r_c).
  struct Ecc {
    Weight plain = 0.0;
    Weight augmented = 0.0;
    NodeId far = 0;  // argmax in the augmented metric (sweep continuation)
  };
  auto both_ecc = [&](NodeId c) {
    const auto dist = sssp::dijkstra_distances(q, c);
    Ecc e;
    e.far = c;
    Weight aug_ecc = 0.0;
    for (NodeId j = 0; j < k; ++j) {
      if (dist[j] == kInfiniteWeight) continue;
      e.plain = std::max(e.plain, dist[j]);
      const Weight v = dist[j] + radius[j];
      if (v > aug_ecc) {
        aug_ecc = v;
        e.far = j;
      }
    }
    e.augmented = aug_ecc + radius[c];
    return e;
  };

  if (k <= opts.exact_threshold) {
    Weight plain = 0.0, augmented = out.augmented;
#pragma omp parallel for schedule(dynamic, 16) \
    reduction(max : plain, augmented)
    for (NodeId c = 0; c < k; ++c) {
      const Ecc e = both_ecc(c);
      plain = std::max(plain, e.plain);
      augmented = std::max(augmented, e.augmented);
    }
    out.plain = plain;
    out.augmented = augmented;
    out.exact = true;
    return out;
  }

  // Large quotient: iterated sweeps (augmented metric drives the farthest
  // hop), restarting from several seeds so disconnected quotients are
  // probed too.
  util::Xoshiro256 rng(opts.seed);
  for (unsigned r = 0; r < std::max(1u, opts.restarts); ++r) {
    NodeId source = static_cast<NodeId>(rng.next_bounded(k));
    std::vector<NodeId> visited;
    for (unsigned s = 0; s < std::max(1u, opts.sweeps); ++s) {
      if (std::find(visited.begin(), visited.end(), source) != visited.end()) {
        break;
      }
      visited.push_back(source);
      const Ecc e = both_ecc(source);
      out.plain = std::max(out.plain, e.plain);
      out.augmented = std::max(out.augmented, e.augmented);
      source = e.far;
    }
  }
  out.exact = false;
  return out;
}

QuotientDiameterResult quotient_diameter_radius_aware(
    const QuotientGraph& quotient, const QuotientDiameterOptions& opts) {
  const QuotientDiametersResult both = quotient_diameters(quotient, opts);
  return QuotientDiameterResult{both.augmented, both.exact};
}

}  // namespace gdiam::core
