#include "core/frontier.hpp"

#include <algorithm>
#include <atomic>
#include <bit>

#include <omp.h>

#include <cmath>

#include "util/rng.hpp"

namespace gdiam::core {

namespace {

/// Words per block of the dense materialization scan (64 Ki vertices): large
/// enough to amortize the prefix pass, small enough to balance skewed
/// frontiers across threads.
constexpr std::size_t kScanBlockWords = 1024;

}  // namespace

void Frontier::reset(NodeId n, const FrontierOptions& opts) {
  n_ = n;
  opts_ = opts;
  if (opts_.local_queue_capacity == 0) opts_.local_queue_capacity = 1;
  collect_mode_ = FrontierMode::kSparse;
  current_mode_ = FrontierMode::kSparse;
  round_ = 1;
  current_round_ = 0;
  stamp_.assign(n_, 0);
  bits_.assign((static_cast<std::size_t>(n_) + 63) / 64, 0);
  nodes_.clear();
  for (auto& b : blocks_) {
    b.clear();
    free_blocks_.push_back(std::move(b));
  }
  blocks_.clear();
  ensure_thread_slots();
  for (auto& q : queues_) q.buf.clear();
}

void Frontier::ensure_thread_slots() {
  const auto want = static_cast<std::size_t>(omp_get_max_threads());
  if (queues_.size() < want) queues_.resize(want);
  for (auto& q : queues_) q.buf.reserve(opts_.local_queue_capacity);
}

void Frontier::flush_queue(LocalQueue& q) {
  std::vector<NodeId> fresh;
  {
    const std::lock_guard<std::mutex> lock(blocks_mutex_);
    blocks_.push_back(std::move(q.buf));
    if (!free_blocks_.empty()) {
      fresh = std::move(free_blocks_.back());
      free_blocks_.pop_back();
    }
  }
  fresh.clear();
  fresh.reserve(opts_.local_queue_capacity);
  q.buf = std::move(fresh);
}

bool Frontier::insert(NodeId v) {
  // Dense collection is bitmap-only: the fetch_or is the dedup, and stamps
  // stay untouched so contains() keeps answering for the *current* frontier
  // even while this round is being collected (fused scan+collect rounds like
  // the dense pull sweep rely on that). advance() rewrites the stamps.
  if (collect_mode_ == FrontierMode::kDense) {
    const std::uint64_t mask = 1ULL << (v & 63);
    std::atomic_ref<std::uint64_t> word(bits_[v >> 6]);
    return (word.fetch_or(mask, std::memory_order_relaxed) & mask) == 0;
  }
  std::atomic_ref<std::uint32_t> s(stamp_[v]);
  std::uint32_t cur = s.load(std::memory_order_relaxed);
  do {
    if (cur == round_) return false;  // someone already inserted v this round
  } while (!s.compare_exchange_weak(cur, round_, std::memory_order_relaxed));
  LocalQueue& q = queues_[static_cast<std::size_t>(omp_get_thread_num())];
  q.buf.push_back(v);
  if (q.buf.size() >= opts_.local_queue_capacity) flush_queue(q);
  return true;
}

bool Frontier::insert_serial(NodeId v) {
  if (collect_mode_ == FrontierMode::kDense) {
    // Distinct callers own distinct v, but two v can share a word.
    const std::uint64_t mask = 1ULL << (v & 63);
    std::atomic_ref<std::uint64_t> word(bits_[v >> 6]);
    return (word.fetch_or(mask, std::memory_order_relaxed) & mask) == 0;
  }
  if (stamp_[v] == round_) return false;
  stamp_[v] = round_;
  LocalQueue& q = queues_[static_cast<std::size_t>(omp_get_thread_num())];
  q.buf.push_back(v);
  if (q.buf.size() >= opts_.local_queue_capacity) flush_queue(q);
  return true;
}

void Frontier::materialize() {
  nodes_.clear();
  if (collect_mode_ == FrontierMode::kSparse) {
    std::size_t total = 0;
    for (const auto& b : blocks_) total += b.size();
    for (const auto& q : queues_) total += q.buf.size();
    nodes_.reserve(total);
    for (auto& b : blocks_) {
      nodes_.insert(nodes_.end(), b.begin(), b.end());
      b.clear();
      free_blocks_.push_back(std::move(b));  // recycle the storage
    }
    blocks_.clear();
    // Partial thread queues are copied out and cleared in place (capacity
    // kept), so rounds that never overflow a queue — the steady sparse
    // state — allocate nothing and the free list only cycles on overflow.
    for (auto& q : queues_) {
      nodes_.insert(nodes_.end(), q.buf.begin(), q.buf.end());
      q.buf.clear();
    }
    return;
  }

  // Dense: blocked parallel scan of the bitmap — count, prefix, fill — and
  // clear each word on the way out so the bitmap is ready for reuse.
  const std::size_t words = bits_.size();
  const std::size_t nblocks = (words + kScanBlockWords - 1) / kScanBlockWords;
  scan_offsets_.assign(nblocks + 1, 0);
#pragma omp parallel for schedule(static)
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t lo = b * kScanBlockWords;
    const std::size_t hi = std::min(words, lo + kScanBlockWords);
    std::size_t count = 0;
    for (std::size_t w = lo; w < hi; ++w) {
      count += static_cast<std::size_t>(std::popcount(bits_[w]));
    }
    scan_offsets_[b + 1] = count;
  }
  for (std::size_t b = 0; b < nblocks; ++b) {
    scan_offsets_[b + 1] += scan_offsets_[b];
  }
  nodes_.resize(scan_offsets_[nblocks]);
#pragma omp parallel for schedule(static)
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t lo = b * kScanBlockWords;
    const std::size_t hi = std::min(words, lo + kScanBlockWords);
    std::size_t out = scan_offsets_[b];
    for (std::size_t w = lo; w < hi; ++w) {
      std::uint64_t word = bits_[w];
      bits_[w] = 0;
      while (word != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(word));
        nodes_[out++] = static_cast<NodeId>(w * 64 + bit);
        word &= word - 1;
      }
    }
  }
}

std::size_t Frontier::estimate_size() const noexcept {
  if (collect_mode_ != FrontierMode::kDense || n_ == 0) return 0;
  const std::uint64_t probes =
      opts_.size_probes == 0 ? 1 : opts_.size_probes;
  // Seeded by (sample_seed, collecting round): fresh probe positions every
  // round, identical across runs, thread counts and transports — the probe
  // set never depends on how the bitmap was filled.
  util::SplitMix64 sm(opts_.sample_seed ^
                      (0x9e3779b97f4a7c15ULL * (round_ + 1)));
  std::uint64_t hits = 0;
  for (std::uint64_t i = 0; i < probes; ++i) {
    // Lemire-style scaling of a 64-bit draw onto [0, n): bias is < 2^-32 for
    // any realistic n, far below the sampling noise this feeds into.
    const auto v = static_cast<NodeId>(
        (static_cast<unsigned __int128>(sm.next()) * n_) >> 64);
    hits += (bits_[v >> 6] >> (v & 63)) & 1ULL;
  }
  // hits ≤ probes ≤ 2^32 and n < 2^32, so the product fits in 64 bits only
  // for probes ≤ 2^32/n; go through 128-bit to stay exact for any config.
  return static_cast<std::size_t>(
      (static_cast<unsigned __int128>(hits) * n_) / probes);
}

std::size_t Frontier::estimate_noise_margin() const noexcept {
  const std::uint64_t probes =
      opts_.size_probes == 0 ? 1 : opts_.size_probes;
  // Probe hits are Binomial(probes, q); the scaled estimate n·hits/probes has
  // stddev n·sqrt(q(1-q)/probes) ≈ sqrt(q·n²/probes). Evaluated at the
  // down-threshold occupancy q = sparse_threshold()/n that is
  // sqrt(sparse_threshold·n/probes); the margin is two of those.
  const double sigma =
      std::sqrt(static_cast<double>(sparse_threshold()) *
                static_cast<double>(n_) / static_cast<double>(probes));
  return static_cast<std::size_t>(2.0 * sigma);
}

void Frontier::bump_round() {
  if (++round_ != 0) return;
  // Stamp wraparound (once per 2^32 rounds): rebase so current members stay
  // distinguishable from everything else.
  std::fill(stamp_.begin(), stamp_.end(), 0);
  for (const NodeId v : nodes_) stamp_[v] = 1;
  current_round_ = nodes_.empty() ? 0 : 1;
  round_ = 2;
}

void Frontier::advance() {
  ensure_thread_slots();
  // Sampled sizing (FrontierOptions::sampled_size_estimate): probe the dense
  // bitmap *before* materialize() clears it. Only engages when the universe
  // is bigger than the probe count — below that the popcount scan is already
  // cheaper than probing, and the estimate would be exact anyway.
  const bool sample = opts_.adaptive && opts_.sampled_size_estimate &&
                      collect_mode_ == FrontierMode::kDense &&
                      n_ > opts_.size_probes;
  const std::size_t estimated = sample ? estimate_size() : 0;
  last_decision_sampled_ = sample;
  materialize();
  current_mode_ = collect_mode_;
  current_round_ = round_;
  if (current_mode_ == FrontierMode::kDense) {
    // Dense collection bypassed the stamps; rewrite them now so contains()
    // and the next sparse round's dedup see this frontier.
#pragma omp parallel for schedule(static, 4096)
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      stamp_[nodes_[i]] = current_round_;
    }
  }
  bump_round();
  if (opts_.adaptive) {
    // Hysteresis: cross dense_threshold() to go dense, fall to
    // sparse_threshold() to come back; sizes inside the band keep the
    // current representation (no thrashing on oscillating waves).
    if (collect_mode_ == FrontierMode::kSparse) {
      // Up-switch: sparse sizes are exact and free, never sampled.
      if (nodes_.size() > dense_threshold()) {
        collect_mode_ = FrontierMode::kDense;
      }
    } else if (sample) {
      // Down-switch on a sampled size: the estimate must clear the
      // threshold by the 2σ noise margin, so one noisy draw cannot push a
      // genuinely-dense frontier into an expensive sparse round (and the
      // exact up-switch at the 4× higher dense_threshold() would then flip
      // it right back — the oscillation satellite this guards against).
      const std::size_t margin = estimate_noise_margin();
      const std::size_t limit = sparse_threshold();
      if (limit > margin && estimated <= limit - margin) {
        collect_mode_ = FrontierMode::kSparse;
      }
    } else if (nodes_.size() <= sparse_threshold()) {
      collect_mode_ = FrontierMode::kSparse;
    }
  }
}

void Frontier::clear() {
  ensure_thread_slots();
  nodes_.clear();
  for (auto& q : queues_) q.buf.clear();
  for (auto& b : blocks_) {
    b.clear();
    free_blocks_.push_back(std::move(b));
  }
  blocks_.clear();
  std::fill(bits_.begin(), bits_.end(), 0);  // abandoned dense collection
  collect_mode_ = FrontierMode::kSparse;
  current_mode_ = FrontierMode::kSparse;
  current_round_ = 0;
  bump_round();
  current_round_ = 0;  // bump_round's wraparound path may have set it
}

}  // namespace gdiam::core
