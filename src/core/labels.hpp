#pragma once
// Packed node labels for the Δ-growing kernels.
//
// During cluster growth every node carries a state (c_u, d_u): the tentative
// cluster center and a distance bound (Section 3 of the paper). The paper's
// update rule on conflicts is "smallest d_v wins, ties broken by the center
// with smallest index". We encode the state in one 64-bit word
//
//     [ order-bits(float d) : 32 | center id : 32 ]
//
// so that an unsigned integer *min* implements exactly that rule, and the
// parallel relaxation becomes a pure min-reduction: the fixpoint of a step is
// independent of thread interleaving (deterministic). Distances carry float
// precision inside the kernel (documented in DESIGN.md; full-precision
// accumulation happens in the per-cluster distance bookkeeping).

#include <cstdint>

#include "graph/graph.hpp"
#include "util/bitpack.hpp"

namespace gdiam::core {

using PackedLabel = std::uint64_t;

[[nodiscard]] constexpr PackedLabel pack_label(float dist,
                                               NodeId center) noexcept {
  return (static_cast<PackedLabel>(util::float_order_bits(dist)) << 32) |
         center;
}

[[nodiscard]] constexpr float label_dist(PackedLabel l) noexcept {
  return util::float_from_order_bits(static_cast<std::uint32_t>(l >> 32));
}

[[nodiscard]] constexpr NodeId label_center(PackedLabel l) noexcept {
  return static_cast<NodeId>(l & 0xffffffffULL);
}

/// The initial state (c_u undefined, d_u = ∞); larger than any real label.
inline constexpr PackedLabel kUnassignedLabel =
    pack_label(std::numeric_limits<float>::infinity(), kInvalidNode);

[[nodiscard]] constexpr bool label_assigned(PackedLabel l) noexcept {
  return l != kUnassignedLabel && label_center(l) != kInvalidNode;
}

}  // namespace gdiam::core
