#pragma once
// Algorithm CLUSTER2(G, τ) — Section 4 of the paper.
//
// The refined decomposition behind the O(log³ n) approximation proof. It
// first runs CLUSTER(G, τ) to learn the radius R_CL(τ), then executes
// ⌈log₂ n⌉ iterations; in iteration i uncovered nodes become new centers
// independently with probability 2^i / n, and all clusters (old and new)
// grow along light edges (w ≤ 2·R_CL) until no state changes.
//
// Procedure Contract2 rescales re-attached edge weights by
// d_u + w(u,v) − 2·R_CL; the equivalent formulation used here keeps labels
// as total light-distances D from the center and gives the cluster born at
// iteration b a growth budget (i − b + 1)·2·R_CL at iteration i (DESIGN.md
// §3). This preserves the key property used by Theorem 2: a center at light
// distance d from v needs ⌈d / 2R_CL⌉ iterations to reach v.

#include "core/cluster.hpp"

namespace gdiam::core {

struct Cluster2Options {
  /// Options of the bootstrap CLUSTER run (τ, Δ-init, seed, policy...).
  ClusterOptions base;
  /// Cap on Δ-growing steps per PartialGrowth2 invocation (the paper's
  /// O((n/τ) log n) variant); 0 = unlimited.
  std::uint64_t max_steps_per_growth = 0;
};

struct Cluster2Result {
  Clustering clustering;
  /// Radius R_CL(τ) of the bootstrap CLUSTER run (the growth quantum is
  /// 2·radius_cluster1).
  Weight radius_cluster1 = 0.0;
  /// The bootstrap decomposition's stats are included in
  /// clustering.stats; kept separately too for the ablation bench.
  mr::RoundStats bootstrap_stats;
};

/// Runs CLUSTER2(G, τ). The returned clustering covers every node; its
/// radius is R_CL2(τ) = O(R_G(τ) log² n) w.h.p. (Lemma 2). A non-null `ctx`
/// (exec/context.hpp) is shared with the bootstrap CLUSTER run, so both
/// phases reuse one pooled growing engine and one set of cached layouts;
/// results are bit-identical with or without one.
[[nodiscard]] Cluster2Result cluster2(const Graph& g,
                                      const Cluster2Options& opts,
                                      exec::Context* ctx = nullptr);

}  // namespace gdiam::core
