#include "core/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/partial_growth.hpp"
#include "exec/context.hpp"
#include "util/rng.hpp"

namespace gdiam::core {

namespace {

Weight initial_delta(const Graph& g, const ClusterOptions& opts) {
  switch (opts.delta_init) {
    case DeltaInit::kMinWeight:
      return g.min_weight() > 0.0 ? g.min_weight() : 1.0;
    case DeltaInit::kFixed:
      if (!(opts.delta_fixed > 0.0)) {
        throw std::invalid_argument("cluster: delta_fixed must be positive");
      }
      return opts.delta_fixed;
    case DeltaInit::kAverageWeight:
    default:
      return g.avg_weight() > 0.0 ? g.avg_weight() : 1.0;
  }
}

}  // namespace

bool Clustering::validate(const Graph& g) const {
  const NodeId n = g.num_nodes();
  if (center_of.size() != n || dist_to_center.size() != n) return false;
  for (NodeId u = 0; u < n; ++u) {
    if (center_of[u] >= n) return false;
    if (!(dist_to_center[u] >= 0.0) || dist_to_center[u] == kInfiniteWeight) {
      return false;
    }
    if (dist_to_center[u] > radius) return false;
  }
  for (const NodeId c : centers) {
    if (c >= n || center_of[c] != c || dist_to_center[c] != 0.0) return false;
  }
  if (!std::is_sorted(centers.begin(), centers.end())) return false;
  // Every center referenced must be listed.
  std::vector<std::uint8_t> is_center(n, 0);
  for (const NodeId c : centers) is_center[c] = 1;
  for (NodeId u = 0; u < n; ++u) {
    if (!is_center[center_of[u]]) return false;
  }
  return true;
}

Clustering cluster(const Graph& g, const ClusterOptions& opts,
                   exec::Context* ctx) {
  if (opts.tau == 0) throw std::invalid_argument("cluster: tau must be >= 1");
  const NodeId n = g.num_nodes();

  Clustering out;
  out.center_of.assign(n, kInvalidNode);
  out.dist_to_center.assign(n, kInfiniteWeight);

  if (n == 0) return out;

  exec::Context local_ctx;
  exec::Context& C = ctx != nullptr ? *ctx : local_ctx;
  detail::PartialGrowthDriver drv(g, opts, C, out);
  GrowingEngine& engine = drv.engine();

  // Upper bound on the distance from each center to its cluster's current
  // boundary; newly covered nodes get dist = offset(center) + stage label.
  std::vector<Weight> cluster_offset(n, 0.0);

  const double logn = std::max(1.0, std::log2(static_cast<double>(n)));
  const double stop_threshold =
      opts.stop_factor * static_cast<double>(opts.tau) * logn;
  // Any simple path weighs at most (n-1)·max_weight: once Δ exceeds this at
  // a relaxation fixpoint, the remaining uncovered nodes are unreachable
  // from every source and further doubling cannot help.
  const Weight max_useful_delta =
      std::max(1.0, static_cast<Weight>(n) * std::max(1.0, g.max_weight()));

  Weight delta = initial_delta(g, opts);
  util::Xoshiro256 rng(opts.seed);

  // The CLUSTER growth rule for the shared stage driver
  // (core/partial_growth.hpp): fresh random centers among the uncovered each
  // stage, geometrically increasing Δ until half the uncovered nodes are
  // captured, contraction with the relaxation-forest distance fix-up.
  NodeId uncovered_at_start = 0;
  std::uint64_t labeled_uncovered = 0;
  std::vector<NodeId> new_centers;

  struct Rule {
    Clustering& out;
    detail::PartialGrowthDriver& drv;
    GrowingEngine& engine;
    const Graph& g;
    const ClusterOptions& opts;
    util::Xoshiro256& rng;
    const double stop_threshold;
    const Weight max_useful_delta;
    Weight& delta;
    std::vector<Weight>& cluster_offset;
    NodeId& uncovered_at_start;
    std::uint64_t& labeled_uncovered;
    std::vector<NodeId>& new_centers;
    const double logn;

    bool more_stages() const {
      return static_cast<double>(drv.uncovered()) >= stop_threshold &&
             drv.uncovered() > 0;
    }

    // --- center selection (one MR round: sample + broadcast) --------------
    void select_centers() {
      const NodeId n = g.num_nodes();
      uncovered_at_start = drv.uncovered();
      const double p = std::min(
          1.0, opts.gamma * static_cast<double>(opts.tau) * logn /
                   static_cast<double>(drv.uncovered()));
      engine.clear_labels();
      new_centers.clear();
      for (NodeId u = 0; u < n; ++u) {
        if (!drv.is_covered(u) && rng.next_bernoulli(p)) {
          new_centers.push_back(u);
        }
      }
      if (new_centers.empty()) {
        // The w.h.p. analysis assumes at least one center per stage; force
        // one so the implementation always makes progress.
        NodeId pick = kInvalidNode;
        std::uint64_t skip = rng.next_bounded(drv.uncovered());
        for (NodeId u = 0; u < n && pick == kInvalidNode; ++u) {
          if (!drv.is_covered(u) && skip-- == 0) pick = u;
        }
        new_centers.push_back(pick);
      }
      // Contracted clusters re-enter as zero-distance sources (Contract
      // re-attaches their frontier edges to the center, original weights).
      for (NodeId u = 0; u < n; ++u) {
        if (drv.is_covered(u)) engine.set_source(u, out.center_of[u]);
      }
      for (const NodeId c : new_centers) {
        engine.set_source(c, c);
      }
    }

    // --- grow with geometrically increasing Δ -----------------------------
    void grow() {
      const auto target =
          static_cast<std::uint64_t>((uncovered_at_start + 1) / 2);
      // New centers are uncovered nodes with d = 0 ≤ Δ: they are in V'.
      labeled_uncovered = new_centers.size();
      while (true) {
        GrowingStepParams params;
        params.light_threshold = delta;
        params.uniform_budget = delta;
        engine.rebuild_frontier(params);

        // PartialGrowth(G_i, Δ): Δ-growing steps until no state changes or
        // the coverage target is met (checked per step, as in the
        // pseudocode's repeat-until).
        const GrowingEngine::RunResult r = engine.run(
            params, out.stats, opts.max_steps_per_growth,
            [&](const GrowingStepResult& total) {
              return labeled_uncovered + total.newly_labeled >= target;
            });
        labeled_uncovered += r.totals.newly_labeled;
        out.stats.auxiliary_rounds++;  // |V'| count (prefix sum round)

        if (labeled_uncovered >= target) break;
        // Step cap exhausted mid-growth: accept the partial stage instead of
        // doubling (the Section 4 bounded-rounds variant — doubling Δ would
        // not shorten a hop-limited run, only re-pay it).
        if (r.hit_step_cap) break;
        // At a fixpoint, doubling unlocks heavier edges and more budget;
        // once Δ exceeds any possible path weight, the remaining uncovered
        // nodes are unreachable from the current sources and the stage must
        // settle for what it has.
        if (delta >= max_useful_delta) break;
        delta *= 2.0;
      }
    }

    // --- assignment + logical contraction (one MR round) ------------------
    void contract() {
      const NodeId n = g.num_nodes();
      std::vector<NodeId> newly_covered;
      for (NodeId u = 0; u < n; ++u) {
        if (drv.is_covered(u)) continue;
        if (!label_assigned(engine.label(u))) continue;
        newly_covered.push_back(u);
      }
      // dist_to_center fix-up: the stage label d_v only measures the path
      // from the cluster's *boundary* (Contract re-attaches frontier edges
      // at original weight), so the distance to the center is recovered by
      // walking the relaxation forest: processing newly covered nodes by
      // increasing stage label, a node's true parent (the neighbor that set
      // d_v = d_u + w) is already finalized, giving the exact weight of an
      // actual center-to-v path — a tight, deterministic upper bound. When
      // growth stopped early the parent's label may have shifted afterwards;
      // the per-cluster boundary offset then serves as a safe fallback.
      std::sort(newly_covered.begin(), newly_covered.end(),
                [&](NodeId a, NodeId b) {
                  const float da = label_dist(engine.label(a));
                  const float db = label_dist(engine.label(b));
                  if (da != db) return da < db;
                  return a < b;
                });
      for (const NodeId v : newly_covered) {
        const PackedLabel lab = engine.label(v);
        const NodeId c = label_center(lab);
        const float bv = label_dist(lab);
        Weight best = kInfiniteWeight;
        if (bv == 0.0f) {
          best = 0.0;  // new center
        } else {
          const auto nbr = g.neighbors(v);
          const auto wts = g.weights(v);
          for (std::size_t i = 0; i < nbr.size(); ++i) {
            const NodeId u = nbr[i];
            // Any already-finalized member of the same cluster (covered in
            // an earlier stage, or earlier in this sweep) certifies the real
            // path center -> u -> v of weight dist(u) + w.
            if (drv.is_covered(u) && out.center_of[u] == c &&
                out.dist_to_center[u] != kInfiniteWeight) {
              best = std::min(best, out.dist_to_center[u] + wts[i]);
            }
          }
          if (best == kInfiniteWeight) {
            best = cluster_offset[c] + static_cast<Weight>(bv);  // fallback
          }
        }
        drv.cover(v, c, best);
      }
      // The boundary offset advances to the stage's final extent.
      for (const NodeId v : newly_covered) {
        cluster_offset[out.center_of[v]] =
            std::max(cluster_offset[out.center_of[v]], out.dist_to_center[v]);
      }
    }
  };

  Rule rule{out,
            drv,
            engine,
            g,
            opts,
            rng,
            stop_threshold,
            max_useful_delta,
            delta,
            cluster_offset,
            uncovered_at_start,
            labeled_uncovered,
            new_centers,
            logn};
  drv.run_stages(rule);

  // --- leftover nodes become singleton clusters (one MR round) ------------
  out.stats.auxiliary_rounds++;
  drv.finalize();
  out.delta_end = delta;
  return out;
}

std::uint32_t tau_for_cluster_target(NodeId n, NodeId target_clusters) {
  if (n == 0 || target_clusters == 0) return 1;
  const double logn = std::max(1.0, std::log2(static_cast<double>(n)));
  // CLUSTER produces Θ(τ log n) centers per stage over ≈log n stages plus
  // ≤ 8·τ·log n singletons; dividing the target by c·log n with c ≈ 12
  // keeps the observed cluster counts at or below the target.
  const double tau = static_cast<double>(target_clusters) / (12.0 * logn);
  return static_cast<std::uint32_t>(std::max(1.0, tau));
}

}  // namespace gdiam::core
