#pragma once
// The versioned on-disk binary CSR format (.gcsr) — DESIGN.md §14.
//
// A .gcsr file is the mmap-ready image of one gdiam::Graph plus optional
// per-Δ presplit sidecars:
//
//   [  0, 128)  GcsrHeader: magic "gdiamCSR", format version, flags, n,
//               arc count, weight kind, persisted weight stats (so opening
//               never scans the weights section), graph fingerprint, and a
//               checksum over the header bytes themselves.
//   [128, ...)  section payloads, each padded to a 64-byte boundary so the
//               mapped pointers are aligned for every element type (and for
//               cache-line-clean kernel scans):
//                 offsets  (n+1) × u64   |
//                 targets   2m  × u32    |- the Graph's CSR arrays
//                 weights   2m  × f64    |
//               and, per persisted Δ (sorted ascending):
//                 presplit_split    n  × u64   first-heavy index per node
//                 presplit_targets  2m × u32   light-first permutation
//                 presplit_weights  2m × f64   (aligned with targets)
//   [table]     SectionEntry[section_count]: kind, byte offset/length, an
//               FNV-1a checksum of the payload, and the Δ for sidecar
//               sections; followed by a u64 checksum of the table bytes.
//
// All integers are little-endian host-width PODs — the format is an image
// of the in-memory layout, not an interchange format (use DIMACS / edge
// lists to talk to other tools). open_mmap() maps the file, validates
// magic, version, header and table checksums, section alignment and bounds
// — and, by default, every section payload checksum — and hands out a
// zero-copy Graph whose spans point straight into the mapping. Every
// failure throws BinfmtError with a typed code; a corrupt or torn file can
// never produce a Graph.
//
// The presplit sidecars exist because a Δ-stepping server cold-start
// otherwise pays the O(m) light/heavy reorder per (graph, Δ) before the
// first query (Meyer–Sanders cost model; DESIGN.md §6):
// exec::Context::adopt_presplits() installs them into the layout cache
// after validation, so a restarted gdiamd serves its first query from the
// same layouts the previous process computed.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/split_csr.hpp"

namespace gdiam::io {

/// Current .gcsr format version. Readers reject files with any other value
/// (the header layout itself is frozen across versions).
inline constexpr std::uint32_t kGcsrVersion = 1;

/// Why a .gcsr read or write failed.
enum class BinfmtErrc {
  kIoError,           // open/map/write syscall failed (errno-level)
  kBadMagic,          // not a .gcsr file
  kBadVersion,        // future (or unknown) format version
  kBadHeader,         // header checksum mismatch or inconsistent fields
  kTruncated,         // file shorter than its own header/table claims
  kMisalignedSection, // section payload not 64-byte aligned
  kBadSection,        // section table inconsistent (kind/bounds/shape)
  kChecksumMismatch,  // a payload or table checksum does not match
  kBadWeightKind,     // weight encoding this build does not understand
  kBadPresplit,       // sidecar passed checksums but violates CSR bounds
  kFingerprintMismatch,  // sidecar adoption against a different graph
};

[[nodiscard]] const char* to_string(BinfmtErrc code) noexcept;

/// Every binfmt failure carries a typed code; what() includes the path.
class BinfmtError : public std::runtime_error {
 public:
  BinfmtError(BinfmtErrc code, const std::string& detail);
  [[nodiscard]] BinfmtErrc code() const noexcept { return code_; }

 private:
  BinfmtErrc code_;
};

/// FNV-1a 64 folded over 8-byte words (tail bytes individually) — the
/// checksum every section, the header and the section table carry. Exposed
/// so tests and tooling can re-stamp deliberately corrupted fixtures.
[[nodiscard]] std::uint64_t gcsr_checksum(const void* data,
                                          std::size_t len) noexcept;

struct GcsrWriteOptions {
  /// Δ values whose presplit layout is persisted as sidecar sections.
  /// Deduplicated and sorted ascending by the writer; the file records the
  /// exact double, and adoption matches it bit-for-bit.
  std::vector<Weight> presplit_deltas;
};

/// Writes `g` as a .gcsr file at `path`. Throws BinfmtError{kIoError} on
/// any write failure (fault point "io.write": errno and short-write faults
/// fail the write with the typed error; a torn run leaves a file that
/// open_mmap rejects as truncated, never a half-valid graph).
void write_gcsr(const Graph& g, const std::string& path,
                const GcsrWriteOptions& opts = {});

struct GcsrOpenOptions {
  /// Verify every section payload checksum at open (one sequential read of
  /// the file). Disable only for huge trusted files where first-touch
  /// laziness matters more than early corruption detection; header, table
  /// and structural validation always run.
  bool verify_checksums = true;
};

/// A mapped .gcsr file: the zero-copy Graph view plus the sidecar index.
/// Copies share the mapping (shared_ptr semantics); the mapping lives until
/// the last copy of this object *and* of graph() dies.
class MappedGraph {
 public:
  MappedGraph() = default;

  /// The zero-copy graph view. Copying the returned Graph is cheap and
  /// keeps the mapping alive through its backing keep-alive.
  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }

  /// The header's graph fingerprint: a pure function of (n, arcs, offsets/
  /// targets/weights checksums). Two files of the same graph agree on it.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

  /// Δ values with persisted presplit sidecars, ascending.
  [[nodiscard]] const std::vector<Weight>& presplit_deltas() const noexcept;

  /// Loads the sidecar for `delta` (exact bit match) into `out`. Returns
  /// false when the file has no sidecar for that Δ. Bounds-validates the
  /// split offsets against the graph's CSR before returning; a sidecar that
  /// passed its checksum but violates them throws BinfmtError{kBadPresplit}.
  [[nodiscard]] bool load_presplit(Weight delta, CsrSplit& out) const;

  /// True when `g` is a view into this mapping with this file's shape —
  /// the precondition for adopting sidecars for it.
  [[nodiscard]] bool covers(const Graph& g) const noexcept;

  [[nodiscard]] std::size_t file_bytes() const noexcept;

 private:
  friend MappedGraph open_mmap(const std::string&, const GcsrOpenOptions&);
  friend std::optional<MappedGraph> mapped_view(const Graph&);
  std::shared_ptr<const class GcsrFile> file_;
  Graph graph_;
};

/// Maps `path` and validates it (see class comment). Throws BinfmtError.
[[nodiscard]] MappedGraph open_mmap(const std::string& path,
                                    const GcsrOpenOptions& opts = {});

/// Rebuilds the MappedGraph view (sidecar index included) of a Graph whose
/// storage is an open_mmap mapping, from its backing keep-alive — no file
/// access, no re-validation. Returns nullopt for owned graphs. Pre: a
/// non-null Graph backing always comes from open_mmap; binfmt is the only
/// producer of mapped graphs in the library.
[[nodiscard]] std::optional<MappedGraph> mapped_view(const Graph& g);

}  // namespace gdiam::io
