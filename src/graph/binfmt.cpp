#include "graph/binfmt.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <utility>

#include "util/fault.hpp"

namespace gdiam::io {

namespace {

constexpr char kMagic[8] = {'g', 'd', 'i', 'a', 'm', 'C', 'S', 'R'};
constexpr std::size_t kAlign = 64;
constexpr std::uint32_t kFlagHasPresplit = 1u;
constexpr std::uint32_t kWeightKindF64 = 0;

// Section kinds, in the order they appear in a file.
constexpr std::uint32_t kSecOffsets = 1;
constexpr std::uint32_t kSecTargets = 2;
constexpr std::uint32_t kSecWeights = 3;
constexpr std::uint32_t kSecPresplitSplit = 4;
constexpr std::uint32_t kSecPresplitTargets = 5;
constexpr std::uint32_t kSecPresplitWeights = 6;

/// 128-byte on-disk header. The layout is frozen: future format versions
/// may only reinterpret `reserved`, so version checking always works.
struct GcsrHeader {
  char magic[8];
  std::uint32_t version = 0;
  std::uint32_t flags = 0;
  std::uint64_t num_nodes = 0;
  std::uint64_t num_arcs = 0;
  std::uint32_t weight_kind = 0;
  std::uint32_t section_count = 0;
  std::uint64_t section_table_off = 0;
  double min_weight = 0.0;
  double max_weight = 0.0;
  double avg_weight = 0.0;
  std::uint64_t fingerprint = 0;
  std::uint8_t reserved[40] = {};
  std::uint64_t header_checksum = 0;  // over the first 120 bytes
};
static_assert(sizeof(GcsrHeader) == 128, "frozen .gcsr header layout");

/// 40-byte on-disk section table entry.
struct SectionEntry {
  std::uint32_t kind = 0;
  std::uint32_t reserved = 0;
  std::uint64_t offset = 0;  // absolute byte offset, 64-byte aligned
  std::uint64_t length = 0;  // payload bytes (padding excluded)
  std::uint64_t checksum = 0;
  double delta = 0.0;  // presplit sections only
};
static_assert(sizeof(SectionEntry) == 40, "frozen .gcsr table layout");

[[noreturn]] void fail(BinfmtErrc code, const std::string& detail) {
  throw BinfmtError(code, detail);
}

constexpr std::uint64_t align_up(std::uint64_t off) {
  return (off + (kAlign - 1)) & ~static_cast<std::uint64_t>(kAlign - 1);
}

std::uint64_t fingerprint_of(std::uint64_t n, std::uint64_t arcs,
                             std::uint64_t ck_offsets,
                             std::uint64_t ck_targets,
                             std::uint64_t ck_weights) noexcept {
  const std::uint64_t words[5] = {n, arcs, ck_offsets, ck_targets, ck_weights};
  return gcsr_checksum(words, sizeof words);
}

// --- writer ----------------------------------------------------------------

/// Every byte leaving write_gcsr goes through here — the "io.write" fault
/// point turns errno faults into typed throws and short faults into a real
/// torn prefix on disk (which open_mmap then rejects as truncated).
void write_all(std::ofstream& f, const std::string& path, const void* data,
               std::size_t len) {
  if (len == 0) return;  // empty sections; keeps fault hit counts meaningful
  const auto outcome = util::fault::check("io.write");
  if (outcome.fail) {
    fail(BinfmtErrc::kIoError,
         path + ": write failed: " + std::strerror(errno));
  }
  if (outcome.short_io) {
    f.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(len / 2));
    f.flush();
    fail(BinfmtErrc::kIoError, path + ": short write (torn file)");
  }
  f.write(static_cast<const char*>(data), static_cast<std::streamsize>(len));
  if (!f) {
    fail(BinfmtErrc::kIoError,
         path + ": write failed: " + std::strerror(errno));
  }
}

void write_padding(std::ofstream& f, const std::string& path,
                   std::uint64_t from, std::uint64_t to) {
  static constexpr char kZeros[kAlign] = {};
  while (from < to) {
    const auto chunk = std::min<std::uint64_t>(to - from, sizeof kZeros);
    write_all(f, path, kZeros, chunk);
    from += chunk;
  }
}

}  // namespace

const char* to_string(BinfmtErrc code) noexcept {
  switch (code) {
    case BinfmtErrc::kIoError: return "io_error";
    case BinfmtErrc::kBadMagic: return "bad_magic";
    case BinfmtErrc::kBadVersion: return "bad_version";
    case BinfmtErrc::kBadHeader: return "bad_header";
    case BinfmtErrc::kTruncated: return "truncated";
    case BinfmtErrc::kMisalignedSection: return "misaligned_section";
    case BinfmtErrc::kBadSection: return "bad_section";
    case BinfmtErrc::kChecksumMismatch: return "checksum_mismatch";
    case BinfmtErrc::kBadWeightKind: return "bad_weight_kind";
    case BinfmtErrc::kBadPresplit: return "bad_presplit";
    case BinfmtErrc::kFingerprintMismatch: return "fingerprint_mismatch";
  }
  return "?";
}

BinfmtError::BinfmtError(BinfmtErrc code, const std::string& detail)
    : std::runtime_error("gdiam::io: gcsr " + std::string(to_string(code)) +
                         ": " + detail),
      code_(code) {}

std::uint64_t gcsr_checksum(const void* data, std::size_t len) noexcept {
  // FNV-1a 64 folded over 8-byte words (tail bytes one at a time): the
  // byte-serial variant caps verification at a few hundred MB/s, which would
  // make checksum-verified open_mmap slower than the presplit work the
  // sidecars exist to skip.
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ull;
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint64_t w = 0;
    std::memcpy(&w, p + i, 8);
    h ^= w;
    h *= 0x100000001b3ull;
  }
  for (; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

void write_gcsr(const Graph& g, const std::string& path,
                const GcsrWriteOptions& opts) {
  std::vector<Weight> deltas = opts.presplit_deltas;
  for (const Weight d : deltas) {
    if (!std::isfinite(d) || d < 0.0) {
      fail(BinfmtErrc::kBadPresplit,
           path + ": presplit delta must be finite and >= 0");
    }
  }
  std::sort(deltas.begin(), deltas.end());
  deltas.erase(std::unique(deltas.begin(), deltas.end()), deltas.end());

  const std::uint64_t n = g.num_nodes();
  const std::uint64_t arcs = g.num_directed_edges();

  struct Payload {
    std::uint32_t kind;
    double delta;
    const void* data;
    std::uint64_t length;
  };
  std::vector<Payload> payloads;
  payloads.reserve(3 + 3 * deltas.size());
  payloads.push_back({kSecOffsets, 0.0, g.offsets().data(),
                      g.offsets().size_bytes()});
  payloads.push_back({kSecTargets, 0.0, g.targets().data(),
                      g.targets().size_bytes()});
  payloads.push_back({kSecWeights, 0.0, g.edge_weights().data(),
                      g.edge_weights().size_bytes()});

  // The reorder happens here, once, at conversion time — exactly the work a
  // presplit-warmed server start skips.
  std::vector<CsrSplit> splits;
  splits.reserve(deltas.size());
  for (const Weight d : deltas) {
    splits.push_back(
        presplit_csr(g.offsets(), g.targets(), g.edge_weights(), d));
    const CsrSplit& s = splits.back();
    payloads.push_back({kSecPresplitSplit, d, s.split.data(),
                        s.split.size() * sizeof(EdgeIndex)});
    payloads.push_back({kSecPresplitTargets, d, s.targets.data(),
                        s.targets.size() * sizeof(NodeId)});
    payloads.push_back({kSecPresplitWeights, d, s.weights.data(),
                        s.weights.size() * sizeof(Weight)});
  }

  std::vector<SectionEntry> table;
  table.reserve(payloads.size());
  std::uint64_t off = sizeof(GcsrHeader);
  for (const Payload& p : payloads) {
    off = align_up(off);
    table.push_back({p.kind, 0, off, p.length,
                     gcsr_checksum(p.data, p.length), p.delta});
    off += p.length;
  }
  const std::uint64_t table_off = align_up(off);

  GcsrHeader header;
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.version = kGcsrVersion;
  header.flags = deltas.empty() ? 0 : kFlagHasPresplit;
  header.num_nodes = n;
  header.num_arcs = arcs;
  header.weight_kind = kWeightKindF64;
  header.section_count = static_cast<std::uint32_t>(table.size());
  header.section_table_off = table_off;
  header.min_weight = g.min_weight();
  header.max_weight = g.max_weight();
  header.avg_weight = g.avg_weight();
  header.fingerprint = fingerprint_of(n, arcs, table[0].checksum,
                                      table[1].checksum, table[2].checksum);
  header.header_checksum =
      gcsr_checksum(&header, sizeof header - sizeof header.header_checksum);

  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    fail(BinfmtErrc::kIoError, "cannot open '" + path + "' for writing");
  }
  write_all(f, path, &header, sizeof header);
  std::uint64_t cur = sizeof(GcsrHeader);
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    write_padding(f, path, cur, table[i].offset);
    write_all(f, path, payloads[i].data, payloads[i].length);
    cur = table[i].offset + table[i].length;
  }
  write_padding(f, path, cur, table_off);
  const std::uint64_t table_bytes = table.size() * sizeof(SectionEntry);
  write_all(f, path, table.data(), table_bytes);
  const std::uint64_t table_ck = gcsr_checksum(table.data(), table_bytes);
  write_all(f, path, &table_ck, sizeof table_ck);
  f.close();
  if (f.fail()) {
    fail(BinfmtErrc::kIoError, path + ": close failed");
  }
}

// --- reader ----------------------------------------------------------------

/// The mapped file: owns the mmap region and the validated section index.
/// Immutable after open_mmap; shared by every Graph view into it.
class GcsrFile {
 public:
  GcsrFile(const std::string& p, const std::byte* base, std::size_t size)
      : path(p), base_(base), size_(size) {}
  GcsrFile(const GcsrFile&) = delete;
  GcsrFile& operator=(const GcsrFile&) = delete;
  ~GcsrFile() {
    if (base_ != nullptr) {
      ::munmap(const_cast<std::byte*>(base_), size_);
    }
  }

  [[nodiscard]] const std::byte* at(std::uint64_t off) const noexcept {
    return base_ + off;
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  std::string path;
  GcsrHeader header;
  std::vector<SectionEntry> sections;
  std::vector<Weight> deltas;  // ascending; one triple of sections each

 private:
  const std::byte* base_ = nullptr;
  std::size_t size_ = 0;
};

namespace {

/// Shape of one section kind for a graph with n nodes and `arcs` arcs.
std::uint64_t expected_length(std::uint32_t kind, std::uint64_t n,
                              std::uint64_t arcs) {
  switch (kind) {
    case kSecOffsets: return (n + 1) * sizeof(EdgeIndex);
    case kSecTargets: return arcs * sizeof(NodeId);
    case kSecWeights: return arcs * sizeof(Weight);
    case kSecPresplitSplit: return n * sizeof(EdgeIndex);
    case kSecPresplitTargets: return arcs * sizeof(NodeId);
    case kSecPresplitWeights: return arcs * sizeof(Weight);
    default: return ~std::uint64_t{0};
  }
}

template <typename T>
std::span<const T> section_span(const GcsrFile& f, const SectionEntry& e) {
  return {reinterpret_cast<const T*>(f.at(e.offset)),
          static_cast<std::size_t>(e.length / sizeof(T))};
}

}  // namespace

std::uint64_t MappedGraph::fingerprint() const noexcept {
  return file_ != nullptr ? file_->header.fingerprint : 0;
}

const std::vector<Weight>& MappedGraph::presplit_deltas() const noexcept {
  static const std::vector<Weight> kEmpty;
  return file_ != nullptr ? file_->deltas : kEmpty;
}

std::size_t MappedGraph::file_bytes() const noexcept {
  return file_ != nullptr ? file_->size() : 0;
}

bool MappedGraph::covers(const Graph& g) const noexcept {
  if (file_ == nullptr) return false;
  return g.offsets().data() == graph_.offsets().data() &&
         g.offsets().size() == graph_.offsets().size() &&
         g.targets().data() == graph_.targets().data() &&
         g.targets().size() == graph_.targets().size() &&
         g.edge_weights().data() == graph_.edge_weights().data() &&
         g.edge_weights().size() == graph_.edge_weights().size();
}

bool MappedGraph::load_presplit(Weight delta, CsrSplit& out) const {
  if (file_ == nullptr) return false;
  const GcsrFile& f = *file_;
  // Find the sidecar triple for this exact Δ.
  const SectionEntry* split_e = nullptr;
  const SectionEntry* targets_e = nullptr;
  const SectionEntry* weights_e = nullptr;
  for (const SectionEntry& e : f.sections) {
    if (e.kind == kSecPresplitSplit && e.delta == delta) split_e = &e;
    if (e.kind == kSecPresplitTargets && e.delta == delta) targets_e = &e;
    if (e.kind == kSecPresplitWeights && e.delta == delta) weights_e = &e;
  }
  if (split_e == nullptr) return false;
  // open_mmap validated triples arrive complete; keep the invariant local.
  if (targets_e == nullptr || weights_e == nullptr) {
    fail(BinfmtErrc::kBadSection, f.path + ": incomplete presplit sidecar");
  }
  const auto split = section_span<EdgeIndex>(f, *split_e);
  const auto targets = section_span<NodeId>(f, *targets_e);
  const auto weights = section_span<Weight>(f, *weights_e);
  // Bounds-validate the split offsets against the graph's CSR: split[u]
  // must lie inside u's segment, or a kernel indexing through it would walk
  // out of the adjacency. Checksums catch corruption; this catches a buggy
  // or adversarial writer.
  const auto offsets = graph_.offsets();
  const NodeId n = graph_.num_nodes();
  if (split.size() != n || targets.size() != graph_.targets().size() ||
      weights.size() != graph_.edge_weights().size()) {
    fail(BinfmtErrc::kBadSection, f.path + ": presplit sidecar shape");
  }
  bool ok = true;
#pragma omp parallel for schedule(static) reduction(&& : ok)
  for (NodeId u = 0; u < n; ++u) {
    ok = ok && split[u] >= offsets[u] && split[u] <= offsets[u + 1];
  }
  if (!ok) {
    fail(BinfmtErrc::kBadPresplit,
         f.path + ": presplit split offsets out of CSR bounds");
  }
  out.split.assign(split.begin(), split.end());
  out.targets.assign(targets.begin(), targets.end());
  out.weights.assign(weights.begin(), weights.end());
  return true;
}

MappedGraph open_mmap(const std::string& path, const GcsrOpenOptions& opts) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    fail(BinfmtErrc::kIoError,
         "cannot open '" + path + "': " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    fail(BinfmtErrc::kIoError, path + ": fstat: " + std::strerror(err));
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < sizeof(GcsrHeader)) {
    ::close(fd);
    fail(BinfmtErrc::kTruncated, path + ": shorter than the 128-byte header");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping outlives the descriptor
  if (map == MAP_FAILED) {
    fail(BinfmtErrc::kIoError, path + ": mmap: " + std::strerror(errno));
  }
  auto file = std::make_shared<GcsrFile>(
      path, static_cast<const std::byte*>(map), size);

  GcsrHeader& h = file->header;
  std::memcpy(&h, file->at(0), sizeof h);
  if (std::memcmp(h.magic, kMagic, sizeof kMagic) != 0) {
    fail(BinfmtErrc::kBadMagic, path + ": not a .gcsr file");
  }
  if (h.version != kGcsrVersion) {
    fail(BinfmtErrc::kBadVersion,
         path + ": format version " + std::to_string(h.version) +
             " (this build reads version " + std::to_string(kGcsrVersion) +
             ")");
  }
  if (gcsr_checksum(&h, sizeof h - sizeof h.header_checksum) !=
      h.header_checksum) {
    fail(BinfmtErrc::kBadHeader, path + ": header checksum mismatch");
  }
  if (h.weight_kind != kWeightKindF64) {
    fail(BinfmtErrc::kBadWeightKind,
         path + ": weight kind " + std::to_string(h.weight_kind));
  }
  if (h.num_nodes > std::uint64_t{kInvalidNode} - 1) {
    fail(BinfmtErrc::kBadHeader, path + ": node count exceeds NodeId range");
  }
  if (h.section_count < 3) {
    fail(BinfmtErrc::kBadHeader, path + ": fewer than 3 sections");
  }
  const std::uint64_t table_bytes =
      std::uint64_t{h.section_count} * sizeof(SectionEntry);
  if (h.section_table_off < sizeof(GcsrHeader) ||
      h.section_table_off > size ||
      table_bytes + sizeof(std::uint64_t) > size - h.section_table_off) {
    fail(BinfmtErrc::kTruncated,
         path + ": section table extends past end of file");
  }
  file->sections.resize(h.section_count);
  std::memcpy(file->sections.data(), file->at(h.section_table_off),
              table_bytes);
  std::uint64_t table_ck = 0;
  std::memcpy(&table_ck, file->at(h.section_table_off + table_bytes),
              sizeof table_ck);
  if (gcsr_checksum(file->sections.data(), table_bytes) != table_ck) {
    fail(BinfmtErrc::kChecksumMismatch,
         path + ": section table checksum mismatch");
  }

  // Structural validation of the section index.
  const std::uint64_t n = h.num_nodes;
  const std::uint64_t arcs = h.num_arcs;
  const std::uint32_t graph_kinds[3] = {kSecOffsets, kSecTargets,
                                        kSecWeights};
  for (std::size_t i = 0; i < file->sections.size(); ++i) {
    const SectionEntry& e = file->sections[i];
    if (e.offset % kAlign != 0) {
      fail(BinfmtErrc::kMisalignedSection,
           path + ": section " + std::to_string(i) + " at offset " +
               std::to_string(e.offset) + " is not 64-byte aligned");
    }
    if (e.offset < sizeof(GcsrHeader) || e.offset > size ||
        e.length > h.section_table_off ||
        e.offset + e.length > h.section_table_off) {
      fail(BinfmtErrc::kTruncated,
           path + ": section " + std::to_string(i) + " out of bounds");
    }
    if (e.length != expected_length(e.kind, n, arcs)) {
      fail(BinfmtErrc::kBadSection,
           path + ": section " + std::to_string(i) + " (kind " +
               std::to_string(e.kind) + ") has the wrong length");
    }
    if (i < 3 && e.kind != graph_kinds[i]) {
      fail(BinfmtErrc::kBadSection,
           path + ": graph sections must lead the file in CSR order");
    }
  }
  // Presplit sidecars arrive as (split, targets, weights) triples with one
  // Δ each, strictly ascending.
  if ((file->sections.size() - 3) % 3 != 0) {
    fail(BinfmtErrc::kBadSection, path + ": dangling presplit sections");
  }
  for (std::size_t i = 3; i < file->sections.size(); i += 3) {
    const SectionEntry& a = file->sections[i];
    const SectionEntry& b = file->sections[i + 1];
    const SectionEntry& c = file->sections[i + 2];
    if (a.kind != kSecPresplitSplit || b.kind != kSecPresplitTargets ||
        c.kind != kSecPresplitWeights || a.delta != b.delta ||
        a.delta != c.delta || !std::isfinite(a.delta)) {
      fail(BinfmtErrc::kBadSection, path + ": malformed presplit sidecar");
    }
    if (!file->deltas.empty() && !(a.delta > file->deltas.back())) {
      fail(BinfmtErrc::kBadSection,
           path + ": presplit deltas not strictly ascending");
    }
    file->deltas.push_back(a.delta);
  }

  if (opts.verify_checksums) {
    for (std::size_t i = 0; i < file->sections.size(); ++i) {
      const SectionEntry& e = file->sections[i];
      if (gcsr_checksum(file->at(e.offset), e.length) != e.checksum) {
        fail(BinfmtErrc::kChecksumMismatch,
             path + ": section " + std::to_string(i) + " (kind " +
                 std::to_string(e.kind) + ") checksum mismatch");
      }
    }
  }
  if (fingerprint_of(n, arcs, file->sections[0].checksum,
                     file->sections[1].checksum,
                     file->sections[2].checksum) != h.fingerprint) {
    fail(BinfmtErrc::kBadHeader, path + ": graph fingerprint mismatch");
  }

  const auto offsets = section_span<EdgeIndex>(*file, file->sections[0]);
  const auto targets = section_span<NodeId>(*file, file->sections[1]);
  const auto weights = section_span<Weight>(*file, file->sections[2]);
  if (offsets.empty() || offsets.front() != 0 || offsets.back() != arcs) {
    fail(BinfmtErrc::kBadSection, path + ": offsets array inconsistent");
  }
  MappedGraph out;
  out.file_ = file;
  out.graph_ = Graph(offsets, targets, weights, file, h.min_weight,
                     h.max_weight, h.avg_weight);
  if (opts.verify_checksums && !out.graph_.validate()) {
    // Checksums match what the writer wrote, but the writer wrote a CSR
    // that violates the Graph invariants (unsorted offsets, out-of-range
    // targets, non-positive weights).
    fail(BinfmtErrc::kBadSection, path + ": mapped CSR fails validation");
  }
  return out;
}

std::optional<MappedGraph> mapped_view(const Graph& g) {
  if (!g.is_mapped()) return std::nullopt;
  auto file = std::static_pointer_cast<const GcsrFile>(g.backing());
  const GcsrHeader& h = file->header;
  MappedGraph out;
  out.file_ = file;
  // Rebind the canonical full-graph view from the (already validated)
  // section index, so covers() checks against the file, not against `g`.
  out.graph_ = Graph(section_span<EdgeIndex>(*file, file->sections[0]),
                     section_span<NodeId>(*file, file->sections[1]),
                     section_span<Weight>(*file, file->sections[2]), file,
                     h.min_weight, h.max_weight, h.avg_weight);
  return out;
}

}  // namespace gdiam::io
