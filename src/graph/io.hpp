#pragma once
// Graph serialization.
//
// Three interchange formats so users can run the paper's real datasets:
//  * DIMACS ".gr" — the 9th DIMACS shortest-path challenge format used by
//    roads-USA / roads-CAL ("p sp n m" header, "a u v w" arc lines, 1-based).
//  * SNAP edge list — whitespace-separated "u v [w]" lines with '#' comments,
//    the format of the SNAP/LAW social graphs (weight defaults to 1).
//  * gdiam binary — fast load/store of the CSR arrays with a magic header.

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace gdiam::io {

/// Reads a DIMACS .gr stream. Arcs appearing in both directions collapse to
/// one undirected edge (min weight). Throws std::runtime_error on malformed
/// input.
[[nodiscard]] Graph read_dimacs(std::istream& in);
[[nodiscard]] Graph read_dimacs_file(const std::string& path);

/// Writes DIMACS .gr (each undirected edge emitted as two arcs, weights
/// rounded up to ≥1 integers when fractional — DIMACS weights are integral).
void write_dimacs(const Graph& g, std::ostream& out);
void write_dimacs_file(const Graph& g, const std::string& path);

/// Reads a SNAP-style edge list: "u v" or "u v w" per line, '#' comments.
/// Node ids need not be contiguous; they are compacted preserving order of
/// first appearance when `compact_ids`, else taken literally (max id + 1
/// nodes). Directed inputs are symmetrized (paper: "the twitter graph,
/// originally directed, has been symmetrized").
/// `size_hint_bytes` (stream length, when known) presizes the edge buffer
/// and the id-remap table so the scan does not rehash/reallocate while
/// loading; the file variant derives it from the file size automatically.
/// The scan streams through fixed 1 MiB chunks with a bounded (64 KiB)
/// carry buffer for boundary-straddling lines — peak transient memory is
/// independent of the input size.
[[nodiscard]] Graph read_edge_list(std::istream& in, bool compact_ids = true,
                                   std::size_t size_hint_bytes = 0);
[[nodiscard]] Graph read_edge_list_file(const std::string& path,
                                        bool compact_ids = true);

void write_edge_list(const Graph& g, std::ostream& out);

/// gdiam binary format (magic "GDIA", version, CSR arrays, little-endian).
void write_binary(const Graph& g, std::ostream& out);
void write_binary_file(const Graph& g, const std::string& path);
[[nodiscard]] Graph read_binary(std::istream& in);
[[nodiscard]] Graph read_binary_file(const std::string& path);

}  // namespace gdiam::io
