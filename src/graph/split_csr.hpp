#pragma once
// Δ-presplit view of a CSR adjacency (the "split-CSR" memory layout).
//
// The two hottest kernels in gdiam — Δ-stepping relaxation and Δ-growing
// steps — only ever need one *class* of a node's edges at a time: the light
// ones (w ≤ Δ) or the heavy ones (w > Δ). Iterating the full adjacency with a
// per-edge weight comparison pays a branch per arc and, worse, scans every
// frontier node's segment twice per bucket (once for each class). The split
// layout reorders each node's segment so all light edges come first and
// records the per-node boundary, so a kernel iterates exactly the arcs it
// needs with zero per-edge class branches.
//
// The reorder is a *stable* partition: within each class the original
// adjacency order is preserved, so the layout is a pure function of
// (CSR, Δ) and rebuilding it is deterministic. Reordering a node's segment
// never changes any algorithmic outcome here — all kernels are min-reductions
// whose per-phase message/update counters are set-based (see
// sssp/delta_stepping.cpp), which the parity tests in tests/test_split_csr.cpp
// enforce bit-for-bit.

#include <cassert>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace gdiam {

/// Light-first permutation of one CSR's payload arrays. `offsets` stays the
/// caller's; `split[u]` is the index of u's first heavy arc (== offsets[u+1]
/// when u has none). Works for any CSR — the flat Graph and the per-shard
/// CSRs of mr::Partition both use it, so partitioned kernels see the same
/// split offsets as the flat ones.
struct CsrSplit {
  std::vector<EdgeIndex> split;  // size n: first heavy index per node
  std::vector<NodeId> targets;   // permuted copy, aligned with weights
  std::vector<Weight> weights;
};

/// Builds the light-first permutation of (targets, weights) under `delta`
/// (light ⇔ w ≤ delta). Parallel over nodes; each node's segment is
/// stably partitioned in place. Spans, not vectors: the flat Graph hands
/// out views (possibly into an mmap'd .gcsr file), the per-shard CSRs of
/// mr::Partition convert implicitly from their vectors.
[[nodiscard]] CsrSplit presplit_csr(std::span<const EdgeIndex> offsets,
                                    std::span<const NodeId> targets,
                                    std::span<const Weight> weights,
                                    Weight delta);

/// Graph-level split view: the graph's offsets plus presplit payload copies.
/// Immutable after construction and safe to share across threads, like the
/// Graph itself. Default-constructed instances are empty placeholders.
class SplitCsr {
 public:
  SplitCsr() = default;
  SplitCsr(const Graph& g, Weight delta)
      : g_(&g),
        delta_(delta),
        data_(presplit_csr(g.offsets(), g.targets(), g.edge_weights(),
                           delta)) {}

  /// Adopts a prebuilt split (the persisted-presplit path, graph/binfmt.hpp:
  /// `data` was loaded from a .gcsr sidecar instead of computed). The caller
  /// vouches that `data` is exactly presplit_csr(g, delta) — exec::Context
  /// bounds-checks on adoption and the binfmt round-trip tests pin the
  /// bit-identity.
  SplitCsr(const Graph& g, Weight delta, CsrSplit data)
      : g_(&g), delta_(delta), data_(std::move(data)) {}

  [[nodiscard]] bool empty() const noexcept { return g_ == nullptr; }
  [[nodiscard]] Weight delta() const noexcept { return delta_; }

  /// Index of u's first heavy arc in [offsets[u], offsets[u+1]].
  [[nodiscard]] EdgeIndex split_at(NodeId u) const noexcept {
    return data_.split[u];
  }
  [[nodiscard]] EdgeIndex light_degree(NodeId u) const noexcept {
    return data_.split[u] - g_->offsets()[u];
  }
  [[nodiscard]] EdgeIndex heavy_degree(NodeId u) const noexcept {
    return g_->offsets()[u + 1] - data_.split[u];
  }

  [[nodiscard]] std::span<const NodeId> light_neighbors(NodeId u) const noexcept {
    const EdgeIndex lo = g_->offsets()[u];
    return {data_.targets.data() + lo,
            static_cast<std::size_t>(data_.split[u] - lo)};
  }
  [[nodiscard]] std::span<const Weight> light_weights(NodeId u) const noexcept {
    const EdgeIndex lo = g_->offsets()[u];
    return {data_.weights.data() + lo,
            static_cast<std::size_t>(data_.split[u] - lo)};
  }
  [[nodiscard]] std::span<const NodeId> heavy_neighbors(NodeId u) const noexcept {
    const EdgeIndex hi = g_->offsets()[u + 1];
    return {data_.targets.data() + data_.split[u],
            static_cast<std::size_t>(hi - data_.split[u])};
  }
  [[nodiscard]] std::span<const Weight> heavy_weights(NodeId u) const noexcept {
    const EdgeIndex hi = g_->offsets()[u + 1];
    return {data_.weights.data() + data_.split[u],
            static_cast<std::size_t>(hi - data_.split[u])};
  }

  /// Raw permuted arrays (for kernels that iterate arcs by index).
  [[nodiscard]] const CsrSplit& data() const noexcept { return data_; }

  /// Checks the split invariants against the source graph: per-node segments
  /// are a permutation of the original adjacency (as (target, weight)
  /// multisets), classes are pure, and split offsets are in bounds.
  [[nodiscard]] bool validate() const;

 private:
  const Graph* g_ = nullptr;
  Weight delta_ = 0.0;
  CsrSplit data_;
};

}  // namespace gdiam
