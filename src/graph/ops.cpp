#include "graph/ops.hpp"

#include <algorithm>

#include "graph/builder.hpp"

namespace gdiam {

Subgraph induced_subgraph(const Graph& g, const std::vector<NodeId>& nodes) {
  std::vector<NodeId> selected = nodes;
  std::sort(selected.begin(), selected.end());
  selected.erase(std::unique(selected.begin(), selected.end()),
                 selected.end());

  std::vector<NodeId> to_new(g.num_nodes(), kInvalidNode);
  for (std::size_t i = 0; i < selected.size(); ++i) {
    to_new[selected[i]] = static_cast<NodeId>(i);
  }

  GraphBuilder b(static_cast<NodeId>(selected.size()));
  for (const NodeId u : selected) {
    const auto nbr = g.neighbors(u);
    const auto wts = g.weights(u);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      const NodeId v = nbr[i];
      if (u < v && to_new[v] != kInvalidNode) {
        b.add_edge(to_new[u], to_new[v], wts[i]);
      }
    }
  }
  return Subgraph{b.build(), std::move(selected)};
}

Graph reweight(const Graph& g,
               const std::function<Weight(NodeId, NodeId, Weight)>& fn) {
  GraphBuilder b(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbr = g.neighbors(u);
    const auto wts = g.weights(u);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      if (u < nbr[i]) b.add_edge(u, nbr[i], fn(u, nbr[i], wts[i]));
    }
  }
  return b.build();
}

bool has_edge(const Graph& g, NodeId u, NodeId v) {
  return edge_weight(g, u, v) != kInfiniteWeight;
}

Weight edge_weight(const Graph& g, NodeId u, NodeId v) {
  const auto nbr = g.neighbors(u);
  const auto wts = g.weights(u);
  for (std::size_t i = 0; i < nbr.size(); ++i) {
    if (nbr[i] == v) return wts[i];
  }
  return kInfiniteWeight;
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  const NodeId n = g.num_nodes();
  if (n == 0) return s;
  s.min = g.degree(0);
  for (NodeId u = 0; u < n; ++u) {
    const EdgeIndex d = g.degree(u);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
  }
  s.avg = static_cast<double>(g.num_directed_edges()) / n;
  return s;
}

}  // namespace gdiam
