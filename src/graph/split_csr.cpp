#include "graph/split_csr.hpp"

#include <algorithm>

namespace gdiam {

CsrSplit presplit_csr(std::span<const EdgeIndex> offsets,
                      std::span<const NodeId> targets,
                      std::span<const Weight> weights, Weight delta) {
  const std::size_t n = offsets.empty() ? 0 : offsets.size() - 1;
  CsrSplit out;
  out.split.resize(n);
  out.targets.resize(targets.size());
  out.weights.resize(weights.size());

  // Each node owns a disjoint slice of the output arrays, so the stable
  // two-pass partition of its segment needs no synchronization.
#pragma omp parallel for schedule(dynamic, 1024)
  for (std::size_t u = 0; u < n; ++u) {
    const EdgeIndex lo = offsets[u];
    const EdgeIndex hi = offsets[u + 1];
    EdgeIndex light = lo;
    for (EdgeIndex i = lo; i < hi; ++i) {
      if (weights[i] <= delta) {
        out.targets[light] = targets[i];
        out.weights[light] = weights[i];
        ++light;
      }
    }
    out.split[u] = light;
    for (EdgeIndex i = lo; i < hi; ++i) {
      if (!(weights[i] <= delta)) {
        out.targets[light] = targets[i];
        out.weights[light] = weights[i];
        ++light;
      }
    }
  }
  return out;
}

bool SplitCsr::validate() const {
  if (g_ == nullptr) return false;
  const Graph& g = *g_;
  const NodeId n = g.num_nodes();
  if (data_.split.size() != n) return false;
  if (data_.targets.size() != g.targets().size()) return false;
  if (data_.weights.size() != g.edge_weights().size()) return false;

  bool ok = true;
#pragma omp parallel for schedule(dynamic, 512) reduction(&& : ok)
  for (NodeId u = 0; u < n; ++u) {
    const EdgeIndex lo = g.offsets()[u];
    const EdgeIndex hi = g.offsets()[u + 1];
    const EdgeIndex sp = data_.split[u];
    if (sp < lo || sp > hi) {
      ok = false;
      continue;
    }
    // Class purity, and stability within each class: light (then heavy)
    // entries must appear in their original relative order, which also
    // proves the segment is a permutation of the original adjacency.
    EdgeIndex light = lo, heavy = sp;
    bool node_ok = true;
    for (EdgeIndex i = lo; i < hi; ++i) {
      if (g.edge_weights()[i] <= delta_) {
        node_ok = node_ok && light < sp &&
                  data_.targets[light] == g.targets()[i] &&
                  data_.weights[light] == g.edge_weights()[i];
        ++light;
      } else {
        node_ok = node_ok && heavy < hi &&
                  data_.targets[heavy] == g.targets()[i] &&
                  data_.weights[heavy] == g.edge_weights()[i];
        ++heavy;
      }
    }
    ok = ok && node_ok && light == sp && heavy == hi;
  }
  return ok;
}

}  // namespace gdiam
