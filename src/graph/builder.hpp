#pragma once
// Construction of CSR graphs from edge lists.
//
// GraphBuilder normalizes arbitrary edge input into the invariants the rest
// of the library relies on: undirected symmetry, no self-loops, no parallel
// edges (the minimum weight wins, matching the paper's quotient-graph rule),
// and strictly positive finite weights.

#include <cstdint>

#include "graph/graph.hpp"

namespace gdiam {

class GraphBuilder {
 public:
  /// `num_nodes` fixes the node-id universe [0, num_nodes); edges touching
  /// ids outside it are rejected with std::out_of_range at add time.
  explicit GraphBuilder(NodeId num_nodes);

  /// Adds an undirected edge; self-loops are silently dropped (they never
  /// affect distances), non-positive or non-finite weights throw.
  void add_edge(NodeId u, NodeId v, Weight w);

  void add_edges(const EdgeList& edges);

  /// Moves a pre-validated batch in without the per-edge copy (used by the
  /// parallel quotient construction, whose edges are derived from an already
  /// validated graph). Each edge still goes through add_edge's checks.
  void add_edges(EdgeList&& edges);

  [[nodiscard]] NodeId num_nodes() const noexcept { return n_; }

  /// Number of arcs accumulated so far (before dedup).
  [[nodiscard]] std::size_t pending_edges() const noexcept {
    return edges_.size();
  }

  /// Sorts, deduplicates (min weight per node pair) and emits the CSR graph.
  /// The builder is left empty and reusable.
  [[nodiscard]] Graph build();

  /// Same output as build() — bit-identical CSR arrays for any insertion
  /// order — but the dominant sort runs as an OpenMP chunked merge sort.
  /// Worth it from ~10⁵ arcs; build_quotient uses it every round.
  [[nodiscard]] Graph build_parallel();

 private:
  /// The shared edge-acceptance rules (range + positive finite weight);
  /// throws on violation. Self-loop dropping happens at the call sites.
  void check_edge(NodeId u, NodeId v, Weight w) const;
  /// Symmetrized arc list (both directions), leaving the builder empty.
  [[nodiscard]] std::vector<Edge> materialize_arcs();
  /// Dedup (min weight per ordered pair) + CSR emission of sorted arcs.
  [[nodiscard]] Graph emit_sorted(std::vector<Edge> arcs) const;

  NodeId n_;
  EdgeList edges_;
};

/// One-shot convenience: build a graph on `num_nodes` nodes from `edges`.
[[nodiscard]] Graph build_graph(NodeId num_nodes, const EdgeList& edges);

/// Inverse of build_graph: each undirected edge once, with u < v, sorted.
[[nodiscard]] EdgeList to_edge_list(const Graph& g);

}  // namespace gdiam
