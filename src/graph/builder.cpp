#include "graph/builder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include <omp.h>

namespace gdiam {

namespace {

/// Total order on arcs: source, target, then weight ascending — so after
/// sorting, the first arc of each (u, v) run carries the minimum weight and
/// plain unique() implements the paper's parallel-edge rule.
bool arc_less(const Edge& a, const Edge& b) noexcept {
  if (a.u != b.u) return a.u < b.u;
  if (a.v != b.v) return a.v < b.v;
  return a.w < b.w;
}

/// OpenMP chunked merge sort with the same total order as std::sort —
/// identical output for any input (equal arcs are indistinguishable).
void parallel_sort_arcs(std::vector<Edge>& arcs) {
  const auto threads = static_cast<std::size_t>(omp_get_max_threads());
  if (arcs.size() < (1u << 15)) {
    std::sort(arcs.begin(), arcs.end(), arc_less);
    return;
  }
  // At least 4 chunks even single-threaded: the merge tree then runs (and is
  // tested) everywhere, and its serial overhead over one big sort is noise.
  std::size_t chunks = 4;
  while (chunks < threads && chunks < 64) chunks <<= 1;
  std::vector<std::size_t> bounds(chunks + 1);
  for (std::size_t c = 0; c <= chunks; ++c) {
    bounds[c] = arcs.size() * c / chunks;
  }
#pragma omp parallel for schedule(dynamic, 1)
  for (std::size_t c = 0; c < chunks; ++c) {
    std::sort(arcs.begin() + bounds[c], arcs.begin() + bounds[c + 1],
              arc_less);
  }
  for (std::size_t width = 1; width < chunks; width *= 2) {
#pragma omp parallel for schedule(dynamic, 1)
    for (std::size_t c = 0; c < chunks; c += 2 * width) {
      const std::size_t mid = c + width;
      const std::size_t end = std::min(c + 2 * width, chunks);
      if (mid < end) {
        std::inplace_merge(arcs.begin() + bounds[c], arcs.begin() + bounds[mid],
                           arcs.begin() + bounds[end], arc_less);
      }
    }
  }
}

}  // namespace

GraphBuilder::GraphBuilder(NodeId num_nodes) : n_(num_nodes) {}

void GraphBuilder::check_edge(NodeId u, NodeId v, Weight w) const {
  if (u >= n_ || v >= n_) {
    throw std::out_of_range("GraphBuilder: node id out of range");
  }
  if (!(w > 0.0) || !std::isfinite(w)) {
    throw std::invalid_argument(
        "GraphBuilder: weight must be positive and finite");
  }
}

void GraphBuilder::add_edge(NodeId u, NodeId v, Weight w) {
  check_edge(u, v, w);
  if (u == v) return;  // self-loops never affect shortest paths
  edges_.push_back(Edge{u, v, w});
}

void GraphBuilder::add_edges(const EdgeList& edges) {
  edges_.reserve(edges_.size() + edges.size());
  for (const Edge& e : edges) add_edge(e.u, e.v, e.w);
}

void GraphBuilder::add_edges(EdgeList&& edges) {
  if (edges_.empty()) {
    // Validate in place (same rules as add_edge), then adopt the storage.
    for (const Edge& e : edges) check_edge(e.u, e.v, e.w);
    std::erase_if(edges, [](const Edge& e) { return e.u == e.v; });
    edges_ = std::move(edges);
    return;
  }
  add_edges(edges);
}

std::vector<Edge> GraphBuilder::materialize_arcs() {
  std::vector<Edge> arcs;
  arcs.reserve(edges_.size() * 2);
  for (const Edge& e : edges_) {
    arcs.push_back(Edge{e.u, e.v, e.w});
    arcs.push_back(Edge{e.v, e.u, e.w});
  }
  edges_.clear();
  edges_.shrink_to_fit();
  return arcs;
}

Graph GraphBuilder::emit_sorted(std::vector<Edge> arcs) const {
  arcs.erase(std::unique(arcs.begin(), arcs.end(),
                         [](const Edge& a, const Edge& b) {
                           return a.u == b.u && a.v == b.v;
                         }),
             arcs.end());

  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n_) + 1, 0);
  for (const Edge& a : arcs) offsets[a.u + 1]++;
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<NodeId> targets(arcs.size());
  std::vector<Weight> weights(arcs.size());
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    targets[i] = arcs[i].v;
    weights[i] = arcs[i].w;
  }
  return Graph(std::move(offsets), std::move(targets), std::move(weights));
}

Graph GraphBuilder::build() {
  // Materialize both arc directions, then sort and deduplicate keeping the
  // minimum weight for parallel edges.
  std::vector<Edge> arcs = materialize_arcs();
  std::sort(arcs.begin(), arcs.end(), arc_less);
  return emit_sorted(std::move(arcs));
}

Graph GraphBuilder::build_parallel() {
  std::vector<Edge> arcs = materialize_arcs();
  parallel_sort_arcs(arcs);
  return emit_sorted(std::move(arcs));
}

Graph build_graph(NodeId num_nodes, const EdgeList& edges) {
  GraphBuilder b(num_nodes);
  b.add_edges(edges);
  return b.build();
}

EdgeList to_edge_list(const Graph& g) {
  EdgeList out;
  out.reserve(g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbr = g.neighbors(u);
    const auto wts = g.weights(u);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      if (u < nbr[i]) out.push_back(Edge{u, nbr[i], wts[i]});
    }
  }
  return out;
}

}  // namespace gdiam
