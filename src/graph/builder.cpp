#include "graph/builder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace gdiam {

GraphBuilder::GraphBuilder(NodeId num_nodes) : n_(num_nodes) {}

void GraphBuilder::add_edge(NodeId u, NodeId v, Weight w) {
  if (u >= n_ || v >= n_) {
    throw std::out_of_range("GraphBuilder::add_edge: node id out of range");
  }
  if (!(w > 0.0) || !std::isfinite(w)) {
    throw std::invalid_argument(
        "GraphBuilder::add_edge: weight must be positive and finite");
  }
  if (u == v) return;  // self-loops never affect shortest paths
  edges_.push_back(Edge{u, v, w});
}

void GraphBuilder::add_edges(const EdgeList& edges) {
  edges_.reserve(edges_.size() + edges.size());
  for (const Edge& e : edges) add_edge(e.u, e.v, e.w);
}

Graph GraphBuilder::build() {
  // Materialize both arc directions, then sort and deduplicate keeping the
  // minimum weight for parallel edges.
  std::vector<Edge> arcs;
  arcs.reserve(edges_.size() * 2);
  for (const Edge& e : edges_) {
    arcs.push_back(Edge{e.u, e.v, e.w});
    arcs.push_back(Edge{e.v, e.u, e.w});
  }
  edges_.clear();
  edges_.shrink_to_fit();

  std::sort(arcs.begin(), arcs.end(), [](const Edge& a, const Edge& b) {
    if (a.u != b.u) return a.u < b.u;
    if (a.v != b.v) return a.v < b.v;
    return a.w < b.w;
  });
  arcs.erase(std::unique(arcs.begin(), arcs.end(),
                         [](const Edge& a, const Edge& b) {
                           return a.u == b.u && a.v == b.v;
                         }),
             arcs.end());

  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n_) + 1, 0);
  for (const Edge& a : arcs) offsets[a.u + 1]++;
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<NodeId> targets(arcs.size());
  std::vector<Weight> weights(arcs.size());
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    targets[i] = arcs[i].v;
    weights[i] = arcs[i].w;
  }
  return Graph(std::move(offsets), std::move(targets), std::move(weights));
}

Graph build_graph(NodeId num_nodes, const EdgeList& edges) {
  GraphBuilder b(num_nodes);
  b.add_edges(edges);
  return b.build();
}

EdgeList to_edge_list(const Graph& g) {
  EdgeList out;
  out.reserve(g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbr = g.neighbors(u);
    const auto wts = g.weights(u);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      if (u < nbr[i]) out.push_back(Edge{u, nbr[i], wts[i]});
    }
  }
  return out;
}

}  // namespace gdiam
