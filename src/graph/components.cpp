#include "graph/components.hpp"

#include <algorithm>
#include <numeric>

namespace gdiam {

Components connected_components(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> label(n);
  std::iota(label.begin(), label.end(), NodeId{0});

  // Synchronous min-label propagation with pointer-jumping style shortcuts:
  // converges in O(components' hop diameter) sweeps; each sweep is parallel
  // and deterministic (pure min-reduction).
  bool changed = n > 0;
  std::vector<NodeId> next(label);
  while (changed) {
    changed = false;
#pragma omp parallel for schedule(dynamic, 2048) reduction(|| : changed)
    for (NodeId u = 0; u < n; ++u) {
      NodeId best = label[u];
      for (const NodeId v : g.neighbors(u)) best = std::min(best, label[v]);
      if (best != label[u]) {
        next[u] = best;
        changed = true;
      } else {
        next[u] = label[u];
      }
    }
    label.swap(next);
  }

  // Compact labels to [0, count) and order components by decreasing size
  // so that component 0 is the largest.
  std::vector<NodeId> roots;
  for (NodeId u = 0; u < n; ++u) {
    if (label[u] == u) roots.push_back(u);
  }
  std::vector<NodeId> size_of_root(n, 0);
  for (NodeId u = 0; u < n; ++u) size_of_root[label[u]]++;
  std::sort(roots.begin(), roots.end(), [&](NodeId a, NodeId b) {
    if (size_of_root[a] != size_of_root[b]) {
      return size_of_root[a] > size_of_root[b];
    }
    return a < b;
  });
  std::vector<NodeId> compact(n, kInvalidNode);
  Components out;
  out.count = static_cast<NodeId>(roots.size());
  out.sizes.resize(roots.size());
  for (std::size_t i = 0; i < roots.size(); ++i) {
    compact[roots[i]] = static_cast<NodeId>(i);
    out.sizes[i] = size_of_root[roots[i]];
  }
  out.component_of.resize(n);
#pragma omp parallel for schedule(static)
  for (NodeId u = 0; u < n; ++u) {
    out.component_of[u] = compact[label[u]];
  }
  return out;
}

Subgraph largest_component(const Graph& g) {
  const Components cc = connected_components(g);
  std::vector<NodeId> keep;
  keep.reserve(cc.sizes.empty() ? 0 : cc.sizes[0]);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (cc.component_of[u] == 0) keep.push_back(u);
  }
  return induced_subgraph(g, keep);
}

bool is_connected(const Graph& g) {
  return connected_components(g).count <= 1;
}

}  // namespace gdiam
