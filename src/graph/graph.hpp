#pragma once
// Immutable CSR representation of an undirected weighted graph.
//
// This is the substrate every algorithm in gdiam operates on. Graphs are
// built once (see graph/builder.hpp) and then treated as read-only, so all
// parallel kernels can share them without synchronization.
//
// Storage comes in two flavors behind one type:
//   * owned   — the CSR arrays live in std::vectors inside the Graph (the
//     builder / generator path);
//   * mapped  — the arrays are read-only views into a memory-mapped .gcsr
//     file (graph/binfmt.hpp), and the Graph holds a shared keep-alive for
//     the mapping. Copies share the mapping; nothing is deep-copied.
// Either way the accessors hand out std::spans, so kernels cannot tell (and
// must not care) which flavor they run on.

#include <cassert>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

namespace gdiam {

using NodeId = std::uint32_t;
using EdgeIndex = std::uint64_t;
using Weight = double;

/// Sentinel for "no node" (also used as the undefined cluster center).
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr Weight kInfiniteWeight =
    std::numeric_limits<Weight>::infinity();

/// One undirected edge; the builder symmetrizes, so (u,v) and (v,u) denote
/// the same edge.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  Weight w = 1.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

using EdgeList = std::vector<Edge>;

/// Undirected weighted graph in compressed-sparse-row form.
///
/// Internally each undirected edge is stored twice (both directions), so
/// `num_directed_edges() == 2 * num_edges()`. All edge weights are positive
/// and finite (enforced by GraphBuilder).
class Graph {
 public:
  Graph();

  /// Takes ownership of validated CSR arrays; use GraphBuilder to construct
  /// from an edge list. Pre: offsets.size() == n+1, offsets is nondecreasing,
  /// offsets.back() == targets.size() == weights.size().
  Graph(std::vector<EdgeIndex> offsets, std::vector<NodeId> targets,
        std::vector<Weight> weights);

  /// Zero-copy view over externally owned CSR arrays (the mmap path,
  /// graph/binfmt.hpp). `backing` is an opaque keep-alive: the spans must
  /// stay valid for as long as any copy of it is held. The weight stats are
  /// taken from the caller (the .gcsr header persists them) so opening a
  /// mapped graph never forces a scan of the weights section.
  Graph(std::span<const EdgeIndex> offsets, std::span<const NodeId> targets,
        std::span<const Weight> weights, std::shared_ptr<const void> backing,
        Weight min_weight, Weight max_weight, Weight avg_weight);

  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;
  ~Graph() = default;

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return offsets_v_.empty() ? 0
                              : static_cast<NodeId>(offsets_v_.size() - 1);
  }

  /// Number of undirected edges.
  [[nodiscard]] EdgeIndex num_edges() const noexcept {
    return static_cast<EdgeIndex>(targets_v_.size() / 2);
  }

  /// Number of stored arcs (2 per undirected edge).
  [[nodiscard]] EdgeIndex num_directed_edges() const noexcept {
    return static_cast<EdgeIndex>(targets_v_.size());
  }

  [[nodiscard]] EdgeIndex degree(NodeId u) const noexcept {
    assert(u < num_nodes());
    return offsets_v_[u + 1] - offsets_v_[u];
  }

  /// Neighbor ids of u, aligned with weights(u).
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const noexcept {
    assert(u < num_nodes());
    return {targets_v_.data() + offsets_v_[u],
            static_cast<std::size_t>(offsets_v_[u + 1] - offsets_v_[u])};
  }

  /// Weights of u's incident edges, aligned with neighbors(u).
  [[nodiscard]] std::span<const Weight> weights(NodeId u) const noexcept {
    assert(u < num_nodes());
    return {weights_v_.data() + offsets_v_[u],
            static_cast<std::size_t>(offsets_v_[u + 1] - offsets_v_[u])};
  }

  /// Raw CSR accessors (used by kernels that iterate arcs directly).
  [[nodiscard]] std::span<const EdgeIndex> offsets() const noexcept {
    return offsets_v_;
  }
  [[nodiscard]] std::span<const NodeId> targets() const noexcept {
    return targets_v_;
  }
  [[nodiscard]] std::span<const Weight> edge_weights() const noexcept {
    return weights_v_;
  }

  /// Smallest / largest / mean edge weight; 0 for edgeless graphs.
  [[nodiscard]] Weight min_weight() const noexcept { return min_weight_; }
  [[nodiscard]] Weight max_weight() const noexcept { return max_weight_; }
  [[nodiscard]] Weight avg_weight() const noexcept { return avg_weight_; }

  /// True when the CSR arrays are views into external storage (an mmap'd
  /// .gcsr file) rather than owned vectors.
  [[nodiscard]] bool is_mapped() const noexcept { return backing_ != nullptr; }

  /// The keep-alive of a mapped graph (null for owned graphs). Lets callers
  /// check that two Graphs view the same mapping.
  [[nodiscard]] const std::shared_ptr<const void>& backing() const noexcept {
    return backing_;
  }

  /// True when both directions of every arc are present with equal weight
  /// and there are no self-loops — the invariant GraphBuilder establishes.
  [[nodiscard]] bool is_symmetric() const;

  /// Cheap structural sanity check of the CSR arrays.
  [[nodiscard]] bool validate() const;

 private:
  void compute_weight_stats() noexcept;
  /// Points the view spans at the owned vectors (owned-storage flavor).
  void rebind_views() noexcept;
  /// Returns *this to the empty owned state (moved-from graphs land here so
  /// they stay usable, not dangling into the destination's buffers).
  void reset_to_empty() noexcept;

  // Owned storage (empty for mapped graphs).
  std::vector<EdgeIndex> offsets_own_;
  std::vector<NodeId> targets_own_;
  std::vector<Weight> weights_own_;
  // Keep-alive for mapped storage (null for owned graphs).
  std::shared_ptr<const void> backing_;
  // The views every accessor reads; into offsets_own_/... or the mapping.
  std::span<const EdgeIndex> offsets_v_;
  std::span<const NodeId> targets_v_;
  std::span<const Weight> weights_v_;
  Weight min_weight_ = 0.0;
  Weight max_weight_ = 0.0;
  Weight avg_weight_ = 0.0;
};

}  // namespace gdiam
