#pragma once
// Immutable CSR representation of an undirected weighted graph.
//
// This is the substrate every algorithm in gdiam operates on. Graphs are
// built once (see graph/builder.hpp) and then treated as read-only, so all
// parallel kernels can share them without synchronization.

#include <cassert>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace gdiam {

using NodeId = std::uint32_t;
using EdgeIndex = std::uint64_t;
using Weight = double;

/// Sentinel for "no node" (also used as the undefined cluster center).
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr Weight kInfiniteWeight =
    std::numeric_limits<Weight>::infinity();

/// One undirected edge; the builder symmetrizes, so (u,v) and (v,u) denote
/// the same edge.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  Weight w = 1.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

using EdgeList = std::vector<Edge>;

/// Undirected weighted graph in compressed-sparse-row form.
///
/// Internally each undirected edge is stored twice (both directions), so
/// `num_directed_edges() == 2 * num_edges()`. All edge weights are positive
/// and finite (enforced by GraphBuilder).
class Graph {
 public:
  Graph() = default;

  /// Takes ownership of validated CSR arrays; use GraphBuilder to construct
  /// from an edge list. Pre: offsets.size() == n+1, offsets is nondecreasing,
  /// offsets.back() == targets.size() == weights.size().
  Graph(std::vector<EdgeIndex> offsets, std::vector<NodeId> targets,
        std::vector<Weight> weights);

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return offsets_.empty() ? 0 : static_cast<NodeId>(offsets_.size() - 1);
  }

  /// Number of undirected edges.
  [[nodiscard]] EdgeIndex num_edges() const noexcept {
    return static_cast<EdgeIndex>(targets_.size() / 2);
  }

  /// Number of stored arcs (2 per undirected edge).
  [[nodiscard]] EdgeIndex num_directed_edges() const noexcept {
    return static_cast<EdgeIndex>(targets_.size());
  }

  [[nodiscard]] EdgeIndex degree(NodeId u) const noexcept {
    assert(u < num_nodes());
    return offsets_[u + 1] - offsets_[u];
  }

  /// Neighbor ids of u, aligned with weights(u).
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const noexcept {
    assert(u < num_nodes());
    return {targets_.data() + offsets_[u],
            static_cast<std::size_t>(offsets_[u + 1] - offsets_[u])};
  }

  /// Weights of u's incident edges, aligned with neighbors(u).
  [[nodiscard]] std::span<const Weight> weights(NodeId u) const noexcept {
    assert(u < num_nodes());
    return {weights_.data() + offsets_[u],
            static_cast<std::size_t>(offsets_[u + 1] - offsets_[u])};
  }

  /// Raw CSR accessors (used by kernels that iterate arcs directly).
  [[nodiscard]] const std::vector<EdgeIndex>& offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] const std::vector<NodeId>& targets() const noexcept {
    return targets_;
  }
  [[nodiscard]] const std::vector<Weight>& edge_weights() const noexcept {
    return weights_;
  }

  /// Smallest / largest / mean edge weight; 0 for edgeless graphs.
  [[nodiscard]] Weight min_weight() const noexcept { return min_weight_; }
  [[nodiscard]] Weight max_weight() const noexcept { return max_weight_; }
  [[nodiscard]] Weight avg_weight() const noexcept { return avg_weight_; }

  /// True when both directions of every arc are present with equal weight
  /// and there are no self-loops — the invariant GraphBuilder establishes.
  [[nodiscard]] bool is_symmetric() const;

  /// Cheap structural sanity check of the CSR arrays.
  [[nodiscard]] bool validate() const;

 private:
  void compute_weight_stats() noexcept;

  std::vector<EdgeIndex> offsets_{0};  // size n+1
  std::vector<NodeId> targets_;     // size 2m
  std::vector<Weight> weights_;     // size 2m
  Weight min_weight_ = 0.0;
  Weight max_weight_ = 0.0;
  Weight avg_weight_ = 0.0;
};

}  // namespace gdiam
