#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace gdiam {

Graph::Graph() : offsets_own_{0} { rebind_views(); }

Graph::Graph(std::vector<EdgeIndex> offsets, std::vector<NodeId> targets,
             std::vector<Weight> weights)
    : offsets_own_(std::move(offsets)),
      targets_own_(std::move(targets)),
      weights_own_(std::move(weights)) {
  if (offsets_own_.empty()) offsets_own_.push_back(0);
  if (offsets_own_.back() != targets_own_.size() ||
      targets_own_.size() != weights_own_.size()) {
    throw std::invalid_argument("Graph: inconsistent CSR array sizes");
  }
  rebind_views();
  compute_weight_stats();
}

Graph::Graph(std::span<const EdgeIndex> offsets,
             std::span<const NodeId> targets, std::span<const Weight> weights,
             std::shared_ptr<const void> backing, Weight min_weight,
             Weight max_weight, Weight avg_weight)
    : backing_(std::move(backing)),
      offsets_v_(offsets),
      targets_v_(targets),
      weights_v_(weights),
      min_weight_(min_weight),
      max_weight_(max_weight),
      avg_weight_(avg_weight) {
  if (backing_ == nullptr) {
    throw std::invalid_argument("Graph: mapped view requires a keep-alive");
  }
  if (offsets_v_.empty() || offsets_v_.back() != targets_v_.size() ||
      targets_v_.size() != weights_v_.size()) {
    throw std::invalid_argument("Graph: inconsistent mapped CSR array sizes");
  }
}

Graph::Graph(const Graph& other)
    : offsets_own_(other.offsets_own_),
      targets_own_(other.targets_own_),
      weights_own_(other.weights_own_),
      backing_(other.backing_),
      min_weight_(other.min_weight_),
      max_weight_(other.max_weight_),
      avg_weight_(other.avg_weight_) {
  if (backing_ != nullptr) {
    // Mapped: the copy shares the mapping, views stay valid as-is.
    offsets_v_ = other.offsets_v_;
    targets_v_ = other.targets_v_;
    weights_v_ = other.weights_v_;
  } else {
    rebind_views();  // owned: views must point at *our* vector copies
  }
}

Graph& Graph::operator=(const Graph& other) {
  if (this != &other) {
    Graph tmp(other);
    *this = std::move(tmp);
  }
  return *this;
}

Graph::Graph(Graph&& other) noexcept
    : offsets_own_(std::move(other.offsets_own_)),
      targets_own_(std::move(other.targets_own_)),
      weights_own_(std::move(other.weights_own_)),
      backing_(std::move(other.backing_)),
      // Vector move transfers the heap buffer, so views into it stay valid.
      offsets_v_(other.offsets_v_),
      targets_v_(other.targets_v_),
      weights_v_(other.weights_v_),
      min_weight_(other.min_weight_),
      max_weight_(other.max_weight_),
      avg_weight_(other.avg_weight_) {
  other.reset_to_empty();
}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this != &other) {
    offsets_own_ = std::move(other.offsets_own_);
    targets_own_ = std::move(other.targets_own_);
    weights_own_ = std::move(other.weights_own_);
    backing_ = std::move(other.backing_);
    offsets_v_ = other.offsets_v_;
    targets_v_ = other.targets_v_;
    weights_v_ = other.weights_v_;
    min_weight_ = other.min_weight_;
    max_weight_ = other.max_weight_;
    avg_weight_ = other.avg_weight_;
    other.reset_to_empty();
  }
  return *this;
}

void Graph::rebind_views() noexcept {
  offsets_v_ = offsets_own_;
  targets_v_ = targets_own_;
  weights_v_ = weights_own_;
}

void Graph::reset_to_empty() noexcept {
  offsets_own_.clear();
  offsets_own_.push_back(0);
  targets_own_.clear();
  weights_own_.clear();
  backing_.reset();
  rebind_views();
  min_weight_ = max_weight_ = avg_weight_ = 0.0;
}

void Graph::compute_weight_stats() noexcept {
  if (weights_v_.empty()) {
    min_weight_ = max_weight_ = avg_weight_ = 0.0;
    return;
  }
  Weight mn = kInfiniteWeight, mx = 0.0, sum = 0.0;
  const Weight* w = weights_v_.data();
#pragma omp parallel for reduction(min : mn) reduction(max : mx) \
    reduction(+ : sum) schedule(static)
  for (std::size_t i = 0; i < weights_v_.size(); ++i) {
    mn = std::min(mn, w[i]);
    mx = std::max(mx, w[i]);
    sum += w[i];
  }
  min_weight_ = mn;
  max_weight_ = mx;
  avg_weight_ = sum / static_cast<Weight>(weights_v_.size());
}

bool Graph::validate() const {
  if (offsets_v_.empty() || offsets_v_.front() != 0) return false;
  if (!std::is_sorted(offsets_v_.begin(), offsets_v_.end())) return false;
  if (offsets_v_.back() != targets_v_.size()) return false;
  if (targets_v_.size() != weights_v_.size()) return false;
  const NodeId n = num_nodes();
  for (const NodeId t : targets_v_) {
    if (t >= n) return false;
  }
  for (const Weight w : weights_v_) {
    if (!(w > 0.0) || w == kInfiniteWeight) return false;
  }
  return true;
}

bool Graph::is_symmetric() const {
  const NodeId n = num_nodes();
  bool ok = true;
#pragma omp parallel for schedule(dynamic, 1024) reduction(&& : ok)
  for (NodeId u = 0; u < n; ++u) {
    const auto nbr = neighbors(u);
    const auto wts = weights(u);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      const NodeId v = nbr[i];
      if (v == u) {
        ok = false;  // self-loop
        continue;
      }
      // Look for the reverse arc with equal weight.
      const auto rn = neighbors(v);
      const auto rw = weights(v);
      bool found = false;
      for (std::size_t j = 0; j < rn.size(); ++j) {
        if (rn[j] == u && rw[j] == wts[i]) {
          found = true;
          break;
        }
      }
      ok = ok && found;
    }
  }
  return ok;
}

}  // namespace gdiam
