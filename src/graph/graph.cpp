#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace gdiam {

Graph::Graph(std::vector<EdgeIndex> offsets, std::vector<NodeId> targets,
             std::vector<Weight> weights)
    : offsets_(std::move(offsets)),
      targets_(std::move(targets)),
      weights_(std::move(weights)) {
  if (offsets_.empty()) offsets_.push_back(0);
  if (offsets_.back() != targets_.size() ||
      targets_.size() != weights_.size()) {
    throw std::invalid_argument("Graph: inconsistent CSR array sizes");
  }
  compute_weight_stats();
}

void Graph::compute_weight_stats() noexcept {
  if (weights_.empty()) {
    min_weight_ = max_weight_ = avg_weight_ = 0.0;
    return;
  }
  Weight mn = kInfiniteWeight, mx = 0.0, sum = 0.0;
#pragma omp parallel for reduction(min : mn) reduction(max : mx) \
    reduction(+ : sum) schedule(static)
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    mn = std::min(mn, weights_[i]);
    mx = std::max(mx, weights_[i]);
    sum += weights_[i];
  }
  min_weight_ = mn;
  max_weight_ = mx;
  avg_weight_ = sum / static_cast<Weight>(weights_.size());
}

bool Graph::validate() const {
  if (offsets_.empty() || offsets_.front() != 0) return false;
  if (!std::is_sorted(offsets_.begin(), offsets_.end())) return false;
  if (offsets_.back() != targets_.size()) return false;
  if (targets_.size() != weights_.size()) return false;
  const NodeId n = num_nodes();
  for (const NodeId t : targets_) {
    if (t >= n) return false;
  }
  for (const Weight w : weights_) {
    if (!(w > 0.0) || w == kInfiniteWeight) return false;
  }
  return true;
}

bool Graph::is_symmetric() const {
  const NodeId n = num_nodes();
  bool ok = true;
#pragma omp parallel for schedule(dynamic, 1024) reduction(&& : ok)
  for (NodeId u = 0; u < n; ++u) {
    const auto nbr = neighbors(u);
    const auto wts = weights(u);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      const NodeId v = nbr[i];
      if (v == u) {
        ok = false;  // self-loop
        continue;
      }
      // Look for the reverse arc with equal weight.
      const auto rn = neighbors(v);
      const auto rw = weights(v);
      bool found = false;
      for (std::size_t j = 0; j < rn.size(); ++j) {
        if (rn[j] == u && rw[j] == wts[i]) {
          found = true;
          break;
        }
      }
      ok = ok && found;
    }
  }
  return ok;
}

}  // namespace gdiam
