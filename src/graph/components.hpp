#pragma once
// Connected components.
//
// The paper defines the diameter of a disconnected graph as the largest
// distance within a component, and evaluates social graphs on their giant
// component. This module provides a parallel label-propagation component
// finder and largest-component extraction.

#include <vector>

#include "graph/graph.hpp"
#include "graph/ops.hpp"

namespace gdiam {

struct Components {
  /// Component id per node, in [0, count); id 0 is the largest component.
  std::vector<NodeId> component_of;
  NodeId count = 0;
  /// Node count per component id.
  std::vector<NodeId> sizes;
};

/// Parallel connected components (synchronous min-label propagation, the
/// weight-oblivious analogue of a Δ-growing step). Deterministic.
[[nodiscard]] Components connected_components(const Graph& g);

/// Induced subgraph on the largest component (the whole graph when
/// connected — still returns a relabeled copy).
[[nodiscard]] Subgraph largest_component(const Graph& g);

/// True when the graph has at most one component.
[[nodiscard]] bool is_connected(const Graph& g);

}  // namespace gdiam
