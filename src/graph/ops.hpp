#pragma once
// Structural graph operations: induced subgraphs, relabeling, reweighting,
// degree statistics. Used by component extraction, the generators, and the
// ablation benches.

#include <functional>
#include <vector>

#include "graph/graph.hpp"

namespace gdiam {

/// Result of extracting an induced subgraph: the new graph plus the mapping
/// from new node ids back to the original ids.
struct Subgraph {
  Graph graph;
  std::vector<NodeId> to_original;  // size graph.num_nodes()
};

/// Induced subgraph on `nodes` (original ids; duplicates ignored).
/// Edges with both endpoints selected are kept with their weights.
[[nodiscard]] Subgraph induced_subgraph(const Graph& g,
                                        const std::vector<NodeId>& nodes);

/// Returns a copy of `g` with every edge weight replaced by
/// `fn(u, v, old_weight)` evaluated once per undirected edge (u < v).
[[nodiscard]] Graph reweight(
    const Graph& g, const std::function<Weight(NodeId, NodeId, Weight)>& fn);

/// True when (u, v) is an edge; O(deg(u)).
[[nodiscard]] bool has_edge(const Graph& g, NodeId u, NodeId v);

/// Weight of edge (u, v); kInfiniteWeight when absent.
[[nodiscard]] Weight edge_weight(const Graph& g, NodeId u, NodeId v);

/// Summary used by Table 1 and the examples.
struct DegreeStats {
  EdgeIndex min = 0;
  EdgeIndex max = 0;
  double avg = 0.0;
};

[[nodiscard]] DegreeStats degree_stats(const Graph& g);

}  // namespace gdiam
