#include "graph/io.hpp"

#include <charconv>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>

#include "graph/builder.hpp"

namespace gdiam::io {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("gdiam::io: " + what);
}

std::ifstream open_in(const std::string& path, std::ios::openmode mode) {
  std::ifstream f(path, mode);
  if (!f) fail("cannot open '" + path + "' for reading");
  return f;
}

std::ofstream open_out(const std::string& path, std::ios::openmode mode) {
  std::ofstream f(path, mode);
  if (!f) fail("cannot open '" + path + "' for writing");
  return f;
}

constexpr char kBinaryMagic[4] = {'G', 'D', 'I', 'A'};
constexpr std::uint32_t kBinaryVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
void read_pod(std::istream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) fail("binary stream truncated");
}

template <typename T>
void write_vec(std::ostream& out, std::span<const T> v) {
  write_pod(out, static_cast<std::uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& in) {
  std::uint64_t size = 0;
  read_pod(in, size);
  std::vector<T> v(size);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(size * sizeof(T)));
  if (!in) fail("binary stream truncated");
  return v;
}

}  // namespace

Graph read_dimacs(std::istream& in) {
  std::string line;
  NodeId n = 0;
  bool have_header = false;
  GraphBuilder builder(0);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 'c') continue;  // comment
    if (tag == 'p') {
      std::string kind;
      std::uint64_t hn = 0, hm = 0;
      ls >> kind >> hn >> hm;
      if (!ls || kind != "sp") fail("bad DIMACS problem line: " + line);
      n = static_cast<NodeId>(hn);
      builder = GraphBuilder(n);
      have_header = true;
    } else if (tag == 'a') {
      if (!have_header) fail("DIMACS arc before problem line");
      std::uint64_t u = 0, v = 0;
      double w = 0.0;
      ls >> u >> v >> w;
      if (!ls || u == 0 || v == 0 || u > n || v > n) {
        fail("bad DIMACS arc line: " + line);
      }
      if (u != v) {
        builder.add_edge(static_cast<NodeId>(u - 1),
                         static_cast<NodeId>(v - 1), w);
      }
    } else {
      fail("unknown DIMACS line tag '" + std::string(1, tag) + "'");
    }
  }
  if (!have_header) fail("missing DIMACS problem line");
  return builder.build();
}

Graph read_dimacs_file(const std::string& path) {
  auto f = open_in(path, std::ios::in);
  return read_dimacs(f);
}

void write_dimacs(const Graph& g, std::ostream& out) {
  out << "c gdiam export\n";
  out << "p sp " << g.num_nodes() << ' ' << g.num_directed_edges() << '\n';
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbr = g.neighbors(u);
    const auto wts = g.weights(u);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      const auto w =
          static_cast<std::uint64_t>(std::max(1.0, std::ceil(wts[i])));
      out << "a " << (u + 1) << ' ' << (nbr[i] + 1) << ' ' << w << '\n';
    }
  }
}

void write_dimacs_file(const Graph& g, const std::string& path) {
  auto f = open_out(path, std::ios::out);
  write_dimacs(g, f);
}

Graph read_edge_list(std::istream& in, bool compact_ids,
                     std::size_t size_hint_bytes) {
  EdgeList raw;
  std::unordered_map<std::uint64_t, NodeId> remap;
  std::uint64_t max_id = 0;
  if (size_hint_bytes > 0) {
    // ~16 bytes per "u v [w]" line on real SNAP dumps; a slight
    // over-estimate only wastes capacity, an under-estimate costs rehashes
    // and edge-buffer reallocations mid-scan.
    const std::size_t edges_hint = size_hint_bytes / 16 + 16;
    raw.reserve(edges_hint);
    // Real edge lists have far fewer nodes than edges (web/social graphs
    // average well over 10 edges per node); a small fraction of the edge
    // estimate avoids rehashing without ballooning the bucket array on
    // billion-line inputs. Under-estimates just rehash a couple of times.
    if (compact_ids) remap.reserve(edges_hint / 16 + 16);
  }
  auto map_id = [&](std::uint64_t id) -> NodeId {
    if (!compact_ids) {
      max_id = std::max(max_id, id);
      return static_cast<NodeId>(id);
    }
    auto [it, inserted] = remap.try_emplace(
        id, static_cast<NodeId>(remap.size()));
    return it->second;
  };

  // Streaming scan: fixed 1 MiB read chunks, lines parsed in place with
  // from_chars, and a bounded carry buffer for the line straddling a chunk
  // boundary. Peak transient memory is one chunk + one line regardless of
  // input size (the old per-line istringstream also paid an allocation and
  // a locale-aware numeric parse per line).
  constexpr std::size_t kChunk = std::size_t{1} << 20;
  constexpr std::size_t kMaxLine = std::size_t{1} << 16;

  auto skip_ws = [](const char*& b, const char* e) {
    while (b < e && (*b == ' ' || *b == '\t' || *b == '\r')) ++b;
  };
  auto parse_line = [&](const char* b, const char* e) {
    while (e > b && (e[-1] == '\r' || e[-1] == ' ' || e[-1] == '\t')) --e;
    skip_ws(b, e);
    if (b == e || *b == '#' || *b == '%') return;
    const std::string_view line(b, static_cast<std::size_t>(e - b));
    std::uint64_t u = 0, v = 0;
    const auto ru = std::from_chars(b, e, u);
    const char* q = ru.ptr;
    skip_ws(q, e);
    const auto rv = std::from_chars(q, e, v);
    if (ru.ec != std::errc{} || rv.ec != std::errc{}) {
      fail("bad edge list line: " + std::string(line));
    }
    q = rv.ptr;
    skip_ws(q, e);
    double w = 1.0;
    if (q < e) {
      // Optional third column; junk there falls back to weight 1, matching
      // the historical stream-extraction semantics.
      const auto rw = std::from_chars(q, e, w);
      if (rw.ec != std::errc{}) w = 1.0;
    }
    const NodeId mu = map_id(u), mv = map_id(v);
    if (mu != mv) raw.push_back(Edge{mu, mv, w});
  };

  std::vector<char> buf(kChunk);
  std::string carry;
  auto append_carry = [&](const char* b, std::size_t len) {
    if (carry.size() + len > kMaxLine) {
      fail("edge list line longer than 64 KiB");
    }
    carry.append(b, len);
  };
  for (;;) {
    in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    const auto got = static_cast<std::size_t>(in.gcount());
    if (got == 0) break;
    const char* p = buf.data();
    const char* const end = p + got;
    while (p < end) {
      const auto* nl = static_cast<const char*>(
          std::memchr(p, '\n', static_cast<std::size_t>(end - p)));
      if (nl == nullptr) {
        append_carry(p, static_cast<std::size_t>(end - p));
        break;
      }
      if (!carry.empty()) {
        append_carry(p, static_cast<std::size_t>(nl - p));
        parse_line(carry.data(), carry.data() + carry.size());
        carry.clear();
      } else {
        parse_line(p, nl);
      }
      p = nl + 1;
    }
    if (got < buf.size()) break;  // short read = end of stream
  }
  if (!carry.empty()) {  // final line without a trailing newline
    parse_line(carry.data(), carry.data() + carry.size());
  }
  const NodeId n = compact_ids ? static_cast<NodeId>(remap.size())
                               : static_cast<NodeId>(raw.empty() && max_id == 0
                                                         ? 0
                                                         : max_id + 1);
  return build_graph(n, raw);
}

Graph read_edge_list_file(const std::string& path, bool compact_ids) {
  auto f = open_in(path, std::ios::in);
  std::error_code ec;
  const auto bytes = std::filesystem::file_size(path, ec);
  return read_edge_list(f, compact_ids,
                        ec ? 0 : static_cast<std::size_t>(bytes));
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << "# gdiam edge list: u v w (one line per undirected edge)\n";
  for (const Edge& e : to_edge_list(g)) {
    out << e.u << ' ' << e.v << ' ' << e.w << '\n';
  }
}

void write_binary(const Graph& g, std::ostream& out) {
  out.write(kBinaryMagic, sizeof kBinaryMagic);
  write_pod(out, kBinaryVersion);
  write_vec(out, g.offsets());
  write_vec(out, g.targets());
  write_vec(out, g.edge_weights());
  if (!out) fail("binary write failed");
}

void write_binary_file(const Graph& g, const std::string& path) {
  auto f = open_out(path, std::ios::binary);
  write_binary(g, f);
}

Graph read_binary(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kBinaryMagic, sizeof magic) != 0) {
    fail("bad binary magic");
  }
  std::uint32_t version = 0;
  read_pod(in, version);
  if (version != kBinaryVersion) fail("unsupported binary version");
  auto offsets = read_vec<EdgeIndex>(in);
  auto targets = read_vec<NodeId>(in);
  auto weights = read_vec<Weight>(in);
  return Graph(std::move(offsets), std::move(targets), std::move(weights));
}

Graph read_binary_file(const std::string& path) {
  auto f = open_in(path, std::ios::binary);
  return read_binary(f);
}

}  // namespace gdiam::io
