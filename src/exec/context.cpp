#include "exec/context.hpp"

#include <algorithm>
#include <utility>

#include "core/growing.hpp"
#include "graph/binfmt.hpp"
#include "mr/placement.hpp"
#include "util/topology.hpp"

namespace gdiam::exec {

namespace {

bool same_partition_opts(const mr::PartitionOptions& a,
                         const mr::PartitionOptions& b) noexcept {
  return a.num_partitions == b.num_partitions && a.strategy == b.strategy;
}

/// Moves entry i of an MRU-first vector to the front (cheap rotate of
/// unique_ptr-holding structs).
template <typename Entry>
void touch(std::vector<Entry>& entries, std::size_t i) {
  if (i != 0) std::rotate(entries.begin(), entries.begin() + i,
                          entries.begin() + i + 1);
}

}  // namespace

mr::RoundStats& StatsSink::phase(std::string_view name) {
  for (auto& [n, s] : phases_) {
    if (n == name) return s;
  }
  phases_.emplace_back(std::string(name), mr::RoundStats{});
  return phases_.back().second;
}

const mr::RoundStats* StatsSink::find(std::string_view name) const {
  for (const auto& [n, s] : phases_) {
    if (n == name) return &s;
  }
  return nullptr;
}

mr::RoundStats StatsSink::total() const noexcept {
  mr::RoundStats out;
  for (const auto& [n, s] : phases_) out += s;
  return out;
}

Context::Context() = default;
Context::Context(const ExecOptions& opts) : opts_(opts) {}
Context::~Context() = default;

const SplitCsr& Context::split_for(const Graph& g, Weight delta) {
  // The fingerprint is re-derived per call: GDIAM_TOPOLOGY (and
  // opts_.placement) can legitimately change between calls on a reused
  // context, and a layout first-touched under the old plan must miss.
  const std::uint64_t pfp = mr::placement_fingerprint(opts_.placement);
  for (std::size_t i = 0; i < splits_.size(); ++i) {
    if (splits_[i].key.matches(g) && splits_[i].delta == delta &&
        splits_[i].pfp == pfp) {
      touch(splits_, i);
      return *splits_.front().split;
    }
  }
  if (splits_.size() >= kMaxSplits) splits_.pop_back();  // evict LRU
  splits_.insert(splits_.begin(),
                 SplitEntry{GraphKey::of(g), delta, pfp,
                            std::make_unique<SplitCsr>(g, delta)});
  return *splits_.front().split;
}

const mr::Partition& Context::partition_for(const Graph& g,
                                            const mr::PartitionOptions& opts) {
  const std::uint64_t pfp = mr::placement_fingerprint(opts_.placement);
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    if (partitions_[i].key.matches(g) &&
        same_partition_opts(partitions_[i].opts, opts) &&
        partitions_[i].pfp == pfp) {
      touch(partitions_, i);
      return *partitions_.front().partition;
    }
  }
  partitions_.insert(partitions_.begin(),
                     PartitionEntry{GraphKey::of(g), opts, pfp,
                                    std::make_unique<mr::Partition>(g, opts)});
  return *partitions_.front().partition;
}

const mr::Partition* Context::find_partition(const Graph& g) const {
  for (const auto& e : partitions_) {
    if (e.key.matches(g)) return e.partition.get();
  }
  return nullptr;
}

const std::vector<CsrSplit>& Context::shard_splits_for(
    const Graph& g, const mr::PartitionOptions& opts, Weight delta) {
  const std::uint64_t pfp = mr::placement_fingerprint(opts_.placement);
  const mr::Partition& part = partition_for(g, opts);
  for (std::size_t i = 0; i < shard_splits_.size(); ++i) {
    if (shard_splits_[i].partition == &part &&
        shard_splits_[i].delta == delta && shard_splits_[i].pfp == pfp) {
      touch(shard_splits_, i);
      return *shard_splits_.front().splits;
    }
  }
  // Build each shard's presplit with the building thread bound to the
  // shard's NUMA node, so the split's arrays are first-touched — and
  // therefore page-placed — where that shard's compute will run. With an
  // inactive plan the bind is a no-op and this is the old serial build.
  const mr::PlacementPlan plan =
      mr::resolve_placement(opts_.placement, part.num_partitions());
  auto splits = std::make_unique<std::vector<CsrSplit>>();
  splits->reserve(part.num_partitions());
  for (mr::ShardId s = 0; s < part.num_partitions(); ++s) {
    const mr::Shard& sh = part.shards()[s];
    util::topo::ScopedAffinity bind(plan.cpus_of_node(plan.node_of(s)));
    splits->push_back(presplit_csr(sh.offsets, sh.targets, sh.weights, delta));
  }
  if (shard_splits_.size() >= kMaxSplits) shard_splits_.pop_back();
  shard_splits_.insert(shard_splits_.begin(),
                       ShardSplitEntry{&part, delta, pfp, std::move(splits)});
  return *shard_splits_.front().splits;
}

std::size_t Context::adopt_presplits(const Graph& g, const io::MappedGraph& m) {
  if (!m.covers(g)) {
    throw io::BinfmtError(
        io::BinfmtErrc::kFingerprintMismatch,
        "presplit adoption: graph is not a view of this mapping");
  }
  const std::uint64_t pfp = mr::placement_fingerprint(opts_.placement);
  // Stage everything first: a kBadPresplit thrown by the third sidecar must
  // not leave the first two behind in the cache.
  std::vector<SplitEntry> staged;
  for (const Weight delta : m.presplit_deltas()) {
    if (has_split(g, delta)) continue;
    CsrSplit data;
    if (!m.load_presplit(delta, data)) continue;
    staged.push_back(SplitEntry{GraphKey::of(g), delta, pfp,
                                std::make_unique<SplitCsr>(g, delta,
                                                           std::move(data))});
  }
  for (auto& e : staged) {
    if (splits_.size() >= kMaxSplits) splits_.pop_back();
    splits_.insert(splits_.begin(), std::move(e));
  }
  return staged.size();
}

bool Context::has_split(const Graph& g, Weight delta) const {
  const std::uint64_t pfp = mr::placement_fingerprint(opts_.placement);
  for (const auto& e : splits_) {
    if (e.key.matches(g) && e.delta == delta && e.pfp == pfp) return true;
  }
  return false;
}

core::GrowingEngine& Context::growing_engine(const Graph& g,
                                             core::GrowingPolicy policy,
                                             const mr::PartitionOptions& popts) {
  const std::uint64_t pfp = mr::placement_fingerprint(opts_.placement);
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    if (engines_[i].key.matches(g) && engines_[i].policy == policy &&
        same_partition_opts(engines_[i].popts, popts) &&
        engines_[i].pfp == pfp) {
      touch(engines_, i);
      return *engines_.front().engine;
    }
  }
  engines_.insert(
      engines_.begin(),
      EngineEntry{GraphKey::of(g), policy, popts, pfp,
                  std::make_unique<core::GrowingEngine>(g, policy, popts,
                                                        this)});
  return *engines_.front().engine;
}

void Context::clear() {
  engines_.clear();       // engines reference partitions: drop them first
  shard_splits_.clear();  // shard splits key off partition addresses
  partitions_.clear();
  splits_.clear();
  buffers_.reset(0, {});  // rebind to empty; capacity intentionally kept
  stats_.clear();
}

}  // namespace gdiam::exec
