#pragma once
// Shared execution knobs (DESIGN.md §8).
//
// Every round-based kernel in gdiam is steered by the same three choices:
// which frontier engine maintains the per-round active sets, how many BSP
// shards the kernel runs on, and whether the Δ-presplit adjacency layout is
// used. Before the unified runtime these knobs were duplicated across
// DeltaSteppingOptions, ClusterOptions and the GrowingEngine setters, and
// could silently disagree between pipeline layers (a CLUSTER run configured
// adaptive could hand its quotient sweep a default-configured Δ-stepping).
// ExecOptions is the single definition; kernel option structs inherit it, so
// one assignment configures a whole pipeline.

#include <cstdint>

#include "core/frontier.hpp"
#include "mr/partition.hpp"
#include "mr/transport.hpp"

namespace gdiam::exec {

/// Which stepping kernel services SSSP-shaped work (sssp::shortest_paths).
/// Both kernels share the Frontier/RoundBuffers/SplitCsr machinery and both
/// converge to exact distances; they differ only in how each step picks the
/// set of nodes to settle (DESIGN.md §11):
///
///   * kDeltaStepping — Meyer–Sanders buckets of width Δ: settle everything
///     below a distance threshold that advances by a fixed Δ per bucket,
///     with light/heavy edge phases. Round count tracks diameter/Δ.
///   * kRhoStepping — PASGAL-style batch sizing: each step extracts the ~ρ
///     closest frontier nodes (threshold chosen by sampling the frontier's
///     tentative distances) and relaxes *all* their edges. Step count tracks
///     n/ρ instead of the diameter, which wins on high-diameter graphs where
///     any fixed Δ either floods buckets or starves them.
enum class Algorithm : std::uint8_t { kDeltaStepping, kRhoStepping };

[[nodiscard]] constexpr const char* to_string(Algorithm a) noexcept {
  return a == Algorithm::kDeltaStepping ? "delta" : "rho";
}

/// The execution knobs shared by Δ-stepping, the Δ-growing policies, and the
/// CLUSTER / CLUSTER2 / CL-DIAM drivers. Kernel-specific option structs
/// (sssp::DeltaSteppingOptions, core::ClusterOptions) inherit these fields,
/// and exec::Context carries a copy as the pipeline-wide default.
struct ExecOptions {
  /// Adaptive sparse/dense frontier engine for the per-round active sets
  /// (core/frontier.hpp); `frontier.adaptive = false` selects the legacy
  /// full-scan round paths — bit-identical results, the A/B baseline.
  core::FrontierOptions frontier;
  /// Shard layout for the partitioned BSP backends; num_partitions <= 1
  /// selects the flat shared-memory kernels.
  mr::PartitionOptions partition;
  /// Where the BSP compute phases run and how staged messages travel
  /// (mr/transport.hpp, DESIGN.md §9–§10): kLocal is the in-process default,
  /// kProcess fans each superstep out over `processes` forked workers, and
  /// kPool keeps those workers resident across supersteps with per-step
  /// inputs shipped over persistent sockets — all bit-identical results,
  /// with RoundStats additionally reporting the genuinely-crossed wire
  /// bytes. Only the partitioned backends read it.
  mr::TransportOptions transport;
  /// NUMA-aware shard placement (mr/placement.hpp, DESIGN.md §13): which
  /// strategy maps shards onto the discovered topology (GDIAM_TOPOLOGY
  /// override honored). kNone — the default — is the pre-placement behavior
  /// verbatim. Placement moves memory and threads, never results: distances,
  /// labels and model counters are bit-identical across strategies. Only the
  /// partitioned BSP backends read it.
  mr::PlacementOptions placement;
  /// Δ-presplit adjacency (graph/split_csr.hpp): iterate exactly the edge
  /// class a phase needs, no per-edge weight branch. `false` keeps the
  /// branch-filter loops — bit-identical, the A/B baseline.
  bool presplit = true;
  /// Stepping kernel for SSSP-shaped work (sssp::shortest_paths dispatches
  /// on it). Non-SSSP kernels (growing, CLUSTER) ignore it.
  Algorithm algorithm = Algorithm::kDeltaStepping;
};

}  // namespace gdiam::exec
