#pragma once
// The unified execution runtime (DESIGN.md §8).
//
// The CL-DIAM pipeline runs O(log n) CLUSTER stages, each performing repeated
// Δ-growing calls with doubling Δ guesses, on the *same* graph — and the
// iterated Δ-stepping sweep re-runs an identical-Δ kernel once per source.
// Before this runtime every kernel call rebuilt its derived graph layouts
// (Δ-presplit CSR, shard layout) and reallocated its round-lifetime scratch,
// because the caching lived in kernel-local objects invisible to the drivers
// above them. An exec::Context is the library-wide object that owns, for one
// logical execution (a pipeline run, a sweep sequence, a benchmark loop):
//
//   (a) a keyed cache of derived graph layouts — one SplitCsr per
//       (graph, Δ), one mr::Partition per (graph, K, strategy), one set of
//       per-shard splits per (partition, Δ) — so the CLUSTER doubling search
//       and equal-Δ repetitions presplit once, not per call;
//   (b) the pooled per-run scratch: the Δ-stepping RoundBuffers pool and a
//       pool of GrowingEngines keyed by (graph, policy, shard layout), whose
//       n-sized label/scratch/frontier arrays keep their capacity across
//       kernel calls;
//   (c) a StatsSink accumulating mr::RoundStats per pipeline phase
//       (decompose / quotient / diameter), so a driver can report where the
//       rounds and work of a whole CL-DIAM run went;
//   (d) the shared execution knobs (exec/options.hpp) as the pipeline-wide
//       default.
//
// Every layer accepts a Context: sssp::delta_stepping and the sweep, the
// GrowingEngine, core::cluster / cluster2 / build_quotient /
// approximate_diameter. Passing nullptr gives a function-local context —
// identical results (every cached object is a pure function of its key;
// enforced bit-for-bit by tests/test_exec_context.cpp), just no cross-call
// reuse.
//
// Lifetime contract: a Graph passed alongside a Context must outlive it
// unchanged (the same contract as holding a Graph&). The structural
// (n, arcs) part of the cache keys only guards against the common
// reallocation accidents, not mutation. References returned by the cache
// accessors stay valid for the current kernel call: the split caches are
// LRU-bounded, so a reference is guaranteed stable only until the next
// cache-filling call on the same context (partitions and pooled engines are
// never evicted). Contexts are not thread-safe; one context serves one
// orchestration thread (the kernels it feeds parallelize internally).

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "exec/options.hpp"
#include "graph/graph.hpp"
#include "graph/split_csr.hpp"
#include "mr/partition.hpp"
#include "mr/stats.hpp"
#include "sssp/delta_stepping.hpp"

namespace gdiam::core {
class GrowingEngine;
enum class GrowingPolicy;
}  // namespace gdiam::core

namespace gdiam::io {
class MappedGraph;
}  // namespace gdiam::io

namespace gdiam::exec {

/// Named RoundStats accumulators, one per pipeline phase, in first-use order.
/// The hierarchy is phase -> total: total() folds every phase, so a driver
/// that files its cost under "decompose" / "quotient" / "diameter" gives the
/// caller both the breakdown and the roll-up. Accumulation is additive across
/// runs on a reused context (clear() starts a fresh report); the per-run
/// result structs keep their own stats, so reuse never changes a result.
class StatsSink {
 public:
  /// The accumulator for `name` (created zeroed on first use).
  mr::RoundStats& phase(std::string_view name);

  /// The accumulator for `name`, or nullptr if the phase never reported.
  [[nodiscard]] const mr::RoundStats* find(std::string_view name) const;

  /// All phases, in the order they first reported.
  [[nodiscard]] const std::vector<std::pair<std::string, mr::RoundStats>>&
  phases() const noexcept {
    return phases_;
  }

  /// Sum over every phase.
  [[nodiscard]] mr::RoundStats total() const noexcept;

  void clear() { phases_.clear(); }

 private:
  std::vector<std::pair<std::string, mr::RoundStats>> phases_;
};

class Context {
 public:
  // Constructors and destructor are out of line: members hold
  // unique_ptr<GrowingEngine> over a forward declaration.
  Context();
  explicit Context(const ExecOptions& opts);
  ~Context();
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  /// The pipeline-wide execution knobs. Kernel option structs inherit
  /// ExecOptions and win when they disagree; drivers that take only a
  /// context (the CLI sweeps) read their defaults from here.
  [[nodiscard]] ExecOptions& options() noexcept { return opts_; }
  [[nodiscard]] const ExecOptions& options() const noexcept { return opts_; }

  // --- (a) derived-layout caches -------------------------------------------

  /// Cached Δ-presplit of g's CSR for bucket width / light threshold `delta`;
  /// built on miss. LRU-bounded (see kMaxSplits): the reference is stable
  /// until the next split_for call on this context.
  const SplitCsr& split_for(const Graph& g, Weight delta);

  /// Cached shard layout for (g, opts); built on miss, never evicted.
  const mr::Partition& partition_for(const Graph& g,
                                     const mr::PartitionOptions& opts);

  /// The most recently used cached partition for g, or nullptr if none has
  /// been built — a pure lookup for consumers (the quotient edge scan) that
  /// can exploit a shard layout but should not pay for building one.
  [[nodiscard]] const mr::Partition* find_partition(const Graph& g) const;

  /// Cached per-shard Δ-presplits of partition_for(g, opts)'s shard CSRs.
  /// LRU-bounded like split_for.
  const std::vector<CsrSplit>& shard_splits_for(const Graph& g,
                                                const mr::PartitionOptions& opts,
                                                Weight delta);

  /// Adopts the persisted presplit sidecars of a mapped .gcsr file into the
  /// split cache for `g` — the load-from-file warm path (DESIGN.md §14).
  /// `g` must be a view into `m`'s mapping (m.covers(g)); anything else
  /// throws io::BinfmtError{kFingerprintMismatch}. All-or-nothing: every
  /// sidecar is loaded and bounds-validated before any cache entry commits,
  /// so a bad sidecar can never leave a partially warmed cache. Returns the
  /// number of layouts adopted (0 when the file carries none).
  std::size_t adopt_presplits(const Graph& g, const io::MappedGraph& m);

  /// True when split_for(g, delta) would hit the cache under the current
  /// placement fingerprint. Pure lookup: does not touch LRU order.
  [[nodiscard]] bool has_split(const Graph& g, Weight delta) const;

  // --- (b) pooled per-run scratch ------------------------------------------

  /// The Δ-stepping round-lifetime scratch pool (buffers are rebound per run
  /// and keep their capacity across runs; DESIGN.md §7).
  [[nodiscard]] sssp::RoundBuffers& round_buffers() noexcept {
    return buffers_;
  }

  /// The pooled GrowingEngine for (g, policy, popts); constructed on first
  /// use, never evicted. The engine comes back with whatever label/blocked
  /// state its previous run left — callers reset() and reconfigure it
  /// (core/partial_growth.hpp does) — but its arrays keep their capacity and
  /// its shard layout and Δ-presplits come from this context's caches.
  core::GrowingEngine& growing_engine(const Graph& g,
                                      core::GrowingPolicy policy,
                                      const mr::PartitionOptions& popts);

  // --- (c) the stats sink ---------------------------------------------------

  [[nodiscard]] StatsSink& stats() noexcept { return stats_; }
  [[nodiscard]] const StatsSink& stats() const noexcept { return stats_; }

  /// Drops every cache, pool and accumulated stat (capacity not reclaimed
  /// from the RoundBuffers pool; a dropped context reclaims everything).
  void clear();

 private:
  /// Graph identity for cache keys: the pointer alone could alias a
  /// destroyed graph reallocated at the same address; (n, arcs) catches the
  /// common shapes of that accident. A guard, not a guarantee — the
  /// documented contract is that a cached graph outlives the context
  /// unchanged.
  struct GraphKey {
    const Graph* g = nullptr;
    NodeId nodes = 0;
    EdgeIndex arcs = 0;

    [[nodiscard]] bool matches(const Graph& graph) const noexcept {
      return g == &graph && nodes == graph.num_nodes() &&
             arcs == graph.num_directed_edges();
    }
    static GraphKey of(const Graph& graph) noexcept {
      return {&graph, graph.num_nodes(), graph.num_directed_edges()};
    }
  };

  /// Split caches hold one O(m) copy per distinct Δ; the CLUSTER doubling
  /// search visits O(log(Δ_end/Δ_0)) of them per run, so the cap comfortably
  /// covers a run while bounding a context reused across many graphs.
  static constexpr std::size_t kMaxSplits = 32;

  // Every entry also carries the placement fingerprint
  // (mr::placement_fingerprint of the context's options at build time): a
  // cached layout is first-touched for one (strategy, topology), and serving
  // it after a --placement or GDIAM_TOPOLOGY change would silently keep the
  // old page placement. 0 (placement off) reproduces the old keys exactly.
  struct SplitEntry {
    GraphKey key;
    Weight delta = 0.0;
    std::uint64_t pfp = 0;
    std::unique_ptr<SplitCsr> split;
  };
  struct PartitionEntry {
    GraphKey key;
    mr::PartitionOptions opts;
    std::uint64_t pfp = 0;
    std::unique_ptr<mr::Partition> partition;
  };
  struct ShardSplitEntry {
    const mr::Partition* partition = nullptr;  // stable: never evicted
    Weight delta = 0.0;
    std::uint64_t pfp = 0;
    std::unique_ptr<std::vector<CsrSplit>> splits;
  };
  struct EngineEntry {
    GraphKey key;
    core::GrowingPolicy policy;
    mr::PartitionOptions popts;
    std::uint64_t pfp = 0;
    std::unique_ptr<core::GrowingEngine> engine;
  };

  ExecOptions opts_;
  std::vector<SplitEntry> splits_;            // MRU-first
  std::vector<PartitionEntry> partitions_;    // MRU-first
  std::vector<ShardSplitEntry> shard_splits_;  // MRU-first
  std::vector<EngineEntry> engines_;
  sssp::RoundBuffers buffers_;
  StatsSink stats_;
};

}  // namespace gdiam::exec
