#pragma once
// Structural metrics from the paper's analysis:
//
//  * ℓ_Δ — the minimum number such that every node pair at weighted distance
//    ≤ Δ is joined by a minimum-weight path of at most ℓ_Δ edges (Section 2).
//    Drives the round complexity O(ℓ_{R_G(τ) log n} · log n) of Theorem 3.
//  * doubling dimension b — smallest integer such that every ball of hop
//    radius 2R is covered by 2^b balls of radius R (Definition 2); the
//    bounded-b case is where Corollary 1 beats Δ-stepping polynomially.
//  * greedy k-center (Gonzalez) — a sequential baseline for R_G(τ), used to
//    evaluate how close CLUSTER's radius gets to the optimum (within the
//    classical factor-2 guarantee of the greedy).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace gdiam::analysis {

/// Estimates ℓ_Δ by sampling `samples` sources: runs Dijkstra with hop
/// tracking and returns the maximum hop count over shortest paths of weight
/// ≤ Δ (a lower bound on ℓ_Δ that converges quickly in practice; exact when
/// samples covers all nodes). Ties among equal-weight paths resolve to the
/// fewest hops, matching the definition's "there is a minimum-weight path".
[[nodiscard]] std::uint32_t estimate_ell(const Graph& g, Weight delta,
                                         unsigned samples,
                                         std::uint64_t seed = 1);

struct DoublingEstimate {
  /// max over probed balls of ⌈log2(cover size)⌉.
  std::uint32_t dimension = 0;
  /// Number of (center, radius) balls probed.
  std::uint32_t balls_probed = 0;
};

/// Probes the (hop) doubling dimension: for sampled centers and radii R,
/// greedily covers the 2R-ball with R-balls and reports the max ⌈log₂ #⌉.
/// A sampling estimator — exact doubling dimension is NP-hard to compute;
/// on meshes it reports ≈ 2, on power-law graphs it grows with n.
[[nodiscard]] DoublingEstimate estimate_doubling_dimension(
    const Graph& g, unsigned center_samples, std::uint32_t max_radius,
    std::uint64_t seed = 1);

struct KCenterResult {
  std::vector<NodeId> centers;
  /// max distance from any node to its nearest center = the k-center radius.
  Weight radius = 0.0;
  /// Nearest center per node.
  std::vector<NodeId> assignment;
  std::vector<Weight> distance;
};

/// Gonzalez's greedy 2-approximation of the weighted k-center problem:
/// repeatedly add the node farthest from the current centers. R_G(k) lies in
/// [radius/2, radius]. Sequential; k Dijkstras.
[[nodiscard]] KCenterResult greedy_k_center(const Graph& g, NodeId k,
                                            std::uint64_t seed = 1);

}  // namespace gdiam::analysis
