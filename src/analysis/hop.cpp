#include "analysis/hop.hpp"

#include <algorithm>
#include <atomic>

#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace gdiam::analysis {

std::vector<std::uint32_t> bfs_hops(const Graph& g, NodeId source) {
  const NodeId n = g.num_nodes();
  std::vector<std::uint32_t> hops(n, kUnreachableHops);
  if (source >= n) return hops;
  hops[source] = 0;

  std::vector<NodeId> frontier{source};
  util::ThreadBuffers<NodeId> next;
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
#pragma omp parallel for schedule(dynamic, 256)
    for (std::size_t f = 0; f < frontier.size(); ++f) {
      for (const NodeId v : g.neighbors(frontier[f])) {
        std::atomic_ref<std::uint32_t> slot(hops[v]);
        std::uint32_t expected = kUnreachableHops;
        // First writer wins; all writers carry the same level value.
        if (slot.load(std::memory_order_relaxed) == kUnreachableHops &&
            slot.compare_exchange_strong(expected, level,
                                         std::memory_order_relaxed)) {
          next.local().push_back(v);
        }
      }
    }
    frontier = next.gather();
  }
  return hops;
}

std::uint32_t hop_eccentricity(const Graph& g, NodeId source) {
  const auto hops = bfs_hops(g, source);
  std::uint32_t ecc = 0;
  for (const std::uint32_t h : hops) {
    if (h != kUnreachableHops) ecc = std::max(ecc, h);
  }
  return ecc;
}

std::uint32_t hop_diameter_lower_bound(const Graph& g, unsigned max_sweeps,
                                       std::uint64_t seed) {
  const NodeId n = g.num_nodes();
  if (n == 0 || max_sweeps == 0) return 0;
  util::Xoshiro256 rng(seed);
  NodeId source = static_cast<NodeId>(rng.next_bounded(n));
  std::uint32_t best = 0;
  std::vector<NodeId> visited;
  for (unsigned s = 0; s < max_sweeps; ++s) {
    if (std::find(visited.begin(), visited.end(), source) != visited.end()) {
      break;
    }
    visited.push_back(source);
    const auto hops = bfs_hops(g, source);
    std::uint32_t ecc = 0;
    NodeId far = source;
    for (NodeId u = 0; u < n; ++u) {
      if (hops[u] != kUnreachableHops && hops[u] > ecc) {
        ecc = hops[u];
        far = u;
      }
    }
    best = std::max(best, ecc);
    source = far;
  }
  return best;
}

std::uint32_t exact_hop_diameter(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::uint32_t diameter = 0;
  // BFS itself is parallel; sources sequential to avoid nested regions.
  for (NodeId u = 0; u < n; ++u) {
    diameter = std::max(diameter, hop_eccentricity(g, u));
  }
  return diameter;
}

}  // namespace gdiam::analysis
