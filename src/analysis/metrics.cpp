#include "analysis/metrics.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "analysis/hop.hpp"
#include "sssp/dijkstra.hpp"
#include "util/rng.hpp"

namespace gdiam::analysis {

namespace {

/// Dijkstra that also tracks the hop count of a min-weight, then min-hop,
/// path to every node.
void dijkstra_with_hops(const Graph& g, NodeId source,
                        std::vector<Weight>& dist,
                        std::vector<std::uint32_t>& hops) {
  const NodeId n = g.num_nodes();
  dist.assign(n, kInfiniteWeight);
  hops.assign(n, kUnreachableHops);
  using Item = std::pair<Weight, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0.0;
  hops[source] = 0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    const auto nbr = g.neighbors(u);
    const auto wts = g.weights(u);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      const NodeId v = nbr[i];
      const Weight nd = d + wts[i];
      if (nd < dist[v] || (nd == dist[v] && hops[u] + 1 < hops[v])) {
        dist[v] = nd;
        hops[v] = hops[u] + 1;
        heap.emplace(nd, v);
      }
    }
  }
}

}  // namespace

std::uint32_t estimate_ell(const Graph& g, Weight delta, unsigned samples,
                           std::uint64_t seed) {
  const NodeId n = g.num_nodes();
  if (n == 0 || samples == 0) return 0;
  util::Xoshiro256 rng(seed);
  std::uint32_t ell = 0;
  std::vector<Weight> dist;
  std::vector<std::uint32_t> hops;
  const unsigned count = std::min<unsigned>(samples, n);
  for (unsigned s = 0; s < count; ++s) {
    const NodeId source = samples >= n
                              ? static_cast<NodeId>(s)
                              : static_cast<NodeId>(rng.next_bounded(n));
    dijkstra_with_hops(g, source, dist, hops);
    for (NodeId u = 0; u < n; ++u) {
      if (dist[u] <= delta && hops[u] != kUnreachableHops) {
        ell = std::max(ell, hops[u]);
      }
    }
  }
  return ell;
}

DoublingEstimate estimate_doubling_dimension(const Graph& g,
                                             unsigned center_samples,
                                             std::uint32_t max_radius,
                                             std::uint64_t seed) {
  DoublingEstimate out;
  const NodeId n = g.num_nodes();
  if (n == 0 || center_samples == 0 || max_radius == 0) return out;
  util::Xoshiro256 rng(seed);

  // Probe the maximum-degree node first — dimension concentrates where the
  // neighborhood growth is fastest (e.g. the hub of a star) and uniform
  // sampling is unlikely to hit it — then random centers.
  NodeId hub = 0;
  for (NodeId u = 1; u < n; ++u) {
    if (g.degree(u) > g.degree(hub)) hub = u;
  }
  for (unsigned s = 0; s < center_samples; ++s) {
    const NodeId center =
        s == 0 ? hub : static_cast<NodeId>(rng.next_bounded(n));
    const auto hops = bfs_hops(g, center);
    for (std::uint32_t radius = 1; radius <= max_radius; radius *= 2) {
      // Nodes of the radius-ball around `center`, to be covered with balls
      // of radius ⌊radius/2⌋ (0 = singletons — the R = 1/2 case that
      // separates stars from meshes under integral hop distances).
      const std::uint32_t half = radius / 2;
      std::vector<NodeId> ball;
      for (NodeId u = 0; u < n; ++u) {
        if (hops[u] != kUnreachableHops && hops[u] <= radius) {
          ball.push_back(u);
        }
      }
      if (ball.size() <= 1) continue;
      out.balls_probed++;
      // Greedy cover: repeatedly pick an uncovered node and remove
      // everything within hop distance `half` of it.
      std::uint32_t cover_size = 0;
      if (half == 0) {
        cover_size = static_cast<std::uint32_t>(ball.size());
      } else {
        std::vector<std::uint8_t> covered(n, 0);
        for (const NodeId u : ball) {
          if (covered[u]) continue;
          ++cover_size;
          const auto local = bfs_hops(g, u);
          for (const NodeId v : ball) {
            if (local[v] != kUnreachableHops && local[v] <= half) {
              covered[v] = 1;
            }
          }
        }
      }
      std::uint32_t dim = 0;
      while ((1u << dim) < cover_size) ++dim;
      out.dimension = std::max(out.dimension, dim);
    }
  }
  return out;
}

KCenterResult greedy_k_center(const Graph& g, NodeId k, std::uint64_t seed) {
  const NodeId n = g.num_nodes();
  KCenterResult out;
  if (n == 0) return out;
  if (k == 0) throw std::invalid_argument("greedy_k_center: k must be >= 1");
  k = std::min(k, n);

  util::Xoshiro256 rng(seed);
  NodeId next_center = static_cast<NodeId>(rng.next_bounded(n));
  out.distance.assign(n, kInfiniteWeight);
  out.assignment.assign(n, kInvalidNode);

  for (NodeId round = 0; round < k; ++round) {
    out.centers.push_back(next_center);
    const auto d = sssp::dijkstra_distances(g, next_center);
    for (NodeId u = 0; u < n; ++u) {
      if (d[u] < out.distance[u]) {
        out.distance[u] = d[u];
        out.assignment[u] = next_center;
      }
    }
    // Farthest (finite-distance) node becomes the next center; on
    // disconnected graphs, an untouched component (distance ∞) wins first.
    Weight far_dist = -1.0;
    NodeId far = next_center;
    for (NodeId u = 0; u < n; ++u) {
      const Weight d_u =
          out.distance[u] == kInfiniteWeight ? -2.0 : out.distance[u];
      if (out.distance[u] == kInfiniteWeight) {
        far = u;
        far_dist = kInfiniteWeight;
        break;
      }
      if (d_u > far_dist) {
        far_dist = d_u;
        far = u;
      }
    }
    next_center = far;
  }

  out.radius = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    if (out.distance[u] != kInfiniteWeight) {
      out.radius = std::max(out.radius, out.distance[u]);
    }
  }
  return out;
}

}  // namespace gdiam::analysis
