#pragma once
// Hop (unweighted) metrics: parallel BFS, hop eccentricity and the hop
// diameter Ψ(G) — the quantity Corollary 1 compares round complexities
// against (Δ-stepping needs Ω(Ψ(G)) rounds under linear space; CLUSTER needs
// O(⌈Ψ/n^(ε'/b)⌉ log³ n)).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace gdiam::analysis {

/// Hop distance (number of edges) from `source` to every node;
/// kInvalidNode-valued entries become unreachable = UINT32_MAX.
inline constexpr std::uint32_t kUnreachableHops = 0xffffffffu;

/// Frontier-parallel BFS.
[[nodiscard]] std::vector<std::uint32_t> bfs_hops(const Graph& g,
                                                  NodeId source);

/// Max finite hop distance from `source`.
[[nodiscard]] std::uint32_t hop_eccentricity(const Graph& g, NodeId source);

/// Lower bound on the hop diameter Ψ(G) by iterated BFS sweeps
/// (the unweighted analogue of sssp::diameter_lower_bound).
[[nodiscard]] std::uint32_t hop_diameter_lower_bound(const Graph& g,
                                                     unsigned max_sweeps,
                                                     std::uint64_t seed = 1);

/// Exact hop diameter via BFS from every node; for small graphs and tests.
[[nodiscard]] std::uint32_t exact_hop_diameter(const Graph& g);

}  // namespace gdiam::analysis
