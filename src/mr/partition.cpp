#include "mr/partition.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace gdiam::mr {

namespace {

/// Stateless node hash for PartitionStrategy::kHash (one SplitMix64 step;
/// the constant stream makes the assignment a pure function of the node id).
std::uint32_t hash_owner(NodeId u, std::uint32_t k) {
  return static_cast<std::uint32_t>(util::SplitMix64(u).next() % k);
}

}  // namespace

Partition::Partition(const Graph& g, const PartitionOptions& opts)
    : strategy_(opts.strategy) {
  const NodeId n = g.num_nodes();
  const std::uint32_t k = std::min<std::uint32_t>(
      std::max<std::uint32_t>(1, opts.num_partitions),
      std::max<NodeId>(1, n));

  // --- owner mapping ---------------------------------------------------------
  owner_.resize(n);
  if (strategy_ == PartitionStrategy::kHash) {
    for (NodeId u = 0; u < n; ++u) owner_[u] = hash_owner(u, k);
  } else {
    // Balanced contiguous ranges: shard s owns [s·n/K, (s+1)·n/K).
    for (std::uint32_t s = 0; s < k; ++s) {
      const auto lo = static_cast<NodeId>(
          (static_cast<std::uint64_t>(s) * n) / k);
      const auto hi = static_cast<NodeId>(
          (static_cast<std::uint64_t>(s + 1) * n) / k);
      for (NodeId u = lo; u < hi; ++u) owner_[u] = s;
    }
  }

  // --- owned-node numbering (ascending global id within each shard) ----------
  shards_.resize(k);
  local_of_global_.resize(n);
  for (std::uint32_t s = 0; s < k; ++s) shards_[s].id = s;
  for (NodeId u = 0; u < n; ++u) {
    Shard& sh = shards_[owner_[u]];
    local_of_global_[u] = sh.num_owned;
    sh.global_of_local.push_back(u);
    sh.num_owned++;
  }

  // --- per-shard CSR + ghost tables ------------------------------------------
  // kInvalidNode marks "not yet assigned a local id in this shard". The
  // scratch array is reset entry-by-entry after each shard (only the nodes
  // that shard touched), keeping construction O(n + m) overall instead of
  // O(K·n) — --partitions is only clamped to n, so K can be large.
  std::vector<NodeId> local_in_shard(n, kInvalidNode);
  for (std::uint32_t s = 0; s < k; ++s) {
    Shard& sh = shards_[s];
    for (NodeId l = 0; l < sh.num_owned; ++l) {
      local_in_shard[sh.global_of_local[l]] = l;
    }

    // First pass: discover ghosts in ascending global id so ghost local ids
    // are deterministic regardless of arc order.
    std::vector<NodeId> ghost_globals;
    for (NodeId l = 0; l < sh.num_owned; ++l) {
      for (const NodeId v : g.neighbors(sh.global_of_local[l])) {
        if (owner_[v] != s) ghost_globals.push_back(v);
      }
    }
    std::sort(ghost_globals.begin(), ghost_globals.end());
    ghost_globals.erase(
        std::unique(ghost_globals.begin(), ghost_globals.end()),
        ghost_globals.end());
    for (const NodeId v : ghost_globals) {
      local_in_shard[v] =
          sh.num_owned + static_cast<NodeId>(sh.ghost_owner.size());
      sh.global_of_local.push_back(v);
      sh.ghost_owner.push_back(owner_[v]);
    }

    // Second pass: the owned-node CSR with localized targets.
    sh.offsets.reserve(sh.num_owned + 1);
    sh.offsets.push_back(0);
    for (NodeId l = 0; l < sh.num_owned; ++l) {
      const NodeId u = sh.global_of_local[l];
      const auto nbr = g.neighbors(u);
      const auto wts = g.weights(u);
      for (std::size_t i = 0; i < nbr.size(); ++i) {
        sh.targets.push_back(local_in_shard[nbr[i]]);
        sh.weights.push_back(wts[i]);
      }
      sh.offsets.push_back(static_cast<EdgeIndex>(sh.targets.size()));
    }

    // Reset exactly the entries this shard assigned (owned + ghosts).
    for (const NodeId u : sh.global_of_local) {
      local_in_shard[u] = kInvalidNode;
    }
  }
}

NodeId Partition::max_owned() const noexcept {
  NodeId m = 0;
  for (const Shard& sh : shards_) m = std::max(m, sh.num_owned);
  return m;
}

EdgeIndex Partition::max_arcs() const noexcept {
  EdgeIndex m = 0;
  for (const Shard& sh : shards_) m = std::max(m, sh.num_arcs());
  return m;
}

bool Partition::validate(const Graph& g) const {
  const NodeId n = g.num_nodes();
  if (owner_.size() != n || local_of_global_.size() != n) return false;

  // Every node owned exactly once, with a round-tripping local id.
  std::uint64_t owned_total = 0;
  for (const Shard& sh : shards_) {
    owned_total += sh.num_owned;
    if (sh.offsets.size() != static_cast<std::size_t>(sh.num_owned) + 1) {
      return false;
    }
    if (sh.targets.size() != sh.weights.size()) return false;
    for (NodeId l = 0; l < sh.num_owned; ++l) {
      const NodeId u = sh.global_of_local[l];
      if (u >= n || owner_[u] != sh.id || local_of_global_[u] != l) {
        return false;
      }
    }
    // Ghost table: remote owner, consistent global mapping, in-range ids.
    for (NodeId gi = 0; gi < sh.num_ghosts(); ++gi) {
      const NodeId v = sh.global_of_local[sh.num_owned + gi];
      if (v >= n || sh.ghost_owner[gi] == sh.id ||
          sh.ghost_owner[gi] != owner_[v]) {
        return false;
      }
    }
  }
  if (owned_total != n) return false;

  // Every arc stored exactly once, in its source's shard, with the original
  // weight and correctly localized target.
  std::uint64_t arcs_total = 0;
  for (const Shard& sh : shards_) {
    arcs_total += sh.num_arcs();
    for (NodeId l = 0; l < sh.num_owned; ++l) {
      const NodeId u = sh.global_of_local[l];
      const auto nbr = g.neighbors(u);
      const auto wts = g.weights(u);
      const EdgeIndex lo = sh.offsets[l];
      if (sh.offsets[l + 1] - lo != nbr.size()) return false;
      for (std::size_t i = 0; i < nbr.size(); ++i) {
        const NodeId tl = sh.targets[lo + i];
        if (tl >= sh.global_of_local.size()) return false;
        if (sh.global_of_local[tl] != nbr[i]) return false;
        if (sh.weights[lo + i] != wts[i]) return false;
        if (sh.is_ghost(tl) != (owner_[nbr[i]] != sh.id)) return false;
      }
    }
  }
  return arcs_total == g.num_directed_edges();
}

}  // namespace gdiam::mr
