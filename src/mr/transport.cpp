#include "mr/transport.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <string>

#include <omp.h>

#include "util/fault.hpp"
#include "util/net.hpp"
#include "util/topology.hpp"

namespace gdiam::mr {

namespace net = gdiam::util::net;
namespace fault = gdiam::util::fault;

namespace {

/// Errors are thrown bare; run_compute catches them, finishes cleanup
/// (close fds, reap children) and rethrows with the transport prefix.
[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

/// Cursor over a worker's byte stream; a short stream means the worker died
/// mid-write and is reported as a transport error, never as silent data.
struct Reader {
  const std::byte* p;
  const std::byte* end;

  std::uint64_t u64() {
    if (end - p < static_cast<std::ptrdiff_t>(sizeof(std::uint64_t))) {
      throw std::runtime_error("truncated worker stream");
    }
    std::uint64_t v;
    std::memcpy(&v, p, sizeof v);
    p += sizeof v;
    return v;
  }
  const std::byte* bytes(std::uint64_t len) {
    // Unsigned compare: a corrupt length with the top bit set must trip the
    // check, not wrap a signed cast past it (end >= p by construction).
    if (static_cast<std::uint64_t>(end - p) < len) {
      throw std::runtime_error("truncated worker stream");
    }
    const std::byte* at = p;
    p += len;
    return at;
  }
};

/// How long teardown waits for a worker to exit on its own before SIGKILL.
/// Workers _exit right after their last write (process) or on 'Q'/EOF
/// (pool), so the deadline only ever bites on a genuinely wedged child.
constexpr int kReapTimeoutMs = 5000;

}  // namespace

Launcher::Launcher(std::uint32_t num_shards, std::uint32_t processes,
                   PlacementPlan plan)
    : k_(std::max(1u, num_shards)),
      p_(std::max(1u, processes)),
      plan_(std::move(plan)) {
  if (p_ > k_) p_ = k_;  // a worker with zero shards would be pure overhead
  // A plan built for a different shard count can't describe these shards;
  // degrade to inactive rather than misindex (defensive — callers build the
  // plan from the same K they pass here).
  if (plan_.active() && plan_.num_shards() != k_) plan_ = {};
  order_.resize(k_);
  std::iota(order_.begin(), order_.end(), 0u);
  if (plan_.active()) {
    // Placement order: (node, id). Grouping contiguously over this order is
    // the "cheaper local path" routing — same-node shards pack into the same
    // worker, so their traffic never crosses a node-bound process. Sorting
    // by a pure function of the plan keeps the mapping deterministic.
    std::sort(order_.begin(), order_.end(), [this](ShardId a, ShardId b) {
      const std::uint32_t na = plan_.node_of(a), nb = plan_.node_of(b);
      return na != nb ? na < nb : a < b;
    });
  }
  group_of_.assign(k_, 0);
  for (std::uint32_t p = 0; p < p_; ++p) {
    const auto [first, last] = group(p);
    for (std::uint32_t i = first; i < last; ++i) group_of_[order_[i]] = p;
  }
}

std::pair<ShardId, ShardId> Launcher::group(std::uint32_t p) const {
  // Ceil-balanced contiguous ranges over placement order: the first
  // (k mod p) groups are one position larger. Pure function of (K, P) —
  // part of the determinism story. With an inactive plan, positions are
  // shard ids (identity order), the historical contract.
  const std::uint32_t base = k_ / p_;
  const std::uint32_t extra = k_ % p_;
  const std::uint32_t first = p * base + std::min(p, extra);
  const std::uint32_t size = base + (p < extra ? 1 : 0);
  return {first, first + size};
}

std::span<const ShardId> Launcher::shards_of(std::uint32_t p) const {
  const auto [first, last] = group(p);
  return std::span<const ShardId>(order_).subspan(first, last - first);
}

std::uint32_t Launcher::process_of(ShardId s) const { return group_of_[s]; }

int Launcher::node_of_group(std::uint32_t p) const {
  if (!plan_.active()) return -1;
  const auto shards = shards_of(p);
  if (shards.empty()) return -1;
  const std::uint32_t node = plan_.node_of(shards.front());
  for (const ShardId s : shards) {
    if (plan_.node_of(s) != node) return -1;  // straddles nodes
  }
  return static_cast<int>(node);
}

std::vector<int> Launcher::cpus_of_group(std::uint32_t p) const {
  std::vector<int> cpus;
  if (!plan_.active()) return cpus;
  for (const ShardId s : shards_of(p)) {
    const auto& node_cpus = plan_.cpus_of_node(plan_.node_of(s));
    cpus.insert(cpus.end(), node_cpus.begin(), node_cpus.end());
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

std::unique_ptr<Transport> Launcher::make_transport(
    const TransportOptions& opts, std::uint32_t num_shards,
    PlacementPlan plan) {
  if (opts.kind == TransportKind::kProcess) {
    return std::make_unique<ProcessTransport>(
        Launcher(num_shards, opts.processes, std::move(plan)));
  }
  if (opts.kind == TransportKind::kPool) {
    return std::make_unique<PoolTransport>(
        Launcher(num_shards, opts.processes, std::move(plan)));
  }
  return std::make_unique<LocalTransport>(std::move(plan));
}

TransportStats LocalTransport::run_compute(const SuperstepPlan& plan) {
  const auto k = static_cast<std::int64_t>(plan.num_shards);
  const bool pin = plan_.active() && plan_.num_shards() == plan.num_shards;
#pragma omp parallel for schedule(dynamic, 1)
  for (std::int64_t s = 0; s < k; ++s) {
    const auto shard = static_cast<ShardId>(s);
    if (pin) {
      // Pin this shard's compute to its node for the callback's duration;
      // the mask is restored so the OpenMP team stays unperturbed for
      // whatever runs next. Best-effort: a failed bind costs locality only.
      util::topo::ScopedAffinity bind(
          plan_.cpus_of_node(plan_.node_of(shard)));
      plan.compute(shard);
    } else {
      plan.compute(shard);
    }
  }
  return {};  // nothing crossed a process boundary
}

TransportStats ProcessTransport::run_compute(const SuperstepPlan& plan) {
  TransportStats out;
  const std::uint32_t procs = launcher_.processes();
  std::vector<int> rx(procs, -1);
  std::vector<pid_t> pids(procs, -1);
  // First failure anywhere; recorded, not thrown, until every spawned
  // worker is drained/closed and reaped — a mid-spawn fork failure must not
  // leak the earlier workers' fds or leave them blocked and unreaped.
  std::string error;

  // Phase A: fork one worker per group. The child inherits a copy-on-write
  // snapshot of the whole coordinator — exactly the step-start state the BSP
  // contract lets compute read — runs its shards sequentially (the P workers
  // are the parallelism; OpenMP regions are not safe in a forked child),
  // streams its frames, and _exits without touching shared stdio/atexit
  // state. Wire format, per shard in group order:
  //   [u64 row_len][row bytes from encode_row][u64 shard counter]
  for (std::uint32_t p = 0; p < procs && error.empty(); ++p) {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      error = std::string("socketpair: ") + std::strerror(errno);
      break;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      error = std::string("fork: ") + std::strerror(errno);
      ::close(fds[0]);
      ::close(fds[1]);
      break;
    }
    if (pid == 0) {
      // Worker. fd hygiene: drop the read end and every earlier worker's
      // inherited read end (harmless for EOF semantics, but tidy).
      ::close(fds[0]);
      for (std::uint32_t q = 0; q < p; ++q) ::close(rx[q]);
      int status = 0;
      try {
        // Fault point: a kill here is a worker crash before any output; an
        // errno makes this worker report a deterministic compute failure.
        if (fault::check("proc.worker").fail) throw std::runtime_error("");
        // Node-bind the worker before compute (best-effort; cpus_of_group is
        // empty without an active plan and the bind is a no-op).
        util::topo::bind_current_thread(launcher_.cpus_of_group(p));
        const auto shards = launcher_.shards_of(p);
        for (const ShardId s : shards) plan.compute(s);
        std::vector<std::byte> frames;
        std::vector<std::byte> row;
        for (const ShardId s : shards) {
          row.clear();
          plan.encode_row(s, row);
          net::append_u64(frames, row.size());
          frames.insert(frames.end(), row.begin(), row.end());
          net::append_u64(frames, plan.shard_counters.empty()
                                      ? 0
                                      : plan.shard_counters[s]);
        }
        if (!net::write_all(fds[1], frames.data(), frames.size())) status = 3;
      } catch (...) {
        status = 2;  // compute threw; the coordinator turns this into one
      }                // "worker failed" error after reaping
      ::close(fds[1]);
      ::_exit(status);
    }
    ::close(fds[1]);  // coordinator keeps only the read end
    rx[p] = fds[0];
    pids[p] = pid;
  }

  // Phase B: collect every spawned worker's stream and reassemble rows *by
  // shard id*, so delivery order is independent of process scheduling. Once
  // an error is recorded, remaining streams are not decoded — closing the
  // read end unblocks (and terminates, via SIGPIPE/EPIPE) a writer that
  // nobody will read — but every fd is closed and every child reaped before
  // the one error is finally thrown.
  for (std::uint32_t p = 0; p < procs; ++p) {
    if (rx[p] < 0) continue;  // never spawned (mid-spawn failure)
    if (error.empty()) {
      try {
        const std::vector<std::byte> stream = net::read_to_eof(rx[p]);
        out.wire_bytes += stream.size();
        Reader r{stream.data(), stream.data() + stream.size()};
        for (const ShardId s : launcher_.shards_of(p)) {
          const std::uint64_t row_len = r.u64();
          out.wire_messages += plan.decode_row(s, r.bytes(row_len), row_len);
          const std::uint64_t counter = r.u64();
          if (!plan.shard_counters.empty()) plan.shard_counters[s] = counter;
        }
      } catch (const std::exception& e) {
        error = e.what();
      }
    }
    ::close(rx[p]);
  }
  // Bounded reap: a worker that neither exited nor can be waited on within
  // the deadline is SIGKILLed rather than hanging the coordinator forever,
  // and every nonzero exit status (including that escalation) surfaces as a
  // transport error — a dead-but-zero-looking superstep is silent data loss.
  std::string worker_error;
  for (std::uint32_t p = 0; p < procs; ++p) {
    if (pids[p] < 0) continue;
    const net::ReapResult rr = net::reap_child(pids[p], kReapTimeoutMs);
    const int code = rr.exit_code();
    if (worker_error.empty() && code != 0) {
      const char* why = !rr.reaped ? "lost worker "
                        : rr.sigkilled || rr.sigtermed
                            ? "hung worker (killed): worker "
                        : code == 2 ? "compute threw in worker "
                        : code == 3 ? "socket write failed in worker "
                                    : "worker died: worker ";
      worker_error = why + std::to_string(p);
    }
  }
  // A dead worker explains a truncated/short stream, never the other way
  // around — report the root cause, not the symptom the reader saw first.
  if (!worker_error.empty()) error = worker_error;
  if (!error.empty()) throw TransportError("ProcessTransport: " + error);
  return out;
}

// ---------------------------------------------------------------------------
// PoolTransport
// ---------------------------------------------------------------------------

PoolTransport::PoolTransport(Launcher launcher) : launcher_(launcher) {
  workers_.assign(launcher_.processes(), Worker{});
}

PoolTransport::~PoolTransport() { shutdown(); }

pid_t PoolTransport::worker_pid(std::uint32_t p) const noexcept {
  return p < workers_.size() ? workers_[p].pid : -1;
}

int PoolTransport::worker_node(std::uint32_t p) const noexcept {
  return p < workers_.size() ? workers_[p].node : -1;
}

void PoolTransport::stop_worker(Worker& w) noexcept {
  if (w.fd >= 0) {
    const char quit = 'Q';
    net::write_all(w.fd, &quit, 1);  // best effort; a dead worker is EPIPE
    ::close(w.fd);
    w.fd = -1;
  }
  if (w.pid > 0) {
    net::reap_child(w.pid, kReapTimeoutMs);
    w.pid = -1;
  }
}

void PoolTransport::shutdown() noexcept {
  for (Worker& w : workers_) stop_worker(w);
  alive_ = false;
}

void PoolTransport::spawn_worker(std::uint32_t p, const SuperstepPlan& plan) {
  // Fault point: an errno here is a failed fork/socketpair — the spawn path
  // the daemon's degradation ladder (pool → local) is tested against.
  if (fault::check("pool.spawn").fail) throw_errno("socketpair");
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw_errno("socketpair");
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw_errno("fork");
  }
  if (pid == 0) {
    ::close(fds[0]);
    // fd hygiene: drop the coordinator ends of the sibling workers' sockets
    // so closing one coordinator-side fd reliably EOFs exactly one worker.
    for (const Worker& w : workers_) {
      if (w.fd >= 0) ::close(w.fd);
    }
    // Node-bind before any compute (best-effort; no-op without a plan).
    // Crash respawns re-enter here with the same launcher, so a replacement
    // worker lands on the dead worker's node — the pool's placement is a
    // pure function of (p, plan), not of the crash history.
    util::topo::bind_current_thread(launcher_.cpus_of_group(p));
    worker_main(p, fds[1], plan);  // never returns
  }
  ::close(fds[1]);
  workers_[p] = Worker{pid, fds[0], launcher_.node_of_group(p)};
  ++spawns_;
}

void PoolTransport::worker_main(std::uint32_t p, int fd,
                                const SuperstepPlan& plan) {
  // `plan` refers to the coordinator frame live at fork time; the child's
  // copy-on-write image freezes that frame (and every closure it reaches)
  // at a stable address for the worker's whole life — worker_main never
  // returns, so nothing below it ever unwinds. All per-superstep variation
  // arrives through decode_input, which writes into storage that was
  // already allocated at fork time (the stable-address contract).
  const auto shards = launcher_.shards_of(p);
  std::vector<std::byte> input;
  std::vector<std::byte> frames;
  std::vector<std::byte> row;
  for (;;) {
    char cmd = 0;
    if (!net::read_exact(fd, &cmd, 1)) ::_exit(0);  // coordinator is gone
    if (cmd == 'Q') ::_exit(0);
    if (cmd != 'S') ::_exit(4);
    // Fault point: a kill fires SIGKILL on *this worker* mid-superstep
    // (after the coordinator committed to the step — the crash-replay
    // path); a delay stalls the step (the slow-worker path).
    fault::check("pool.worker.step");
    try {
      for (const ShardId s : shards) {
        std::uint64_t len = 0;
        if (!net::read_u64(fd, len)) ::_exit(5);
        input.resize(len);
        if (len != 0 && !net::read_exact(fd, input.data(), len)) ::_exit(5);
        if (len != 0 && plan.decode_input) {
          plan.decode_input(s, input.data(), len);
        }
        if (plan.reset_row) plan.reset_row(s);
      }
      for (const ShardId s : shards) plan.compute(s);
      frames.clear();
      net::append_u64(frames, 0);  // status: ok
      for (const ShardId s : shards) {
        row.clear();
        plan.encode_row(s, row);
        net::append_u64(frames, row.size());
        frames.insert(frames.end(), row.begin(), row.end());
        net::append_u64(frames, plan.shard_counters.empty()
                                    ? 0
                                    : plan.shard_counters[s]);
      }
      if (!net::write_all(fd, frames.data(), frames.size())) ::_exit(3);
    } catch (...) {
      // Deterministic failure (compute/encode threw): report it as a status
      // frame so the coordinator raises one error instead of burning its
      // restart budget replaying a step that will always throw.
      net::write_u64(fd, 2);
      ::_exit(2);
    }
  }
}

bool PoolTransport::send_step(const Worker& w, std::uint32_t p,
                              const SuperstepPlan& plan,
                              std::uint64_t& bytes) noexcept {
  // Fault point: errno/short fail the ship (the pool restarts the group); a
  // kill takes down the worker itself just before its inputs arrive.
  if (fault::check("pool.ship", w.pid).fail) return false;
  std::vector<std::byte> frame;
  frame.push_back(std::byte{'S'});
  std::vector<std::byte> input;
  for (const ShardId s : launcher_.shards_of(p)) {
    input.clear();
    if (plan.encode_input) plan.encode_input(s, input);
    net::append_u64(frame, input.size());
    frame.insert(frame.end(), input.begin(), input.end());
  }
  if (!net::write_all(w.fd, frame.data(), frame.size())) return false;
  bytes += frame.size();
  return true;
}

bool PoolTransport::recv_step(const Worker& w, std::uint32_t p,
                              const SuperstepPlan& plan, std::uint64_t& msgs,
                              std::uint64_t& bytes, std::string& fatal) {
  // Fault point: errno/short here look exactly like a worker that died
  // mid-reply — a torn reassembly the pool must respawn-and-replay through.
  {
    const fault::Outcome f = fault::check("pool.recv", w.pid);
    if (f.fail || f.short_io) return false;
  }
  std::uint64_t status = 0;
  if (!net::read_u64(w.fd, status)) return false;
  bytes += sizeof status;
  if (status != 0) {
    fatal = status == 2
                ? "compute threw in pool worker " + std::to_string(p)
                : "pool worker " + std::to_string(p) + " failed (status " +
                      std::to_string(status) + ")";
    return true;  // the worker is alive and told us why — don't retry
  }
  std::vector<std::byte> row;
  for (const ShardId s : launcher_.shards_of(p)) {
    std::uint64_t row_len = 0;
    if (!net::read_u64(w.fd, row_len)) return false;
    row.resize(row_len);
    if (row_len != 0 && !net::read_exact(w.fd, row.data(), row_len)) {
      return false;
    }
    msgs += plan.decode_row(s, row.data(), row_len);
    std::uint64_t counter = 0;
    if (!net::read_u64(w.fd, counter)) return false;
    if (!plan.shard_counters.empty()) plan.shard_counters[s] = counter;
    bytes += 2 * sizeof(std::uint64_t) + row_len;
  }
  return true;
}

TransportStats PoolTransport::run_compute(const SuperstepPlan& plan) {
  const std::uint32_t procs = launcher_.processes();
  const bool has_codec =
      plan.encode_input != nullptr && plan.decode_input != nullptr;

  try {
    // Residency gate. No codec ⇒ the frozen closures cannot receive fresh
    // inputs, so degrade to respawn-per-superstep (ProcessTransport
    // semantics, still correct). An epoch change ⇒ the resident state the
    // closures read beyond the inputs has mutated ⇒ re-snapshot.
    if (!alive_ || !has_codec || epoch_ != plan.resident_epoch) {
      shutdown();
      for (std::uint32_t p = 0; p < procs; ++p) spawn_worker(p, plan);
      alive_ = true;
      epoch_ = plan.resident_epoch;
    }

    // Per-group tallies are overwritten on retry, never double-counted.
    std::vector<std::uint64_t> grp_msgs(procs, 0);
    std::vector<std::uint64_t> grp_bytes(procs, 0);
    std::vector<std::uint32_t> todo(procs);
    std::iota(todo.begin(), todo.end(), 0u);

    for (int attempt = 0; !todo.empty(); ++attempt) {
      if (attempt >= 3) {
        throw std::runtime_error(
            "worker restart limit reached (group " +
            std::to_string(todo.front()) + ")");
      }
      // Write every group's inputs before reading any reply: workers only
      // write after consuming their whole input, so ordering all sends
      // first is deadlock-free regardless of reply sizes.
      std::vector<std::uint32_t> sent;
      std::vector<std::uint32_t> failed;
      for (const std::uint32_t p : todo) {
        grp_msgs[p] = 0;
        grp_bytes[p] = 0;
        (send_step(workers_[p], p, plan, grp_bytes[p]) ? sent : failed)
            .push_back(p);
      }
      std::string fatal;
      for (const std::uint32_t p : sent) {
        if (!recv_step(workers_[p], p, plan, grp_msgs[p], grp_bytes[p],
                       fatal)) {
          failed.push_back(p);
        }
        if (!fatal.empty()) throw std::runtime_error(fatal);
      }
      // Crash recovery: respawn the dead groups from *current* coordinator
      // state (trivially at the current epoch) and replay only their step.
      // Rows are a pure function of (resident layout, shipped inputs), so
      // the replayed exchange is bit-identical to what the dead worker
      // would have produced.
      for (const std::uint32_t p : failed) {
        stop_worker(workers_[p]);
        spawn_worker(p, plan);
        ++restarts_;
      }
      todo = std::move(failed);
    }

    TransportStats out;
    for (std::uint32_t p = 0; p < procs; ++p) {
      out.wire_messages += grp_msgs[p];
      out.wire_bytes += grp_bytes[p];
    }
    return out;
  } catch (const std::exception& e) {
    shutdown();  // never leave half-alive workers behind a thrown superstep
    throw TransportError(std::string("PoolTransport: ") + e.what());
  }
}

}  // namespace gdiam::mr
