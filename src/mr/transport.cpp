#include "mr/transport.hpp"

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include <omp.h>

namespace gdiam::mr {

namespace {

/// Errors are thrown bare; run_compute catches them, finishes cleanup
/// (close fds, reap children) and rethrows with the ProcessTransport prefix.
[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

/// write(2) until `len` bytes are on the socket (partial writes + EINTR).
bool write_all(int fd, const void* data, std::size_t len) noexcept {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads the socket to EOF (the worker closes its end after the last frame).
std::vector<std::byte> read_to_eof(int fd) {
  std::vector<std::byte> out;
  std::byte buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("read from worker");
    }
    if (n == 0) return out;
    out.insert(out.end(), buf, buf + n);
  }
}

void append_u64(std::vector<std::byte>& out, std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}

/// Cursor over a worker's byte stream; a short stream means the worker died
/// mid-write and is reported as a transport error, never as silent data.
struct Reader {
  const std::byte* p;
  const std::byte* end;

  std::uint64_t u64() {
    if (end - p < static_cast<std::ptrdiff_t>(sizeof(std::uint64_t))) {
      throw std::runtime_error("truncated worker stream");
    }
    std::uint64_t v;
    std::memcpy(&v, p, sizeof v);
    p += sizeof v;
    return v;
  }
  const std::byte* bytes(std::uint64_t len) {
    // Unsigned compare: a corrupt length with the top bit set must trip the
    // check, not wrap a signed cast past it (end >= p by construction).
    if (static_cast<std::uint64_t>(end - p) < len) {
      throw std::runtime_error("truncated worker stream");
    }
    const std::byte* at = p;
    p += len;
    return at;
  }
};

}  // namespace

Launcher::Launcher(std::uint32_t num_shards, std::uint32_t processes)
    : k_(std::max(1u, num_shards)), p_(std::max(1u, processes)) {
  if (p_ > k_) p_ = k_;  // a worker with zero shards would be pure overhead
}

std::pair<ShardId, ShardId> Launcher::group(std::uint32_t p) const {
  // Ceil-balanced contiguous ranges: the first (k mod p) groups are one
  // shard larger. Pure function of (K, P) — part of the determinism story.
  const std::uint32_t base = k_ / p_;
  const std::uint32_t extra = k_ % p_;
  const std::uint32_t first = p * base + std::min(p, extra);
  const std::uint32_t size = base + (p < extra ? 1 : 0);
  return {first, first + size};
}

std::uint32_t Launcher::process_of(ShardId s) const {
  const std::uint32_t base = k_ / p_;
  const std::uint32_t extra = k_ % p_;
  const std::uint32_t boundary = extra * (base + 1);  // end of the big groups
  if (s < boundary) return s / (base + 1);
  return extra + (s - boundary) / base;
}

std::unique_ptr<Transport> Launcher::make_transport(
    const TransportOptions& opts, std::uint32_t num_shards) {
  if (opts.kind == TransportKind::kProcess) {
    return std::make_unique<ProcessTransport>(
        Launcher(num_shards, opts.processes));
  }
  return std::make_unique<LocalTransport>();
}

TransportStats LocalTransport::run_compute(const SuperstepPlan& plan) {
  const auto k = static_cast<std::int64_t>(plan.num_shards);
#pragma omp parallel for schedule(dynamic, 1)
  for (std::int64_t s = 0; s < k; ++s) {
    plan.compute(static_cast<ShardId>(s));
  }
  return {};  // nothing crossed a process boundary
}

TransportStats ProcessTransport::run_compute(const SuperstepPlan& plan) {
  TransportStats out;
  const std::uint32_t procs = launcher_.processes();
  std::vector<int> rx(procs, -1);
  std::vector<pid_t> pids(procs, -1);
  // First failure anywhere; recorded, not thrown, until every spawned
  // worker is drained/closed and reaped — a mid-spawn fork failure must not
  // leak the earlier workers' fds or leave them blocked and unreaped.
  std::string error;

  // Phase A: fork one worker per group. The child inherits a copy-on-write
  // snapshot of the whole coordinator — exactly the step-start state the BSP
  // contract lets compute read — runs its shards sequentially (the P workers
  // are the parallelism; OpenMP regions are not safe in a forked child),
  // streams its frames, and _exits without touching shared stdio/atexit
  // state. Wire format, per shard in group order:
  //   [u64 row_len][row bytes from encode_row][u64 shard counter]
  for (std::uint32_t p = 0; p < procs && error.empty(); ++p) {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      error = std::string("socketpair: ") + std::strerror(errno);
      break;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      error = std::string("fork: ") + std::strerror(errno);
      ::close(fds[0]);
      ::close(fds[1]);
      break;
    }
    if (pid == 0) {
      // Worker. fd hygiene: drop the read end and every earlier worker's
      // inherited read end (harmless for EOF semantics, but tidy).
      ::close(fds[0]);
      for (std::uint32_t q = 0; q < p; ++q) ::close(rx[q]);
      int status = 0;
      try {
        const auto [first, last] = launcher_.group(p);
        for (ShardId s = first; s < last; ++s) plan.compute(s);
        std::vector<std::byte> frames;
        std::vector<std::byte> row;
        for (ShardId s = first; s < last; ++s) {
          row.clear();
          plan.encode_row(s, row);
          append_u64(frames, row.size());
          frames.insert(frames.end(), row.begin(), row.end());
          append_u64(frames, plan.shard_counters.empty()
                                 ? 0
                                 : plan.shard_counters[s]);
        }
        if (!write_all(fds[1], frames.data(), frames.size())) status = 3;
      } catch (...) {
        status = 2;  // compute threw; the coordinator turns this into one
      }                // "worker failed" error after reaping
      ::close(fds[1]);
      ::_exit(status);
    }
    ::close(fds[1]);  // coordinator keeps only the read end
    rx[p] = fds[0];
    pids[p] = pid;
  }

  // Phase B: collect every spawned worker's stream and reassemble rows *by
  // shard id*, so delivery order is independent of process scheduling. Once
  // an error is recorded, remaining streams are not decoded — closing the
  // read end unblocks (and terminates, via SIGPIPE/EPIPE) a writer that
  // nobody will read — but every fd is closed and every child reaped before
  // the one error is finally thrown.
  for (std::uint32_t p = 0; p < procs; ++p) {
    if (rx[p] < 0) continue;  // never spawned (mid-spawn failure)
    if (error.empty()) {
      try {
        const std::vector<std::byte> stream = read_to_eof(rx[p]);
        out.wire_bytes += stream.size();
        Reader r{stream.data(), stream.data() + stream.size()};
        const auto [first, last] = launcher_.group(p);
        for (ShardId s = first; s < last; ++s) {
          const std::uint64_t row_len = r.u64();
          out.wire_messages += plan.decode_row(s, r.bytes(row_len), row_len);
          const std::uint64_t counter = r.u64();
          if (!plan.shard_counters.empty()) plan.shard_counters[s] = counter;
        }
      } catch (const std::exception& e) {
        error = e.what();
      }
    }
    ::close(rx[p]);
  }
  std::string worker_error;
  for (std::uint32_t p = 0; p < procs; ++p) {
    if (pids[p] < 0) continue;
    int status = 0;
    pid_t r;
    do {
      r = ::waitpid(pids[p], &status, 0);
    } while (r < 0 && errno == EINTR);
    if (worker_error.empty() &&
        (r < 0 || !WIFEXITED(status) || WEXITSTATUS(status) != 0)) {
      const char* why =
          r >= 0 && WIFEXITED(status) && WEXITSTATUS(status) == 2
              ? "compute threw in worker "
          : r >= 0 && WIFEXITED(status) && WEXITSTATUS(status) == 3
              ? "socket write failed in worker "
              : "worker died: worker ";
      worker_error = why + std::to_string(p);
    }
  }
  // A dead worker explains a truncated/short stream, never the other way
  // around — report the root cause, not the symptom the reader saw first.
  if (!worker_error.empty()) error = worker_error;
  if (!error.empty()) throw std::runtime_error("ProcessTransport: " + error);
  return out;
}

}  // namespace gdiam::mr
