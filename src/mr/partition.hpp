#pragma once
// Graph partitioning for the BSP execution engine (mr/bsp_engine.hpp).
//
// A Partition splits a Graph into K *edge-complete* shards modeling the
// paper's MR(M_T, M_L) reducers: every node is owned by exactly one shard and
// every directed arc (u, v) is stored in exactly one shard — the owner of its
// source u. Undirected edges therefore appear as two arcs in (up to) two
// shards, exactly mirroring the flat CSR where each edge is stored twice.
//
// Each shard re-numbers the nodes it touches with contiguous *local* ids:
//   [0, num_owned)                      — owned nodes, in ascending global id
//   [num_owned, num_owned + num_ghosts) — ghosts: remote endpoints of owned
//                                         arcs, ascending global id
// so shard-local state lives in dense arrays and a message for a remote node
// can be addressed by the destination shard's local id without a lookup on
// the receiving side. The ghost table maps each ghost back to its global id
// and owner shard; it is the shard's "routing table" for outgoing messages.
//
// Two partitioners are provided:
//   * kHash  — owner(u) = mix64(u) mod K: destroys locality, balances node
//     counts; the adversarial baseline for communication-volume experiments.
//   * kRange — owner(u) = contiguous id range: preserves whatever locality
//     the node numbering has (meshes and roads number neighbors closely),
//     the favorable baseline.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace gdiam::mr {

using ShardId = std::uint32_t;

enum class PartitionStrategy { kHash, kRange };

struct PartitionOptions {
  std::uint32_t num_partitions = 1;
  PartitionStrategy strategy = PartitionStrategy::kHash;
};

/// One shard: the owned slice of the graph in CSR form over local ids.
struct Shard {
  ShardId id = 0;
  /// Owned nodes; local ids [0, num_owned) map to global_of_local[0..).
  NodeId num_owned = 0;
  /// CSR over owned nodes only; targets_ are *local* ids (owned or ghost).
  std::vector<EdgeIndex> offsets;  // size num_owned + 1
  std::vector<NodeId> targets;     // local ids
  std::vector<Weight> weights;     // aligned with targets
  /// Local id -> global id, for owned nodes then ghosts (each ascending).
  std::vector<NodeId> global_of_local;
  /// Owner shard of each ghost, indexed by (local id - num_owned).
  std::vector<ShardId> ghost_owner;

  [[nodiscard]] NodeId num_ghosts() const noexcept {
    return static_cast<NodeId>(global_of_local.size()) - num_owned;
  }
  [[nodiscard]] bool is_ghost(NodeId local) const noexcept {
    return local >= num_owned;
  }
  [[nodiscard]] EdgeIndex num_arcs() const noexcept {
    return offsets.empty() ? 0 : offsets.back();
  }
};

/// Immutable owner mapping + per-shard subgraphs. Built once per graph and
/// shared read-only by all BSP rounds (like the Graph itself).
class Partition {
 public:
  /// Splits g into opts.num_partitions shards (clamped to [1, max(n, 1)]).
  explicit Partition(const Graph& g, const PartitionOptions& opts = {});

  [[nodiscard]] std::uint32_t num_partitions() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] PartitionStrategy strategy() const noexcept {
    return strategy_;
  }

  /// Shard owning the global node u.
  [[nodiscard]] ShardId owner(NodeId u) const noexcept { return owner_[u]; }

  /// Local id of u within its owner shard.
  [[nodiscard]] NodeId local_id(NodeId u) const noexcept {
    return local_of_global_[u];
  }

  /// Global id of a shard-local id (owned or ghost).
  [[nodiscard]] NodeId global_id(ShardId s, NodeId local) const noexcept {
    return shards_[s].global_of_local[local];
  }

  [[nodiscard]] const Shard& shard(ShardId s) const noexcept {
    return shards_[s];
  }
  [[nodiscard]] const std::vector<Shard>& shards() const noexcept {
    return shards_;
  }

  /// Owned-node counts of the largest / average shard (partition skew).
  [[nodiscard]] NodeId max_owned() const noexcept;
  [[nodiscard]] EdgeIndex max_arcs() const noexcept;

  /// Checks every structural invariant against the source graph: each node
  /// owned exactly once, each arc stored exactly once by its source's owner,
  /// ghost tables consistent, local ids contiguous and round-tripping.
  [[nodiscard]] bool validate(const Graph& g) const;

 private:
  std::vector<ShardId> owner_;           // size n
  std::vector<NodeId> local_of_global_;  // size n, id within owner shard
  std::vector<Shard> shards_;
  PartitionStrategy strategy_;
};

}  // namespace gdiam::mr
