#include "mr/exchange.hpp"

namespace gdiam::mr {

void record_exchange(RoundStats& stats, const ExchangeCounters& c) noexcept {
  stats.cross_messages += c.cross_messages;
  stats.cross_bytes += c.cross_bytes;
  stats.cross_node_messages += c.cross_node_messages;
  stats.cross_node_bytes += c.cross_node_bytes;
  stats.wire_messages += c.wire_messages;
  stats.wire_bytes += c.wire_bytes;
}

}  // namespace gdiam::mr
