#pragma once
// NUMA-aware shard placement (DESIGN.md §13).
//
// A PlacementPlan maps the K shards of an mr::Partition onto the NUMA nodes
// of a topology (util/topology.hpp). The plan is a *pure function* of
// (topology, K, strategy) — no load feedback, no randomness — which is what
// lets every layer agree on it independently: the Launcher groups workers by
// it, the transports bind compute by it, exec::Context first-touches shard
// layouts by it, and the Exchange tallies cross-node traffic by it, all
// without passing a shared object around. Crucially, placement never touches
// *what* is computed: distances, labels, estimates and every model-level
// counter are bit-identical across strategies and topologies (pinned by
// tests/test_topology.cpp); only where memory lands, where threads run, and
// the placement-derived cross_node_* observability counters move.
//
// Strategies:
//   * kNone       — the pre-placement behavior, verbatim: no plan, no
//                   binding, no cross-node accounting. The default.
//   * kRoundRobin — shard s lives on node s mod N. Spreads consecutive
//                   shards (which a range partition makes neighbors) across
//                   nodes, balancing bandwidth at the cost of locality.
//   * kCapacity   — capacity-balanced: shards are assigned, in ascending
//                   id order, each to the node with the lowest
//                   (assigned + 1) / cpu_count ratio (ties to the lower node
//                   id). On homogeneous nodes this interleaves like
//                   round-robin; on asymmetric masks (cgroup carve-outs,
//                   emulated specs) big nodes take proportionally more
//                   shards.

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "mr/partition.hpp"
#include "util/topology.hpp"

namespace gdiam::mr {

enum class PlacementStrategy : std::uint8_t { kNone, kRoundRobin, kCapacity };

[[nodiscard]] constexpr const char* to_string(PlacementStrategy s) noexcept {
  switch (s) {
    case PlacementStrategy::kNone: return "none";
    case PlacementStrategy::kRoundRobin: return "round-robin";
    case PlacementStrategy::kCapacity: return "capacity";
  }
  return "?";
}

/// "none" / "round-robin" / "capacity" → strategy; nullopt on anything else
/// (callers own the error message — CLI usage() vs daemon bad_request).
[[nodiscard]] std::optional<PlacementStrategy> parse_placement_strategy(
    std::string_view name) noexcept;

/// The placement knob carried by exec::ExecOptions (and inherited by every
/// kernel option struct): which strategy maps shards onto the discovered
/// topology. Only the partitioned BSP backends read it.
struct PlacementOptions {
  PlacementStrategy strategy = PlacementStrategy::kNone;

  friend bool operator==(const PlacementOptions&,
                         const PlacementOptions&) = default;
};

/// The materialized shard→node map plus the node CPU lists binding needs.
/// Default-constructed (or strategy kNone) plans are *inactive*: node_of()
/// is 0 everywhere, fingerprint() is 0, and every consumer behaves exactly
/// as before placement existed.
class PlacementPlan {
 public:
  PlacementPlan() = default;

  /// Builds the plan for `num_shards` shards on `topo` under `strategy`.
  /// Pure and deterministic (see the header comment); kNone — or an empty
  /// topology — yields an inactive plan.
  static PlacementPlan make(const util::topo::Topology& topo,
                            std::uint32_t num_shards,
                            PlacementStrategy strategy);

  [[nodiscard]] bool active() const noexcept {
    return !node_of_shard_.empty();
  }
  [[nodiscard]] std::uint32_t num_shards() const noexcept {
    return static_cast<std::uint32_t>(node_of_shard_.size());
  }
  [[nodiscard]] std::uint32_t num_nodes() const noexcept {
    return active() ? static_cast<std::uint32_t>(cpus_of_node_.size()) : 1;
  }

  /// NUMA node owning shard `s` (0 when inactive).
  [[nodiscard]] std::uint32_t node_of(ShardId s) const noexcept {
    return s < node_of_shard_.size() ? node_of_shard_[s] : 0;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& node_of_shard()
      const noexcept {
    return node_of_shard_;
  }
  /// CPUs of `node`; empty when inactive (binding becomes a no-op).
  [[nodiscard]] const std::vector<int>& cpus_of_node(
      std::uint32_t node) const noexcept {
    static const std::vector<int> kEmpty;
    return node < cpus_of_node_.size() ? cpus_of_node_[node] : kEmpty;
  }

  /// Pure function of (topology, K, strategy); 0 iff inactive. Feeds the
  /// exec::Context layout-cache keys so arrays first-touched for one
  /// placement are never served to another.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }

  friend bool operator==(const PlacementPlan&, const PlacementPlan&) = default;

 private:
  std::vector<std::uint32_t> node_of_shard_;
  std::vector<std::vector<int>> cpus_of_node_;
  std::uint64_t fingerprint_ = 0;
};

/// The one-call entry point kernels use: discovers the topology
/// (GDIAM_TOPOLOGY override honored) and builds the plan for `num_shards`.
/// kNone short-circuits to an inactive plan without touching discovery.
[[nodiscard]] PlacementPlan resolve_placement(const PlacementOptions& opts,
                                              std::uint32_t num_shards);

/// Fingerprint of what resolve_placement would produce, without fixing a
/// shard count: hash of (strategy, discovered topology), 0 for kNone. The
/// exec::Context mixes this into every layout-cache key — including the
/// K-independent flat SplitCsr cache — so a --placement or GDIAM_TOPOLOGY
/// change can never be served arrays first-touched under the old plan.
[[nodiscard]] std::uint64_t placement_fingerprint(
    const PlacementOptions& opts);

}  // namespace gdiam::mr
