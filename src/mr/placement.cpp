#include "mr/placement.hpp"

#include "util/rng.hpp"

namespace gdiam::mr {

std::optional<PlacementStrategy> parse_placement_strategy(
    std::string_view name) noexcept {
  if (name == "none") return PlacementStrategy::kNone;
  if (name == "round-robin") return PlacementStrategy::kRoundRobin;
  if (name == "capacity") return PlacementStrategy::kCapacity;
  return std::nullopt;
}

PlacementPlan PlacementPlan::make(const util::topo::Topology& topo,
                                  std::uint32_t num_shards,
                                  PlacementStrategy strategy) {
  PlacementPlan plan;
  if (strategy == PlacementStrategy::kNone || topo.num_nodes() == 0 ||
      num_shards == 0) {
    return plan;  // inactive
  }
  const std::uint32_t nodes = topo.num_nodes();
  plan.cpus_of_node_ = topo.cpus_of_node;
  plan.node_of_shard_.resize(num_shards);
  if (strategy == PlacementStrategy::kRoundRobin) {
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      plan.node_of_shard_[s] = s % nodes;
    }
  } else {
    // Capacity-balanced greedy: each shard (ascending id) goes to the node
    // with the lowest prospective load-per-CPU; ties break to the lower node
    // id. Deterministic, and proportional to CPU counts in the limit.
    std::vector<std::uint32_t> assigned(nodes, 0);
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      std::uint32_t best = 0;
      double best_ratio = 0.0;
      for (std::uint32_t n = 0; n < nodes; ++n) {
        const double cap =
            static_cast<double>(std::max<std::size_t>(1, topo.cpus(n).size()));
        const double ratio = static_cast<double>(assigned[n] + 1) / cap;
        if (n == 0 || ratio < best_ratio) {
          best = n;
          best_ratio = ratio;
        }
      }
      plan.node_of_shard_[s] = best;
      ++assigned[best];
    }
  }
  // Fingerprint: chain (strategy, K, topology structure). Never 0 for an
  // active plan — 0 is the inactive sentinel the cache keys rely on.
  std::uint64_t h = topo.fingerprint();
  h = util::SplitMix64(h ^ static_cast<std::uint64_t>(strategy)).next();
  h = util::SplitMix64(h ^ num_shards).next();
  plan.fingerprint_ = h == 0 ? 1 : h;
  return plan;
}

PlacementPlan resolve_placement(const PlacementOptions& opts,
                                std::uint32_t num_shards) {
  if (opts.strategy == PlacementStrategy::kNone) return {};
  return PlacementPlan::make(util::topo::discover(), num_shards,
                             opts.strategy);
}

std::uint64_t placement_fingerprint(const PlacementOptions& opts) {
  if (opts.strategy == PlacementStrategy::kNone) return 0;
  const std::uint64_t h =
      util::SplitMix64(util::topo::discover().fingerprint() ^
                       static_cast<std::uint64_t>(opts.strategy))
          .next();
  return h == 0 ? 1 : h;
}

}  // namespace gdiam::mr
