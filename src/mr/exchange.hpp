#pragma once
// Typed message exchange for one BSP superstep (mr/bsp_engine.hpp).
//
// During local compute each shard stages messages addressed to other shards;
// seal() plays the role of the round barrier: it concatenates every mailbox
// into per-destination inboxes in deterministic (source-shard ascending)
// order and tallies the traffic — message count and serialized payload bytes,
// split into total and *cross-partition* (source != destination). The cross
// counters are what a real MR/Spark shuffle would put on the wire; they feed
// the extended RoundStats (mr/stats.hpp) and the Figure 5 partition bench.
//
// Staging is lock-free by construction, the same way util::ThreadBuffers
// makes flat kernels lock-free: every source shard stages into a private
// row of destination-tagged messages, and the BSP engine runs one shard's
// compute on one thread, so no two threads ever append to the same vector.
// (Rows are tagged rather than a dense K×K matrix so memory stays
// O(K + messages) — --partitions is only clamped to n.) Delivery order is a
// pure function of (source shard, staging order), never of thread
// scheduling — the determinism contract every gdiam kernel follows.

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "mr/partition.hpp"
#include "mr/stats.hpp"

namespace gdiam::mr {

/// Traffic tally of one sealed exchange.
struct ExchangeCounters {
  std::uint64_t messages = 0;        // everything staged
  std::uint64_t bytes = 0;           // messages * sizeof(Msg)
  std::uint64_t cross_messages = 0;  // staged with source != destination
  std::uint64_t cross_bytes = 0;

  ExchangeCounters& operator+=(const ExchangeCounters& o) noexcept {
    messages += o.messages;
    bytes += o.bytes;
    cross_messages += o.cross_messages;
    cross_bytes += o.cross_bytes;
    return *this;
  }
  friend bool operator==(const ExchangeCounters&,
                         const ExchangeCounters&) = default;
};

/// Adds the cross-partition traffic of one sealed exchange to `stats`
/// (shard-internal messages never leave a worker, so only cross traffic
/// counts as communication volume).
void record_exchange(RoundStats& stats, const ExchangeCounters& c) noexcept;

/// Per-superstep mailbox matrix for messages of type Msg (a trivially
/// copyable value type; sizeof(Msg) is the serialized size). Lifecycle:
///   send(from, to, m)*  ->  seal()  ->  inbox(to)*  ->  clear()
template <typename Msg>
class Exchange {
  static_assert(std::is_trivially_copyable_v<Msg>,
                "exchange messages are serialized by memcpy semantics");

 public:
  Exchange() = default;
  explicit Exchange(std::uint32_t num_partitions) { resize(num_partitions); }

  void resize(std::uint32_t num_partitions) {
    k_ = num_partitions;
    rows_.assign(k_, {});
    inbox_.assign(k_, {});
    sealed_ = false;
  }

  [[nodiscard]] std::uint32_t num_partitions() const noexcept { return k_; }

  /// Stages one message. Only the thread computing shard `from` may call
  /// this with that `from` (the BSP engine guarantees it).
  void send(ShardId from, ShardId to, const Msg& m) {
    rows_[from].push_back(Tagged{to, m});
  }

  /// The barrier: routes staged rows into per-destination inboxes in
  /// source-shard ascending order and returns the traffic tally.
  ExchangeCounters seal() {
    ExchangeCounters c;
    // Pre-size the inboxes so routing appends without reallocation.
    std::vector<std::size_t> counts(k_, 0);
    for (const auto& row : rows_) {
      for (const Tagged& t : row) counts[t.to]++;
    }
    for (ShardId to = 0; to < k_; ++to) {
      inbox_[to].clear();
      inbox_[to].reserve(counts[to]);
    }
    for (ShardId from = 0; from < k_; ++from) {
      for (const Tagged& t : rows_[from]) {
        inbox_[t.to].push_back(t.msg);
        c.messages++;
        c.bytes += sizeof(Msg);
        if (from != t.to) {
          c.cross_messages++;
          c.cross_bytes += sizeof(Msg);
        }
      }
    }
    sealed_ = true;
    return c;
  }

  /// Messages addressed to shard `to`; valid after seal(), until clear().
  [[nodiscard]] std::span<const Msg> inbox(ShardId to) const noexcept {
    return inbox_[to];
  }

  [[nodiscard]] bool sealed() const noexcept { return sealed_; }

  /// Messages currently staged (pre-seal; used by tests and assertions).
  [[nodiscard]] std::uint64_t staged() const noexcept {
    std::uint64_t total = 0;
    for (const auto& row : rows_) total += row.size();
    return total;
  }

  /// Empties mailboxes and inboxes, ready for the next superstep. Capacity
  /// is kept so steady-state rounds allocate nothing.
  void clear() noexcept {
    for (auto& row : rows_) row.clear();
    for (auto& in : inbox_) in.clear();
    sealed_ = false;
  }

 private:
  struct Tagged {
    ShardId to;
    Msg msg;
  };

  std::uint32_t k_ = 0;
  std::vector<std::vector<Tagged>> rows_;  // one staging row per source
  std::vector<std::vector<Msg>> inbox_;    // filled by seal()
  bool sealed_ = false;
};

}  // namespace gdiam::mr
