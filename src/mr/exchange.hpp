#pragma once
// Typed message exchange for one BSP superstep (mr/bsp_engine.hpp).
//
// During local compute each shard stages messages addressed to other shards;
// seal() plays the role of the round barrier: it concatenates every mailbox
// into per-destination inboxes in deterministic (source-shard ascending)
// order and tallies the traffic — message count and serialized payload bytes,
// split into total and *cross-partition* (source != destination). The cross
// counters are what a real MR/Spark shuffle would put on the wire; they feed
// the extended RoundStats (mr/stats.hpp) and the Figure 5 partition bench.
//
// Staging is lock-free by construction, the same way util::ThreadBuffers
// makes flat kernels lock-free: every source shard stages into a private
// row of destination-tagged messages, and the BSP engine runs one shard's
// compute on one thread, so no two threads ever append to the same vector.
// (Rows are tagged rather than a dense K×K matrix so memory stays
// O(K + messages) — --partitions is only clamped to n.) Delivery order is a
// pure function of (source shard, staging order), never of thread
// scheduling — the determinism contract every gdiam kernel follows.
//
// Remote-compute transports (mr/transport.hpp, DESIGN.md §9) add two things:
//
//   * a *loopback* channel — under ProcessTransport a shard's compute runs
//     in a forked worker whose writes to coordinator state are lost, so the
//     direct owned-state writes of the single-process path (lowering an
//     owned distance slot, folding an owned label proposal) are staged as
//     loopback(s, m) records instead. seal() delivers a shard's loopback
//     records at the *front* of its inbox — mirroring that in-process
//     compute applies owned effects before apply folds the routed traffic —
//     and excludes them from the model-level counters (they stand in for
//     memory writes, so tallying them would make messages/bytes depend on
//     the transport; the wire counters are where they show up).
//   * encode_row/decode_row — the byte (de)serialization a transport uses to
//     move one source shard's staged row (loopback + routed) between
//     address spaces. Decoding reassembles by shard id, so sealed delivery
//     order is transport-invariant.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "mr/partition.hpp"
#include "mr/stats.hpp"

namespace gdiam::mr {

/// Traffic tally of one sealed exchange. The first four fields are the
/// *model-level* view (identical under every transport — parity suites
/// compare them bit-for-bit); the wire fields report what actually crossed a
/// process boundary, filled by the BSP engine from the transport's stats.
struct ExchangeCounters {
  std::uint64_t messages = 0;        // everything staged via send()
  std::uint64_t bytes = 0;           // messages * sizeof(Msg)
  std::uint64_t cross_messages = 0;  // staged with source != destination
  std::uint64_t cross_bytes = 0;
  std::uint64_t cross_node_messages = 0;  // cross shards on different NUMA
  std::uint64_t cross_node_bytes = 0;     // nodes (set_node_map; else 0)
  std::uint64_t wire_messages = 0;   // records shipped between processes
  std::uint64_t wire_bytes = 0;      // bytes read back from workers

  ExchangeCounters& operator+=(const ExchangeCounters& o) noexcept {
    messages += o.messages;
    bytes += o.bytes;
    cross_messages += o.cross_messages;
    cross_bytes += o.cross_bytes;
    cross_node_messages += o.cross_node_messages;
    cross_node_bytes += o.cross_node_bytes;
    wire_messages += o.wire_messages;
    wire_bytes += o.wire_bytes;
    return *this;
  }
  friend bool operator==(const ExchangeCounters&,
                         const ExchangeCounters&) = default;
};

/// Adds the cross-partition and cross-process traffic of one sealed exchange
/// to `stats` (shard-internal messages never leave a worker, so only cross
/// traffic counts as communication volume).
void record_exchange(RoundStats& stats, const ExchangeCounters& c) noexcept;

/// Per-superstep mailbox matrix for messages of type Msg (a trivially
/// copyable value type; sizeof(Msg) is the serialized size). Lifecycle:
///   send(from, to, m)* / loopback(s, m)*  ->  seal()  ->  inbox(to)*
///   ->  clear()
template <typename Msg>
class Exchange {
  static_assert(std::is_trivially_copyable_v<Msg>,
                "exchange messages are serialized by memcpy semantics");

 public:
  Exchange() = default;
  explicit Exchange(std::uint32_t num_partitions) { resize(num_partitions); }

  void resize(std::uint32_t num_partitions) {
    k_ = num_partitions;
    rows_.assign(k_, {});
    loop_.assign(k_, {});
    inbox_.assign(k_, {});
    node_of_.clear();  // a stale map would misindex the new shard count
    sealed_ = false;
  }

  /// Installs the placement plan's shard→node map (mr/placement.hpp) so
  /// seal() can classify cross-partition traffic that also crosses a NUMA
  /// node. Empty (the default) disables the classification — the
  /// cross_node_* counters stay 0, the pre-placement behavior. A non-empty
  /// map must have one entry per shard.
  void set_node_map(std::vector<std::uint32_t> node_of_shard) {
    node_of_ = std::move(node_of_shard);
  }

  [[nodiscard]] std::uint32_t num_partitions() const noexcept { return k_; }

  /// Stages one message. Only the thread computing shard `from` may call
  /// this with that `from` (the BSP engine guarantees it).
  void send(ShardId from, ShardId to, const Msg& m) {
    rows_[from].push_back(Tagged{to, m});
  }

  /// Stages a remote-compute stand-in for a direct owned-state write: shard
  /// `s`'s compute addressing its *own* node. Delivered at the front of s's
  /// inbox (before any routed traffic) and excluded from the model-level
  /// counters — see the header comment. Same single-writer rule as send().
  void loopback(ShardId s, const Msg& m) { loop_[s].push_back(m); }

  /// The barrier: routes staged rows into per-destination inboxes —
  /// loopback records first, then routed records in source-shard ascending
  /// order — and returns the traffic tally.
  ExchangeCounters seal() {
    ExchangeCounters c;
    // Pre-size the inboxes so routing appends without reallocation.
    std::vector<std::size_t> counts(k_, 0);
    for (ShardId s = 0; s < k_; ++s) counts[s] = loop_[s].size();
    for (const auto& row : rows_) {
      for (const Tagged& t : row) counts[t.to]++;
    }
    for (ShardId to = 0; to < k_; ++to) {
      inbox_[to].clear();
      inbox_[to].reserve(counts[to]);
      inbox_[to].insert(inbox_[to].end(), loop_[to].begin(), loop_[to].end());
    }
    const bool node_map = node_of_.size() == k_;
    for (ShardId from = 0; from < k_; ++from) {
      for (const Tagged& t : rows_[from]) {
        inbox_[t.to].push_back(t.msg);
        c.messages++;
        c.bytes += sizeof(Msg);
        if (from != t.to) {
          c.cross_messages++;
          c.cross_bytes += sizeof(Msg);
          // The NUMA view of the same record: a cross-partition message
          // whose endpoints the placement plan put on different nodes.
          if (node_map && node_of_[from] != node_of_[t.to]) {
            c.cross_node_messages++;
            c.cross_node_bytes += sizeof(Msg);
          }
        }
      }
    }
    sealed_ = true;
    return c;
  }

  /// Messages addressed to shard `to`; valid after seal(), until clear().
  [[nodiscard]] std::span<const Msg> inbox(ShardId to) const noexcept {
    return inbox_[to];
  }

  [[nodiscard]] bool sealed() const noexcept { return sealed_; }

  /// Messages currently staged via send() (pre-seal; tests and assertions).
  [[nodiscard]] std::uint64_t staged() const noexcept {
    std::uint64_t total = 0;
    for (const auto& row : rows_) total += row.size();
    return total;
  }

  /// Loopback records currently staged (pre-seal; tests and assertions).
  [[nodiscard]] std::uint64_t loopback_staged() const noexcept {
    std::uint64_t total = 0;
    for (const auto& l : loop_) total += l.size();
    return total;
  }

  /// Serializes shard `s`'s staged row — loopback records, then routed
  /// records with their destination tags — appending to `out`. The format is
  /// consumed only by decode_row of an identically-typed Exchange:
  ///   [u64 loopback_count][Msg * loopback_count][Tagged * remainder]
  void encode_row(ShardId s, std::vector<std::byte>& out) const {
    const std::uint64_t nloop = loop_[s].size();
    const std::size_t base = out.size();
    out.resize(base + sizeof nloop + nloop * sizeof(Msg) +
               rows_[s].size() * sizeof(Tagged));
    std::byte* p = out.data() + base;
    std::memcpy(p, &nloop, sizeof nloop);
    p += sizeof nloop;
    if (nloop != 0) {
      std::memcpy(p, loop_[s].data(), nloop * sizeof(Msg));
      p += nloop * sizeof(Msg);
    }
    if (!rows_[s].empty()) {
      std::memcpy(p, rows_[s].data(), rows_[s].size() * sizeof(Tagged));
    }
  }

  /// Replaces shard `s`'s staged row with a decoded encode_row payload;
  /// returns the number of records decoded. Throws on a malformed length
  /// (a transport framing error, never silent truncation).
  std::uint64_t decode_row(ShardId s, const std::byte* data,
                           std::size_t len) {
    std::uint64_t nloop = 0;
    if (len < sizeof nloop) throw std::invalid_argument("bad exchange row");
    std::memcpy(&nloop, data, sizeof nloop);
    data += sizeof nloop;
    len -= sizeof nloop;
    // Divide, don't multiply: a corrupt count must fail the framing check,
    // not wrap the nloop * sizeof(Msg) product past it.
    if (nloop > len / sizeof(Msg) ||
        (len - nloop * sizeof(Msg)) % sizeof(Tagged) != 0) {
      throw std::invalid_argument("bad exchange row");
    }
    loop_[s].resize(nloop);
    if (nloop != 0) std::memcpy(loop_[s].data(), data, nloop * sizeof(Msg));
    data += nloop * sizeof(Msg);
    len -= nloop * sizeof(Msg);
    rows_[s].resize(len / sizeof(Tagged));
    if (len != 0) std::memcpy(rows_[s].data(), data, len);
    return nloop + rows_[s].size();
  }

  /// Empties shard `s`'s staged row (send + loopback) only. A resident pool
  /// worker (mr/transport.hpp PoolTransport) never runs seal()/clear() — the
  /// coordinator does — so before each compute it drops the stale staging
  /// its copy of the exchange accumulated in the previous superstep.
  void clear_row(ShardId s) noexcept {
    rows_[s].clear();
    loop_[s].clear();
  }

  /// Empties mailboxes and inboxes, ready for the next superstep. Capacity
  /// is kept so steady-state rounds allocate nothing.
  void clear() noexcept {
    for (auto& row : rows_) row.clear();
    for (auto& l : loop_) l.clear();
    for (auto& in : inbox_) in.clear();
    sealed_ = false;
  }

 private:
  struct Tagged {
    ShardId to;
    Msg msg;
  };

  std::uint32_t k_ = 0;
  std::vector<std::vector<Tagged>> rows_;  // one staging row per source
  std::vector<std::vector<Msg>> loop_;     // remote owned-write stand-ins
  std::vector<std::vector<Msg>> inbox_;    // filled by seal()
  std::vector<std::uint32_t> node_of_;     // placement map (empty = off)
  bool sealed_ = false;
};

}  // namespace gdiam::mr
