#pragma once
// Bulk-Synchronous-Parallel superstep driver over a Partition.
//
// One superstep is exactly one round in the paper's MR(M_T, M_L) model:
//
//   1. local compute — every shard reads/writes only its own state and
//      stages messages for other shards in an Exchange. *Where* this phase
//      runs is the Transport's business (mr/transport.hpp): LocalTransport
//      uses one OpenMP thread per shard, ProcessTransport forks worker
//      processes and ships the staged rows back over sockets;
//   2. exchange      — the barrier: Exchange::seal() delivers all mailboxes
//      in deterministic order and tallies the traffic;
//   3. apply         — every shard, in parallel, folds its inbox into its
//      local state (always in the coordinating process).
//
// The engine is the execution substrate the flat OpenMP kernels stand in for
// (DESIGN.md §5): the same relaxation logic, but with the communication that
// a Spark/MR deployment would pay made explicit and measurable. Algorithms
// (core/growing.cpp kPartitioned, sssp/delta_stepping.cpp) supply compute
// and apply callbacks; the engine supplies parallelism, the barrier, round
// counting, and RoundStats traffic recording.
//
// Determinism: a shard's compute runs on exactly one thread (or one worker
// process), so mailbox rows are single-writer; seal() orders delivery by
// source shard (loopback records first — see mr/exchange.hpp); apply is
// again one thread per shard. The outcome is a pure function of shard states
// and staging order — independent of thread count, process count and
// scheduling (DESIGN.md §9 spells out the contract per transport).

#include <cstdint>
#include <span>
#include <string>

#include <omp.h>

#include "mr/exchange.hpp"
#include "mr/partition.hpp"
#include "mr/stats.hpp"
#include "mr/transport.hpp"

namespace gdiam::mr {

/// Per-superstep input codec for resident-worker transports (PoolTransport).
/// A pool worker is forked once and keeps computing with closures frozen at
/// fork time, so everything compute reads that *changes between supersteps*
/// must be shipped through this codec instead of assumed visible:
///
///   encode — coordinator side, serializes shard `s`'s step input;
///   decode — worker side (a frozen closure), installs the bytes into
///            storage whose address was stable at fork time (members, round
///            buffers) so the frozen compute closure reads the fresh values;
///   epoch  — version of the *non-shipped* resident state compute reads
///            (presplit layout, blocked sets). Bump it on mutation and the
///            pool re-snapshots the workers.
///
/// Algorithms that don't supply a codec still run correctly under a pool —
/// the transport falls back to respawning workers every superstep.
struct StepInputCodec {
  std::function<void(ShardId, std::vector<std::byte>&)> encode;
  std::function<void(ShardId, const std::byte*, std::size_t)> decode;
  std::uint64_t epoch = 0;
};

class BspEngine {
 public:
  /// The partition — and the transport, when given — must outlive the
  /// engine (same contract as Graph&). A null transport selects the built-in
  /// LocalTransport: PR 1's in-process path, verbatim.
  explicit BspEngine(const Partition& partition,
                     Transport* transport = nullptr)
      : partition_(partition),
        transport_(transport != nullptr ? transport : &local_) {}

  [[nodiscard]] const Partition& partition() const noexcept {
    return partition_;
  }

  [[nodiscard]] Transport& transport() const noexcept { return *transport_; }

  /// True when compute callbacks run in a worker process: their writes to
  /// coordinator state are lost, so algorithms must stage owned-state
  /// effects via Exchange::loopback and counters via `shard_counters`.
  [[nodiscard]] bool remote_compute() const noexcept {
    return transport_->remote_compute();
  }

  /// True when workers stay resident across supersteps (PoolTransport):
  /// algorithms should pass a StepInputCodec to superstep() so per-step
  /// inputs travel by wire, and bump its epoch when resident state mutates.
  [[nodiscard]] bool resident_compute() const noexcept {
    return transport_->resident_workers();
  }

  /// Supersteps executed so far (each is one synchronous round).
  [[nodiscard]] std::uint64_t supersteps() const noexcept {
    return supersteps_;
  }

  /// Runs one superstep:
  ///   compute(const Shard&, Exchange<Msg>&)   — stage via ex.send(shard.id, ...)
  ///   apply(const Shard&, std::span<const Msg>) — fold the shard's inbox
  /// Returns the exchange traffic; when `stats` is non-null, records the
  /// cross-partition volume into it (rounds are charged by the caller, which
  /// knows whether the step was a relaxation or an auxiliary phase).
  /// `shard_counters` (empty or one slot per shard, slot s written only by
  /// shard s's compute) travels with the messages under a remote transport,
  /// so per-shard compute tallies survive the process boundary.
  /// `input` (optional) is the resident-worker codec: under PoolTransport
  /// it ships per-superstep inputs to the frozen workers; other transports
  /// ignore it entirely.
  template <typename Msg, typename ComputeFn, typename ApplyFn>
  ExchangeCounters superstep(Exchange<Msg>& ex, ComputeFn&& compute,
                             ApplyFn&& apply, RoundStats* stats = nullptr,
                             std::span<std::uint64_t> shard_counters = {},
                             const StepInputCodec* input = nullptr) {
    const auto k = static_cast<std::int64_t>(partition_.num_partitions());

    // Phase 1: local compute, one thread or worker process per shard
    // (single-writer mailboxes either way). The transport guarantees that
    // afterwards `ex` holds every staged row in this process.
    Transport::SuperstepPlan plan;
    plan.num_shards = partition_.num_partitions();
    plan.compute = [&](ShardId s) { compute(partition_.shard(s), ex); };
    plan.encode_row = [&ex](ShardId s, std::vector<std::byte>& out) {
      ex.encode_row(s, out);
    };
    plan.decode_row = [&ex](ShardId s, const std::byte* data,
                            std::size_t len) {
      return ex.decode_row(s, data, len);
    };
    plan.shard_counters = shard_counters;
    if (input != nullptr) {
      plan.encode_input = input->encode;
      plan.decode_input = input->decode;
      plan.resident_epoch = input->epoch;
    }
    // A resident worker never seals/clears its exchange copy, so it resets
    // each staged row just before recomputing it.
    plan.reset_row = [&ex](ShardId s) { ex.clear_row(s); };
    const TransportStats wire = transport_->run_compute(plan);

    // Phase 2: the barrier — deterministic delivery + traffic accounting.
    ExchangeCounters counters = ex.seal();
    counters.wire_messages = wire.wire_messages;
    counters.wire_bytes = wire.wire_bytes;
    if (stats != nullptr) record_exchange(*stats, counters);

    // Phase 3: fold inboxes, again one thread per shard.
#pragma omp parallel for schedule(dynamic, 1)
    for (std::int64_t s = 0; s < k; ++s) {
      const auto shard_id = static_cast<ShardId>(s);
      apply(partition_.shard(shard_id), ex.inbox(shard_id));
    }

    ex.clear();
    ++supersteps_;
    return counters;
  }

 private:
  const Partition& partition_;
  LocalTransport local_;  // default when no transport is injected
  Transport* transport_;
  std::uint64_t supersteps_ = 0;
};

/// "K=4 hash, owned max/avg 251/250 nodes, arcs max/avg 1520/1500" — the
/// partition-skew summary printed by the Figure 5 bench and the CLI.
[[nodiscard]] std::string describe(const Partition& p);

}  // namespace gdiam::mr
