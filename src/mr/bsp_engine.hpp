#pragma once
// Bulk-Synchronous-Parallel superstep driver over a Partition.
//
// One superstep is exactly one round in the paper's MR(M_T, M_L) model:
//
//   1. local compute — every shard, in parallel, reads/writes only its own
//      state and stages messages for other shards in an Exchange;
//   2. exchange      — the barrier: Exchange::seal() delivers all mailboxes
//      in deterministic order and tallies the traffic;
//   3. apply         — every shard, in parallel, folds its inbox into its
//      local state.
//
// The engine is the execution substrate the flat OpenMP kernels stand in for
// (DESIGN.md §5): the same relaxation logic, but with the communication that
// a Spark/MR deployment would pay made explicit and measurable. Algorithms
// (core/growing.cpp kPartitioned, sssp/delta_stepping.cpp) supply compute
// and apply callbacks; the engine supplies parallelism, the barrier, round
// counting, and RoundStats traffic recording.
//
// Determinism: a shard's compute runs on exactly one thread (the OpenMP loop
// is over shards), so mailbox rows are single-writer; seal() orders delivery
// by source shard; apply is again one thread per shard. The outcome is a
// pure function of shard states and staging order — independent of thread
// count and scheduling.

#include <cstdint>
#include <string>

#include <omp.h>

#include "mr/exchange.hpp"
#include "mr/partition.hpp"
#include "mr/stats.hpp"

namespace gdiam::mr {

class BspEngine {
 public:
  /// The partition must outlive the engine (same contract as Graph&).
  explicit BspEngine(const Partition& partition) : partition_(partition) {}

  [[nodiscard]] const Partition& partition() const noexcept {
    return partition_;
  }

  /// Supersteps executed so far (each is one synchronous round).
  [[nodiscard]] std::uint64_t supersteps() const noexcept {
    return supersteps_;
  }

  /// Runs one superstep:
  ///   compute(const Shard&, Exchange<Msg>&)   — stage via ex.send(shard.id, ...)
  ///   apply(const Shard&, std::span<const Msg>) — fold the shard's inbox
  /// Returns the exchange traffic; when `stats` is non-null, records the
  /// cross-partition volume into it (rounds are charged by the caller, which
  /// knows whether the step was a relaxation or an auxiliary phase).
  template <typename Msg, typename ComputeFn, typename ApplyFn>
  ExchangeCounters superstep(Exchange<Msg>& ex, ComputeFn&& compute,
                             ApplyFn&& apply, RoundStats* stats = nullptr) {
    const auto k = static_cast<std::int64_t>(partition_.num_partitions());

    // Phase 1: local compute, one thread per shard (single-writer mailboxes).
#pragma omp parallel for schedule(dynamic, 1)
    for (std::int64_t s = 0; s < k; ++s) {
      compute(partition_.shard(static_cast<ShardId>(s)), ex);
    }

    // Phase 2: the barrier — deterministic delivery + traffic accounting.
    const ExchangeCounters counters = ex.seal();
    if (stats != nullptr) record_exchange(*stats, counters);

    // Phase 3: fold inboxes, again one thread per shard.
#pragma omp parallel for schedule(dynamic, 1)
    for (std::int64_t s = 0; s < k; ++s) {
      const auto shard_id = static_cast<ShardId>(s);
      apply(partition_.shard(shard_id), ex.inbox(shard_id));
    }

    ex.clear();
    ++supersteps_;
    return counters;
  }

 private:
  const Partition& partition_;
  std::uint64_t supersteps_ = 0;
};

/// "K=4 hash, owned max/avg 251/250 nodes, arcs max/avg 1520/1500" — the
/// partition-skew summary printed by the Figure 5 bench and the CLI.
[[nodiscard]] std::string describe(const Partition& p);

}  // namespace gdiam::mr
