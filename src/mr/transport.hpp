#pragma once
// Pluggable compute/shuffle transport for the BSP engine (DESIGN.md §9).
//
// PRs 1–4 built the seam this file fills: the Exchange is "the only point a
// network transport needs to replace". A Transport owns exactly the part of
// a superstep that depends on *where* shard compute runs and *how* staged
// messages reach the coordinating process:
//
//   run_compute(plan) — executes the algorithm's compute callback for every
//   shard and guarantees that afterwards the coordinator's Exchange holds
//   every staged row (and every per-shard user counter), so the engine can
//   seal and apply exactly as before. Everything downstream of run_compute —
//   deterministic delivery order, traffic tallying, the apply phase — is
//   transport-invariant, which is what makes the backends bit-identical.
//
// Three implementations:
//
//   * LocalTransport — today's path: one OpenMP thread per shard, staging
//     rows are already in the coordinator's memory, nothing is serialized.
//     wire counters stay 0 (a "message" is a cache-line write).
//
//   * ProcessTransport — each superstep forks one worker per process group
//     (Launcher maps K shards onto P workers in contiguous, ceil-balanced
//     groups), runs the group's shard computes in the child, and ships the
//     staged rows + user counters back over an AF_UNIX stream socketpair.
//     The fork gives every worker a copy-on-write snapshot of the
//     coordinator's entire state at superstep start — the OS-enforced
//     version of the BSP contract that compute reads only step-start state.
//     Because the child's writes are invisible to the coordinator, compute
//     must route *all* of its effects through the exchange: under
//     remote_compute() the algorithms replace their direct owned-state
//     writes with Exchange::loopback() records and their direct counter
//     writes with the plan's shard_counters slots. Bytes read back from the
//     workers are the genuinely-crossed `wire_bytes` that feed RoundStats.
//
//   * PoolTransport — resident workers: forks each group's worker ONCE (at
//     the first superstep, so the fork snapshot carries the run's resident
//     layout: partition slice, presplit CSR, the algorithm's scratch) and
//     keeps it alive across supersteps on a persistent socketpair. The
//     coordinator's state keeps evolving after the fork, so the worker's
//     snapshot goes stale in two ways, with two matching mechanisms:
//
//       - per-superstep inputs (the frontier, the active-sender set) change
//         every step → the plan's encode_input/decode_input codec ships
//         them over the socket; decode_input is a closure frozen at fork
//         time that writes the fresh bytes into *stable-address* storage
//         (members, round buffers), then the frozen compute reads them;
//       - fork-time-resident state (a re-resolved presplit, a blocked-set
//         mutation) changes occasionally → the algorithm bumps the plan's
//         resident_epoch and the pool quits + respawns the workers,
//         re-snapshotting the coordinator.
//
//     A plan without an input codec degrades safely: the pool respawns the
//     workers every superstep, which is exactly ProcessTransport semantics.
//     Worker crashes are survivable for the same reason residency is
//     correct at all: under the remote-compute contract a superstep's rows
//     are a pure function of (resident layout, shipped inputs), so the
//     launcher respawns the dead group from current coordinator state and
//     replays just that group's exchange — bit-identical by construction.
//
// Determinism contract (DESIGN.md §9): delivery is a pure function of
// (source shard, staging order). The transport only moves rows between
// address spaces keyed by shard id — it never reorders within a row and the
// coordinator reassembles rows by shard id, not by arrival time — so the
// sealed inboxes are identical under every transport and every P.

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "mr/partition.hpp"
#include "mr/placement.hpp"

namespace gdiam::mr {

enum class TransportKind { kLocal, kProcess, kPool };

/// What a transport throws when a superstep cannot be completed remotely
/// (spawn failure, restart budget exhausted, a worker that fails
/// deterministically). Typed so upper layers can *degrade* instead of die:
/// the serving daemon catches TransportError and transparently re-executes
/// the query on LocalTransport (DESIGN.md §12's degradation ladder) —
/// anything else propagating out of a kernel is a real bug and must not be
/// silently retried.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Transport selection knobs, carried by exec::ExecOptions so one assignment
/// configures a whole pipeline (`--transport process --processes P` in the
/// CLI). `processes` is clamped to the shard count by the Launcher.
struct TransportOptions {
  TransportKind kind = TransportKind::kLocal;
  std::uint32_t processes = 1;

  friend bool operator==(const TransportOptions&,
                         const TransportOptions&) = default;
};

/// What one run_compute actually put on a process boundary: 0/0 for
/// LocalTransport; for ProcessTransport every staged record (including
/// loopback stand-ins for owned-state writes) and every byte read back from
/// the workers' sockets (row payloads + framing + counters).
struct TransportStats {
  std::uint64_t wire_messages = 0;
  std::uint64_t wire_bytes = 0;
};

/// Maps K shards onto P worker processes: ceil-balanced groups (the first
/// K mod P groups take one extra shard), contiguous *in placement order*.
/// Without an active placement plan that order is the shard-id order — the
/// pre-placement behavior verbatim, where contiguity keeps a range
/// partition's locality within one worker. With a plan, shards are ordered
/// by (NUMA node, shard id) before grouping, so worker boundaries align
/// with node boundaries whenever the counts allow: same-node shard pairs
/// share one node-bound worker (the cheap local path) and only the
/// unavoidable remainder of a group straddles nodes. Determinism needs only
/// that the mapping is a pure function of (K, P, plan) — which it is, the
/// plan itself being a pure function of (topology, K, strategy).
class Launcher {
 public:
  Launcher(std::uint32_t num_shards, std::uint32_t processes,
           PlacementPlan plan = {});

  [[nodiscard]] std::uint32_t num_shards() const noexcept { return k_; }
  [[nodiscard]] std::uint32_t processes() const noexcept { return p_; }
  [[nodiscard]] const PlacementPlan& plan() const noexcept { return plan_; }

  /// *Position* range [first, second) owned by worker `p` in placement
  /// order. Without an active plan, positions coincide with shard ids (the
  /// historical contract); with one, use shards_of() — the range indexes the
  /// reordered shard list, not shard ids.
  [[nodiscard]] std::pair<ShardId, ShardId> group(std::uint32_t p) const;

  /// The shards worker `p` owns, in the deterministic order both sides of a
  /// worker socket traverse them (compute, encode, decode).
  [[nodiscard]] std::span<const ShardId> shards_of(std::uint32_t p) const;

  /// The worker that runs shard `s`'s compute.
  [[nodiscard]] std::uint32_t process_of(ShardId s) const;

  /// The NUMA node every shard of group `p` lives on, or -1 when the plan is
  /// inactive or the group straddles nodes (then cpus_of_group is the union
  /// and no single node describes the worker).
  [[nodiscard]] int node_of_group(std::uint32_t p) const;

  /// CPUs worker `p` should bind to: the union of its shards' nodes' CPU
  /// lists. Empty when the plan is inactive (bind nothing).
  [[nodiscard]] std::vector<int> cpus_of_group(std::uint32_t p) const;

  /// Builds the transport `opts` selects for a K-shard engine running under
  /// `plan` (default: inactive — no binding, no reordering).
  [[nodiscard]] static std::unique_ptr<class Transport> make_transport(
      const TransportOptions& opts, std::uint32_t num_shards,
      PlacementPlan plan = {});

 private:
  std::uint32_t k_ = 1;
  std::uint32_t p_ = 1;
  PlacementPlan plan_;
  std::vector<ShardId> order_;      // shards sorted by (node, id)
  std::vector<std::uint32_t> group_of_;  // shard id -> owning worker
};

class Transport {
 public:
  /// The type-erased slice of one superstep the transport must execute. The
  /// typed BspEngine builds one per superstep; the callbacks close over the
  /// algorithm's Exchange<Msg>, so the transport never sees message types.
  struct SuperstepPlan {
    std::uint32_t num_shards = 0;
    /// Runs the algorithm's compute for one shard, staging into the
    /// exchange. Under a remote transport this executes in a worker process
    /// whose writes to shared state are lost — the remote-compute contract.
    std::function<void(ShardId)> compute;
    /// Appends shard `s`'s staged row (loopback + routed records) to `out`
    /// as self-contained bytes.
    std::function<void(ShardId, std::vector<std::byte>&)> encode_row;
    /// Replaces shard `s`'s staged row with decoded bytes; returns the
    /// number of records decoded (the transport's wire_messages tally).
    std::function<std::uint64_t(ShardId, const std::byte*, std::size_t)>
        decode_row;
    /// Optional per-shard user counter (size num_shards or empty): slot s is
    /// written only by shard s's compute, and a remote transport ships it
    /// back alongside the row (e.g. the relaxed-edge counts the algorithms
    /// fold into RoundStats::messages).
    std::span<std::uint64_t> shard_counters;

    // --- resident-worker extensions (PoolTransport; others ignore them) ---

    /// Coordinator side: serializes shard `s`'s per-superstep input (the
    /// state compute reads that changes between supersteps — frontier
    /// buckets, active senders). Null ⇒ no codec ⇒ the pool falls back to
    /// respawn-per-superstep.
    std::function<void(ShardId, std::vector<std::byte>&)> encode_input;
    /// Worker side: installs a shipped input into stable-address storage
    /// before compute runs. This closure is frozen at fork time — it must
    /// only write through pointers/references that were valid at the fork.
    std::function<void(ShardId, const std::byte*, std::size_t)> decode_input;
    /// Worker side: drops shard `s`'s stale exchange staging from the
    /// previous superstep (Exchange::clear_row). The engine supplies this;
    /// resident workers never seal/clear their exchange copy.
    std::function<void(ShardId)> reset_row;
    /// Version of the fork-time-resident state the compute closure reads
    /// beyond the shipped inputs (presplit layout, blocked sets, …). When it
    /// differs from the epoch a pool worker was forked at, the pool respawns
    /// the worker before running the step.
    std::uint64_t resident_epoch = 0;
  };

  virtual ~Transport() = default;

  /// True when compute callbacks run in another address space, so their
  /// writes to coordinator state are lost: algorithms must route owned-state
  /// effects through Exchange::loopback and counters through shard_counters.
  [[nodiscard]] virtual bool remote_compute() const noexcept = 0;

  /// True when workers stay resident across supersteps (PoolTransport):
  /// algorithms should supply the plan's input codec so per-superstep state
  /// is shipped instead of re-snapshotted, and bump resident_epoch whenever
  /// fork-time-resident state mutates.
  [[nodiscard]] virtual bool resident_workers() const noexcept {
    return false;
  }

  /// Worker processes compute fans out over (1 for LocalTransport).
  [[nodiscard]] virtual std::uint32_t processes() const noexcept = 0;

  /// Executes the compute phase for every shard; on return the coordinator's
  /// exchange holds every staged row and shard_counters its final values.
  virtual TransportStats run_compute(const SuperstepPlan& plan) = 0;
};

/// In-process transport: one OpenMP thread per shard writes the single-writer
/// staging rows directly — PR 1's lock-free phase 1, verbatim. Under an
/// active placement plan each shard's compute thread temporarily binds to
/// its shard's NUMA node for the duration of the callback (ScopedAffinity),
/// so the OS schedules it next to the memory the shard first-touched.
/// Binding is best-effort and never changes what compute stages — results
/// stay bit-identical across placements.
class LocalTransport final : public Transport {
 public:
  explicit LocalTransport(PlacementPlan plan = {}) : plan_(std::move(plan)) {}

  [[nodiscard]] bool remote_compute() const noexcept override { return false; }
  [[nodiscard]] std::uint32_t processes() const noexcept override { return 1; }
  [[nodiscard]] const PlacementPlan& plan() const noexcept { return plan_; }
  TransportStats run_compute(const SuperstepPlan& plan) override;

 private:
  PlacementPlan plan_;
};

/// Multi-process transport: forks one worker per Launcher group each
/// superstep and collects the groups' rows over AF_UNIX socketpairs. See the
/// header comment for the COW-snapshot semantics and DESIGN.md §9 for the
/// wire format.
class ProcessTransport final : public Transport {
 public:
  explicit ProcessTransport(Launcher launcher) : launcher_(launcher) {}

  [[nodiscard]] bool remote_compute() const noexcept override { return true; }
  [[nodiscard]] std::uint32_t processes() const noexcept override {
    return launcher_.processes();
  }
  [[nodiscard]] const Launcher& launcher() const noexcept { return launcher_; }
  TransportStats run_compute(const SuperstepPlan& plan) override;

 private:
  Launcher launcher_;
};

/// Resident-worker transport: one long-lived worker per Launcher group,
/// forked at the first superstep of a run and kept on a persistent AF_UNIX
/// socketpair. See the header comment for the staleness model (shipped
/// inputs + epoch respawn) and DESIGN.md §10 for the worker ownership story.
///
/// Wire protocol (host order, framed with util::net helpers):
///   coordinator → worker   'S' then per owned shard [u64 len][input bytes]
///                          (len 0 when the plan has no codec)
///   worker → coordinator   [u64 status] then, when status == 0, per owned
///                          shard [u64 row_len][row][u64 shard counter]
///   coordinator → worker   'Q' (or EOF) — worker _exits 0
///
/// Crash handling: a send/recv failure on a group marks it dead; the pool
/// respawns it from *current* coordinator state (a fresh COW snapshot is
/// trivially epoch-correct) and replays only that group's step. Rows are a
/// pure function of (resident layout, shipped inputs) under the
/// remote-compute contract, so the replay is bit-identical. Bounded retry;
/// persistent failure surfaces as one PoolTransport error.
class PoolTransport final : public Transport {
 public:
  explicit PoolTransport(Launcher launcher);
  ~PoolTransport() override;

  PoolTransport(const PoolTransport&) = delete;
  PoolTransport& operator=(const PoolTransport&) = delete;

  [[nodiscard]] bool remote_compute() const noexcept override { return true; }
  [[nodiscard]] bool resident_workers() const noexcept override {
    return true;
  }
  [[nodiscard]] std::uint32_t processes() const noexcept override {
    return launcher_.processes();
  }
  [[nodiscard]] const Launcher& launcher() const noexcept { return launcher_; }
  TransportStats run_compute(const SuperstepPlan& plan) override;

  /// Quits and reaps every worker (bounded wait, SIGKILL escalation).
  /// Idempotent; also run by the destructor and by epoch respawns.
  void shutdown() noexcept;

  /// Lifecycle observability (tests, daemon stats). `spawns` counts every
  /// worker fork (initial + epoch respawns + crash restarts); `restarts`
  /// only the crash-triggered ones.
  [[nodiscard]] std::uint64_t spawns() const noexcept { return spawns_; }
  [[nodiscard]] std::uint64_t restarts() const noexcept { return restarts_; }

  /// Pid of group `p`'s resident worker, or -1 when not spawned. Fault
  /// injection hooks for the restart tests.
  [[nodiscard]] pid_t worker_pid(std::uint32_t p) const noexcept;

  /// NUMA node group `p`'s resident worker was bound to at its most recent
  /// spawn (-1 when unbound: inactive plan, mixed-node group, or not yet
  /// spawned). A crash respawn re-derives the binding from the launcher, so
  /// a replacement worker lands on the dead worker's node — the chaos tests
  /// assert exactly this.
  [[nodiscard]] int worker_node(std::uint32_t p) const noexcept;

 private:
  struct Worker {
    pid_t pid = -1;
    int fd = -1;   // coordinator end of the persistent socketpair
    int node = -1;  // NUMA node bound at spawn (-1 = unbound)
  };

  void spawn_worker(std::uint32_t p, const SuperstepPlan& plan);
  [[noreturn]] void worker_main(std::uint32_t p, int fd,
                                const SuperstepPlan& plan);
  void stop_worker(Worker& w) noexcept;
  bool send_step(const Worker& w, std::uint32_t p, const SuperstepPlan& plan,
                 std::uint64_t& bytes) noexcept;
  bool recv_step(const Worker& w, std::uint32_t p, const SuperstepPlan& plan,
                 std::uint64_t& msgs, std::uint64_t& bytes,
                 std::string& fatal);

  Launcher launcher_;
  std::vector<Worker> workers_;
  bool alive_ = false;       // workers_ hold live pids/fds
  std::uint64_t epoch_ = 0;  // resident_epoch the pool was forked at
  std::uint64_t spawns_ = 0;
  std::uint64_t restarts_ = 0;
};

}  // namespace gdiam::mr
