#pragma once
// Pluggable compute/shuffle transport for the BSP engine (DESIGN.md §9).
//
// PRs 1–4 built the seam this file fills: the Exchange is "the only point a
// network transport needs to replace". A Transport owns exactly the part of
// a superstep that depends on *where* shard compute runs and *how* staged
// messages reach the coordinating process:
//
//   run_compute(plan) — executes the algorithm's compute callback for every
//   shard and guarantees that afterwards the coordinator's Exchange holds
//   every staged row (and every per-shard user counter), so the engine can
//   seal and apply exactly as before. Everything downstream of run_compute —
//   deterministic delivery order, traffic tallying, the apply phase — is
//   transport-invariant, which is what makes the backends bit-identical.
//
// Two implementations:
//
//   * LocalTransport — today's path: one OpenMP thread per shard, staging
//     rows are already in the coordinator's memory, nothing is serialized.
//     wire counters stay 0 (a "message" is a cache-line write).
//
//   * ProcessTransport — each superstep forks one worker per process group
//     (Launcher maps K shards onto P workers in contiguous, ceil-balanced
//     groups), runs the group's shard computes in the child, and ships the
//     staged rows + user counters back over an AF_UNIX stream socketpair.
//     The fork gives every worker a copy-on-write snapshot of the
//     coordinator's entire state at superstep start — the OS-enforced
//     version of the BSP contract that compute reads only step-start state.
//     Because the child's writes are invisible to the coordinator, compute
//     must route *all* of its effects through the exchange: under
//     remote_compute() the algorithms replace their direct owned-state
//     writes with Exchange::loopback() records and their direct counter
//     writes with the plan's shard_counters slots. Bytes read back from the
//     workers are the genuinely-crossed `wire_bytes` that feed RoundStats.
//
// Determinism contract (DESIGN.md §9): delivery is a pure function of
// (source shard, staging order). The transport only moves rows between
// address spaces keyed by shard id — it never reorders within a row and the
// coordinator reassembles rows by shard id, not by arrival time — so the
// sealed inboxes are identical under every transport and every P.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "mr/partition.hpp"

namespace gdiam::mr {

enum class TransportKind { kLocal, kProcess };

/// Transport selection knobs, carried by exec::ExecOptions so one assignment
/// configures a whole pipeline (`--transport process --processes P` in the
/// CLI). `processes` is clamped to the shard count by the Launcher.
struct TransportOptions {
  TransportKind kind = TransportKind::kLocal;
  std::uint32_t processes = 1;

  friend bool operator==(const TransportOptions&,
                         const TransportOptions&) = default;
};

/// What one run_compute actually put on a process boundary: 0/0 for
/// LocalTransport; for ProcessTransport every staged record (including
/// loopback stand-ins for owned-state writes) and every byte read back from
/// the workers' sockets (row payloads + framing + counters).
struct TransportStats {
  std::uint64_t wire_messages = 0;
  std::uint64_t wire_bytes = 0;
};

/// Maps K shards onto P worker processes: contiguous, ceil-balanced groups
/// (the first K mod P groups take one extra shard). Contiguity keeps a range
/// partition's locality within one worker; determinism needs only that the
/// mapping is a pure function of (K, P).
class Launcher {
 public:
  Launcher(std::uint32_t num_shards, std::uint32_t processes);

  [[nodiscard]] std::uint32_t num_shards() const noexcept { return k_; }
  [[nodiscard]] std::uint32_t processes() const noexcept { return p_; }

  /// Shard range [first, second) owned by worker `p`.
  [[nodiscard]] std::pair<ShardId, ShardId> group(std::uint32_t p) const;

  /// The worker that runs shard `s`'s compute.
  [[nodiscard]] std::uint32_t process_of(ShardId s) const;

  /// Builds the transport `opts` selects for a K-shard engine.
  [[nodiscard]] static std::unique_ptr<class Transport> make_transport(
      const TransportOptions& opts, std::uint32_t num_shards);

 private:
  std::uint32_t k_ = 1;
  std::uint32_t p_ = 1;
};

class Transport {
 public:
  /// The type-erased slice of one superstep the transport must execute. The
  /// typed BspEngine builds one per superstep; the callbacks close over the
  /// algorithm's Exchange<Msg>, so the transport never sees message types.
  struct SuperstepPlan {
    std::uint32_t num_shards = 0;
    /// Runs the algorithm's compute for one shard, staging into the
    /// exchange. Under a remote transport this executes in a worker process
    /// whose writes to shared state are lost — the remote-compute contract.
    std::function<void(ShardId)> compute;
    /// Appends shard `s`'s staged row (loopback + routed records) to `out`
    /// as self-contained bytes.
    std::function<void(ShardId, std::vector<std::byte>&)> encode_row;
    /// Replaces shard `s`'s staged row with decoded bytes; returns the
    /// number of records decoded (the transport's wire_messages tally).
    std::function<std::uint64_t(ShardId, const std::byte*, std::size_t)>
        decode_row;
    /// Optional per-shard user counter (size num_shards or empty): slot s is
    /// written only by shard s's compute, and a remote transport ships it
    /// back alongside the row (e.g. the relaxed-edge counts the algorithms
    /// fold into RoundStats::messages).
    std::span<std::uint64_t> shard_counters;
  };

  virtual ~Transport() = default;

  /// True when compute callbacks run in another address space, so their
  /// writes to coordinator state are lost: algorithms must route owned-state
  /// effects through Exchange::loopback and counters through shard_counters.
  [[nodiscard]] virtual bool remote_compute() const noexcept = 0;

  /// Worker processes compute fans out over (1 for LocalTransport).
  [[nodiscard]] virtual std::uint32_t processes() const noexcept = 0;

  /// Executes the compute phase for every shard; on return the coordinator's
  /// exchange holds every staged row and shard_counters its final values.
  virtual TransportStats run_compute(const SuperstepPlan& plan) = 0;
};

/// In-process transport: one OpenMP thread per shard writes the single-writer
/// staging rows directly — PR 1's lock-free phase 1, verbatim.
class LocalTransport final : public Transport {
 public:
  [[nodiscard]] bool remote_compute() const noexcept override { return false; }
  [[nodiscard]] std::uint32_t processes() const noexcept override { return 1; }
  TransportStats run_compute(const SuperstepPlan& plan) override;
};

/// Multi-process transport: forks one worker per Launcher group each
/// superstep and collects the groups' rows over AF_UNIX socketpairs. See the
/// header comment for the COW-snapshot semantics and DESIGN.md §9 for the
/// wire format.
class ProcessTransport final : public Transport {
 public:
  explicit ProcessTransport(Launcher launcher) : launcher_(launcher) {}

  [[nodiscard]] bool remote_compute() const noexcept override { return true; }
  [[nodiscard]] std::uint32_t processes() const noexcept override {
    return launcher_.processes();
  }
  [[nodiscard]] const Launcher& launcher() const noexcept { return launcher_; }
  TransportStats run_compute(const SuperstepPlan& plan) override;

 private:
  Launcher launcher_;
};

}  // namespace gdiam::mr
