#include "mr/bsp_engine.hpp"

#include <cstdio>

namespace gdiam::mr {

std::string describe(const Partition& p) {
  const auto k = p.num_partitions();
  std::uint64_t nodes = 0, arcs = 0;
  for (const Shard& sh : p.shards()) {
    nodes += sh.num_owned;
    arcs += sh.num_arcs();
  }
  char buf[160];
  std::snprintf(
      buf, sizeof buf,
      "K=%u %s, owned max/avg %llu/%llu nodes, arcs max/avg %llu/%llu",
      k, p.strategy() == PartitionStrategy::kHash ? "hash" : "range",
      static_cast<unsigned long long>(p.max_owned()),
      static_cast<unsigned long long>(nodes / k),
      static_cast<unsigned long long>(p.max_arcs()),
      static_cast<unsigned long long>(arcs / k));
  return buf;
}

}  // namespace gdiam::mr
