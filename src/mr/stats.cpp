#include "mr/stats.hpp"

#include <cstdio>

namespace gdiam::mr {

std::string to_string(const RoundStats& s) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "rounds=%llu (relax=%llu aux=%llu) messages=%.3e "
                "updates=%.3e work=%.3e",
                static_cast<unsigned long long>(s.rounds()),
                static_cast<unsigned long long>(s.relaxation_rounds),
                static_cast<unsigned long long>(s.auxiliary_rounds),
                static_cast<double>(s.messages),
                static_cast<double>(s.node_updates),
                static_cast<double>(s.work()));
  return buf;
}

}  // namespace gdiam::mr
