#include "mr/stats.hpp"

#include <cstdio>

namespace gdiam::mr {

std::string to_string(const RoundStats& s) {
  char buf[320];
  int len = std::snprintf(buf, sizeof buf,
                          "rounds=%llu (relax=%llu aux=%llu) messages=%.3e "
                          "updates=%.3e work=%.3e",
                          static_cast<unsigned long long>(s.rounds()),
                          static_cast<unsigned long long>(s.relaxation_rounds),
                          static_cast<unsigned long long>(s.auxiliary_rounds),
                          static_cast<double>(s.messages),
                          static_cast<double>(s.node_updates),
                          static_cast<double>(s.work()));
  if (s.cross_messages != 0 || s.cross_bytes != 0) {
    len += std::snprintf(buf + len, sizeof buf - static_cast<std::size_t>(len),
                         " cross=%.3emsg/%.3eB",
                         static_cast<double>(s.cross_messages),
                         static_cast<double>(s.cross_bytes));
  }
  if (s.cross_node_messages != 0 || s.cross_node_bytes != 0) {
    len += std::snprintf(buf + len, sizeof buf - static_cast<std::size_t>(len),
                         " xnode=%.3emsg/%.3eB",
                         static_cast<double>(s.cross_node_messages),
                         static_cast<double>(s.cross_node_bytes));
  }
  if (s.wire_messages != 0 || s.wire_bytes != 0) {
    len += std::snprintf(buf + len, sizeof buf - static_cast<std::size_t>(len),
                         " wire=%.3emsg/%.3eB",
                         static_cast<double>(s.wire_messages),
                         static_cast<double>(s.wire_bytes));
  }
  if (s.sparse_rounds != 0 || s.dense_rounds != 0) {
    std::snprintf(buf + len, sizeof buf - static_cast<std::size_t>(len),
                  " modes=%lluS/%lluD",
                  static_cast<unsigned long long>(s.sparse_rounds),
                  static_cast<unsigned long long>(s.dense_rounds));
  }
  return buf;
}

}  // namespace gdiam::mr
