#pragma once
// MapReduce cost accounting.
//
// The paper evaluates algorithms on Spark and reports, besides wall-clock
// time, two platform-independent indicators (Section 5):
//   * rounds — MapReduce communication rounds. Per Fact 1 each Δ-growing /
//     Δ-stepping relaxation phase is O(1) rounds in MR(M_T, M_L); we charge
//     exactly 1 round per synchronous relaxation phase and 1 per auxiliary
//     phase (center selection, contraction, bucket scan), for both the
//     clustering algorithm and Δ-stepping, so the comparison is fair.
//   * work — "the sum of node updates and messages generated": a message is
//     one relaxation request sent along an edge, a node update is one
//     accepted improvement of a node's tentative state.
//
// Every parallel algorithm in gdiam fills a RoundStats, which the Table 2 /
// Figure 2 / Figure 3 benches print directly.

#include <cstdint>
#include <string>

namespace gdiam::mr {

struct RoundStats {
  /// Synchronous relaxation phases (Δ-growing steps / Δ-stepping phases).
  std::uint64_t relaxation_rounds = 0;
  /// Auxiliary MR phases: center selection, contraction, bucket management.
  std::uint64_t auxiliary_rounds = 0;
  /// Relaxation requests generated (messages over edges).
  std::uint64_t messages = 0;
  /// Accepted improvements of node state.
  std::uint64_t node_updates = 0;
  /// Messages that actually crossed a partition boundary (filled only by the
  /// partitioned BSP backends; always 0 for flat kernels and for K = 1,
  /// where every edge is shard-internal). A cross message is also counted in
  /// `messages` — these counters are the communication-volume view of it.
  std::uint64_t cross_messages = 0;
  /// Serialized payload bytes of those cross-partition messages.
  std::uint64_t cross_bytes = 0;
  /// Cross-partition messages whose source and destination shard live on
  /// *different NUMA nodes* under the active placement plan
  /// (mr/placement.hpp), and their serialized payload bytes. Zero whenever
  /// placement is off (the default) or the plan is single-node. Like the
  /// wire counters these are placement-dependent observability by design —
  /// they are a relabeling of the cross counters by the plan's shard→node
  /// map, so for a *fixed* placement they are identical across transports,
  /// but parity suites comparing across placements zero them first.
  std::uint64_t cross_node_messages = 0;
  std::uint64_t cross_node_bytes = 0;
  /// Records and bytes that genuinely crossed a *process* boundary — filled
  /// only when a remote transport (mr/transport.hpp, ProcessTransport) ran
  /// the compute phases; always 0 under LocalTransport, where an exchange is
  /// a memory move. Unlike the cross counters these are transport-dependent
  /// by design (they include the loopback stand-ins for owned-state writes
  /// plus framing), so parity suites zero them before comparing.
  std::uint64_t wire_messages = 0;
  std::uint64_t wire_bytes = 0;
  /// Relaxation rounds whose frontier was collected in the sparse
  /// (thread-local queue) vs dense (bitmap) representation of the adaptive
  /// frontier engine (core/frontier.hpp). Observability counters for the
  /// bench mode-mix reports: both stay 0 on the adaptive=false baselines,
  /// so parity suites compare the work counters above field-by-field and pin
  /// these two separately (tests/test_frontier.cpp).
  std::uint64_t sparse_rounds = 0;
  std::uint64_t dense_rounds = 0;

  [[nodiscard]] std::uint64_t rounds() const noexcept {
    return relaxation_rounds + auxiliary_rounds;
  }

  /// The paper's "work" metric: node updates + messages.
  [[nodiscard]] std::uint64_t work() const noexcept {
    return messages + node_updates;
  }

  RoundStats& operator+=(const RoundStats& other) noexcept {
    relaxation_rounds += other.relaxation_rounds;
    auxiliary_rounds += other.auxiliary_rounds;
    messages += other.messages;
    node_updates += other.node_updates;
    cross_messages += other.cross_messages;
    cross_bytes += other.cross_bytes;
    cross_node_messages += other.cross_node_messages;
    cross_node_bytes += other.cross_node_bytes;
    wire_messages += other.wire_messages;
    wire_bytes += other.wire_bytes;
    sparse_rounds += other.sparse_rounds;
    dense_rounds += other.dense_rounds;
    return *this;
  }

  friend RoundStats operator+(RoundStats a, const RoundStats& b) noexcept {
    a += b;
    return a;
  }

  friend bool operator==(const RoundStats&, const RoundStats&) = default;
};

/// "rounds=74 messages=4.2e+08 updates=1.1e+07 work=4.3e+08
///  cross=1.0e+06msg/1.6e+07B xnode=4.0e+05msg/6.4e+06B
///  wire=2.0e+06msg/3.1e+07B modes=61S/13D" — for logs; the cross part
/// appears only when a partitioned backend recorded traffic, the xnode part
/// only when a NUMA placement plan classified it, the wire part only when a
/// multi-process transport ran, the modes part only when the adaptive
/// frontier engine classified rounds.
[[nodiscard]] std::string to_string(const RoundStats& s);

}  // namespace gdiam::mr
