#pragma once
// Umbrella header for the gdiam library: parallel diameter approximation of
// massive weighted graphs (Ceccarello, Pietracaprina, Pucci, Upfal — IPDPS
// 2016). Include this for the full public API; individual headers are
// cheaper to compile for targeted use.
//
// Quickstart:
//   #include "gdiam.hpp"
//   gdiam::util::Xoshiro256 rng(42);
//   gdiam::Graph g = gdiam::gen::uniform_weights(gdiam::gen::mesh(512), 42);
//   auto r = gdiam::core::approximate_diameter(g);
//   // r.estimate is a conservative diameter approximation.

#include "analysis/hop.hpp"    // IWYU pragma: export
#include "analysis/metrics.hpp"  // IWYU pragma: export
#include "core/cluster.hpp"    // IWYU pragma: export
#include "core/cluster2.hpp"   // IWYU pragma: export
#include "core/diameter.hpp"   // IWYU pragma: export
#include "core/growing.hpp"    // IWYU pragma: export
#include "core/labels.hpp"     // IWYU pragma: export
#include "core/quotient.hpp"   // IWYU pragma: export
#include "core/serialize.hpp"  // IWYU pragma: export
#include "exec/context.hpp"    // IWYU pragma: export
#include "exec/options.hpp"    // IWYU pragma: export
#include "gen/basic.hpp"       // IWYU pragma: export
#include "gen/mesh.hpp"        // IWYU pragma: export
#include "gen/product.hpp"     // IWYU pragma: export
#include "gen/rmat.hpp"        // IWYU pragma: export
#include "gen/road.hpp"        // IWYU pragma: export
#include "gen/weights.hpp"     // IWYU pragma: export
#include "graph/binfmt.hpp"    // IWYU pragma: export
#include "graph/builder.hpp"   // IWYU pragma: export
#include "graph/components.hpp"  // IWYU pragma: export
#include "graph/graph.hpp"     // IWYU pragma: export
#include "graph/io.hpp"        // IWYU pragma: export
#include "graph/ops.hpp"       // IWYU pragma: export
#include "mr/bsp_engine.hpp"   // IWYU pragma: export
#include "mr/exchange.hpp"     // IWYU pragma: export
#include "mr/partition.hpp"    // IWYU pragma: export
#include "mr/stats.hpp"        // IWYU pragma: export
#include "mr/transport.hpp"    // IWYU pragma: export
#include "sssp/bellman_ford.hpp"    // IWYU pragma: export
#include "sssp/delta_stepping.hpp"  // IWYU pragma: export
#include "sssp/dijkstra.hpp"   // IWYU pragma: export
#include "sssp/rho_stepping.hpp"  // IWYU pragma: export
#include "sssp/sweep.hpp"      // IWYU pragma: export
#include "util/options.hpp"    // IWYU pragma: export
#include "util/rng.hpp"        // IWYU pragma: export
#include "util/scale.hpp"      // IWYU pragma: export
#include "util/table.hpp"      // IWYU pragma: export
#include "util/timer.hpp"      // IWYU pragma: export
