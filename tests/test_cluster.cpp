// Tests for core/cluster.hpp — Algorithm CLUSTER(G, τ): coverage, center
// structure, distance upper bounds, determinism, options, degenerate inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/cluster.hpp"
#include "gen/basic.hpp"
#include "gen/mesh.hpp"
#include "gen/weights.hpp"
#include "graph/builder.hpp"
#include "sssp/dijkstra.hpp"
#include "test_helpers.hpp"

namespace gdiam::core {
namespace {

using test::Family;

ClusterOptions opts_with_tau(std::uint32_t tau, std::uint64_t seed = 1) {
  ClusterOptions o;
  o.tau = tau;
  o.seed = seed;
  return o;
}

TEST(Cluster, EmptyGraph) {
  const Clustering c = cluster(Graph{}, opts_with_tau(4));
  EXPECT_EQ(c.num_clusters(), 0u);
  EXPECT_TRUE(c.validate(Graph{}));
}

TEST(Cluster, SingleNode) {
  const Graph g = build_graph(1, {});
  const Clustering c = cluster(g, opts_with_tau(1));
  EXPECT_TRUE(c.validate(g));
  EXPECT_EQ(c.num_clusters(), 1u);
  EXPECT_DOUBLE_EQ(c.radius, 0.0);
}

TEST(Cluster, HugeTauMakesAllSingletons) {
  // With τ ≥ n the stop threshold exceeds n: zero stages, all singletons.
  const Graph g = gen::path(50);
  const Clustering c = cluster(g, opts_with_tau(50));
  EXPECT_TRUE(c.validate(g));
  EXPECT_EQ(c.num_clusters(), 50u);
  EXPECT_DOUBLE_EQ(c.radius, 0.0);
  EXPECT_EQ(c.stages, 0u);
}

TEST(Cluster, InvalidTauThrows) {
  EXPECT_THROW((void)cluster(gen::path(4), opts_with_tau(0)),
               std::invalid_argument);
}

TEST(Cluster, CoversDisconnectedGraphs) {
  GraphBuilder b(40);
  for (NodeId u = 0; u + 1 < 20; ++u) b.add_edge(u, u + 1, 1.0);
  for (NodeId u = 20; u + 1 < 40; ++u) b.add_edge(u, u + 1, 1.0);
  const Graph g = b.build();
  const Clustering c = cluster(g, opts_with_tau(1, 5));
  EXPECT_TRUE(c.validate(g));
  // No cluster may span both components.
  for (NodeId u = 0; u < 40; ++u) {
    EXPECT_EQ(c.center_of[u] < 20, u < 20) << "node " << u;
  }
}

// ---------------------------------------------------------------------------
// Property sweep: structural invariants on every family × τ × seed.

class ClusterInvariants
    : public testing::TestWithParam<
          std::tuple<Family, std::uint32_t, std::uint64_t>> {};

TEST_P(ClusterInvariants, ValidCoverRadiusAndDistanceBounds) {
  const auto [family, tau, seed] = GetParam();
  const Graph g = test::make_family(family, 250, seed);
  const Clustering c = cluster(g, opts_with_tau(tau, seed));

  ASSERT_TRUE(c.validate(g));
  EXPECT_GE(c.num_clusters(), 1u);
  EXPECT_LE(c.num_clusters(), g.num_nodes());

  // radius is the max distance bound.
  Weight max_d = 0.0;
  for (const Weight d : c.dist_to_center) max_d = std::max(max_d, d);
  EXPECT_DOUBLE_EQ(c.radius, max_d);

  // dist_to_center upper-bounds the true distance to the assigned center —
  // the property that makes the quotient estimate conservative.
  std::set<NodeId> centers(c.centers.begin(), c.centers.end());
  for (const NodeId ctr : centers) {
    const auto d = sssp::dijkstra_distances(g, ctr);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (c.center_of[u] != ctr) continue;
      ASSERT_NE(d[u], kInfiniteWeight)
          << "cluster spans disconnected parts: " << u;
      EXPECT_GE(c.dist_to_center[u] + 1e-4 * (1.0 + d[u]), d[u])
          << "node " << u << " center " << ctr;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClusterInvariants,
    testing::Combine(testing::ValuesIn(test::all_families()),
                     testing::Values(2u, 8u),
                     testing::Values(1u, 42u)),
    [](const auto& param_info) {
      return std::string(test::family_name(std::get<0>(param_info.param))) +
             "_t" + std::to_string(std::get<1>(param_info.param)) + "_s" +
             std::to_string(std::get<2>(param_info.param));
    });

TEST(Cluster, DeterministicForFixedSeed) {
  const Graph g = test::make_family(Family::kMeshUniform, 400, 7);
  const Clustering a = cluster(g, opts_with_tau(4, 123));
  const Clustering b = cluster(g, opts_with_tau(4, 123));
  EXPECT_EQ(a.center_of, b.center_of);
  EXPECT_EQ(a.dist_to_center, b.dist_to_center);
  EXPECT_EQ(a.stats, b.stats);
}

TEST(Cluster, DifferentSeedsGiveDifferentDecompositions) {
  const Graph g = test::make_family(Family::kMeshUniform, 400, 7);
  const Clustering a = cluster(g, opts_with_tau(4, 1));
  const Clustering b = cluster(g, opts_with_tau(4, 2));
  EXPECT_NE(a.centers, b.centers);
}

TEST(Cluster, PushAndPullPoliciesAgree) {
  const Graph g = test::make_family(Family::kGnmUniform, 300, 11);
  ClusterOptions o = opts_with_tau(4, 9);
  o.policy = GrowingPolicy::kPush;
  const Clustering push = cluster(g, o);
  o.policy = GrowingPolicy::kPull;
  const Clustering pull = cluster(g, o);
  EXPECT_EQ(push.center_of, pull.center_of);
  EXPECT_EQ(push.dist_to_center, pull.dist_to_center);
  EXPECT_EQ(push.stats.relaxation_rounds, pull.stats.relaxation_rounds);
  EXPECT_EQ(push.stats.messages, pull.stats.messages);
}

TEST(Cluster, DeltaInitMinStartsAtMinWeight) {
  const Graph g = test::make_family(Family::kMeshUniform, 200, 13);
  ClusterOptions o = opts_with_tau(2, 3);
  o.delta_init = DeltaInit::kMinWeight;
  const Clustering c = cluster(g, o);
  EXPECT_TRUE(c.validate(g));
  // Δ only ever doubles, so Δ_end is min_weight · 2^k.
  const double ratio = c.delta_end / g.min_weight();
  EXPECT_NEAR(std::log2(ratio), std::round(std::log2(ratio)), 1e-9);
}

TEST(Cluster, DeltaInitFixedValidation) {
  const Graph g = gen::path(60);
  ClusterOptions o = opts_with_tau(2);
  o.delta_init = DeltaInit::kFixed;
  o.delta_fixed = 0.0;
  EXPECT_THROW((void)cluster(g, o), std::invalid_argument);
  o.delta_fixed = 4.0;
  EXPECT_TRUE(cluster(g, o).validate(g));
}

TEST(Cluster, OversizedInitialDeltaBloatsRadiusOnBimodalMesh) {
  // The paper's Section 5 Δ-initialization study: on a mesh whose edges are
  // weight 1 with probability 0.1 and 10⁻⁶ otherwise, a self-tuned Δ keeps
  // clusters inside the light percolation cluster (tiny radius), while
  // Δ₀ ≈ diameter happily swallows weight-1 edges and blows the radius up.
  const Graph g = gen::bimodal_weights(gen::mesh(24), 1.0, 1e-6, 0.1, 7);
  ClusterOptions tuned = opts_with_tau(2, 3);
  tuned.delta_init = DeltaInit::kMinWeight;
  ClusterOptions oversized = tuned;
  oversized.delta_init = DeltaInit::kFixed;
  oversized.delta_fixed = 2.0;  // ≈ the weighted diameter
  const Clustering small_c = cluster(g, tuned);
  const Clustering big_c = cluster(g, oversized);
  EXPECT_TRUE(small_c.validate(g));
  EXPECT_TRUE(big_c.validate(g));
  EXPECT_GT(big_c.radius, 10.0 * small_c.radius);
  EXPECT_LT(small_c.radius, 0.1);
}

TEST(Cluster, StepCapStillProducesValidClustering) {
  const Graph g = test::make_family(Family::kMeshUniform, 400, 17);
  ClusterOptions o = opts_with_tau(2, 5);
  o.max_steps_per_growth = 3;
  const Clustering c = cluster(g, o);
  EXPECT_TRUE(c.validate(g));
}

TEST(Cluster, StepCapReducesRelaxationRoundsOnSkewedTopology) {
  // The Section 4 cap targets high-l_Delta inputs: on a long weighted path
  // uncapped PartialGrowth runs hop-deep relaxation sequences, so a tight
  // cap must cut the total relaxation rounds.
  const Graph g = gen::uniform_weights(gen::path(8000), 19);
  ClusterOptions uncapped = opts_with_tau(2, 7);
  ClusterOptions capped = uncapped;
  capped.max_steps_per_growth = 8;
  const Clustering cu = cluster(g, uncapped);
  const Clustering cc = cluster(g, capped);
  EXPECT_TRUE(cc.validate(g));
  EXPECT_LT(cc.stats.relaxation_rounds, cu.stats.relaxation_rounds);
}

TEST(Cluster, StatsPopulated) {
  const Graph g = test::make_family(Family::kTreePlusChords, 300, 23);
  const Clustering c = cluster(g, opts_with_tau(2, 11));
  EXPECT_GT(c.stats.relaxation_rounds, 0u);
  EXPECT_GT(c.stats.auxiliary_rounds, 0u);
  EXPECT_GT(c.stats.messages, 0u);
  EXPECT_GT(c.stats.node_updates, 0u);
  EXPECT_GT(c.stages, 0u);
}

TEST(Cluster, FewerClustersWithSmallerTau) {
  const Graph g = test::make_family(Family::kMeshUniform, 900, 29);
  const Clustering few = cluster(g, opts_with_tau(1, 3));
  const Clustering many = cluster(g, opts_with_tau(16, 3));
  EXPECT_LT(few.num_clusters(), many.num_clusters());
}

TEST(Cluster, UnweightedPathRadiusReasonable) {
  // On a unit path with τ=1, stages halve the uncovered set; the radius must
  // stay well below the diameter (otherwise the decomposition is useless).
  const Graph g = gen::path(512);
  const Clustering c = cluster(g, opts_with_tau(1, 13));
  EXPECT_TRUE(c.validate(g));
  EXPECT_LT(c.radius, 511.0 / 2.0);
}

TEST(TauForClusterTarget, BasicShape) {
  EXPECT_GE(tau_for_cluster_target(0, 100), 1u);
  EXPECT_GE(tau_for_cluster_target(1u << 20, 0), 1u);
  EXPECT_GE(tau_for_cluster_target(1u << 20, 100000),
            tau_for_cluster_target(1u << 20, 1000));
  EXPECT_GE(tau_for_cluster_target(1u << 20, 120000), 100u);
}

TEST(TauForClusterTarget, KeepsClusterCountNearTarget) {
  const Graph g = test::make_family(Family::kMeshUniform, 2500, 31);
  const NodeId target = 400;
  const auto tau = tau_for_cluster_target(g.num_nodes(), target);
  const Clustering c = cluster(g, opts_with_tau(tau, 3));
  EXPECT_LE(c.num_clusters(), 2u * target);
}

}  // namespace
}  // namespace gdiam::core
