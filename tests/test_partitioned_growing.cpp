// Tests for the partitioned BSP backends: GrowingPolicy::kPartitioned must
// be bit-identical to the kPull reference per step (labels AND counters) on
// every graph family for every shard count, while reporting real
// cross-partition traffic: nonzero for K > 1 on any graph with cut edges,
// exactly zero for K = 1. Same contract for partitioned Δ-stepping.

#include <gtest/gtest.h>

#include <tuple>

#include "core/cluster.hpp"
#include "core/cluster2.hpp"
#include "core/growing.hpp"
#include "mr/partition.hpp"
#include "sssp/delta_stepping.hpp"
#include "test_helpers.hpp"

namespace gdiam::core {
namespace {

using test::Family;

GrowingStepParams uniform_params(Weight delta) {
  GrowingStepParams p;
  p.light_threshold = delta;
  p.uniform_budget = delta;
  return p;
}

mr::PartitionOptions hash_opts(std::uint32_t k) {
  return {.num_partitions = k, .strategy = mr::PartitionStrategy::kHash};
}

// ---------------------------------------------------------------------------
// Step-level parity: the acceptance bar of the subsystem. Mesh and R-MAT
// families, K in {1, 2, 7}, as per the issue.

class PartitionedParity
    : public testing::TestWithParam<std::tuple<Family, std::uint32_t>> {};

TEST_P(PartitionedParity, StepBitIdenticalToPullWithRealTraffic) {
  const auto [family, k] = GetParam();
  const Graph g = test::make_family(family, 200, 77);
  const Weight delta = 2.0 * g.avg_weight();

  GrowingEngine pull(g, GrowingPolicy::kPull);
  GrowingEngine bsp(g, GrowingPolicy::kPartitioned, hash_opts(k));
  ASSERT_NE(bsp.partition(), nullptr);
  ASSERT_TRUE(bsp.partition()->validate(g));
  for (GrowingEngine* e : {&pull, &bsp}) {
    e->set_source(0, 0);
    e->set_source(g.num_nodes() / 2, g.num_nodes() / 2);
    e->block(1);
    e->set_source(1, 1);  // a blocked boundary source
  }
  const GrowingStepParams p = uniform_params(delta);
  pull.rebuild_frontier(p);
  bsp.rebuild_frontier(p);

  std::uint64_t total_cross = 0;
  for (int step = 0; step < 64; ++step) {
    const auto rp = pull.step(p);
    const auto rb = bsp.step(p);
    ASSERT_EQ(rp.messages, rb.messages) << "step " << step;
    ASSERT_EQ(rp.updates, rb.updates) << "step " << step;
    ASSERT_EQ(rp.newly_labeled, rb.newly_labeled) << "step " << step;
    ASSERT_EQ(pull.labels(), bsp.labels()) << "step " << step;
    // Cross traffic is bounded by the messages sent and consistent in bytes.
    EXPECT_LE(rb.cross_messages, rb.messages);
    EXPECT_EQ(rb.cross_bytes, rb.cross_messages * sizeof(LabelProposal));
    EXPECT_EQ(rp.cross_messages, 0u);  // flat engine never touches the wire
    total_cross += rb.cross_messages;
    if (rp.updates == 0) break;
  }
  if (k == 1) {
    EXPECT_EQ(total_cross, 0u) << "K=1 must be communication-free";
  } else {
    EXPECT_GT(total_cross, 0u) << "K>1 on a connected graph must shuffle";
  }
}

INSTANTIATE_TEST_SUITE_P(
    MeshAndRmat, PartitionedParity,
    testing::Combine(testing::Values(Family::kMeshUniform,
                                     Family::kRmatGiant),
                     testing::Values(1u, 2u, 7u)),
    [](const auto& info) {
      return std::string(test::family_name(std::get<0>(info.param))) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

// Per-center budgets (the CLUSTER2 regime) must survive partitioning too.
TEST(PartitionedGrowing, PerCenterBudgetsMatchPull) {
  const Graph g = test::make_family(Family::kGnmUniform, 150, 11);
  std::vector<Weight> budgets(g.num_nodes(), 0.0);
  budgets[3] = 2.5 * g.avg_weight();
  budgets[70] = 5.0 * g.avg_weight();
  GrowingStepParams p;
  p.light_threshold = 3.0 * g.avg_weight();
  p.center_budget = &budgets;

  GrowingEngine pull(g, GrowingPolicy::kPull);
  GrowingEngine bsp(g, GrowingPolicy::kPartitioned, hash_opts(5));
  for (GrowingEngine* e : {&pull, &bsp}) {
    e->set_source(3, 3);
    e->set_source(70, 70);
    e->rebuild_frontier(p);
  }
  for (int step = 0; step < 64; ++step) {
    const auto rp = pull.step(p);
    const auto rb = bsp.step(p);
    ASSERT_EQ(rp.updates, rb.updates) << "step " << step;
    ASSERT_EQ(pull.labels(), bsp.labels()) << "step " << step;
    if (rp.updates == 0) break;
  }
}

// ---------------------------------------------------------------------------
// Whole-algorithm parity: CLUSTER and CLUSTER2 on the partitioned engine.

class PartitionedCluster : public testing::TestWithParam<std::uint32_t> {};

TEST_P(PartitionedCluster, ClusterLabelsBitIdenticalToPull) {
  const std::uint32_t k = GetParam();
  for (const Family family : {Family::kMeshUniform, Family::kRmatGiant}) {
    const Graph g = test::make_family(family, 250, 5);
    ClusterOptions base;
    base.tau = 4;
    base.seed = 9;
    // Keep the stop threshold (stop_factor·τ·log₂ n) well below n so the
    // growth stages actually run; the default 8 would make every node a
    // singleton on a 250-node instance and the parity trivially empty.
    base.stop_factor = 2.0;
    ClusterOptions pull_opts = base;
    pull_opts.policy = GrowingPolicy::kPull;
    ClusterOptions bsp_opts = base;
    bsp_opts.policy = GrowingPolicy::kPartitioned;
    bsp_opts.partition = hash_opts(k);

    const Clustering a = cluster(g, pull_opts);
    const Clustering b = cluster(g, bsp_opts);
    EXPECT_EQ(a.center_of, b.center_of) << test::family_name(family);
    EXPECT_EQ(a.dist_to_center, b.dist_to_center);
    EXPECT_EQ(a.centers, b.centers);
    EXPECT_EQ(a.stats.rounds(), b.stats.rounds());
    EXPECT_EQ(a.stats.messages, b.stats.messages);
    EXPECT_EQ(a.stats.node_updates, b.stats.node_updates);
    EXPECT_TRUE(b.validate(g));
    if (k == 1) {
      EXPECT_EQ(b.stats.cross_messages, 0u);
      EXPECT_EQ(b.stats.cross_bytes, 0u);
    } else {
      EXPECT_GT(b.stats.cross_messages, 0u) << test::family_name(family);
      EXPECT_GT(b.stats.cross_bytes, 0u);
    }
    EXPECT_EQ(a.stats.cross_messages, 0u);  // pull never touches the wire
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, PartitionedCluster,
                         testing::Values(1u, 2u, 7u),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST(PartitionedCluster2, LabelsMatchPull) {
  const Graph g = test::make_family(Family::kMeshUniform, 200, 21);
  Cluster2Options pull_opts;
  pull_opts.base.tau = 4;
  pull_opts.base.stop_factor = 2.0;  // see PartitionedCluster above
  pull_opts.base.policy = GrowingPolicy::kPull;
  Cluster2Options bsp_opts = pull_opts;
  bsp_opts.base.policy = GrowingPolicy::kPartitioned;
  bsp_opts.base.partition = hash_opts(3);

  const Cluster2Result a = cluster2(g, pull_opts);
  const Cluster2Result b = cluster2(g, bsp_opts);
  EXPECT_EQ(a.clustering.center_of, b.clustering.center_of);
  EXPECT_EQ(a.clustering.stats.messages, b.clustering.stats.messages);
  EXPECT_GT(b.clustering.stats.cross_messages, 0u);
}

// ---------------------------------------------------------------------------
// Partitioned Δ-stepping: exact distances, identical work accounting, real
// traffic.

class PartitionedDeltaStepping : public testing::TestWithParam<std::uint32_t> {
};

TEST_P(PartitionedDeltaStepping, DistancesAndWorkMatchFlat) {
  const std::uint32_t k = GetParam();
  for (const Family family : {Family::kMeshUniform, Family::kRmatGiant}) {
    const Graph g = test::make_family(family, 220, 31);
    sssp::DeltaSteppingOptions flat;
    sssp::DeltaSteppingOptions bsp;
    bsp.partition = hash_opts(k);

    const auto a = sssp::delta_stepping(g, 0, flat);
    const auto b = sssp::delta_stepping(g, 0, bsp);
    EXPECT_EQ(a.dist, b.dist) << test::family_name(family);
    EXPECT_EQ(a.eccentricity, b.eccentricity);
    EXPECT_EQ(a.stats.rounds(), b.stats.rounds());
    EXPECT_EQ(a.stats.messages, b.stats.messages);
    EXPECT_EQ(a.stats.node_updates, b.stats.node_updates);
    EXPECT_EQ(a.partitions_used, 1u);
    if (k <= 1) {
      EXPECT_EQ(b.partitions_used, 1u);
      EXPECT_EQ(b.stats.cross_messages, 0u);
    } else {
      EXPECT_EQ(b.partitions_used, k);
      EXPECT_GT(b.stats.cross_messages, 0u) << test::family_name(family);
      EXPECT_GT(b.stats.cross_bytes, b.stats.cross_messages);  // >1 B/msg
    }
    EXPECT_EQ(a.stats.cross_messages, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, PartitionedDeltaStepping,
                         testing::Values(1u, 2u, 7u),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param);
                         });

TEST(PartitionedDeltaStepping, ExactAgainstBruteForceWithRangePartitioner) {
  const Graph g = test::make_family(Family::kTreePlusChords, 120, 13);
  const auto apsp = test::brute_force_apsp(g);
  sssp::DeltaSteppingOptions opts;
  opts.partition = {.num_partitions = 6,
                    .strategy = mr::PartitionStrategy::kRange};
  const auto r = sssp::delta_stepping(g, 7, opts);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_NEAR(r.dist[u], apsp[7][u], 1e-9 * (1.0 + apsp[7][u]));
  }
}

}  // namespace
}  // namespace gdiam::core
