// Cross-module integration tests: full pipelines through the public
// umbrella API (generate → persist → reload → decompose → persist → reload
// → estimate), policy/variant equivalences at pipeline level, and the
// radius-aware vs classic estimator ordering across families.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "gdiam.hpp"
#include "test_helpers.hpp"

namespace gdiam {
namespace {

using test::Family;

TEST(Integration, GenerateSaveLoadEstimatePipeline) {
  // The CLI's workflow, via the library API.
  const Graph g = gen::uniform_weights(gen::mesh(40), 11);
  const std::string path = testing::TempDir() + "/pipeline_graph.bin";
  io::write_binary_file(g, path);
  const Graph loaded = io::read_binary_file(path);

  core::DiameterApproxOptions o;
  o.cluster.tau = 8;
  o.cluster.seed = 5;
  o.quotient.exact_threshold = 100000;
  const auto direct = core::approximate_diameter(g, o);
  const auto reloaded = core::approximate_diameter(loaded, o);
  EXPECT_DOUBLE_EQ(direct.estimate, reloaded.estimate);
  EXPECT_EQ(direct.stats, reloaded.stats);
}

TEST(Integration, ClusteringSerializationRoundTrip) {
  const Graph g = test::make_family(Family::kGnmUniform, 300, 7);
  core::ClusterOptions o;
  o.tau = 8;
  o.seed = 3;
  const core::Clustering c = core::cluster(g, o);

  std::stringstream s(std::ios::in | std::ios::out | std::ios::binary);
  core::write_clustering(c, s);
  const core::Clustering back = core::read_clustering(s);

  EXPECT_EQ(back.center_of, c.center_of);
  EXPECT_EQ(back.dist_to_center, c.dist_to_center);
  EXPECT_EQ(back.centers, c.centers);
  EXPECT_DOUBLE_EQ(back.radius, c.radius);
  EXPECT_DOUBLE_EQ(back.delta_end, c.delta_end);
  EXPECT_EQ(back.stages, c.stages);
  EXPECT_EQ(back.stats, c.stats);
  EXPECT_TRUE(back.validate(g));
}

TEST(Integration, ClusteringFileRoundTripAndQuotientReuse) {
  const Graph g = test::make_family(Family::kMeshUniform, 400, 9);
  core::ClusterOptions o;
  o.tau = 4;
  o.seed = 7;
  const core::Clustering c = core::cluster(g, o);
  const std::string path = testing::TempDir() + "/clustering.gdcl";
  core::write_clustering_file(c, path);
  const core::Clustering back = core::read_clustering_file(path);

  // The reloaded clustering builds the identical quotient.
  const core::QuotientGraph q1 = core::build_quotient(g, c);
  const core::QuotientGraph q2 = core::build_quotient(g, back);
  EXPECT_EQ(q1.graph.num_nodes(), q2.graph.num_nodes());
  EXPECT_EQ(q1.graph.num_edges(), q2.graph.num_edges());
  EXPECT_EQ(q1.cluster_radius, q2.cluster_radius);
}

TEST(Integration, ClusteringSerializationRejectsGarbage) {
  std::stringstream s(std::ios::in | std::ios::out | std::ios::binary);
  s << "not a clustering";
  EXPECT_THROW((void)core::read_clustering(s), std::runtime_error);
  EXPECT_THROW((void)core::read_clustering_file("/nonexistent/x.gdcl"),
               std::runtime_error);
}

TEST(Integration, PushPullIdenticalThroughWholePipeline) {
  for (const Family f : {Family::kMeshUniform, Family::kRmatGiant}) {
    const Graph g = test::make_family(f, 350, 13);
    core::DiameterApproxOptions o;
    o.cluster.tau = 8;
    o.cluster.seed = 11;
    o.quotient.exact_threshold = 100000;
    o.cluster.policy = core::GrowingPolicy::kPush;
    const auto push = core::approximate_diameter(g, o);
    o.cluster.policy = core::GrowingPolicy::kPull;
    const auto pull = core::approximate_diameter(g, o);
    EXPECT_DOUBLE_EQ(push.estimate, pull.estimate) << test::family_name(f);
    EXPECT_EQ(push.stats.messages, pull.stats.messages);
    EXPECT_EQ(push.stats.rounds(), pull.stats.rounds());
    EXPECT_EQ(push.num_clusters, pull.num_clusters);
  }
}

// Radius-aware vs classic estimator ordering, across families/taus/seeds:
// both conservative, refined never worse.
class EstimatorOrdering
    : public testing::TestWithParam<std::tuple<Family, std::uint32_t>> {};

TEST_P(EstimatorOrdering, RefinedIsConservativeAndTighter) {
  const auto [family, tau] = GetParam();
  const Graph g = test::make_family(family, 140, 19);
  const Weight diam = test::brute_force_diameter(g);

  core::DiameterApproxOptions o;
  o.cluster.tau = tau;
  o.cluster.seed = 19;
  o.quotient.exact_threshold = 100000;
  o.radius_aware = true;
  const auto refined = core::approximate_diameter(g, o);
  o.radius_aware = false;
  const auto classic = core::approximate_diameter(g, o);

  EXPECT_GE(refined.estimate * (1.0 + 1e-6), diam);
  EXPECT_GE(classic.estimate * (1.0 + 1e-6), diam);
  EXPECT_LE(refined.estimate, classic.estimate * (1.0 + 1e-12));
  EXPECT_DOUBLE_EQ(classic.estimate, refined.estimate_classic);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EstimatorOrdering,
    testing::Combine(testing::ValuesIn(test::all_families()),
                     testing::Values(2u, 8u)),
    [](const auto& param_info) {
      return std::string(test::family_name(std::get<0>(param_info.param))) +
             "_t" + std::to_string(std::get<1>(param_info.param));
    });

TEST(Integration, DiameterEstimateConsistentWithSsspBounds) {
  // The three estimators must be mutually consistent on the same graph:
  // sweep LB <= exact <= CL-DIAM estimate, and DS 2-approx >= exact.
  const Graph g = test::make_family(Family::kTreePlusChords, 130, 23);
  const Weight exact = test::brute_force_diameter(g);
  const Weight lb = sssp::diameter_lower_bound(g, 8, 3).lower_bound;
  core::DiameterApproxOptions o;
  o.cluster.tau = 4;
  o.quotient.exact_threshold = 100000;
  const auto cl = core::approximate_diameter(g, o);
  const auto ds = sssp::diameter_two_approx(g, 0);

  EXPECT_LE(lb, exact + 1e-9);
  EXPECT_GE(cl.estimate * (1.0 + 1e-6), exact);
  EXPECT_GE(ds.upper_bound + 1e-9, exact);
  EXPECT_LE(ds.eccentricity, exact + 1e-9);
}

TEST(Integration, HopAnalysisConsistentWithClusterRounds) {
  // Rounds of a τ=1 CLUSTER run cannot exceed a polylog multiple of the
  // hop diameter on a unit-weight graph (the Ω(Ψ) vs Õ(Ψ/τ^(1/b)) story).
  const Graph g = gen::mesh(32);
  const std::uint32_t psi = analysis::hop_diameter_lower_bound(g, 3, 5);
  core::ClusterOptions o;
  o.tau = 1;
  o.seed = 3;
  const core::Clustering c = core::cluster(g, o);
  EXPECT_GT(psi, 0u);
  EXPECT_LT(c.stats.relaxation_rounds,
            4ull * psi * static_cast<std::uint64_t>(
                             std::log2(double(g.num_nodes())) + 1));
}

TEST(Integration, ScaleEnvVariableRoundTrip) {
  ASSERT_EQ(setenv("GDIAM_SCALE", "small", 1), 0);
  EXPECT_EQ(util::scale_from_env(), util::Scale::kSmall);
  ASSERT_EQ(setenv("GDIAM_SCALE", "", 1), 0);
  EXPECT_EQ(util::scale_from_env(), util::Scale::kCi);
  unsetenv("GDIAM_SCALE");
}

TEST(Integration, DeterministicEndToEndAcrossThreadCounts) {
  // The determinism guarantee that matters operationally: the same seed
  // gives the same estimate regardless of the OpenMP thread count.
  const Graph g = test::make_family(Family::kRmatGiant, 400, 29);
  core::DiameterApproxOptions o;
  o.cluster.tau = 8;
  o.cluster.seed = 101;
  o.quotient.exact_threshold = 100000;

  const int prev = util::num_threads();
  util::set_num_threads(1);
  const auto single = core::approximate_diameter(g, o);
  util::set_num_threads(prev);
  const auto multi = core::approximate_diameter(g, o);
  EXPECT_DOUBLE_EQ(single.estimate, multi.estimate);
  EXPECT_EQ(single.stats, multi.stats);
  EXPECT_EQ(single.clustering.center_of, multi.clustering.center_of);
}

}  // namespace
}  // namespace gdiam
