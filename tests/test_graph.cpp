// Unit tests for graph/graph.hpp + graph/builder.hpp + graph/ops.hpp:
// CSR invariants, builder normalization, structural operations.

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "graph/ops.hpp"
#include "test_helpers.hpp"

namespace gdiam {
namespace {

Graph triangle() {
  GraphBuilder b(3);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 2.0);
  b.add_edge(2, 0, 3.0);
  return b.build();
}

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.validate());
}

TEST(Graph, TriangleBasics) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_directed_edges(), 6u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 2u);
}

TEST(Graph, WeightStats) {
  const Graph g = triangle();
  EXPECT_DOUBLE_EQ(g.min_weight(), 1.0);
  EXPECT_DOUBLE_EQ(g.max_weight(), 3.0);
  EXPECT_DOUBLE_EQ(g.avg_weight(), 2.0);
}

TEST(Graph, NeighborsAlignedWithWeights) {
  const Graph g = triangle();
  const auto nbr = g.neighbors(0);
  const auto wts = g.weights(0);
  ASSERT_EQ(nbr.size(), 2u);
  ASSERT_EQ(wts.size(), 2u);
  // CSR targets are sorted per node.
  EXPECT_EQ(nbr[0], 1u);
  EXPECT_EQ(nbr[1], 2u);
  EXPECT_DOUBLE_EQ(wts[0], 1.0);
  EXPECT_DOUBLE_EQ(wts[1], 3.0);
}

TEST(Graph, ValidateAndSymmetric) {
  const Graph g = triangle();
  EXPECT_TRUE(g.validate());
  EXPECT_TRUE(g.is_symmetric());
}

TEST(Graph, ConstructorRejectsInconsistentArrays) {
  std::vector<EdgeIndex> offsets{0, 1};
  std::vector<NodeId> targets{0, 0};  // size 2 != offsets.back() == 1
  std::vector<Weight> weights{1.0, 1.0};
  EXPECT_THROW(Graph(std::move(offsets), std::move(targets),
                     std::move(weights)),
               std::invalid_argument);
}

TEST(GraphBuilder, DropsSelfLoops) {
  GraphBuilder b(2);
  b.add_edge(0, 0, 1.0);
  b.add_edge(0, 1, 1.0);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilder, ParallelEdgesKeepMinWeight) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 5.0);
  b.add_edge(1, 0, 2.0);
  b.add_edge(0, 1, 7.0);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.weights(0)[0], 2.0);
  EXPECT_DOUBLE_EQ(g.weights(1)[0], 2.0);
}

TEST(GraphBuilder, RejectsBadNodeIds) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 2, 1.0), std::out_of_range);
}

TEST(GraphBuilder, RejectsBadWeights) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(b.add_edge(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(b.add_edge(0, 1, kInfiniteWeight), std::invalid_argument);
}

TEST(GraphBuilder, ReusableAfterBuild) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 1.0);
  (void)b.build();
  EXPECT_EQ(b.pending_edges(), 0u);
  b.add_edge(1, 2, 1.0);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 0u);
}

TEST(GraphBuilder, IsolatedNodesAllowed) {
  GraphBuilder b(5);
  b.add_edge(0, 1, 1.0);
  const Graph g = b.build();
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.degree(4), 0u);
}

TEST(EdgeListRoundTrip, PreservesGraph) {
  const Graph g = test::make_family(test::Family::kGnmUniform, 50, 3);
  const EdgeList edges = to_edge_list(g);
  EXPECT_EQ(edges.size(), g.num_edges());
  const Graph h = build_graph(g.num_nodes(), edges);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    ASSERT_EQ(h.degree(u), g.degree(u));
    const auto gn = g.neighbors(u), hn = h.neighbors(u);
    const auto gw = g.weights(u), hw = h.weights(u);
    for (std::size_t i = 0; i < gn.size(); ++i) {
      EXPECT_EQ(gn[i], hn[i]);
      EXPECT_DOUBLE_EQ(gw[i], hw[i]);
    }
  }
}

TEST(Ops, EdgeWeightAndHasEdge) {
  const Graph g = triangle();
  EXPECT_TRUE(has_edge(g, 0, 1));
  EXPECT_DOUBLE_EQ(edge_weight(g, 1, 2), 2.0);
  GraphBuilder b(4);
  b.add_edge(0, 1, 1.0);
  const Graph h = b.build();
  EXPECT_FALSE(has_edge(h, 0, 2));
  EXPECT_EQ(edge_weight(h, 0, 2), kInfiniteWeight);
}

TEST(Ops, InducedSubgraphKeepsInternalEdges) {
  // Path 0-1-2-3; select {1,2,3} -> path of 3 nodes.
  GraphBuilder b(4);
  for (NodeId u = 0; u < 3; ++u) b.add_edge(u, u + 1, static_cast<Weight>(u + 1));
  const Graph g = b.build();
  const Subgraph s = induced_subgraph(g, {1, 2, 3});
  EXPECT_EQ(s.graph.num_nodes(), 3u);
  EXPECT_EQ(s.graph.num_edges(), 2u);
  // to_original must map back to the selected (sorted) ids.
  ASSERT_EQ(s.to_original.size(), 3u);
  EXPECT_EQ(s.to_original[0], 1u);
  EXPECT_EQ(s.to_original[2], 3u);
  // Weight of the 1-2 edge carried over.
  EXPECT_DOUBLE_EQ(edge_weight(s.graph, 0, 1), 2.0);
}

TEST(Ops, InducedSubgraphIgnoresDuplicates) {
  const Graph g = triangle();
  const Subgraph s = induced_subgraph(g, {0, 0, 1, 1});
  EXPECT_EQ(s.graph.num_nodes(), 2u);
  EXPECT_EQ(s.graph.num_edges(), 1u);
}

TEST(Ops, ReweightAppliesFunction) {
  const Graph g = triangle();
  const Graph h = reweight(g, [](NodeId, NodeId, Weight w) { return w * 2.0; });
  EXPECT_DOUBLE_EQ(h.min_weight(), 2.0);
  EXPECT_DOUBLE_EQ(h.max_weight(), 6.0);
  EXPECT_EQ(h.num_edges(), g.num_edges());
}

TEST(Ops, DegreeStats) {
  GraphBuilder b(4);  // star on 4 nodes
  for (NodeId u = 1; u < 4; ++u) b.add_edge(0, u, 1.0);
  const DegreeStats s = degree_stats(b.build());
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 3u);
  EXPECT_DOUBLE_EQ(s.avg, 6.0 / 4.0);
}

TEST(BruteForce, ApspOnTriangle) {
  const auto d = test::brute_force_apsp(triangle());
  EXPECT_DOUBLE_EQ(d[0][1], 1.0);
  EXPECT_DOUBLE_EQ(d[0][2], 3.0);
  EXPECT_DOUBLE_EQ(d[1][2], 2.0);
  EXPECT_DOUBLE_EQ(test::brute_force_diameter(triangle()), 3.0);
}

}  // namespace
}  // namespace gdiam
