// Tests for the BSP substrate: mr/partition.hpp (shard invariants),
// mr/exchange.hpp (deterministic delivery + traffic accounting) and
// mr/bsp_engine.hpp (superstep semantics).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>

#include "mr/bsp_engine.hpp"
#include "mr/exchange.hpp"
#include "mr/partition.hpp"
#include "test_helpers.hpp"

namespace gdiam::mr {
namespace {

using test::Family;

PartitionOptions hash_opts(std::uint32_t k) {
  return {.num_partitions = k, .strategy = PartitionStrategy::kHash};
}
PartitionOptions range_opts(std::uint32_t k) {
  return {.num_partitions = k, .strategy = PartitionStrategy::kRange};
}

// ---------------------------------------------------------------------------
// Partition invariants

class PartitionInvariants
    : public testing::TestWithParam<std::tuple<Family, std::uint32_t>> {};

TEST_P(PartitionInvariants, ValidatesOnEveryFamily) {
  const auto [family, k] = GetParam();
  const Graph g = test::make_family(family, 150, 42);
  for (const auto& opts : {hash_opts(k), range_opts(k)}) {
    const Partition p(g, opts);
    EXPECT_LE(p.num_partitions(), std::max<std::uint32_t>(1, k));
    EXPECT_TRUE(p.validate(g));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, PartitionInvariants,
    testing::Combine(testing::ValuesIn(test::all_families()),
                     testing::Values(1u, 2u, 7u, 16u)),
    [](const auto& info) {
      return std::string(test::family_name(std::get<0>(info.param))) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Partition, EveryNodeOwnedExactlyOnce) {
  const Graph g = test::make_family(Family::kMeshUniform, 100, 1);
  const Partition p(g, hash_opts(5));
  std::vector<int> seen(g.num_nodes(), 0);
  for (const Shard& sh : p.shards()) {
    for (NodeId l = 0; l < sh.num_owned; ++l) {
      seen[sh.global_of_local[l]]++;
    }
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(seen[u], 1) << "node " << u;
  }
}

TEST(Partition, EveryArcAssignedExactlyOnceWithOriginalWeight) {
  const Graph g = test::make_family(Family::kGnmUniform, 120, 9);
  const Partition p(g, hash_opts(4));
  // Reconstruct the full arc multiset from the shards.
  std::map<std::pair<NodeId, NodeId>, std::vector<Weight>> shard_arcs;
  std::uint64_t total = 0;
  for (const Shard& sh : p.shards()) {
    for (NodeId l = 0; l < sh.num_owned; ++l) {
      const NodeId u = sh.global_of_local[l];
      EXPECT_EQ(p.owner(u), sh.id);  // arcs live with their source's owner
      for (EdgeIndex i = sh.offsets[l]; i < sh.offsets[l + 1]; ++i) {
        shard_arcs[{u, sh.global_of_local[sh.targets[i]]}].push_back(
            sh.weights[i]);
        ++total;
      }
    }
  }
  EXPECT_EQ(total, g.num_directed_edges());
  std::map<std::pair<NodeId, NodeId>, std::vector<Weight>> graph_arcs;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbr = g.neighbors(u);
    const auto wts = g.weights(u);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      graph_arcs[{u, nbr[i]}].push_back(wts[i]);
    }
  }
  for (auto& [arc, wts] : shard_arcs) std::sort(wts.begin(), wts.end());
  for (auto& [arc, wts] : graph_arcs) std::sort(wts.begin(), wts.end());
  EXPECT_EQ(shard_arcs, graph_arcs);
}

TEST(Partition, GhostTablesConsistent) {
  const Graph g = test::make_family(Family::kRmatGiant, 200, 3);
  const Partition p(g, hash_opts(7));
  for (const Shard& sh : p.shards()) {
    for (NodeId gi = 0; gi < sh.num_ghosts(); ++gi) {
      const NodeId global = sh.global_of_local[sh.num_owned + gi];
      // A ghost is never owned by the shard it haunts, and its recorded
      // owner matches the global owner map.
      EXPECT_NE(sh.ghost_owner[gi], sh.id);
      EXPECT_EQ(sh.ghost_owner[gi], p.owner(global));
      // ...and the owner really owns it, with a round-tripping local id.
      const Shard& home = p.shard(sh.ghost_owner[gi]);
      const NodeId home_local = p.local_id(global);
      ASSERT_LT(home_local, home.num_owned);
      EXPECT_EQ(home.global_of_local[home_local], global);
    }
  }
}

TEST(Partition, LocalGlobalIdsRoundTrip) {
  const Graph g = test::make_family(Family::kTreePlusChords, 90, 5);
  const Partition p(g, range_opts(6));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const ShardId s = p.owner(u);
    const NodeId l = p.local_id(u);
    ASSERT_LT(l, p.shard(s).num_owned);
    EXPECT_EQ(p.global_id(s, l), u);
  }
}

TEST(Partition, SingleShardHasNoGhosts) {
  const Graph g = test::make_family(Family::kMeshUniform, 64, 2);
  const Partition p(g, hash_opts(1));
  ASSERT_EQ(p.num_partitions(), 1u);
  EXPECT_EQ(p.shard(0).num_ghosts(), 0u);
  EXPECT_EQ(p.shard(0).num_owned, g.num_nodes());
  EXPECT_EQ(p.shard(0).num_arcs(), g.num_directed_edges());
}

TEST(Partition, ClampsShardCountToNodeCount) {
  const Graph g = gen::path(3);
  const Partition p(g, hash_opts(64));
  EXPECT_LE(p.num_partitions(), 3u);
  EXPECT_TRUE(p.validate(g));
}

TEST(Partition, RangeStrategyOwnsContiguousBalancedRanges) {
  const Graph g = gen::path(100);
  const Partition p(g, range_opts(4));
  ASSERT_EQ(p.num_partitions(), 4u);
  for (NodeId u = 1; u < 100; ++u) {
    EXPECT_LE(p.owner(u - 1), p.owner(u));  // monotone => contiguous
  }
  for (const Shard& sh : p.shards()) EXPECT_EQ(sh.num_owned, 25u);
}

TEST(Partition, DescribeMentionsShardCountAndStrategy) {
  const Graph g = gen::path(20);
  const Partition p(g, range_opts(4));
  const std::string d = describe(p);
  EXPECT_NE(d.find("K=4"), std::string::npos);
  EXPECT_NE(d.find("range"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Exchange

TEST(Exchange, DeliversInSourceShardOrder) {
  Exchange<int> ex(3);
  // Stage out of source order on purpose.
  ex.send(2, 0, 20);
  ex.send(0, 0, 1);
  ex.send(1, 0, 10);
  ex.send(0, 0, 2);
  const ExchangeCounters c = ex.seal();
  const auto inbox = ex.inbox(0);
  ASSERT_EQ(inbox.size(), 4u);
  // From shard 0 first (in staging order), then 1, then 2.
  EXPECT_EQ(inbox[0], 1);
  EXPECT_EQ(inbox[1], 2);
  EXPECT_EQ(inbox[2], 10);
  EXPECT_EQ(inbox[3], 20);
  EXPECT_EQ(c.messages, 4u);
  EXPECT_EQ(c.bytes, 4u * sizeof(int));
}

TEST(Exchange, CountsCrossVersusLocalTraffic) {
  Exchange<std::uint64_t> ex(2);
  ex.send(0, 0, 1);  // shard-internal
  ex.send(0, 1, 2);  // cross
  ex.send(1, 0, 3);  // cross
  const ExchangeCounters c = ex.seal();
  EXPECT_EQ(c.messages, 3u);
  EXPECT_EQ(c.cross_messages, 2u);
  EXPECT_EQ(c.bytes, 3u * sizeof(std::uint64_t));
  EXPECT_EQ(c.cross_bytes, 2u * sizeof(std::uint64_t));
}

TEST(Exchange, ClearReadiesNextSuperstep) {
  Exchange<int> ex(2);
  ex.send(0, 1, 7);
  (void)ex.seal();
  EXPECT_TRUE(ex.sealed());
  ex.clear();
  EXPECT_FALSE(ex.sealed());
  EXPECT_EQ(ex.staged(), 0u);
  const ExchangeCounters c = ex.seal();
  EXPECT_EQ(c.messages, 0u);
  EXPECT_TRUE(ex.inbox(1).empty());
}

TEST(Exchange, RecordExchangeFillsRoundStatsCrossCounters) {
  RoundStats stats;
  ExchangeCounters c;
  c.messages = 10;
  c.bytes = 100;
  c.cross_messages = 4;
  c.cross_bytes = 40;
  record_exchange(stats, c);
  EXPECT_EQ(stats.cross_messages, 4u);
  EXPECT_EQ(stats.cross_bytes, 40u);
  // Shard-internal traffic never reaches the wire counters.
  EXPECT_EQ(stats.messages, 0u);
}

// ---------------------------------------------------------------------------
// BspEngine

TEST(BspEngine, SuperstepComputesExchangesApplies) {
  // Each shard sends its owned-node count to every other shard; after the
  // superstep every shard knows the total node count.
  const Graph g = gen::path(30);
  const Partition p(g, hash_opts(3));
  BspEngine engine(p);
  Exchange<NodeId> ex(p.num_partitions());

  std::vector<NodeId> known(p.num_partitions(), 0);
  const ExchangeCounters c = engine.superstep(
      ex,
      [&](const Shard& sh, Exchange<NodeId>& out) {
        known[sh.id] = sh.num_owned;
        for (ShardId to = 0; to < p.num_partitions(); ++to) {
          if (to != sh.id) out.send(sh.id, to, sh.num_owned);
        }
      },
      [&](const Shard& sh, std::span<const NodeId> inbox) {
        for (const NodeId counted : inbox) known[sh.id] += counted;
      });

  for (ShardId s = 0; s < p.num_partitions(); ++s) {
    EXPECT_EQ(known[s], g.num_nodes()) << "shard " << s;
  }
  EXPECT_EQ(engine.supersteps(), 1u);
  EXPECT_EQ(c.cross_messages,
            std::uint64_t{p.num_partitions()} * (p.num_partitions() - 1));
}

TEST(BspEngine, RecordsCrossTrafficIntoRoundStats) {
  const Graph g = gen::path(20);
  const Partition p(g, range_opts(4));
  BspEngine engine(p);
  Exchange<std::uint32_t> ex(p.num_partitions());
  RoundStats stats;
  engine.superstep(
      ex,
      [&](const Shard& sh, Exchange<std::uint32_t>& out) {
        // Ring: each shard pings its successor.
        out.send(sh.id, (sh.id + 1) % p.num_partitions(), sh.id);
      },
      [](const Shard&, std::span<const std::uint32_t>) {}, &stats);
  EXPECT_EQ(stats.cross_messages, 4u);
  EXPECT_EQ(stats.cross_bytes, 4u * sizeof(std::uint32_t));
}

}  // namespace
}  // namespace gdiam::mr
