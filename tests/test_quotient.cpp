// Tests for core/quotient.hpp: quotient construction rules, the
// conservativeness property Φ(G_C) + 2R ≥ Φ(G), and quotient diameter
// computation (exact vs sweep paths).

#include <gtest/gtest.h>

#include <numeric>

#include "core/cluster.hpp"
#include "core/quotient.hpp"
#include "gen/basic.hpp"
#include "gen/weights.hpp"
#include "graph/builder.hpp"
#include "graph/ops.hpp"
#include "sssp/dijkstra.hpp"
#include "test_helpers.hpp"

namespace gdiam::core {
namespace {

using test::Family;

/// Every node its own cluster: the quotient must equal the original graph.
Clustering identity_clustering(const Graph& g) {
  Clustering c;
  const NodeId n = g.num_nodes();
  c.center_of.resize(n);
  std::iota(c.center_of.begin(), c.center_of.end(), NodeId{0});
  c.dist_to_center.assign(n, 0.0);
  c.centers = c.center_of;
  c.radius = 0.0;
  return c;
}

TEST(Quotient, IdentityClusteringReproducesGraph) {
  const Graph g = test::make_family(Family::kGnmUniform, 60, 3);
  const QuotientGraph q = build_quotient(g, identity_clustering(g));
  EXPECT_EQ(q.graph.num_nodes(), g.num_nodes());
  EXPECT_EQ(q.graph.num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(q.cluster_of_node[u], u);
    const auto gw = g.weights(u), qw = q.graph.weights(u);
    for (std::size_t i = 0; i < gw.size(); ++i) {
      EXPECT_DOUBLE_EQ(gw[i], qw[i]);
    }
  }
}

TEST(Quotient, TwoClusterPath) {
  // Path 0-1-2-3 (unit); clusters {0,1} centered 0 and {2,3} centered 3.
  const Graph g = gen::path(4);
  Clustering c;
  c.center_of = {0, 0, 3, 3};
  c.dist_to_center = {0.0, 1.0, 1.0, 0.0};
  c.centers = {0, 3};
  c.radius = 1.0;
  const QuotientGraph q = build_quotient(g, c);
  EXPECT_EQ(q.graph.num_nodes(), 2u);
  EXPECT_EQ(q.graph.num_edges(), 1u);
  // Edge (1,2): w + d_1 + d_2 = 1 + 1 + 1 = 3.
  EXPECT_DOUBLE_EQ(edge_weight(q.graph, 0, 1), 3.0);
  EXPECT_EQ(q.center_of_cluster[0], 0u);
  EXPECT_EQ(q.center_of_cluster[1], 3u);
}

TEST(Quotient, ParallelInterClusterEdgesKeepMinimum) {
  // Two parallel connections between the clusters with different d-sums.
  GraphBuilder b(4);
  b.add_edge(0, 2, 10.0);
  b.add_edge(1, 3, 1.0);
  b.add_edge(0, 1, 1.0);
  b.add_edge(2, 3, 1.0);
  const Graph g = b.build();
  Clustering c;
  c.center_of = {0, 0, 2, 2};
  c.dist_to_center = {0.0, 1.0, 0.0, 1.0};
  c.centers = {0, 2};
  c.radius = 1.0;
  const QuotientGraph q = build_quotient(g, c);
  EXPECT_EQ(q.graph.num_edges(), 1u);
  // min(10 + 0 + 0, 1 + 1 + 1) = 3.
  EXPECT_DOUBLE_EQ(edge_weight(q.graph, 0, 1), 3.0);
}

TEST(Quotient, MismatchedClusteringThrows) {
  const Graph g = gen::path(5);
  Clustering c = identity_clustering(gen::path(4));
  EXPECT_THROW((void)build_quotient(g, c), std::invalid_argument);
}

TEST(Quotient, IntraClusterEdgesVanish) {
  const Graph g = gen::complete(6);
  Clustering c;
  c.center_of = {0, 0, 0, 0, 0, 0};
  c.dist_to_center = {0.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  c.centers = {0};
  c.radius = 1.0;
  const QuotientGraph q = build_quotient(g, c);
  EXPECT_EQ(q.graph.num_nodes(), 1u);
  EXPECT_EQ(q.graph.num_edges(), 0u);
}

// ---------------------------------------------------------------------------
// The parallel construction (OpenMP edge scan + atomic-max radii + parallel
// sort) must reproduce the straightforward serial build bit-for-bit:
// identical quotient CSR arrays, membership and radii.

QuotientGraph serial_reference_quotient(const Graph& g, const Clustering& c) {
  QuotientGraph out;
  out.center_of_cluster = c.centers;
  const auto k = static_cast<NodeId>(c.centers.size());
  std::vector<NodeId> index_of_center(g.num_nodes(), kInvalidNode);
  for (NodeId i = 0; i < k; ++i) index_of_center[c.centers[i]] = i;
  out.cluster_of_node.resize(g.num_nodes());
  out.cluster_radius.assign(k, 0.0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const NodeId cu = index_of_center[c.center_of[u]];
    out.cluster_of_node[u] = cu;
    out.cluster_radius[cu] =
        std::max(out.cluster_radius[cu], c.dist_to_center[u]);
  }
  GraphBuilder b(k);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbr = g.neighbors(u);
    const auto wts = g.weights(u);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      if (u >= nbr[i]) continue;
      const NodeId cu = out.cluster_of_node[u];
      const NodeId cv = out.cluster_of_node[nbr[i]];
      if (cu == cv) continue;
      b.add_edge(cu, cv,
                 wts[i] + c.dist_to_center[u] + c.dist_to_center[nbr[i]]);
    }
  }
  out.graph = b.build();
  return out;
}

TEST(QuotientParallel, BitIdenticalToSerialReferenceOnAllFamilies) {
  for (const Family family : test::all_families()) {
    const Graph g = test::make_family(family, 220, 19);
    ClusterOptions opts;
    opts.tau = 4;
    opts.seed = 29;
    opts.stop_factor = 2.0;
    const Clustering c = cluster(g, opts);

    const QuotientGraph a = serial_reference_quotient(g, c);
    const QuotientGraph b = build_quotient(g, c);
    EXPECT_EQ(a.cluster_of_node, b.cluster_of_node)
        << test::family_name(family);
    EXPECT_EQ(a.cluster_radius, b.cluster_radius);  // exact, not approximate
    EXPECT_EQ(a.center_of_cluster, b.center_of_cluster);
    EXPECT_EQ(test::vec(a.graph.offsets()), test::vec(b.graph.offsets()));
    EXPECT_EQ(test::vec(a.graph.targets()), test::vec(b.graph.targets()));
    EXPECT_EQ(test::vec(a.graph.edge_weights()),
              test::vec(b.graph.edge_weights()));
  }
}

TEST(QuotientParallel, BuildParallelMatchesBuildOnAdversarialInput) {
  // Duplicates, parallel edges with distinct weights, both orientations —
  // the dedup rule (min weight per pair) must come out identical.
  util::Xoshiro256 rng(101);
  GraphBuilder serial(300);
  GraphBuilder parallel(300);
  for (int i = 0; i < 50000; ++i) {
    const auto u = static_cast<NodeId>(rng.next_bounded(300));
    const auto v = static_cast<NodeId>(rng.next_bounded(300));
    if (u == v) continue;
    const Weight w = 1.0 + static_cast<Weight>(rng.next_bounded(8));
    serial.add_edge(u, v, w);
    parallel.add_edge(u, v, w);
  }
  const Graph a = serial.build();
  const Graph b = parallel.build_parallel();
  EXPECT_EQ(test::vec(a.offsets()), test::vec(b.offsets()));
  EXPECT_EQ(test::vec(a.targets()), test::vec(b.targets()));
  EXPECT_EQ(test::vec(a.edge_weights()), test::vec(b.edge_weights()));
}

// ---------------------------------------------------------------------------
// The headline property: Φ(G_C) + 2R is a conservative diameter estimate.

class QuotientConservative
    : public testing::TestWithParam<
          std::tuple<Family, std::uint32_t, std::uint64_t>> {};

TEST_P(QuotientConservative, EstimateAtLeastTrueDiameter) {
  const auto [family, tau, seed] = GetParam();
  const Graph g = test::make_family(family, 120, seed);
  const Weight diam = test::brute_force_diameter(g);

  ClusterOptions o;
  o.tau = tau;
  o.seed = seed;
  const Clustering c = cluster(g, o);
  const QuotientGraph q = build_quotient(g, c);
  const Weight phi_qc = sssp::exact_diameter(q.graph);
  const Weight estimate = phi_qc + 2.0 * c.radius;
  EXPECT_GE(estimate * (1.0 + 1e-6), diam)
      << test::family_name(family) << " tau=" << tau << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuotientConservative,
    testing::Combine(testing::ValuesIn(test::all_families()),
                     testing::Values(1u, 4u, 16u),
                     testing::Values(2u, 31u)),
    [](const auto& param_info) {
      return std::string(test::family_name(std::get<0>(param_info.param))) +
             "_t" + std::to_string(std::get<1>(param_info.param)) + "_s" +
             std::to_string(std::get<2>(param_info.param));
    });

TEST(QuotientDiameter, ExactBelowThreshold) {
  const Graph g = test::make_family(Family::kGnmUniform, 100, 3);
  QuotientDiameterOptions o;
  o.exact_threshold = 200;
  const QuotientDiameterResult r = quotient_diameter(g, o);
  EXPECT_TRUE(r.exact);
  EXPECT_NEAR(r.diameter, test::brute_force_diameter(g), 1e-9);
}

TEST(QuotientDiameter, SweepsAboveThreshold) {
  const Graph g = gen::path(300);
  QuotientDiameterOptions o;
  o.exact_threshold = 10;
  o.sweeps = 4;
  const QuotientDiameterResult r = quotient_diameter(g, o);
  EXPECT_FALSE(r.exact);
  // Sweeps nail a path's diameter after the first bounce.
  EXPECT_DOUBLE_EQ(r.diameter, 299.0);
}

TEST(QuotientDiameter, SweepNeverExceedsExact) {
  const Graph g = test::make_family(Family::kRmatGiant, 300, 9);
  QuotientDiameterOptions sweep_o;
  sweep_o.exact_threshold = 1;
  sweep_o.sweeps = 8;
  const Weight exact = sssp::exact_diameter(g);
  const QuotientDiameterResult r = quotient_diameter(g, sweep_o);
  EXPECT_LE(r.diameter, exact + 1e-9);
  EXPECT_GT(r.diameter, 0.0);
}

TEST(QuotientDiameter, EmptyGraph) {
  const QuotientDiameterResult r = quotient_diameter(Graph{});
  EXPECT_DOUBLE_EQ(r.diameter, 0.0);
}

TEST(QuotientDiameters, PlainAndAugmentedConsistent) {
  const Graph g = test::make_family(Family::kMeshUniform, 200, 5);
  ClusterOptions o;
  o.tau = 4;
  o.seed = 5;
  const Clustering c = cluster(g, o);
  const QuotientGraph q = build_quotient(g, c);

  QuotientDiameterOptions qopts;
  qopts.exact_threshold = 100000;
  const QuotientDiametersResult both = quotient_diameters(q, qopts);
  ASSERT_TRUE(both.exact);
  // plain agrees with the standalone exact computation.
  EXPECT_NEAR(both.plain, quotient_diameter(q.graph, qopts).diameter, 1e-9);
  // augmented ≥ plain (radii are nonnegative) and ≥ 2·max cluster radius.
  EXPECT_GE(both.augmented, both.plain);
  Weight max_r = 0.0;
  for (const Weight r : q.cluster_radius) max_r = std::max(max_r, r);
  EXPECT_GE(both.augmented * (1.0 + 1e-12), 2.0 * max_r);
  // augmented ≤ the paper's classic bound plain + 2·max r.
  EXPECT_LE(both.augmented, both.plain + 2.0 * max_r + 1e-9);
  // The radius-aware wrapper matches.
  EXPECT_DOUBLE_EQ(quotient_diameter_radius_aware(q, qopts).diameter,
                   both.augmented);
}

TEST(QuotientDiameters, ClusterRadiusPerCluster) {
  const Graph g = gen::path(6);
  Clustering c;
  c.center_of = {0, 0, 0, 5, 5, 5};
  c.dist_to_center = {0.0, 1.0, 2.0, 2.0, 1.0, 0.0};
  c.centers = {0, 5};
  c.radius = 2.0;
  const QuotientGraph q = build_quotient(g, c);
  ASSERT_EQ(q.cluster_radius.size(), 2u);
  EXPECT_DOUBLE_EQ(q.cluster_radius[0], 2.0);
  EXPECT_DOUBLE_EQ(q.cluster_radius[1], 2.0);
  // Edge (2,3): w + d2 + d3 = 1 + 2 + 2 = 5; augmented diameter = 5 + 2 + 2.
  QuotientDiameterOptions qopts;
  const auto both = quotient_diameters(q, qopts);
  EXPECT_DOUBLE_EQ(both.plain, 5.0);
  EXPECT_DOUBLE_EQ(both.augmented, 9.0);
}

TEST(QuotientDiameters, SweepPathMatchesExactOnPathQuotient) {
  // Identity clustering of a long path: radii all 0, augmented == plain.
  const Graph g = gen::path(500);
  const Clustering c = identity_clustering(g);
  const QuotientGraph q = build_quotient(g, c);
  QuotientDiameterOptions qopts;
  qopts.exact_threshold = 10;  // force the sweep path
  qopts.sweeps = 4;
  const auto both = quotient_diameters(q, qopts);
  EXPECT_FALSE(both.exact);
  EXPECT_DOUBLE_EQ(both.plain, 499.0);
  EXPECT_DOUBLE_EQ(both.augmented, 499.0);
}

TEST(QuotientDiameter, DisconnectedQuotientUsesLargestIntraComponentDistance) {
  GraphBuilder b(7);
  for (NodeId u = 0; u + 1 < 4; ++u) b.add_edge(u, u + 1, 2.0);  // diam 6
  b.add_edge(5, 6, 1.0);                                         // diam 1
  const QuotientDiameterResult r = quotient_diameter(b.build());
  EXPECT_TRUE(r.exact);
  EXPECT_DOUBLE_EQ(r.diameter, 6.0);
}

}  // namespace
}  // namespace gdiam::core
