// Tests for the SSSP substrate: Dijkstra against brute-force APSP, parallel
// Δ-stepping, ρ-stepping and Bellman–Ford against Dijkstra (parameterized
// sweeps over graph families, seeds, Δ choices, ρ targets and shard counts),
// eccentricities, sweep lower bounds.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "exec/context.hpp"
#include "gen/basic.hpp"
#include "gen/mesh.hpp"
#include "gen/weights.hpp"
#include "graph/builder.hpp"
#include "sssp/bellman_ford.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/rho_stepping.hpp"
#include "sssp/sweep.hpp"
#include "test_helpers.hpp"

namespace gdiam::sssp {
namespace {

using test::Family;

TEST(Dijkstra, PathDistancesExact) {
  const Graph g = gen::path(10);
  const auto d = dijkstra_distances(g, 0);
  for (NodeId u = 0; u < 10; ++u) EXPECT_DOUBLE_EQ(d[u], u);
}

TEST(Dijkstra, UnreachableIsInfinite) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 1.0);
  b.add_edge(2, 3, 1.0);
  const auto d = dijkstra_distances(b.build(), 0);
  EXPECT_EQ(d[2], kInfiniteWeight);
  EXPECT_EQ(d[3], kInfiniteWeight);
  EXPECT_DOUBLE_EQ(d[1], 1.0);
}

TEST(Dijkstra, ParentsFormShortestPathTree) {
  const Graph g = test::make_family(Family::kGnmUniform, 60, 1);
  const SsspResult r = dijkstra(g, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (u == 0 || r.dist[u] == kInfiniteWeight) continue;
    const NodeId p = r.parent[u];
    ASSERT_NE(p, kInvalidNode);
    // Parent edge closes the distance exactly.
    bool found = false;
    const auto nbr = g.neighbors(p);
    const auto wts = g.weights(p);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      if (nbr[i] == u &&
          std::abs(r.dist[p] + wts[i] - r.dist[u]) < 1e-12) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << "node " << u;
  }
}

TEST(Dijkstra, FarthestMatchesEccentricity) {
  const Graph g = test::make_family(Family::kMeshUniform, 100, 2);
  const SsspResult r = dijkstra(g, 5);
  EXPECT_DOUBLE_EQ(r.dist[r.farthest], r.eccentricity);
  EXPECT_DOUBLE_EQ(eccentricity(g, 5), r.eccentricity);
}

TEST(Dijkstra, ExactDiameterMatchesBruteForce) {
  for (const Family f : test::all_families()) {
    const Graph g = test::make_family(f, 40, 3);
    EXPECT_NEAR(exact_diameter(g), test::brute_force_diameter(g), 1e-9)
        << test::family_name(f);
  }
}

// ---------------------------------------------------------------------------
// Parameterized: Dijkstra vs brute force across families and seeds.

class DijkstraVsBrute
    : public testing::TestWithParam<std::tuple<Family, std::uint64_t>> {};

TEST_P(DijkstraVsBrute, AllSourcesMatch) {
  const auto [family, seed] = GetParam();
  const Graph g = test::make_family(family, 36, seed);
  const auto apsp = test::brute_force_apsp(g);
  for (NodeId s = 0; s < g.num_nodes(); s += 7) {
    const auto d = dijkstra_distances(g, s);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (apsp[s][u] == kInfiniteWeight) {
        EXPECT_EQ(d[u], kInfiniteWeight);
      } else {
        // Relative tolerance: Floyd–Warshall and Dijkstra may sum the same
        // path weights in different orders.
        EXPECT_NEAR(d[u], apsp[s][u], 1e-12 * (1.0 + apsp[s][u]));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, DijkstraVsBrute,
    testing::Combine(testing::ValuesIn(test::all_families()),
                     testing::Values(1u, 2u, 3u)),
    [](const auto& param_info) {
      return std::string(test::family_name(std::get<0>(param_info.param))) +
             "_s" + std::to_string(std::get<1>(param_info.param));
    });

// ---------------------------------------------------------------------------
// Parameterized: Δ-stepping distances equal Dijkstra for every family and a
// sweep of Δ values spanning Dijkstra-like to Bellman–Ford-like behaviour.

class DeltaSteppingMatchesDijkstra
    : public testing::TestWithParam<std::tuple<Family, double>> {};

TEST_P(DeltaSteppingMatchesDijkstra, DistancesEqual) {
  const auto [family, delta_factor] = GetParam();
  const Graph g = test::make_family(family, 300, 17);
  const NodeId source = g.num_nodes() / 3;
  const auto ref = dijkstra_distances(g, source);

  DeltaSteppingOptions opts;
  opts.delta = delta_factor > 0.0 ? delta_factor * g.avg_weight() : 0.0;
  const DeltaSteppingResult r = delta_stepping(g, source, opts);
  ASSERT_EQ(r.dist.size(), ref.size());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (ref[u] == kInfiniteWeight) {
      EXPECT_EQ(r.dist[u], kInfiniteWeight);
    } else {
      EXPECT_NEAR(r.dist[u], ref[u], 1e-9 * (1.0 + ref[u])) << "node " << u;
    }
  }
  EXPECT_NEAR(r.eccentricity, *std::max_element(
      ref.begin(), ref.end(),
      [](Weight a, Weight b) {
        return (a == kInfiniteWeight ? -1.0 : a) <
               (b == kInfiniteWeight ? -1.0 : b);
      }),
      1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesTimesDelta, DeltaSteppingMatchesDijkstra,
    testing::Combine(testing::ValuesIn(test::all_families()),
                     testing::Values(0.0, 0.1, 1.0, 10.0, 1000.0)),
    [](const auto& param_info) {
      const int pct = static_cast<int>(std::get<1>(param_info.param) * 10.0);
      return std::string(test::family_name(std::get<0>(param_info.param))) +
             "_d" + std::to_string(pct);
    });

TEST(DeltaStepping, AutoDeltaUsesAverageWeight) {
  const Graph g = test::make_family(Family::kGnmUniform, 100, 19);
  const DeltaSteppingResult r = delta_stepping(g, 0, {});
  EXPECT_DOUBLE_EQ(r.delta_used, g.avg_weight());
}

TEST(DeltaStepping, BadSourceThrows) {
  const Graph g = gen::path(4);
  EXPECT_THROW((void)delta_stepping(g, 4, {}), std::out_of_range);
}

TEST(DeltaStepping, SingleNodeGraph) {
  const Graph g = build_graph(1, {});
  const DeltaSteppingResult r = delta_stepping(g, 0, {});
  EXPECT_DOUBLE_EQ(r.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(r.eccentricity, 0.0);
}

TEST(DeltaStepping, LargerDeltaFewerBuckets) {
  const Graph g = test::make_family(Family::kMeshUniform, 400, 23);
  DeltaSteppingOptions small_d{.delta = 0.2 * g.avg_weight()};
  DeltaSteppingOptions large_d{.delta = 20.0 * g.avg_weight()};
  const auto rs = delta_stepping(g, 0, small_d);
  const auto rl = delta_stepping(g, 0, large_d);
  EXPECT_GT(rs.buckets_processed, rl.buckets_processed);
  EXPECT_GT(rs.stats.rounds(), rl.stats.rounds());
}

TEST(DeltaStepping, StatsAreConsistent) {
  const Graph g = test::make_family(Family::kTreePlusChords, 200, 29);
  const DeltaSteppingResult r = delta_stepping(g, 0, {});
  EXPECT_GT(r.stats.relaxation_rounds, 0u);
  EXPECT_GT(r.stats.messages, 0u);
  EXPECT_GT(r.stats.node_updates, 0u);
  // Every reachable non-source node was updated at least once.
  EXPECT_GE(r.stats.node_updates, g.num_nodes() - 1);
  EXPECT_GE(r.stats.messages, r.stats.node_updates);
  EXPECT_EQ(r.stats.work(), r.stats.messages + r.stats.node_updates);
}

TEST(DeltaStepping, PhaseCapStillExact) {
  // A tiny per-bucket phase cap forces buckets to be revisited; distances
  // must still converge to the Dijkstra fixpoint.
  for (const Family f : {Family::kPathHeavyTail, Family::kMeshUniform}) {
    const Graph g = test::make_family(f, 250, 53);
    const auto ref = dijkstra_distances(g, 1);
    DeltaSteppingOptions o;
    o.max_phases_per_bucket = 1;
    const DeltaSteppingResult r = delta_stepping(g, 1, o);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (ref[u] == kInfiniteWeight) {
        EXPECT_EQ(r.dist[u], kInfiniteWeight);
      } else {
        EXPECT_NEAR(r.dist[u], ref[u], 1e-9 * (1.0 + ref[u]))
            << test::family_name(f) << " node " << u;
      }
    }
  }
}

TEST(DeltaStepping, PhaseCapAddsRoundsNotErrors) {
  const Graph g = test::make_family(Family::kMeshUniform, 300, 59);
  DeltaSteppingOptions capped;
  capped.max_phases_per_bucket = 1;
  const auto free_run = delta_stepping(g, 0, {});
  const auto capped_run = delta_stepping(g, 0, capped);
  EXPECT_EQ(free_run.dist, capped_run.dist);
  EXPECT_GE(capped_run.stats.auxiliary_rounds,
            free_run.stats.auxiliary_rounds);
}

TEST(DeltaStepping, DeterministicAcrossRuns) {
  const Graph g = test::make_family(Family::kRmatGiant, 500, 31);
  const auto a = delta_stepping(g, 1, {});
  const auto b = delta_stepping(g, 1, {});
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.rounds(), b.stats.rounds());
}

// ---------------------------------------------------------------------------
// ρ-stepping (sssp/rho_stepping.hpp): exact distances for every family, every
// batch target ρ from Dijkstra-like (tiny ρ, many steps) to Bellman–Ford-like
// (huge ρ, one step), and every shard count K — the acceptance criterion is
// bit-identical distances, not near-equality, because both kernels settle the
// same min-over-paths fixpoint on the same order-encoded doubles.

class RhoSteppingMatchesDijkstra
    : public testing::TestWithParam<
          std::tuple<Family, std::uint64_t, std::uint32_t>> {};

TEST_P(RhoSteppingMatchesDijkstra, DistancesBitIdentical) {
  const auto [family, rho, k] = GetParam();
  const Graph g = test::make_family(family, 300, 17);
  const NodeId source = g.num_nodes() / 3;
  const auto ref = dijkstra_distances(g, source);

  DeltaSteppingOptions opts;
  opts.algorithm = exec::Algorithm::kRhoStepping;
  opts.rho = rho;
  opts.partition.num_partitions = k;
  const DeltaSteppingResult r = rho_stepping(g, source, opts);
  ASSERT_EQ(r.dist.size(), ref.size());
  EXPECT_EQ(r.dist, ref);
  EXPECT_EQ(r.algorithm_used, exec::Algorithm::kRhoStepping);
  EXPECT_EQ(r.rho_used, rho != 0 ? rho : std::max<std::uint64_t>(
                                             1024, g.num_nodes() / 64));
  EXPECT_EQ(r.partitions_used, std::max(k, 1u));
  EXPECT_DOUBLE_EQ(r.dist[r.farthest], r.eccentricity);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesTimesRhoTimesK, RhoSteppingMatchesDijkstra,
    testing::Combine(testing::ValuesIn(test::all_families()),
                     testing::Values(0u, 8u, 64u, 1000000u),
                     testing::Values(1u, 2u, 7u)),
    [](const auto& param_info) {
      return std::string(test::family_name(std::get<0>(param_info.param))) +
             "_r" + std::to_string(std::get<1>(param_info.param)) + "_k" +
             std::to_string(std::get<2>(param_info.param));
    });

TEST(RhoStepping, DispatcherSelectsKernel) {
  const Graph g = test::make_family(Family::kGnmUniform, 200, 19);
  DeltaSteppingOptions opts;
  const DeltaSteppingResult d = shortest_paths(g, 0, opts);
  EXPECT_EQ(d.algorithm_used, exec::Algorithm::kDeltaStepping);
  EXPECT_EQ(d.rho_used, 0u);
  opts.algorithm = exec::Algorithm::kRhoStepping;
  const DeltaSteppingResult r = shortest_paths(g, 0, opts);
  EXPECT_EQ(r.algorithm_used, exec::Algorithm::kRhoStepping);
  EXPECT_GT(r.rho_used, 0u);
  EXPECT_DOUBLE_EQ(r.delta_used, 0.0);
  EXPECT_EQ(r.dist, d.dist);
}

TEST(RhoStepping, SmallRhoManyStepsHugeRhoFewSteps) {
  // ρ bounds per-step batch size, so steps track n/ρ: a tiny target must
  // take many more extract-relax steps than one that swallows the graph.
  const Graph g = test::make_family(Family::kMeshUniform, 400, 23);
  DeltaSteppingOptions small_r{.rho = 4};
  small_r.algorithm = exec::Algorithm::kRhoStepping;
  DeltaSteppingOptions large_r{.rho = 1u << 20};
  large_r.algorithm = exec::Algorithm::kRhoStepping;
  const auto rs = rho_stepping(g, 0, small_r);
  const auto rl = rho_stepping(g, 0, large_r);
  EXPECT_GT(rs.buckets_processed, rl.buckets_processed);
  EXPECT_GT(rs.stats.rounds(), rl.stats.rounds());
  // Tiny ρ approaches Dijkstra's work profile: fewer re-relaxations than the
  // one-shot Bellman–Ford-like run.
  EXPECT_LE(rs.stats.messages, rl.stats.messages * 4);
  EXPECT_EQ(rs.dist, rl.dist);
}

TEST(RhoStepping, StatsAreConsistent) {
  const Graph g = test::make_family(Family::kTreePlusChords, 200, 29);
  DeltaSteppingOptions opts;
  opts.algorithm = exec::Algorithm::kRhoStepping;
  const DeltaSteppingResult r = rho_stepping(g, 0, opts);
  EXPECT_GT(r.stats.relaxation_rounds, 0u);
  EXPECT_GT(r.stats.auxiliary_rounds, 0u);  // one threshold scan per step
  EXPECT_GE(r.stats.node_updates, g.num_nodes() - 1);
  EXPECT_GE(r.stats.messages, r.stats.node_updates);
  EXPECT_EQ(r.stats.work(), r.stats.messages + r.stats.node_updates);
}

TEST(RhoStepping, DeterministicAcrossRunsIncludingCounters) {
  // The threshold sample is a pure function of the frontier *set* (hash of
  // seed, step, vertex), so repeated runs must agree on every model counter,
  // not just distances — the determinism contract of DESIGN.md §11.
  const Graph g = test::make_family(Family::kRmatGiant, 500, 31);
  DeltaSteppingOptions opts;
  opts.rho = 64;  // small enough that sampling actually engages
  opts.algorithm = exec::Algorithm::kRhoStepping;
  const auto a = rho_stepping(g, 1, opts);
  const auto b = rho_stepping(g, 1, opts);
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.node_updates, b.stats.node_updates);
  EXPECT_EQ(a.stats.rounds(), b.stats.rounds());
  EXPECT_EQ(a.buckets_processed, b.buckets_processed);
}

TEST(RhoStepping, LegacyNonAdaptivePathBitIdentical) {
  const Graph g = test::make_family(Family::kGnmUniform, 250, 37);
  DeltaSteppingOptions opts;
  opts.algorithm = exec::Algorithm::kRhoStepping;
  const auto adaptive = rho_stepping(g, 2, opts);
  opts.frontier.adaptive = false;
  const auto legacy = rho_stepping(g, 2, opts);
  EXPECT_EQ(adaptive.dist, legacy.dist);
  EXPECT_EQ(adaptive.eccentricity, legacy.eccentricity);
}

TEST(RhoStepping, SampledFrontierSizingKeepsDistances) {
  // The sampled size estimate may reshuffle the sparse/dense schedule of the
  // improved sets but never the results (core/frontier.hpp).
  const Graph g = test::make_family(Family::kMeshUniform, 400, 41);
  DeltaSteppingOptions opts;
  opts.algorithm = exec::Algorithm::kRhoStepping;
  const auto exact = rho_stepping(g, 0, opts);
  opts.frontier.sampled_size_estimate = true;
  const auto sampled = rho_stepping(g, 0, opts);
  EXPECT_EQ(exact.dist, sampled.dist);
  EXPECT_EQ(exact.stats.messages, sampled.stats.messages);
  EXPECT_EQ(exact.stats.node_updates, sampled.stats.node_updates);
}

TEST(RhoStepping, BadSourceThrowsAndSingleNodeWorks) {
  DeltaSteppingOptions opts;
  opts.algorithm = exec::Algorithm::kRhoStepping;
  EXPECT_THROW((void)rho_stepping(gen::path(4), 4, opts), std::out_of_range);
  const Graph g1 = build_graph(1, {});
  const DeltaSteppingResult r = rho_stepping(g1, 0, opts);
  EXPECT_DOUBLE_EQ(r.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(r.eccentricity, 0.0);
}

TEST(RhoStepping, SweepSharesOneContextAcrossKernels) {
  // One exec::Context serves a Δ-kernel sweep and then a ρ-kernel sweep on
  // the same graph: the ρ runs reuse the pooled RoundBuffers (and leave the
  // Δ-presplit cache alone), and both match the Dijkstra-kernel bound.
  const Graph g = test::make_family(Family::kMeshUniform, 300, 43);
  const SweepResult ref = diameter_lower_bound(g, 4, 43);

  exec::Context ctx;
  SweepOptions so;
  so.max_sweeps = 4;
  so.seed = 43;
  so.use_delta_stepping = true;
  const SweepResult ds = diameter_lower_bound(g, so, &ctx);
  so.delta.algorithm = exec::Algorithm::kRhoStepping;
  const SweepResult rs = diameter_lower_bound(g, so, &ctx);

  EXPECT_DOUBLE_EQ(ds.lower_bound, ref.lower_bound);
  EXPECT_DOUBLE_EQ(rs.lower_bound, ref.lower_bound);
  EXPECT_EQ(rs.sources, ref.sources);
  EXPECT_GT(rs.stats.rounds(), 0u);
}

TEST(BellmanFord, MatchesDijkstraOnFamilies) {
  for (const Family f : test::all_families()) {
    const Graph g = test::make_family(f, 150, 37);
    const auto ref = dijkstra_distances(g, 2);
    const BellmanFordResult r = bellman_ford(g, 2);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (ref[u] == kInfiniteWeight) {
        EXPECT_EQ(r.dist[u], kInfiniteWeight);
      } else {
        EXPECT_NEAR(r.dist[u], ref[u], 1e-9 * (1.0 + ref[u]))
            << test::family_name(f) << " node " << u;
      }
    }
  }
}

TEST(BellmanFord, PhasesAreHopEccentricityPlusOne) {
  // 63 phases reach node 63; one final phase discovers the fixpoint.
  const Graph g = gen::path(64);
  const BellmanFordResult r = bellman_ford(g, 0);
  EXPECT_EQ(r.phases, 64u);
}

TEST(BellmanFord, PhasesCanExceedHopsWithWeights) {
  // Heavy direct edge, light long way around: relaxations revisit nodes.
  GraphBuilder b(4);
  b.add_edge(0, 3, 10.0);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 1.0);
  b.add_edge(2, 3, 1.0);
  const BellmanFordResult r = bellman_ford(b.build(), 0);
  EXPECT_DOUBLE_EQ(r.dist[3], 3.0);
}

TEST(Sweep, LowerBoundNeverExceedsDiameter) {
  for (const Family f : test::all_families()) {
    const Graph g = test::make_family(f, 64, 41);
    const Weight diam = test::brute_force_diameter(g);
    const SweepResult s = diameter_lower_bound(g, 8, 41);
    EXPECT_LE(s.lower_bound, diam + 1e-9) << test::family_name(f);
    EXPECT_GT(s.lower_bound, 0.0);
  }
}

TEST(Sweep, FindsExactDiameterOfPath) {
  const SweepResult s = diameter_lower_bound(gen::path(100), 3, 7);
  EXPECT_DOUBLE_EQ(s.lower_bound, 99.0);
}

TEST(Sweep, RespectsSeedNode) {
  const Graph g = gen::path(50);
  const SweepResult s = diameter_lower_bound(g, 1, 0, /*seed_node=*/0);
  ASSERT_EQ(s.sources.size(), 1u);
  EXPECT_EQ(s.sources[0], 0u);
  EXPECT_DOUBLE_EQ(s.lower_bound, 49.0);
}

TEST(Sweep, StopsOnFarthestPairCycle) {
  // On a path, sweeps bounce between the two endpoints: at most 3 runs.
  const SweepResult s = diameter_lower_bound(gen::path(64), 100, 13);
  EXPECT_LE(s.sources.size(), 3u);
}

TEST(Sweep, EccentricitiesRecordedPerSource) {
  const Graph g = test::make_family(Family::kMeshUniform, 100, 43);
  const SweepResult s = diameter_lower_bound(g, 5, 43);
  ASSERT_EQ(s.sources.size(), s.eccentricities.size());
  Weight best = 0.0;
  for (const Weight e : s.eccentricities) best = std::max(best, e);
  EXPECT_DOUBLE_EQ(best, s.lower_bound);
}

TEST(Sweep, EmptyAndZeroBudget) {
  EXPECT_DOUBLE_EQ(diameter_lower_bound(Graph{}, 4).lower_bound, 0.0);
  EXPECT_DOUBLE_EQ(diameter_lower_bound(gen::path(5), 0).lower_bound, 0.0);
}

TEST(TwoApprox, BoundsSandwichTheDiameter) {
  for (const Family f : test::all_families()) {
    const Graph g = test::make_family(f, 80, 47);
    const Weight diam = test::brute_force_diameter(g);
    const SsspDiameterApprox a = diameter_two_approx(g, 0);
    EXPECT_LE(a.eccentricity, diam + 1e-9) << test::family_name(f);
    EXPECT_GE(a.upper_bound + 1e-9, diam) << test::family_name(f);
    EXPECT_DOUBLE_EQ(a.upper_bound, 2.0 * a.eccentricity);
  }
}

}  // namespace
}  // namespace gdiam::sssp
