// Tests for the SSSP substrate: Dijkstra against brute-force APSP, parallel
// Δ-stepping and Bellman–Ford against Dijkstra (parameterized sweeps over
// graph families, seeds and Δ choices), eccentricities, sweep lower bounds.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "gen/basic.hpp"
#include "gen/mesh.hpp"
#include "gen/weights.hpp"
#include "graph/builder.hpp"
#include "sssp/bellman_ford.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/sweep.hpp"
#include "test_helpers.hpp"

namespace gdiam::sssp {
namespace {

using test::Family;

TEST(Dijkstra, PathDistancesExact) {
  const Graph g = gen::path(10);
  const auto d = dijkstra_distances(g, 0);
  for (NodeId u = 0; u < 10; ++u) EXPECT_DOUBLE_EQ(d[u], u);
}

TEST(Dijkstra, UnreachableIsInfinite) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 1.0);
  b.add_edge(2, 3, 1.0);
  const auto d = dijkstra_distances(b.build(), 0);
  EXPECT_EQ(d[2], kInfiniteWeight);
  EXPECT_EQ(d[3], kInfiniteWeight);
  EXPECT_DOUBLE_EQ(d[1], 1.0);
}

TEST(Dijkstra, ParentsFormShortestPathTree) {
  const Graph g = test::make_family(Family::kGnmUniform, 60, 1);
  const SsspResult r = dijkstra(g, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (u == 0 || r.dist[u] == kInfiniteWeight) continue;
    const NodeId p = r.parent[u];
    ASSERT_NE(p, kInvalidNode);
    // Parent edge closes the distance exactly.
    bool found = false;
    const auto nbr = g.neighbors(p);
    const auto wts = g.weights(p);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      if (nbr[i] == u &&
          std::abs(r.dist[p] + wts[i] - r.dist[u]) < 1e-12) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << "node " << u;
  }
}

TEST(Dijkstra, FarthestMatchesEccentricity) {
  const Graph g = test::make_family(Family::kMeshUniform, 100, 2);
  const SsspResult r = dijkstra(g, 5);
  EXPECT_DOUBLE_EQ(r.dist[r.farthest], r.eccentricity);
  EXPECT_DOUBLE_EQ(eccentricity(g, 5), r.eccentricity);
}

TEST(Dijkstra, ExactDiameterMatchesBruteForce) {
  for (const Family f : test::all_families()) {
    const Graph g = test::make_family(f, 40, 3);
    EXPECT_NEAR(exact_diameter(g), test::brute_force_diameter(g), 1e-9)
        << test::family_name(f);
  }
}

// ---------------------------------------------------------------------------
// Parameterized: Dijkstra vs brute force across families and seeds.

class DijkstraVsBrute
    : public testing::TestWithParam<std::tuple<Family, std::uint64_t>> {};

TEST_P(DijkstraVsBrute, AllSourcesMatch) {
  const auto [family, seed] = GetParam();
  const Graph g = test::make_family(family, 36, seed);
  const auto apsp = test::brute_force_apsp(g);
  for (NodeId s = 0; s < g.num_nodes(); s += 7) {
    const auto d = dijkstra_distances(g, s);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (apsp[s][u] == kInfiniteWeight) {
        EXPECT_EQ(d[u], kInfiniteWeight);
      } else {
        // Relative tolerance: Floyd–Warshall and Dijkstra may sum the same
        // path weights in different orders.
        EXPECT_NEAR(d[u], apsp[s][u], 1e-12 * (1.0 + apsp[s][u]));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, DijkstraVsBrute,
    testing::Combine(testing::ValuesIn(test::all_families()),
                     testing::Values(1u, 2u, 3u)),
    [](const auto& param_info) {
      return std::string(test::family_name(std::get<0>(param_info.param))) +
             "_s" + std::to_string(std::get<1>(param_info.param));
    });

// ---------------------------------------------------------------------------
// Parameterized: Δ-stepping distances equal Dijkstra for every family and a
// sweep of Δ values spanning Dijkstra-like to Bellman–Ford-like behaviour.

class DeltaSteppingMatchesDijkstra
    : public testing::TestWithParam<std::tuple<Family, double>> {};

TEST_P(DeltaSteppingMatchesDijkstra, DistancesEqual) {
  const auto [family, delta_factor] = GetParam();
  const Graph g = test::make_family(family, 300, 17);
  const NodeId source = g.num_nodes() / 3;
  const auto ref = dijkstra_distances(g, source);

  DeltaSteppingOptions opts;
  opts.delta = delta_factor > 0.0 ? delta_factor * g.avg_weight() : 0.0;
  const DeltaSteppingResult r = delta_stepping(g, source, opts);
  ASSERT_EQ(r.dist.size(), ref.size());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (ref[u] == kInfiniteWeight) {
      EXPECT_EQ(r.dist[u], kInfiniteWeight);
    } else {
      EXPECT_NEAR(r.dist[u], ref[u], 1e-9 * (1.0 + ref[u])) << "node " << u;
    }
  }
  EXPECT_NEAR(r.eccentricity, *std::max_element(
      ref.begin(), ref.end(),
      [](Weight a, Weight b) {
        return (a == kInfiniteWeight ? -1.0 : a) <
               (b == kInfiniteWeight ? -1.0 : b);
      }),
      1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesTimesDelta, DeltaSteppingMatchesDijkstra,
    testing::Combine(testing::ValuesIn(test::all_families()),
                     testing::Values(0.0, 0.1, 1.0, 10.0, 1000.0)),
    [](const auto& param_info) {
      const int pct = static_cast<int>(std::get<1>(param_info.param) * 10.0);
      return std::string(test::family_name(std::get<0>(param_info.param))) +
             "_d" + std::to_string(pct);
    });

TEST(DeltaStepping, AutoDeltaUsesAverageWeight) {
  const Graph g = test::make_family(Family::kGnmUniform, 100, 19);
  const DeltaSteppingResult r = delta_stepping(g, 0, {});
  EXPECT_DOUBLE_EQ(r.delta_used, g.avg_weight());
}

TEST(DeltaStepping, BadSourceThrows) {
  const Graph g = gen::path(4);
  EXPECT_THROW((void)delta_stepping(g, 4, {}), std::out_of_range);
}

TEST(DeltaStepping, SingleNodeGraph) {
  const Graph g = build_graph(1, {});
  const DeltaSteppingResult r = delta_stepping(g, 0, {});
  EXPECT_DOUBLE_EQ(r.dist[0], 0.0);
  EXPECT_DOUBLE_EQ(r.eccentricity, 0.0);
}

TEST(DeltaStepping, LargerDeltaFewerBuckets) {
  const Graph g = test::make_family(Family::kMeshUniform, 400, 23);
  DeltaSteppingOptions small_d{.delta = 0.2 * g.avg_weight()};
  DeltaSteppingOptions large_d{.delta = 20.0 * g.avg_weight()};
  const auto rs = delta_stepping(g, 0, small_d);
  const auto rl = delta_stepping(g, 0, large_d);
  EXPECT_GT(rs.buckets_processed, rl.buckets_processed);
  EXPECT_GT(rs.stats.rounds(), rl.stats.rounds());
}

TEST(DeltaStepping, StatsAreConsistent) {
  const Graph g = test::make_family(Family::kTreePlusChords, 200, 29);
  const DeltaSteppingResult r = delta_stepping(g, 0, {});
  EXPECT_GT(r.stats.relaxation_rounds, 0u);
  EXPECT_GT(r.stats.messages, 0u);
  EXPECT_GT(r.stats.node_updates, 0u);
  // Every reachable non-source node was updated at least once.
  EXPECT_GE(r.stats.node_updates, g.num_nodes() - 1);
  EXPECT_GE(r.stats.messages, r.stats.node_updates);
  EXPECT_EQ(r.stats.work(), r.stats.messages + r.stats.node_updates);
}

TEST(DeltaStepping, PhaseCapStillExact) {
  // A tiny per-bucket phase cap forces buckets to be revisited; distances
  // must still converge to the Dijkstra fixpoint.
  for (const Family f : {Family::kPathHeavyTail, Family::kMeshUniform}) {
    const Graph g = test::make_family(f, 250, 53);
    const auto ref = dijkstra_distances(g, 1);
    DeltaSteppingOptions o;
    o.max_phases_per_bucket = 1;
    const DeltaSteppingResult r = delta_stepping(g, 1, o);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (ref[u] == kInfiniteWeight) {
        EXPECT_EQ(r.dist[u], kInfiniteWeight);
      } else {
        EXPECT_NEAR(r.dist[u], ref[u], 1e-9 * (1.0 + ref[u]))
            << test::family_name(f) << " node " << u;
      }
    }
  }
}

TEST(DeltaStepping, PhaseCapAddsRoundsNotErrors) {
  const Graph g = test::make_family(Family::kMeshUniform, 300, 59);
  DeltaSteppingOptions capped;
  capped.max_phases_per_bucket = 1;
  const auto free_run = delta_stepping(g, 0, {});
  const auto capped_run = delta_stepping(g, 0, capped);
  EXPECT_EQ(free_run.dist, capped_run.dist);
  EXPECT_GE(capped_run.stats.auxiliary_rounds,
            free_run.stats.auxiliary_rounds);
}

TEST(DeltaStepping, DeterministicAcrossRuns) {
  const Graph g = test::make_family(Family::kRmatGiant, 500, 31);
  const auto a = delta_stepping(g, 1, {});
  const auto b = delta_stepping(g, 1, {});
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.rounds(), b.stats.rounds());
}

TEST(BellmanFord, MatchesDijkstraOnFamilies) {
  for (const Family f : test::all_families()) {
    const Graph g = test::make_family(f, 150, 37);
    const auto ref = dijkstra_distances(g, 2);
    const BellmanFordResult r = bellman_ford(g, 2);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (ref[u] == kInfiniteWeight) {
        EXPECT_EQ(r.dist[u], kInfiniteWeight);
      } else {
        EXPECT_NEAR(r.dist[u], ref[u], 1e-9 * (1.0 + ref[u]))
            << test::family_name(f) << " node " << u;
      }
    }
  }
}

TEST(BellmanFord, PhasesAreHopEccentricityPlusOne) {
  // 63 phases reach node 63; one final phase discovers the fixpoint.
  const Graph g = gen::path(64);
  const BellmanFordResult r = bellman_ford(g, 0);
  EXPECT_EQ(r.phases, 64u);
}

TEST(BellmanFord, PhasesCanExceedHopsWithWeights) {
  // Heavy direct edge, light long way around: relaxations revisit nodes.
  GraphBuilder b(4);
  b.add_edge(0, 3, 10.0);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 1.0);
  b.add_edge(2, 3, 1.0);
  const BellmanFordResult r = bellman_ford(b.build(), 0);
  EXPECT_DOUBLE_EQ(r.dist[3], 3.0);
}

TEST(Sweep, LowerBoundNeverExceedsDiameter) {
  for (const Family f : test::all_families()) {
    const Graph g = test::make_family(f, 64, 41);
    const Weight diam = test::brute_force_diameter(g);
    const SweepResult s = diameter_lower_bound(g, 8, 41);
    EXPECT_LE(s.lower_bound, diam + 1e-9) << test::family_name(f);
    EXPECT_GT(s.lower_bound, 0.0);
  }
}

TEST(Sweep, FindsExactDiameterOfPath) {
  const SweepResult s = diameter_lower_bound(gen::path(100), 3, 7);
  EXPECT_DOUBLE_EQ(s.lower_bound, 99.0);
}

TEST(Sweep, RespectsSeedNode) {
  const Graph g = gen::path(50);
  const SweepResult s = diameter_lower_bound(g, 1, 0, /*seed_node=*/0);
  ASSERT_EQ(s.sources.size(), 1u);
  EXPECT_EQ(s.sources[0], 0u);
  EXPECT_DOUBLE_EQ(s.lower_bound, 49.0);
}

TEST(Sweep, StopsOnFarthestPairCycle) {
  // On a path, sweeps bounce between the two endpoints: at most 3 runs.
  const SweepResult s = diameter_lower_bound(gen::path(64), 100, 13);
  EXPECT_LE(s.sources.size(), 3u);
}

TEST(Sweep, EccentricitiesRecordedPerSource) {
  const Graph g = test::make_family(Family::kMeshUniform, 100, 43);
  const SweepResult s = diameter_lower_bound(g, 5, 43);
  ASSERT_EQ(s.sources.size(), s.eccentricities.size());
  Weight best = 0.0;
  for (const Weight e : s.eccentricities) best = std::max(best, e);
  EXPECT_DOUBLE_EQ(best, s.lower_bound);
}

TEST(Sweep, EmptyAndZeroBudget) {
  EXPECT_DOUBLE_EQ(diameter_lower_bound(Graph{}, 4).lower_bound, 0.0);
  EXPECT_DOUBLE_EQ(diameter_lower_bound(gen::path(5), 0).lower_bound, 0.0);
}

TEST(TwoApprox, BoundsSandwichTheDiameter) {
  for (const Family f : test::all_families()) {
    const Graph g = test::make_family(f, 80, 47);
    const Weight diam = test::brute_force_diameter(g);
    const SsspDiameterApprox a = diameter_two_approx(g, 0);
    EXPECT_LE(a.eccentricity, diam + 1e-9) << test::family_name(f);
    EXPECT_GE(a.upper_bound + 1e-9, diam) << test::family_name(f);
    EXPECT_DOUBLE_EQ(a.upper_bound, 2.0 * a.eccentricity);
  }
}

}  // namespace
}  // namespace gdiam::sssp
