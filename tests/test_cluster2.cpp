// Tests for core/cluster2.hpp — Algorithm CLUSTER2(G, τ): coverage, the
// iteration-budget property, radius bound R_CL2 ≤ ⌈log₂ n⌉ · 2·R_CL,
// determinism, and comparison with the bootstrap CLUSTER run.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/cluster2.hpp"
#include "gen/basic.hpp"
#include "gen/weights.hpp"
#include "graph/builder.hpp"
#include "sssp/dijkstra.hpp"
#include "test_helpers.hpp"

namespace gdiam::core {
namespace {

using test::Family;

Cluster2Options opts_with_tau(std::uint32_t tau, std::uint64_t seed = 1) {
  Cluster2Options o;
  o.base.tau = tau;
  o.base.seed = seed;
  return o;
}

TEST(Cluster2, EmptyGraph) {
  const Cluster2Result r = cluster2(Graph{}, opts_with_tau(2));
  EXPECT_EQ(r.clustering.num_clusters(), 0u);
}

TEST(Cluster2, SingleNode) {
  const Graph g = build_graph(1, {});
  const Cluster2Result r = cluster2(g, opts_with_tau(1));
  EXPECT_TRUE(r.clustering.validate(g));
  EXPECT_DOUBLE_EQ(r.clustering.radius, 0.0);
}

class Cluster2Invariants
    : public testing::TestWithParam<std::tuple<Family, std::uint64_t>> {};

TEST_P(Cluster2Invariants, CoverageRadiusAndDistanceBounds) {
  const auto [family, seed] = GetParam();
  const Graph g = test::make_family(family, 220, seed);
  const Cluster2Result r = cluster2(g, opts_with_tau(4, seed));
  const Clustering& c = r.clustering;

  ASSERT_TRUE(c.validate(g));

  // Radius bound of Lemma 2's mechanics: every cluster's growth is capped by
  // its per-iteration budget, which never exceeds iterations · 2·R_CL.
  const double iterations =
      std::max(1.0, std::ceil(std::log2(static_cast<double>(g.num_nodes()))));
  const Weight quantum = c.delta_end;  // 2·R_CL (or fallback) by construction
  EXPECT_LE(c.radius, iterations * quantum * (1.0 + 1e-6));

  // dist_to_center still upper-bounds true distances (float tolerance).
  std::set<NodeId> centers(c.centers.begin(), c.centers.end());
  for (const NodeId ctr : centers) {
    const auto d = sssp::dijkstra_distances(g, ctr);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (c.center_of[u] != ctr) continue;
      EXPECT_GE(c.dist_to_center[u] + 1e-4 * (1.0 + d[u]), d[u])
          << "node " << u;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Cluster2Invariants,
    testing::Combine(testing::ValuesIn(test::all_families()),
                     testing::Values(3u, 77u)),
    [](const auto& param_info) {
      return std::string(test::family_name(std::get<0>(param_info.param))) +
             "_s" + std::to_string(std::get<1>(param_info.param));
    });

TEST(Cluster2, DeterministicForFixedSeed) {
  const Graph g = test::make_family(Family::kGnmUniform, 300, 5);
  const Cluster2Result a = cluster2(g, opts_with_tau(4, 55));
  const Cluster2Result b = cluster2(g, opts_with_tau(4, 55));
  EXPECT_EQ(a.clustering.center_of, b.clustering.center_of);
  EXPECT_EQ(a.clustering.dist_to_center, b.clustering.dist_to_center);
  EXPECT_EQ(a.clustering.stats, b.clustering.stats);
}

TEST(Cluster2, ReportsBootstrapRadius) {
  const Graph g = test::make_family(Family::kMeshUniform, 400, 7);
  const Cluster2Result r = cluster2(g, opts_with_tau(4, 5));
  EXPECT_GT(r.radius_cluster1, 0.0);
  EXPECT_DOUBLE_EQ(r.clustering.delta_end, 2.0 * r.radius_cluster1);
}

TEST(Cluster2, StatsIncludeBootstrap) {
  const Graph g = test::make_family(Family::kTreePlusChords, 250, 9);
  const Cluster2Result r = cluster2(g, opts_with_tau(2, 7));
  EXPECT_GE(r.clustering.stats.relaxation_rounds,
            r.bootstrap_stats.relaxation_rounds);
  EXPECT_GE(r.clustering.stats.messages, r.bootstrap_stats.messages);
  EXPECT_GT(r.clustering.stages, 0u);
}

TEST(Cluster2, ClusterCountGrowsWithTau) {
  // Larger τ shrinks the bootstrap radius R_CL, hence the growth quantum
  // 2·R_CL, so more CLUSTER2 clusters are needed to cover the graph.
  const Graph g = test::make_family(Family::kMeshUniform, 900, 11);
  const Cluster2Result coarse = cluster2(g, opts_with_tau(1, 13));
  const Cluster2Result fine = cluster2(g, opts_with_tau(32, 13));
  EXPECT_LT(coarse.clustering.radius, kInfiniteWeight);
  EXPECT_GT(fine.clustering.num_clusters(),
            coarse.clustering.num_clusters());
}

TEST(Cluster2, StepCapStillCovers) {
  const Graph g = test::make_family(Family::kMeshUniform, 400, 15);
  Cluster2Options o = opts_with_tau(2, 3);
  o.max_steps_per_growth = 2;
  const Cluster2Result r = cluster2(g, o);
  EXPECT_TRUE(r.clustering.validate(g));
}

TEST(Cluster2, DisconnectedGraphCovered) {
  GraphBuilder b(60);
  for (NodeId u = 0; u + 1 < 30; ++u) b.add_edge(u, u + 1, 1.0);
  for (NodeId u = 30; u + 1 < 60; ++u) b.add_edge(u, u + 1, 2.0);
  const Graph g = b.build();
  const Cluster2Result r = cluster2(g, opts_with_tau(2, 21));
  ASSERT_TRUE(r.clustering.validate(g));
  for (NodeId u = 0; u < 60; ++u) {
    EXPECT_EQ(r.clustering.center_of[u] < 30, u < 30);
  }
}

}  // namespace
}  // namespace gdiam::core
