// Tests for src/analysis: BFS hop metrics, ℓ_Δ estimation, the doubling
// dimension probe, and the greedy k-center baseline.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/hop.hpp"
#include "analysis/metrics.hpp"
#include "gen/basic.hpp"
#include "gen/mesh.hpp"
#include "gen/weights.hpp"
#include "graph/builder.hpp"
#include "sssp/dijkstra.hpp"
#include "test_helpers.hpp"

namespace gdiam::analysis {
namespace {

using test::Family;

TEST(BfsHops, MatchesUnitWeightDijkstra) {
  for (const Family f : test::all_families()) {
    const Graph g = gen::unit_weights(test::make_family(f, 120, 3));
    const auto hops = bfs_hops(g, 0);
    const auto dist = sssp::dijkstra_distances(g, 0);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (dist[u] == kInfiniteWeight) {
        EXPECT_EQ(hops[u], kUnreachableHops);
      } else {
        EXPECT_EQ(static_cast<double>(hops[u]), dist[u])
            << test::family_name(f) << " node " << u;
      }
    }
  }
}

TEST(BfsHops, WeightsAreIgnored) {
  // Heavy weights do not change hop counts.
  GraphBuilder b(3);
  b.add_edge(0, 1, 1000.0);
  b.add_edge(1, 2, 0.001);
  const auto hops = bfs_hops(b.build(), 0);
  EXPECT_EQ(hops[1], 1u);
  EXPECT_EQ(hops[2], 2u);
}

TEST(BfsHops, UnreachableAndBadSource) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 1.0);
  const Graph g = b.build();
  const auto hops = bfs_hops(g, 0);
  EXPECT_EQ(hops[2], kUnreachableHops);
  const auto none = bfs_hops(g, 99);
  for (const auto h : none) EXPECT_EQ(h, kUnreachableHops);
}

TEST(HopEccentricity, KnownValues) {
  EXPECT_EQ(hop_eccentricity(gen::path(10), 0), 9u);
  EXPECT_EQ(hop_eccentricity(gen::path(10), 5), 5u);
  EXPECT_EQ(hop_eccentricity(gen::star(8), 0), 1u);
  EXPECT_EQ(hop_eccentricity(gen::star(8), 3), 2u);
}

TEST(HopDiameter, ExactOnKnownGraphs) {
  EXPECT_EQ(exact_hop_diameter(gen::path(17)), 16u);
  EXPECT_EQ(exact_hop_diameter(gen::cycle(10)), 5u);
  EXPECT_EQ(exact_hop_diameter(gen::mesh(6)), 10u);
  EXPECT_EQ(exact_hop_diameter(gen::complete(5)), 1u);
}

TEST(HopDiameter, LowerBoundNeverExceedsExact) {
  for (const Family f : test::all_families()) {
    const Graph g = test::make_family(f, 80, 7);
    EXPECT_LE(hop_diameter_lower_bound(g, 6, 7), exact_hop_diameter(g))
        << test::family_name(f);
  }
}

TEST(HopDiameter, SweepFindsPathDiameter) {
  EXPECT_EQ(hop_diameter_lower_bound(gen::path(200), 3, 11), 199u);
}

TEST(EstimateEll, UnitPathEllEqualsFloorDelta) {
  // On a unit-weight path, pairs at distance ≤ Δ need exactly ⌊Δ⌋ edges.
  const Graph g = gen::path(50);
  EXPECT_EQ(estimate_ell(g, 5.0, /*samples=*/50, 1), 5u);
  EXPECT_EQ(estimate_ell(g, 12.9, 50, 1), 12u);
}

TEST(EstimateEll, MonotoneInDelta) {
  const Graph g = test::make_family(Family::kMeshUniform, 200, 13);
  const auto a = estimate_ell(g, 1.0, 8, 3);
  const auto b = estimate_ell(g, 4.0, 8, 3);
  EXPECT_LE(a, b);
}

TEST(EstimateEll, LightEdgePreferenceInflatesEll) {
  // Bimodal weights: shortest paths chain many tiny edges, so ℓ_Δ is much
  // larger than Δ / avg_weight suggests — the skew regime of Section 4.
  const Graph uniform_mesh = gen::unit_weights(gen::mesh(16));
  const Graph bimodal_mesh = gen::bimodal_weights(gen::mesh(16), 1.0, 1e-6,
                                                  0.1, 17);
  const auto ell_unit = estimate_ell(uniform_mesh, 2.0, 16, 3);
  const auto ell_bimodal = estimate_ell(bimodal_mesh, 2.0, 16, 3);
  EXPECT_GT(ell_bimodal, 4u * ell_unit);
}

TEST(EstimateEll, DegenerateInputs) {
  EXPECT_EQ(estimate_ell(Graph{}, 1.0, 4), 0u);
  EXPECT_EQ(estimate_ell(gen::path(5), 1.0, 0), 0u);
}

TEST(DoublingDimension, MeshIsLowDimensional) {
  const DoublingEstimate e =
      estimate_doubling_dimension(gen::mesh(24), 3, 4, 5);
  EXPECT_GT(e.balls_probed, 0u);
  // Theory: b = 2; the greedy cover probe overestimates by a small constant.
  EXPECT_LE(e.dimension, 4u);
  EXPECT_GE(e.dimension, 1u);
}

TEST(DoublingDimension, StarIsHighDimensional) {
  // A star's 2-ball (around any node) is the whole graph, while 1-balls
  // around leaves only cover the leaf and the hub: the greedy cover needs
  // ~n balls and the probe must report a large dimension.
  const DoublingEstimate star =
      estimate_doubling_dimension(gen::star(600), 4, 2, 7);
  const DoublingEstimate mesh_e =
      estimate_doubling_dimension(gen::mesh(24), 4, 2, 7);
  EXPECT_GT(star.dimension, 2u * mesh_e.dimension);
}

TEST(DoublingDimension, DegenerateInputs) {
  EXPECT_EQ(estimate_doubling_dimension(Graph{}, 3, 4).dimension, 0u);
  EXPECT_EQ(estimate_doubling_dimension(gen::path(5), 0, 4).dimension, 0u);
}

TEST(GreedyKCenter, StructuralInvariants) {
  const Graph g = test::make_family(Family::kGnmUniform, 150, 3);
  const KCenterResult r = greedy_k_center(g, 10, 3);
  ASSERT_EQ(r.centers.size(), 10u);
  std::set<NodeId> distinct(r.centers.begin(), r.centers.end());
  EXPECT_EQ(distinct.size(), 10u);
  // Every node assigned to a center at its recorded distance; radius = max.
  Weight max_d = 0.0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    ASSERT_NE(r.assignment[u], kInvalidNode);
    max_d = std::max(max_d, r.distance[u]);
  }
  EXPECT_DOUBLE_EQ(r.radius, max_d);
  // Centers have distance 0 to themselves.
  for (const NodeId c : r.centers) EXPECT_DOUBLE_EQ(r.distance[c], 0.0);
}

TEST(GreedyKCenter, RadiusNonIncreasingInK) {
  const Graph g = test::make_family(Family::kMeshUniform, 400, 9);
  Weight prev = kInfiniteWeight;
  for (const NodeId k : {1u, 4u, 16u, 64u}) {
    const Weight r = greedy_k_center(g, k, 3).radius;
    EXPECT_LE(r, prev);
    prev = r;
  }
}

TEST(GreedyKCenter, AllNodesAsCentersGivesZeroRadius) {
  const Graph g = gen::path(20);
  EXPECT_DOUBLE_EQ(greedy_k_center(g, 20, 1).radius, 0.0);
  EXPECT_DOUBLE_EQ(greedy_k_center(g, 100, 1).radius, 0.0);  // k clamped
}

TEST(GreedyKCenter, TwoApproxOnPath) {
  // On a unit path of 100 nodes, the optimal 2-center radius is 25 (split
  // in half, centers in the middle of each half). Greedy is within 2x.
  const KCenterResult r = greedy_k_center(gen::path(100), 2, 5);
  EXPECT_LE(r.radius, 50.0);
  EXPECT_GE(r.radius, 25.0 - 1e-9);
}

TEST(GreedyKCenter, CoversDisconnectedComponentsFirst) {
  GraphBuilder b(20);
  for (NodeId u = 0; u + 1 < 10; ++u) b.add_edge(u, u + 1, 1.0);
  for (NodeId u = 10; u + 1 < 20; ++u) b.add_edge(u, u + 1, 1.0);
  const KCenterResult r = greedy_k_center(b.build(), 2, 3);
  // One center per component (the second pick is the unreached component).
  EXPECT_NE(r.centers[0] < 10, r.centers[1] < 10);
  EXPECT_LT(r.radius, kInfiniteWeight);
}

TEST(GreedyKCenter, InvalidKThrows) {
  EXPECT_THROW((void)greedy_k_center(gen::path(4), 0), std::invalid_argument);
}

}  // namespace
}  // namespace gdiam::analysis
