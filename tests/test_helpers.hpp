#pragma once
// Shared fixtures for the gdiam test suite: small-graph factories with known
// answers and a brute-force APSP reference.

#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "gen/basic.hpp"
#include "gen/mesh.hpp"
#include "gen/rmat.hpp"
#include "gen/weights.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace gdiam::test {

/// Materializes a span as a vector so EXPECT_EQ can compare (and pretty-
/// print) the CSR accessors, which hand out spans.
template <typename T>
std::vector<T> vec(std::span<const T> s) {
  return {s.begin(), s.end()};
}

/// Floyd–Warshall APSP; O(n³), for n up to a few hundred.
inline std::vector<std::vector<Weight>> brute_force_apsp(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<std::vector<Weight>> d(n,
                                     std::vector<Weight>(n, kInfiniteWeight));
  for (NodeId u = 0; u < n; ++u) {
    d[u][u] = 0.0;
    const auto nbr = g.neighbors(u);
    const auto wts = g.weights(u);
    for (std::size_t i = 0; i < nbr.size(); ++i) {
      d[u][nbr[i]] = std::min(d[u][nbr[i]], wts[i]);
    }
  }
  for (NodeId k = 0; k < n; ++k) {
    for (NodeId i = 0; i < n; ++i) {
      if (d[i][k] == kInfiniteWeight) continue;
      for (NodeId j = 0; j < n; ++j) {
        if (d[k][j] == kInfiniteWeight) continue;
        d[i][j] = std::min(d[i][j], d[i][k] + d[k][j]);
      }
    }
  }
  return d;
}

/// Largest finite entry of a brute-force APSP matrix (diameter).
inline Weight brute_force_diameter(const Graph& g) {
  const auto d = brute_force_apsp(g);
  Weight diam = 0.0;
  for (const auto& row : d) {
    for (const Weight x : row) {
      if (x != kInfiniteWeight) diam = std::max(diam, x);
    }
  }
  return diam;
}

/// Named families of small random connected weighted graphs for
/// parameterized property sweeps.
enum class Family {
  kTreePlusChords,
  kMeshUniform,
  kGnmUniform,
  kRmatGiant,
  kPathHeavyTail,
};

inline const char* family_name(Family f) {
  switch (f) {
    case Family::kTreePlusChords: return "tree_plus_chords";
    case Family::kMeshUniform: return "mesh_uniform";
    case Family::kGnmUniform: return "gnm_uniform";
    case Family::kRmatGiant: return "rmat_giant";
    case Family::kPathHeavyTail: return "path_heavy_tail";
  }
  return "?";
}

/// Builds a connected weighted instance of roughly `n` nodes.
inline Graph make_family(Family f, NodeId n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  switch (f) {
    case Family::kTreePlusChords: {
      Graph tree = gen::random_tree(n, rng);
      EdgeList edges = to_edge_list(tree);
      const EdgeIndex extra = n / 2;
      for (EdgeIndex i = 0; i < extra; ++i) {
        const auto u = static_cast<NodeId>(rng.next_bounded(n));
        const auto v = static_cast<NodeId>(rng.next_bounded(n));
        if (u != v) edges.push_back(Edge{u, v, 1.0});
      }
      return gen::uniform_weights(build_graph(n, edges), seed ^ 0xabcd);
    }
    case Family::kMeshUniform: {
      const auto side = static_cast<NodeId>(
          std::max(2.0, std::floor(std::sqrt(static_cast<double>(n)))));
      return gen::uniform_weights(gen::mesh(side), seed ^ 0xabcd);
    }
    case Family::kGnmUniform:
      return gen::uniform_weights(
          gen::gnm(n, static_cast<EdgeIndex>(n) * 3, rng,
                   /*ensure_connected=*/true),
          seed ^ 0xabcd);
    case Family::kRmatGiant: {
      unsigned scale = 1;
      while ((NodeId{1} << scale) < n) ++scale;
      Graph r = gen::rmat(scale, 8, rng);
      return gen::uniform_weights(largest_component(r).graph, seed ^ 0xabcd);
    }
    case Family::kPathHeavyTail: {
      // A path with occasional very heavy edges: stresses the light-edge
      // logic (ℓ_Δ large, weights spanning six orders of magnitude).
      GraphBuilder b(n);
      for (NodeId u = 0; u + 1 < n; ++u) {
        const Weight w = rng.next_bernoulli(0.1) ? 1e6 : 1.0 + rng.next_double();
        b.add_edge(u, u + 1, w);
      }
      return b.build();
    }
  }
  return Graph{};
}

inline std::vector<Family> all_families() {
  return {Family::kTreePlusChords, Family::kMeshUniform, Family::kGnmUniform,
          Family::kRmatGiant, Family::kPathHeavyTail};
}

}  // namespace gdiam::test
