// Unit tests for src/util: RNG determinism and distributions, order-
// preserving bit packing, thread buffers, atomic min, tables, options,
// scale presets.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <thread>

#include "util/bitpack.hpp"
#include "util/options.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/scale.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace gdiam::util {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256, NextDoubleOpenLowExcludesZero) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double_open_low();
    EXPECT_GT(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(Xoshiro256, NextDoubleMeanNearHalf) {
  Xoshiro256 rng(17);
  double sum = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / trials, 0.5, 0.01);
}

TEST(Xoshiro256, BoundedStaysInRange) {
  Xoshiro256 rng(19);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_bounded(17), 17u);
  }
}

TEST(Xoshiro256, BoundedZeroReturnsZero) {
  Xoshiro256 rng(19);
  EXPECT_EQ(rng.next_bounded(0), 0u);
}

TEST(Xoshiro256, BoundedCoversAllResidues) {
  Xoshiro256 rng(23);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_bounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro256, BernoulliExtremes) {
  Xoshiro256 rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bernoulli(0.0));
    EXPECT_TRUE(rng.next_bernoulli(1.0));
  }
}

TEST(Xoshiro256, BernoulliFrequencyMatchesP) {
  Xoshiro256 rng(31);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.next_bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Xoshiro256, SplitStreamsAreIndependentAndDeterministic) {
  Xoshiro256 base(101);
  Xoshiro256 s1 = base.split(1);
  Xoshiro256 s2 = base.split(2);
  Xoshiro256 s1again = base.split(1);
  int equal12 = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t x1 = s1.next();
    EXPECT_EQ(x1, s1again.next());
    equal12 += (x1 == s2.next());
  }
  EXPECT_EQ(equal12, 0);
}

TEST(Bitpack, FloatOrderBitsMonotone) {
  const float values[] = {0.0f, 1e-30f, 0.5f, 1.0f, 2.0f, 1e10f,
                          std::numeric_limits<float>::infinity()};
  for (std::size_t i = 0; i + 1 < std::size(values); ++i) {
    EXPECT_LT(float_order_bits(values[i]), float_order_bits(values[i + 1]))
        << values[i] << " vs " << values[i + 1];
  }
}

TEST(Bitpack, FloatRoundTrip) {
  for (const float v : {0.0f, 0.25f, 3.5f, 1e20f}) {
    EXPECT_EQ(float_from_order_bits(float_order_bits(v)), v);
  }
}

TEST(Bitpack, DoubleOrderBitsMonotone) {
  const double values[] = {0.0, 1e-300, 0.5, 1.0, 1e100,
                           std::numeric_limits<double>::infinity()};
  for (std::size_t i = 0; i + 1 < std::size(values); ++i) {
    EXPECT_LT(double_order_bits(values[i]), double_order_bits(values[i + 1]));
  }
}

TEST(Bitpack, DoubleRoundTrip) {
  for (const double v : {0.0, 1.75, 9e99}) {
    EXPECT_EQ(double_from_order_bits(double_order_bits(v)), v);
  }
}

TEST(Bitpack, InfinityConstantsAreMaximal) {
  EXPECT_GT(kInfDoubleBits, double_order_bits(1e308));
  EXPECT_GT(kInfFloatBits, float_order_bits(1e38f));
}

TEST(AtomicFetchMin, LowersValue) {
  std::uint64_t slot = 100;
  EXPECT_TRUE(atomic_fetch_min(slot, 50));
  EXPECT_EQ(slot, 50u);
}

TEST(AtomicFetchMin, RejectsLargerValue) {
  std::uint64_t slot = 10;
  EXPECT_FALSE(atomic_fetch_min(slot, 20));
  EXPECT_EQ(slot, 10u);
}

TEST(AtomicFetchMin, EqualValueIsNoUpdate) {
  std::uint64_t slot = 10;
  EXPECT_FALSE(atomic_fetch_min(slot, 10));
}

TEST(AtomicFetchMin, ConcurrentMinIsGlobalMin) {
  std::uint64_t slot = std::numeric_limits<std::uint64_t>::max();
#pragma omp parallel for
  for (int i = 0; i < 10000; ++i) {
    atomic_fetch_min(slot, static_cast<std::uint64_t>(10000 - i));
  }
  EXPECT_EQ(slot, 1u);
}

TEST(ThreadBuffers, GatherConcatenatesAllThreads) {
  ThreadBuffers<int> buffers;
#pragma omp parallel for
  for (int i = 0; i < 1000; ++i) buffers.local().push_back(i);
  auto all = buffers.gather();
  ASSERT_EQ(all.size(), 1000u);
  std::sort(all.begin(), all.end());
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(all[i], i);
}

TEST(ThreadBuffers, GatherClears) {
  ThreadBuffers<int> buffers;
  buffers.local().push_back(1);
  EXPECT_EQ(buffers.size(), 1u);
  (void)buffers.gather();
  EXPECT_EQ(buffers.size(), 0u);
}

TEST(Table, AlignsAndStoresCells) {
  Table t({"graph", "time", "ratio"});
  t.row().cell("roads").num(1.5, 2).count(1234567);
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.at(0, 0), "roads");
  EXPECT_EQ(t.at(0, 1), "1.50");
  EXPECT_EQ(t.at(0, 2), "1,234,567");
}

TEST(Table, SciFormatting) {
  Table t({"x"});
  t.row().sci(123456.0, 2);
  EXPECT_EQ(t.at(0, 0), "1.23e+05");
}

TEST(Table, PrintContainsHeaderAndCells) {
  Table t({"a", "b"});
  t.row().cell("hello").num(2.25, 2);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("hello"), std::string::npos);
  EXPECT_NE(s.find("2.25"), std::string::npos);
}

TEST(Table, AtThrowsOutOfRange) {
  Table t({"a"});
  EXPECT_THROW((void)t.at(0, 0), std::out_of_range);
}

TEST(WithThousands, Formats) {
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(999), "999");
  EXPECT_EQ(with_thousands(1000), "1,000");
  EXPECT_EQ(with_thousands(29166673), "29,166,673");
}

TEST(Options, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--tau=32", "--name=mesh"};
  Options o(3, argv);
  EXPECT_EQ(o.get_int("tau", 0), 32);
  EXPECT_EQ(o.get_string("name", ""), "mesh");
}

TEST(Options, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--tau", "64"};
  Options o(3, argv);
  EXPECT_EQ(o.get_int("tau", 0), 64);
}

TEST(Options, BooleanFlag) {
  const char* argv[] = {"prog", "--verbose"};
  Options o(2, argv);
  EXPECT_TRUE(o.get_bool("verbose", false));
  EXPECT_FALSE(o.get_bool("quiet", false));
}

TEST(Options, PositionalArguments) {
  const char* argv[] = {"prog", "input.gr", "--x=1", "out.bin"};
  Options o(4, argv);
  ASSERT_EQ(o.positional().size(), 2u);
  EXPECT_EQ(o.positional()[0], "input.gr");
  EXPECT_EQ(o.positional()[1], "out.bin");
}

TEST(Options, FallbacksWhenAbsent) {
  Options o;
  EXPECT_EQ(o.get_int("x", 5), 5);
  EXPECT_DOUBLE_EQ(o.get_double("y", 2.5), 2.5);
  EXPECT_EQ(o.get_string("z", "d"), "d");
}

TEST(Options, GetDouble) {
  const char* argv[] = {"prog", "--delta=0.125"};
  Options o(2, argv);
  EXPECT_DOUBLE_EQ(o.get_double("delta", 0.0), 0.125);
}

TEST(Options, MalformedBoolThrows) {
  const char* argv[] = {"prog", "--flag=maybe"};
  Options o(2, argv);
  EXPECT_THROW((void)o.get_bool("flag", false), std::invalid_argument);
}

TEST(Options, SetInjectsFlag) {
  Options o;
  o.set("tau", "9");
  EXPECT_EQ(o.get_int("tau", 0), 9);
}

TEST(Scale, ParseKnownNames) {
  EXPECT_EQ(parse_scale("ci"), Scale::kCi);
  EXPECT_EQ(parse_scale("small"), Scale::kSmall);
  EXPECT_EQ(parse_scale("paper"), Scale::kPaper);
}

TEST(Scale, ParseUnknownThrows) {
  EXPECT_THROW((void)parse_scale("huge"), std::invalid_argument);
}

TEST(Scale, PickSelectsPreset) {
  EXPECT_EQ(pick(Scale::kCi, 1, 2, 3), 1);
  EXPECT_EQ(pick(Scale::kSmall, 1, 2, 3), 2);
  EXPECT_EQ(pick(Scale::kPaper, 1, 2, 3), 3);
}

TEST(Scale, NamesRoundTrip) {
  for (const Scale s : {Scale::kCi, Scale::kSmall, Scale::kPaper}) {
    EXPECT_EQ(parse_scale(scale_name(s)), s);
  }
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.millis(), 15.0);
  t.reset();
  EXPECT_LT(t.millis(), 15.0);
}

TEST(Timer, FormatDuration) {
  EXPECT_EQ(format_duration(2.5), "2.50 s");
  EXPECT_EQ(format_duration(0.0125), "12.5 ms");
  EXPECT_EQ(format_duration(42e-6), "42.0 us");
}

TEST(Parallel, NumThreadsPositive) { EXPECT_GE(num_threads(), 1); }

TEST(Parallel, SetNumThreadsRoundTrip) {
  const int prev = set_num_threads(1);
  EXPECT_EQ(num_threads(), 1);
  set_num_threads(prev);
  EXPECT_EQ(num_threads(), prev);
}

}  // namespace
}  // namespace gdiam::util
