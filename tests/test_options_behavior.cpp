// Behavior coverage for option knobs that the main suites exercise only at
// their defaults: Δ-stepping result details, generator parameter edges, and
// CLUSTER option semantics (gamma, stop_factor, delta_end evolution).

#include <gtest/gtest.h>

#include <cmath>

#include "core/cluster.hpp"
#include "gen/basic.hpp"
#include "gen/mesh.hpp"
#include "gen/rmat.hpp"
#include "gen/road.hpp"
#include "gen/weights.hpp"
#include "graph/builder.hpp"
#include "sssp/delta_stepping.hpp"
#include "test_helpers.hpp"

namespace gdiam {
namespace {

using test::Family;

TEST(DeltaSteppingDetails, ExplicitDeltaIsUsedVerbatim) {
  const Graph g = gen::path(50);
  sssp::DeltaSteppingOptions o;
  o.delta = 7.5;
  EXPECT_DOUBLE_EQ(sssp::delta_stepping(g, 0, o).delta_used, 7.5);
}

TEST(DeltaSteppingDetails, FarthestNodeOnPath) {
  const Graph g = gen::path(64);
  const auto r = sssp::delta_stepping(g, 0, {});
  EXPECT_EQ(r.farthest, 63u);
  EXPECT_DOUBLE_EQ(r.eccentricity, 63.0);
}

TEST(DeltaSteppingDetails, BucketCountTracksDiameterOverDelta) {
  const Graph g = gen::path(100);  // eccentricity 99 from node 0
  sssp::DeltaSteppingOptions o;
  o.delta = 10.0;
  const auto r = sssp::delta_stepping(g, 0, o);
  // Buckets 0..9 processed (bucket index = floor(dist/10)).
  EXPECT_EQ(r.buckets_processed, 10u);
}

TEST(DeltaSteppingDetails, DeltaLargerThanEccIsBellmanFordLike) {
  const Graph g = gen::path(40);
  sssp::DeltaSteppingOptions o;
  o.delta = 1000.0;
  const auto r = sssp::delta_stepping(g, 0, o);
  EXPECT_EQ(r.buckets_processed, 1u);
  EXPECT_DOUBLE_EQ(r.eccentricity, 39.0);
}

TEST(GenEdges, RmatZeroNoiseIsValid) {
  util::Xoshiro256 rng(3);
  gen::RmatParams p;
  p.noise = 0.0;
  const Graph g = gen::rmat(10, 8, rng, p);
  EXPECT_EQ(g.num_nodes(), 1024u);
  EXPECT_TRUE(g.validate());
}

TEST(GenEdges, RoadFullKeepProbabilityIsGridComplete) {
  util::Xoshiro256 rng(5);
  gen::RoadParams p;
  p.keep_probability = 1.0;
  p.diagonal_fraction = 0.0;
  const Graph g = gen::road_network(10, 12, rng, p);
  // Nothing dropped: full 10x12 grid survives as one component.
  EXPECT_EQ(g.num_nodes(), 120u);
  EXPECT_EQ(g.num_edges(), static_cast<EdgeIndex>(12 * 9 + 10 * 11));
}

TEST(GenEdges, RoadZeroJitterGivesSpacingWeights) {
  util::Xoshiro256 rng(7);
  gen::RoadParams p;
  p.keep_probability = 1.0;
  p.diagonal_fraction = 0.0;
  p.jitter = 0.0;
  p.spacing = 250.0;
  const Graph g = gen::road_network(5, 5, rng, p);
  for (const Weight w : g.edge_weights()) EXPECT_DOUBLE_EQ(w, 250.0);
}

TEST(ClusterOptions, LargerGammaSelectsMoreCentersPerStage) {
  const Graph g = test::make_family(Family::kMeshUniform, 900, 3);
  core::ClusterOptions few;
  few.tau = 2;
  few.seed = 7;
  few.gamma = 0.5;
  core::ClusterOptions many = few;
  many.gamma = 8.0;
  const auto c_few = core::cluster(g, few);
  const auto c_many = core::cluster(g, many);
  EXPECT_GT(c_many.num_clusters(), c_few.num_clusters());
  EXPECT_TRUE(c_few.validate(g));
  EXPECT_TRUE(c_many.validate(g));
}

TEST(ClusterOptions, LargerStopFactorStopsEarlierWithMoreSingletons) {
  const Graph g = gen::path(600);
  core::ClusterOptions late;
  late.tau = 2;
  late.seed = 9;
  late.stop_factor = 2.0;
  core::ClusterOptions early = late;
  early.stop_factor = 30.0;
  const auto c_late = core::cluster(g, late);
  const auto c_early = core::cluster(g, early);
  EXPECT_LE(c_early.stages, c_late.stages);
  EXPECT_TRUE(c_early.validate(g));
}

TEST(ClusterOptions, DeltaEndNeverShrinks) {
  // Δ only doubles: delta_end >= the initial guess for every init mode.
  const Graph g = test::make_family(Family::kGnmUniform, 400, 11);
  for (const auto init :
       {core::DeltaInit::kMinWeight, core::DeltaInit::kAverageWeight}) {
    core::ClusterOptions o;
    o.tau = 2;
    o.seed = 13;
    o.delta_init = init;
    const auto c = core::cluster(g, o);
    const Weight start = init == core::DeltaInit::kMinWeight
                             ? g.min_weight()
                             : g.avg_weight();
    EXPECT_GE(c.delta_end, start);
  }
}

TEST(ClusterOptions, EdgelessGraphAllSingletons) {
  const Graph g = build_graph(25, {});
  core::ClusterOptions o;
  o.tau = 2;
  const auto c = core::cluster(g, o);
  EXPECT_TRUE(c.validate(g));
  EXPECT_EQ(c.num_clusters(), 25u);
  EXPECT_DOUBLE_EQ(c.radius, 0.0);
}

TEST(ClusterOptions, SeedChangesCentersNotValidity) {
  const Graph g = test::make_family(Family::kRmatGiant, 300, 17);
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    core::ClusterOptions o;
    o.tau = 4;
    o.seed = seed;
    EXPECT_TRUE(core::cluster(g, o).validate(g)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace gdiam
