// Tests for core/labels.hpp and core/growing.hpp: packed-label ordering and
// the Δ-growing engine (budgets, light edges, blocking, push/pull parity,
// determinism, MR accounting).

#include <gtest/gtest.h>

#include <cmath>

#include "core/growing.hpp"
#include "gen/basic.hpp"
#include "graph/builder.hpp"
#include "mr/stats.hpp"
#include "sssp/dijkstra.hpp"
#include "test_helpers.hpp"

namespace gdiam::core {
namespace {

using test::Family;

TEST(Labels, PackRoundTrip) {
  const PackedLabel l = pack_label(3.25f, 42);
  EXPECT_FLOAT_EQ(label_dist(l), 3.25f);
  EXPECT_EQ(label_center(l), 42u);
}

TEST(Labels, MinPrefersSmallerDistance) {
  EXPECT_LT(pack_label(1.0f, 100), pack_label(1.5f, 0));
}

TEST(Labels, MinBreaksTiesBySmallerCenter) {
  EXPECT_LT(pack_label(2.0f, 3), pack_label(2.0f, 9));
}

TEST(Labels, UnassignedIsMaximal) {
  EXPECT_LT(pack_label(1e30f, kInvalidNode - 1), kUnassignedLabel);
  EXPECT_FALSE(label_assigned(kUnassignedLabel));
  EXPECT_TRUE(label_assigned(pack_label(0.0f, 5)));
}

GrowingStepParams uniform_params(Weight delta) {
  GrowingStepParams p;
  p.light_threshold = delta;
  p.uniform_budget = delta;
  return p;
}

/// Runs growth to fixpoint; returns total step count.
std::uint64_t grow_to_fixpoint(GrowingEngine& e,
                               const GrowingStepParams& params) {
  e.rebuild_frontier(params);
  mr::RoundStats stats;
  std::uint64_t steps = 0;
  while (true) {
    const auto r = e.step(params);
    ++steps;
    if (r.updates == 0) break;
  }
  return steps;
}

TEST(GrowingEngine, SingleSourceCoversBudgetBall) {
  const Graph g = gen::path(20);  // unit weights
  GrowingEngine e(g, GrowingPolicy::kPush);
  e.set_source(10, 10);
  grow_to_fixpoint(e, uniform_params(3.0));
  for (NodeId u = 0; u < 20; ++u) {
    const bool inside = std::abs(static_cast<int>(u) - 10) <= 3;
    EXPECT_EQ(label_assigned(e.label(u)), inside) << "node " << u;
    if (inside) {
      EXPECT_FLOAT_EQ(label_dist(e.label(u)),
                      static_cast<float>(std::abs(static_cast<int>(u) - 10)));
      EXPECT_EQ(label_center(e.label(u)), 10u);
    }
  }
}

TEST(GrowingEngine, HeavyEdgesNeverTraversed) {
  // 0 -1- 1 -5- 2 -1- 3 : with Δ = 2, the weight-5 edge blocks growth.
  GraphBuilder b(4);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 5.0);
  b.add_edge(2, 3, 1.0);
  const Graph g = b.build();
  GrowingEngine e(g, GrowingPolicy::kPush);
  e.set_source(0, 0);
  grow_to_fixpoint(e, uniform_params(2.0));
  EXPECT_TRUE(label_assigned(e.label(1)));
  EXPECT_FALSE(label_assigned(e.label(2)));
  EXPECT_FALSE(label_assigned(e.label(3)));
}

TEST(GrowingEngine, BudgetCapsPathWeightNotEdgeCount) {
  // Δ = 2.5 on a unit path reaches exactly 2 hops.
  const Graph g = gen::path(10);
  GrowingEngine e(g, GrowingPolicy::kPush);
  e.set_source(0, 0);
  grow_to_fixpoint(e, uniform_params(2.5));
  EXPECT_TRUE(label_assigned(e.label(2)));
  EXPECT_FALSE(label_assigned(e.label(3)));
}

TEST(GrowingEngine, TwoCentersPartitionByDistanceThenId) {
  const Graph g = gen::path(11);
  GrowingEngine e(g, GrowingPolicy::kPush);
  e.set_source(0, 0);
  e.set_source(10, 10);
  grow_to_fixpoint(e, uniform_params(100.0));
  for (NodeId u = 0; u <= 4; ++u) EXPECT_EQ(label_center(e.label(u)), 0u);
  // Node 5 is equidistant: tie broken by smaller center id.
  EXPECT_EQ(label_center(e.label(5)), 0u);
  for (NodeId u = 6; u <= 10; ++u) EXPECT_EQ(label_center(e.label(u)), 10u);
}

TEST(GrowingEngine, BlockedNodesProposeButNeverAccept) {
  const Graph g = gen::path(5);
  GrowingEngine e(g, GrowingPolicy::kPush);
  // Node 2 is a blocked boundary node of cluster 7 (dist 0 source).
  e.set_source(2, 7);
  e.block(2);
  e.set_source(0, 0);
  grow_to_fixpoint(e, uniform_params(100.0));
  // 0 grew into 1; 2 kept its cluster despite 0's better-centered proposals;
  // 2's own cluster grew into 3, 4.
  EXPECT_EQ(label_center(e.label(1)), 0u);
  EXPECT_EQ(label_center(e.label(2)), 7u);
  EXPECT_EQ(label_center(e.label(3)), 7u);
  EXPECT_EQ(label_center(e.label(4)), 7u);
}

TEST(GrowingEngine, PerCenterBudgetsRespected) {
  const Graph g = gen::path(21);
  GrowingEngine e(g, GrowingPolicy::kPush);
  e.set_source(0, 0);
  e.set_source(20, 20);
  std::vector<Weight> budgets(21, 0.0);
  budgets[0] = 2.0;   // cluster 0 may reach distance 2
  budgets[20] = 5.0;  // cluster 20 may reach distance 5
  GrowingStepParams p;
  p.light_threshold = 100.0;
  p.center_budget = &budgets;
  e.rebuild_frontier(p);
  while (e.step(p).updates > 0) {
  }
  EXPECT_TRUE(label_assigned(e.label(2)));
  EXPECT_FALSE(label_assigned(e.label(3)));
  EXPECT_TRUE(label_assigned(e.label(15)));
  EXPECT_FALSE(label_assigned(e.label(14)));
}

TEST(GrowingEngine, StepCountMatchesHopDepth) {
  const Graph g = gen::path(30);
  GrowingEngine e(g, GrowingPolicy::kPush);
  e.set_source(0, 0);
  // Reaching hop k needs k steps; fixpoint discovered one step later.
  const std::uint64_t steps = grow_to_fixpoint(e, uniform_params(7.0));
  EXPECT_EQ(steps, 8u);
}

TEST(GrowingEngine, RebuildFrontierAfterBudgetIncrease) {
  const Graph g = gen::path(10);
  GrowingEngine e(g, GrowingPolicy::kPush);
  e.set_source(0, 0);
  grow_to_fixpoint(e, uniform_params(2.0));
  EXPECT_FALSE(label_assigned(e.label(5)));
  // Double Δ and re-arm: previously stuck nodes continue outward.
  grow_to_fixpoint(e, uniform_params(4.0));
  EXPECT_TRUE(label_assigned(e.label(4)));
  EXPECT_FALSE(label_assigned(e.label(5)));
  grow_to_fixpoint(e, uniform_params(9.0));
  EXPECT_TRUE(label_assigned(e.label(9)));
}

TEST(GrowingEngine, MessagesAndUpdatesAccounting) {
  const Graph g = gen::path(4);
  GrowingEngine e(g, GrowingPolicy::kPush);
  e.set_source(0, 0);
  GrowingStepParams p = uniform_params(10.0);
  e.rebuild_frontier(p);
  // Step 1: node 0 proposes to 1 (1 message, 1 update, newly labeled).
  auto r = e.step(p);
  EXPECT_EQ(r.messages, 1u);
  EXPECT_EQ(r.updates, 1u);
  EXPECT_EQ(r.newly_labeled, 1u);
  // Step 2: node 1 proposes to 0 (rejected) and 2 (accepted).
  r = e.step(p);
  EXPECT_EQ(r.messages, 2u);
  EXPECT_EQ(r.updates, 1u);
}

TEST(GrowingEngine, RunStopsAtFixpointAndAccumulatesStats) {
  const Graph g = gen::path(12);
  GrowingEngine e(g, GrowingPolicy::kPush);
  e.set_source(0, 0);
  GrowingStepParams p = uniform_params(100.0);
  e.rebuild_frontier(p);
  mr::RoundStats stats;
  const auto run = e.run(p, stats, 0, [](const auto&) { return false; });
  EXPECT_EQ(run.totals.newly_labeled, 11u);
  EXPECT_EQ(stats.relaxation_rounds, 12u);  // 11 growth + 1 fixpoint check
  EXPECT_EQ(stats.node_updates, run.totals.updates);
  EXPECT_TRUE(run.fixpoint);
  EXPECT_FALSE(run.hit_step_cap);
  EXPECT_EQ(run.steps, 12u);
}

TEST(GrowingEngine, RunHonorsMaxSteps) {
  const Graph g = gen::path(100);
  GrowingEngine e(g, GrowingPolicy::kPush);
  e.set_source(0, 0);
  GrowingStepParams p = uniform_params(1000.0);
  e.rebuild_frontier(p);
  mr::RoundStats stats;
  const auto run = e.run(p, stats, 5, [](const auto&) { return false; });
  EXPECT_EQ(stats.relaxation_rounds, 5u);
  EXPECT_EQ(run.totals.newly_labeled, 5u);
  EXPECT_TRUE(run.hit_step_cap);
  EXPECT_FALSE(run.fixpoint);
}

TEST(GrowingEngine, RunHonorsStopPredicate) {
  const Graph g = gen::path(100);
  GrowingEngine e(g, GrowingPolicy::kPush);
  e.set_source(0, 0);
  GrowingStepParams p = uniform_params(1000.0);
  e.rebuild_frontier(p);
  mr::RoundStats stats;
  const auto run = e.run(p, stats, 0, [](const GrowingStepResult& t) {
    return t.newly_labeled >= 10;
  });
  EXPECT_GE(run.totals.newly_labeled, 10u);
  EXPECT_LT(run.totals.newly_labeled, 20u);
  EXPECT_FALSE(run.fixpoint);
  EXPECT_FALSE(run.hit_step_cap);
}

TEST(GrowingEngine, ResetAndClearLabels) {
  const Graph g = gen::path(5);
  GrowingEngine e(g, GrowingPolicy::kPush);
  e.set_source(0, 0);
  e.block(3);
  grow_to_fixpoint(e, uniform_params(10.0));
  e.clear_labels();
  EXPECT_FALSE(label_assigned(e.label(1)));
  EXPECT_TRUE(e.is_blocked(3));  // clear_labels keeps the blocked set
  e.reset();
  EXPECT_FALSE(e.is_blocked(3));
}

// ---------------------------------------------------------------------------
// Push/pull parity: identical labels and identical per-step accounting on
// every family; this is the determinism backbone of the whole algorithm.

class PushPullParity
    : public testing::TestWithParam<std::tuple<Family, double>> {};

TEST_P(PushPullParity, LabelsAndCountsMatchStepByStep) {
  const auto [family, delta_factor] = GetParam();
  const Graph g = test::make_family(family, 200, 77);
  const Weight delta = delta_factor * g.avg_weight();

  GrowingEngine push(g, GrowingPolicy::kPush);
  GrowingEngine pull(g, GrowingPolicy::kPull);
  for (GrowingEngine* e : {&push, &pull}) {
    e->set_source(0, 0);
    e->set_source(g.num_nodes() / 2, g.num_nodes() / 2);
    e->block(1);
    e->set_source(1, 1);  // a blocked boundary source
  }
  const GrowingStepParams p = uniform_params(delta);
  push.rebuild_frontier(p);
  pull.rebuild_frontier(p);

  for (int step = 0; step < 64; ++step) {
    const auto rp = push.step(p);
    const auto rl = pull.step(p);
    ASSERT_EQ(rp.messages, rl.messages) << "step " << step;
    ASSERT_EQ(rp.updates, rl.updates) << "step " << step;
    ASSERT_EQ(rp.newly_labeled, rl.newly_labeled) << "step " << step;
    ASSERT_EQ(push.labels(), pull.labels()) << "step " << step;
    if (rp.updates == 0) break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, PushPullParity,
    testing::Combine(testing::ValuesIn(test::all_families()),
                     testing::Values(0.5, 2.0, 50.0)),
    [](const auto& param_info) {
      const int pct = static_cast<int>(std::get<1>(param_info.param) * 10.0);
      return std::string(test::family_name(std::get<0>(param_info.param))) +
             "_d" + std::to_string(pct);
    });

TEST(GrowingEngine, DeterministicAcrossRepeatedRuns) {
  const Graph g = test::make_family(Family::kRmatGiant, 400, 99);
  std::vector<PackedLabel> first;
  for (int run = 0; run < 3; ++run) {
    GrowingEngine e(g, GrowingPolicy::kPush);
    e.set_source(3, 3);
    e.set_source(11, 11);
    grow_to_fixpoint(e, uniform_params(5.0 * g.avg_weight()));
    if (run == 0) {
      first = e.labels();
    } else {
      EXPECT_EQ(e.labels(), first);
    }
  }
}

TEST(GrowingEngine, LabelsAreDistanceUpperBounds) {
  // At fixpoint with unlimited budget, each label distance is at least the
  // true multi-source distance and at most the distance to its own center.
  const Graph g = test::make_family(Family::kGnmUniform, 150, 101);
  GrowingEngine e(g, GrowingPolicy::kPush);
  e.set_source(0, 0);
  e.set_source(1, 1);
  grow_to_fixpoint(e, uniform_params(kInfiniteWeight));
  const auto d0 = sssp::dijkstra_distances(g, 0);
  const auto d1 = sssp::dijkstra_distances(g, 1);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    ASSERT_TRUE(label_assigned(e.label(u)));
    const double lab = label_dist(e.label(u));
    const double best = std::min(d0[u], d1[u]);
    EXPECT_GE(lab, best - 1e-5 * (1.0 + best));
    const double own =
        label_center(e.label(u)) == 0 ? d0[u] : d1[u];
    EXPECT_LE(lab, own + 1e-5 * (1.0 + own));
  }
}

}  // namespace
}  // namespace gdiam::core
