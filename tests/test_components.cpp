// Tests for graph/components.hpp: parallel connected components and
// largest-component extraction.

#include <gtest/gtest.h>

#include <numeric>

#include "gen/basic.hpp"
#include "gen/mesh.hpp"
#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "test_helpers.hpp"

namespace gdiam {
namespace {

TEST(Components, SingleComponentPath) {
  const Components cc = connected_components(gen::path(100));
  EXPECT_EQ(cc.count, 1u);
  EXPECT_EQ(cc.sizes[0], 100u);
  for (const NodeId c : cc.component_of) EXPECT_EQ(c, 0u);
}

TEST(Components, DisjointPathsSeparated) {
  // Two paths: 0-1-2 and 3-4, plus isolated node 5.
  GraphBuilder b(6);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 1.0);
  b.add_edge(3, 4, 1.0);
  const Components cc = connected_components(b.build());
  EXPECT_EQ(cc.count, 3u);
  // Largest first.
  EXPECT_EQ(cc.sizes[0], 3u);
  EXPECT_EQ(cc.sizes[1], 2u);
  EXPECT_EQ(cc.sizes[2], 1u);
  EXPECT_EQ(cc.component_of[0], cc.component_of[2]);
  EXPECT_EQ(cc.component_of[3], cc.component_of[4]);
  EXPECT_NE(cc.component_of[0], cc.component_of[3]);
  EXPECT_EQ(cc.component_of[5], 2u);
}

TEST(Components, SizesSumToN) {
  const Graph g = test::make_family(test::Family::kRmatGiant, 256, 5);
  const Components cc = connected_components(g);
  const NodeId total = std::accumulate(cc.sizes.begin(), cc.sizes.end(), 0u);
  EXPECT_EQ(total, g.num_nodes());
}

TEST(Components, EmptyGraph) {
  const Components cc = connected_components(Graph{});
  EXPECT_EQ(cc.count, 0u);
}

TEST(Components, EdgelessGraphAllSingletons) {
  const Components cc = connected_components(build_graph(7, {}));
  EXPECT_EQ(cc.count, 7u);
  for (const NodeId s : cc.sizes) EXPECT_EQ(s, 1u);
}

TEST(Components, ComponentIdsAreCompact) {
  GraphBuilder b(10);
  b.add_edge(8, 9, 1.0);
  const Components cc = connected_components(b.build());
  for (const NodeId c : cc.component_of) EXPECT_LT(c, cc.count);
}

TEST(LargestComponent, ExtractsGiant) {
  GraphBuilder b(10);
  // Component A: 0..5 as a cycle (6 nodes); component B: 6..9 path.
  for (NodeId u = 0; u < 5; ++u) b.add_edge(u, u + 1, 1.0);
  b.add_edge(5, 0, 1.0);
  for (NodeId u = 6; u < 9; ++u) b.add_edge(u, u + 1, 2.0);
  const Subgraph s = largest_component(b.build());
  EXPECT_EQ(s.graph.num_nodes(), 6u);
  EXPECT_EQ(s.graph.num_edges(), 6u);
  for (const NodeId orig : s.to_original) EXPECT_LT(orig, 6u);
}

TEST(LargestComponent, ConnectedGraphReturnsEverything) {
  const Graph g = gen::mesh(8);
  const Subgraph s = largest_component(g);
  EXPECT_EQ(s.graph.num_nodes(), g.num_nodes());
  EXPECT_EQ(s.graph.num_edges(), g.num_edges());
}

TEST(IsConnected, DetectsBothCases) {
  EXPECT_TRUE(is_connected(gen::cycle(50)));
  GraphBuilder b(4);
  b.add_edge(0, 1, 1.0);
  b.add_edge(2, 3, 1.0);
  EXPECT_FALSE(is_connected(b.build()));
}

TEST(IsConnected, MeshAndTorus) {
  EXPECT_TRUE(is_connected(gen::mesh(12)));
  EXPECT_TRUE(is_connected(gen::torus(7)));
}

}  // namespace
}  // namespace gdiam
