// Tests for the serving layer (serve/, DESIGN.md §10): protocol framing
// round-trips and malformed-input rejection, graph-spec parsing, the
// GraphStore's load-once semantics, and the Server end to end over a real
// AF_UNIX socket — sequential and concurrent clients, response-to-request
// id matching, served results bit-identical to direct library calls (the
// daemon parity acceptance criterion), the same-graph batcher, error
// responses, and the stats/shutdown verbs.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/diameter.hpp"
#include "serve/graphs.hpp"
#include "serve/protocol.hpp"
#include "serve/render.hpp"
#include "serve/server.hpp"
#include "sssp/delta_stepping.hpp"
#include "util/net.hpp"

namespace gdiam::serve {
namespace {

/// Unique socket path per test (the suite may run in parallel with itself
/// under ctest -j; pid + a counter keeps paths disjoint).
std::string test_socket(const char* tag) {
  static int counter = 0;
  return "/tmp/gdiam_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + "_" + std::to_string(counter++) +
         ".sock";
}

/// One request over a fresh connection; asserts "ok" unless told otherwise.
Message roundtrip(const std::string& socket_path, Message req,
                  bool expect_ok = true) {
  const int fd = util::net::connect_unix(socket_path);
  write_message(fd, req);
  Message resp;
  EXPECT_TRUE(read_message(fd, resp));
  ::close(fd);
  if (expect_ok) {
    EXPECT_EQ(resp.head, "ok") << resp.get("message");
  }
  return resp;
}

// ---------------------------------------------------------------------------
// Protocol

TEST(Protocol, EncodeDecodeRoundTrip) {
  Message m;
  m.head = "estimate";
  m.set("graph", "gen:mesh:side=8");
  m.set("tau", "4");
  m.body = "line one\n\nline three after a blank\n";
  const Message d = decode(encode(m));
  EXPECT_EQ(d.head, m.head);
  ASSERT_EQ(d.fields.size(), 2u);
  EXPECT_EQ(d.get("graph"), "gen:mesh:side=8");
  EXPECT_EQ(d.get("tau"), "4");
  EXPECT_EQ(d.body, m.body);  // bodies with blank lines survive framing

  Message headless;
  headless.head = "stats";
  const Message d2 = decode(encode(headless));
  EXPECT_EQ(d2.head, "stats");
  EXPECT_TRUE(d2.fields.empty());
  EXPECT_TRUE(d2.body.empty());
}

TEST(Protocol, LastFieldWinsAndMissingFallsBack) {
  Message m;
  m.set("tau", "4");
  m.set("tau", "16");
  EXPECT_EQ(m.get("tau"), "16");
  EXPECT_EQ(m.get("absent", "fallback"), "fallback");
  EXPECT_TRUE(m.has("tau"));
  EXPECT_FALSE(m.has("absent"));
}

TEST(Protocol, DecodeRejectsMalformedFieldLine) {
  EXPECT_THROW(decode("verb\nnot-a-field\n"), std::invalid_argument);
}

TEST(Protocol, SocketFramingAndCleanEof) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Message m;
  m.head = "ok";
  m.body = "payload\n";
  write_message(fds[0], m);
  write_message(fds[0], m);
  ::close(fds[0]);
  Message r;
  EXPECT_TRUE(read_message(fds[1], r));
  EXPECT_EQ(r.body, "payload\n");
  EXPECT_TRUE(read_message(fds[1], r));
  EXPECT_FALSE(read_message(fds[1], r));  // clean EOF, not an error
  ::close(fds[1]);
}

TEST(Protocol, ReadRejectsOversizedAndTruncatedFrames) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::uint32_t huge = kMaxFrame + 1;
  ASSERT_TRUE(util::net::write_all(fds[0], &huge, sizeof huge));
  Message r;
  EXPECT_THROW(read_message(fds[1], r), std::invalid_argument);
  ::close(fds[0]);
  ::close(fds[1]);

  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::uint32_t len = 100;  // promises 100 bytes, delivers 3
  ASSERT_TRUE(util::net::write_all(fds[0], &len, sizeof len));
  ASSERT_TRUE(util::net::write_all(fds[0], "abc", 3));
  ::close(fds[0]);
  EXPECT_THROW(read_message(fds[1], r), std::runtime_error);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// Graph specs + store

TEST(GraphSpec, GenSpecsMatchGenerators) {
  const Graph mesh = make_graph("gen:mesh:side=8");
  EXPECT_EQ(mesh.num_nodes(), 64u);
  const Graph weighted = make_graph("gen:mesh:side=8:weights=uniform:seed=3");
  EXPECT_EQ(weighted.num_nodes(), 64u);
  EXPECT_NE(weighted.avg_weight(), mesh.avg_weight());
  const Graph p = make_graph("gen:path:nodes=100");
  EXPECT_EQ(p.num_nodes(), 100u);
  EXPECT_EQ(p.num_edges(), 99u);
}

TEST(GraphSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(make_graph("gen:"), std::invalid_argument);
  EXPECT_THROW(make_graph("gen:warp-drive"), std::invalid_argument);
  EXPECT_THROW(make_graph("gen:mesh:side"), std::invalid_argument);
  EXPECT_THROW(make_graph("gen:mesh:side=8:weights=imaginary"),
               std::invalid_argument);
  EXPECT_THROW(make_graph("gen:mesh:side=8x"), std::invalid_argument);
}

TEST(GraphStore, LoadsOncePerSpecAndSnapshotsInLoadOrder) {
  GraphStore store;
  GraphStore::Entry& a = store.get("gen:mesh:side=8");
  GraphStore::Entry& b = store.get("gen:path:nodes=50");
  GraphStore::Entry& a2 = store.get("gen:mesh:side=8");
  EXPECT_EQ(&a, &a2);  // same entry, same warm context
  EXPECT_EQ(store.size(), 2u);
  a.served.fetch_add(3);
  const auto snap = store.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].spec, "gen:mesh:side=8");
  EXPECT_EQ(snap[0].nodes, 64u);
  EXPECT_EQ(snap[0].served, 3u);
  EXPECT_EQ(snap[1].spec, "gen:path:nodes=50");
  (void)b;
}

TEST(GraphStore, FailedLoadIsRetryableNotCached) {
  GraphStore store;
  EXPECT_THROW(store.get("gen:no-such-family"), std::invalid_argument);
  EXPECT_EQ(store.size(), 0u);  // the failure did not poison the store
  EXPECT_THROW(store.get("gen:no-such-family"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Server end to end

constexpr const char* kSpec = "gen:mesh:side=16:weights=uniform:seed=7";

TEST(Server, ServesEstimateAndSsspBitIdenticalToDirectCalls) {
  ServerOptions sopts;
  sopts.socket_path = test_socket("parity");
  Server server(sopts);
  server.start();

  Message est;
  est.head = "estimate";
  est.set("graph", kSpec);
  est.set("tau", "8");
  const Message est_resp = roundtrip(sopts.socket_path, est);

  Message sp;
  sp.head = "sssp";
  sp.set("graph", kSpec);
  sp.set("source", "5");
  const Message sssp_resp = roundtrip(sopts.socket_path, sp);
  server.stop();

  // The acceptance criterion: served bodies equal the rendering of a direct
  // library call — results AND model-level counters, bit for bit.
  const Graph g = make_graph(kSpec);
  exec::Context ctx;
  core::DiameterApproxOptions dopt;
  dopt.cluster.tau = 8;
  const auto direct_est = core::approximate_diameter(g, dopt, &ctx);
  EXPECT_EQ(est_resp.body, render_estimate(direct_est, 8));

  exec::Context ctx2;
  const auto direct_sssp = sssp::delta_stepping(g, 5, {}, &ctx2);
  EXPECT_EQ(sssp_resp.body, render_sssp(5, direct_sssp));
}

TEST(Server, WarmRepeatsAreIdenticalAndPoolTransportServes) {
  ServerOptions sopts;
  sopts.socket_path = test_socket("warm");
  Server server(sopts);
  server.start();

  Message est;
  est.head = "estimate";
  // side=16 completes before any remote exchange fires; side=32 is the
  // smallest mesh in the family that provably moves bytes over the pool.
  est.set("graph", "gen:mesh:side=32:weights=uniform:seed=7");
  est.set("tau", "8");
  est.set("partitions", "4");
  est.set("transport", "pool");
  est.set("processes", "2");
  const Message cold = roundtrip(sopts.socket_path, est);
  const Message warm1 = roundtrip(sopts.socket_path, est);
  const Message warm2 = roundtrip(sopts.socket_path, est);
  server.stop();
  // Same graph, same options, warm context + resident pool workers: the
  // response must not drift run over run (cost line included).
  EXPECT_EQ(warm1.body, cold.body);
  EXPECT_EQ(warm2.body, cold.body);
  EXPECT_NE(cold.body.find("wire="), std::string::npos)
      << "pool transport must report wire traffic";
}

TEST(Server, ConcurrentClientsGetMatchedResponses) {
  ServerOptions sopts;
  sopts.socket_path = test_socket("conc");
  sopts.worker_threads = 2;
  Server server(sopts);
  server.start();

  // Reference bodies, served once each.
  Message est;
  est.head = "estimate";
  est.set("graph", kSpec);
  est.set("tau", "8");
  const std::string est_body = roundtrip(sopts.socket_path, est).body;
  std::vector<std::string> sssp_body(4);
  for (int s = 0; s < 4; ++s) {
    Message sp;
    sp.head = "sssp";
    sp.set("graph", kSpec);
    sp.set("source", std::to_string(s));
    sssp_body[s] = roundtrip(sopts.socket_path, sp).body;
  }

  // 4 threads × 8 pipelined requests each, mixed verbs, ids checked.
  std::vector<std::thread> clients;
  std::vector<int> failures(4, 0);
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      const int fd = util::net::connect_unix(sopts.socket_path);
      for (int i = 0; i < 8; ++i) {
        Message req;
        const int src = (t + i) % 4;
        if (i % 2 == 0) {
          req.head = "estimate";
          req.set("graph", kSpec);
          req.set("tau", "8");
        } else {
          req.head = "sssp";
          req.set("graph", kSpec);
          req.set("source", std::to_string(src));
        }
        req.set("id", std::to_string(t * 100 + i));
        write_message(fd, req);
        Message resp;
        if (!read_message(fd, resp) || resp.head != "ok" ||
            resp.get("id") != std::to_string(t * 100 + i) ||
            resp.body != (i % 2 == 0 ? est_body : sssp_body[src])) {
          ++failures[t];
        }
      }
      ::close(fd);
    });
  }
  for (auto& c : clients) c.join();
  const ServerStats& stats = server.stats();
  EXPECT_EQ(stats.requests.load(), 5u + 4u * 8u);
  EXPECT_EQ(stats.errors.load(), 0u);
  server.stop();
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(failures[t], 0) << "client " << t;
  }
}

// The same-graph batcher: stuff the queue while a long request holds the
// only worker, then check that the backlog was coalesced into fewer
// dispatches than requests.
TEST(Server, SameGraphRequestsBatch) {
  ServerOptions sopts;
  sopts.socket_path = test_socket("batch");
  sopts.worker_threads = 1;  // one worker => the backlog provably queues
  sopts.max_batch = 16;
  Server server(sopts);
  server.start();

  // Warm the graph so the backlog requests are pure queue pressure.
  Message warm;
  warm.head = "load";
  warm.set("graph", kSpec);
  roundtrip(sopts.socket_path, warm);

  constexpr int kClients = 6;
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&] {
      Message sp;
      sp.head = "sssp";
      sp.set("graph", kSpec);
      sp.set("source", "0");
      roundtrip(sopts.socket_path, sp);
    });
  }
  for (auto& c : clients) c.join();
  const ServerStats& stats = server.stats();
  server.stop();
  EXPECT_EQ(stats.requests.load(), 1u + kClients);
  EXPECT_EQ(stats.errors.load(), 0u);
  // Not asserting a specific coalescing count (arrival timing is the
  // scheduler's input), only that dispatches never exceed requests and the
  // counters are consistent.
  EXPECT_LE(stats.batches.load(), stats.requests.load());
  EXPECT_EQ(stats.batches.load() + stats.batched_requests.load(),
            stats.requests.load());
}

TEST(Server, ErrorResponsesForBadRequests) {
  ServerOptions sopts;
  sopts.socket_path = test_socket("err");
  Server server(sopts);
  server.start();

  Message bad_verb;
  bad_verb.head = "transmogrify";
  EXPECT_EQ(roundtrip(sopts.socket_path, bad_verb, false).head, "error");

  Message no_graph;
  no_graph.head = "estimate";
  EXPECT_EQ(roundtrip(sopts.socket_path, no_graph, false).head, "error");

  Message bad_spec;
  bad_spec.head = "estimate";
  bad_spec.set("graph", "gen:warp-drive");
  EXPECT_EQ(roundtrip(sopts.socket_path, bad_spec, false).head, "error");

  Message bad_source;
  bad_source.head = "sssp";
  bad_source.set("graph", "gen:path:nodes=10");
  bad_source.set("source", "99");
  const Message resp = roundtrip(sopts.socket_path, bad_source, false);
  EXPECT_EQ(resp.head, "error");
  EXPECT_NE(resp.get("message").find("out of range"), std::string::npos);

  // The connection survives its errors: a good request still works on it.
  Message good;
  good.head = "sssp";
  good.set("graph", "gen:path:nodes=10");
  good.set("source", "9");
  EXPECT_EQ(roundtrip(sopts.socket_path, good).head, "ok");

  EXPECT_EQ(server.stats().errors.load(), 4u);
  server.stop();
}

TEST(Server, StatsAndShutdownVerbs) {
  ServerOptions sopts;
  sopts.socket_path = test_socket("stats");
  Server server(sopts);
  server.start();

  Message load;
  load.head = "load";
  load.set("graph", "gen:path:nodes=64");
  const Message load_resp = roundtrip(sopts.socket_path, load);
  EXPECT_EQ(load_resp.get("nodes"), "64");
  EXPECT_EQ(load_resp.get("edges"), "63");

  Message stats;
  stats.head = "stats";
  const Message s = roundtrip(sopts.socket_path, stats);
  EXPECT_EQ(s.get("graphs"), "1");
  EXPECT_EQ(s.get("errors"), "0");
  EXPECT_NE(s.body.find("gen:path:nodes=64"), std::string::npos);

  Message shutdown;
  shutdown.head = "shutdown";
  EXPECT_EQ(roundtrip(sopts.socket_path, shutdown).head, "ok");
  server.wait();  // the verb must have tripped the stop signal
  server.stop();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace gdiam::serve
