// Tests for the pluggable BSP transport (mr/transport.hpp, DESIGN.md §9):
// the Launcher's shard→process mapping, the Exchange's loopback channel and
// row (de)serialization, ProcessTransport superstep semantics, and — the
// load-bearing part — bit-identical parity of the whole partitioned stack
// (Δ-stepping distances, CLUSTER labels, CL-DIAM estimates, every
// model-level RoundStats counter) between LocalTransport, ProcessTransport
// and the resident-worker PoolTransport for every graph family, K ∈ {2, 4}
// and P ∈ {1, 2}, with the wire counters nonzero exactly under the remote
// transports. The pool additionally pins its lifecycle contract: one spawn
// wave per resident epoch, per-superstep inputs crossing the socket, and a
// SIGKILLed worker restarted mid-run with bit-identical results.

#include <gtest/gtest.h>

#include <csignal>
#include <sys/types.h>

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "core/cluster.hpp"
#include "core/diameter.hpp"
#include "core/growing.hpp"
#include "mr/bsp_engine.hpp"
#include "mr/exchange.hpp"
#include "mr/partition.hpp"
#include "mr/transport.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/rho_stepping.hpp"
#include "test_helpers.hpp"

namespace gdiam::mr {
namespace {

using test::Family;

TransportOptions process_opts(std::uint32_t p) {
  return {.kind = TransportKind::kProcess, .processes = p};
}

TransportOptions pool_opts(std::uint32_t p) {
  return {.kind = TransportKind::kPool, .processes = p};
}

/// The model-level view of a RoundStats: wire counters zeroed. Everything
/// else must be transport-invariant; the wire counters are transport-
/// dependent by design (they include loopback stand-ins plus framing).
RoundStats zero_wire(RoundStats s) {
  s.wire_messages = 0;
  s.wire_bytes = 0;
  return s;
}

// ---------------------------------------------------------------------------
// Launcher

TEST(Launcher, GroupsAreContiguousBalancedAndCoverEveryShard) {
  for (const std::uint32_t k : {1u, 2u, 5u, 7u, 16u}) {
    for (const std::uint32_t p : {1u, 2u, 3u, 4u}) {
      const Launcher l(k, p);
      EXPECT_LE(l.processes(), k);
      ShardId next = 0;
      std::uint32_t largest = 0, smallest = k;
      for (std::uint32_t g = 0; g < l.processes(); ++g) {
        const auto [first, last] = l.group(g);
        EXPECT_EQ(first, next) << "k=" << k << " p=" << p;  // contiguous
        EXPECT_LT(first, last);  // every worker owns at least one shard
        for (ShardId s = first; s < last; ++s) {
          EXPECT_EQ(l.process_of(s), g);
        }
        largest = std::max(largest, last - first);
        smallest = std::min(smallest, last - first);
        next = last;
      }
      EXPECT_EQ(next, k);                // covers every shard
      EXPECT_LE(largest - smallest, 1u);  // ceil-balanced
    }
  }
}

TEST(Launcher, ClampsProcessesToShardCount) {
  const Launcher l(3, 64);
  EXPECT_EQ(l.processes(), 3u);
  EXPECT_EQ(l.num_shards(), 3u);
}

TEST(Launcher, MakeTransportSelectsKind) {
  const auto local = Launcher::make_transport({}, 4);
  EXPECT_FALSE(local->remote_compute());
  EXPECT_EQ(local->processes(), 1u);
  const auto proc = Launcher::make_transport(process_opts(2), 4);
  EXPECT_TRUE(proc->remote_compute());
  EXPECT_FALSE(proc->resident_workers());
  EXPECT_EQ(proc->processes(), 2u);
  const auto pool = Launcher::make_transport(pool_opts(2), 4);
  EXPECT_TRUE(pool->remote_compute());
  EXPECT_TRUE(pool->resident_workers());
  EXPECT_EQ(pool->processes(), 2u);
}

// ---------------------------------------------------------------------------
// Exchange: loopback channel + row serialization

TEST(Exchange, LoopbackDeliversFirstAndIsNotTallied) {
  Exchange<int> ex(2);
  ex.send(1, 0, 10);    // routed, cross
  ex.loopback(0, 1);    // owned-write stand-in for shard 0
  ex.send(0, 0, 5);     // routed, shard-internal
  ex.loopback(0, 2);
  const ExchangeCounters c = ex.seal();
  const auto inbox = ex.inbox(0);
  ASSERT_EQ(inbox.size(), 4u);
  // Loopback records first (in staging order), then routed rows by source.
  EXPECT_EQ(inbox[0], 1);
  EXPECT_EQ(inbox[1], 2);
  EXPECT_EQ(inbox[2], 5);
  EXPECT_EQ(inbox[3], 10);
  // Model-level counters see only send() traffic.
  EXPECT_EQ(c.messages, 2u);
  EXPECT_EQ(c.bytes, 2u * sizeof(int));
  EXPECT_EQ(c.cross_messages, 1u);
  EXPECT_EQ(ex.loopback_staged(), 2u);
  ex.clear();
  EXPECT_EQ(ex.loopback_staged(), 0u);
}

TEST(Exchange, RowRoundTripsThroughEncodeDecode) {
  Exchange<std::uint64_t> src(3), dst(3);
  src.loopback(1, 111);
  src.send(1, 0, 7);
  src.send(1, 2, 9);
  src.loopback(1, 222);
  std::vector<std::byte> row;
  src.encode_row(1, row);
  EXPECT_EQ(dst.decode_row(1, row.data(), row.size()), 4u);

  const ExchangeCounters cs = src.seal();
  const ExchangeCounters cd = dst.seal();
  EXPECT_EQ(cs, cd);
  for (ShardId s = 0; s < 3; ++s) {
    const auto a = src.inbox(s);
    const auto b = dst.inbox(s);
    ASSERT_EQ(a.size(), b.size()) << "shard " << s;
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(Exchange, DecodeRejectsMalformedRow) {
  Exchange<std::uint64_t> ex(2);
  const std::byte junk[3] = {};
  EXPECT_THROW(ex.decode_row(0, junk, sizeof junk), std::invalid_argument);
  // A corrupt loopback count whose byte size would wrap the multiplication
  // must fail the framing check, not pass it and blow up the resize.
  std::vector<std::byte> row;
  const std::uint64_t huge = std::uint64_t{1} << 61;
  row.resize(sizeof huge);
  std::memcpy(row.data(), &huge, sizeof huge);
  EXPECT_THROW(ex.decode_row(0, row.data(), row.size()),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ProcessTransport superstep semantics

class ProcessSuperstep : public testing::TestWithParam<std::uint32_t> {};

TEST_P(ProcessSuperstep, MatchesLocalInboxesAndShipsCounters) {
  const std::uint32_t procs = GetParam();
  const Graph g = gen::path(40);
  const Partition part(
      g, {.num_partitions = 4, .strategy = PartitionStrategy::kRange});
  const std::uint32_t k = part.num_partitions();

  // Ring ping + one loopback per shard; shard s also reports a counter.
  auto compute_into = [&](const Shard& sh, Exchange<std::uint32_t>& ex,
                          std::span<std::uint64_t> counters) {
    ex.loopback(sh.id, 1000 + sh.id);
    ex.send(sh.id, (sh.id + 1) % k, sh.id);
    counters[sh.id] = 77 + sh.id;
  };
  auto run = [&](Transport& transport, std::vector<std::uint64_t>& counters,
                 RoundStats& stats) {
    BspEngine engine(part, &transport);
    Exchange<std::uint32_t> ex(k);
    std::vector<std::vector<std::uint32_t>> inboxes(k);
    const ExchangeCounters c = engine.superstep(
        ex,
        [&](const Shard& sh, Exchange<std::uint32_t>& out) {
          compute_into(sh, out, counters);
        },
        [&](const Shard& sh, std::span<const std::uint32_t> inbox) {
          inboxes[sh.id].assign(inbox.begin(), inbox.end());
        },
        &stats, counters);
    // Loopback first, then the routed ring message.
    for (ShardId s = 0; s < k; ++s) {
      EXPECT_EQ(inboxes[s].size(), 2u);
      if (inboxes[s].size() == 2u) {
        EXPECT_EQ(inboxes[s][0], 1000 + s);
        EXPECT_EQ(inboxes[s][1], (s + k - 1) % k);
      }
    }
    return c;
  };

  LocalTransport local;
  std::vector<std::uint64_t> local_counters(k, 0);
  RoundStats local_stats;
  const ExchangeCounters lc = run(local, local_counters, local_stats);

  ProcessTransport proc(Launcher(k, procs));
  std::vector<std::uint64_t> proc_counters(k, 0);
  RoundStats proc_stats;
  const ExchangeCounters pc = run(proc, proc_counters, proc_stats);

  EXPECT_EQ(proc_counters, local_counters);  // counters crossed the socket
  EXPECT_EQ(zero_wire(proc_stats), zero_wire(local_stats));
  EXPECT_EQ(pc.messages, lc.messages);
  EXPECT_EQ(pc.cross_messages, lc.cross_messages);
  EXPECT_EQ(lc.wire_bytes, 0u);
  // Every staged record (k loopbacks + k ring messages) crossed a socket.
  EXPECT_EQ(pc.wire_messages, 2u * k);
  EXPECT_GT(pc.wire_bytes, 0u);
  EXPECT_EQ(proc_stats.wire_bytes, pc.wire_bytes);
}

INSTANTIATE_TEST_SUITE_P(Processes, ProcessSuperstep,
                         testing::Values(1u, 2u, 4u),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// PoolTransport superstep semantics: resident workers, shipped inputs

// Workers fork once, then run three supersteps whose input changes every
// step — the codec must carry it across (the frozen compute closure would
// otherwise see the fork-time values forever). A codec epoch bump must
// trigger exactly one fresh spawn wave.
TEST(PoolSuperstep, ResidentWorkersReceivePerStepInputs) {
  const Graph g = gen::path(40);
  const Partition part(
      g, {.num_partitions = 4, .strategy = PartitionStrategy::kRange});
  const std::uint32_t k = part.num_partitions();

  PoolTransport pool((Launcher(k, 2)));
  BspEngine engine(part, &pool);
  Exchange<std::uint64_t> ex(k);
  // The shipped per-step input. Allocated before the first superstep so its
  // address is stable at fork time: the worker's decode writes through it.
  std::vector<std::uint64_t> step_value(k, 0);
  StepInputCodec codec;
  codec.encode = [&step_value](ShardId s, std::vector<std::byte>& buf) {
    const auto* p = reinterpret_cast<const std::byte*>(&step_value[s]);
    buf.insert(buf.end(), p, p + sizeof(std::uint64_t));
  };
  codec.decode = [&step_value](ShardId s, const std::byte* p, std::size_t) {
    std::memcpy(&step_value[s], p, sizeof(std::uint64_t));
  };
  codec.epoch = 1;

  std::vector<std::uint64_t> counters(k, 0);
  std::vector<std::vector<std::uint64_t>> inboxes(k);
  auto compute = [&](const Shard& sh, Exchange<std::uint64_t>& out) {
    out.loopback(sh.id, step_value[sh.id]);
    out.send(sh.id, (sh.id + 1) % k, step_value[sh.id] * 10);
    counters[sh.id] = step_value[sh.id] + 1;
  };
  auto apply = [&](const Shard& sh, std::span<const std::uint64_t> inbox) {
    inboxes[sh.id].assign(inbox.begin(), inbox.end());
  };

  for (std::uint64_t round = 1; round <= 3; ++round) {
    for (ShardId s = 0; s < k; ++s) step_value[s] = round * 100 + s;
    const ExchangeCounters c = engine.superstep(
        ex, compute, apply, nullptr,
        std::span<std::uint64_t>(counters.data(), k), &codec);
    EXPECT_GT(c.wire_bytes, 0u);
    for (ShardId s = 0; s < k; ++s) {
      ASSERT_EQ(inboxes[s].size(), 2u) << "round " << round;
      // Loopback first, then the ring message — both carrying THIS round's
      // value, proving the input crossed into the resident worker.
      EXPECT_EQ(inboxes[s][0], round * 100 + s);
      EXPECT_EQ(inboxes[s][1], (round * 100 + (s + k - 1) % k) * 10);
      EXPECT_EQ(counters[s], round * 100 + s + 1);  // shipped back by wire
    }
  }
  EXPECT_EQ(pool.spawns(), 2u);  // one wave of two workers, resident since
  EXPECT_EQ(pool.restarts(), 0u);

  // Epoch bump = "fork-time resident state mutated": fresh snapshot wave.
  codec.epoch = 2;
  for (ShardId s = 0; s < k; ++s) step_value[s] = 777 + s;
  engine.superstep(ex, compute, apply, nullptr,
                   std::span<std::uint64_t>(counters.data(), k), &codec);
  for (ShardId s = 0; s < k; ++s) {
    ASSERT_EQ(inboxes[s].size(), 2u);
    EXPECT_EQ(inboxes[s][0], 777u + s);
  }
  EXPECT_EQ(pool.spawns(), 4u);
  EXPECT_EQ(pool.restarts(), 0u);
  pool.shutdown();
  EXPECT_EQ(pool.spawns(), 4u);  // shutdown is not a spawn
}

// A codec-less plan must still be correct under the pool: the transport
// falls back to a respawn per superstep (ProcessTransport semantics).
TEST(PoolSuperstep, NoCodecFallsBackToRespawnPerSuperstep) {
  const Graph g = gen::path(24);
  const Partition part(
      g, {.num_partitions = 3, .strategy = PartitionStrategy::kRange});
  const std::uint32_t k = part.num_partitions();

  PoolTransport pool((Launcher(k, 3)));
  BspEngine engine(part, &pool);
  Exchange<std::uint64_t> ex(k);
  std::uint64_t round = 0;
  std::vector<std::vector<std::uint64_t>> inboxes(k);
  for (round = 1; round <= 2; ++round) {
    engine.superstep(
        ex,
        [&](const Shard& sh, Exchange<std::uint64_t>& out) {
          out.send(sh.id, (sh.id + 1) % k, round * 10 + sh.id);
        },
        [&](const Shard& sh, std::span<const std::uint64_t> inbox) {
          inboxes[sh.id].assign(inbox.begin(), inbox.end());
        });
    for (ShardId s = 0; s < k; ++s) {
      ASSERT_EQ(inboxes[s].size(), 1u);
      // Fresh fork each step, so `round` is current even without a codec.
      EXPECT_EQ(inboxes[s][0], round * 10 + (s + k - 1) % k);
    }
  }
  EXPECT_EQ(pool.spawns(), 2u * k);  // one wave per superstep
}

// ---------------------------------------------------------------------------
// Whole-stack parity: LocalTransport vs ProcessTransport

class TransportParity
    : public testing::TestWithParam<
          std::tuple<Family, std::uint32_t, std::uint32_t>> {};

TEST_P(TransportParity, DeltaSteppingBitIdentical) {
  const auto [family, k, p] = GetParam();
  const Graph g = test::make_family(family, 150, 42);

  sssp::DeltaSteppingOptions opts;
  opts.partition.num_partitions = k;
  const sssp::DeltaSteppingResult local = sssp::delta_stepping(g, 0, opts);

  opts.transport = process_opts(p);
  const sssp::DeltaSteppingResult proc = sssp::delta_stepping(g, 0, opts);

  EXPECT_EQ(proc.dist, local.dist);
  EXPECT_EQ(proc.eccentricity, local.eccentricity);
  EXPECT_EQ(proc.farthest, local.farthest);
  EXPECT_EQ(proc.buckets_processed, local.buckets_processed);
  EXPECT_EQ(zero_wire(proc.stats), zero_wire(local.stats));
  EXPECT_EQ(local.stats.wire_bytes, 0u);
  EXPECT_EQ(local.processes_used, 1u);
  EXPECT_EQ(proc.processes_used, p);
  EXPECT_GT(proc.stats.wire_bytes, 0u);  // compute genuinely ran elsewhere

  opts.transport = pool_opts(p);
  const sssp::DeltaSteppingResult pool = sssp::delta_stepping(g, 0, opts);
  EXPECT_EQ(pool.dist, local.dist);
  EXPECT_EQ(pool.eccentricity, local.eccentricity);
  EXPECT_EQ(pool.farthest, local.farthest);
  EXPECT_EQ(pool.buckets_processed, local.buckets_processed);
  EXPECT_EQ(zero_wire(pool.stats), zero_wire(local.stats));
  EXPECT_EQ(pool.processes_used, p);
  EXPECT_GT(pool.stats.wire_bytes, 0u);
}

TEST_P(TransportParity, RhoSteppingBitIdentical) {
  // Same contract as the Δ kernel: the ρ-stepping threshold sample is a pure
  // function of the frontier set, so distances AND every model counter are
  // transport-invariant, with wire traffic nonzero exactly under the remote
  // transports.
  const auto [family, k, p] = GetParam();
  const Graph g = test::make_family(family, 150, 42);

  sssp::DeltaSteppingOptions opts;
  opts.algorithm = exec::Algorithm::kRhoStepping;
  opts.rho = 32;  // small target → several steps, so supersteps actually run
  opts.partition.num_partitions = k;
  const sssp::DeltaSteppingResult local = sssp::rho_stepping(g, 0, opts);
  EXPECT_EQ(local.algorithm_used, exec::Algorithm::kRhoStepping);

  opts.transport = process_opts(p);
  const sssp::DeltaSteppingResult proc = sssp::rho_stepping(g, 0, opts);

  EXPECT_EQ(proc.dist, local.dist);
  EXPECT_EQ(proc.eccentricity, local.eccentricity);
  EXPECT_EQ(proc.farthest, local.farthest);
  EXPECT_EQ(proc.buckets_processed, local.buckets_processed);
  EXPECT_EQ(zero_wire(proc.stats), zero_wire(local.stats));
  EXPECT_EQ(local.stats.wire_bytes, 0u);
  EXPECT_EQ(local.processes_used, 1u);
  EXPECT_EQ(proc.processes_used, p);
  EXPECT_GT(proc.stats.wire_bytes, 0u);

  opts.transport = pool_opts(p);
  const sssp::DeltaSteppingResult pool = sssp::rho_stepping(g, 0, opts);
  EXPECT_EQ(pool.dist, local.dist);
  EXPECT_EQ(pool.eccentricity, local.eccentricity);
  EXPECT_EQ(pool.farthest, local.farthest);
  EXPECT_EQ(pool.buckets_processed, local.buckets_processed);
  EXPECT_EQ(zero_wire(pool.stats), zero_wire(local.stats));
  EXPECT_EQ(pool.processes_used, p);
  EXPECT_GT(pool.stats.wire_bytes, 0u);
}

TEST_P(TransportParity, ClusterLabelsAndStatsBitIdentical) {
  const auto [family, k, p] = GetParam();
  const Graph g = test::make_family(family, 150, 42);

  core::ClusterOptions opts;
  // tau and stop_factor sized so stages actually run on a 150-node instance
  // (CLUSTER stops before the first stage once uncovered < 8·tau·log2 n).
  opts.tau = 2;
  opts.stop_factor = 1.0;
  opts.policy = core::GrowingPolicy::kPartitioned;
  opts.partition.num_partitions = k;
  const core::Clustering local = core::cluster(g, opts);

  opts.transport = process_opts(p);
  const core::Clustering proc = core::cluster(g, opts);

  EXPECT_EQ(proc.center_of, local.center_of);
  EXPECT_EQ(proc.dist_to_center, local.dist_to_center);
  EXPECT_EQ(proc.centers, local.centers);
  EXPECT_EQ(proc.radius, local.radius);
  EXPECT_EQ(zero_wire(proc.stats), zero_wire(local.stats));
  EXPECT_EQ(local.stats.wire_bytes, 0u);
  EXPECT_GT(proc.stats.wire_bytes, 0u);

  opts.transport = pool_opts(p);
  const core::Clustering pool = core::cluster(g, opts);
  EXPECT_EQ(pool.center_of, local.center_of);
  EXPECT_EQ(pool.dist_to_center, local.dist_to_center);
  EXPECT_EQ(pool.centers, local.centers);
  EXPECT_EQ(pool.radius, local.radius);
  EXPECT_EQ(zero_wire(pool.stats), zero_wire(local.stats));
  EXPECT_GT(pool.stats.wire_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Families, TransportParity,
    testing::Combine(testing::ValuesIn(test::all_families()),
                     testing::Values(2u, 4u), testing::Values(1u, 2u)),
    [](const auto& info) {
      return std::string(test::family_name(std::get<0>(info.param))) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_p" +
             std::to_string(std::get<2>(info.param));
    });

// The adaptive=false legacy rounds take the other compute path
// (step_partitioned / the baseline improved sets); pin one configuration.
TEST(TransportParity, NonAdaptiveBaselineBitIdentical) {
  const Graph g = test::make_family(Family::kGnmUniform, 150, 7);

  sssp::DeltaSteppingOptions dopts;
  dopts.partition.num_partitions = 4;
  dopts.frontier.adaptive = false;
  const sssp::DeltaSteppingResult dl = sssp::delta_stepping(g, 0, dopts);
  dopts.transport = process_opts(2);
  const sssp::DeltaSteppingResult dp = sssp::delta_stepping(g, 0, dopts);
  EXPECT_EQ(dp.dist, dl.dist);
  EXPECT_EQ(zero_wire(dp.stats), zero_wire(dl.stats));
  EXPECT_GT(dp.stats.wire_bytes, 0u);
  dopts.transport = pool_opts(2);
  const sssp::DeltaSteppingResult dpool = sssp::delta_stepping(g, 0, dopts);
  EXPECT_EQ(dpool.dist, dl.dist);
  EXPECT_EQ(zero_wire(dpool.stats), zero_wire(dl.stats));
  EXPECT_GT(dpool.stats.wire_bytes, 0u);

  core::ClusterOptions copts;
  copts.tau = 2;
  copts.stop_factor = 1.0;
  copts.policy = core::GrowingPolicy::kPartitioned;
  copts.partition.num_partitions = 4;
  copts.frontier.adaptive = false;
  const core::Clustering cl = core::cluster(g, copts);
  copts.transport = process_opts(2);
  const core::Clustering cp = core::cluster(g, copts);
  EXPECT_EQ(cp.center_of, cl.center_of);
  EXPECT_EQ(zero_wire(cp.stats), zero_wire(cl.stats));
  EXPECT_GT(cp.stats.wire_bytes, 0u);
  copts.transport = pool_opts(2);
  const core::Clustering cpool = core::cluster(g, copts);
  EXPECT_EQ(cpool.center_of, cl.center_of);
  EXPECT_EQ(zero_wire(cpool.stats), zero_wire(cl.stats));
  EXPECT_GT(cpool.stats.wire_bytes, 0u);
}

// The acceptance-criterion pipeline: CL-DIAM end to end, multi-process,
// bit-identical estimate and decomposition, nonzero wire traffic reported.
TEST(TransportParity, DiameterPipelineBitIdentical) {
  for (const Family family : test::all_families()) {
    const Graph g = test::make_family(family, 120, 11);

    core::DiameterApproxOptions opts;
    opts.cluster.tau = 2;
    opts.cluster.stop_factor = 1.0;
    opts.cluster.policy = core::GrowingPolicy::kPartitioned;
    opts.cluster.partition.num_partitions = 4;
    const core::DiameterApproxResult local = core::approximate_diameter(g, opts);

    opts.cluster.transport = process_opts(2);
    const core::DiameterApproxResult proc = core::approximate_diameter(g, opts);

    EXPECT_EQ(proc.estimate, local.estimate) << test::family_name(family);
    EXPECT_EQ(proc.estimate_classic, local.estimate_classic);
    EXPECT_EQ(proc.quotient_diam, local.quotient_diam);
    EXPECT_EQ(proc.radius, local.radius);
    EXPECT_EQ(proc.clustering.center_of, local.clustering.center_of);
    EXPECT_EQ(zero_wire(proc.stats), zero_wire(local.stats));
    EXPECT_EQ(local.stats.wire_bytes, 0u);
    EXPECT_GT(proc.stats.wire_bytes, 0u) << test::family_name(family);

    opts.cluster.transport = pool_opts(2);
    const core::DiameterApproxResult pool = core::approximate_diameter(g, opts);
    EXPECT_EQ(pool.estimate, local.estimate) << test::family_name(family);
    EXPECT_EQ(pool.estimate_classic, local.estimate_classic);
    EXPECT_EQ(pool.quotient_diam, local.quotient_diam);
    EXPECT_EQ(pool.radius, local.radius);
    EXPECT_EQ(pool.clustering.center_of, local.clustering.center_of);
    EXPECT_EQ(zero_wire(pool.stats), zero_wire(local.stats));
    EXPECT_GT(pool.stats.wire_bytes, 0u) << test::family_name(family);
  }
}

// ---------------------------------------------------------------------------
// PoolTransport fault handling: a worker SIGKILLed mid-run is restarted by
// the launcher and the retried superstep is bit-identical — proposals are a
// pure function of (resident snapshot, shipped inputs), so replaying a
// group's compute from a fresh fork reproduces exactly the lost rows.

TEST(PoolFaultHandling, KilledWorkerIsRestartedBitIdentical) {
  const Graph g = test::make_family(Family::kGnmUniform, 200, 13);
  const Weight delta = 2.0 * g.avg_weight();
  const mr::PartitionOptions popts{.num_partitions = 4,
                                   .strategy = PartitionStrategy::kHash};
  const core::GrowingStepParams params{.light_threshold = delta,
                                       .uniform_budget = delta};

  auto seed = [&](core::GrowingEngine& e) {
    e.set_source(0, 0);
    e.set_source(g.num_nodes() / 2, g.num_nodes() / 2);
    e.rebuild_frontier(params);
  };

  // Reference: the same growth to fixpoint on the in-process transport.
  core::GrowingEngine ref(g, core::GrowingPolicy::kPartitioned, popts);
  seed(ref);
  std::vector<std::uint64_t> ref_updates;
  for (int step = 0; step < 64; ++step) {
    const auto r = ref.step(params);
    ref_updates.push_back(r.updates);
    if (r.updates == 0) break;
  }

  core::GrowingEngine eng(g, core::GrowingPolicy::kPartitioned, popts);
  eng.set_transport_options(pool_opts(2));
  seed(eng);
  auto* pool = dynamic_cast<PoolTransport*>(eng.transport());
  ASSERT_NE(pool, nullptr);

  std::vector<std::uint64_t> pool_updates;
  bool killed = false;
  for (int step = 0; step < 64; ++step) {
    const auto r = eng.step(params);
    pool_updates.push_back(r.updates);
    if (r.updates == 0) break;
    if (!killed && step == 1) {
      // Workers are resident between steps (no reset/block/Δ-change here, so
      // the epoch is stable and no respawn masks the crash path): the pid is
      // valid and the NEXT superstep must hit the dead socket and recover.
      const pid_t victim = pool->worker_pid(0);
      ASSERT_GT(victim, 0);
      ASSERT_EQ(kill(victim, SIGKILL), 0);
      killed = true;
    }
  }
  ASSERT_TRUE(killed) << "growth fixpointed before the fault was injected";
  EXPECT_GE(pool->restarts(), 1u);  // the launcher replaced the dead worker
  EXPECT_EQ(eng.labels(), ref.labels());
  EXPECT_EQ(pool_updates, ref_updates);
}

}  // namespace
}  // namespace gdiam::mr
