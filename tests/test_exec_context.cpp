// The unified execution runtime (exec/context.hpp): cache identity and
// pooling unit tests, plus the reuse parity suite — CL-DIAM, CLUSTER and
// CLUSTER2 results must be bit-identical between a fresh context per call
// and one context reused across calls, on every graph family, flat and
// partitioned (K ∈ {1, 2, 7}). This is the contract the context-reuse A/B in
// bench/micro_kernels rests on: reuse may only move wall time, never a
// distance, label, estimate or counter.

#include "exec/context.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/cluster.hpp"
#include "core/cluster2.hpp"
#include "core/diameter.hpp"
#include "core/quotient.hpp"
#include "sssp/sweep.hpp"
#include "test_helpers.hpp"

namespace gdiam {
namespace {

using test::Family;

// ---------------------------------------------------------------------------
// Cache identity and pooling.

TEST(ExecContext, SplitCacheHitsOnEqualKeyAndMissesAcrossDeltas) {
  const Graph g = test::make_family(Family::kGnmUniform, 120, 3);
  exec::Context ctx;
  const SplitCsr& a = ctx.split_for(g, 1.0);
  const SplitCsr& b = ctx.split_for(g, 1.0);
  EXPECT_EQ(&a, &b);  // same key -> same cached object
  const SplitCsr& c = ctx.split_for(g, 2.0);
  EXPECT_NE(&a, &c);
  EXPECT_TRUE(c.validate());
  // The first entry survives an unrelated lookup and still validates.
  EXPECT_EQ(&ctx.split_for(g, 1.0), &a);
  EXPECT_TRUE(ctx.split_for(g, 1.0).validate());
}

TEST(ExecContext, SplitCacheEvictionRebuildsCorrectEntries) {
  const Graph g = test::make_family(Family::kMeshUniform, 100, 5);
  exec::Context ctx;
  // Push far past the LRU cap; every returned split must still be the right
  // one for its Δ (an evicted entry is rebuilt, never aliased).
  for (int round = 0; round < 2; ++round) {
    for (int i = 1; i <= 40; ++i) {
      const Weight delta = 0.05 * static_cast<double>(i);
      const SplitCsr& s = ctx.split_for(g, delta);
      ASSERT_EQ(s.delta(), delta);
      ASSERT_TRUE(s.validate());
    }
  }
}

TEST(ExecContext, PartitionCacheKeyedByOptionsAndDiscoverable) {
  const Graph g = test::make_family(Family::kGnmUniform, 150, 7);
  exec::Context ctx;
  EXPECT_EQ(ctx.find_partition(g), nullptr);
  mr::PartitionOptions two{.num_partitions = 2};
  mr::PartitionOptions three{.num_partitions = 3};
  const mr::Partition& p2 = ctx.partition_for(g, two);
  EXPECT_EQ(&ctx.partition_for(g, two), &p2);
  const mr::Partition& p3 = ctx.partition_for(g, three);
  EXPECT_NE(&p2, &p3);
  EXPECT_TRUE(p2.validate(g));
  EXPECT_TRUE(p3.validate(g));
  // find_partition is a pure lookup returning the MRU layout for g.
  EXPECT_EQ(ctx.find_partition(g), &p3);
  const Graph other = test::make_family(Family::kMeshUniform, 100, 9);
  EXPECT_EQ(ctx.find_partition(other), nullptr);
}

TEST(ExecContext, GrowingEnginesArePooledPerKey) {
  const Graph g = test::make_family(Family::kGnmUniform, 120, 11);
  exec::Context ctx;
  core::GrowingEngine& push =
      ctx.growing_engine(g, core::GrowingPolicy::kPush, {});
  EXPECT_EQ(&ctx.growing_engine(g, core::GrowingPolicy::kPush, {}), &push);
  core::GrowingEngine& pull =
      ctx.growing_engine(g, core::GrowingPolicy::kPull, {});
  EXPECT_NE(&push, &pull);
  mr::PartitionOptions two{.num_partitions = 2};
  core::GrowingEngine& bsp =
      ctx.growing_engine(g, core::GrowingPolicy::kPartitioned, two);
  // The pooled partitioned engine borrows the context's cached layout.
  EXPECT_EQ(bsp.partition(), &ctx.partition_for(g, two));
}

TEST(ExecContext, StatsSinkAccumulatesPerPhaseAndRollsUp) {
  exec::StatsSink sink;
  EXPECT_EQ(sink.find("decompose"), nullptr);
  sink.phase("decompose").messages = 10;
  sink.phase("decompose").node_updates = 4;
  sink.phase("quotient").auxiliary_rounds = 1;
  sink.phase("diameter").auxiliary_rounds = 1;
  ASSERT_EQ(sink.phases().size(), 3u);
  EXPECT_EQ(sink.phases()[0].first, "decompose");  // first-use order
  EXPECT_EQ(sink.find("decompose")->messages, 10u);
  const mr::RoundStats total = sink.total();
  EXPECT_EQ(total.messages, 10u);
  EXPECT_EQ(total.node_updates, 4u);
  EXPECT_EQ(total.auxiliary_rounds, 2u);
  sink.clear();
  EXPECT_TRUE(sink.phases().empty());
}

// ---------------------------------------------------------------------------
// Reuse parity: fresh context per call vs one context reused across calls.

void expect_same_clustering(const core::Clustering& a,
                            const core::Clustering& b) {
  EXPECT_EQ(a.center_of, b.center_of);
  EXPECT_EQ(a.dist_to_center, b.dist_to_center);
  EXPECT_EQ(a.centers, b.centers);
  EXPECT_EQ(a.radius, b.radius);
  EXPECT_EQ(a.delta_end, b.delta_end);
  EXPECT_EQ(a.stages, b.stages);
  EXPECT_EQ(a.stats, b.stats);  // every RoundStats counter, ==-default
}

void expect_same_diameter_result(const core::DiameterApproxResult& a,
                                 const core::DiameterApproxResult& b) {
  EXPECT_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.estimate_classic, b.estimate_classic);
  EXPECT_EQ(a.quotient_diam, b.quotient_diam);
  EXPECT_EQ(a.quotient_exact, b.quotient_exact);
  EXPECT_EQ(a.radius, b.radius);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
  EXPECT_EQ(a.quotient_edges, b.quotient_edges);
  EXPECT_EQ(a.stats, b.stats);
  expect_same_clustering(a.clustering, b.clustering);
}

core::ClusterOptions cluster_opts_for(std::uint32_t k) {
  core::ClusterOptions o;
  o.tau = 4;
  o.seed = 17;
  if (k > 1) {
    o.policy = core::GrowingPolicy::kPartitioned;
    o.partition = {.num_partitions = k,
                   .strategy = mr::PartitionStrategy::kHash};
  }
  return o;
}

class ContextReuseParity
    : public testing::TestWithParam<std::tuple<Family, std::uint32_t>> {};

TEST_P(ContextReuseParity, DiameterBitIdenticalFreshVsReused) {
  const auto [family, k] = GetParam();
  const Graph g = test::make_family(family, 200, 29);
  core::DiameterApproxOptions opts;
  opts.cluster = cluster_opts_for(k);

  const core::DiameterApproxResult fresh = core::approximate_diameter(g, opts);
  exec::Context ctx;
  // Two reused runs: the first fills the caches, the second runs fully warm
  // (pooled engine, cached partition and every doubling-search presplit).
  const core::DiameterApproxResult cold =
      core::approximate_diameter(g, opts, &ctx);
  const core::DiameterApproxResult warm =
      core::approximate_diameter(g, opts, &ctx);
  expect_same_diameter_result(fresh, cold);
  expect_same_diameter_result(fresh, warm);
}

TEST_P(ContextReuseParity, ClusterAndCluster2BitIdenticalFreshVsReused) {
  const auto [family, k] = GetParam();
  const Graph g = test::make_family(family, 200, 31);
  const core::ClusterOptions opts = cluster_opts_for(k);

  exec::Context ctx;
  const core::Clustering fresh = core::cluster(g, opts);
  const core::Clustering cold = core::cluster(g, opts, &ctx);
  const core::Clustering warm = core::cluster(g, opts, &ctx);
  EXPECT_TRUE(fresh.validate(g));
  expect_same_clustering(fresh, cold);
  expect_same_clustering(fresh, warm);

  // CLUSTER2 shares the same pooled engine as the CLUSTER runs above — the
  // shared PartialGrowth driver must fully re-initialize it between runs.
  core::Cluster2Options o2;
  o2.base = opts;
  const core::Cluster2Result fresh2 = core::cluster2(g, o2);
  const core::Cluster2Result warm2 = core::cluster2(g, o2, &ctx);
  EXPECT_TRUE(fresh2.clustering.validate(g));
  expect_same_clustering(fresh2.clustering, warm2.clustering);
  EXPECT_EQ(fresh2.radius_cluster1, warm2.radius_cluster1);
  EXPECT_EQ(fresh2.bootstrap_stats, warm2.bootstrap_stats);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamiliesAllShards, ContextReuseParity,
    testing::Combine(testing::ValuesIn(test::all_families()),
                     testing::Values(1u, 2u, 7u)),
    [](const auto& info) {
      return std::string(test::family_name(std::get<0>(info.param))) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

// A pooled engine's borrowed split view must survive LRU eviction by other
// consumers of the same context: after 32+ distinct-Δ Δ-stepping runs evict
// the engine's (graph, threshold) entry, stepping again at the *same*
// threshold without a reset() must re-resolve (and rebuild) rather than
// dereference the destroyed entry (the ASan CI job watches this one).
TEST(ExecContext, PooledEngineSurvivesSplitEvictionAtSameThreshold) {
  const Graph g = test::make_family(Family::kGnmUniform, 150, 51);
  exec::Context ctx;
  core::GrowingEngine& engine =
      ctx.growing_engine(g, core::GrowingPolicy::kPush, {});
  engine.reset();
  engine.set_source(0, 0);
  core::GrowingStepParams params;
  params.light_threshold = params.uniform_budget = 2.0 * g.avg_weight();
  engine.rebuild_frontier(params);
  const auto first = engine.step(params);

  // Flood the split cache far past its LRU cap with unrelated deltas.
  for (int i = 1; i <= 40; ++i) {
    sssp::DeltaSteppingOptions opts;
    opts.delta = 0.01 * static_cast<double>(i) * g.avg_weight();
    (void)sssp::delta_stepping(g, 0, opts, &ctx);
  }

  // Same threshold, no reset: the engine must not trust its stale view.
  const auto second = engine.step(params);
  (void)first;
  (void)second;
  core::GrowingEngine fresh(g, core::GrowingPolicy::kPush);
  fresh.set_source(0, 0);
  fresh.rebuild_frontier(params);
  (void)fresh.step(params);
  const auto fresh_second = fresh.step(params);
  EXPECT_EQ(second.messages, fresh_second.messages);
  EXPECT_EQ(second.updates, fresh_second.updates);
  EXPECT_EQ(engine.labels(), fresh.labels());
}

// Interleaving kernels on one context (the CL-DIAM shape: decompositions,
// quotient work and Δ-stepping sweeps back to back) must not leak state
// between consumers of the shared pools.
TEST(ExecContext, InterleavedKernelsStayIndependent) {
  const Graph g = test::make_family(Family::kMeshUniform, 200, 41);
  exec::Context ctx;

  const core::ClusterOptions copts = cluster_opts_for(2);
  const core::Clustering c_fresh = core::cluster(g, copts);

  sssp::SweepOptions sopts;
  sopts.max_sweeps = 4;
  sopts.seed = 9;
  sopts.use_delta_stepping = true;
  const sssp::SweepResult s_fresh = sssp::diameter_lower_bound(g, sopts);

  for (int round = 0; round < 2; ++round) {
    const core::Clustering c = core::cluster(g, copts, &ctx);
    expect_same_clustering(c_fresh, c);
    const sssp::SweepResult s = sssp::diameter_lower_bound(g, sopts, &ctx);
    EXPECT_EQ(s_fresh.sources, s.sources);
    EXPECT_EQ(s_fresh.eccentricities, s.eccentricities);
    EXPECT_EQ(s_fresh.stats, s.stats);
  }
}

// The quotient edge scan over a cached shard layout must produce the
// bit-identical quotient graph to the flat scan.
TEST(ExecContext, QuotientShardScanMatchesFlatScan) {
  for (const std::uint32_t k : {2u, 7u}) {
    const Graph g = test::make_family(Family::kGnmUniform, 200, 43);
    const core::ClusterOptions copts = cluster_opts_for(k);
    exec::Context ctx;
    const core::Clustering c = core::cluster(g, copts, &ctx);
    ASSERT_NE(ctx.find_partition(g), nullptr);

    const core::QuotientGraph flat = core::build_quotient(g, c);
    const core::QuotientGraph sharded = core::build_quotient(g, c, &ctx);
    EXPECT_EQ(flat.graph.num_nodes(), sharded.graph.num_nodes());
    EXPECT_EQ(flat.graph.num_edges(), sharded.graph.num_edges());
    EXPECT_EQ(test::vec(flat.graph.offsets()),
              test::vec(sharded.graph.offsets()));
    EXPECT_EQ(test::vec(flat.graph.targets()),
              test::vec(sharded.graph.targets()));
    EXPECT_EQ(test::vec(flat.graph.edge_weights()),
              test::vec(sharded.graph.edge_weights()));
    EXPECT_EQ(flat.cluster_of_node, sharded.cluster_of_node);
    EXPECT_EQ(flat.cluster_radius, sharded.cluster_radius);
    EXPECT_EQ(flat.center_of_cluster, sharded.center_of_cluster);
  }
}

// The CL-DIAM driver files its cost into the context's StatsSink per phase;
// the decompose phase carries exactly the clustering's stats and the
// roll-up includes the quotient/diameter auxiliary rounds.
TEST(ExecContext, DiameterFilesPhaseStats) {
  const Graph g = test::make_family(Family::kMeshUniform, 150, 47);
  core::DiameterApproxOptions opts;
  opts.cluster = cluster_opts_for(1);
  exec::Context ctx;
  const core::DiameterApproxResult r =
      core::approximate_diameter(g, opts, &ctx);

  const mr::RoundStats* decompose = ctx.stats().find("decompose");
  ASSERT_NE(decompose, nullptr);
  EXPECT_EQ(*decompose, r.clustering.stats);
  ASSERT_NE(ctx.stats().find("quotient"), nullptr);
  ASSERT_NE(ctx.stats().find("diameter"), nullptr);
  EXPECT_EQ(ctx.stats().find("quotient")->auxiliary_rounds, 1u);
  EXPECT_EQ(ctx.stats().find("diameter")->auxiliary_rounds, 1u);
  EXPECT_EQ(ctx.stats().total().rounds(), r.stats.rounds());

  // A second run on the same context accumulates (observability is
  // cumulative; results stay per-run).
  (void)core::approximate_diameter(g, opts, &ctx);
  EXPECT_EQ(ctx.stats().find("decompose")->messages,
            2 * r.clustering.stats.messages);

  ctx.clear();
  EXPECT_EQ(ctx.stats().find("decompose"), nullptr);
  EXPECT_EQ(ctx.find_partition(g), nullptr);
}

}  // namespace
}  // namespace gdiam
